GO ?= go

# Packages exercising the distributed machinery; these are the ones the
# race detector must stay clean on.
CLUSTER_PKGS = ./internal/cluster/... ./internal/core/... ./cmd/worker/...

.PHONY: all build test vet race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Race-detector pass over the cluster transport, the distributed step
# driver, and the worker binary — the fault-tolerance layer's tests
# (retry, reconnection, heartbeat, chaos, kill-and-resume) all live
# here and must pass with -race.
race:
	$(GO) test -race $(CLUSTER_PKGS)

check: vet test race

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./internal/bench/...

clean:
	$(GO) clean ./...
