GO ?= go

# Packages exercising the distributed machinery; these are the ones the
# race detector must stay clean on.
CLUSTER_PKGS = ./internal/cluster/... ./internal/core/... ./internal/dplan/... ./cmd/worker/...

# The workspace-threaded numeric stack. Workspaces are per-worker by
# contract (see DESIGN.md, "Memory model"); the race detector over these
# packages is what enforces that no scratch buffer leaks across
# goroutines.
NUMERIC_PKGS = ./internal/par/... ./internal/mat/... ./internal/mttkrp/... \
	./internal/layout/... ./internal/cp/... ./internal/dtd/... \
	./internal/dmsmg/... ./internal/completion/... ./internal/onlinecp/...

.PHONY: all build test vet race check bench bench-comm bench-obs bench-paper bench-par bench-sampled bench-serve profile clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Race-detector pass over the cluster transport, the distributed step
# driver, the worker binary, and the workspace-threaded numeric stack —
# the fault-tolerance tests (retry, reconnection, heartbeat, chaos,
# kill-and-resume) and the in-place kernel/aliasing tests must all pass
# with -race.
race:
	$(GO) test -race $(CLUSTER_PKGS) $(NUMERIC_PKGS) ./internal/obs/... ./internal/sample/...

check: vet test race

# Kernel benchmarks with allocation counts, captured as JSON so the
# allocation-free hot path is tracked across PRs, not just asserted once.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' \
		./internal/mat/... ./internal/mttkrp/... ./internal/core/... \
		| $(GO) run ./cmd/benchjson -o BENCH_kernels.json

# Collective microbenchmarks: tree vs ring all-reduce/all-gather across
# cluster sizes and payload sizes, plus the subscription row exchange.
# Each row's maxrank-B/op extra column is the heaviest rank's sent bytes
# per op — the per-rank bandwidth bound the ring path flattens.
bench-comm:
	$(GO) test -bench='BenchmarkComm' -benchmem -benchtime=20x -run '^$$' \
		./internal/cluster/... ./internal/dplan/... \
		| $(GO) run ./cmd/benchjson -o BENCH_comm.json

# Observability-plane fence benchmark: the per-step overhead the
# cluster plane adds, across cluster sizes and per-step span volumes.
# maxrank-B/op is the coordinator's gather traffic per fence — the
# plane's bandwidth cost, byte-accounted.
bench-obs:
	$(GO) test -bench='BenchmarkObs' -benchmem -benchtime=20x -run '^$$' \
		./internal/obs/... \
		| $(GO) run ./cmd/benchjson -o BENCH_obs.json

# End-to-end paper-scale benchmark harness: the streaming benchmark
# with the tracer's per-phase medians and p95/p99 tails, captured as
# JSON (benchjson derives per-phase tail_p99_over_p50 columns).
bench-paper:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./internal/bench/... \
		| $(GO) run ./cmd/benchjson -o BENCH_stream.json

# Thread-scaling benchmark: the MTTKRP phase and a full DTD step at
# 1/2/4/8 compute threads, captured as JSON. benchjson derives a
# speedup_vs_1 column from the threads=1 rows of each benchmark, so
# BENCH_parallel.json is the 1-thread vs N-thread speedup table.
bench-par:
	$(GO) test -bench='BenchmarkParallel' -benchtime=5x -run '^$$' \
		./internal/bench/... \
		| $(GO) run ./cmd/benchjson -o BENCH_parallel.json

# Randomized-solver acceptance benchmark: full CP-ALS on a planted
# nnz ≥ 10^6 low-rank tensor with the exact solver and the
# leverage-score sketch at the default sample count. Each row reports
# round_us (per-sweep compute wall) and fit; benchjson derives
# speedup_vs_exact and fit_gap from the solver=exact baseline, so
# BENCH_sampled.json is the sampled path's speed/accuracy contract
# tracked across PRs.
bench-sampled:
	$(GO) test -bench='BenchmarkSampledALS' -benchtime=1x -run '^$$' \
		./internal/bench/ \
		| $(GO) run ./cmd/benchjson -o BENCH_sampled.json

# Serving front-end benchmark: one writer streams event micro-batches
# over HTTP while 1/4/8 reader clients run top-K and reconstruction
# queries against the epoch-swapped snapshots. Extra columns carry the
# ingest throughput (events_per_sec) and the query latency quantiles;
# benchjson derives query_tail_p99_over_p50 and the clients=N
# query_scaling_vs_1client read-concurrency column.
bench-serve:
	$(GO) test -bench='BenchmarkServe' -benchtime=5x -run '^$$' \
		./cmd/worker/ \
		| $(GO) run ./cmd/benchjson -o BENCH_serve.json

# CPU and heap profiles of the distributed step on the in-process
# cluster; inspect with `$(GO) tool pprof cpu.prof`.
profile:
	$(GO) test -bench=BenchmarkStepLocal -benchtime=5x -run '^$$' \
		-cpuprofile cpu.prof -memprofile mem.prof ./internal/core/

clean:
	$(GO) clean ./...
