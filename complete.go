package dismastd

import (
	"fmt"

	"dismastd/internal/completion"
	"dismastd/internal/layout"
	"dismastd/internal/partition"
)

// CompletionOptions configures tensor completion (fitting the observed
// entries only; unobserved cells are treated as missing, not zero).
type CompletionOptions struct {
	// Rank is the number of CP components. Required.
	Rank int
	// MaxIters bounds the ALS sweeps. Default 30.
	MaxIters int
	// Tol stops iteration when the relative RMSE change falls below it.
	// Default 1e-6.
	Tol float64
	// Lambda is the ridge regulariser keeping sparsely observed rows
	// well-posed. Default 1e-3.
	Lambda float64
	// Seed makes runs reproducible. Default 1.
	Seed uint64
	// Workers selects the engine: 0 or 1 (default) runs centralized
	// weighted ALS; >1 distributes the fit across an in-process cluster
	// (the result is identical bit for bit — completion has no
	// cross-row reductions to reorder).
	Workers int
	// Parts is the number of tensor partitions per mode for the
	// distributed engine; defaults to Workers.
	Parts int
	// Partitioner chooses GTP or MTP for the distributed engine.
	Partitioner Partitioner
	// Threads sizes the shared-memory pool the sweep (or, with
	// Workers > 1, each worker) runs on. 0 or 1 means sequential;
	// results are bitwise identical at every value.
	Threads int
	// Layout selects the sparse-kernel representation ("coo" or
	// "compiled"; "" means "coo") — see Options.Layout. Results are
	// bitwise identical under either.
	Layout string
}

func (o CompletionOptions) internal() (completion.Options, error) {
	kind, err := layout.ParseKind(o.Layout)
	if err != nil {
		return completion.Options{}, fmt.Errorf("dismastd: %v", err)
	}
	return completion.Options{Rank: o.Rank, MaxIters: o.MaxIters, Tol: o.Tol, Lambda: o.Lambda, Seed: o.Seed, Threads: o.Threads, Layout: kind}, nil
}

// CompletionResult reports a completion fit.
type CompletionResult struct {
	Factors []*Dense
	Iters   int
	RMSE    float64 // over the observed (training) entries
}

// Complete fits the Kruskal model to x's observed entries — the
// recommendation setting of the paper's introduction, where missing
// ratings are predicted from the latent factors with Predict. Unlike
// Decompose, unobserved cells do not pull predictions toward zero.
// With Workers > 1 the fit runs on an in-process worker cluster.
func Complete(x *Tensor, opts CompletionOptions) (*CompletionResult, error) {
	iopts, err := opts.internal()
	if err != nil {
		return nil, err
	}
	if opts.Workers > 1 {
		res, err := completion.DecomposeDistributed(x, completion.DistributedOptions{
			Options: iopts, Workers: opts.Workers, Parts: opts.Parts,
			Method: partition.Method(opts.Partitioner),
		})
		if err != nil {
			return nil, err
		}
		return &CompletionResult{Factors: res.Factors, Iters: res.Iters, RMSE: res.RMSE}, nil
	}
	res, err := completion.Decompose(x, iopts)
	if err != nil {
		return nil, err
	}
	return &CompletionResult{Factors: res.Factors, Iters: res.Iters, RMSE: res.RMSE}, nil
}

// CompleteNext advances a completion model along a multi-aspect stream:
// the previous result's factors are extended to the new snapshot's
// (grown) dims and refined by warm-started sweeps over its
// observations. prev is not modified.
func CompleteNext(prev *CompletionResult, snapshot *Tensor, opts CompletionOptions) (*CompletionResult, error) {
	iopts, err := opts.internal()
	if err != nil {
		return nil, err
	}
	res, err := completion.StreamStep(prev.Factors, snapshot, iopts)
	if err != nil {
		return nil, err
	}
	return &CompletionResult{Factors: res.Factors, Iters: res.Iters, RMSE: res.RMSE}, nil
}

// PredictionRMSE evaluates factors against a set of held-out observed
// entries: √(Σ (x − prediction)² / n).
func PredictionRMSE(heldout *Tensor, factors []*Dense) float64 {
	return completion.RMSE(heldout, factors)
}
