// Top-level benchmarks: one testing.B target per table and figure of
// the paper's evaluation, plus ablation benches for the design choices
// called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem .
//
// The full parameter sweeps with formatted output live in
// cmd/dismastd-bench; these benches time one representative cell of
// each experiment so regressions in any experiment path are visible in
// ordinary benchmark runs. Custom metrics report the quantity each
// experiment is actually about (imbalance, bytes, work units).
package dismastd_test

import (
	"testing"

	"dismastd/internal/core"
	"dismastd/internal/dataset"
	"dismastd/internal/dmsmg"
	"dismastd/internal/dtd"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

const benchNNZ = 30000

// benchStream returns a dataset's last two snapshots and a decomposition
// of the first — the setting every timing figure measures.
func benchStream(b *testing.B, kind dataset.Kind) (*dtd.State, *tensor.Tensor) {
	b.Helper()
	t := dataset.Preset(kind, benchNNZ, 42).Generate()
	seq, err := dataset.Stream(t, dataset.PaperFractions)
	if err != nil {
		b.Fatal(err)
	}
	prev, _, err := dtd.Init(seq.Snapshot(seq.Len()-2), dtd.Options{Rank: 10, MaxIters: 3, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return prev, seq.Snapshot(seq.Len() - 1)
}

// BenchmarkTable3Datasets times the dataset generators (Table III).
func BenchmarkTable3Datasets(b *testing.B) {
	for _, k := range dataset.Kinds {
		b.Run(k.String(), func(b *testing.B) {
			spec := dataset.Preset(k, benchNNZ, 42)
			for i := 0; i < b.N; i++ {
				_ = spec.Generate()
			}
		})
	}
}

// BenchmarkTable4Partitioning times GTP and MTP on each dataset's
// mode-0 histogram and reports the resulting imbalance (Table IV).
func BenchmarkTable4Partitioning(b *testing.B) {
	for _, k := range dataset.Kinds {
		hist := dataset.Preset(k, benchNNZ, 42).Generate().SliceNNZ(0)
		for _, method := range []partition.Method{partition.GTPMethod, partition.MTPMethod} {
			b.Run(k.String()+"/"+method.String(), func(b *testing.B) {
				var plan *partition.ModePlan
				for i := 0; i < b.N; i++ {
					plan = partition.Partition(hist, 15, method)
				}
				b.ReportMetric(plan.ImbalanceStdDev(), "imbalance")
			})
		}
	}
}

// BenchmarkFig5StreamingStep times one 95%→100% stream step per
// dataset for DisMASTD and the DMS-MG recompute baseline (Fig. 5).
func BenchmarkFig5StreamingStep(b *testing.B) {
	for _, k := range dataset.Kinds {
		prev, last := benchStream(b, k)
		b.Run(k.String()+"/DisMASTD-MTP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Step(prev, last, core.Options{
					Rank: 10, MaxIters: 3, Tol: 0, Workers: 8, Method: partition.MTPMethod, Seed: 42,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(k.String()+"/DMS-MG-MTP", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dmsmg.Decompose(last, dmsmg.Options{
					Rank: 10, MaxIters: 3, Tol: 0, Workers: 8, Method: partition.MTPMethod, Seed: 42,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Partitions times a stream step at the extreme partition
// counts of the paper's sweep (Fig. 6).
func BenchmarkFig6Partitions(b *testing.B) {
	prev, last := benchStream(b, dataset.Book)
	for _, parts := range []int{8, 15, 38} {
		b.Run(partName(parts), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Step(prev, last, core.Options{
					Rank: 10, MaxIters: 3, Tol: 0, Workers: 8, Parts: parts, Method: partition.MTPMethod, Seed: 42,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func partName(p int) string {
	return map[int]string{8: "parts=8", 15: "parts=15", 38: "parts=38"}[p]
}

// BenchmarkFig7Nodes times a stream step at the paper's cluster sizes
// and reports the straggler's work units, the quantity that shrinks
// with nodes (Fig. 7).
func BenchmarkFig7Nodes(b *testing.B) {
	prev, last := benchStream(b, dataset.Synthetic)
	for _, nodes := range []int{3, 9, 15} {
		b.Run(nodeName(nodes), func(b *testing.B) {
			var maxWork float64
			for i := 0; i < b.N; i++ {
				_, stats, err := core.Step(prev, last, core.Options{
					Rank: 10, MaxIters: 3, Tol: 0, Workers: nodes, Method: partition.MTPMethod, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				maxWork = stats.Cluster.MaxWork()
			}
			b.ReportMetric(maxWork, "straggler-work")
		})
	}
}

func nodeName(n int) string {
	return map[int]string{3: "nodes=3", 9: "nodes=9", 15: "nodes=15"}[n]
}

// ---- Ablations (DESIGN.md "Design choices called out for ablation") ----

// BenchmarkAblationMTTKRPKernels compares the flat scatter kernel with
// the row-grouped kernel on a skewed tensor.
func BenchmarkAblationMTTKRPKernels(b *testing.B) {
	t := dataset.Preset(dataset.Clothing, benchNNZ, 42).Generate()
	factors := make([]*mat.Dense, t.Order())
	src := newSrc()
	for m, d := range t.Dims {
		factors[m] = mat.RandomGaussian(d, 10, src)
	}
	b.Run("flat", func(b *testing.B) {
		dst := mat.New(t.Dims[0], 10)
		for i := 0; i < b.N; i++ {
			dst.Zero()
			mttkrp.AccumulateInto(dst, t, factors, 0)
		}
	})
	b.Run("row-grouped", func(b *testing.B) {
		view := mttkrp.NewModeView(t, 0)
		dst := mat.New(t.Dims[0], 10)
		for i := 0; i < b.N; i++ {
			dst.Zero()
			view.AccumulateInto(dst, factors)
		}
	})
}

// BenchmarkAblationLossReuse compares the Section IV-B4 reuse-based
// loss with a naive second pass over the entries, reporting the total
// work units each spends.
func BenchmarkAblationLossReuse(b *testing.B) {
	prev, last := benchStream(b, dataset.Netflix)
	for _, naive := range []bool{false, true} {
		name := "reuse"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			var work float64
			for i := 0; i < b.N; i++ {
				_, stats, err := core.Step(prev, last, core.Options{
					Rank: 10, MaxIters: 3, Tol: 0, Workers: 4, Method: partition.MTPMethod, Seed: 42, NaiveLoss: naive,
				})
				if err != nil {
					b.Fatal(err)
				}
				work = stats.Cluster.TotalWork()
			}
			b.ReportMetric(work, "work-units")
		})
	}
}

// BenchmarkAblationGTPBackoff compares GTP with and without the
// better-balance boundary choice (Algorithm 2 lines 10-12), reporting
// the imbalance each achieves on skewed data.
func BenchmarkAblationGTPBackoff(b *testing.B) {
	hist := dataset.Preset(dataset.Book, benchNNZ, 42).Generate().SliceNNZ(0)
	b.Run("with-backoff", func(b *testing.B) {
		var plan *partition.ModePlan
		for i := 0; i < b.N; i++ {
			plan = partition.GTP(hist, 15)
		}
		b.ReportMetric(plan.ImbalanceStdDev(), "imbalance")
	})
	b.Run("no-backoff", func(b *testing.B) {
		var plan *partition.ModePlan
		for i := 0; i < b.N; i++ {
			plan = partition.GTPNoBackoff(hist, 15)
		}
		b.ReportMetric(plan.ImbalanceStdDev(), "imbalance")
	})
}

// BenchmarkAblationRowExchange compares the subscription-based row
// exchange with a full owner broadcast, reporting measured traffic.
func BenchmarkAblationRowExchange(b *testing.B) {
	prev, last := benchStream(b, dataset.Clothing)
	for _, broadcast := range []bool{false, true} {
		name := "subscriptions"
		if broadcast {
			name = "broadcast"
		}
		b.Run(name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				_, stats, err := core.Step(prev, last, core.Options{
					Rank: 10, MaxIters: 3, Tol: 0, Workers: 8, Method: partition.MTPMethod, Seed: 42, BroadcastRows: broadcast,
				})
				if err != nil {
					b.Fatal(err)
				}
				bytes = stats.Cluster.TotalBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}

func newSrc() *xrand.Source { return xrand.New(42) }
