package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"dismastd"
	"dismastd/internal/obs"
)

// BenchmarkServe measures the serving front end under concurrent load:
// one writer streams event micro-batches over HTTP while N reader
// clients hammer /predict and /topk against the epoch-swapped
// snapshots. Each op is one 256-event ingest batch; the extra columns
// report the ingest throughput (events_per_sec) and the query latency
// distribution (query_p50_us/p95_us/p99_us — benchjson derives the
// query_tail_p99_over_p50 amplification, and the clients=N segment
// gains a qps_vs_1client scaling column).
func BenchmarkServe(b *testing.B) {
	for _, clients := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			benchServe(b, clients)
		})
	}
}

const benchBatch = 256

func benchServe(b *testing.B, clients int) {
	opts := dismastd.Options{Rank: 8, MaxIters: 3, Seed: 1, SweepEvery: 1 << 14}
	srv := newServeServer(dismastd.NewStream(opts), obs.NewLogger(io.Discard, slog.LevelError))
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	// Warm: enough history for a real model, then one sweep boundary so
	// queries serve from a decomposed state, and one ingest+query pass
	// so every scratch buffer is sized.
	post := func(body []byte) {
		resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	var seed int64 = 1
	nextBatch := func() []byte {
		events := serveEvents(benchBatch, seed)
		seed++
		body, err := json.Marshal(events)
		if err != nil {
			b.Fatal(err)
		}
		return body
	}
	post(nextBatch())
	if resp, err := http.Post(ts.URL+"/flush", "application/json", nil); err != nil {
		b.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	post(nextBatch())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	lats := make([][]time.Duration, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			urls := []string{
				ts.URL + "/predict?at=3,2,1",
				ts.URL + "/topk?mode=1&at=3,_,1&k=5",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				resp, err := client.Get(urls[i%len(urls)])
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lats[c] = append(lats[c], time.Since(t0))
			}
		}(c)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(nextBatch())
	}
	b.StopTimer()
	close(stop)
	wg.Wait()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*benchBatch)/elapsed, "events_per_sec")
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) > 0 && elapsed > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(all)-1))
			return float64(all[i].Microseconds())
		}
		b.ReportMetric(q(0.50), "query_p50_us")
		b.ReportMetric(q(0.95), "query_p95_us")
		b.ReportMetric(q(0.99), "query_p99_us")
		b.ReportMetric(float64(len(all))/elapsed, "queries_per_sec")
	}
}
