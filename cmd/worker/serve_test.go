package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dismastd"
)

// startServe boots runServe in-process with an injectable signal
// channel and returns the base URL, the signal channel, and a done
// channel carrying runServe's error.
func startServe(t *testing.T, cfg serveConfig) (string, chan os.Signal, chan error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	cfg.ready = ready
	if cfg.addr == "" {
		cfg.addr = "127.0.0.1:0"
	}
	if cfg.drainTimeout == 0 {
		cfg.drainTimeout = 10 * time.Second
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- runServe(cfg, io.Discard, io.Discard, sig)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), sig, done
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
		return "", nil, nil
	}
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// serveEvents deterministically generates a dense-enough event stream
// over a small tensor.
func serveEvents(n int, seed int64) []eventJSON {
	rng := rand.New(rand.NewSource(seed))
	events := make([]eventJSON, n)
	for i := range events {
		events[i] = eventJSON{
			Coords: []int{rng.Intn(8), rng.Intn(6), rng.Intn(4)},
			Value:  1 + 4*rng.Float64(),
		}
	}
	// Corner entry pins the dims so the offline replica agrees exactly.
	events[0] = eventJSON{Coords: []int{7, 5, 3}, Value: 3}
	return events
}

func asEvents(raw []eventJSON) []dismastd.Event {
	out := make([]dismastd.Event, len(raw))
	for i, e := range raw {
		out[i] = dismastd.Event{Coords: e.Coords, Value: e.Value}
	}
	return out
}

// TestServeLifecycle drives the full front end: ingest batches, flush,
// predictions matching an offline stream fed the same events bitwise,
// top-K consistency with /predict, stats, graceful shutdown with a
// final checkpoint, and a resume that serves the model immediately.
func TestServeLifecycle(t *testing.T) {
	state := filepath.Join(t.TempDir(), "model.gob")
	opts := dismastd.Options{Rank: 3, MaxIters: 4, Seed: 5}
	base, sig, done := startServe(t, serveConfig{statePath: state, opts: opts})

	// Before any data, queries answer 503.
	if code := getJSON(t, base+"/predict?at=0,0,0", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("pre-init predict status %d, want 503", code)
	}

	events := serveEvents(240, 11)
	offline := dismastd.NewStream(opts)
	for i := 0; i < len(events); i += 60 {
		batch := events[i : i+60]
		var rep ingestResponse
		if resp := postJSON(t, base+"/ingest", batch, &rep); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		if rep.Events != 60 {
			t.Fatalf("ingest reported %d events, want 60", rep.Events)
		}
		if _, err := offline.IngestEvents(asEvents(batch)); err != nil {
			t.Fatal(err)
		}
	}
	var flushRep map[string]any
	if resp := postJSON(t, base+"/flush", nil, &flushRep); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d", resp.StatusCode)
	}
	if swept, _ := flushRep["swept"].(bool); !swept {
		t.Fatalf("flush did not sweep: %v", flushRep)
	}
	if _, err := offline.Flush(); err != nil {
		t.Fatal(err)
	}

	// Served predictions must match the offline replica bitwise: both
	// streams saw the identical event sequence and boundary.
	for _, at := range [][]int{{0, 0, 0}, {7, 5, 3}, {3, 2, 1}} {
		var pred struct {
			Value float64 `json:"value"`
		}
		url := fmt.Sprintf("%s/predict?at=%d,%d,%d", base, at[0], at[1], at[2])
		if code := getJSON(t, url, &pred); code != http.StatusOK {
			t.Fatalf("predict status %d", code)
		}
		if want := offline.Predict(at); pred.Value != want {
			t.Fatalf("predict%v = %v, offline replica says %v", at, pred.Value, want)
		}
	}

	// Top-K over mode 1 at (3, _, 1): the best index must be the argmax
	// of per-index predictions, scores in non-increasing order.
	var topk struct {
		Results []topKResult `json:"results"`
	}
	if code := getJSON(t, base+"/topk?mode=1&at=3,_,1&k=4", &topk); code != http.StatusOK {
		t.Fatalf("topk status %d", code)
	}
	if len(topk.Results) != 4 {
		t.Fatalf("topk returned %d results, want 4", len(topk.Results))
	}
	bestIdx, bestScore := -1, 0.0
	for j := 0; j < offline.Dims()[1]; j++ {
		if v := offline.Predict([]int{3, j, 1}); bestIdx < 0 || v > bestScore {
			bestIdx, bestScore = j, v
		}
	}
	if topk.Results[0].Index != bestIdx || topk.Results[0].Score != bestScore {
		t.Fatalf("topk best = %+v, offline argmax is (%d, %v)", topk.Results[0], bestIdx, bestScore)
	}
	for i := 1; i < len(topk.Results); i++ {
		if topk.Results[i].Score > topk.Results[i-1].Score {
			t.Fatalf("topk scores not sorted: %+v", topk.Results)
		}
	}

	var stats struct {
		Events  int64 `json:"events"`
		Queries int64 `json:"queries"`
		Sweeps  int   `json:"sweeps"`
		Dims    []int `json:"dims"`
	}
	if code := getJSON(t, base+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Events != 240 || stats.Sweeps != 1 || stats.Queries == 0 {
		t.Fatalf("stats = %+v, want 240 events, 1 sweep, some queries", stats)
	}

	sig <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("serve shutdown: %v", err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("no final checkpoint: %v", err)
	}

	// Resume from the checkpoint: the model serves immediately and
	// matches the offline replica, and the sweep counter carries over.
	base2, sig2, done2 := startServe(t, serveConfig{statePath: state, opts: opts})
	var pred struct {
		Value float64 `json:"value"`
	}
	if code := getJSON(t, base2+"/predict?at=7,5,3", &pred); code != http.StatusOK {
		t.Fatalf("resumed predict status %d", code)
	}
	if want := offline.Predict([]int{7, 5, 3}); pred.Value != want {
		t.Fatalf("resumed predict = %v, want %v", pred.Value, want)
	}
	var stats2 struct {
		Sweeps int `json:"sweeps"`
	}
	getJSON(t, base2+"/stats", &stats2)
	if stats2.Sweeps != 1 {
		t.Fatalf("resumed sweeps = %d, want 1", stats2.Sweeps)
	}
	sig2 <- syscall.SIGTERM
	if err := <-done2; err != nil {
		t.Fatalf("resumed serve shutdown: %v", err)
	}
}

// TestServeQueryErrors covers the request-validation paths.
func TestServeQueryErrors(t *testing.T) {
	opts := dismastd.Options{Rank: 2, MaxIters: 2, Seed: 1}
	base, sig, done := startServe(t, serveConfig{opts: opts})
	defer func() {
		sig <- syscall.SIGTERM
		<-done
	}()
	postJSON(t, base+"/ingest", serveEvents(40, 3), nil)
	postJSON(t, base+"/flush", nil, nil)

	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/predict?at=1,2", http.StatusBadRequest},         // wrong order
		{"/predict?at=99,0,0", http.StatusBadRequest},      // out of range
		{"/predict?at=a,0,0", http.StatusBadRequest},       // not a number
		{"/topk?mode=7&at=0,_,0", http.StatusBadRequest},   // bad mode
		{"/topk?mode=1&at=0,_,0&k=0", http.StatusBadRequest},
		{"/predict?at=0,0,0", http.StatusOK},
	} {
		if code := getJSON(t, base+tc.url, nil); code != tc.want {
			t.Errorf("%s status %d, want %d", tc.url, code, tc.want)
		}
	}
	if resp := postJSON(t, base+"/ingest", []eventJSON{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty ingest status %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, base+"/ingest", []eventJSON{{Coords: []int{1}, Value: 2}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("order-changing ingest status %d, want 400", resp.StatusCode)
	}
}

// TestServeGracefulShutdown exercises S6 under load: concurrent
// readers and writers hammer the server while SIGTERM lands. Every
// in-flight request must complete or be refused cleanly (no 5xx from a
// live handler), the listener must be closed afterwards, and the final
// checkpoint must be a resumable model that reflects the ingested
// events.
func TestServeGracefulShutdown(t *testing.T) {
	state := filepath.Join(t.TempDir(), "model.gob")
	opts := dismastd.Options{Rank: 2, MaxIters: 2, Seed: 7, SweepEvery: 64}
	base, sig, done := startServe(t, serveConfig{statePath: state, opts: opts})

	postJSON(t, base+"/ingest", serveEvents(80, 5), nil) // SweepEvery fires: model exists

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/predict?at=0,0,0")
				if err != nil {
					return // listener closed mid-drain: a clean refusal
				}
				if resp.StatusCode >= 500 {
					t.Errorf("query got %d during shutdown", resp.StatusCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the readers get in flight
	sig <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("serve shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	if _, err := http.Get(base + "/stats"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	f, err := os.Open(state)
	if err != nil {
		t.Fatalf("no final checkpoint: %v", err)
	}
	defer f.Close()
	resumed, err := dismastd.ResumeStream(f, opts)
	if err != nil {
		t.Fatalf("final checkpoint not resumable: %v", err)
	}
	if resumed.Snapshots() == 0 || resumed.Factors() == nil {
		t.Fatalf("resumed checkpoint empty: %d sweeps", resumed.Snapshots())
	}
}

// TestServeArgErrors checks the flag-level mode validation.
func TestServeArgErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-serve-http", "127.0.0.1:0", "-join", "127.0.0.1:9"},
		{"-serve-http", "127.0.0.1:0", "-serve", "127.0.0.1:9"},
	} {
		var errBuf bytes.Buffer
		if err := run(args, io.Discard, &errBuf); err == nil || !strings.Contains(err.Error(), "exclusive") {
			t.Errorf("run(%v) err = %v, want exclusivity error", args, err)
		}
	}
}
