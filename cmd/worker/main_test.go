package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dismastd"
	"dismastd/internal/cluster"
)

// TestTwoStepTCPCluster drives the full worker flow in-process: a
// rendezvous plus three worker runs over real TCP loopback, first
// bootstrapping from scratch, then an incremental step resuming from
// the written state file.
func TestTwoStepTCPCluster(t *testing.T) {
	dir := t.TempDir()
	full := dismastd.GenerateDataset(dismastd.DatasetBook, 2500, 9)
	seq, err := dismastd.GrowthSchedule(full, []float64{0.85, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]string, 2)
	for i := range snaps {
		snaps[i] = filepath.Join(dir, "snap"+string(rune('0'+i))+".bin")
		f, err := os.Create(snaps[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := dismastd.WriteTensorBinary(f, seq.Snapshot(i)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	state := filepath.Join(dir, "state.gob")

	const workers = 3
	for step := 0; step < 2; step++ {
		rv, err := cluster.NewRendezvous("127.0.0.1:0", workers)
		if err != nil {
			t.Skipf("loopback networking unavailable: %v", err)
		}
		var wg sync.WaitGroup
		outs := make([]bytes.Buffer, workers)
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				args := []string{
					"-join", rv.Addr(), "-tensor", snaps[step],
					"-rank", "3", "-iters", "3", "-seed", "5",
					"-out", state, "-timeout", "30s",
				}
				if step > 0 {
					args = append(args, "-prev", state)
				}
				var stderr bytes.Buffer
				errs[w] = run(args, &outs[w], &stderr)
			}(w)
		}
		wg.Wait()
		rv.Close()
		combined := ""
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				t.Fatalf("step %d worker %d: %v", step, w, errs[w])
			}
			combined += outs[w].String()
		}
		if !strings.Contains(combined, "rank 0: iters=3") {
			t.Fatalf("step %d: no rank-0 summary in %q", step, combined)
		}
		if _, err := os.Stat(state); err != nil {
			t.Fatalf("step %d: state not written: %v", step, err)
		}
	}
}

func TestWorkerArgErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for name, args := range map[string][]string{
		"neither mode":       {},
		"serve without size": {"-serve", "127.0.0.1:0"},
		"join without file":  {"-join", "127.0.0.1:1"},
		"bad method":         {"-join", "127.0.0.1:1", "-tensor", "x.tsv", "-method", "zzz"},
	} {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
