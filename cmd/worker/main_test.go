package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"dismastd"
	"dismastd/internal/cluster"
	"dismastd/internal/dtd"
	"dismastd/internal/mat"
	"dismastd/internal/obs"
	obscluster "dismastd/internal/obs/cluster"
)

// TestTwoStepTCPCluster drives the full worker flow in-process: a
// rendezvous plus three worker runs over real TCP loopback, first
// bootstrapping from scratch, then an incremental step resuming from
// the written state file.
func TestTwoStepTCPCluster(t *testing.T) {
	dir := t.TempDir()
	full := dismastd.GenerateDataset(dismastd.DatasetBook, 2500, 9)
	seq, err := dismastd.GrowthSchedule(full, []float64{0.85, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]string, 2)
	for i := range snaps {
		snaps[i] = filepath.Join(dir, "snap"+string(rune('0'+i))+".bin")
		f, err := os.Create(snaps[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := dismastd.WriteTensorBinary(f, seq.Snapshot(i)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	state := filepath.Join(dir, "state.gob")

	const workers = 3
	for step := 0; step < 2; step++ {
		rv, err := cluster.NewRendezvous("127.0.0.1:0", workers)
		if err != nil {
			t.Skipf("loopback networking unavailable: %v", err)
		}
		var wg sync.WaitGroup
		outs := make([]bytes.Buffer, workers)
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				args := []string{
					"-join", rv.Addr(), "-tensor", snaps[step],
					"-rank", "3", "-iters", "3", "-seed", "5",
					"-out", state, "-timeout", "30s",
					"-plane", // static-loop observability fences ride along
				}
				if step > 0 {
					args = append(args, "-prev", state)
				}
				var stderr bytes.Buffer
				errs[w] = run(args, &outs[w], &stderr)
			}(w)
		}
		wg.Wait()
		rv.Close()
		combined := ""
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				t.Fatalf("step %d worker %d: %v", step, w, errs[w])
			}
			combined += outs[w].String()
		}
		if !strings.Contains(combined, "rank 0: iters=3") {
			t.Fatalf("step %d: no rank-0 summary in %q", step, combined)
		}
		if _, err := os.Stat(state); err != nil {
			t.Fatalf("step %d: state not written: %v", step, err)
		}
	}
}

func TestWorkerArgErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for name, args := range map[string][]string{
		"neither mode":              {},
		"serve without size":        {"-serve", "127.0.0.1:0"},
		"join without file":         {"-join", "127.0.0.1:1"},
		"bad method":                {"-join", "127.0.0.1:1", "-tensor", "x.tsv", "-method", "zzz"},
		"resume without checkpoint": {"-join", "127.0.0.1:1", "-tensor", "x.tsv", "-resume"},
		"rebalance without elastic": {"-join", "127.0.0.1:1", "-tensor", "x.tsv", "-rebalance-on-imbalance"},
	} {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// writeSnapshots materialises a two-step growth schedule as binary
// snapshot files and returns their paths.
func writeSnapshots(t *testing.T, dir string) []string {
	t.Helper()
	full := dismastd.GenerateDataset(dismastd.DatasetBook, 2000, 17)
	seq, err := dismastd.GrowthSchedule(full, []float64{0.85, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]string, 2)
	for i := range snaps {
		snaps[i] = filepath.Join(dir, "snap"+string(rune('0'+i))+".bin")
		f, err := os.Create(snaps[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := dismastd.WriteTensorBinary(f, seq.Snapshot(i)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return snaps
}

// runCluster starts a rendezvous plus one worker goroutine per entry in
// extra (appended to the shared base args) and returns each worker's
// error and combined output.
func runCluster(t *testing.T, base []string, extra [][]string) ([]error, string) {
	t.Helper()
	workers := len(extra)
	rv, err := cluster.NewRendezvous("127.0.0.1:0", workers)
	if err != nil {
		t.Skipf("loopback networking unavailable: %v", err)
	}
	defer rv.Close()
	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			args := append([]string{"-join", rv.Addr()}, base...)
			args = append(args, extra[w]...)
			var stderr bytes.Buffer
			errs[w] = run(args, &outs[w], &stderr)
		}(w)
	}
	wg.Wait()
	combined := ""
	for w := 0; w < workers; w++ {
		combined += outs[w].String()
	}
	return errs, combined
}

// TestKillAndResume exercises the crash-recovery path end to end: one
// rank is chaos-killed between the two streaming steps, the survivors
// surface a typed peer-down failure, and a resumed cluster picks up
// from the step-0 checkpoint and reproduces the uninterrupted run's
// factors exactly.
func TestKillAndResume(t *testing.T) {
	dir := t.TempDir()
	snaps := writeSnapshots(t, dir)
	ckpt := filepath.Join(dir, "ckpt")
	stateB := filepath.Join(dir, "stateB.gob")
	stateC := filepath.Join(dir, "stateC.gob")
	base := []string{
		"-tensor", snaps[0] + "," + snaps[1],
		"-rank", "3", "-iters", "3", "-seed", "5", "-timeout", "30s",
	}

	// Run A: one worker dies right before step 1. Step 0 completes on
	// all ranks first (the kill happens after its checkpoint), so the
	// survivors fail inside step 1's collectives.
	errsA, outA := runCluster(t,
		append([]string{"-checkpoint", ckpt, "-heartbeat", "150ms"}, base...),
		[][]string{{"-chaos-kill-step", "1"}, nil, nil})
	if errsA[0] == nil || !strings.Contains(errsA[0].Error(), "chaos") {
		t.Fatalf("killed worker error = %v", errsA[0])
	}
	for w := 1; w < 3; w++ {
		pd, ok := cluster.AsPeerDown(errsA[w])
		if !ok {
			t.Fatalf("survivor %d error = %v, want ErrPeerDown", w, errsA[w])
		}
		if pd.Rank < 0 || pd.Rank > 2 {
			t.Fatalf("survivor %d blamed rank %d", w, pd.Rank)
		}
	}
	if !strings.Contains(outA, "rank 0: iters=") {
		t.Fatalf("step 0 never completed: %q", outA)
	}
	if _, err := os.Stat(ckpt + ".step0.gob"); err != nil {
		t.Fatalf("step-0 checkpoint missing: %v", err)
	}
	if _, err := os.Stat(ckpt + ".step1.gob"); err == nil {
		t.Fatal("step-1 checkpoint written despite the kill")
	}

	// Run B: a fresh cluster resumes from the checkpoint and finishes
	// only the remaining step.
	errsB, _ := runCluster(t,
		append([]string{"-checkpoint", ckpt, "-resume", "-out", stateB}, base...),
		[][]string{nil, nil, nil})
	for w, err := range errsB {
		if err != nil {
			t.Fatalf("resume worker %d: %v", w, err)
		}
	}

	// Run C: the uninterrupted reference over both steps.
	errsC, _ := runCluster(t,
		append([]string{"-out", stateC}, base...),
		[][]string{nil, nil, nil})
	for w, err := range errsC {
		if err != nil {
			t.Fatalf("reference worker %d: %v", w, err)
		}
	}

	b := readState(t, stateB)
	c := readState(t, stateC)
	if len(b.Factors) != len(c.Factors) {
		t.Fatalf("factor counts differ: %d vs %d", len(b.Factors), len(c.Factors))
	}
	for m := range b.Factors {
		if d := mat.MaxAbsDiff(b.Factors[m], c.Factors[m]); d != 0 {
			t.Fatalf("mode %d: resumed factors diverge from reference by %g", m, d)
		}
	}
}

// TestResumeFallsBackPastCorruptCheckpoint: -resume must treat a
// damaged checkpoint as lost work, not a fatal error — the latest
// *readable* checkpoint wins, and only genuinely unreadable chains
// start from scratch.
func TestResumeFallsBackPastCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "ckpt")
	for step := 0; step < 2; step++ {
		st := &dtd.State{Dims: []int{2}, Factors: []*mat.Dense{mat.New(2, 2)}}
		st.Factors[0].Data[0] = float64(step + 1)
		if err := writeCheckpoint(prefix, step, st); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one payload byte in the newest checkpoint.
	path := checkpointPath(prefix, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var warned []int
	st, step, err := latestCheckpoint(prefix, 2, func(step int, err error) {
		warned = append(warned, step)
	})
	if err != nil {
		t.Fatal(err)
	}
	if step != 0 || st == nil || st.Factors[0].Data[0] != 1 {
		t.Fatalf("fell back to step %d (state %v), want the intact step 0", step, st)
	}
	if len(warned) != 1 || warned[0] != 1 {
		t.Fatalf("warned about steps %v, want [1]", warned)
	}

	// With every checkpoint damaged the resume starts from scratch.
	if err := os.WriteFile(checkpointPath(prefix, 0), data[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	st, step, err = latestCheckpoint(prefix, 2, nil)
	if err != nil || st != nil || step != -1 {
		t.Fatalf("all-corrupt chain gave (%v, %d, %v), want (nil, -1, nil)", st, step, err)
	}
}

// TestElasticWorkerJoinAndDrain runs the elastic driver across real TCP
// processes: a world of four starts with three members, and at step 1's
// fence spare rank 3 is admitted while member 1 drains out. Every rank
// must exit cleanly and the final view's rank 0 must write the state.
func TestElasticWorkerJoinAndDrain(t *testing.T) {
	dir := t.TempDir()
	snaps := writeSnapshots(t, dir)
	state := filepath.Join(dir, "state.gob")
	base := []string{
		"-tensor", snaps[0] + "," + snaps[1],
		"-rank", "3", "-iters", "3", "-seed", "5", "-timeout", "30s",
		"-elastic", "-members", "3", "-join-at", "3:1", "-drain-at", "1:1",
		"-out", state,
	}
	errs, out := runCluster(t, base, [][]string{nil, nil, nil, nil})
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if !strings.Contains(out, "final loss=") {
		t.Fatalf("no final summary in %q", out)
	}
	st := readState(t, state)
	if len(st.Dims) == 0 || st.Dims[0] == 0 {
		t.Fatalf("written state has dims %v", st.Dims)
	}
}

// TestElasticWorkerKillRecovers is the distributed chaos test: rank 1
// crashes mid-sweep during the last step, the survivors detect it by
// heartbeat, agree the shrunken view, absorb its rows, and finish the
// stream without it — same cluster run, no restart.
func TestElasticWorkerKillRecovers(t *testing.T) {
	dir := t.TempDir()
	snaps := writeSnapshots(t, dir)
	state := filepath.Join(dir, "state.gob")
	base := []string{
		"-tensor", snaps[0] + "," + snaps[1],
		"-rank", "3", "-iters", "3", "-seed", "5", "-timeout", "30s",
		"-elastic", "-kill-at", "1:1", "-heartbeat", "150ms",
		"-out", state,
	}
	errs, out := runCluster(t, base, [][]string{nil, nil, nil})
	// Ranks are assigned by rendezvous arrival order, so the victim (node
	// rank 1) is an arbitrary goroutine: exactly one scripted crash, no
	// other failures.
	crashes := 0
	for w, err := range errs {
		if err == nil {
			continue
		}
		if !strings.Contains(err.Error(), "scripted crash") {
			t.Fatalf("worker %d: %v", w, err)
		}
		crashes++
	}
	if crashes != 1 {
		t.Fatalf("%d scripted crashes, want exactly 1: %v", crashes, errs)
	}
	if !strings.Contains(out, "final loss=") {
		t.Fatalf("survivors produced no final summary: %q", out)
	}
	st := readState(t, state)
	if len(st.Dims) == 0 || st.Dims[0] == 0 {
		t.Fatalf("written state has dims %v", st.Dims)
	}
}

func readState(t *testing.T, path string) *dtd.State {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := dtd.ReadState(f)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDebugServerServesProfilesAndMetrics pins the -debug-addr surface:
// a live HTTP listener must serve the metrics registry as JSON, the
// span ring as JSONL, and a working CPU profile from net/http/pprof —
// the same endpoints a worker process exposes.
func TestDebugServerServesProfilesAndMetrics(t *testing.T) {
	o := obs.New()
	o.Counter("mttkrp.rows").Add(42)
	sp := o.Span("mode0/mttkrp")
	sp.End()

	var planeHolder atomic.Pointer[obscluster.Plane]
	srv, addr, err := startDebugServer("127.0.0.1:0", o, planeHolder.Load)
	if err != nil {
		t.Skipf("loopback networking unavailable: %v", err)
	}
	defer srv.Close()
	base := "http://" + addr.String()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	if body := get("/debug/metrics"); !strings.Contains(body, `"mttkrp.rows": 42`) {
		t.Fatalf("metrics missing counter: %s", body)
	}
	if body := get("/debug/trace"); !strings.Contains(body, `"mode0/mttkrp"`) {
		t.Fatalf("trace missing span: %s", body)
	}
	if body := get("/metrics"); !strings.Contains(body, "mttkrp_rows 42") {
		t.Fatalf("/metrics missing Prometheus counter: %s", body)
	}

	// The cluster views 503 until a plane exists, then serve the
	// aggregator snapshot — the holder is resolved per scrape.
	if resp, err := http.Get(base + "/debug/cluster"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/debug/cluster before any plane: status %d, want 503", resp.StatusCode)
	}
	planeHolder.Store(obscluster.NewPlane(obscluster.Config{}, o, 1))
	if body := get("/debug/cluster"); !strings.Contains(body, `"detector"`) {
		t.Fatalf("/debug/cluster missing detector snapshot: %s", body)
	}

	// A short CPU profile must come back as a valid (gzipped) pprof
	// payload — the acceptance check `go tool pprof <addr>` depends on.
	prof := get("/debug/pprof/profile?seconds=1")
	if len(prof) == 0 || prof[0] != 0x1f {
		t.Fatalf("profile response does not look like gzipped pprof (%d bytes)", len(prof))
	}
}
