// Command worker runs one rank of a real multi-process DisMASTD
// cluster over TCP. Every worker process reads the same snapshot file
// (and optional previous-state file), deterministically builds the same
// distribution plan, joins the rendezvous to get its rank, and executes
// the SPMD step; rank 0 writes the resulting state.
//
// Start a rendezvous, then the workers (typically from a script or
// examples/multiprocess):
//
//	worker -serve 127.0.0.1:9000 -size 3
//	worker -join 127.0.0.1:9000 -tensor snap.tsv -rank 10 -out state.gob   # x3
//
// A second round passes -prev state.gob and the next snapshot to
// perform an incremental streaming step.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dismastd/internal/cluster"
	"dismastd/internal/core"
	"dismastd/internal/dtd"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	serve := fs.String("serve", "", "rendezvous mode: listen address (e.g. 127.0.0.1:9000)")
	size := fs.Int("size", 0, "rendezvous mode: cluster size")
	join := fs.String("join", "", "worker mode: rendezvous address to join")
	listen := fs.String("listen", "127.0.0.1:0", "worker mode: this rank's listen address")
	tensorPath := fs.String("tensor", "", "worker mode: snapshot tensor file (text or .bin/.gob)")
	prevPath := fs.String("prev", "", "worker mode: previous state file (empty = decompose from scratch)")
	outPath := fs.String("out", "", "worker mode: where rank 0 writes the resulting state")
	rank := fs.Int("rank", 10, "CP rank R")
	iters := fs.Int("iters", 10, "maximum ALS sweeps")
	mu := fs.Float64("mu", 0.8, "forgetting factor")
	method := fs.String("method", "mtp", "partitioning heuristic: gtp or mtp")
	seed := fs.Uint64("seed", 1, "initialisation seed")
	timeout := fs.Duration("timeout", 2*time.Minute, "join and receive timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *serve != "":
		if *size <= 0 {
			return fmt.Errorf("-serve requires -size")
		}
		rv, err := cluster.NewRendezvous(*serve, *size)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "worker: rendezvous on %s for %d ranks\n", rv.Addr(), *size)
		return rv.Wait()
	case *join != "":
		return runWorker(stdout, stderr, *join, *listen, *tensorPath, *prevPath, *outPath,
			*rank, *iters, *mu, *method, *seed, *timeout)
	default:
		return fmt.Errorf("need -serve or -join")
	}
}

func runWorker(stdout, stderr io.Writer, join, listen, tensorPath, prevPath, outPath string,
	rank, iters int, mu float64, method string, seed uint64, timeout time.Duration) error {
	if tensorPath == "" {
		return fmt.Errorf("worker mode requires -tensor")
	}
	snap, err := loadTensor(tensorPath)
	if err != nil {
		return fmt.Errorf("load tensor: %w", err)
	}
	prev := dtd.EmptyState(snap.Order(), rank)
	if prevPath != "" {
		f, err := os.Open(prevPath)
		if err != nil {
			return fmt.Errorf("open prev state: %w", err)
		}
		prev, err = dtd.ReadState(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("read prev state: %w", err)
		}
	}
	var pm partition.Method
	switch strings.ToLower(method) {
	case "gtp":
		pm = partition.GTPMethod
	case "mtp":
		pm = partition.MTPMethod
	default:
		return fmt.Errorf("unknown method %q", method)
	}

	node, err := cluster.JoinTCP(join, listen, timeout)
	if err != nil {
		return fmt.Errorf("join cluster: %w", err)
	}
	defer node.Close()
	node.SetRecvTimeout(timeout)

	job, err := core.NewStepJob(prev, snap, core.Options{
		Rank: rank, MaxIters: iters, Mu: mu, Seed: seed,
		Workers: node.Size(), Method: pm,
	})
	if err != nil {
		return err
	}
	stats, err := node.Run(job.RunWorker)
	if err != nil {
		return fmt.Errorf("rank %d: %w", node.Rank(), err)
	}
	fmt.Fprintf(stderr, "worker: rank %d/%d done, sent %dB in %d msgs, wall %s\n",
		node.Rank(), node.Size(), stats.Ranks[0].BytesSent, stats.Ranks[0].MsgsSent, stats.Wall.Round(time.Millisecond))

	if node.Rank() != 0 {
		return nil
	}
	st, sum, err := job.Result()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "rank 0: iters=%d loss=%.6g complement_nnz=%d\n", sum.Iters, sum.Loss, sum.ComplementNNZ)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dtd.WriteState(f, st); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "worker: state written to %s\n", outPath)
	}
	return nil
}

func loadTensor(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".gob") {
		return tensor.ReadBinary(f)
	}
	return tensor.ReadText(f)
}
