// Command worker runs one rank of a real multi-process DisMASTD
// cluster over TCP. Every worker process reads the same snapshot files
// (and optional previous-state file), deterministically builds the same
// distribution plan, joins the rendezvous to get its rank, and executes
// the SPMD steps; rank 0 writes the resulting state.
//
// Start a rendezvous, then the workers (typically from a script or
// examples/multiprocess):
//
//	worker -serve 127.0.0.1:9000 -size 3
//	worker -join 127.0.0.1:9000 -tensor snap.tsv -rank 10 -out state.gob   # x3
//
// -tensor accepts a comma-separated snapshot sequence; each snapshot is
// one incremental streaming step, with the new state broadcast to every
// rank between steps. For crash recovery, -checkpoint writes the state
// after every completed step (rank 0, atomic rename) and -resume skips
// the steps a previous run already checkpointed, so a restarted cluster
// continues from the last checkpoint instead of recomputing from
// scratch. -heartbeat enables peer failure detection: a dead rank
// surfaces as a typed peer-down error within a few intervals instead of
// stalling until the receive timeout.
//
// A second invocation can still pass -prev state.gob and the next
// snapshot to perform an incremental streaming step across processes.
//
// A third mode, -serve-http, skips files and clusters entirely: one
// process ingests events over HTTP and answers reconstruction and
// top-K queries from epoch-swapped factor snapshots (see serve.go).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dismastd"
	"dismastd/internal/cluster"
	"dismastd/internal/core"
	"dismastd/internal/dtd"
	"dismastd/internal/layout"
	"dismastd/internal/obs"
	obscluster "dismastd/internal/obs/cluster"
	"dismastd/internal/partition"
	"dismastd/internal/sample"
	"dismastd/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
}

// workerConfig carries the parsed worker-mode flags.
type workerConfig struct {
	join, listen  string
	tensors       []string
	prevPath      string
	outPath       string
	checkpoint    string
	resume        bool
	rank, iters   int
	threads       int
	layout        layout.Kind
	solver        sample.Kind
	samples       int
	mu            float64
	method        partition.Method
	seed          uint64
	timeout       time.Duration
	heartbeat     time.Duration
	chaosKillStep int
	debugAddr     string
	ringThreshold int

	elastic bool
	members int
	joinAt  map[int]int // step -> joining world rank
	drainAt map[int]int // step -> draining world rank
	killAt  map[int]int // step -> chaos-killed world rank

	plane     bool
	rebalance bool
	threshold float64
	cooldown  int
}

// planeConfig maps the detector knobs onto the plane configuration;
// zero values mean the plane's own defaults.
func (cfg workerConfig) planeConfig() obscluster.Config {
	return obscluster.Config{Detector: obscluster.DetectorConfig{
		Threshold: cfg.threshold,
		Cooldown:  cfg.cooldown,
	}}
}

// resolveThreads maps the -threads flag to a pool size: 0 means one
// compute thread per available CPU.
func resolveThreads(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	serve := fs.String("serve", "", "rendezvous mode: listen address (e.g. 127.0.0.1:9000)")
	serveHTTP := fs.String("serve-http", "", "serve mode: run the online ingest/query front end on this address (e.g. 127.0.0.1:8080)")
	statePath := fs.String("state", "", "serve mode: model checkpoint path — resumed at start if present, written on shutdown")
	sweepEvery := fs.Int("sweep-every", 4096, "serve mode: run the drift-backstop full ALS sweep once this many events are pending (0 = only on /flush and shutdown)")
	workers := fs.Int("workers", 1, "serve mode: decomposition engine workers (1 = centralized DTD, >1 = in-process distributed DisMASTD)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "serve mode: bound on draining in-flight requests at shutdown")
	size := fs.Int("size", 0, "rendezvous mode: cluster size")
	joinWindow := fs.Duration("join-window", 0, "rendezvous mode: bound on total cluster formation time (0 = none)")
	join := fs.String("join", "", "worker mode: rendezvous address to join")
	listen := fs.String("listen", "127.0.0.1:0", "worker mode: this rank's listen address")
	tensorPath := fs.String("tensor", "", "worker mode: comma-separated snapshot tensor files (text or .bin/.gob)")
	prevPath := fs.String("prev", "", "worker mode: previous state file (empty = decompose from scratch)")
	outPath := fs.String("out", "", "worker mode: where rank 0 writes the resulting state")
	checkpoint := fs.String("checkpoint", "", "worker mode: prefix for per-step state checkpoints (rank 0 writes <prefix>.step<K>.gob)")
	resume := fs.Bool("resume", false, "worker mode: continue from the latest -checkpoint instead of recomputing completed steps")
	rank := fs.Int("rank", 10, "CP rank R")
	iters := fs.Int("iters", 10, "maximum ALS sweeps")
	threads := fs.Int("threads", 0, "compute threads for this rank's numeric kernels (0 = GOMAXPROCS); results are identical at every value")
	layoutFlag := fs.String("layout", "coo", "sparse kernel representation: coo or compiled; results are identical under either")
	solver := fs.String("solver", "exact", "least-squares strategy: exact (full MTTKRP) or sampled (leverage-score sketch, sublinear in nnz; forces broadcast row exchange)")
	samples := fs.Int("samples", 0, "sketch size per mode for -solver sampled (0 = default 8192)")
	mu := fs.Float64("mu", 0.8, "forgetting factor")
	method := fs.String("method", "mtp", "partitioning heuristic: gtp or mtp (both tensor-stationary: entries stay put, factor rows travel)")
	seed := fs.Uint64("seed", 1, "initialisation seed")
	timeout := fs.Duration("timeout", 2*time.Minute, "join and receive timeout")
	heartbeat := fs.Duration("heartbeat", 0, "peer failure-detection probe interval (0 = off)")
	chaosKill := fs.Int("chaos-kill-step", -1, "chaos testing: close the node and exit right before this step")
	ringThreshold := fs.Int("ring-threshold", cluster.DefaultRingThreshold, "payload bytes at which collectives switch from the tree to the ring path (<= 0 disables the ring; must match on every rank)")
	debugAddr := fs.String("debug-addr", "", "worker mode: serve pprof, metrics, and trace debug endpoints on this address (no auth — bind loopback only; empty = off)")
	elastic := fs.Bool("elastic", false, "worker mode: run the elastic membership driver (survive rank deaths, admit joins and drains at step fences)")
	members := fs.Int("members", 0, "elastic mode: initial members, world ranks 0..N-1 (0 = every rank; the rest start as spares)")
	joinAt := fs.String("join-at", "", "elastic mode: scripted joins as rank:step,... — identical on every rank")
	drainAt := fs.String("drain-at", "", "elastic mode: scripted drains as rank:step,... — identical on every rank")
	killAt := fs.String("kill-at", "", "elastic mode: chaos-kill script as rank:step,... — the named rank crashes mid-step; identical on every rank")
	plane := fs.Bool("plane", false, "worker mode: run the cluster observability plane — per-step fences gather every rank's metric deltas, spans, and runtime gauges to rank 0, served on -debug-addr's /debug/cluster")
	rebalance := fs.Bool("rebalance-on-imbalance", false, "elastic mode: arm the plane's imbalance detector — sustained per-rank compute skew re-partitions the stream live at the next fence (implies -plane)")
	threshold := fs.Float64("imbalance-threshold", 0, "detector: load/compute coefficient of variation that counts as imbalanced (0 = default 0.3)")
	cooldown := fs.Int("imbalance-cooldown", 0, "detector: fences to hold fire after a rebalance (0 = default 2)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *serveHTTP != "":
		if *serve != "" || *join != "" {
			return fmt.Errorf("-serve-http is exclusive with -serve and -join")
		}
		cfg := serveConfig{
			addr:      *serveHTTP,
			statePath: *statePath,
			opts: dismastd.Options{
				Rank: *rank, MaxIters: *iters, ForgettingFactor: *mu, Seed: *seed,
				Workers: *workers, Threads: resolveThreads(*threads), Layout: *layoutFlag,
				Solver: *solver, Samples: *samples,
				SweepEvery: *sweepEvery,
			},
			drainTimeout: *drainTimeout,
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		return runServe(cfg, stdout, stderr, sig)
	case *serve != "":
		if *size <= 0 {
			return fmt.Errorf("-serve requires -size")
		}
		rv, err := cluster.NewRendezvousConfigured(*serve, *size, cluster.RendezvousConfig{
			JoinWindow: *joinWindow,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stderr, "worker: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "worker: rendezvous on %s for %d ranks\n", rv.Addr(), *size)
		return rv.Wait()
	case *join != "":
		var pm partition.Method
		switch strings.ToLower(*method) {
		case "gtp":
			pm = partition.GTPMethod
		case "mtp":
			pm = partition.MTPMethod
		default:
			return fmt.Errorf("unknown method %q", *method)
		}
		if *tensorPath == "" {
			return fmt.Errorf("worker mode requires -tensor")
		}
		if *resume && *checkpoint == "" {
			return fmt.Errorf("-resume requires -checkpoint")
		}
		joins, err := parseRankSteps(*joinAt)
		if err != nil {
			return fmt.Errorf("-join-at: %w", err)
		}
		drains, err := parseRankSteps(*drainAt)
		if err != nil {
			return fmt.Errorf("-drain-at: %w", err)
		}
		kills, err := parseRankSteps(*killAt)
		if err != nil {
			return fmt.Errorf("-kill-at: %w", err)
		}
		if !*elastic && (len(joins)+len(drains)+len(kills) > 0 || *members != 0) {
			return fmt.Errorf("-members/-join-at/-drain-at/-kill-at require -elastic")
		}
		if *rebalance && !*elastic {
			return fmt.Errorf("-rebalance-on-imbalance requires -elastic (only the elastic driver can re-partition a live stream)")
		}
		lk, err := layout.ParseKind(*layoutFlag)
		if err != nil {
			return err
		}
		sk, err := sample.ParseKind(*solver)
		if err != nil {
			return err
		}
		cfg := workerConfig{
			join: *join, listen: *listen,
			tensors:  strings.Split(*tensorPath, ","),
			prevPath: *prevPath, outPath: *outPath,
			checkpoint: *checkpoint, resume: *resume,
			rank: *rank, iters: *iters, threads: resolveThreads(*threads), layout: lk, mu: *mu, method: pm, seed: *seed,
			solver: sk, samples: *samples,
			timeout: *timeout, heartbeat: *heartbeat, chaosKillStep: *chaosKill,
			debugAddr: *debugAddr, ringThreshold: *ringThreshold,
			elastic: *elastic, members: *members,
			joinAt: joins, drainAt: drains, killAt: kills,
			plane: *plane || *rebalance, rebalance: *rebalance,
			threshold: *threshold, cooldown: *cooldown,
		}
		return runWorker(stdout, stderr, cfg)
	default:
		return fmt.Errorf("need -serve or -join")
	}
}

func runWorker(stdout, stderr io.Writer, cfg workerConfig) error {
	logger := obs.NewLogger(stderr, slog.LevelInfo)
	snaps := make([]*tensor.Tensor, len(cfg.tensors))
	for i, path := range cfg.tensors {
		snap, err := loadTensor(path)
		if err != nil {
			return fmt.Errorf("load tensor %s: %w", path, err)
		}
		snaps[i] = snap
	}
	prev := dtd.EmptyState(snaps[0].Order(), cfg.rank)
	if cfg.prevPath != "" {
		st, err := readStateFile(cfg.prevPath)
		if err != nil {
			return fmt.Errorf("read prev state: %w", err)
		}
		prev = st
	}
	start := 0
	if cfg.resume {
		st, step, err := latestCheckpoint(cfg.checkpoint, len(snaps), func(step int, err error) {
			logger.Warn("ignoring damaged checkpoint", "step", step, "err", err)
		})
		if err != nil {
			return err
		}
		if st != nil {
			prev = st
			start = step + 1
			logger.Info("resuming after checkpoint", "step", step, "path", checkpointPath(cfg.checkpoint, step))
		}
	}

	node, err := cluster.JoinTCP(cfg.join, cfg.listen, cfg.timeout)
	if err != nil {
		return fmt.Errorf("join cluster: %w", err)
	}
	defer node.Close()
	node.SetRecvTimeout(cfg.timeout)
	node.SetRingThreshold(cfg.ringThreshold)
	node.SetLogger(logger)
	log := logger.With("rank", node.Rank(), "size", node.Size())
	if cfg.heartbeat > 0 {
		if err := node.StartHeartbeat(cfg.heartbeat, 3); err != nil {
			return err
		}
	}
	// The cluster plane comes up lazily (the elastic driver builds it
	// per stream); the debug endpoints hold a pointer they resolve per
	// scrape, serving 503 until the first fence can run.
	var planeHolder atomic.Pointer[obscluster.Plane]
	if cfg.debugAddr != "" {
		srv, addr, err := startDebugServer(cfg.debugAddr, node.Obs(), planeHolder.Load)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer srv.Close()
		log.Info("debug endpoints serving", "addr", addr.String())
	}
	if cfg.elastic {
		return runElasticWorker(stdout, log, node, cfg, snaps, prev, start, &planeHolder)
	}

	var plane *obscluster.Plane
	var planeMembers []int
	if cfg.plane {
		plane = obscluster.NewPlane(cfg.planeConfig(), node.Obs(), node.Size())
		planeHolder.Store(plane)
		planeMembers = make([]int, node.Size())
		for i := range planeMembers {
			planeMembers[i] = i
		}
	}

	for step := start; step < len(snaps); step++ {
		node.Obs().Trace.SetSnapshot(step)
		if step == cfg.chaosKillStep {
			node.Close()
			return fmt.Errorf("chaos: rank %d killed before step %d", node.Rank(), step)
		}
		job, err := core.NewStepJob(prev, snaps[step], core.Options{
			Rank: cfg.rank, MaxIters: cfg.iters, Mu: cfg.mu, Seed: cfg.seed,
			Workers: node.Size(), Method: cfg.method, Threads: cfg.threads,
			Layout: cfg.layout, Solver: cfg.solver, Samples: cfg.samples, Obs: node.Obs(),
		})
		if err != nil {
			return err
		}
		stats, err := node.Run(job.RunWorker)
		if err != nil {
			return fmt.Errorf("rank %d step %d: %w", node.Rank(), step, err)
		}
		var payload []byte
		if node.Rank() == 0 {
			st, sum, err := job.Result()
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "rank 0: iters=%d loss=%.6g complement_nnz=%d\n", sum.Iters, sum.Loss, sum.ComplementNNZ)
			var buf bytes.Buffer
			if err := dtd.WriteState(&buf, st); err != nil {
				return err
			}
			payload = buf.Bytes()
		}
		// Every rank needs the new state to plan the next step: rank 0
		// broadcasts the serialized factors, and all ranks (rank 0
		// included) adopt the decoded copy so the replicas stay bitwise
		// identical with a resumed-from-checkpoint run.
		var next *dtd.State
		if _, err := node.Run(func(w *cluster.Worker) error {
			b, err := w.BroadcastBytes(0, payload)
			if err != nil {
				return err
			}
			next, err = dtd.ReadState(bytes.NewReader(b))
			return err
		}); err != nil {
			return fmt.Errorf("rank %d step %d state broadcast: %w", node.Rank(), step, err)
		}
		prev = next
		// The static loop's fence: the membership never changes, so the
		// plane runs purely as observation — epoch 0, identity members —
		// aggregating the step's spans and metric deltas on rank 0.
		if plane != nil {
			if _, err := node.Run(func(w *cluster.Worker) error {
				_, ferr := plane.Fence(w, planeMembers, 0, step, job.PlannedLoads())
				return ferr
			}); err != nil {
				return fmt.Errorf("rank %d step %d plane fence: %w", node.Rank(), step, err)
			}
		}
		if node.Rank() == 0 && cfg.checkpoint != "" {
			if err := writeCheckpoint(cfg.checkpoint, step, prev); err != nil {
				return fmt.Errorf("checkpoint step %d: %w", step, err)
			}
			log.Info("checkpoint written", "step", step, "path", checkpointPath(cfg.checkpoint, step))
		}
		log.Info("step done", "step", step,
			"bytes_sent", stats.Ranks[0].BytesSent, "msgs_sent", stats.Ranks[0].MsgsSent,
			"wall", stats.Wall.Round(time.Millisecond))
	}

	if node.Rank() != 0 {
		return nil
	}
	if cfg.outPath != "" {
		f, err := os.Create(cfg.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dtd.WriteState(f, prev); err != nil {
			return err
		}
		log.Info("state written", "path", cfg.outPath)
	}
	return nil
}

// runElasticWorker drives the whole snapshot stream through the
// elastic membership driver in a single cluster run: scripted joins
// and drains are admitted at step fences, real (or -kill-at scripted)
// rank deaths are recovered mid-step by the survivors, and whichever
// rank ends as the final view's rank 0 writes the result. Crash
// recovery needs -heartbeat so deaths surface as typed peer-down
// errors instead of receive timeouts.
func runElasticWorker(stdout io.Writer, log *slog.Logger, node *cluster.TCPNode, cfg workerConfig, snaps []*tensor.Tensor, prev *dtd.State, start int, planeHolder *atomic.Pointer[obscluster.Plane]) error {
	members := cfg.members
	if members == 0 {
		members = node.Size()
	}
	// A resumed run re-indexes the script against the remaining
	// snapshots; events for already-checkpointed steps are dropped.
	shift := func(script map[int]int) map[int]int {
		out := map[int]int{}
		for s, r := range script {
			if s >= start {
				out[s-start] = r
			}
		}
		return out
	}
	o := core.ElasticOptions{
		Options: core.Options{
			Rank: cfg.rank, MaxIters: cfg.iters, Mu: cfg.mu, Seed: cfg.seed,
			Method: cfg.method, Threads: cfg.threads, Layout: cfg.layout,
			Solver: cfg.solver, Samples: cfg.samples, Obs: node.Obs(),
		},
		World:       node.Size(),
		Members:     members,
		KillAtStep:  shift(cfg.killAt),
		JoinAtStep:  shift(cfg.joinAt),
		DrainAtStep: shift(cfg.drainAt),
	}
	if cfg.plane {
		pc := cfg.planeConfig()
		o.Plane = &pc
		o.RebalanceOnImbalance = cfg.rebalance
		o.PlaneReady = func(_ int, p *obscluster.Plane) { planeHolder.Store(p) }
	}
	if cfg.checkpoint != "" {
		o.Checkpoint = func(step int, st *dtd.State) error {
			if step == 0 {
				return nil // the state entering step 0 is the run's input, already on disk
			}
			abs := start + step - 1
			if err := writeCheckpoint(cfg.checkpoint, abs, st); err != nil {
				return err
			}
			log.Info("checkpoint written", "step", abs, "path", checkpointPath(cfg.checkpoint, abs))
			return nil
		}
	}
	job, err := core.NewElasticJob(prev, snaps[start:], o)
	if err != nil {
		return err
	}
	stats, runErr := node.Run(job.RunWorker)
	if st, loss, transitions, err := job.Result(); err == nil {
		// This rank ended as the final view's rank 0 and holds the state.
		fmt.Fprintf(stdout, "rank %d: final loss=%.6g transitions=%d\n", node.Rank(), loss, len(transitions))
		if cfg.outPath != "" {
			f, err := os.Create(cfg.outPath)
			if err != nil {
				return err
			}
			if err := dtd.WriteState(f, st); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			log.Info("state written", "path", cfg.outPath)
		}
	}
	if runErr != nil {
		return fmt.Errorf("rank %d elastic run: %w", node.Rank(), runErr)
	}
	log.Info("elastic run done", "wall", stats.Wall.Round(time.Millisecond))
	return nil
}

// parseRankSteps parses a "rank:step,rank:step" membership script with
// at most one event of its kind per step.
func parseRankSteps(s string) (map[int]int, error) {
	out := map[int]int{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		rs, ss, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("entry %q is not rank:step", part)
		}
		rank, err1 := strconv.Atoi(rs)
		step, err2 := strconv.Atoi(ss)
		if err1 != nil || err2 != nil || rank < 0 || step < 0 {
			return nil, fmt.Errorf("entry %q is not rank:step", part)
		}
		if _, dup := out[step]; dup {
			return nil, fmt.Errorf("two events at step %d", step)
		}
		out[step] = rank
	}
	return out, nil
}

// startDebugServer serves the node's observability debug endpoints
// (net/http/pprof, /metrics, /debug/metrics, /debug/phases,
// /debug/trace) plus the cluster plane's /debug/cluster views on addr
// until the returned server is closed. The endpoints carry no
// authentication; addr should stay on loopback or a trusted network.
func startDebugServer(addr string, o *obs.Obs, getPlane func() *obscluster.Plane) (*http.Server, net.Addr, error) {
	mux := http.NewServeMux()
	ch := obscluster.Handler(getPlane)
	mux.Handle("/debug/cluster", ch)
	mux.Handle("/debug/cluster/", ch)
	mux.Handle("/", obs.Handler(o))
	return startHTTPServer(addr, mux)
}

// startHTTPServer binds addr (":0" picks a free port) and serves mux in
// the background — the shared listener bring-up for the debug endpoints
// and the serving front end.
func startHTTPServer(addr string, mux *http.ServeMux) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}

// checkpointPath names the checkpoint for one completed step.
func checkpointPath(prefix string, step int) string {
	return fmt.Sprintf("%s.step%d.gob", prefix, step)
}

// writeCheckpoint persists the post-step state with a temp-file rename
// so a crash mid-write never leaves a truncated checkpoint behind.
func writeCheckpoint(prefix string, step int, st *dtd.State) error {
	path := checkpointPath(prefix, step)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := dtd.WriteState(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// latestCheckpoint finds the highest completed step's readable state,
// falling back past damaged files: a corrupt or truncated checkpoint
// (a torn write on a non-atomic filesystem, a bad disk) costs only the
// steps it covered, not the whole run. Returns (nil, -1, nil) when no
// checkpoint survives.
func latestCheckpoint(prefix string, steps int, warn func(step int, err error)) (*dtd.State, int, error) {
	for step := steps - 1; step >= 0; step-- {
		st, err := readStateFile(checkpointPath(prefix, step))
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if errors.Is(err, dtd.ErrCorruptState) {
			if warn != nil {
				warn(step, err)
			}
			continue
		}
		if err != nil {
			return nil, 0, fmt.Errorf("checkpoint step %d: %w", step, err)
		}
		return st, step, nil
	}
	return nil, -1, nil
}

func readStateFile(path string) (*dtd.State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dtd.ReadState(f)
}

func loadTensor(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".gob") {
		return tensor.ReadBinary(f)
	}
	return tensor.ReadText(f)
}
