// Serve mode: a single-process online front end over the streaming
// decomposer. Instead of reading snapshot files, the worker listens
// for events over HTTP and answers reconstruction and top-K queries
// from the live factors:
//
//	worker -serve-http 127.0.0.1:8080 -rank 8 -sweep-every 4096 -state model.gob
//
//	curl -X POST -d '[{"coords":[3,7,1],"value":4.5}]' http://127.0.0.1:8080/ingest
//	curl 'http://127.0.0.1:8080/predict?at=3,7,1'
//	curl 'http://127.0.0.1:8080/topk?mode=1&at=3,_,1&k=5'
//	curl 'http://127.0.0.1:8080/stats'
//
// Writes (ingest, flush) are serialized on the stream; queries never
// touch it. Every boundary that changes the factors publishes a cloned,
// read-only snapshot behind an atomic pointer — epoch-swapped, so any
// number of concurrent readers score against a consistent model while
// the next micro-batch lands. On SIGTERM the listener stops accepting,
// in-flight requests drain, pending events are flushed, and the final
// checkpoint is written to -state before the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dismastd"
	"dismastd/internal/mat"
	"dismastd/internal/obs"
)

// serveConfig carries the parsed serve-mode flags.
type serveConfig struct {
	addr         string
	statePath    string // resumed at start if present, written on shutdown
	opts         dismastd.Options
	drainTimeout time.Duration

	ready chan<- net.Addr // tests: receives the bound address once listening
}

// factorSnapshot is one epoch's published read-only model: deep clones
// of the factors, swapped in atomically after every write that changes
// them. Readers load the pointer once and score against a consistent
// model for the whole request.
type factorSnapshot struct {
	epoch   int64
	dims    []int
	factors []*mat.Dense
	sweeps  int // full-sweep boundaries behind this model
	pending int // events awaiting the next sweep when published
}

// serveServer is the HTTP front end: a write-locked stream plus the
// epoch-swapped snapshot the read paths serve from.
type serveServer struct {
	mu     sync.Mutex // serializes stream writes (ingest, flush, save)
	stream *dismastd.Stream
	snap   atomic.Pointer[factorSnapshot]
	epoch  atomic.Int64

	events  atomic.Int64
	queries atomic.Int64
	log     *slog.Logger
}

func newServeServer(stream *dismastd.Stream, log *slog.Logger) *serveServer {
	s := &serveServer{stream: stream, log: log}
	s.publishLocked() // a resumed stream has a model to serve immediately
	return s
}

// publishLocked clones the live factors into a fresh snapshot and swaps
// it in. Callers must hold s.mu. Before the first data it is a no-op —
// queries answer 503 until the first flush initialises the model.
func (s *serveServer) publishLocked() {
	factors := s.stream.Factors()
	if factors == nil {
		return
	}
	snap := &factorSnapshot{
		epoch:   s.epoch.Add(1),
		dims:    append([]int(nil), s.stream.Dims()...),
		factors: make([]*mat.Dense, len(factors)),
		sweeps:  s.stream.Snapshots(),
		pending: s.stream.Pending(),
	}
	for m, f := range factors {
		snap.factors[m] = f.Clone()
	}
	s.snap.Store(snap)
}

func (s *serveServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/flush", s.handleFlush)
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/topk", s.handleTopK)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// eventJSON is the wire form of one event.
type eventJSON struct {
	Coords []int   `json:"coords"`
	Value  float64 `json:"value"`
}

// ingestResponse reports what one /ingest call did.
type ingestResponse struct {
	Events      int     `json:"events"`
	RowsUpdated int64   `json:"rows_updated"`
	Pending     int     `json:"pending"`
	Grew        bool    `json:"grew"`
	Dims        []int   `json:"dims"`
	Swept       bool    `json:"swept"`
	Loss        float64 `json:"loss,omitempty"` // set when this call swept
	Epoch       int64   `json:"epoch"`
}

func (s *serveServer) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var raw []eventJSON
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&raw); err != nil {
		http.Error(w, "body must be a JSON array of {coords, value}: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(raw) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	events := make([]dismastd.Event, len(raw))
	for i, e := range raw {
		events[i] = dismastd.Event{Coords: e.Coords, Value: e.Value}
	}
	s.mu.Lock()
	rep, err := s.stream.IngestEvents(events)
	if err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.publishLocked()
	resp := ingestResponse{
		Events:      rep.Events,
		RowsUpdated: rep.RowsUpdated,
		Pending:     rep.Pending,
		Grew:        rep.Grew,
		Dims:        append([]int(nil), rep.Dims...), // rep.Dims is reused by the stream
		Swept:       rep.Sweep != nil,
		Epoch:       s.epoch.Load(),
	}
	if rep.Sweep != nil {
		resp.Loss = rep.Sweep.Loss
	}
	s.mu.Unlock()
	s.events.Add(int64(resp.Events))
	writeJSON(w, resp)
}

func (s *serveServer) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	rep, err := s.stream.Flush()
	if err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.publishLocked()
	epoch := s.epoch.Load()
	s.mu.Unlock()
	out := map[string]any{"swept": rep != nil, "epoch": epoch}
	if rep != nil {
		out["loss"] = rep.Loss
		out["iters"] = rep.Iters
	}
	writeJSON(w, out)
}

// loadSnapshot answers 503 until the first model exists.
func (s *serveServer) loadSnapshot(w http.ResponseWriter) *factorSnapshot {
	snap := s.snap.Load()
	if snap == nil {
		http.Error(w, "no model yet: ingest events and flush first", http.StatusServiceUnavailable)
	}
	return snap
}

// parseAt parses "i,j,k" against the snapshot dims. A coordinate may be
// "_" (wildcard) only at the position in skip (pass -1 for none).
func parseAt(q string, dims []int, skip int) ([]int, error) {
	parts := strings.Split(q, ",")
	if len(parts) != len(dims) {
		return nil, fmt.Errorf("at=%q has %d coordinates, model order is %d", q, len(parts), len(dims))
	}
	idx := make([]int, len(parts))
	for m, p := range parts {
		if m == skip {
			idx[m] = 0
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v >= dims[m] {
			return nil, fmt.Errorf("coordinate %d: %q out of range [0, %d)", m, p, dims[m])
		}
		idx[m] = v
	}
	return idx, nil
}

func (s *serveServer) handlePredict(w http.ResponseWriter, r *http.Request) {
	snap := s.loadSnapshot(w)
	if snap == nil {
		return
	}
	idx, err := parseAt(r.URL.Query().Get("at"), snap.dims, -1)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.queries.Add(1)
	writeJSON(w, map[string]any{"epoch": snap.epoch, "at": idx, "value": dismastd.Predict(snap.factors, idx)})
}

// topKResult is one scored row of the target mode.
type topKResult struct {
	Index int     `json:"index"`
	Score float64 `json:"score"`
}

func (s *serveServer) handleTopK(w http.ResponseWriter, r *http.Request) {
	snap := s.loadSnapshot(w)
	if snap == nil {
		return
	}
	q := r.URL.Query()
	mode, err := strconv.Atoi(q.Get("mode"))
	if err != nil || mode < 0 || mode >= len(snap.dims) {
		http.Error(w, fmt.Sprintf("mode=%q out of range [0, %d)", q.Get("mode"), len(snap.dims)), http.StatusBadRequest)
		return
	}
	k := 10
	if ks := q.Get("k"); ks != "" {
		if k, err = strconv.Atoi(ks); err != nil || k <= 0 {
			http.Error(w, "k must be a positive integer", http.StatusBadRequest)
			return
		}
	}
	idx, err := parseAt(q.Get("at"), snap.dims, mode)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Collapse the fixed modes into one rank-length weight vector, then
	// score every row of the target mode with a single dot product.
	rank := snap.factors[0].Cols
	weights := make([]float64, rank)
	for c := range weights {
		weights[c] = 1
	}
	for m, f := range snap.factors {
		if m == mode {
			continue
		}
		row := f.Row(idx[m])
		for c := range weights {
			weights[c] *= row[c]
		}
	}
	target := snap.factors[mode]
	results := make([]topKResult, target.Rows)
	for i := 0; i < target.Rows; i++ {
		row := target.Row(i)
		score := 0.0
		for c, wc := range weights {
			score += wc * row[c]
		}
		results[i] = topKResult{Index: i, Score: score}
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Score != results[b].Score {
			return results[a].Score > results[b].Score
		}
		return results[a].Index < results[b].Index
	})
	if k > len(results) {
		k = len(results)
	}
	s.queries.Add(1)
	writeJSON(w, map[string]any{"epoch": snap.epoch, "mode": mode, "results": results[:k]})
}

func (s *serveServer) handleStats(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{
		"events":  s.events.Load(),
		"queries": s.queries.Load(),
		"epoch":   s.epoch.Load(),
	}
	if snap := s.snap.Load(); snap != nil {
		out["dims"] = snap.dims
		out["sweeps"] = snap.sweeps
		out["pending"] = snap.pending
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// saveStreamCheckpoint writes the stream's checkpoint with a temp-file
// rename, like the worker's per-step checkpoints: a crash mid-write
// never leaves a truncated model behind. Save flushes pending events
// first, so the file always sits on a sweep boundary.
func saveStreamCheckpoint(path string, stream *dismastd.Stream) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := stream.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// runServe runs the serving front end until sig delivers a shutdown
// signal, then drains and checkpoints. The injectable channel is what
// makes graceful shutdown testable in-process.
func runServe(cfg serveConfig, stdout, stderr io.Writer, sig <-chan os.Signal) error {
	logger := obs.NewLogger(stderr, slog.LevelInfo)
	stream := dismastd.NewStream(cfg.opts)
	if cfg.statePath != "" {
		f, err := os.Open(cfg.statePath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start; the path is written on shutdown.
		case err != nil:
			return fmt.Errorf("open state: %w", err)
		default:
			stream, err = dismastd.ResumeStream(f, cfg.opts)
			f.Close()
			if err != nil {
				return fmt.Errorf("resume %s: %w", cfg.statePath, err)
			}
			logger.Info("resumed model", "path", cfg.statePath, "dims", fmt.Sprint(stream.Dims()), "sweeps", stream.Snapshots())
		}
	}
	srv := newServeServer(stream, logger)
	httpSrv, addr, err := startHTTPServer(cfg.addr, srv.mux())
	if err != nil {
		return fmt.Errorf("serve listener: %w", err)
	}
	fmt.Fprintf(stdout, "serving on %s\n", addr)
	logger.Info("serving", "addr", addr.String())
	if cfg.ready != nil {
		cfg.ready <- addr
	}

	<-sig
	logger.Info("shutdown: draining in-flight requests")
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// Drain overran the timeout; the final checkpoint still runs.
		logger.Warn("drain incomplete", "err", err)
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if cfg.statePath != "" && (stream.Factors() != nil || stream.Pending() > 0) {
		if err := saveStreamCheckpoint(cfg.statePath, stream); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		logger.Info("final checkpoint written", "path", cfg.statePath, "sweeps", stream.Snapshots())
	}
	logger.Info("serve shut down", "events", srv.events.Load(), "queries", srv.queries.Load())
	return nil
}
