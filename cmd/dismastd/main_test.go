package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dismastd"
)

// writeSnapshots produces two nested snapshot files in dir.
func writeSnapshots(t *testing.T, dir string) (string, string) {
	t.Helper()
	full := dismastd.GenerateDataset(dismastd.DatasetNetflix, 3000, 5)
	seq, err := dismastd.GrowthSchedule(full, []float64{0.8, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, 2)
	for i := 0; i < 2; i++ {
		paths[i] = filepath.Join(dir, []string{"a.tsv", "b.bin"}[i])
		f, err := os.Create(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			err = dismastd.WriteTensorText(f, seq.Snapshot(i))
		} else {
			err = dismastd.WriteTensorBinary(f, seq.Snapshot(i))
		}
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	return paths[0], paths[1]
}

func TestStreamingRun(t *testing.T) {
	dir := t.TempDir()
	a, b := writeSnapshots(t, dir)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-rank", "3", "-iters", "4", "-workers", "3", "-method", "mtp", a, b}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "snapshot 0") || !strings.Contains(out, "snapshot 1") {
		t.Fatalf("missing snapshot lines:\n%s", out)
	}
	if !strings.Contains(out, "traffic=") {
		t.Fatalf("distributed run reported no traffic:\n%s", out)
	}
	if !strings.Contains(out, "final factors:") {
		t.Fatalf("missing factor summary:\n%s", out)
	}
}

func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	a, b := writeSnapshots(t, dir)
	state := filepath.Join(dir, "state.gob")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-rank", "3", "-iters", "3", "-checkpoint", state, a}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	stdout.Reset()
	if err := run([]string{"-rank", "3", "-iters", "3", "-resume", state, b}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "snapshot 1") {
		t.Fatalf("resumed run did not continue numbering:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	a, _ := writeSnapshots(t, dir)
	var stdout, stderr bytes.Buffer
	for name, args := range map[string][]string{
		"no files":     {"-rank", "2"},
		"bad method":   {"-method", "xyz", a},
		"missing file": {filepath.Join(dir, "nope.tsv")},
		"bad resume":   {"-resume", filepath.Join(dir, "nope.gob"), a},
	} {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
