// Command dismastd decomposes a multi-aspect streaming tensor given as
// a sequence of nested snapshot files (text or binary tensor format).
// The first snapshot is decomposed with full CP-ALS; each subsequent
// snapshot is an incremental DisMASTD step that touches only the new
// data.
//
// Usage:
//
//	dismastd -rank 10 -workers 8 -method mtp snap75.tsv snap80.tsv snap100.tsv
//	dismastd -rank 10 single.tsv            # static decomposition
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"dismastd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "dismastd: %v\n", err)
		os.Exit(1)
	}
}

func loadTensor(path string) (*dismastd.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") || strings.HasSuffix(path, ".gob") {
		return dismastd.ReadTensorBinary(f)
	}
	return dismastd.ReadTensorText(f)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dismastd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rank := fs.Int("rank", 10, "number of CP components R")
	iters := fs.Int("iters", 10, "maximum ALS sweeps per snapshot")
	mu := fs.Float64("mu", 0.8, "forgetting factor in (0, 1]")
	workers := fs.Int("workers", 1, "worker count (1 = centralized DTD, >1 = distributed DisMASTD)")
	threads := fs.Int("threads", 0, "compute threads per worker (0 = GOMAXPROCS); results are identical at every value")
	layoutFlag := fs.String("layout", "coo", "sparse kernel representation: coo or compiled; results are identical under either")
	solver := fs.String("solver", "exact", "least-squares strategy: exact (full MTTKRP) or sampled (leverage-score sketch, sublinear in nnz)")
	samples := fs.Int("samples", 0, "sketch size per mode for -solver sampled (0 = default 8192)")
	parts := fs.Int("parts", 0, "tensor partitions per mode (default = workers)")
	method := fs.String("method", "gtp", "partitioning heuristic: gtp or mtp (both tensor-stationary: entries stay put, factor rows travel)")
	seed := fs.Uint64("seed", 1, "initialisation seed")
	ckpt := fs.String("checkpoint", "", "write the final stream state to this path")
	resume := fs.String("resume", "", "resume from a state previously written with -checkpoint")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no snapshot files given")
	}
	var partitioner dismastd.Partitioner
	switch strings.ToLower(*method) {
	case "gtp":
		partitioner = dismastd.GTP
	case "mtp":
		partitioner = dismastd.MTP
	default:
		return fmt.Errorf("unknown method %q (gtp or mtp)", *method)
	}

	nthreads := *threads
	if nthreads == 0 {
		nthreads = runtime.GOMAXPROCS(0)
	}
	opts := dismastd.Options{
		Rank: *rank, MaxIters: *iters, ForgettingFactor: *mu, Seed: *seed,
		Workers: *workers, Parts: *parts, Partitioner: partitioner,
		Threads: nthreads, Layout: *layoutFlag,
		Solver: *solver, Samples: *samples,
	}
	stream := dismastd.NewStream(opts)
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			return fmt.Errorf("open resume state: %w", err)
		}
		stream, err = dismastd.ResumeStream(f, opts)
		f.Close()
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
	}

	for _, path := range fs.Args() {
		t, err := loadTensor(path)
		if err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		rep, err := stream.Ingest(t)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(stdout, "snapshot %d  %-24s dims=%v nnz=%d touched=%d iters=%d loss=%.6g wall=%s",
			rep.Snapshot, path, t.Dims, t.NNZ(), rep.EntriesTouched, rep.Iters, rep.Loss, rep.Wall.Round(time.Microsecond))
		if rep.BytesOnWire > 0 {
			fmt.Fprintf(stdout, " traffic=%dB", rep.BytesOnWire)
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintf(stdout, "final factors:")
	for m, f := range stream.Factors() {
		fmt.Fprintf(stdout, " mode%d=%dx%d", m, f.Rows, f.Cols)
	}
	fmt.Fprintln(stdout)

	if *ckpt != "" {
		f, err := os.Create(*ckpt)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := stream.Save(f); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "dismastd: state checkpointed to %s\n", *ckpt)
	}
	return nil
}
