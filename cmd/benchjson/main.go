// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file, echoing the original output through to
// stdout so the run stays human-readable. `make bench` pipes the kernel
// benchmarks through it to produce BENCH_kernels.json, the artefact
// tracked across PRs for performance regressions.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Row is one benchmark result line.
type Row struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "BENCH_kernels.json", "output JSON path")
	flag.Parse()

	var rows []Row
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		row := Row{Package: pkg, Name: m[1], Iters: iters, NsPerOp: ns}
		if m[4] != "" {
			if v, err := strconv.ParseInt(m[4], 10, 64); err == nil {
				row.BytesPerOp = &v
			}
		}
		if m[5] != "" {
			if v, err := strconv.ParseInt(m[5], 10, 64); err == nil {
				row.AllocsPerOp = &v
			}
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rows), *out)
}
