// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file, echoing the original output through to
// stdout so the run stays human-readable. `make bench` pipes the kernel
// benchmarks through it to produce BENCH_kernels.json and `make
// bench-paper` the streaming suite through it to produce
// BENCH_stream.json — the artefacts tracked across PRs for performance
// regressions.
//
// A benchmark line is the name, the iteration count, then (value, unit)
// pairs. The standard units land in dedicated fields; custom metrics
// reported with b.ReportMetric (e.g. mttkrp_p50_us) are collected in
// the extra map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Row is one benchmark result line.
type Row struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// parseBenchLine decodes one `go test -bench` result line, generically:
// name, iteration count, then alternating value/unit fields.
func parseBenchLine(line, pkg string) (Row, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Row{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Row{}, false
	}
	row := Row{Package: pkg, Name: fields[0], Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Row{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			row.NsPerOp = v
		case "B/op":
			b := int64(v)
			row.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			row.AllocsPerOp = &a
		default:
			if row.Extra == nil {
				row.Extra = map[string]float64{}
			}
			row.Extra[unit] = v
		}
	}
	return row, true
}

func main() {
	out := flag.String("o", "BENCH_kernels.json", "output JSON path")
	flag.Parse()

	var rows []Row
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if row, ok := parseBenchLine(line, pkg); ok {
			rows = append(rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rows), *out)
}
