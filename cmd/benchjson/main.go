// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file, echoing the original output through to
// stdout so the run stays human-readable. `make bench` pipes the kernel
// benchmarks through it to produce BENCH_kernels.json, `make
// bench-paper` the streaming suite through it to produce
// BENCH_stream.json, and `make bench-par` the thread-scaling suite
// through it to produce BENCH_parallel.json — the artefacts tracked
// across PRs for performance regressions.
//
// A benchmark line is the name, the iteration count, then (value, unit)
// pairs. The standard units land in dedicated fields; custom metrics
// reported with b.ReportMetric (e.g. mttkrp_p50_us) are collected in
// the extra map. The file wraps the rows with the run's environment
// (goos/goarch/cpu headers from the bench output, GOMAXPROCS from the
// benchmark name suffix), and rows that differ only in a "threads=N"
// name segment gain a derived speedup_vs_1 metric — the 1-thread
// ns/op of the same benchmark divided by the row's own. Rows that
// differ only in a "layout=K" segment likewise gain speedup_vs_coo
// against the layout=coo baseline, and rows differing only in a
// "solver=K" segment gain speedup_vs_exact and fit_gap against the
// solver=exact baseline (`make bench-sampled` → BENCH_sampled.json).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Row is one benchmark result line.
type Row struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Meta records the environment the benchmarks ran in.
type Meta struct {
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	CPU        string `json:"cpu,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
}

// File is the JSON document benchjson writes.
type File struct {
	Meta    Meta  `json:"meta"`
	Results []Row `json:"results"`
}

// parseBenchLine decodes one `go test -bench` result line, generically:
// name, iteration count, then alternating value/unit fields.
func parseBenchLine(line, pkg string) (Row, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Row{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Row{}, false
	}
	row := Row{Package: pkg, Name: fields[0], Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Row{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			row.NsPerOp = v
		case "B/op":
			b := int64(v)
			row.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			row.AllocsPerOp = &a
		default:
			if row.Extra == nil {
				row.Extra = map[string]float64{}
			}
			row.Extra[unit] = v
		}
	}
	return row, true
}

// procsSuffix extracts N from the standard "-N" benchmark name suffix
// (the GOMAXPROCS of the run), or 0 when absent.
func procsSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}

var (
	threadsSeg = regexp.MustCompile(`threads=(\d+)`)
	layoutSeg  = regexp.MustCompile(`layout=(\w+)`)
	clientsSeg = regexp.MustCompile(`clients=(\d+)`)
	solverSeg  = regexp.MustCompile(`solver=(\w+)(?:/samples=\d+)?`)
)

// addSpeedups annotates every row whose name carries a "threads=N"
// segment with speedup_vs_1 (the ns/op of the matching threads=1 row —
// same package, same name otherwise — divided by the row's own), and
// every row carrying a "layout=K" segment with speedup_vs_coo against
// the matching layout=coo row. The two derivations are independent: a
// layout=compiled/threads=8 row gains both columns.
func addSpeedups(rows []Row) {
	derive(rows, threadsSeg, "1", "speedup_vs_1")
	derive(rows, layoutSeg, "coo", "speedup_vs_coo")
}

// addClientScaling annotates every row carrying a "clients=N" name
// segment and a queries_per_sec metric with query_scaling_vs_1client:
// the row's own throughput divided by the matching clients=1 row's —
// the read-path concurrency scaling BENCH_serve.json tracks. Perfect
// scaling is N; a flat line means readers serialize somewhere.
func addClientScaling(rows []Row) {
	key := func(r Row) string {
		return r.Package + "|" + clientsSeg.ReplaceAllString(r.Name, "*")
	}
	base := map[string]float64{}
	for _, r := range rows {
		if m := clientsSeg.FindStringSubmatch(r.Name); m != nil && m[1] == "1" {
			base[key(r)] = r.Extra["queries_per_sec"]
		}
	}
	for i := range rows {
		r := &rows[i]
		qps := r.Extra["queries_per_sec"]
		if b, ok := base[key(*r)]; ok && b > 0 && qps > 0 && clientsSeg.MatchString(r.Name) {
			r.Extra["query_scaling_vs_1client"] = qps / b
		}
	}
}

// addTailRatios derives <phase>_tail_p99_over_p50 for every phase that
// reports both <phase>_p50_us and <phase>_p99_us — the tail
// amplification factor BENCH_stream.json tracks across PRs. A phase
// whose p99 drifts away from its own median signals a straggling rank
// (or a GC/allocation hiccup) long before the median series moves.
func addTailRatios(rows []Row) {
	const p50, p99, ratio = "_p50_us", "_p99_us", "_tail_p99_over_p50"
	for i := range rows {
		r := &rows[i]
		derived := map[string]float64{}
		for k, v := range r.Extra {
			phase, ok := strings.CutSuffix(k, p50)
			if !ok || v == 0 {
				continue
			}
			if tail, ok := r.Extra[phase+p99]; ok {
				derived[phase+ratio] = tail / v
			}
		}
		for k, v := range derived {
			r.Extra[k] = v
		}
	}
}

// addSolverDerived annotates every row carrying a "solver=K" name
// segment (a trailing "/samples=N" folds into the match, so sampled
// rows at any sketch size pair with the same exact baseline) with the
// two metrics BENCH_sampled.json tracks across PRs: speedup_vs_exact —
// the solver=exact row's per-sweep wall (round_us metric when both
// rows report it, ns/op otherwise) divided by the row's own — and
// fit_gap, the exact row's fit minus the row's.
func addSolverDerived(rows []Row) {
	key := func(r Row) string {
		return r.Package + "|" + solverSeg.ReplaceAllString(r.Name, "*")
	}
	baseRound := map[string]float64{}
	baseNs := map[string]float64{}
	baseFit := map[string]*float64{}
	for _, r := range rows {
		if m := solverSeg.FindStringSubmatch(r.Name); m != nil && m[1] == "exact" {
			k := key(r)
			baseRound[k] = r.Extra["round_us"]
			baseNs[k] = r.NsPerOp
			if fit, ok := r.Extra["fit"]; ok {
				f := fit
				baseFit[k] = &f
			}
		}
	}
	for i := range rows {
		r := &rows[i]
		m := solverSeg.FindStringSubmatch(r.Name)
		if m == nil || m[1] == "exact" {
			continue
		}
		k := key(*r)
		if r.Extra == nil {
			r.Extra = map[string]float64{}
		}
		if b, ok := baseRound[k]; ok && b > 0 && r.Extra["round_us"] > 0 {
			r.Extra["speedup_vs_exact"] = b / r.Extra["round_us"]
		} else if b := baseNs[k]; b > 0 && r.NsPerOp > 0 {
			r.Extra["speedup_vs_exact"] = b / r.NsPerOp
		}
		if f := baseFit[k]; f != nil {
			if fit, ok := r.Extra["fit"]; ok {
				r.Extra["fit_gap"] = *f - fit
			}
		}
	}
}

// derive adds metric to every row whose name matches seg, computed as
// the ns/op of the baseline row (seg's capture equal to baseVal, same
// package and name otherwise) divided by the row's own ns/op.
func derive(rows []Row, seg *regexp.Regexp, baseVal, metric string) {
	key := func(r Row) string {
		return r.Package + "|" + seg.ReplaceAllString(r.Name, "*")
	}
	base := map[string]float64{}
	for _, r := range rows {
		if m := seg.FindStringSubmatch(r.Name); m != nil && m[1] == baseVal {
			base[key(r)] = r.NsPerOp
		}
	}
	for i := range rows {
		r := &rows[i]
		if seg.FindStringIndex(r.Name) == nil {
			continue
		}
		b, ok := base[key(*r)]
		if !ok || b == 0 || r.NsPerOp == 0 {
			continue
		}
		if r.Extra == nil {
			r.Extra = map[string]float64{}
		}
		r.Extra[metric] = b / r.NsPerOp
	}
}

func main() {
	out := flag.String("o", "BENCH_kernels.json", "output JSON path")
	flag.Parse()

	var doc File
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "goos: "); ok {
			doc.Meta.GOOS = strings.TrimSpace(rest)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "goarch: "); ok {
			doc.Meta.GOARCH = strings.TrimSpace(rest)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.Meta.CPU = strings.TrimSpace(rest)
			continue
		}
		if row, ok := parseBenchLine(line, pkg); ok {
			if doc.Meta.GOMAXPROCS == 0 {
				doc.Meta.GOMAXPROCS = procsSuffix(row.Name)
			}
			doc.Results = append(doc.Results, row)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	addSpeedups(doc.Results)
	addTailRatios(doc.Results)
	addClientScaling(doc.Results)
	addSolverDerived(doc.Results)
	if doc.Meta.GOMAXPROCS == 0 {
		// No -N name suffix (GOMAXPROCS=1 runs omit it, or no rows):
		// fall back to this process, which `make bench*` runs on the
		// same machine via a pipe.
		doc.Meta.GOMAXPROCS = runtime.GOMAXPROCS(0)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(doc.Results), *out)
}
