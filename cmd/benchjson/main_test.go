package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	row, ok := parseBenchLine("BenchmarkStepLocal-8   \t     12\t  98765 ns/op\t 2048 B/op\t      31 allocs/op", "dismastd/internal/core")
	if !ok {
		t.Fatal("standard line not parsed")
	}
	if row.Name != "BenchmarkStepLocal-8" || row.Iters != 12 || row.NsPerOp != 98765 {
		t.Fatalf("parsed %+v", row)
	}
	if row.BytesPerOp == nil || *row.BytesPerOp != 2048 || row.AllocsPerOp == nil || *row.AllocsPerOp != 31 {
		t.Fatalf("mem fields: %+v", row)
	}
	if row.Package != "dismastd/internal/core" {
		t.Fatalf("package %q", row.Package)
	}

	row, ok = parseBenchLine("BenchmarkStreamPaper-8 1 5.1e+08 ns/op 42.5 mttkrp_p50_us 15 stream_iters", "p")
	if !ok {
		t.Fatal("custom-metric line not parsed")
	}
	if row.NsPerOp != 5.1e8 || row.Extra["mttkrp_p50_us"] != 42.5 || row.Extra["stream_iters"] != 15 {
		t.Fatalf("custom metrics: %+v", row)
	}

	for _, bad := range []string{
		"ok  \tdismastd/internal/core\t0.3s",
		"PASS",
		"BenchmarkBroken-8 notanint 12 ns/op",
		"goos: linux",
	} {
		if _, ok := parseBenchLine(bad, ""); ok {
			t.Fatalf("parsed non-benchmark line %q", bad)
		}
	}
}
