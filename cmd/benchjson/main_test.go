package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	row, ok := parseBenchLine("BenchmarkStepLocal-8   \t     12\t  98765 ns/op\t 2048 B/op\t      31 allocs/op", "dismastd/internal/core")
	if !ok {
		t.Fatal("standard line not parsed")
	}
	if row.Name != "BenchmarkStepLocal-8" || row.Iters != 12 || row.NsPerOp != 98765 {
		t.Fatalf("parsed %+v", row)
	}
	if row.BytesPerOp == nil || *row.BytesPerOp != 2048 || row.AllocsPerOp == nil || *row.AllocsPerOp != 31 {
		t.Fatalf("mem fields: %+v", row)
	}
	if row.Package != "dismastd/internal/core" {
		t.Fatalf("package %q", row.Package)
	}

	row, ok = parseBenchLine("BenchmarkStreamPaper-8 1 5.1e+08 ns/op 42.5 mttkrp_p50_us 15 stream_iters", "p")
	if !ok {
		t.Fatal("custom-metric line not parsed")
	}
	if row.NsPerOp != 5.1e8 || row.Extra["mttkrp_p50_us"] != 42.5 || row.Extra["stream_iters"] != 15 {
		t.Fatalf("custom metrics: %+v", row)
	}

	for _, bad := range []string{
		"ok  \tdismastd/internal/core\t0.3s",
		"PASS",
		"BenchmarkBroken-8 notanint 12 ns/op",
		"goos: linux",
	} {
		if _, ok := parseBenchLine(bad, ""); ok {
			t.Fatalf("parsed non-benchmark line %q", bad)
		}
	}
}

func TestProcsSuffix(t *testing.T) {
	if n := procsSuffix("BenchmarkStepLocal-8"); n != 8 {
		t.Fatalf("procsSuffix = %d, want 8", n)
	}
	if n := procsSuffix("BenchmarkParallelSweep/threads=4-16"); n != 16 {
		t.Fatalf("procsSuffix = %d, want 16", n)
	}
	if n := procsSuffix("BenchmarkNoSuffix"); n != 0 {
		t.Fatalf("procsSuffix = %d, want 0", n)
	}
}

func TestAddSpeedups(t *testing.T) {
	rows := []Row{
		{Package: "p", Name: "BenchmarkParallelSweep/threads=1-8", NsPerOp: 8000},
		{Package: "p", Name: "BenchmarkParallelSweep/threads=4-8", NsPerOp: 2500},
		{Package: "p", Name: "BenchmarkParallelSweep/threads=8-8", NsPerOp: 1000},
		{Package: "q", Name: "BenchmarkParallelSweep/threads=8-8", NsPerOp: 4000}, // other package: no base row
		{Package: "p", Name: "BenchmarkStepLocal-8", NsPerOp: 999},                // no threads segment
	}
	addSpeedups(rows)
	if got := rows[0].Extra["speedup_vs_1"]; got != 1 {
		t.Fatalf("threads=1 speedup %v, want 1", got)
	}
	if got := rows[1].Extra["speedup_vs_1"]; got != 3.2 {
		t.Fatalf("threads=4 speedup %v, want 3.2", got)
	}
	if got := rows[2].Extra["speedup_vs_1"]; got != 8 {
		t.Fatalf("threads=8 speedup %v, want 8", got)
	}
	if _, ok := rows[3].Extra["speedup_vs_1"]; ok {
		t.Fatal("cross-package speedup attributed")
	}
	if _, ok := rows[4].Extra["speedup_vs_1"]; ok {
		t.Fatal("speedup on a row without a threads segment")
	}
}

func TestAddTailRatios(t *testing.T) {
	rows := []Row{
		{Package: "p", Name: "BenchmarkStreamPaper-8", NsPerOp: 1, Extra: map[string]float64{
			"mttkrp_p50_us": 40, "mttkrp_p95_us": 60, "mttkrp_p99_us": 100,
			"solve_p50_us": 10, // no p99 counterpart
			"stream_iters": 15,
		}},
		{Package: "p", Name: "BenchmarkStepLocal-8", NsPerOp: 1}, // no extras at all
	}
	addTailRatios(rows)
	if got := rows[0].Extra["mttkrp_tail_p99_over_p50"]; got != 2.5 {
		t.Fatalf("mttkrp tail ratio %v, want 2.5", got)
	}
	if _, ok := rows[0].Extra["solve_tail_p99_over_p50"]; ok {
		t.Fatal("tail ratio derived without a p99 metric")
	}
	if _, ok := rows[0].Extra["stream_iters_tail_p99_over_p50"]; ok {
		t.Fatal("tail ratio derived from a non-quantile metric")
	}
	if rows[1].Extra != nil {
		t.Fatalf("extras invented on a bare row: %v", rows[1].Extra)
	}
}

func TestAddLayoutSpeedups(t *testing.T) {
	rows := []Row{
		{Package: "p", Name: "BenchmarkMTTKRP/layout=coo/mode=0-8", NsPerOp: 8000},
		{Package: "p", Name: "BenchmarkMTTKRP/layout=compiled/mode=0-8", NsPerOp: 2000},
		{Package: "p", Name: "BenchmarkMTTKRP/layout=compiled/mode=1-8", NsPerOp: 3000}, // no coo base for mode=1
		{Package: "p", Name: "BenchmarkFlatKernel-8", NsPerOp: 999},                     // no layout segment
		{Package: "p", Name: "BenchmarkParallelSweep/layout=compiled/threads=4-8", NsPerOp: 500},
		{Package: "p", Name: "BenchmarkParallelSweep/layout=coo/threads=4-8", NsPerOp: 1500},
		{Package: "p", Name: "BenchmarkParallelSweep/layout=compiled/threads=1-8", NsPerOp: 1000},
	}
	addSpeedups(rows)
	if got := rows[0].Extra["speedup_vs_coo"]; got != 1 {
		t.Fatalf("layout=coo speedup %v, want 1", got)
	}
	if got := rows[1].Extra["speedup_vs_coo"]; got != 4 {
		t.Fatalf("layout=compiled speedup %v, want 4", got)
	}
	if _, ok := rows[2].Extra["speedup_vs_coo"]; ok {
		t.Fatal("speedup without a coo baseline row")
	}
	if _, ok := rows[3].Extra["speedup_vs_coo"]; ok {
		t.Fatal("speedup on a row without a layout segment")
	}
	// The two derivations are independent and may land on one row.
	if got := rows[4].Extra["speedup_vs_coo"]; got != 3 {
		t.Fatalf("mixed row layout speedup %v, want 3", got)
	}
	if got := rows[4].Extra["speedup_vs_1"]; got != 2 {
		t.Fatalf("mixed row thread speedup %v, want 2", got)
	}
}

func TestAddClientScaling(t *testing.T) {
	rows := []Row{
		{Package: "p", Name: "BenchmarkServe/clients=1-8", NsPerOp: 100, Extra: map[string]float64{"queries_per_sec": 5000}},
		{Package: "p", Name: "BenchmarkServe/clients=4-8", NsPerOp: 120, Extra: map[string]float64{"queries_per_sec": 17500}},
		{Package: "p", Name: "BenchmarkServe/clients=8-8", NsPerOp: 150}, // crashed reader: no qps metric
		{Package: "p", Name: "BenchmarkStepLocal-8", NsPerOp: 999},      // no clients segment
	}
	addClientScaling(rows)
	if got := rows[0].Extra["query_scaling_vs_1client"]; got != 1 {
		t.Fatalf("clients=1 scaling %v, want 1", got)
	}
	if got := rows[1].Extra["query_scaling_vs_1client"]; got != 3.5 {
		t.Fatalf("clients=4 scaling %v, want 3.5", got)
	}
	if _, ok := rows[2].Extra["query_scaling_vs_1client"]; ok {
		t.Fatal("scaling derived without a queries_per_sec metric")
	}
	if _, ok := rows[3].Extra["query_scaling_vs_1client"]; ok {
		t.Fatal("scaling on a row without a clients segment")
	}
}
