// Command dismastd-bench regenerates the paper's evaluation tables and
// figures (Section V) at a configurable scale and prints the rows.
//
// Usage:
//
//	dismastd-bench -exp all -nnz 100000 -workers 15 > results.txt
//	dismastd-bench -exp fig5 -datasets netflix,synthetic
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"dismastd/internal/bench"
	"dismastd/internal/dataset"
	"dismastd/internal/layout"
)

var kinds = map[string]dataset.Kind{
	"clothing":  dataset.Clothing,
	"book":      dataset.Book,
	"netflix":   dataset.Netflix,
	"synthetic": dataset.Synthetic,
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "dismastd-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dismastd-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment: all, table3, table4, fig5, fig6, fig7, comm, fit, phases, sampled")
	jsonOut := fs.String("json", "", "for -exp phases: also write the reports as JSON to this path")
	nnz := fs.Int("nnz", 100000, "target nnz per generated dataset")
	rank := fs.Int("rank", 10, "CP rank R (paper: 10)")
	iters := fs.Int("iters", 10, "max ALS sweeps (paper: 10)")
	mu := fs.Float64("mu", 0.8, "forgetting factor (paper: 0.8)")
	workers := fs.Int("workers", 15, "cluster size (paper: 15 nodes)")
	threads := fs.Int("threads", 1, "compute threads per worker (0 = GOMAXPROCS); results are identical at every value")
	layoutFlag := fs.String("layout", "coo", "sparse kernel representation: coo or compiled; results are identical under either")
	seed := fs.Uint64("seed", 42, "generator seed")
	datasets := fs.String("datasets", "", "comma-separated subset (default all four)")
	samples := fs.Int("samples", 0, "for -exp sampled: sketch size S per mode (0 = default)")
	fitTol := fs.Float64("fit-tol", 0, "for -exp sampled: fail when a sampled fit trails exact by more than this (0 = report only)")
	svgDir := fs.String("svgdir", "", "also render the figures as SVG charts into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	writeSVGs := func(files map[string]string) error {
		if *svgDir == "" {
			return nil
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		for name, doc := range files {
			if err := os.WriteFile(filepath.Join(*svgDir, name), []byte(doc), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "dismastd-bench: wrote %s\n", filepath.Join(*svgDir, name))
		}
		return nil
	}

	nthreads := *threads
	if nthreads == 0 {
		nthreads = runtime.GOMAXPROCS(0)
	}
	lk, err := layout.ParseKind(*layoutFlag)
	if err != nil {
		return err
	}
	cfg := bench.Config{
		TargetNNZ: *nnz, Rank: *rank, MaxIters: *iters, Mu: *mu,
		Workers: *workers, Threads: nthreads, Layout: lk, Seed: *seed,
	}
	if *datasets != "" {
		for _, name := range strings.Split(*datasets, ",") {
			k, ok := kinds[strings.ToLower(strings.TrimSpace(name))]
			if !ok {
				return fmt.Errorf("unknown dataset %q", name)
			}
			cfg.Datasets = append(cfg.Datasets, k)
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table3") {
		ran = true
		fmt.Fprintln(stdout, "== Table III: dataset statistics ==")
		fmt.Fprintln(stdout, bench.FormatTable3(bench.Table3(cfg)))
	}
	if want("table4") {
		ran = true
		fmt.Fprintln(stdout, "== Table IV: stddev of nnz across tensor partitions (CV, mode-averaged) ==")
		fmt.Fprintln(stdout, bench.FormatTable4(bench.Table4(cfg)))
	}
	if want("fig5") {
		ran = true
		fmt.Fprintln(stdout, "== Fig. 5: running time per iteration along the multi-aspect stream ==")
		points, err := bench.Fig5(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.FormatFig5(points))
		if err := writeSVGs(bench.Fig5SVG(points)); err != nil {
			return err
		}
	}
	if want("fig6") {
		ran = true
		fmt.Fprintln(stdout, "== Fig. 6: running time per iteration vs number of partitions ==")
		points, err := bench.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.FormatFig6(points))
		if err := writeSVGs(bench.Fig6SVG(points)); err != nil {
			return err
		}
	}
	if want("fig7") {
		ran = true
		fmt.Fprintln(stdout, "== Fig. 7: running time per iteration vs number of nodes ==")
		points, err := bench.Fig7(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.FormatFig7(points))
		if err := writeSVGs(bench.Fig7SVG(points)); err != nil {
			return err
		}
	}
	if want("comm") {
		ran = true
		fmt.Fprintln(stdout, "== Theorem 4 check: measured vs predicted communication (extension) ==")
		points, err := bench.Comm(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.FormatComm(points))
	}
	if want("fit") {
		ran = true
		fmt.Fprintln(stdout, "== Fit quality: incremental DisMASTD vs from-scratch recompute (extension) ==")
		points, err := bench.Fit(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.FormatFit(points))
	}
	if want("phases") {
		ran = true
		fmt.Fprintln(stdout, "== Phase breakdown: per-rank wall time by phase (observability extension) ==")
		reports, err := bench.Phases(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.FormatPhases(reports))
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			if err := bench.WritePhasesJSON(f, reports); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "dismastd-bench: wrote %s\n", *jsonOut)
		}
	}
	if want("sampled") {
		ran = true
		fmt.Fprintln(stdout, "== Randomized solver: exact vs leverage-score sampled ALS (extension) ==")
		points, err := bench.SampledGap(cfg, *samples)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.FormatSampled(points))
		if *fitTol > 0 {
			for _, p := range points {
				if p.Samples != 0 && p.Gap > *fitTol {
					return fmt.Errorf("sampled fit gap %.4f on %s exceeds -fit-tol %.4f", p.Gap, p.Dataset, *fitTol)
				}
			}
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
