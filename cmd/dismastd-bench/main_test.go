package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTables(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-exp", "table3", "-nnz", "3000", "-workers", "3"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Table III") || !strings.Contains(stdout.String(), "Synthetic") {
		t.Fatalf("output:\n%s", stdout.String())
	}
	stdout.Reset()
	if err := run([]string{"-exp", "table4", "-nnz", "3000"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "GTP") || !strings.Contains(stdout.String(), "MTP") {
		t.Fatalf("output:\n%s", stdout.String())
	}
}

func TestFigureWithDatasetSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-exp", "fig7", "-nnz", "4000", "-rank", "3", "-iters", "2", "-workers", "4", "-datasets", "netflix"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "Fig. 7") || !strings.Contains(out, "Netflix") {
		t.Fatalf("output:\n%s", out)
	}
	if strings.Contains(out, "Clothing") {
		t.Fatalf("subset leaked other datasets:\n%s", out)
	}
}

func TestBenchErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for name, args := range map[string][]string{
		"unknown experiment": {"-exp", "fig99"},
		"unknown dataset":    {"-exp", "table3", "-datasets", "bogus"},
	} {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
