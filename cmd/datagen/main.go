// Command datagen emits paper-shaped evaluation tensors (Table III) in
// the repository's text or binary tensor format.
//
// Usage:
//
//	datagen -dataset clothing -nnz 100000 -seed 42 -o clothing.tsv
//	datagen -dataset synthetic -nnz 500000 -format binary -o synthetic.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dismastd"
)

var kinds = map[string]dismastd.DatasetKind{
	"clothing":  dismastd.DatasetClothing,
	"book":      dismastd.DatasetBook,
	"netflix":   dismastd.DatasetNetflix,
	"synthetic": dismastd.DatasetSynthetic,
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ds := fs.String("dataset", "synthetic", "dataset kind: clothing, book, netflix, synthetic")
	nnz := fs.Int("nnz", 100000, "target number of non-zero entries")
	seed := fs.Uint64("seed", 42, "generator seed")
	out := fs.String("o", "", "output path (default stdout)")
	format := fs.String("format", "", "text or binary (default from extension: .bin/.gob = binary)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	kind, ok := kinds[strings.ToLower(*ds)]
	if !ok {
		return fmt.Errorf("unknown dataset %q (clothing, book, netflix, synthetic)", *ds)
	}
	if *nnz <= 0 {
		return fmt.Errorf("-nnz must be positive")
	}
	switch *format {
	case "", "text", "binary":
	default:
		return fmt.Errorf("unknown format %q (text or binary)", *format)
	}

	t := dismastd.GenerateDataset(kind, *nnz, *seed)

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	binary := *format == "binary" ||
		(*format == "" && (strings.HasSuffix(*out, ".bin") || strings.HasSuffix(*out, ".gob")))
	var err error
	if binary {
		err = dismastd.WriteTensorBinary(w, t)
	} else {
		err = dismastd.WriteTensorText(w, t)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "datagen: %s dims=%v nnz=%d\n", kind, t.Dims, t.NNZ())
	return nil
}
