package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dismastd"
)

func TestGenerateTextToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "book.tsv")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dataset", "book", "-nnz", "2000", "-seed", "7", "-o", out}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	x, err := dismastd.ReadTensorText(f)
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() < 1800 || x.Order() != 3 {
		t.Fatalf("generated tensor nnz=%d order=%d", x.NNZ(), x.Order())
	}
	if !strings.Contains(stderr.String(), "Book") {
		t.Fatalf("stderr summary missing: %q", stderr.String())
	}
}

func TestGenerateBinaryByExtension(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "net.bin")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dataset", "netflix", "-nnz", "1000", "-o", out}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := dismastd.ReadTensorBinary(f); err != nil {
		t.Fatalf("binary read: %v", err)
	}
}

func TestGenerateToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-dataset", "synthetic", "-nnz", "500"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	x, err := dismastd.ReadTensorText(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() == 0 {
		t.Fatal("no entries on stdout")
	}
}

func TestBadArguments(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for name, args := range map[string][]string{
		"unknown dataset": {"-dataset", "nope"},
		"bad nnz":         {"-nnz", "0"},
		"bad format":      {"-format", "xml"},
		"bad flag":        {"-bogus"},
	} {
		if err := run(args, &stdout, &stderr); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
