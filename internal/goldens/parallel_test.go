package goldens

import (
	"fmt"
	"testing"

	"dismastd/internal/completion"
	"dismastd/internal/core"
	"dismastd/internal/cp"
	"dismastd/internal/dmsmg"
	"dismastd/internal/dtd"
	"dismastd/internal/onlinecp"
	"dismastd/internal/partition"
)

// threadSweep is the tentpole acceptance sweep of the parallel runtime:
// every engine must reproduce its sequential golden hash at every
// thread count, because the runtime only ever partitions output
// elements and never splits a floating-point reduction across chunks.
var threadSweep = []int{1, 2, 3, 8}

func TestCPGoldenEveryThreadCount(t *testing.T) {
	for _, threads := range threadSweep {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			x := sparseRandom([]int{12, 10, 8}, 500, 3)
			res, err := cp.Decompose(x, cp.Options{Rank: 4, MaxIters: 6, Seed: 7, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			checkHash(t, "cp", hashFactors(res.Factors), goldCP)
		})
	}
}

func TestDTDGoldenEveryThreadCount(t *testing.T) {
	for _, threads := range threadSweep {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			prev, full, opts := dtdFixture(t)
			opts.Threads = threads
			cur, _, err := dtd.Step(prev, full, opts)
			if err != nil {
				t.Fatal(err)
			}
			checkHash(t, "dtd", hashFactors(cur.Factors), goldDTD)
		})
	}
}

func TestCoreGoldenEveryThreadCount(t *testing.T) {
	for _, threads := range threadSweep {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			prev, full, opts := dtdFixture(t)
			for _, tc := range []struct {
				name   string
				method partition.Method
				want   uint64
			}{
				{"gtp", partition.GTPMethod, goldCoreGTP},
				{"mtp", partition.MTPMethod, goldCoreMTP},
			} {
				cur, _, err := core.Step(prev, full, core.Options{
					Rank: opts.Rank, MaxIters: opts.MaxIters, Mu: opts.Mu, Seed: opts.Seed,
					Workers: 3, Method: tc.method, Threads: threads,
				})
				if err != nil {
					t.Fatal(err)
				}
				checkHash(t, "core/"+tc.name, hashFactors(cur.Factors), tc.want)
			}
		})
	}
}

func TestDMSMGGoldenEveryThreadCount(t *testing.T) {
	for _, threads := range threadSweep {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			x := sparseRandom([]int{12, 10, 8}, 500, 3)
			factors, _, err := dmsmg.Decompose(x, dmsmg.Options{Rank: 3, MaxIters: 5, Seed: 7, Workers: 3, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			checkHash(t, "dmsmg", hashFactors(factors), goldDMSMG)
		})
	}
}

func TestCompletionGoldenEveryThreadCount(t *testing.T) {
	for _, threads := range threadSweep {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			x := sparseRandom([]int{12, 10, 8}, 400, 13)
			res, err := completion.Decompose(x, completion.Options{Rank: 3, MaxIters: 5, Seed: 7, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			checkHash(t, "completion", hashFactors(res.Factors), goldCompletion)

			dres, err := completion.DecomposeDistributed(x, completion.DistributedOptions{
				Options: completion.Options{Rank: 3, MaxIters: 5, Seed: 7, Threads: threads},
				Workers: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			checkHash(t, "completion/distributed", hashFactors(dres.Factors), goldCompletionDist)
		})
	}
}

func TestOnlineCPGoldenEveryThreadCount(t *testing.T) {
	for _, threads := range threadSweep {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			full := sparseRandom([]int{10, 9, 12}, 700, 17)
			init := full.Prefix([]int{10, 9, 6})
			tr, err := onlinecp.Init(init, onlinecp.Options{Rank: 3, StreamMode: 2, InitIters: 5, Seed: 7, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			for _, to := range []int{9, 12} {
				batch := batchBetween(full, tr.Dims(), to)
				if err := tr.Absorb(batch); err != nil {
					t.Fatal(err)
				}
			}
			checkHash(t, "onlinecp", hashFactors(tr.Factors()), goldOnlineCP)
		})
	}
}
