// Package goldens pins the numeric engines to bitwise-exact golden
// hashes recorded from the seed implementation. Every engine below is
// fully deterministic (seeded PRNG, deterministic reduction trees), so
// any refactor of the kernel or workspace plumbing that changes even one
// bit of one factor entry — a reordered floating-point sum, a stale
// scratch buffer, a missed zeroing — flips the hash and fails here.
//
// The hashes were produced by the pre-workspace (allocating) engines;
// the workspace-threaded in-place engines must reproduce them exactly.
package goldens

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"dismastd/internal/completion"
	"dismastd/internal/core"
	"dismastd/internal/cp"
	"dismastd/internal/dmsmg"
	"dismastd/internal/dtd"
	"dismastd/internal/mat"
	"dismastd/internal/onlinecp"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// hashFactors folds the exact bit patterns of every factor entry (plus
// the shapes) into one FNV-1a checksum.
func hashFactors(factors []*mat.Dense) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, f := range factors {
		binary.LittleEndian.PutUint64(buf[:], uint64(f.Rows)<<32|uint64(f.Cols))
		h.Write(buf[:])
		for _, v := range f.Data {
			binary.LittleEndian.PutUint64(buf[:], mathFloat64bits(v))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func sparseRandom(dims []int, nnz int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.Float64()+0.5)
	}
	return b.Build()
}

func TestCPDecomposeGolden(t *testing.T) {
	x := sparseRandom([]int{12, 10, 8}, 500, 3)
	res, err := cp.Decompose(x, cp.Options{Rank: 4, MaxIters: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkHash(t, "cp", hashFactors(res.Factors), goldCP)
}

func dtdFixture(t *testing.T) (*dtd.State, *tensor.Tensor, dtd.Options) {
	t.Helper()
	full := sparseRandom([]int{12, 10, 8}, 600, 5)
	prevSnap := full.Prefix([]int{9, 8, 6})
	opts := dtd.Options{Rank: 3, MaxIters: 5, Mu: 0.7, Seed: 11}
	prev, _, err := dtd.Init(prevSnap, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.MaxIters = 6
	return prev, full, opts
}

func TestDTDStepGolden(t *testing.T) {
	prev, full, opts := dtdFixture(t)
	cur, _, err := dtd.Step(prev, full, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkHash(t, "dtd", hashFactors(cur.Factors), goldDTD)
}

func TestCoreStepGolden(t *testing.T) {
	prev, full, opts := dtdFixture(t)
	for _, tc := range []struct {
		name   string
		method partition.Method
		want   uint64
	}{
		{"gtp", partition.GTPMethod, goldCoreGTP},
		{"mtp", partition.MTPMethod, goldCoreMTP},
	} {
		cur, _, err := core.Step(prev, full, core.Options{
			Rank: opts.Rank, MaxIters: opts.MaxIters, Mu: opts.Mu, Seed: opts.Seed,
			Workers: 3, Method: tc.method,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkHash(t, "core/"+tc.name, hashFactors(cur.Factors), tc.want)
	}
}

func TestDMSMGGolden(t *testing.T) {
	x := sparseRandom([]int{12, 10, 8}, 500, 3)
	factors, _, err := dmsmg.Decompose(x, dmsmg.Options{Rank: 3, MaxIters: 5, Seed: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkHash(t, "dmsmg", hashFactors(factors), goldDMSMG)
}

func TestCompletionGolden(t *testing.T) {
	x := sparseRandom([]int{12, 10, 8}, 400, 13)
	res, err := completion.Decompose(x, completion.Options{Rank: 3, MaxIters: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkHash(t, "completion", hashFactors(res.Factors), goldCompletion)

	dres, err := completion.DecomposeDistributed(x, completion.DistributedOptions{
		Options: completion.Options{Rank: 3, MaxIters: 5, Seed: 7},
		Workers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkHash(t, "completion/distributed", hashFactors(dres.Factors), goldCompletionDist)
}

func TestOnlineCPGolden(t *testing.T) {
	full := sparseRandom([]int{10, 9, 12}, 700, 17)
	init := full.Prefix([]int{10, 9, 6})
	tr, err := onlinecp.Init(init, onlinecp.Options{Rank: 3, StreamMode: 2, InitIters: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, to := range []int{9, 12} {
		batch := batchBetween(full, tr.Dims(), to)
		if err := tr.Absorb(batch); err != nil {
			t.Fatal(err)
		}
	}
	checkHash(t, "onlinecp", hashFactors(tr.Factors()), goldOnlineCP)
}

// batchBetween extracts the entries of full whose stream-mode (last
// mode) coordinate lies in [cur[2], to), shaped as an OnlineCP batch.
func batchBetween(full *tensor.Tensor, cur []int, to int) *tensor.Tensor {
	dims := append([]int(nil), cur...)
	dims[2] = to
	b := tensor.NewBuilder(dims)
	n := full.Order()
	idx := make([]int, n)
	for e := 0; e < full.NNZ(); e++ {
		k := int(full.Coords[e*n+2])
		if k < cur[2] || k >= to {
			continue
		}
		ok := true
		for m := 0; m < n; m++ {
			idx[m] = int(full.Coords[e*n+m])
			if m != 2 && idx[m] >= dims[m] {
				ok = false
				break
			}
		}
		if ok {
			b.Append(idx, full.Vals[e])
		}
	}
	return b.Build()
}

func checkHash(t *testing.T, name string, got, want uint64) {
	t.Helper()
	if want == 0 {
		t.Logf("golden %s = %#016x", name, got)
		return
	}
	if got != want {
		t.Errorf("%s factors hash %#016x, want golden %#016x (bitwise drift from the seed implementation)", name, got, want)
	}
}
