package goldens

import (
	"testing"

	"dismastd/internal/cluster"
	"dismastd/internal/core"
	"dismastd/internal/mat"
	"dismastd/internal/partition"
)

// The distributed step must be bitwise reproducible on BOTH collective
// paths. The tree path is pinned to the recorded golden (the default
// threshold keeps the small Gram batches on the tree, so
// TestCoreStepGolden's hashes stay valid); the ring path groups the
// same sums differently — a different but equally deterministic bit
// pattern — so it is pinned to itself: repeated runs at a fixed cluster
// size must agree exactly, and must diverge from nothing run to run.

func runStepAt(t *testing.T, ringThresh int) uint64 {
	t.Helper()
	prev, full, opts := dtdFixture(t)
	job, err := core.NewStepJob(prev, full, core.Options{
		Rank: opts.Rank, MaxIters: opts.MaxIters, Mu: opts.Mu, Seed: opts.Seed,
		Workers: 3, Method: partition.GTPMethod,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewLocal(job.Workers())
	cl.SetRingThreshold(ringThresh)
	stats, err := cl.Run(job.RunWorker)
	if err != nil {
		t.Fatal(err)
	}
	for r, rk := range stats.Ranks {
		c := rk.Obs.Metrics.Counters
		tree, ring := c["comm.allreduce.tree"], c["comm.allreduce.ring"]
		if ringThresh == 1 && ring == 0 {
			t.Fatalf("rank %d: ring threshold 1 but no ring all-reduce ran (tree=%d)", r, tree)
		}
		if ringThresh != 1 && ring != 0 {
			t.Fatalf("rank %d: default threshold but %d ring all-reduces ran", r, ring)
		}
	}
	st, _, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	return hashFactors(st.Factors)
}

func TestCoreStepRingDeterministic(t *testing.T) {
	// Tree path (default threshold): must still match the recorded
	// golden — the ring feature must not perturb it.
	if h := runStepAt(t, cluster.DefaultRingThreshold); h != goldCoreGTP {
		t.Errorf("tree-path step hash %#x, want golden %#x", h, goldCoreGTP)
	}
	// Ring path: run-to-run bitwise identical at fixed cluster size.
	first := runStepAt(t, 1)
	if again := runStepAt(t, 1); again != first {
		t.Errorf("ring-path step not reproducible: %#x then %#x", first, again)
	}
}

// TestCoreStepRingConvergesLikeTree checks the ring path computes the
// same decomposition up to floating-point regrouping: the factors from
// the two paths agree to tight tolerance even though their bits differ.
func TestCoreStepRingConvergesLikeTree(t *testing.T) {
	step := func(ringThresh int) []*mat.Dense {
		prev, full, opts := dtdFixture(t)
		job, err := core.NewStepJob(prev, full, core.Options{
			Rank: opts.Rank, MaxIters: opts.MaxIters, Mu: opts.Mu, Seed: opts.Seed,
			Workers: 3, Method: partition.GTPMethod,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.NewLocal(job.Workers())
		cl.SetRingThreshold(ringThresh)
		if _, err := cl.Run(job.RunWorker); err != nil {
			t.Fatal(err)
		}
		st, _, err := job.Result()
		if err != nil {
			t.Fatal(err)
		}
		return st.Factors
	}
	tree, ring := step(cluster.DefaultRingThreshold), step(1)
	for m := range tree {
		for i, tv := range tree[m].Data {
			rv := ring[m].Data[i]
			diff := tv - rv
			if diff < 0 {
				diff = -diff
			}
			scale := 1.0
			if s := tv; s < 0 {
				s = -s
				if s > scale {
					scale = s
				}
			} else if tv > scale {
				scale = tv
			}
			if diff > 1e-9*scale {
				t.Fatalf("mode %d entry %d: tree %v vs ring %v", m, i, tv, rv)
			}
		}
	}
}
