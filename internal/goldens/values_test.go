package goldens

import "math"

func mathFloat64bits(v float64) uint64 { return math.Float64bits(v) }

// Golden hashes recorded from the seed (pre-workspace) implementation.
// A zero value means "not yet recorded": the test logs the hash instead
// of asserting, which is how these constants were first captured.
const (
	goldCP             uint64 = 0x9b86cd3bec434c94
	goldDTD            uint64 = 0xbae0406ea3a4fbea
	goldCoreGTP        uint64 = 0x72bb9276d2504148
	goldCoreMTP        uint64 = 0x78e7dc89184aeeb4
	goldDMSMG          uint64 = 0x1e30f06d90a92a92
	goldCompletion     uint64 = 0x07dd22def348810d
	goldCompletionDist uint64 = 0x07dd22def348810d
	goldOnlineCP       uint64 = 0x72e5973127d0b433
)
