package goldens

import (
	"fmt"
	"testing"

	"dismastd/internal/completion"
	"dismastd/internal/core"
	"dismastd/internal/cp"
	"dismastd/internal/dmsmg"
	"dismastd/internal/dtd"
	"dismastd/internal/layout"
	"dismastd/internal/onlinecp"
	"dismastd/internal/partition"
)

// layoutSweep is the acceptance sweep of the kernel-representation
// layer: every engine must reproduce its sequential COO golden hash
// under both representations at every thread count, because a compiled
// layout only reorganises memory — the per-entry floating-point
// sequence it executes is exactly the COO walk's.
var layoutSweep = []layout.Kind{layout.COO, layout.Compiled}

func sweepLayouts(t *testing.T, run func(t *testing.T, kind layout.Kind, threads int)) {
	t.Helper()
	for _, kind := range layoutSweep {
		for _, threads := range threadSweep {
			t.Run(fmt.Sprintf("layout=%s/threads=%d", kind, threads), func(t *testing.T) {
				run(t, kind, threads)
			})
		}
	}
}

func TestCPGoldenEveryLayout(t *testing.T) {
	sweepLayouts(t, func(t *testing.T, kind layout.Kind, threads int) {
		x := sparseRandom([]int{12, 10, 8}, 500, 3)
		res, err := cp.Decompose(x, cp.Options{Rank: 4, MaxIters: 6, Seed: 7, Threads: threads, Layout: kind})
		if err != nil {
			t.Fatal(err)
		}
		checkHash(t, "cp", hashFactors(res.Factors), goldCP)
	})
}

func TestDTDGoldenEveryLayout(t *testing.T) {
	sweepLayouts(t, func(t *testing.T, kind layout.Kind, threads int) {
		prev, full, opts := dtdFixture(t)
		opts.Threads = threads
		opts.Layout = kind
		cur, _, err := dtd.Step(prev, full, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkHash(t, "dtd", hashFactors(cur.Factors), goldDTD)
	})
}

func TestCoreGoldenEveryLayout(t *testing.T) {
	sweepLayouts(t, func(t *testing.T, kind layout.Kind, threads int) {
		prev, full, opts := dtdFixture(t)
		for _, tc := range []struct {
			name   string
			method partition.Method
			want   uint64
		}{
			{"gtp", partition.GTPMethod, goldCoreGTP},
			{"mtp", partition.MTPMethod, goldCoreMTP},
		} {
			cur, _, err := core.Step(prev, full, core.Options{
				Rank: opts.Rank, MaxIters: opts.MaxIters, Mu: opts.Mu, Seed: opts.Seed,
				Workers: 3, Method: tc.method, Threads: threads, Layout: kind,
			})
			if err != nil {
				t.Fatal(err)
			}
			checkHash(t, "core/"+tc.name, hashFactors(cur.Factors), tc.want)
		}
	})
}

func TestDMSMGGoldenEveryLayout(t *testing.T) {
	sweepLayouts(t, func(t *testing.T, kind layout.Kind, threads int) {
		x := sparseRandom([]int{12, 10, 8}, 500, 3)
		factors, _, err := dmsmg.Decompose(x, dmsmg.Options{Rank: 3, MaxIters: 5, Seed: 7, Workers: 3, Threads: threads, Layout: kind})
		if err != nil {
			t.Fatal(err)
		}
		checkHash(t, "dmsmg", hashFactors(factors), goldDMSMG)
	})
}

func TestCompletionGoldenEveryLayout(t *testing.T) {
	sweepLayouts(t, func(t *testing.T, kind layout.Kind, threads int) {
		x := sparseRandom([]int{12, 10, 8}, 400, 13)
		res, err := completion.Decompose(x, completion.Options{Rank: 3, MaxIters: 5, Seed: 7, Threads: threads, Layout: kind})
		if err != nil {
			t.Fatal(err)
		}
		checkHash(t, "completion", hashFactors(res.Factors), goldCompletion)

		dres, err := completion.DecomposeDistributed(x, completion.DistributedOptions{
			Options: completion.Options{Rank: 3, MaxIters: 5, Seed: 7, Threads: threads, Layout: kind},
			Workers: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkHash(t, "completion/distributed", hashFactors(dres.Factors), goldCompletionDist)
	})
}

func TestOnlineCPGoldenEveryLayout(t *testing.T) {
	sweepLayouts(t, func(t *testing.T, kind layout.Kind, threads int) {
		full := sparseRandom([]int{10, 9, 12}, 700, 17)
		init := full.Prefix([]int{10, 9, 6})
		tr, err := onlinecp.Init(init, onlinecp.Options{Rank: 3, StreamMode: 2, InitIters: 5, Seed: 7, Threads: threads, Layout: kind})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		for _, to := range []int{9, 12} {
			batch := batchBetween(full, tr.Dims(), to)
			if err := tr.Absorb(batch); err != nil {
				t.Fatal(err)
			}
		}
		checkHash(t, "onlinecp", hashFactors(tr.Factors()), goldOnlineCP)
	})
}
