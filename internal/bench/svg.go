package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// SVG rendering of the paper's figures. The evaluation deliverable is
// figures, not only tables, so the harness can draw each Fig. 5/6/7
// panel as a standalone SVG line chart (hand-rolled — the module is
// stdlib-only). cmd/dismastd-bench writes them with -svgdir.

// chartSeries is one labelled polyline.
type chartSeries struct {
	Name string
	X    []float64
	Y    []float64 // seconds
}

var seriesColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// renderChart draws a minimal line chart: linear axes, ticks, series
// polylines with point markers, and a legend.
func renderChart(title, xLabel, yLabel string, series []chartSeries) string {
	const (
		width, height = 560, 360
		left, right   = 70, 20
		top, bottom   = 40, 50
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := 0.0
	for _, s := range series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymax = 0, 1, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == 0 {
		ymax = 1
	}
	ymax *= 1.08 // headroom
	px := func(x float64) float64 { return float64(left) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(top) + (1-y/ymax)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`, left, xmlEscape(title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, left, top, left, height-bottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, left, height-bottom, width-right, height-bottom)

	// Y ticks (5) with light grid lines.
	for i := 0; i <= 4; i++ {
		v := ymax * float64(i) / 4
		y := py(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`, left, y, width-right, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`, left-6, y+4, formatSeconds(v))
	}
	// X ticks at every distinct x value.
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var xticks []float64
	for x := range xs {
		xticks = append(xticks, x)
	}
	sort.Float64s(xticks)
	for _, x := range xticks {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%g</text>`, px(x), height-bottom+18, x)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`, left+int(plotW/2), height-10, xmlEscape(xLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`, top+int(plotH/2), top+int(plotH/2), xmlEscape(yLabel))

	// Series.
	for si, s := range series {
		color := seriesColors[si%len(seriesColors)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`, strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		ly := top + 8 + si*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`, width-right-150, ly, width-right-126, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, width-right-120, ly+4, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func formatSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.0fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.0fms", v*1e3)
	case v < 10:
		return fmt.Sprintf("%.1fs", v)
	default:
		return fmt.Sprintf("%.0fs", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func secs(d time.Duration) float64 { return d.Seconds() }

// Fig5SVG renders one Fig. 5 panel per dataset: simulated running time
// per iteration against the stream size, one series per method.
// Returns filename -> SVG document.
func Fig5SVG(points []Fig5Point) map[string]string {
	byDataset := map[string]map[string]*chartSeries{}
	var datasets, methods []string
	for _, p := range points {
		if byDataset[p.Dataset] == nil {
			byDataset[p.Dataset] = map[string]*chartSeries{}
			datasets = append(datasets, p.Dataset)
		}
		s := byDataset[p.Dataset][p.Method]
		if s == nil {
			s = &chartSeries{Name: p.Method}
			byDataset[p.Dataset][p.Method] = s
			methods = appendUnique(methods, p.Method)
		}
		s.X = append(s.X, p.Frac*100)
		s.Y = append(s.Y, secs(p.SimPerIter))
	}
	out := map[string]string{}
	for _, ds := range datasets {
		var series []chartSeries
		for _, m := range methods {
			if s := byDataset[ds][m]; s != nil {
				series = append(series, *s)
			}
		}
		out["fig5_"+strings.ToLower(ds)+".svg"] = renderChart(
			"Fig. 5: "+ds+" — time per iteration along the stream",
			"snapshot size (% of full tensor)", "time per iteration", series)
	}
	return out
}

// Fig6SVG renders one Fig. 6 panel per dataset: time per iteration vs
// the number of partitions.
func Fig6SVG(points []Fig6Point) map[string]string {
	byDataset := map[string]map[string]*chartSeries{}
	var datasets, methods []string
	for _, p := range points {
		if byDataset[p.Dataset] == nil {
			byDataset[p.Dataset] = map[string]*chartSeries{}
			datasets = append(datasets, p.Dataset)
		}
		s := byDataset[p.Dataset][p.Method]
		if s == nil {
			s = &chartSeries{Name: p.Method}
			byDataset[p.Dataset][p.Method] = s
			methods = appendUnique(methods, p.Method)
		}
		s.X = append(s.X, float64(p.Parts))
		s.Y = append(s.Y, secs(p.SimPerIter))
	}
	out := map[string]string{}
	for _, ds := range datasets {
		var series []chartSeries
		for _, m := range methods {
			if s := byDataset[ds][m]; s != nil {
				series = append(series, *s)
			}
		}
		out["fig6_"+strings.ToLower(ds)+".svg"] = renderChart(
			"Fig. 6: "+ds+" — time per iteration vs partitions",
			"partitions per mode", "time per iteration", series)
	}
	return out
}

// Fig7SVG renders the Fig. 7 node-scaling chart, one series per dataset.
func Fig7SVG(points []Fig7Point) map[string]string {
	byDataset := map[string]*chartSeries{}
	var datasets []string
	for _, p := range points {
		s := byDataset[p.Dataset]
		if s == nil {
			s = &chartSeries{Name: p.Dataset}
			byDataset[p.Dataset] = s
			datasets = append(datasets, p.Dataset)
		}
		s.X = append(s.X, float64(p.Nodes))
		s.Y = append(s.Y, secs(p.SimPerIter))
	}
	var series []chartSeries
	for _, ds := range datasets {
		series = append(series, *byDataset[ds])
	}
	return map[string]string{
		"fig7.svg": renderChart("Fig. 7: time per iteration vs number of nodes",
			"nodes", "time per iteration", series),
	}
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}
