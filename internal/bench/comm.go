package bench

import (
	"fmt"
	"strings"

	"dismastd/internal/complexity"
	"dismastd/internal/core"
	"dismastd/internal/dataset"
	"dismastd/internal/dtd"
	"dismastd/internal/partition"
)

// Communication-bound experiment (extension beyond the paper's figures):
// Theorem 4 states the per-step communication is O(nnz + MNR² + NIR +
// NdR). This runner sweeps each parameter with the others fixed,
// reports the runtime's *measured* bytes next to the formula's value,
// and the ratio between them — which should stay within a narrow
// constant band if the implementation communicates what the paper says
// it should.

// CommPoint is one measured-vs-formula sample.
type CommPoint struct {
	Sweep    string // which parameter this row varies
	NNZ      int
	Rank     int
	Workers  int
	Measured int64   // bytes sent per step (excluding result collection)
	Formula  float64 // Theorem 4 value (float64-equivalents)
	Ratio    float64 // Measured / (8 * Formula)
}

// Comm runs the Theorem 4 sweeps on a Book-shaped tensor.
func Comm(cfg Config) ([]CommPoint, error) {
	cfg = cfg.withDefaults()
	var points []CommPoint

	run := func(sweep string, nnz, rank, workers int) error {
		t := dataset.Preset(dataset.Book, nnz, cfg.Seed).Generate()
		seq, err := dataset.Stream(t, []float64{0.8, 1.0})
		if err != nil {
			return err
		}
		prev, _, err := dtd.Init(seq.Snapshot(0), dtd.Options{Rank: rank, MaxIters: 3, Seed: cfg.Seed, Threads: cfg.Threads})
		if err != nil {
			return err
		}
		_, stats, err := core.Step(prev, seq.Snapshot(1), core.Options{
			Rank: rank, MaxIters: cfg.MaxIters, Tol: 0, Workers: workers,
			Method: partition.MTPMethod, Seed: cfg.Seed, Threads: cfg.Threads,
		})
		if err != nil {
			return err
		}
		// Theorem 4's I and d from the actual snapshot dims (averaged
		// per mode, matching the theorem's symmetric simplification).
		var iSum, dSum int
		for m := range t.Dims {
			iSum += seq.Dims(0)[m]
			dSum += seq.Dims(1)[m] - seq.Dims(0)[m]
		}
		params := complexity.Params{
			N: t.Order(), I: iSum / t.Order(), D: dSum / t.Order(),
			R: rank, M: workers, NNZ: stats.ComplementNNZ,
		}
		formula := complexity.CommBytes(params) * float64(cfg.MaxIters)
		measured := stats.Cluster.TotalBytes()
		points = append(points, CommPoint{
			Sweep: sweep, NNZ: nnz, Rank: rank, Workers: workers,
			Measured: measured, Formula: formula,
			Ratio: float64(measured) / (8 * formula),
		})
		return nil
	}

	base := cfg.TargetNNZ
	for _, nnz := range []int{base / 2, base, base * 2} {
		if err := run("nnz", nnz, cfg.Rank, cfg.Workers); err != nil {
			return nil, err
		}
	}
	for _, r := range []int{cfg.Rank / 2, cfg.Rank, cfg.Rank * 2} {
		if r < 1 {
			continue
		}
		if err := run("rank", base, r, cfg.Workers); err != nil {
			return nil, err
		}
	}
	for _, m := range []int{3, cfg.Workers, 2 * cfg.Workers} {
		if err := run("workers", base, cfg.Rank, m); err != nil {
			return nil, err
		}
	}
	return points, nil
}

// FormatComm renders the sweep.
func FormatComm(points []CommPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %5s %8s %14s %14s %8s\n", "sweep", "nnz", "R", "workers", "measured(B)", "theorem4", "ratio")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %8d %5d %8d %14d %14.0f %8.3f\n",
			p.Sweep, p.NNZ, p.Rank, p.Workers, p.Measured, p.Formula, p.Ratio)
	}
	return b.String()
}
