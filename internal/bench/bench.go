// Package bench regenerates every table and figure of the paper's
// evaluation (Section V): Table III (dataset statistics), Table IV
// (partitioning balance), Fig. 5 (running time per iteration along the
// multi-aspect stream), Fig. 6 (running time vs number of partitions),
// and Fig. 7 (running time vs number of nodes).
//
// Each runner executes the real distributed algorithms on the
// in-process cluster and reports both the measured wall-clock per
// iteration and the simtime cluster estimate (see internal/simtime and
// DESIGN.md for why both exist on a single-core host). The numbers are
// not the paper's absolute numbers — the testbed differs — but the
// shapes the paper argues from are asserted by this package's tests.
package bench

import (
	"fmt"
	"strings"
	"time"

	"dismastd/internal/cluster"
	"dismastd/internal/core"
	"dismastd/internal/dataset"
	"dismastd/internal/dmsmg"
	"dismastd/internal/dtd"
	"dismastd/internal/layout"
	"dismastd/internal/partition"
	"dismastd/internal/simtime"
	"dismastd/internal/tensor"
)

// Config scales and parameterises the experiment suite.
type Config struct {
	TargetNNZ int         // entries per generated dataset; default 100000
	Rank      int         // R; the paper uses 10
	Mu        float64     // forgetting factor; the paper uses 0.8
	MaxIters  int         // sweeps per decomposition; the paper uses 10
	Workers   int         // cluster size; the paper's testbed has 15 nodes
	Threads   int         // compute threads per worker; 0/1 = sequential
	Layout    layout.Kind // sparse kernel representation; results are identical under either
	Seed      uint64
	Model     simtime.Model
	Datasets  []dataset.Kind
}

func (c Config) withDefaults() Config {
	if c.TargetNNZ <= 0 {
		c.TargetNNZ = 100000
	}
	if c.Rank <= 0 {
		c.Rank = 10
	}
	if c.Mu == 0 {
		c.Mu = 0.8
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 10
	}
	if c.Workers <= 0 {
		c.Workers = 15
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Model == (simtime.Model{}) {
		c.Model = simtime.Default()
	}
	if len(c.Datasets) == 0 {
		c.Datasets = dataset.Kinds
	}
	return c
}

func (c Config) generate(k dataset.Kind) *tensor.Tensor {
	return dataset.Preset(k, c.TargetNNZ, c.Seed).Generate()
}

// scaledModel returns the cost model matched to dataset k at this run's
// reduced scale, so the ratios between the cost components stay what
// they were on the paper's testbed instead of everything drowning in
// the fixed scheduling/latency overheads. The two dominant quantities
// scale differently, so each gets its own factor:
//
//   - compute is nnz-dominated (MTTKRP), so ComputeRate shrinks by
//     nnz(generated)/nnz(paper);
//   - per-iteration traffic is dims-dominated (factor-row exchange and
//     Gram reductions scale with mode sizes, not entries), so Bandwidth
//     shrinks by Σdims(generated)/Σdims(paper). This matters for
//     Synthetic, whose generated dims are floored far above
//     proportional scale to stay partitionable.
//
// See DESIGN.md ("Substitutions").
func (c Config) scaledModel(k dataset.Kind, genDims []int) simtime.Model {
	paperDims, paperNNZ := dataset.PaperRow(k)
	m := c.Model
	m.ComputeRate *= float64(c.TargetNNZ) / paperNNZ
	var ours, paper float64
	for _, d := range genDims {
		ours += float64(d)
	}
	for _, d := range paperDims {
		paper += d
	}
	m.Bandwidth *= ours / paper
	return m
}

// setupPerIter amortises a method's per-snapshot data redistribution
// (Theorem 4's O(nnz + NIR) setup communication) over the snapshot's
// iterations. This is where the streaming methods bank their largest
// practical win on big data: DMS-MG reships the whole tensor every
// snapshot, DisMASTD only the relative complement.
func setupPerIter(model simtime.Model, setupBytes int64, iters int) time.Duration {
	if iters < 1 {
		iters = 1
	}
	return time.Duration(float64(setupBytes) / model.Bandwidth / float64(iters) * float64(time.Second))
}

// ---- Table III ----------------------------------------------------------

// Table3Row pairs a generated dataset's statistics with the paper's.
type Table3Row struct {
	Stats     dataset.Stats
	PaperDims [3]float64
	PaperNNZ  float64
}

// Table3 generates each dataset and reports its statistics.
func Table3(cfg Config) []Table3Row {
	cfg = cfg.withDefaults()
	var rows []Table3Row
	for _, k := range cfg.Datasets {
		t := cfg.generate(k)
		dims, nnz := dataset.PaperRow(k)
		rows = append(rows, Table3Row{Stats: dataset.Describe(k.String(), t), PaperDims: dims, PaperNNZ: nnz})
	}
	return rows
}

// FormatTable3 renders the rows like the paper's Table III.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s   (paper: I, J, K, nnz)\n", "Dataset", "I", "J", "K", "nnz")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %10d %10d %10d   (%.1e, %.1e, %.1e, %.1e)\n",
			r.Stats.Name, r.Stats.Dims[0], r.Stats.Dims[1], r.Stats.Dims[2], r.Stats.NNZ,
			r.PaperDims[0], r.PaperDims[1], r.PaperDims[2], r.PaperNNZ)
	}
	return b.String()
}

// ---- Table IV -----------------------------------------------------------

// Table4Row is one (dataset, partitioner, p) balance measurement: the
// standard deviation of partition nnz normalised by the mean, averaged
// over the three modes.
type Table4Row struct {
	Dataset string
	Method  partition.Method
	P       int
	StdDev  float64
}

// Table4PartCounts are the paper's partition counts.
var Table4PartCounts = []int{8, 15, 23, 30, 38}

// Table4 partitions each dataset's modes with both heuristics at every
// partition count.
func Table4(cfg Config) []Table4Row {
	cfg = cfg.withDefaults()
	var rows []Table4Row
	for _, k := range cfg.Datasets {
		t := cfg.generate(k)
		hists := make([][]int64, t.Order())
		for m := range hists {
			hists[m] = t.SliceNNZ(m)
		}
		for _, method := range []partition.Method{partition.GTPMethod, partition.MTPMethod} {
			for _, p := range Table4PartCounts {
				sum := 0.0
				for m := range hists {
					sum += partition.Partition(hists[m], p, method).ImbalanceStdDev()
				}
				rows = append(rows, Table4Row{Dataset: k.String(), Method: method, P: p, StdDev: sum / float64(len(hists))})
			}
		}
	}
	return rows
}

// FormatTable4 renders the rows like the paper's Table IV.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s", "Dataset", "p")
	for _, p := range Table4PartCounts {
		fmt.Fprintf(&b, " %8d", p)
	}
	fmt.Fprintln(&b)
	// Group rows (dataset, method) -> p -> stddev.
	type key struct {
		ds     string
		method partition.Method
	}
	grouped := map[key]map[int]float64{}
	var order []key
	for _, r := range rows {
		k := key{r.Dataset, r.Method}
		if grouped[k] == nil {
			grouped[k] = map[int]float64{}
			order = append(order, k)
		}
		grouped[k][r.P] = r.StdDev
	}
	for _, k := range order {
		fmt.Fprintf(&b, "%-10s %-6s", k.ds, k.method)
		for _, p := range Table4PartCounts {
			fmt.Fprintf(&b, " %8.4f", grouped[k][p])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ---- Method runners ------------------------------------------------------

// Method names the four compared systems of Section V-B1.
type Method struct {
	Name        string
	Streaming   bool // DisMASTD reuses the previous state; DMS-MG recomputes
	Partitioner partition.Method
}

// Methods is the paper's comparison set.
var Methods = []Method{
	{"DisMASTD-GTP", true, partition.GTPMethod},
	{"DisMASTD-MTP", true, partition.MTPMethod},
	{"DMS-MG-GTP", false, partition.GTPMethod},
	{"DMS-MG-MTP", false, partition.MTPMethod},
}

// Measurement is one (method, configuration) timing sample.
type Measurement struct {
	Iters       int
	NNZ         int // entries the method processed per iteration
	WallPerIter time.Duration
	SimPerIter  time.Duration
	Stats       *cluster.RunStats
}

// runDisMASTD performs one streaming step and returns the new state
// plus its measurement.
func (c Config) runDisMASTD(model simtime.Model, prev *dtd.State, snap *tensor.Tensor, method partition.Method, workers, parts int) (*dtd.State, Measurement, error) {
	st, stats, err := core.Step(prev, snap, core.Options{
		Rank: c.Rank, MaxIters: c.MaxIters, Tol: 1e-9, Mu: c.Mu, Seed: c.Seed,
		Workers: workers, Parts: parts, Method: method, Threads: c.Threads, Layout: c.Layout,
	})
	if err != nil {
		return nil, Measurement{}, err
	}
	waves := simtime.Waves(parts, workers)
	m := Measurement{
		Iters:       stats.Iters,
		NNZ:         stats.ComplementNNZ,
		WallPerIter: stats.Cluster.Wall / time.Duration(stats.Iters),
		SimPerIter:  model.PerIteration(stats.Cluster, stats.Iters, waves) + setupPerIter(model, stats.SetupBytes, stats.Iters),
		Stats:       stats.Cluster,
	}
	return st, m, nil
}

// runDMSMG decomposes the snapshot from scratch and returns the
// measurement.
func (c Config) runDMSMG(model simtime.Model, snap *tensor.Tensor, method partition.Method, workers, parts int) (Measurement, error) {
	_, stats, err := dmsmg.Decompose(snap, dmsmg.Options{
		Rank: c.Rank, MaxIters: c.MaxIters, Tol: 1e-9, Seed: c.Seed,
		Workers: workers, Parts: parts, Method: method, Threads: c.Threads, Layout: c.Layout,
	})
	if err != nil {
		return Measurement{}, err
	}
	waves := simtime.Waves(parts, workers)
	return Measurement{
		Iters:       stats.Iters,
		NNZ:         stats.NNZ,
		WallPerIter: stats.Cluster.Wall / time.Duration(stats.Iters),
		SimPerIter:  model.PerIteration(stats.Cluster, stats.Iters, waves) + setupPerIter(model, stats.SetupBytes, stats.Iters),
		Stats:       stats.Cluster,
	}, nil
}

// ---- Fig. 5 --------------------------------------------------------------

// Fig5Point is one (dataset, method, stream step) sample.
type Fig5Point struct {
	Dataset string
	Method  string
	Frac    float64 // snapshot size as a fraction of the full dataset
	Measurement
}

// Fig5 walks the 75%→100% stream on every dataset with all four
// methods. The 75% snapshot bootstraps the streaming methods
// (decomposed once, centrally); measurements cover the five growth
// steps 80%..100%, as in the paper's streaming protocol.
func Fig5(cfg Config) ([]Fig5Point, error) {
	cfg = cfg.withDefaults()
	var points []Fig5Point
	for _, k := range cfg.Datasets {
		t := cfg.generate(k)
		model := cfg.scaledModel(k, t.Dims)
		seq, err := dataset.Stream(t, dataset.PaperFractions)
		if err != nil {
			return nil, err
		}
		snaps := make([]*tensor.Tensor, seq.Len())
		for i := range snaps {
			snaps[i] = seq.Snapshot(i)
		}
		for _, method := range Methods {
			if method.Streaming {
				st, _, err := dtd.Init(snaps[0], dtd.Options{Rank: cfg.Rank, MaxIters: cfg.MaxIters, Mu: cfg.Mu, Seed: cfg.Seed, Threads: cfg.Threads, Layout: cfg.Layout})
				if err != nil {
					return nil, fmt.Errorf("fig5 %s %s init: %w", k, method.Name, err)
				}
				for i := 1; i < seq.Len(); i++ {
					var m Measurement
					st, m, err = cfg.runDisMASTD(model, st, snaps[i], method.Partitioner, cfg.Workers, cfg.Workers)
					if err != nil {
						return nil, fmt.Errorf("fig5 %s %s step %d: %w", k, method.Name, i, err)
					}
					points = append(points, Fig5Point{Dataset: k.String(), Method: method.Name, Frac: dataset.PaperFractions[i], Measurement: m})
				}
			} else {
				for i := 1; i < seq.Len(); i++ {
					m, err := cfg.runDMSMG(model, snaps[i], method.Partitioner, cfg.Workers, cfg.Workers)
					if err != nil {
						return nil, fmt.Errorf("fig5 %s %s step %d: %w", k, method.Name, i, err)
					}
					points = append(points, Fig5Point{Dataset: k.String(), Method: method.Name, Frac: dataset.PaperFractions[i], Measurement: m})
				}
			}
		}
	}
	return points, nil
}

// FormatFig5 renders the series like the paper's Fig. 5 panels.
func FormatFig5(points []Fig5Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-14s %6s %10s %8s %14s %14s\n", "Dataset", "Method", "Size", "nnz/iter", "iters", "wall/iter", "sim/iter")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %-14s %5.0f%% %10d %8d %14s %14s\n",
			p.Dataset, p.Method, p.Frac*100, p.NNZ, p.Iters, p.WallPerIter.Round(time.Microsecond), p.SimPerIter.Round(time.Millisecond))
	}
	return b.String()
}

// ---- Fig. 6 --------------------------------------------------------------

// Fig6Point is one (dataset, method, partition count) sample, measured
// on the final stream step (95% → 100%).
type Fig6Point struct {
	Dataset string
	Method  string
	Parts   int
	Measurement
}

// Fig6 varies the per-mode partition count with a fixed worker count.
func Fig6(cfg Config) ([]Fig6Point, error) {
	cfg = cfg.withDefaults()
	var points []Fig6Point
	for _, k := range cfg.Datasets {
		t := cfg.generate(k)
		model := cfg.scaledModel(k, t.Dims)
		seq, err := dataset.Stream(t, dataset.PaperFractions)
		if err != nil {
			return nil, err
		}
		prevSnap := seq.Snapshot(seq.Len() - 2)
		st, _, err := dtd.Init(prevSnap, dtd.Options{Rank: cfg.Rank, MaxIters: cfg.MaxIters, Mu: cfg.Mu, Seed: cfg.Seed, Threads: cfg.Threads, Layout: cfg.Layout})
		if err != nil {
			return nil, fmt.Errorf("fig6 %s init: %w", k, err)
		}
		last := seq.Snapshot(seq.Len() - 1)
		for _, method := range Methods[:2] { // the DisMASTD variants
			for _, p := range Table4PartCounts {
				_, m, err := cfg.runDisMASTD(model, st, last, method.Partitioner, cfg.Workers, p)
				if err != nil {
					return nil, fmt.Errorf("fig6 %s %s p=%d: %w", k, method.Name, p, err)
				}
				points = append(points, Fig6Point{Dataset: k.String(), Method: method.Name, Parts: p, Measurement: m})
			}
		}
	}
	return points, nil
}

// FormatFig6 renders the partition sweep.
func FormatFig6(points []Fig6Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-14s %6s %8s %14s %14s\n", "Dataset", "Method", "parts", "iters", "wall/iter", "sim/iter")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %-14s %6d %8d %14s %14s\n",
			p.Dataset, p.Method, p.Parts, p.Iters, p.WallPerIter.Round(time.Microsecond), p.SimPerIter.Round(time.Millisecond))
	}
	return b.String()
}

// ---- Fig. 7 --------------------------------------------------------------

// Fig7Point is one (dataset, node count) sample of DisMASTD-MTP on the
// final stream step.
type Fig7Point struct {
	Dataset string
	Nodes   int
	Measurement
}

// Fig7NodeCounts are the paper's cluster sizes.
var Fig7NodeCounts = []int{3, 6, 9, 12, 15}

// Fig7 varies the number of worker nodes.
func Fig7(cfg Config) ([]Fig7Point, error) {
	cfg = cfg.withDefaults()
	var points []Fig7Point
	for _, k := range cfg.Datasets {
		t := cfg.generate(k)
		model := cfg.scaledModel(k, t.Dims)
		seq, err := dataset.Stream(t, dataset.PaperFractions)
		if err != nil {
			return nil, err
		}
		st, _, err := dtd.Init(seq.Snapshot(seq.Len()-2), dtd.Options{Rank: cfg.Rank, MaxIters: cfg.MaxIters, Mu: cfg.Mu, Seed: cfg.Seed, Threads: cfg.Threads, Layout: cfg.Layout})
		if err != nil {
			return nil, fmt.Errorf("fig7 %s init: %w", k, err)
		}
		last := seq.Snapshot(seq.Len() - 1)
		for _, nodes := range Fig7NodeCounts {
			_, m, err := cfg.runDisMASTD(model, st, last, partition.MTPMethod, nodes, nodes)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s nodes=%d: %w", k, nodes, err)
			}
			points = append(points, Fig7Point{Dataset: k.String(), Nodes: nodes, Measurement: m})
		}
	}
	return points, nil
}

// FormatFig7 renders the node sweep.
func FormatFig7(points []Fig7Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %8s %14s %14s\n", "Dataset", "nodes", "iters", "wall/iter", "sim/iter")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %6d %8d %14s %14s\n",
			p.Dataset, p.Nodes, p.Iters, p.WallPerIter.Round(time.Microsecond), p.SimPerIter.Round(time.Millisecond))
	}
	return b.String()
}
