package bench

import (
	"encoding/xml"
	"strings"
	"testing"
	"time"

	"dismastd/internal/dataset"
)

func validSVG(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, doc[:min(len(doc), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sample5() []Fig5Point {
	var out []Fig5Point
	for _, method := range []string{"DisMASTD-MTP", "DMS-MG-MTP"} {
		for i, frac := range []float64{0.8, 0.9, 1.0} {
			p := Fig5Point{Dataset: "Netflix", Method: method, Frac: frac}
			p.SimPerIter = time.Duration(i+1) * time.Second
			if method == "DMS-MG-MTP" {
				p.SimPerIter *= 3
			}
			out = append(out, p)
		}
	}
	return out
}

func TestFig5SVG(t *testing.T) {
	files := Fig5SVG(sample5())
	doc, ok := files["fig5_netflix.svg"]
	if !ok {
		t.Fatalf("files: %v", files)
	}
	validSVG(t, doc)
	for _, want := range []string{"DisMASTD-MTP", "DMS-MG-MTP", "polyline", "snapshot size"} {
		if !strings.Contains(doc, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series -> two polylines.
	if got := strings.Count(doc, "<polyline"); got != 2 {
		t.Fatalf("%d polylines", got)
	}
}

func TestFig6And7SVG(t *testing.T) {
	p6 := []Fig6Point{
		{Dataset: "Book", Method: "DisMASTD-GTP", Parts: 8, Measurement: Measurement{SimPerIter: 4 * time.Second}},
		{Dataset: "Book", Method: "DisMASTD-GTP", Parts: 15, Measurement: Measurement{SimPerIter: 2 * time.Second}},
	}
	for name, doc := range Fig6SVG(p6) {
		if name != "fig6_book.svg" {
			t.Fatalf("name %q", name)
		}
		validSVG(t, doc)
	}
	p7 := []Fig7Point{
		{Dataset: "Synthetic", Nodes: 3, Measurement: Measurement{SimPerIter: 9 * time.Second}},
		{Dataset: "Synthetic", Nodes: 15, Measurement: Measurement{SimPerIter: 3 * time.Second}},
		{Dataset: "Netflix", Nodes: 3, Measurement: Measurement{SimPerIter: time.Second}},
		{Dataset: "Netflix", Nodes: 15, Measurement: Measurement{SimPerIter: 800 * time.Millisecond}},
	}
	files := Fig7SVG(p7)
	doc := files["fig7.svg"]
	validSVG(t, doc)
	if !strings.Contains(doc, "Synthetic") || !strings.Contains(doc, "Netflix") {
		t.Fatal("fig7 missing dataset series")
	}
}

func TestSVGDegenerateInputs(t *testing.T) {
	// Empty input and constant values must not divide by zero.
	validSVG(t, renderChart("empty", "x", "y", nil))
	validSVG(t, renderChart("flat", "x", "y", []chartSeries{{Name: "s", X: []float64{1, 1}, Y: []float64{0, 0}}}))
}

func TestSVGEndToEndFromHarness(t *testing.T) {
	cfg := quickCfg()
	cfg.Datasets = []dataset.Kind{dataset.Netflix}
	points, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range Fig7SVG(points) {
		validSVG(t, doc)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{0: "0", 0.000005: "5µs", 0.002: "2ms", 2.5: "2.5s", 42: "42s"}
	for in, want := range cases {
		if got := formatSeconds(in); got != want {
			t.Fatalf("formatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}
