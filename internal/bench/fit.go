package bench

import (
	"fmt"
	"strings"

	"dismastd/internal/core"
	"dismastd/internal/cp"
	"dismastd/internal/dataset"
	"dismastd/internal/dmsmg"
	"dismastd/internal/dtd"
	"dismastd/internal/partition"
)

// Fit-quality experiment (extension): the paper evaluates efficiency
// and scalability and notes the accuracy parameters are held fixed
// (Section V-A), but a streaming method is only useful if its
// incremental factors stay close to what a full recomputation would
// produce. This runner walks the Fig. 5 stream and reports, at every
// step, the reconstruction fit (1 − ‖X − [[A]]‖/‖X‖) of DisMASTD's
// incrementally maintained factors next to the fit of a from-scratch
// DMS-MG decomposition of the same snapshot.

// FitPoint is one (dataset, step) quality sample.
type FitPoint struct {
	Dataset   string
	Frac      float64
	Streaming float64 // DisMASTD-MTP incremental fit
	Recompute float64 // DMS-MG-MTP from-scratch fit
}

// Fit runs the quality comparison.
func Fit(cfg Config) ([]FitPoint, error) {
	cfg = cfg.withDefaults()
	var points []FitPoint
	for _, k := range cfg.Datasets {
		t := cfg.generate(k)
		seq, err := dataset.Stream(t, dataset.PaperFractions)
		if err != nil {
			return nil, err
		}
		st, _, err := dtd.Init(seq.Snapshot(0), dtd.Options{Rank: cfg.Rank, MaxIters: cfg.MaxIters, Mu: cfg.Mu, Seed: cfg.Seed, Threads: cfg.Threads})
		if err != nil {
			return nil, err
		}
		for i := 1; i < seq.Len(); i++ {
			snap := seq.Snapshot(i)
			st, _, err = core.Step(st, snap, core.Options{
				Rank: cfg.Rank, MaxIters: cfg.MaxIters, Tol: 1e-9, Mu: cfg.Mu, Seed: cfg.Seed,
				Workers: cfg.Workers, Method: partition.MTPMethod, Threads: cfg.Threads,
			})
			if err != nil {
				return nil, fmt.Errorf("fit %s step %d: %w", k, i, err)
			}
			streaming := 1 - cp.LossAgainst(snap, st.Factors)/snap.Norm()

			_, mgStats, err := dmsmg.Decompose(snap, dmsmg.Options{
				Rank: cfg.Rank, MaxIters: cfg.MaxIters, Tol: 1e-9, Seed: cfg.Seed,
				Workers: cfg.Workers, Method: partition.MTPMethod, Threads: cfg.Threads,
			})
			if err != nil {
				return nil, fmt.Errorf("fit %s step %d recompute: %w", k, i, err)
			}
			points = append(points, FitPoint{
				Dataset: k.String(), Frac: dataset.PaperFractions[i],
				Streaming: streaming, Recompute: mgStats.Fit,
			})
		}
	}
	return points, nil
}

// FormatFit renders the quality comparison.
func FormatFit(points []FitPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %12s %12s %10s\n", "Dataset", "Size", "streaming", "recompute", "gap")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %5.0f%% %12.4f %12.4f %10.4f\n",
			p.Dataset, p.Frac*100, p.Streaming, p.Recompute, p.Recompute-p.Streaming)
	}
	return b.String()
}
