package bench

import (
	"fmt"
	"testing"

	"dismastd/internal/cp"
	"dismastd/internal/obs"
	"dismastd/internal/sample"
)

// BenchmarkSampledALS is the sampled-solver acceptance benchmark: full
// CP-ALS over a planted low-rank tensor with nnz ≥ 10^6, once with the
// exact solver and once with the leverage-score sketch at the default
// sample count. Each row reports round_us (per-sweep compute wall,
// index/compile time excluded) and fit (exact reconstruction fit);
// benchjson derives speedup_vs_exact and fit_gap from the pair into
// BENCH_sampled.json. The acceptance bar: speedup_vs_exact ≥ 2 with
// fit_gap within 1e-2 of the exact fit.
func BenchmarkSampledALS(b *testing.B) {
	// d=110, order=3 → nnz = 110³ ≈ 1.33e6.
	t := DenseLowRank(110, 3, 10, 0.01, 42)
	runs := []struct {
		name    string
		solver  sample.Kind
		samples int
	}{
		{"solver=exact", sample.Exact, 0},
		{fmt.Sprintf("solver=sampled/samples=%d", sample.DefaultSamples), sample.Sampled, sample.DefaultSamples},
	}
	norm := t.Norm()
	for _, rn := range runs {
		b.Run(rn.name, func(b *testing.B) {
			var round, fit float64
			for i := 0; i < b.N; i++ {
				o := obs.New()
				res, err := cp.Decompose(t, cp.Options{
					Rank: 10, MaxIters: 10, Tol: 1e-12, Seed: 42,
					Solver: rn.solver, Samples: rn.samples, Obs: o,
				})
				if err != nil {
					b.Fatal(err)
				}
				round = float64(sweepWall(res.Phases, res.Iters).Microseconds())
				fit = 1 - cp.LossAgainst(t, res.Factors)/norm
			}
			b.ReportMetric(round, "round_us")
			b.ReportMetric(fit, "fit")
		})
	}
}

// TestSampledGapHarness runs the fit-gap harness at reduced scale on
// every paper dataset and checks the sampled fit lands within the
// harness's tolerance of the exact fit.
func TestSampledGapHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-dataset decomposition sweep")
	}
	cfg := Config{TargetNNZ: 20000, MaxIters: 6, Threads: 1}
	points, err := SampledGap(cfg, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	const tol = 5e-2
	for _, p := range points {
		if p.Samples == 0 {
			continue
		}
		if p.Gap > tol {
			t.Errorf("%s: sampled fit %.4f trails exact by %.4f > %.2f", p.Dataset, p.Fit, p.Gap, tol)
		}
	}
	t.Logf("\n%s", FormatSampled(points))
}
