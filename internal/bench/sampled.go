package bench

import (
	"fmt"
	"strings"
	"time"

	"dismastd/internal/cp"
	"dismastd/internal/obs"
	"dismastd/internal/sample"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Randomized-solver experiment (extension): the sampled ALS path
// (internal/sample) replaces each exact MTTKRP with a leverage-score
// sketch, making a sweep sublinear in nnz. This runner quantifies the
// trade on the paper's datasets: per-sweep wall time and final
// reconstruction fit for the exact and the sampled solver at the same
// seed, so the fit gap is attributable to sampling alone.

// SampledPoint is one (dataset, solver) sample of the comparison.
type SampledPoint struct {
	Dataset string
	Solver  string
	Samples int // sketch size S; 0 for the exact rows
	NNZ     int
	Iters   int
	Round   time.Duration // per-sweep compute wall, index/compile time excluded
	Fit     float64       // 1 − ‖X − [[A]]‖/‖X‖, evaluated exactly
	Gap     float64       // exact fit − this fit (0 on the exact rows)
}

// SampledGap runs full CP-ALS on each dataset with both solvers and
// reports their per-sweep times and exact reconstruction fits. samples
// is the sketch size S (<= 0 selects sample.DefaultSamples).
func SampledGap(cfg Config, samples int) ([]SampledPoint, error) {
	cfg = cfg.withDefaults()
	if samples <= 0 {
		samples = sample.DefaultSamples
	}
	var points []SampledPoint
	for _, k := range cfg.Datasets {
		t := cfg.generate(k)
		norm := t.Norm()
		var exactFit float64
		for _, solver := range []sample.Kind{sample.Exact, sample.Sampled} {
			o := obs.New()
			res, err := cp.Decompose(t, cp.Options{
				Rank: cfg.Rank, MaxIters: cfg.MaxIters, Tol: 1e-12, Seed: cfg.Seed,
				Threads: cfg.Threads, Layout: cfg.Layout,
				Solver: solver, Samples: samples, Obs: o,
			})
			if err != nil {
				return nil, fmt.Errorf("sampled %s %v: %w", k, solver, err)
			}
			fit := 1 - cp.LossAgainst(t, res.Factors)/norm
			p := SampledPoint{
				Dataset: k.String(), Solver: solver.String(),
				NNZ: t.NNZ(), Iters: res.Iters,
				Round: sweepWall(res.Phases, res.Iters), Fit: fit,
			}
			if solver == sample.Exact {
				exactFit = fit
			} else {
				p.Samples = samples
				p.Gap = exactFit - fit
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// sweepWall sums the per-sweep compute phases and divides by the sweep
// count. Excluded: planning spans (once-per-step work — complement
// extraction, layout compilation, the sampler's fiber index) and
// ".chunk" spans (nested inside their mttkrp span; adding them would
// double-count). Note obs.AggregatePhases folds "plan/sample-index"
// down to "sample-index" (PhaseOf keeps the part after the last '/'),
// so plan phases are matched by their aggregated names too.
func sweepWall(phases []obs.PhaseStat, iters int) time.Duration {
	planPhases := map[string]bool{
		"sample-index": true, "complement": true, "partition": true,
	}
	var tot time.Duration
	for _, p := range phases {
		if strings.HasPrefix(p.Name, "plan/") || strings.HasSuffix(p.Name, ".chunk") || planPhases[p.Name] {
			continue
		}
		tot += p.Total
	}
	if iters < 1 {
		iters = 1
	}
	return tot / time.Duration(iters)
}

// FormatSampled renders the comparison, pairing each sampled row with
// its exact baseline's speedup.
func FormatSampled(points []SampledPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %8s %10s %8s %14s %10s %10s %9s\n",
		"Dataset", "Solver", "S", "nnz", "iters", "round", "fit", "gap", "speedup")
	exact := map[string]time.Duration{}
	for _, p := range points {
		if p.Samples == 0 {
			exact[p.Dataset] = p.Round
		}
	}
	for _, p := range points {
		speedup := "-"
		if p.Samples != 0 && p.Round > 0 {
			if base, ok := exact[p.Dataset]; ok {
				speedup = fmt.Sprintf("%8.2fx", float64(base)/float64(p.Round))
			}
		}
		fmt.Fprintf(&b, "%-10s %-8s %8d %10d %8d %14s %10.4f %10.4f %9s\n",
			p.Dataset, p.Solver, p.Samples, p.NNZ, p.Iters,
			p.Round.Round(time.Microsecond), p.Fit, p.Gap, speedup)
	}
	return b.String()
}

// DenseLowRank builds the planted tensor the sampled-ALS acceptance
// benchmark decomposes: a fully enumerated d×d×…×d cube of a random
// rank-`rank` CP model plus Gaussian noise, so nnz = d^order and exact
// CP-ALS at that rank reaches fit ≈ 1. Dense fibers are the sketch's
// favourable regime — every drawn tuple resolves to a full fiber, so
// all S draws contribute to every output row (low per-row variance)
// while duplicate draws keep the matched entry count well below nnz.
func DenseLowRank(d, order, rank int, noise float64, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	dims := make([]int, order)
	for m := range dims {
		dims[m] = d
	}
	factors := make([][]float64, order)
	for m := range factors {
		factors[m] = make([]float64, d*rank)
		for i := range factors[m] {
			factors[m][i] = src.Float64()
		}
	}
	b := tensor.NewBuilder(dims)
	idx := make([]int, order)
	prod := make([]float64, rank)
	var rec func(m int)
	rec = func(m int) {
		if m == order {
			v := 0.0
			for _, p := range prod {
				v += p
			}
			b.Append(idx, v+noise*src.NormFloat64())
			return
		}
		outer := make([]float64, rank)
		copy(outer, prod)
		for i := 0; i < d; i++ {
			idx[m] = i
			row := factors[m][i*rank : (i+1)*rank]
			if m == 0 {
				copy(prod, row)
			} else {
				for r := range prod {
					prod[r] = outer[r] * row[r]
				}
			}
			rec(m + 1)
		}
		copy(prod, outer)
	}
	rec(0)
	return b.Build()
}
