package bench

// Phase breakdown experiment (observability extension): replay the
// paper's streaming protocol with the span tracer live and report where
// each rank's wall time goes — MTTKRP, solve, Gram all-reduce, row
// exchange, loss — per step and as per-phase medians over every
// retained span. This is the per-rank view Fig. 5 aggregates away.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"dismastd/internal/core"
	"dismastd/internal/dataset"
	"dismastd/internal/dtd"
	"dismastd/internal/obs"
	"dismastd/internal/partition"
)

// RankPhases is one rank's per-phase timing within one streaming step.
type RankPhases struct {
	Rank      int             `json:"rank"`
	BytesSent int64           `json:"bytes_sent"`
	Phases    []obs.PhaseStat `json:"phases"`
}

// PhaseStep is the per-rank breakdown of one streaming step.
type PhaseStep struct {
	Frac  float64      `json:"frac"`
	Iters int          `json:"iters"`
	Ranks []RankPhases `json:"ranks"`
}

// PhaseMedian summarises one phase across every span the stream's
// ranks retained: the median plus the p95/p99 tail, which is where a
// straggling rank shows up long before it moves the median.
type PhaseMedian struct {
	Phase    string `json:"phase"`
	Count    int    `json:"count"`
	MedianNs int64  `json:"median_ns"`
	P95Ns    int64  `json:"p95_ns"`
	P99Ns    int64  `json:"p99_ns"`
}

// PhasesReport is the full breakdown for one dataset's stream.
type PhasesReport struct {
	Dataset    string        `json:"dataset"`
	Workers    int           `json:"workers"`
	Threads    int           `json:"threads"`    // compute threads per worker (1 = sequential)
	Layout     string        `json:"layout"`     // sparse kernel representation: coo or compiled
	GOMAXPROCS int           `json:"gomaxprocs"` // scheduler parallelism of the measuring process
	Steps      []PhaseStep   `json:"steps"`
	Medians    []PhaseMedian `json:"medians"`
}

// StreamPhases replays the 75%→100% stream on one dataset with
// DisMASTD-MTP and collects each step's per-rank phase timings from the
// run's observability snapshots.
func StreamPhases(cfg Config, k dataset.Kind) (*PhasesReport, error) {
	cfg = cfg.withDefaults()
	t := cfg.generate(k)
	seq, err := dataset.Stream(t, dataset.PaperFractions)
	if err != nil {
		return nil, err
	}
	st, _, err := dtd.Init(seq.Snapshot(0), dtd.Options{Rank: cfg.Rank, MaxIters: cfg.MaxIters, Mu: cfg.Mu, Seed: cfg.Seed, Threads: cfg.Threads, Layout: cfg.Layout})
	if err != nil {
		return nil, fmt.Errorf("phases %s init: %w", k, err)
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = 1
	}
	report := &PhasesReport{Dataset: k.String(), Workers: cfg.Workers, Threads: threads, Layout: cfg.Layout.String(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	durs := map[string][]time.Duration{}
	for i := 1; i < seq.Len(); i++ {
		next, stats, err := core.Step(st, seq.Snapshot(i), core.Options{
			Rank: cfg.Rank, MaxIters: cfg.MaxIters, Tol: 1e-9, Mu: cfg.Mu, Seed: cfg.Seed,
			Workers: cfg.Workers, Method: partition.MTPMethod, Threads: cfg.Threads, Layout: cfg.Layout,
		})
		if err != nil {
			return nil, fmt.Errorf("phases %s step %d: %w", k, i, err)
		}
		st = next
		step := PhaseStep{Frac: dataset.PaperFractions[i], Iters: stats.Iters}
		for r, rk := range stats.Cluster.Ranks {
			if rk.Obs == nil {
				continue
			}
			step.Ranks = append(step.Ranks, RankPhases{
				Rank:      r,
				BytesSent: rk.BytesSent,
				Phases:    obs.AggregatePhases(rk.Obs.Phases),
			})
			for _, ev := range rk.Obs.Spans {
				ph := obs.PhaseOf(ev.Name)
				durs[ph] = append(durs[ph], ev.Dur)
			}
		}
		report.Steps = append(report.Steps, step)
	}
	for ph, ds := range durs {
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		report.Medians = append(report.Medians, PhaseMedian{
			Phase:    ph,
			Count:    len(ds),
			MedianNs: int64(obs.QuantileDurations(ds, 0.5)),
			P95Ns:    int64(obs.QuantileDurations(ds, 0.95)),
			P99Ns:    int64(obs.QuantileDurations(ds, 0.99)),
		})
	}
	sort.Slice(report.Medians, func(a, b int) bool { return report.Medians[a].Phase < report.Medians[b].Phase })
	return report, nil
}

// Phases runs StreamPhases on every configured dataset.
func Phases(cfg Config) ([]*PhasesReport, error) {
	cfg = cfg.withDefaults()
	var out []*PhasesReport
	for _, k := range cfg.Datasets {
		rep, err := StreamPhases(cfg, k)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// FormatPhases renders each report as a per-rank × per-phase table for
// the final stream step, followed by the per-phase span medians.
func FormatPhases(reports []*PhasesReport) string {
	var b strings.Builder
	for _, rep := range reports {
		if len(rep.Steps) == 0 {
			continue
		}
		last := rep.Steps[len(rep.Steps)-1]
		phases := phaseColumns(last)
		fmt.Fprintf(&b, "%s (final step, %d iters):\n", rep.Dataset, last.Iters)
		fmt.Fprintf(&b, "%6s", "rank")
		for _, ph := range phases {
			fmt.Fprintf(&b, " %12s", ph)
		}
		fmt.Fprintf(&b, " %12s\n", "bytes_sent")
		for _, rk := range last.Ranks {
			fmt.Fprintf(&b, "%6d", rk.Rank)
			totals := map[string]time.Duration{}
			for _, p := range rk.Phases {
				totals[p.Name] = p.Total
			}
			for _, ph := range phases {
				fmt.Fprintf(&b, " %12s", totals[ph].Round(time.Microsecond))
			}
			fmt.Fprintf(&b, " %12d\n", rk.BytesSent)
		}
		quantiles := []struct {
			label string
			ns    func(PhaseMedian) int64
		}{
			{"p50", func(m PhaseMedian) int64 { return m.MedianNs }},
			{"p95", func(m PhaseMedian) int64 { return m.P95Ns }},
			{"p99", func(m PhaseMedian) int64 { return m.P99Ns }},
		}
		for _, q := range quantiles {
			fmt.Fprintf(&b, "%6s", q.label)
			row := map[string]time.Duration{}
			for _, m := range rep.Medians {
				row[m.Phase] = time.Duration(q.ns(m))
			}
			for _, ph := range phases {
				fmt.Fprintf(&b, " %12s", row[ph].Round(time.Microsecond))
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// phaseColumns returns the union of phase names in a step, sorted.
func phaseColumns(step PhaseStep) []string {
	set := map[string]bool{}
	for _, rk := range step.Ranks {
		for _, p := range rk.Phases {
			set[p.Name] = true
		}
	}
	out := make([]string, 0, len(set))
	for ph := range set {
		out = append(out, ph)
	}
	sort.Strings(out)
	return out
}

// WritePhasesJSON emits the reports as indented JSON.
func WritePhasesJSON(w io.Writer, reports []*PhasesReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
