package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dismastd/internal/dataset"
)

func TestStreamPhasesReportsEveryRankAndPhase(t *testing.T) {
	cfg := quickCfg()
	rep, err := StreamPhases(cfg, dataset.Book)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != len(dataset.PaperFractions)-1 {
		t.Fatalf("%d steps, want %d", len(rep.Steps), len(dataset.PaperFractions)-1)
	}
	for _, step := range rep.Steps {
		if len(step.Ranks) != cfg.Workers {
			t.Fatalf("step at %.0f%%: %d ranks, want %d", step.Frac*100, len(step.Ranks), cfg.Workers)
		}
	}
	// Every sweep phase must show up with nonzero time in the medians.
	seen := map[string]bool{}
	for _, m := range rep.Medians {
		seen[m.Phase] = true
		if m.Count == 0 {
			t.Fatalf("phase %s has no spans", m.Phase)
		}
		if m.P95Ns < m.MedianNs || m.P99Ns < m.P95Ns {
			t.Fatalf("phase %s quantiles out of order: p50=%d p95=%d p99=%d", m.Phase, m.MedianNs, m.P95Ns, m.P99Ns)
		}
	}
	for _, ph := range []string{"mttkrp", "solve", "allreduce", "exchange", "loss"} {
		if !seen[ph] {
			t.Fatalf("phase %s missing from medians %v", ph, rep.Medians)
		}
	}

	text := FormatPhases([]*PhasesReport{rep})
	if !strings.Contains(text, "mttkrp") || !strings.Contains(text, "rank") {
		t.Fatalf("table missing columns:\n%s", text)
	}

	var buf bytes.Buffer
	if err := WritePhasesJSON(&buf, []*PhasesReport{rep}); err != nil {
		t.Fatal(err)
	}
	var back []*PhasesReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back) != 1 || back[0].Dataset != "Book" {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

// BenchmarkStreamPaper is the paper-scale streaming benchmark `make
// bench-paper` records: one full 75%→100% stream, with the tracer's
// per-phase medians surfaced as custom metrics so BENCH_stream.json
// tracks where iteration time goes across PRs.
func BenchmarkStreamPaper(b *testing.B) {
	cfg := Config{TargetNNZ: 40000, Rank: 8, MaxIters: 5, Workers: 4, Seed: 42}
	var rep *PhasesReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = StreamPhases(cfg, dataset.Book)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range rep.Medians {
		b.ReportMetric(float64(m.MedianNs)/1e3, m.Phase+"_p50_us")
		b.ReportMetric(float64(m.P95Ns)/1e3, m.Phase+"_p95_us")
		b.ReportMetric(float64(m.P99Ns)/1e3, m.Phase+"_p99_us")
	}
	iters := 0
	for _, s := range rep.Steps {
		iters += s.Iters
	}
	b.ReportMetric(float64(iters), "stream_iters")
}
