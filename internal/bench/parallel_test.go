package bench

import (
	"fmt"
	"testing"

	"dismastd/internal/dataset"
	"dismastd/internal/dtd"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/par"
	"dismastd/internal/xrand"
)

// Thread-scaling suite for `make bench-par`: the same work at 1..8
// compute threads in a single process (no cluster in the way), so the
// speedup_vs_1 column benchjson derives in BENCH_parallel.json isolates
// the intra-worker parallel runtime. Speedups track the machine's core
// count; on a single-core box every row stays near 1x by construction.
var benchThreadCounts = []int{1, 2, 4, 8}

// BenchmarkParallelMTTKRP measures one mode-0 MTTKRP over a paper-scale
// dataset — the phase Table II makes the Θ(nnz·R) bottleneck — chunked
// across the pool.
func BenchmarkParallelMTTKRP(b *testing.B) {
	cfg := Config{TargetNNZ: 100000, Rank: 10, Seed: 42}.withDefaults()
	x := cfg.generate(dataset.Book)
	src := xrand.New(7)
	factors := make([]*mat.Dense, x.Order())
	for m, d := range x.Dims {
		factors[m] = mat.RandomUniform(d, cfg.Rank, src)
	}
	view := mttkrp.NewModeView(x, 0)
	dst := mat.New(x.Dims[0], cfg.Rank)
	for _, threads := range benchThreadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			pool := par.New(threads)
			defer pool.Close()
			wss := mat.NewWorkspaceSet(pool.Threads())
			acc := mttkrp.NewParAccumulator(pool, wss, nil)
			dst.Zero()
			acc.Accumulate(dst, view, factors, "") // warm the workspaces
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst.Zero()
				acc.Accumulate(dst, view, factors, "")
			}
			b.ReportMetric(float64(view.NNZ()), "nnz")
		})
	}
}

// BenchmarkParallelDTDStep measures a full centralized DTD streaming
// step (every Eq. (5) sweep phase: MTTKRP, solves, Gram refreshes,
// loss) at each thread count.
func BenchmarkParallelDTDStep(b *testing.B) {
	cfg := Config{TargetNNZ: 100000, Rank: 10, MaxIters: 5, Seed: 42}.withDefaults()
	t := cfg.generate(dataset.Book)
	seq, err := dataset.Stream(t, []float64{0.8, 1.0})
	if err != nil {
		b.Fatal(err)
	}
	prev, _, err := dtd.Init(seq.Snapshot(0), dtd.Options{Rank: cfg.Rank, MaxIters: 3, Mu: cfg.Mu, Seed: cfg.Seed})
	if err != nil {
		b.Fatal(err)
	}
	snap := seq.Snapshot(1)
	for _, threads := range benchThreadCounts {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			opts := dtd.Options{
				Rank: cfg.Rank, MaxIters: cfg.MaxIters, Tol: 1e-9, Mu: cfg.Mu,
				Seed: cfg.Seed, Threads: threads,
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := dtd.Step(prev, snap, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestParallelBenchFixturesAgree pins the benchmark fixtures themselves:
// the parallel MTTKRP over the bench dataset must match the sequential
// grouped kernel bit for bit at every benchmarked thread count, so the
// speedup table always compares identical computations.
func TestParallelBenchFixturesAgree(t *testing.T) {
	cfg := Config{TargetNNZ: 5000, Rank: 6, Seed: 42}.withDefaults()
	x := cfg.generate(dataset.Book)
	src := xrand.New(7)
	factors := make([]*mat.Dense, x.Order())
	for m, d := range x.Dims {
		factors[m] = mat.RandomUniform(d, cfg.Rank, src)
	}
	view := mttkrp.NewModeView(x, 0)
	want := mat.New(x.Dims[0], cfg.Rank)
	view.AccumulateInto(want, factors)
	for _, threads := range benchThreadCounts {
		pool := par.New(threads)
		wss := mat.NewWorkspaceSet(pool.Threads())
		acc := mttkrp.NewParAccumulator(pool, wss, nil)
		got := mat.New(x.Dims[0], cfg.Rank)
		acc.Accumulate(got, view, factors, "")
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("threads=%d: element %d = %v, want %v", threads, i, got.Data[i], want.Data[i])
			}
		}
		pool.Close()
	}
}
