package bench

import (
	"strings"
	"testing"

	"dismastd/internal/dataset"
	"dismastd/internal/partition"
)

// quickCfg keeps harness tests fast: small tensors, few workers/sweeps.
func quickCfg() Config {
	return Config{
		TargetNNZ: 8000,
		Rank:      4,
		MaxIters:  3,
		Workers:   4,
		Seed:      7,
	}
}

func TestTable3ShapesMatchPaperOrder(t *testing.T) {
	rows := Table3(quickCfg())
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	names := []string{"Clothing", "Book", "Netflix", "Synthetic"}
	for i, r := range rows {
		if r.Stats.Name != names[i] {
			t.Fatalf("row %d is %s", i, r.Stats.Name)
		}
		if r.Stats.NNZ <= 0 || r.PaperNNZ <= 0 {
			t.Fatalf("row %d empty: %+v", i, r)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "Netflix") || !strings.Contains(out, "paper") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestTable4ReproducesPaperShape(t *testing.T) {
	rows := Table4(quickCfg())
	// Index by (dataset, method, p).
	idx := map[string]map[partition.Method]map[int]float64{}
	for _, r := range rows {
		if idx[r.Dataset] == nil {
			idx[r.Dataset] = map[partition.Method]map[int]float64{}
		}
		if idx[r.Dataset][r.Method] == nil {
			idx[r.Dataset][r.Method] = map[int]float64{}
		}
		idx[r.Dataset][r.Method][r.P] = r.StdDev
	}
	// Paper shape 1: on every skewed (real-like) dataset MTP balances
	// better than GTP at every partition count.
	for _, ds := range []string{"Clothing", "Book", "Netflix"} {
		for _, p := range Table4PartCounts {
			g, m := idx[ds][partition.GTPMethod][p], idx[ds][partition.MTPMethod][p]
			if m > g {
				t.Fatalf("%s p=%d: MTP %.4f worse than GTP %.4f", ds, p, m, g)
			}
		}
	}
	// Paper shape 2: on Synthetic both methods are comparably balanced
	// (within a small absolute gap).
	for _, p := range Table4PartCounts {
		g, m := idx["Synthetic"][partition.GTPMethod][p], idx["Synthetic"][partition.MTPMethod][p]
		if diff := g - m; diff < -0.1 || diff > 0.1 {
			t.Fatalf("Synthetic p=%d: gap %.4f too large (GTP %.4f MTP %.4f)", p, diff, g, m)
		}
	}
	if out := FormatTable4(rows); !strings.Contains(out, "GTP") || !strings.Contains(out, "MTP") {
		t.Fatal("format output missing methods")
	}
}

func TestFig5ReproducesPaperShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Datasets = []dataset.Kind{dataset.Netflix}
	points, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string][]Fig5Point{}
	for _, p := range points {
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	if len(byMethod) != 4 {
		t.Fatalf("methods: %v", len(byMethod))
	}
	for name, series := range byMethod {
		if len(series) != 5 {
			t.Fatalf("%s has %d points", name, len(series))
		}
	}
	// Shape 1: DisMASTD processes far fewer entries per iteration than
	// DMS-MG at every step (complement vs whole snapshot).
	for i := range byMethod["DisMASTD-MTP"] {
		dm := byMethod["DisMASTD-MTP"][i]
		mg := byMethod["DMS-MG-MTP"][i]
		if dm.NNZ*2 >= mg.NNZ {
			t.Fatalf("step %.0f%%: DisMASTD nnz %d not well below DMS-MG %d", dm.Frac*100, dm.NNZ, mg.NNZ)
		}
	}
	// Shape 2: DMS-MG's per-iteration data grows along the stream while
	// DisMASTD's stays bounded by the per-step delta.
	mg := byMethod["DMS-MG-GTP"]
	if mg[len(mg)-1].NNZ <= mg[0].NNZ {
		t.Fatal("DMS-MG workload did not grow with the stream")
	}
	// Shape 3: simulated per-iteration time favours DisMASTD at the
	// final (largest) snapshot.
	dmLast := byMethod["DisMASTD-MTP"][4]
	mgLast := byMethod["DMS-MG-MTP"][4]
	if dmLast.SimPerIter >= mgLast.SimPerIter {
		t.Fatalf("final step: DisMASTD sim %v not below DMS-MG %v", dmLast.SimPerIter, mgLast.SimPerIter)
	}
	if out := FormatFig5(points); !strings.Contains(out, "DisMASTD-GTP") {
		t.Fatal("format output missing series")
	}
}

func TestFig6ReproducesPaperShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 4
	cfg.Datasets = []dataset.Kind{dataset.Book}
	points, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 methods x 5 partition counts.
	if len(points) != 10 {
		t.Fatalf("%d points", len(points))
	}
	// Shape: simulated time is worse when partitions exceed workers by
	// several waves (p=38 vs p=8 with 4 workers is 10 waves vs 2).
	var p8, p38 Fig6Point
	for _, p := range points {
		if p.Method == "DisMASTD-MTP" && p.Parts == 8 {
			p8 = p
		}
		if p.Method == "DisMASTD-MTP" && p.Parts == 38 {
			p38 = p
		}
	}
	if p38.SimPerIter <= p8.SimPerIter {
		t.Fatalf("p=38 sim %v not above p=8 sim %v despite extra scheduling waves", p38.SimPerIter, p8.SimPerIter)
	}
	if out := FormatFig6(points); !strings.Contains(out, "parts") {
		t.Fatal("format output missing header")
	}
}

func TestFig7ReproducesPaperShape(t *testing.T) {
	cfg := quickCfg()
	cfg.TargetNNZ = 20000
	cfg.Datasets = []dataset.Kind{dataset.Netflix, dataset.Synthetic}
	points, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(Fig7NodeCounts) {
		t.Fatalf("%d points", len(points))
	}
	series := map[string][]Fig7Point{}
	for _, p := range points {
		series[p.Dataset] = append(series[p.Dataset], p)
	}
	speedup := func(name string) float64 {
		s := series[name]
		first, last := s[0], s[len(s)-1]
		// Shape 1: more nodes reduce the simulated per-iteration time.
		if last.SimPerIter >= first.SimPerIter {
			t.Fatalf("%s: %d nodes sim %v not below %d nodes %v", name, last.Nodes, last.SimPerIter, first.Nodes, first.SimPerIter)
		}
		// And the straggler work itself must drop.
		if last.Stats.MaxWork() >= first.Stats.MaxWork() {
			t.Fatalf("%s: max per-node work did not drop with more nodes", name)
		}
		return float64(first.SimPerIter) / float64(last.SimPerIter)
	}
	// Shape 2 (the paper's Section V-B3 observation): the speedup on the
	// big Synthetic dataset exceeds the speedup on the smaller datasets,
	// where fixed startup costs dominate.
	if synth, netflix := speedup("Synthetic"), speedup("Netflix"); synth <= netflix {
		t.Fatalf("Synthetic speedup %.2f not above Netflix %.2f", synth, netflix)
	}
	if out := FormatFig7(points); !strings.Contains(out, "nodes") {
		t.Fatal("format output missing header")
	}
}

func TestFig5DisMASTDWinsEverywhere(t *testing.T) {
	// At the final (largest) snapshot DisMASTD must beat the DMS-MG
	// recompute baseline in simulated time on every dataset, for both
	// partitioners — the headline comparison of Fig. 5.
	cfg := quickCfg()
	cfg.TargetNNZ = 20000
	points, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]map[string]Fig5Point{}
	for _, p := range points {
		if p.Frac != 1.0 {
			continue
		}
		if last[p.Dataset] == nil {
			last[p.Dataset] = map[string]Fig5Point{}
		}
		last[p.Dataset][p.Method] = p
	}
	for ds, methods := range last {
		for _, suffix := range []string{"GTP", "MTP"} {
			dm := methods["DisMASTD-"+suffix]
			mg := methods["DMS-MG-"+suffix]
			if dm.SimPerIter >= mg.SimPerIter {
				t.Fatalf("%s/%s: DisMASTD sim %v not below DMS-MG %v", ds, suffix, dm.SimPerIter, mg.SimPerIter)
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.TargetNNZ != 100000 || c.Rank != 10 || c.Mu != 0.8 || c.MaxIters != 10 || c.Workers != 15 {
		t.Fatalf("defaults: %+v", c)
	}
	if len(c.Datasets) != 4 {
		t.Fatalf("default datasets: %v", c.Datasets)
	}
}

func TestCommSweepStaysWithinConstantBand(t *testing.T) {
	cfg := quickCfg()
	cfg.TargetNNZ = 10000
	points, err := Comm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 7 {
		t.Fatalf("%d points", len(points))
	}
	// Theorem 4 holds up to constants: the measured/formula ratio must
	// stay within one order of magnitude across every sweep.
	min, max := points[0].Ratio, points[0].Ratio
	for _, p := range points {
		if p.Ratio <= 0 {
			t.Fatalf("non-positive ratio: %+v", p)
		}
		if p.Ratio < min {
			min = p.Ratio
		}
		if p.Ratio > max {
			max = p.Ratio
		}
	}
	if max/min > 10 {
		t.Fatalf("measured/formula ratio varies %0.1fx (%.3f..%.3f); Theorem 4 predicts a constant band", max/min, min, max)
	}
	if out := FormatComm(points); !strings.Contains(out, "theorem4") {
		t.Fatal("format output missing header")
	}
}

func TestFitGapIsSmall(t *testing.T) {
	// The streaming approximation must track the from-scratch fit: the
	// gap at every step stays small relative to the recompute fit.
	cfg := quickCfg()
	cfg.TargetNNZ = 10000
	cfg.MaxIters = 8
	cfg.Datasets = []dataset.Kind{dataset.Netflix}
	points, err := Fit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		if p.Streaming <= 0 || p.Recompute <= 0 {
			t.Fatalf("non-positive fit: %+v", p)
		}
		if gap := p.Recompute - p.Streaming; gap > 0.15 {
			t.Fatalf("step %.0f%%: streaming fit %.4f trails recompute %.4f by %.4f", p.Frac*100, p.Streaming, p.Recompute, gap)
		}
	}
	if out := FormatFit(points); !strings.Contains(out, "recompute") {
		t.Fatal("format output missing header")
	}
}
