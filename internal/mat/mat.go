// Package mat implements the dense matrix kernels that CP-ALS and the
// DisMASTD update rules are built from: Gram products, Hadamard and
// Khatri-Rao products, Frobenius reductions, and small SPD solves.
//
// Everything is hand-rolled on float64 with row-major storage. The
// matrices that flow through the hot paths are either factor blocks
// (I_n x R with small R) or R x R Gram matrices, so the kernels favour
// simplicity and cache-friendly row traversal over blocking tricks.
package mat

import (
	"fmt"
	"math"

	"dismastd/internal/xrand"
)

// Dense is a row-major dense matrix. The zero value is an empty matrix;
// use New or NewFrom to construct. Exported fields make the type
// directly encodable by encoding/gob for cluster transport.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed r x c matrix. It panics if r or c is negative.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: New(%d, %d) with negative dimension", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewFrom wraps data as an r x c matrix without copying. It panics if
// len(data) != r*c.
func NewFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: NewFrom(%d, %d) with %d elements", r, c, len(data)))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a mutable slice view into the matrix.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

func (m *Dense) mustSameShape(o *Dense, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add stores a + b into m (which may alias a or b).
func (m *Dense) Add(a, b *Dense) {
	a.mustSameShape(b, "Add")
	m.mustSameShape(a, "Add")
	for i := range m.Data {
		m.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub stores a - b into m (which may alias a or b).
func (m *Dense) Sub(a, b *Dense) {
	a.mustSameShape(b, "Sub")
	m.mustSameShape(a, "Sub")
	for i := range m.Data {
		m.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Scale stores s*a into m (which may alias a).
func (m *Dense) Scale(s float64, a *Dense) {
	m.mustSameShape(a, "Scale")
	for i := range m.Data {
		m.Data[i] = s * a.Data[i]
	}
}

// AddScaled accumulates m += s*a.
func (m *Dense) AddScaled(s float64, a *Dense) {
	m.mustSameShape(a, "AddScaled")
	for i := range m.Data {
		m.Data[i] += s * a.Data[i]
	}
}

// Mul computes a*b into a freshly allocated matrix.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Gram computes AᵀA, an a.Cols x a.Cols symmetric matrix.
func Gram(a *Dense) *Dense { return CrossGram(a, a) }

// CrossGram computes AᵀB. A and B must have the same number of rows;
// the result is a.Cols x b.Cols. This is the row-wise product the paper
// aggregates with an all-to-all reduction (Section IV-B3).
func CrossGram(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: CrossGram row mismatch %d vs %d", a.Rows, b.Rows))
	}
	out := New(a.Cols, b.Cols)
	AccumulateCrossGram(out, a, b)
	return out
}

// AccumulateCrossGram adds AᵀB into dst, which must be a.Cols x b.Cols.
// It is the building block for partial Gram aggregation across workers.
func AccumulateCrossGram(dst, a, b *Dense) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: AccumulateCrossGram row mismatch %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("mat: AccumulateCrossGram destination shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for r, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(r)
			for c, bv := range brow {
				drow[c] += av * bv
			}
		}
	}
}

// Hadamard stores the elementwise product a .* b into m.
func (m *Dense) Hadamard(a, b *Dense) {
	a.mustSameShape(b, "Hadamard")
	m.mustSameShape(a, "Hadamard")
	for i := range m.Data {
		m.Data[i] = a.Data[i] * b.Data[i]
	}
}

// HadamardAll returns the elementwise product of all ms. It panics on an
// empty input. The result is freshly allocated.
func HadamardAll(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		panic("mat: HadamardAll of nothing")
	}
	out := ms[0].Clone()
	for _, m := range ms[1:] {
		out.Hadamard(out, m)
	}
	return out
}

// KhatriRao computes the column-wise Khatri-Rao product A ⊙ B: the
// result has a.Rows*b.Rows rows and the shared column count, with
// out[i*b.Rows+j, c] = A[i,c]*B[j,c].
func KhatriRao(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: KhatriRao column mismatch %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows*b.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			orow := out.Row(i*b.Rows + j)
			for c := range orow {
				orow[c] = arow[c] * brow[c]
			}
		}
	}
	return out
}

// Transpose returns Aᵀ as a new matrix.
func Transpose(a *Dense) *Dense {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.Data[j*a.Rows+i] = v
		}
	}
	return out
}

// FrobeniusNorm returns ||A||_F.
func FrobeniusNorm(a *Dense) float64 {
	sum := 0.0
	for _, v := range a.Data {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// SumAll returns the sum of every element of A. Applied to a Hadamard
// product of Gram matrices it yields the Kruskal inner product
// <[[A_1..A_N]], [[B_1..B_N]]> = SumAll(∗_k A_kᵀB_k).
func SumAll(a *Dense) float64 {
	sum := 0.0
	for _, v := range a.Data {
		sum += v
	}
	return sum
}

// Dot returns the elementwise inner product <A, B> = Σ a_ij b_ij.
func Dot(a, b *Dense) float64 {
	a.mustSameShape(b, "Dot")
	sum := 0.0
	for i, v := range a.Data {
		sum += v * b.Data[i]
	}
	return sum
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|, used by equivalence tests.
func MaxAbsDiff(a, b *Dense) float64 {
	a.mustSameShape(b, "MaxAbsDiff")
	max := 0.0
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// RandomGaussian fills a fresh r x c matrix with N(0,1) variates drawn
// from src.
func RandomGaussian(r, c int, src *xrand.Source) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = src.NormFloat64()
	}
	return m
}

// RandomUniform fills a fresh r x c matrix with U[0,1) variates drawn
// from src.
func RandomUniform(r, c int, src *xrand.Source) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = src.Float64()
	}
	return m
}

// StackRows returns the (a.Rows+b.Rows) x Cols matrix [A; B]. The paper
// stacks the old-region block A^(0) on top of the growth block A^(1) to
// form the full factor.
func StackRows(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: StackRows column mismatch %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows+b.Rows, a.Cols)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// SliceRows returns rows [from, to) of m as a view sharing storage.
func (m *Dense) SliceRows(from, to int) *Dense {
	if from < 0 || to < from || to > m.Rows {
		panic(fmt.Sprintf("mat: SliceRows[%d:%d] of %d rows", from, to, m.Rows))
	}
	return &Dense{Rows: to - from, Cols: m.Cols, Data: m.Data[from*m.Cols : to*m.Cols]}
}
