// Package mat implements the dense matrix kernels that CP-ALS and the
// DisMASTD update rules are built from: Gram products, Hadamard and
// Khatri-Rao products, Frobenius reductions, and small SPD solves.
//
// Everything is hand-rolled on float64 with row-major storage. The
// matrices that flow through the hot paths are either factor blocks
// (I_n x R with small R) or R x R Gram matrices, so the kernels favour
// simplicity and cache-friendly row traversal over blocking tricks.
package mat

import (
	"fmt"
	"math"

	"dismastd/internal/xrand"
)

// Dense is a row-major dense matrix. The zero value is an empty matrix;
// use New or NewFrom to construct. Exported fields make the type
// directly encodable by encoding/gob for cluster transport.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed r x c matrix. It panics if r or c is negative.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: New(%d, %d) with negative dimension", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewFrom wraps data as an r x c matrix without copying. It panics if
// len(data) != r*c.
func NewFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: NewFrom(%d, %d) with %d elements", r, c, len(data)))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Dense {
	m := New(n, n)
	m.SetIdentity()
	return m
}

// SetIdentity overwrites the square matrix m with the identity.
func (m *Dense) SetIdentity() {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("mat: SetIdentity on non-square %dx%d", m.Rows, m.Cols))
	}
	m.Zero()
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] = 1
	}
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a mutable slice view into the matrix.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m. Dimensions must match. m may be src
// itself but must not partially overlap it.
func (m *Dense) CopyFrom(src *Dense) {
	m.mustSameShape(src, "CopyFrom")
	mustElementwiseAlias("CopyFrom", m, src)
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

func (m *Dense) mustSameShape(o *Dense, op string) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add stores a + b into m. m may alias a or b exactly, never partially.
func (m *Dense) Add(a, b *Dense) {
	a.mustSameShape(b, "Add")
	m.mustSameShape(a, "Add")
	mustElementwiseAlias("Add", m, a)
	mustElementwiseAlias("Add", m, b)
	for i := range m.Data {
		m.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub stores a - b into m. m may alias a or b exactly, never partially.
func (m *Dense) Sub(a, b *Dense) {
	a.mustSameShape(b, "Sub")
	m.mustSameShape(a, "Sub")
	mustElementwiseAlias("Sub", m, a)
	mustElementwiseAlias("Sub", m, b)
	for i := range m.Data {
		m.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Scale stores s*a into m. m may alias a exactly, never partially.
func (m *Dense) Scale(s float64, a *Dense) {
	m.mustSameShape(a, "Scale")
	mustElementwiseAlias("Scale", m, a)
	for i := range m.Data {
		m.Data[i] = s * a.Data[i]
	}
}

// AddScaled accumulates m += s*a. m may alias a exactly, never
// partially.
func (m *Dense) AddScaled(s float64, a *Dense) {
	m.mustSameShape(a, "AddScaled")
	mustElementwiseAlias("AddScaled", m, a)
	for i := range m.Data {
		m.Data[i] += s * a.Data[i]
	}
}

// Mul computes a*b into a freshly allocated matrix.
func Mul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes a*b into dst, which must be a.Rows x b.Cols and must
// not alias a or b.
func MulInto(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto destination %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	mustDisjoint("MulInto", dst, a)
	mustDisjoint("MulInto", dst, b)
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Gram computes AᵀA, an a.Cols x a.Cols symmetric matrix.
func Gram(a *Dense) *Dense { return CrossGram(a, a) }

// GramInto computes AᵀA into dst, which must be a.Cols x a.Cols and
// must not alias a.
func GramInto(dst, a *Dense) { CrossGramInto(dst, a, a) }

// CrossGram computes AᵀB. A and B must have the same number of rows;
// the result is a.Cols x b.Cols. This is the row-wise product the paper
// aggregates with an all-to-all reduction (Section IV-B3).
func CrossGram(a, b *Dense) *Dense {
	out := New(a.Cols, b.Cols)
	CrossGramInto(out, a, b)
	return out
}

// CrossGramInto computes AᵀB into dst, which must be a.Cols x b.Cols
// and must not alias a or b.
func CrossGramInto(dst, a, b *Dense) {
	dst.Zero()
	AccumulateCrossGram(dst, a, b)
}

// AccumulateCrossGram adds AᵀB into dst, which must be a.Cols x b.Cols
// and must not alias a or b (it scatters into dst rows while reading a
// and b rows, so aliasing would fold partial results back into the
// inputs). It is the building block for partial Gram aggregation across
// workers.
func AccumulateCrossGram(dst, a, b *Dense) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: AccumulateCrossGram row mismatch %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("mat: AccumulateCrossGram destination shape mismatch")
	}
	mustDisjoint("AccumulateCrossGram", dst, a)
	mustDisjoint("AccumulateCrossGram", dst, b)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for r, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(r)
			for c, bv := range brow {
				drow[c] += av * bv
			}
		}
	}
}

// Hadamard stores the elementwise product a .* b into m. m may alias a
// or b exactly, never partially.
func (m *Dense) Hadamard(a, b *Dense) {
	a.mustSameShape(b, "Hadamard")
	m.mustSameShape(a, "Hadamard")
	mustElementwiseAlias("Hadamard", m, a)
	mustElementwiseAlias("Hadamard", m, b)
	for i := range m.Data {
		m.Data[i] = a.Data[i] * b.Data[i]
	}
}

// HadamardAll returns the elementwise product of all ms. It panics on an
// empty input. The result is freshly allocated.
func HadamardAll(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		panic("mat: HadamardAll of nothing")
	}
	out := New(ms[0].Rows, ms[0].Cols)
	HadamardAllInto(out, ms...)
	return out
}

// HadamardAllInto stores the elementwise product of all ms into dst.
// dst may alias ms[0] exactly; it must not partially overlap any input.
// It panics on an empty input.
func HadamardAllInto(dst *Dense, ms ...*Dense) {
	if len(ms) == 0 {
		panic("mat: HadamardAll of nothing")
	}
	dst.CopyFrom(ms[0])
	for _, m := range ms[1:] {
		dst.Hadamard(dst, m)
	}
}

// KhatriRao computes the column-wise Khatri-Rao product A ⊙ B: the
// result has a.Rows*b.Rows rows and the shared column count, with
// out[i*b.Rows+j, c] = A[i,c]*B[j,c].
func KhatriRao(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: KhatriRao column mismatch %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows*b.Rows, a.Cols)
	KhatriRaoInto(out, a, b)
	return out
}

// KhatriRaoInto computes A ⊙ B into dst, which must be a.Rows*b.Rows by
// the shared column count and must not alias a or b.
func KhatriRaoInto(dst, a, b *Dense) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: KhatriRao column mismatch %d vs %d", a.Cols, b.Cols))
	}
	if dst.Rows != a.Rows*b.Rows || dst.Cols != a.Cols {
		panic(fmt.Sprintf("mat: KhatriRaoInto destination %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows*b.Rows, a.Cols))
	}
	mustDisjoint("KhatriRaoInto", dst, a)
	mustDisjoint("KhatriRaoInto", dst, b)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			orow := dst.Row(i*b.Rows + j)
			for c := range orow {
				orow[c] = arow[c] * brow[c]
			}
		}
	}
}

// Transpose returns Aᵀ as a new matrix.
func Transpose(a *Dense) *Dense {
	out := New(a.Cols, a.Rows)
	TransposeInto(out, a)
	return out
}

// TransposeInto stores Aᵀ into dst, which must be a.Cols x a.Rows and
// must not alias a.
func TransposeInto(dst, a *Dense) {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic(fmt.Sprintf("mat: TransposeInto destination %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, a.Rows))
	}
	mustDisjoint("TransposeInto", dst, a)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			dst.Data[j*a.Rows+i] = v
		}
	}
}

// FrobeniusNorm returns ||A||_F.
func FrobeniusNorm(a *Dense) float64 {
	sum := 0.0
	for _, v := range a.Data {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// SumAll returns the sum of every element of A. Applied to a Hadamard
// product of Gram matrices it yields the Kruskal inner product
// <[[A_1..A_N]], [[B_1..B_N]]> = SumAll(∗_k A_kᵀB_k).
func SumAll(a *Dense) float64 {
	sum := 0.0
	for _, v := range a.Data {
		sum += v
	}
	return sum
}

// Dot returns the elementwise inner product <A, B> = Σ a_ij b_ij.
func Dot(a, b *Dense) float64 {
	a.mustSameShape(b, "Dot")
	sum := 0.0
	for i, v := range a.Data {
		sum += v * b.Data[i]
	}
	return sum
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|, used by equivalence tests.
func MaxAbsDiff(a, b *Dense) float64 {
	a.mustSameShape(b, "MaxAbsDiff")
	max := 0.0
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// RandomGaussian fills a fresh r x c matrix with N(0,1) variates drawn
// from src.
func RandomGaussian(r, c int, src *xrand.Source) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = src.NormFloat64()
	}
	return m
}

// RandomUniform fills a fresh r x c matrix with U[0,1) variates drawn
// from src.
func RandomUniform(r, c int, src *xrand.Source) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = src.Float64()
	}
	return m
}

// StackRows returns the (a.Rows+b.Rows) x Cols matrix [A; B]. The paper
// stacks the old-region block A^(0) on top of the growth block A^(1) to
// form the full factor.
func StackRows(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: StackRows column mismatch %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows+b.Rows, a.Cols)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// SliceRows returns rows [from, to) of m as a view sharing storage.
func (m *Dense) SliceRows(from, to int) *Dense {
	if from < 0 || to < from || to > m.Rows {
		panic(fmt.Sprintf("mat: SliceRows[%d:%d] of %d rows", from, to, m.Rows))
	}
	return &Dense{Rows: to - from, Cols: m.Cols, Data: m.Data[from*m.Cols : to*m.Cols]}
}
