package mat

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

func mustPanicContaining(t *testing.T, what, sub string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s did not panic", what)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, sub) {
			t.Fatalf("%s panicked with %v, want message containing %q", what, r, sub)
		}
	}()
	f()
}

func seqDense(r, c int) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = float64(i + 1)
	}
	return m
}

func TestOverlaps(t *testing.T) {
	m := seqDense(4, 3)
	other := seqDense(4, 3)
	if Overlaps(m, other) {
		t.Fatal("independent matrices reported as overlapping")
	}
	if !Overlaps(m, m) {
		t.Fatal("a matrix does not overlap itself")
	}
	a := m.SliceRows(0, 3)
	b := m.SliceRows(1, 4)
	if !Overlaps(a, b) {
		t.Fatal("shifted views of the same rows reported disjoint")
	}
	top := m.SliceRows(0, 2)
	bottom := m.SliceRows(2, 4)
	if Overlaps(top, bottom) {
		t.Fatal("adjacent disjoint views reported overlapping")
	}
	if !Overlaps(m, top) {
		t.Fatal("view does not overlap its parent")
	}
}

func TestElementwiseAliasContract(t *testing.T) {
	m := seqDense(4, 3)
	b := seqDense(4, 3)

	// Exact aliasing is allowed: dst may be one of the inputs.
	exact := seqDense(4, 3)
	exact.Add(exact, b)

	// Partial overlap panics instead of silently reading just-written
	// values.
	lo := m.SliceRows(0, 3)
	hi := m.SliceRows(1, 4)
	mustPanicContaining(t, "Add on shifted views", "partially overlaps", func() { lo.Add(lo, hi) })
	mustPanicContaining(t, "Hadamard on shifted views", "partially overlaps", func() { lo.Hadamard(hi, lo) })
	mustPanicContaining(t, "CopyFrom on shifted views", "partially overlaps", func() { lo.CopyFrom(hi) })
	mustPanicContaining(t, "AddScaled on shifted views", "partially overlaps", func() { lo.AddScaled(2, hi) })
	mustPanicContaining(t, "Scale on shifted views", "partially overlaps", func() { lo.Scale(2, hi) })
	sub := seqDense(3, 3)
	mustPanicContaining(t, "Sub on shifted views", "partially overlaps", func() { lo.Sub(sub, hi) })
}

func TestGatherKernelsRejectAnyAlias(t *testing.T) {
	a := seqDense(3, 3)
	b := seqDense(3, 3)

	mustPanicContaining(t, "MulInto dst==a", "aliases", func() { MulInto(a, a, b) })
	mustPanicContaining(t, "MulInto dst==b", "aliases", func() { MulInto(b, a, b) })
	mustPanicContaining(t, "GramInto dst==a", "aliases", func() { GramInto(a, a) })
	mustPanicContaining(t, "CrossGramInto dst==b", "aliases", func() { CrossGramInto(b, a, b) })
	mustPanicContaining(t, "AccumulateCrossGram dst==a", "aliases", func() { AccumulateCrossGram(a, a, b) })
	mustPanicContaining(t, "TransposeInto dst==a", "aliases", func() { TransposeInto(a, a) })
	mustPanicContaining(t, "CholeskyInto dst==a", "aliases", func() { _ = CholeskyInto(a, a) })

	kr := seqDense(9, 3)
	krA := kr.SliceRows(0, 3)
	mustPanicContaining(t, "KhatriRaoInto dst overlapping a", "aliases", func() { KhatriRaoInto(kr, krA, b) })

	ws := NewWorkspace()
	mustPanicContaining(t, "InverseInto dst==a", "aliases", func() { _ = InverseInto(a, a, ws) })
}

func TestSolveAliasContract(t *testing.T) {
	// An SPD system and a right-hand side.
	d := NewFrom(2, 2, []float64{4, 1, 1, 3})
	m := NewFrom(3, 2, []float64{1, 2, 3, 4, 5, 6})
	ws := NewWorkspace()

	// SolveRightRidgeInto: dst may alias m exactly...
	want := SolveRightRidge(m, d)
	aliased := m.Clone()
	SolveRightRidgeInto(aliased, aliased, d, ws)
	for i := range want.Data {
		if want.Data[i] != aliased.Data[i] {
			t.Fatalf("aliased SolveRightRidgeInto differs at %d: %v vs %v", i, aliased.Data[i], want.Data[i])
		}
	}
	// ...but never d, and never a partial overlap of m.
	mustPanicContaining(t, "SolveRightRidgeInto dst==d", "aliases", func() { SolveRightRidgeInto(d, seqDense(2, 2), d, ws) })
	big := seqDense(4, 2)
	mustPanicContaining(t, "SolveRightRidgeInto partial overlap", "partially overlaps",
		func() { SolveRightRidgeInto(big.SliceRows(0, 3), big.SliceRows(1, 4), d, ws) })

	// SolveSPDInto: dst may alias b exactly, never a.
	bvec := NewFrom(2, 1, []float64{5, 7})
	wantX, err := SolveSPD(d, bvec)
	if err != nil {
		t.Fatal(err)
	}
	x := bvec.Clone()
	if err := SolveSPDInto(x, d, x, ws); err != nil {
		t.Fatal(err)
	}
	for i := range wantX.Data {
		if wantX.Data[i] != x.Data[i] {
			t.Fatalf("aliased SolveSPDInto differs at %d: %v vs %v", i, x.Data[i], wantX.Data[i])
		}
	}
	mustPanicContaining(t, "SolveSPDInto dst==a", "aliases", func() { _ = SolveSPDInto(d, d, bvec, ws) })
}

func TestIntoKernelsMatchAllocatingForms(t *testing.T) {
	a := seqDense(4, 3)
	b := seqDense(3, 5)
	dst := New(4, 5)
	MulInto(dst, a, b)
	want := Mul(a, b)
	for i := range want.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatal("MulInto differs from Mul")
		}
	}

	g := New(3, 3)
	GramInto(g, a)
	wantG := Gram(a)
	for i := range wantG.Data {
		if g.Data[i] != wantG.Data[i] {
			t.Fatal("GramInto differs from Gram")
		}
	}

	h := New(3, 3)
	HadamardAllInto(h, g, wantG, g)
	wantH := HadamardAll(g, wantG, g)
	for i := range wantH.Data {
		if h.Data[i] != wantH.Data[i] {
			t.Fatal("HadamardAllInto differs from HadamardAll")
		}
	}

	c := seqDense(2, 3)
	kr := New(8, 3)
	KhatriRaoInto(kr, a.SliceRows(0, 4), c)
	wantKR := KhatriRao(a, c)
	for i := range wantKR.Data {
		if kr.Data[i] != wantKR.Data[i] {
			t.Fatal("KhatriRaoInto differs from KhatriRao")
		}
	}

	at := New(3, 4)
	TransposeInto(at, a)
	wantT := Transpose(a)
	for i := range wantT.Data {
		if at.Data[i] != wantT.Data[i] {
			t.Fatal("TransposeInto differs from Transpose")
		}
	}
}
