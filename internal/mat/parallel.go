package mat

// Parallel execution support for the dense kernels. Everything here
// follows the deterministic-reduction rule of the par runtime: a
// parallel kernel partitions the OUTPUT elements (rows of the result)
// across chunks and keeps the per-element accumulation order of the
// sequential kernel, so the bits produced are identical for every
// thread count — including the sequential nil-pool path, which runs
// the exact pre-refactor loop.

import (
	"fmt"

	"dismastd/internal/par"
)

// WorkspaceSet is the per-thread arena facility: one Workspace per
// pool thread, indexed by the tid a par.Body chunk runs as. The set
// preserves the zero-alloc steady state — each thread's scratch
// checkouts are positional within its own arena, so after warm-up no
// chunk allocates regardless of which pool worker executes it (tid,
// not goroutine identity, selects the arena, and chunk→tid assignment
// is static).
type WorkspaceSet struct {
	ws []*Workspace
}

// NewWorkspaceSet returns n fresh workspaces, one per pool thread
// (pool.Threads() of them).
func NewWorkspaceSet(n int) *WorkspaceSet {
	if n < 1 {
		panic(fmt.Sprintf("mat: NewWorkspaceSet(%d)", n))
	}
	s := &WorkspaceSet{ws: make([]*Workspace, n)}
	for i := range s.ws {
		s.ws[i] = NewWorkspace()
	}
	return s
}

// At returns thread tid's workspace.
func (s *WorkspaceSet) At(tid int) *Workspace { return s.ws[tid] }

// Len reports the number of per-thread workspaces.
func (s *WorkspaceSet) Len() int { return len(s.ws) }

// AccumulateCrossGramRows adds rows [lo, hi) of AᵀB into the same rows
// of dst: dst[r][c] += Σ_i a[i][r]·b[i][c] for r in the range, scanning
// input rows in ascending order exactly like AccumulateCrossGram — the
// accumulation order per output entry is independent of the range
// split, so chunked evaluation reproduces the sequential bits.
func AccumulateCrossGramRows(dst, a, b *Dense, lo, hi int) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: AccumulateCrossGramRows row mismatch %d vs %d", a.Rows, b.Rows))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("mat: AccumulateCrossGramRows destination shape mismatch")
	}
	if lo < 0 || hi > dst.Rows || lo > hi {
		panic(fmt.Sprintf("mat: AccumulateCrossGramRows range [%d, %d) of %d rows", lo, hi, dst.Rows))
	}
	mustDisjoint("AccumulateCrossGramRows", dst, a)
	mustDisjoint("AccumulateCrossGramRows", dst, b)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for r := lo; r < hi; r++ {
			av := arow[r]
			if av == 0 {
				continue
			}
			drow := dst.Row(r)
			for c, bv := range brow {
				drow[c] += av * bv
			}
		}
	}
}

// MulRowsInto computes rows [lo, hi) of A·B into the same rows of dst,
// zeroing them first. Each output row depends only on the matching row
// of A, so disjoint ranges are independent and bitwise identical to
// MulInto's sequential loop.
func MulRowsInto(dst, a, b *Dense, lo, hi int) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulRowsInto destination %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if lo < 0 || hi > dst.Rows || lo > hi {
		panic(fmt.Sprintf("mat: MulRowsInto range [%d, %d) of %d rows", lo, hi, dst.Rows))
	}
	mustDisjoint("MulRowsInto", dst, a)
	mustDisjoint("MulRowsInto", dst, b)
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// ParKernels bundles the pooled variants of the dense kernels the ALS
// drivers run per sweep: Gram/CrossGram refreshes, the numerator
// matmul, and the Eq. (5) right-solve. One ParKernels is owned by one
// driver (one goroutine); the task structs live on it so steady-state
// dispatch allocates nothing. With a nil pool every method degrades to
// the sequential kernel, bit-for-bit.
type ParKernels struct {
	pool *par.Pool
	wss  *WorkspaceSet
	l    *Dense // cached ridge-Cholesky factor, reused across solves

	gram  crossGramRowsTask
	mul   mulRowsTask
	solve solveRangeTask
}

// NewParKernels binds the kernels to a pool and its per-thread
// workspaces. wss must have at least pool.Threads() workspaces.
func NewParKernels(pool *par.Pool, wss *WorkspaceSet) *ParKernels {
	if wss.Len() < pool.Threads() {
		panic(fmt.Sprintf("mat: ParKernels with %d workspaces for %d threads", wss.Len(), pool.Threads()))
	}
	return &ParKernels{pool: pool, wss: wss}
}

// crossGramRowsTask evaluates a row range of AᵀB (zero + accumulate).
type crossGramRowsTask struct {
	dst, a, b *Dense
}

func (t *crossGramRowsTask) RunChunk(lo, hi, tid int) {
	for r := lo; r < hi; r++ {
		row := t.dst.Row(r)
		for c := range row {
			row[c] = 0
		}
	}
	AccumulateCrossGramRows(t.dst, t.a, t.b, lo, hi)
}

// CrossGramInto computes AᵀB into dst with output rows chunked across
// the pool.
func (k *ParKernels) CrossGramInto(dst, a, b *Dense) {
	k.gram = crossGramRowsTask{dst: dst, a: a, b: b}
	k.pool.For(dst.Rows, &k.gram)
}

// GramInto computes AᵀA into dst with output rows chunked across the
// pool.
func (k *ParKernels) GramInto(dst, a *Dense) { k.CrossGramInto(dst, a, a) }

// mulRowsTask evaluates a row range of A·B.
type mulRowsTask struct {
	dst, a, b *Dense
}

func (t *mulRowsTask) RunChunk(lo, hi, tid int) { MulRowsInto(t.dst, t.a, t.b, lo, hi) }

// MulInto computes A·B into dst with output rows chunked across the
// pool.
func (k *ParKernels) MulInto(dst, a, b *Dense) {
	k.mul = mulRowsTask{dst: dst, a: a, b: b}
	k.pool.For(a.Rows, &k.mul)
}

// solveRangeTask applies a shared Cholesky factor to a row range, each
// chunk staging through its own thread's workspace.
type solveRangeTask struct {
	dst, m, l *Dense
	wss       *WorkspaceSet
}

func (t *solveRangeTask) RunChunk(lo, hi, tid int) {
	SolveRightFactoredRange(t.dst, t.m, t.l, lo, hi, t.wss.At(tid))
}

// SolveRightRidgeInto computes M · D⁻¹ into dst with the same ridge
// fallback and aliasing contract as mat.SolveRightRidgeInto: the
// factorisation runs once on the caller, then the row solves are
// chunked across the pool. Each result row's bits depend only on its
// row of M and the shared factor, so the output is identical at every
// thread count.
func (k *ParKernels) SolveRightRidgeInto(dst, m, d *Dense) {
	if d.Rows != d.Cols || m.Cols != d.Rows {
		panic(fmt.Sprintf("mat: SolveRightRidge dimension mismatch %dx%d · inv(%dx%d)", m.Rows, m.Cols, d.Rows, d.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != m.Cols {
		panic(fmt.Sprintf("mat: SolveRightRidgeInto destination %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Rows, m.Cols))
	}
	mustDisjoint("SolveRightRidgeInto", dst, d)
	mustElementwiseAlias("SolveRightRidgeInto", dst, m)
	if k.l == nil || k.l.Rows != d.Rows {
		k.l = New(d.Rows, d.Rows)
	}
	RidgeCholeskyInto(k.l, d, k.wss.At(0))
	k.solve = solveRangeTask{dst: dst, m: m, l: k.l, wss: k.wss}
	k.pool.For(m.Rows, &k.solve)
}
