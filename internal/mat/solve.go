package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD reports that a Cholesky factorisation failed because the
// matrix is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not positive definite")

// ErrSingular reports that Gauss-Jordan elimination met a zero pivot.
var ErrSingular = errors.New("mat: matrix is singular")

// Cholesky computes the lower-triangular L with A = LLᵀ for a symmetric
// positive definite A. Only the lower triangle of A is read. It returns
// ErrNotSPD when a pivot is not strictly positive.
func Cholesky(a *Dense) (*Dense, error) {
	l := New(a.Rows, a.Rows)
	if err := CholeskyInto(l, a); err != nil {
		return nil, err
	}
	return l, nil
}

// CholeskyInto factorises A = LLᵀ into l, which must be a.Rows x a.Rows
// and must not alias a (later pivots re-read earlier columns of a). l
// is fully overwritten, upper triangle zeroed.
func CholeskyInto(l, a *Dense) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: Cholesky of non-square %dx%d", a.Rows, a.Cols))
	}
	if l.Rows != a.Rows || l.Cols != a.Cols {
		panic(fmt.Sprintf("mat: CholeskyInto destination %dx%d, want %dx%d", l.Rows, l.Cols, a.Rows, a.Cols))
	}
	mustDisjoint("CholeskyInto", l, a)
	n := a.Rows
	l.Zero()
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return nil
}

// choleskySolveInPlace solves LLᵀ x = b for each column of b, writing
// the solution over b.
func choleskySolveInPlace(l, b *Dense) {
	n := l.Rows
	// Forward substitution L y = b.
	for i := 0; i < n; i++ {
		brow := b.Row(i)
		for k := 0; k < i; k++ {
			lik := l.At(i, k)
			if lik == 0 {
				continue
			}
			krow := b.Row(k)
			for c := range brow {
				brow[c] -= lik * krow[c]
			}
		}
		inv := 1 / l.At(i, i)
		for c := range brow {
			brow[c] *= inv
		}
	}
	// Backward substitution Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		brow := b.Row(i)
		for k := i + 1; k < n; k++ {
			lki := l.At(k, i)
			if lki == 0 {
				continue
			}
			krow := b.Row(k)
			for c := range brow {
				brow[c] -= lki * krow[c]
			}
		}
		inv := 1 / l.At(i, i)
		for c := range brow {
			brow[c] *= inv
		}
	}
}

// SolveSPD solves A X = B for X where A is symmetric positive definite,
// using Cholesky. B is not modified.
func SolveSPD(a, b *Dense) (*Dense, error) {
	x := New(b.Rows, b.Cols)
	ws := NewWorkspace()
	if err := SolveSPDInto(x, a, b, ws); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveSPDInto solves A X = B into dst, taking the Cholesky factor from
// ws. dst must be b.Rows x b.Cols; it may alias b exactly (B is copied
// into dst before the factor is applied) but must not alias a. ws is
// released to its entry mark before returning.
func SolveSPDInto(dst, a, b *Dense, ws *Workspace) error {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: SolveSPD dimension mismatch %dx%d \\ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustDisjoint("SolveSPDInto", dst, a)
	mark := ws.Mark()
	defer ws.Release(mark)
	l := ws.Take(a.Rows, a.Cols)
	if err := CholeskyInto(l, a); err != nil {
		return err
	}
	dst.CopyFrom(b)
	choleskySolveInPlace(l, dst)
	return nil
}

// SolveRightRidge computes M · D⁻¹, the ALS "numerator times inverse
// denominator" step the paper applies row-wise. D must be symmetric
// (the Hadamard product of Gram matrices is). When D is not positive
// definite — a rank-deficient factor during early iterations — a small
// ridge eps·trace(D)/R·I is added until the Cholesky succeeds, the
// standard regularised-ALS fallback.
func SolveRightRidge(m, d *Dense) *Dense {
	out := New(m.Rows, m.Cols)
	ws := NewWorkspace()
	SolveRightRidgeInto(out, m, d, ws)
	return out
}

// SolveRightRidgeInto computes M · D⁻¹ into dst with the same ridge
// fallback as SolveRightRidge, taking all scratch (the regularised
// copy of D, the Cholesky factor, and the transposed solve buffer) from
// ws. dst must be m.Rows x m.Cols; it may alias m exactly (M is
// transposed into scratch before dst is written) but must not alias d.
// ws is released to its entry mark before returning.
func SolveRightRidgeInto(dst, m, d *Dense, ws *Workspace) {
	if d.Rows != d.Cols || m.Cols != d.Rows {
		panic(fmt.Sprintf("mat: SolveRightRidge dimension mismatch %dx%d · inv(%dx%d)", m.Rows, m.Cols, d.Rows, d.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != m.Cols {
		panic(fmt.Sprintf("mat: SolveRightRidgeInto destination %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Rows, m.Cols))
	}
	mustDisjoint("SolveRightRidgeInto", dst, d)
	mustElementwiseAlias("SolveRightRidgeInto", dst, m)
	mark := ws.Mark()
	defer ws.Release(mark)
	l := ws.Take(d.Rows, d.Rows)
	RidgeCholeskyInto(l, d, ws)
	SolveRightFactoredRange(dst, m, l, 0, m.Rows, ws)
}

// RidgeCholeskyInto factorises D (with the ridge fallback described on
// SolveRightRidge) into the lower-triangular l, taking the regularised
// copy of D from ws. l must be d.Rows x d.Rows and must not alias d.
// The factor is the shared input of SolveRightFactoredRange, letting
// one factorisation serve many (possibly concurrent) row-range solves.
// ws is released to its entry mark before returning.
func RidgeCholeskyInto(l, d *Dense, ws *Workspace) {
	if d.Rows != d.Cols {
		panic(fmt.Sprintf("mat: RidgeCholesky of non-square %dx%d", d.Rows, d.Cols))
	}
	mustDisjoint("RidgeCholeskyInto", l, d)
	n := d.Rows
	tr := 0.0
	for i := 0; i < n; i++ {
		tr += math.Abs(d.At(i, i))
	}
	if tr == 0 {
		tr = 1
	}
	mark := ws.Mark()
	defer ws.Release(mark)
	work := ws.Take(n, n)
	work.CopyFrom(d)
	ridge := 0.0
	for attempt := 0; ; attempt++ {
		if err := CholeskyInto(l, work); err == nil {
			return
		}
		if attempt > 60 {
			panic("mat: SolveRightRidge could not regularise matrix")
		}
		if ridge == 0 {
			ridge = 1e-12 * tr / float64(n)
		} else {
			ridge *= 10
		}
		work.CopyFrom(d)
		for i := 0; i < n; i++ {
			work.Set(i, i, work.At(i, i)+ridge)
		}
	}
}

// SolveRightFactoredRange computes rows [lo, hi) of M · D⁻¹ into the
// same rows of dst, given D's (ridge-)Cholesky factor l. It solves
// D Xᵀ = Mᵀ column-by-column using D's symmetry, so each row of the
// result depends only on the matching row of M and on l — disjoint row
// ranges solved with separate workspaces are independent, and because
// the triangular substitutions touch each column separately the bits
// produced for a row do not depend on which range it belongs to. dst
// may alias m exactly (the rows are staged through ws scratch) but
// must not alias l. ws is released to its entry mark before returning.
func SolveRightFactoredRange(dst, m, l *Dense, lo, hi int, ws *Workspace) {
	if l.Rows != l.Cols || m.Cols != l.Rows {
		panic(fmt.Sprintf("mat: SolveRightFactoredRange dimension mismatch %dx%d · inv(%dx%d)", m.Rows, m.Cols, l.Rows, l.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != m.Cols {
		panic(fmt.Sprintf("mat: SolveRightFactoredRange destination %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Rows, m.Cols))
	}
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("mat: SolveRightFactoredRange range [%d, %d) of %d rows", lo, hi, m.Rows))
	}
	mustDisjoint("SolveRightFactoredRange", dst, l)
	mustElementwiseAlias("SolveRightFactoredRange", dst, m)
	if lo == hi {
		return
	}
	w := hi - lo
	mark := ws.Mark()
	defer ws.Release(mark)
	xt := ws.Take(m.Cols, w)
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		for j, v := range row {
			xt.Data[j*w+(i-lo)] = v
		}
	}
	choleskySolveInPlace(l, xt)
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = xt.Data[j*w+(i-lo)]
		}
	}
}

// Inverse computes A⁻¹ by Gauss-Jordan elimination with partial
// pivoting. It returns ErrSingular when no usable pivot exists. The
// paper's complexity analysis counts an explicit O(R³) inverse of the
// denominator term; SolveRightRidge is the numerically preferred path,
// Inverse exists for parity and for tests.
func Inverse(a *Dense) (*Dense, error) {
	inv := New(a.Rows, a.Rows)
	ws := NewWorkspace()
	if err := InverseInto(inv, a, ws); err != nil {
		return nil, err
	}
	return inv, nil
}

// InverseInto computes A⁻¹ into dst, taking the elimination scratch
// from ws. dst must be a.Rows x a.Rows and must not alias a. ws is
// released to its entry mark before returning.
func InverseInto(dst, a *Dense, ws *Workspace) error {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: Inverse of non-square %dx%d", a.Rows, a.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic(fmt.Sprintf("mat: InverseInto destination %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, a.Cols))
	}
	mustDisjoint("InverseInto", dst, a)
	n := a.Rows
	mark := ws.Mark()
	defer ws.Release(mark)
	work := ws.Take(n, n)
	work.CopyFrom(a)
	inv := dst
	inv.SetIdentity()
	for col := 0; col < n; col++ {
		// Partial pivot: largest |value| in this column at or below the
		// diagonal.
		pivot := col
		best := math.Abs(work.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(work.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := work.At(col, col)
		scaleRow(work, col, 1/p)
		scaleRow(inv, col, 1/p)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(work, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return nil
}

func swapRows(m *Dense, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(m *Dense, r int, s float64) {
	row := m.Row(r)
	for i := range row {
		row[i] *= s
	}
}

// axpyRow adds s * row(src) to row(dst).
func axpyRow(m *Dense, dst, src int, s float64) {
	rd, rs := m.Row(dst), m.Row(src)
	for i := range rd {
		rd[i] += s * rs[i]
	}
}
