package mat

import "fmt"

// Aliasing contract
// -----------------
// Every in-place kernel documents which of its inputs the destination
// may alias, and panics — rather than silently miscomputing — when the
// contract is violated:
//
//   - Elementwise kernels (Add, Sub, Scale, AddScaled, Hadamard,
//     CopyFrom, HadamardAllInto): dst may be exactly one of the inputs
//     (same backing slice, same length). Partial overlap — e.g. shifted
//     SliceRows views of the same array — would read just-written
//     values, so it panics.
//   - Gather/scatter kernels whose output cells mix many input cells
//     (MulInto, GramInto, CrossGramInto, AccumulateCrossGram,
//     KhatriRaoInto, TransposeInto, CholeskyInto, InverseInto): dst must
//     not overlap any input at all.
//   - SolveSPDInto: dst may alias b (the right-hand side is copied into
//     dst before the factorisation is applied), never a.
//   - SolveRightRidgeInto: dst may alias m (m is transposed into
//     workspace scratch before dst is written), never d.
//
// The checks are O(1) pointer comparisons — no allocation, no unsafe —
// so they stay on in the hot path.

// overlaps reports whether two slices share any backing memory. Slices
// of the same backing array agree on the address of the array's final
// element (reached by re-slicing to capacity); slices of different
// arrays cannot. Given a shared array of length L, a slice with length
// l and capacity c covers elements [L-c, L-c+l).
func overlaps(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	af, bf := a[:cap(a)], b[:cap(b)]
	if &af[len(af)-1] != &bf[len(bf)-1] {
		return false // different backing arrays
	}
	return cap(a)-len(a) < cap(b) && cap(b)-len(b) < cap(a)
}

// exactAlias reports whether a and b are the very same region (same
// start, same length) — the one overlap the elementwise kernels allow.
func exactAlias(a, b []float64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// Overlaps reports whether two matrices share any backing memory,
// including partial overlap through SliceRows views.
func Overlaps(a, b *Dense) bool { return overlaps(a.Data, b.Data) }

// mustDisjoint panics when dst shares any memory with src — required by
// kernels whose output cells mix many input cells.
func mustDisjoint(op string, dst, src *Dense) {
	if overlaps(dst.Data, src.Data) {
		panic(fmt.Sprintf("mat: %s destination aliases an input", op))
	}
}

// mustElementwiseAlias panics when dst partially overlaps src: an
// elementwise kernel tolerates dst == src exactly, nothing in between.
func mustElementwiseAlias(op string, dst, src *Dense) {
	if overlaps(dst.Data, src.Data) && !exactAlias(dst.Data, src.Data) {
		panic(fmt.Sprintf("mat: %s destination partially overlaps an input", op))
	}
}
