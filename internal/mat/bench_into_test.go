package mat

import (
	"testing"

	"dismastd/internal/xrand"
)

// In-place kernel benchmarks, paired with their allocating counterparts
// above (BenchmarkGram, BenchmarkSolveRightRidge) so `make bench` shows
// the allocation story side by side.

func BenchmarkGramInto(b *testing.B) {
	a := RandomGaussian(10000, 10, xrand.New(1))
	dst := New(10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GramInto(dst, a)
	}
}

func BenchmarkMulInto(b *testing.B) {
	src := xrand.New(3)
	a := RandomGaussian(1000, 10, src)
	m := RandomGaussian(10, 10, src)
	dst := New(1000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, a, m)
	}
}

func BenchmarkHadamardAllInto(b *testing.B) {
	src := xrand.New(4)
	ms := make([]*Dense, 4)
	for i := range ms {
		ms[i] = RandomGaussian(10, 10, src)
	}
	dst := New(10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HadamardAllInto(dst, ms...)
	}
}

func BenchmarkSolveRightRidgeInto(b *testing.B) {
	src := xrand.New(2)
	d := Gram(RandomGaussian(100, 10, src))
	m := RandomGaussian(10000, 10, src)
	dst := New(10000, 10)
	ws := NewWorkspace()
	SolveRightRidgeInto(dst, m, d, ws) // warm the workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveRightRidgeInto(dst, m, d, ws)
	}
}

func BenchmarkKhatriRaoInto(b *testing.B) {
	src := xrand.New(5)
	x := RandomGaussian(200, 10, src)
	y := RandomGaussian(100, 10, src)
	dst := New(200*100, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KhatriRaoInto(dst, x, y)
	}
}
