package mat

import "testing"

func TestWorkspaceTakeIsZeroedAndShaped(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Take(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("Take(3,4) returned %dx%d with %d floats", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Take returned dirty buffer: element %d is %v", i, v)
		}
	}
	// Dirty it, recycle, and check the next checkout is clean again.
	for i := range m.Data {
		m.Data[i] = 7
	}
	ws.Reset()
	m2 := ws.Take(3, 4)
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("recycled buffer not re-zeroed: element %d is %v", i, v)
		}
	}
}

func TestWorkspacePositionalReuse(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Take(4, 4)
	ws.Reset()
	b := ws.Take(4, 4)
	if &a.Data[0] != &b.Data[0] {
		t.Fatal("same-position same-size Take did not reuse the cached slab")
	}
	if a != b {
		t.Fatal("same-position Take did not reuse the pooled header")
	}
	// A larger request at the same position grows the slab once, and a
	// later smaller request still reuses the grown slab.
	ws.Reset()
	big := ws.Take(8, 8)
	grown := ws.Floats()
	if grown < 64 {
		t.Fatalf("slab did not grow: %d floats cached", grown)
	}
	ws.Reset()
	small := ws.Take(2, 2)
	if ws.Floats() != grown {
		t.Fatalf("small Take after growth changed capacity: %d -> %d", grown, ws.Floats())
	}
	if &big.Data[0] != &small.Data[0] {
		t.Fatal("small Take after growth did not reuse the grown slab")
	}
}

func TestWorkspaceMarkRelease(t *testing.T) {
	ws := NewWorkspace()
	outer := ws.Take(2, 2)
	outer.Set(0, 0, 42)
	mark := ws.Mark()
	ws.Take(3, 3)
	ws.Take(1, 5)
	if ws.InUse() != 3 {
		t.Fatalf("InUse = %d, want 3", ws.InUse())
	}
	ws.Release(mark)
	if ws.InUse() != 1 {
		t.Fatalf("InUse after Release = %d, want 1", ws.InUse())
	}
	if outer.At(0, 0) != 42 {
		t.Fatal("Release disturbed a checkout made before the mark")
	}
	// The next Take reuses the released position.
	again := ws.Take(3, 3)
	if ws.InUse() != 2 {
		t.Fatalf("InUse after re-Take = %d, want 2", ws.InUse())
	}
	if again.At(0, 0) != 0 {
		t.Fatal("re-taken position not zeroed")
	}
}

func TestWorkspaceReleaseOutOfRangePanics(t *testing.T) {
	ws := NewWorkspace()
	ws.Take(2, 2)
	mustPanic(t, "Release past checkout position", func() { ws.Release(5) })
	mustPanic(t, "negative Release", func() { ws.Release(-1) })
	mustPanic(t, "negative Take", func() { ws.Take(-1, 3) })
}

func TestWorkspaceTakeVec(t *testing.T) {
	ws := NewWorkspace()
	v := ws.TakeVec(6)
	if len(v) != 6 {
		t.Fatalf("TakeVec(6) returned %d floats", len(v))
	}
	for i := range v {
		if v[i] != 0 {
			t.Fatal("TakeVec returned dirty buffer")
		}
	}
	if ws.InUse() != 1 {
		t.Fatalf("TakeVec consumed %d positions, want 1", ws.InUse())
	}
}

func TestWorkspaceSteadyStateAllocFree(t *testing.T) {
	ws := NewWorkspace()
	pass := func() {
		mark := ws.Mark()
		a := ws.Take(6, 6)
		b := ws.Take(6, 6)
		v := ws.TakeVec(6)
		a.Set(0, 0, 1)
		b.Set(0, 0, 2)
		v[0] = 3
		ws.Release(mark)
	}
	pass() // warm-up grows the slabs
	if allocs := testing.AllocsPerRun(100, pass); allocs != 0 {
		t.Fatalf("steady-state workspace pass allocates %v times, want 0", allocs)
	}
}
