package mat

import (
	"math"
	"testing"
	"testing/quick"

	"dismastd/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFrom with wrong length did not panic")
		}
	}()
	NewFrom(2, 2, []float64{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	row := m.Row(1)
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row is not a view")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewFrom(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewFrom(2, 2, []float64{5, 6, 7, 8})
	sum := New(2, 2)
	sum.Add(a, b)
	if sum.At(1, 1) != 12 {
		t.Fatalf("Add wrong: %v", sum.Data)
	}
	diff := New(2, 2)
	diff.Sub(b, a)
	if diff.At(0, 0) != 4 {
		t.Fatalf("Sub wrong: %v", diff.Data)
	}
	sc := New(2, 2)
	sc.Scale(2, a)
	if sc.At(1, 0) != 6 {
		t.Fatalf("Scale wrong: %v", sc.Data)
	}
	sc.AddScaled(1, a)
	if sc.At(1, 0) != 9 {
		t.Fatalf("AddScaled wrong: %v", sc.Data)
	}
}

func TestMulKnown(t *testing.T) {
	a := NewFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	p := Mul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if p.Data[i] != v {
			t.Fatalf("Mul[%d] = %v, want %v", i, p.Data[i], v)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	src := xrand.New(1)
	a := RandomGaussian(4, 4, src)
	p := Mul(a, Eye(4))
	if MaxAbsDiff(a, p) != 0 {
		t.Fatal("A * I != A")
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	src := xrand.New(2)
	a := RandomGaussian(10, 4, src)
	g := Gram(a)
	for i := 0; i < 4; i++ {
		if g.At(i, i) < 0 {
			t.Fatalf("Gram diagonal negative at %d", i)
		}
		for j := 0; j < 4; j++ {
			if !almostEqual(g.At(i, j), g.At(j, i), 1e-12) {
				t.Fatalf("Gram not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Matches Aᵀ·A computed the long way.
	want := Mul(Transpose(a), a)
	if MaxAbsDiff(g, want) > 1e-12 {
		t.Fatal("Gram != AᵀA")
	}
}

func TestCrossGramMatchesTransposeMul(t *testing.T) {
	src := xrand.New(3)
	a := RandomGaussian(7, 3, src)
	b := RandomGaussian(7, 5, src)
	got := CrossGram(a, b)
	want := Mul(Transpose(a), b)
	if MaxAbsDiff(got, want) > 1e-12 {
		t.Fatal("CrossGram != AᵀB")
	}
}

func TestAccumulateCrossGramPartitions(t *testing.T) {
	// Summing partial Grams over row blocks equals the full Gram —
	// the identity behind the paper's all-to-all reduction.
	src := xrand.New(4)
	a := RandomGaussian(9, 3, src)
	b := RandomGaussian(9, 3, src)
	full := CrossGram(a, b)
	sum := New(3, 3)
	for _, blk := range [][2]int{{0, 4}, {4, 7}, {7, 9}} {
		AccumulateCrossGram(sum, a.SliceRows(blk[0], blk[1]), b.SliceRows(blk[0], blk[1]))
	}
	if MaxAbsDiff(full, sum) > 1e-12 {
		t.Fatal("partial Gram aggregation != full Gram")
	}
}

func TestHadamard(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewFrom(2, 2, []float64{2, 3, 4, 5})
	h := New(2, 2)
	h.Hadamard(a, b)
	want := []float64{2, 6, 12, 20}
	for i := range want {
		if h.Data[i] != want[i] {
			t.Fatalf("Hadamard[%d] = %v", i, h.Data[i])
		}
	}
	all := HadamardAll(a, b, a)
	if all.At(1, 1) != 80 {
		t.Fatalf("HadamardAll wrong: %v", all.Data)
	}
}

func TestKhatriRaoKnown(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewFrom(2, 2, []float64{5, 6, 7, 8})
	kr := KhatriRao(a, b)
	if kr.Rows != 4 || kr.Cols != 2 {
		t.Fatalf("KhatriRao shape %dx%d", kr.Rows, kr.Cols)
	}
	want := []float64{5, 12, 7, 16, 15, 24, 21, 32}
	for i := range want {
		if kr.Data[i] != want[i] {
			t.Fatalf("KhatriRao[%d] = %v, want %v", i, kr.Data[i], want[i])
		}
	}
}

func TestKhatriRaoGramIdentity(t *testing.T) {
	// (A ⊙ B)ᵀ(A ⊙ B) = AᵀA .* BᵀB — the identity ALS exploits to
	// avoid materialising the Khatri-Rao product.
	src := xrand.New(5)
	a := RandomGaussian(4, 3, src)
	b := RandomGaussian(5, 3, src)
	kr := KhatriRao(a, b)
	left := Gram(kr)
	right := HadamardAll(Gram(a), Gram(b))
	if MaxAbsDiff(left, right) > 1e-10 {
		t.Fatalf("Khatri-Rao Gram identity violated by %v", MaxAbsDiff(left, right))
	}
}

func TestTransposeInvolution(t *testing.T) {
	src := xrand.New(6)
	a := RandomGaussian(3, 5, src)
	if MaxAbsDiff(a, Transpose(Transpose(a))) != 0 {
		t.Fatal("transpose twice is not identity")
	}
}

func TestNormsAndReductions(t *testing.T) {
	a := NewFrom(2, 2, []float64{3, 4, 0, 0})
	if FrobeniusNorm(a) != 5 {
		t.Fatalf("FrobeniusNorm = %v", FrobeniusNorm(a))
	}
	if SumAll(a) != 7 {
		t.Fatalf("SumAll = %v", SumAll(a))
	}
	b := NewFrom(2, 2, []float64{1, 1, 1, 1})
	if Dot(a, b) != 7 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
}

func TestStackAndSliceRows(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewFrom(1, 2, []float64{5, 6})
	s := StackRows(a, b)
	if s.Rows != 3 || s.At(2, 1) != 6 {
		t.Fatalf("StackRows wrong: %+v", s)
	}
	top := s.SliceRows(0, 2)
	if MaxAbsDiff(top, a) != 0 {
		t.Fatal("SliceRows top mismatch")
	}
	top.Set(0, 0, 9)
	if s.At(0, 0) != 9 {
		t.Fatal("SliceRows is not a view")
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	src := xrand.New(7)
	b := RandomGaussian(8, 4, src)
	a := Gram(b) // PSD; almost surely PD with 8 independent rows
	for i := 0; i < 4; i++ {
		a.Set(i, i, a.At(i, i)+0.1)
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := Mul(l, Transpose(l))
	if MaxAbsDiff(a, recon) > 1e-10 {
		t.Fatalf("LLᵀ differs from A by %v", MaxAbsDiff(a, recon))
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotSPD {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

func TestSolveSPD(t *testing.T) {
	src := xrand.New(8)
	b := RandomGaussian(10, 5, src)
	a := Gram(b)
	for i := 0; i < 5; i++ {
		a.Set(i, i, a.At(i, i)+0.5)
	}
	rhs := RandomGaussian(5, 3, src)
	x, err := SolveSPD(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(Mul(a, x), rhs) > 1e-9 {
		t.Fatalf("A·X differs from B by %v", MaxAbsDiff(Mul(a, x), rhs))
	}
}

func TestSolveRightRidgeMatchesInverse(t *testing.T) {
	src := xrand.New(9)
	b := RandomGaussian(12, 4, src)
	d := Gram(b)
	for i := 0; i < 4; i++ {
		d.Set(i, i, d.At(i, i)+1)
	}
	m := RandomGaussian(6, 4, src)
	got := SolveRightRidge(m, d)
	inv, err := Inverse(d)
	if err != nil {
		t.Fatal(err)
	}
	want := Mul(m, inv)
	if MaxAbsDiff(got, want) > 1e-9 {
		t.Fatalf("SolveRightRidge differs from M·D⁻¹ by %v", MaxAbsDiff(got, want))
	}
}

func TestSolveRightRidgeSingularFallback(t *testing.T) {
	// Rank-1 Gram: plain Cholesky fails, the ridge fallback must still
	// return finite values.
	ones := NewFrom(3, 2, []float64{1, 1, 1, 1, 1, 1})
	d := Gram(ones)
	m := NewFrom(2, 2, []float64{1, 2, 3, 4})
	got := SolveRightRidge(m, d)
	for _, v := range got.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite entry %v", v)
		}
	}
}

func TestInverseKnown(t *testing.T) {
	a := NewFrom(2, 2, []float64{4, 7, 2, 6})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewFrom(2, 2, []float64{0.6, -0.7, -0.2, 0.4})
	if MaxAbsDiff(inv, want) > 1e-12 {
		t.Fatalf("Inverse wrong: %v", inv.Data)
	}
}

func TestInverseSingular(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := Inverse(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestInversePropertyAAInvIsIdentity(t *testing.T) {
	src := xrand.New(10)
	if err := quick.Check(func(seed uint32) bool {
		s := xrand.New(uint64(seed) | 1)
		n := 1 + s.Intn(6)
		a := RandomGaussian(n, n, src)
		inv, err := Inverse(a)
		if err != nil {
			return true // singular random matrix: vanishingly rare, skip
		}
		return MaxAbsDiff(Mul(a, inv), Eye(n)) < 1e-8
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched inner dims did not panic")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

func BenchmarkGram(b *testing.B) {
	a := RandomGaussian(10000, 10, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Gram(a)
	}
}

func BenchmarkSolveRightRidge(b *testing.B) {
	src := xrand.New(2)
	d := Gram(RandomGaussian(100, 10, src))
	m := RandomGaussian(10000, 10, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SolveRightRidge(m, d)
	}
}
