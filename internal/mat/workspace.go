package mat

import "fmt"

// Workspace is a sized scratch-buffer arena with checkout/reset
// semantics, built so steady-state hot loops perform zero heap
// allocations: ALS sweeps, streaming steps and distributed iterations
// execute the same sequence of scratch checkouts every pass, so after a
// warm-up pass every Take is served from a cached slab.
//
// Checkout is positional: the i-th Take since the last Reset reuses the
// i-th slab, growing it (one allocation) only when the requested size
// exceeds the slab's running-maximum capacity. Mark/Release give nested
// scopes — a kernel may Mark, take its temporaries, and Release them
// without disturbing the caller's earlier checkouts.
//
// Rules:
//
//   - A matrix or vector returned by Take/TakeVec is valid until the
//     position is released (Release below its mark, or Reset). Using it
//     after that reads memory re-checked-out by someone else.
//   - Take zeroes the returned buffer, so a workspace matrix behaves
//     exactly like a fresh New(r, c).
//   - A Workspace is not safe for concurrent use; the intended pattern
//     is one workspace per goroutine (per worker, per iteration state).
type Workspace struct {
	slabs [][]float64
	hdrs  []*Dense
	n     int // checked-out positions
}

// NewWorkspace returns an empty workspace. Slabs are grown on demand by
// Take, so no sizing is needed up front.
func NewWorkspace() *Workspace { return &Workspace{} }

// Take checks out a zeroed r x c matrix backed by workspace memory.
// The returned header is owned by the workspace and reused across
// Reset cycles; do not retain it past Release/Reset.
func (w *Workspace) Take(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: Workspace.Take(%d, %d) with negative dimension", r, c))
	}
	need := r * c
	if w.n == len(w.slabs) {
		w.slabs = append(w.slabs, make([]float64, need))
		w.hdrs = append(w.hdrs, &Dense{})
	} else if cap(w.slabs[w.n]) < need {
		w.slabs[w.n] = make([]float64, need)
	}
	buf := w.slabs[w.n][:need]
	for i := range buf {
		buf[i] = 0
	}
	h := w.hdrs[w.n]
	h.Rows, h.Cols, h.Data = r, c, buf
	w.n++
	return h
}

// TakeVec checks out a zeroed length-n scratch vector.
func (w *Workspace) TakeVec(n int) []float64 { return w.Take(1, n).Data }

// Mark returns the current checkout position, to be passed to Release.
func (w *Workspace) Mark() int { return w.n }

// Release returns every checkout made since the matching Mark to the
// arena. It panics on a mark that is out of range (double release, or a
// mark from a different reset cycle).
func (w *Workspace) Release(mark int) {
	if mark < 0 || mark > w.n {
		panic(fmt.Sprintf("mat: Workspace.Release(%d) with %d positions checked out", mark, w.n))
	}
	w.n = mark
}

// Reset returns every checkout to the arena, keeping the slabs cached.
func (w *Workspace) Reset() { w.n = 0 }

// InUse reports the number of positions currently checked out.
func (w *Workspace) InUse() int { return w.n }

// Floats reports the total float64 capacity cached across all slabs —
// the arena's steady-state memory footprint, exposed for tests and
// diagnostics.
func (w *Workspace) Floats() int {
	total := 0
	for _, s := range w.slabs {
		total += cap(s)
	}
	return total
}
