package mat

import (
	"math"
	"testing"

	"dismastd/internal/par"
	"dismastd/internal/xrand"
)

func randomDense(r, c int, seed uint64) *Dense {
	src := xrand.New(seed)
	m := RandomUniform(r, c, src)
	// Sprinkle exact zeros so the av==0 skip paths run.
	for i := 0; i < len(m.Data); i += 7 {
		m.Data[i] = 0
	}
	return m
}

func sameBits(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range got.Data {
		if math.Float64bits(v) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %x, want %x", name, i, v, want.Data[i])
		}
	}
}

// TestParKernelsBitwiseAcrossThreads pins the deterministic-reduction
// rule: every pooled kernel must reproduce the sequential kernel's
// bits exactly, at every thread count, because each partitions output
// rows without changing any accumulation order.
func TestParKernelsBitwiseAcrossThreads(t *testing.T) {
	a := randomDense(37, 5, 1)
	b := randomDense(37, 5, 2)
	m := randomDense(41, 5, 3)
	sq := randomDense(5, 5, 4)
	d := Gram(randomDense(9, 5, 5)) // SPD-ish denominator

	ws := NewWorkspace()
	wantGram := CrossGram(a, b)
	wantMul := New(m.Rows, sq.Cols)
	MulInto(wantMul, m, sq)
	wantSolve := New(m.Rows, m.Cols)
	SolveRightRidgeInto(wantSolve, m, d, ws)

	for _, threads := range []int{1, 2, 3, 8} {
		pool := par.New(threads)
		wss := NewWorkspaceSet(pool.Threads())
		pk := NewParKernels(pool, wss)

		gotGram := New(a.Cols, b.Cols)
		pk.CrossGramInto(gotGram, a, b)
		sameBits(t, "CrossGramInto", gotGram, wantGram)

		gotMul := New(m.Rows, sq.Cols)
		pk.MulInto(gotMul, m, sq)
		sameBits(t, "MulInto", gotMul, wantMul)

		gotSolve := New(m.Rows, m.Cols)
		pk.SolveRightRidgeInto(gotSolve, m, d)
		sameBits(t, "SolveRightRidgeInto", gotSolve, wantSolve)

		// In-place solve aliasing (dst == m) must match too.
		alias := New(m.Rows, m.Cols)
		alias.CopyFrom(m)
		pk.SolveRightRidgeInto(alias, alias, d)
		sameBits(t, "SolveRightRidgeInto aliased", alias, wantSolve)

		pool.Close()
	}
}

// TestSolveRightFactoredRangeMatchesFull checks that solving disjoint
// row ranges against one shared factor reassembles the full solve
// bit-for-bit.
func TestSolveRightFactoredRangeMatchesFull(t *testing.T) {
	m := randomDense(23, 4, 7)
	d := Gram(randomDense(11, 4, 8))
	ws := NewWorkspace()
	want := New(m.Rows, m.Cols)
	SolveRightRidgeInto(want, m, d, ws)

	l := New(d.Rows, d.Rows)
	RidgeCholeskyInto(l, d, ws)
	got := New(m.Rows, m.Cols)
	for _, cut := range [][2]int{{0, 5}, {5, 6}, {6, 23}} {
		SolveRightFactoredRange(got, m, l, cut[0], cut[1], ws)
	}
	sameBits(t, "ranged solve", got, want)
}

// TestParKernelsSteadyStateAllocFree pins the one-workspace-per-thread
// contract: once every thread's arena is warm, the pooled sweep
// kernels allocate nothing.
func TestParKernelsSteadyStateAllocFree(t *testing.T) {
	pool := par.New(4)
	defer pool.Close()
	wss := NewWorkspaceSet(pool.Threads())
	pk := NewParKernels(pool, wss)

	a := randomDense(64, 6, 11)
	d := Gram(randomDense(10, 6, 12))
	gram := New(6, 6)
	sol := New(64, 6)
	pass := func() {
		pk.GramInto(gram, a)
		pk.SolveRightRidgeInto(sol, a, d)
	}
	pass()
	if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
		t.Fatalf("steady-state ParKernels sweep allocates %v times, want 0", allocs)
	}
}
