// Package xrand provides a small deterministic pseudo-random number
// generator used throughout the repository so that every test, example,
// and experiment is reproducible across runs and machines.
//
// The core generator is splitmix64 (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators"), which passes BigCrush, needs only a
// 64-bit state word, and is trivially seedable. On top of it the package
// offers the handful of distributions the tensor workloads need: uniform
// floats and ints, Gaussians, permutations, and a bounded Zipf sampler
// for generating skewed tensor modes.
package xrand

import "math"

// Source is a deterministic splitmix64 generator. The zero value is a
// valid generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 random mantissa bits scaled into [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform. One of the two generated variates is discarded for
// simplicity; tensor initialisation is not throughput sensitive.
func (s *Source) NormFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new Source whose stream is independent from the
// receiver's, derived from the receiver's next output. It is used to
// give each worker or mode its own deterministic stream.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// mix64 is the splitmix64 finaliser — the avalanche function Uint64
// applies to its Weyl counter. It is a bijection on uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive returns the seed of a sub-stream identified by the given keys
// (step, mode, rank, ...). Each key is folded through the splitmix64
// finaliser, so structured nearby keys — (step, step+1), (mode 0, rank
// 1) vs (mode 1, rank 0) — land in unrelated generator states, unlike
// raw seed+key arithmetic where neighbouring streams start one Weyl
// increment apart and share most of their sequence. Folding is
// left-associative: Derive(s, a, b) == Derive(Derive(s, a), b), so a
// component holding a derived seed can derive further sub-streams.
// With no keys the seed is returned unchanged.
func Derive(seed uint64, keys ...uint64) uint64 {
	for _, k := range keys {
		seed = mix64(seed + 0x9e3779b97f4a7c15 + mix64(k))
	}
	return seed
}

// Sub returns a Source seeded for the sub-stream Derive(seed, keys...).
func Sub(seed uint64, keys ...uint64) *Source {
	return New(Derive(seed, keys...))
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^alpha. It precomputes the cumulative distribution so
// sampling is a binary search; n is expected to be modest (tensor mode
// sizes in the generators, at most a few million).
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent alpha > 0.
func NewZipf(src *Source, alpha float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if alpha <= 0 {
		panic("xrand: NewZipf with non-positive alpha")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	return &Zipf{src: src, cdf: cdf}
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns the next Zipf-distributed rank in [0, N()).
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
