package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(13)
	child := parent.Split()
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("split stream mirrors parent")
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(New(17), 1.1, 100)
	for i := 0; i < 10000; i++ {
		r := z.Draw()
		if r < 0 || r >= 100 {
			t.Fatalf("Zipf rank out of range: %d", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With alpha=1.2 over 1000 ranks, rank 0 must be drawn far more
	// often than rank 500.
	z := NewZipf(New(19), 1.2, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] < 20*counts[500]+1 {
		t.Fatalf("expected heavy skew, got counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Fatalf("counts not monotone-ish: %d %d %d", counts[0], counts[1], counts[10])
	}
}

func TestZipfUniformLimit(t *testing.T) {
	// Tiny alpha approaches uniform: head rank should not dominate.
	z := NewZipf(New(23), 0.01, 10)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] > 2*counts[9] {
		t.Fatalf("alpha→0 should be near-uniform, got head=%d tail=%d", counts[0], counts[9])
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(New(1), 1, 0) },
		func() { NewZipf(New(1), 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(New(1), 1.1, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}
