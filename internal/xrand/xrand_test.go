package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(13)
	child := parent.Split()
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("split stream mirrors parent")
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(New(17), 1.1, 100)
	for i := 0; i < 10000; i++ {
		r := z.Draw()
		if r < 0 || r >= 100 {
			t.Fatalf("Zipf rank out of range: %d", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With alpha=1.2 over 1000 ranks, rank 0 must be drawn far more
	// often than rank 500.
	z := NewZipf(New(19), 1.2, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] < 20*counts[500]+1 {
		t.Fatalf("expected heavy skew, got counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Fatalf("counts not monotone-ish: %d %d %d", counts[0], counts[1], counts[10])
	}
}

func TestZipfUniformLimit(t *testing.T) {
	// Tiny alpha approaches uniform: head rank should not dominate.
	z := NewZipf(New(23), 0.01, 10)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] > 2*counts[9] {
		t.Fatalf("alpha→0 should be near-uniform, got head=%d tail=%d", counts[0], counts[9])
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(New(1), 1, 0) },
		func() { NewZipf(New(1), 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(New(1), 1.1, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Draw()
	}
}

func TestDeriveDeterministic(t *testing.T) {
	if Derive(7, 1, 2, 3) != Derive(7, 1, 2, 3) {
		t.Fatal("Derive is not a pure function")
	}
	a, b := Sub(7, 1, 2), Sub(7, 1, 2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Sub streams diverged at step %d", i)
		}
	}
}

func TestDeriveChains(t *testing.T) {
	if got, want := Derive(9, 4, 5), Derive(Derive(9, 4), 5); got != want {
		t.Fatalf("Derive(s,a,b)=%#x, Derive(Derive(s,a),b)=%#x", got, want)
	}
	if Derive(9) != 9 {
		t.Fatal("Derive with no keys should return the seed unchanged")
	}
}

// TestDeriveKeyOrderMatters: (step, mode, rank) tuples that differ in
// any position — including transposed values — must yield distinct
// sub-streams.
func TestDeriveKeyOrderMatters(t *testing.T) {
	seen := map[uint64][3]uint64{}
	for step := uint64(0); step < 8; step++ {
		for mode := uint64(0); mode < 8; mode++ {
			for rank := uint64(0); rank < 8; rank++ {
				d := Derive(42, step, mode, rank)
				if prev, dup := seen[d]; dup {
					t.Fatalf("collision: (%d,%d,%d) and %v both derive %#x", step, mode, rank, prev, d)
				}
				seen[d] = [3]uint64{step, mode, rank}
			}
		}
	}
}

// TestDeriveAdjacentStepsDecorrelated is the regression for the ad-hoc
// seed+step arithmetic Derive replaces: adjacent step keys must not
// produce overlapping splitmix streams (seed+1 trivially does — its
// stream is the seed's stream shifted by one output).
func TestDeriveAdjacentStepsDecorrelated(t *testing.T) {
	const n = 64
	outs := map[uint64]bool{}
	a := Sub(3, 10)
	for i := 0; i < n; i++ {
		outs[a.Uint64()] = true
	}
	b := Sub(3, 11)
	for i := 0; i < n; i++ {
		if outs[b.Uint64()] {
			t.Fatalf("streams for adjacent step keys share output at position %d", i)
		}
	}
}

// TestDerivePinned pins concrete outputs so the derivation is stable
// across machines and future refactors: every persisted artifact seeded
// through Derive depends on these exact values.
func TestDerivePinned(t *testing.T) {
	cases := []struct {
		seed uint64
		keys []uint64
		want uint64
	}{
		{1, []uint64{0}, 0x910a2dec89025cc1},
		{1, []uint64{1}, 0x95041e213fd80dfa},
		{42, []uint64{3, 1, 2}, 0xc2d247eda7ee70cd},
	}
	for _, c := range cases {
		if got := Derive(c.seed, c.keys...); got != c.want {
			t.Fatalf("Derive(%d,%v)=%#x, want %#x", c.seed, c.keys, got, c.want)
		}
	}
}
