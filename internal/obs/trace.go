package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultTraceCapacity is the ring-buffer size a zero capacity asks
// for: enough for several paper-scale steps (7 phases x 3 modes x 10
// sweeps x a handful of snapshots) without unbounded growth.
const DefaultTraceCapacity = 4096

// SpanEvent is one completed span in the trace ring. Start is relative
// to the tracer's creation, so events from one process line up on a
// shared axis.
type SpanEvent struct {
	Name     string        `json:"name"`
	Rank     int           `json:"rank"`
	Epoch    int64         `json:"epoch"`
	Snapshot int           `json:"snapshot"`
	Iter     int           `json:"iter"`
	Start    time.Duration `json:"start_ns"`
	Dur      time.Duration `json:"dur_ns"`
}

// PhaseStat aggregates every completed span sharing one name.
type PhaseStat struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
}

// Mean returns the average span duration (zero when empty).
func (p PhaseStat) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// Tracer records spans into a fixed ring buffer and keeps running
// per-name aggregates. Recording takes a short mutex and never
// allocates: the ring slots are value structs overwritten in place, and
// the aggregate map only grows on the first occurrence of a name —
// which is why hot paths precompute their span names (e.g. the
// "mode2/mttkrp" strings) instead of formatting them per sweep.
type Tracer struct {
	epoch time.Time

	mu     sync.Mutex
	ring   []SpanEvent
	total  uint64 // spans ever recorded; ring index = total % len(ring)
	phases map[string]*PhaseStat
	rank   int
	vepoch int64 // cluster view epoch (elastic membership)
	snap   int
	iter   int
}

// NewTracer returns a tracer with the given ring capacity (<= 0 means
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		epoch:  time.Now(),
		ring:   make([]SpanEvent, capacity),
		phases: make(map[string]*PhaseStat),
	}
}

// SetRank stamps subsequent spans with the worker's rank.
func (t *Tracer) SetRank(rank int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rank = rank
	t.mu.Unlock()
}

// SetEpoch stamps subsequent spans with the cluster view epoch, so
// timelines recorded before and after an elastic membership transition
// (or an imbalance-triggered rebalance) are distinguishable in the
// exported JSONL.
func (t *Tracer) SetEpoch(epoch int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.vepoch = epoch
	t.mu.Unlock()
}

// SetSnapshot stamps subsequent spans with the streaming-step index.
func (t *Tracer) SetSnapshot(snap int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.snap = snap
	t.mu.Unlock()
}

// SetIter stamps subsequent spans with the ALS sweep index.
func (t *Tracer) SetIter(iter int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.iter = iter
	t.mu.Unlock()
}

// Span is an open span; End records it. The zero Span (from a nil
// tracer) is a no-op.
type Span struct {
	t     *Tracer
	name  string
	begin time.Time
}

// Start opens a span under the given name. Nil-safe.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, begin: time.Now()}
}

// End records the span's duration into the ring and the per-phase
// aggregates. No-op on the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := time.Now()
	t := s.t
	t.mu.Lock()
	ev := &t.ring[t.total%uint64(len(t.ring))]
	ev.Name = s.name
	ev.Rank = t.rank
	ev.Epoch = t.vepoch
	ev.Snapshot = t.snap
	ev.Iter = t.iter
	ev.Start = s.begin.Sub(t.epoch)
	ev.Dur = end.Sub(s.begin)
	t.total++
	ps := t.phases[s.name]
	if ps == nil {
		ps = &PhaseStat{Name: s.name}
		t.phases[s.name] = ps
	}
	ps.Count++
	ps.Total += ev.Dur
	t.mu.Unlock()
}

// Count returns how many spans have ever been recorded (the ring keeps
// the most recent min(Count, capacity)).
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained spans oldest-first.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eventsLocked()
}

func (t *Tracer) eventsLocked() []SpanEvent {
	n := uint64(len(t.ring))
	if t.total <= n {
		return append([]SpanEvent(nil), t.ring[:t.total]...)
	}
	head := t.total % n
	out := make([]SpanEvent, 0, n)
	out = append(out, t.ring[head:]...)
	out = append(out, t.ring[:head]...)
	return out
}

// EventsSince returns retained spans recorded at or after sequence
// number seq (as returned by Count), oldest-first. Spans that have
// already been overwritten are silently absent.
func (t *Tracer) EventsSince(seq uint64) []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	evs := t.eventsLocked()
	retained := uint64(len(evs))
	oldest := t.total - retained // sequence number of evs[0]
	if seq <= oldest {
		return evs
	}
	if seq >= t.total {
		return nil
	}
	return evs[seq-oldest:]
}

// AppendEventsSince appends retained spans recorded at or after
// sequence number seq into dst and returns the extended slice plus the
// tracer's current sequence number (the seq to pass next time). Unlike
// EventsSince it reuses the caller's backing array, so a steady-state
// caller that hands back a slice of sufficient capacity allocates
// nothing — the fence-time gather path depends on this.
func (t *Tracer) AppendEventsSince(seq uint64, dst []SpanEvent) ([]SpanEvent, uint64) {
	if t == nil {
		return dst, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	retained := t.total
	if retained > n {
		retained = n
	}
	oldest := t.total - retained // sequence number of the oldest retained span
	if seq < oldest {
		seq = oldest
	}
	for ; seq < t.total; seq++ {
		dst = append(dst, t.ring[seq%n])
	}
	return dst, t.total
}

// AppendPhases appends a copy of every per-name aggregate into dst and
// returns the extended slice, in no particular order (the map's). The
// alloc-free sibling of Phases for steady-state callers that reuse
// their slice and don't need the sorted view.
func (t *Tracer) AppendPhases(dst []PhaseStat) []PhaseStat {
	if t == nil {
		return dst
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ps := range t.phases {
		dst = append(dst, *ps)
	}
	return dst
}

// Phases returns the per-name aggregates sorted by name.
func (t *Tracer) Phases() []PhaseStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]PhaseStat, 0, len(t.phases))
	for _, ps := range t.phases {
		out = append(out, *ps)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSONL writes the retained spans as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// PhaseOf extracts the phase component of a span name: the part after
// the last '/', so "mode2/mttkrp" and "mode0/mttkrp" both map to
// "mttkrp" while mode-less names ("loss") map to themselves.
func PhaseOf(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// AggregatePhases merges per-name stats by their PhaseOf component,
// summing counts and totals, sorted by phase name. Used for the
// per-phase breakdown tables, where "mode0/mttkrp".."mode2/mttkrp"
// should read as one MTTKRP row.
func AggregatePhases(stats []PhaseStat) []PhaseStat {
	merged := make(map[string]*PhaseStat)
	for _, ps := range stats {
		phase := PhaseOf(ps.Name)
		m := merged[phase]
		if m == nil {
			m = &PhaseStat{Name: phase}
			merged[phase] = m
		}
		m.Count += ps.Count
		m.Total += ps.Total
	}
	out := make([]PhaseStat, 0, len(merged))
	for _, ps := range merged {
		out = append(out, *ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SubPhases returns cur − base matched by name: phases whose counts
// grew keep the difference, unchanged phases are dropped. Both inputs
// are per-name stats as returned by Tracer.Phases.
func SubPhases(cur, base []PhaseStat) []PhaseStat {
	prev := make(map[string]PhaseStat, len(base))
	for _, ps := range base {
		prev[ps.Name] = ps
	}
	var out []PhaseStat
	for _, ps := range cur {
		b := prev[ps.Name]
		d := PhaseStat{Name: ps.Name, Count: ps.Count - b.Count, Total: ps.Total - b.Total}
		if d.Count > 0 {
			out = append(out, d)
		}
	}
	return out
}
