package obs

import (
	"strings"
	"testing"
)

// TestTracerEpochStamping is the regression test around an epoch
// transition: spans recorded before and after SetEpoch carry the old
// and new view epoch respectively, both in the ring and in the JSONL
// export that /debug/trace serves.
func TestTracerEpochStamping(t *testing.T) {
	tr := NewTracer(16)
	tr.Start("mode0/mttkrp").End()
	tr.SetEpoch(3)
	tr.Start("elastic/recover").End()
	tr.Start("mode0/mttkrp").End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events, want 3", len(evs))
	}
	if evs[0].Epoch != 0 || evs[1].Epoch != 3 || evs[2].Epoch != 3 {
		t.Fatalf("epochs = %d,%d,%d, want 0,3,3", evs[0].Epoch, evs[1].Epoch, evs[2].Epoch)
	}

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if !strings.Contains(lines[0], `"epoch":0`) || !strings.Contains(lines[2], `"epoch":3`) {
		t.Fatalf("JSONL lacks epoch stamps: %q", b.String())
	}
}

func TestAppendEventsSinceIncremental(t *testing.T) {
	tr := NewTracer(8)
	tr.Start("a").End()
	tr.Start("b").End()
	buf := make([]SpanEvent, 0, 8)
	buf, seq := tr.AppendEventsSince(0, buf)
	if len(buf) != 2 || seq != 2 {
		t.Fatalf("first append: %d events, seq %d, want 2, 2", len(buf), seq)
	}
	tr.Start("c").End()
	buf, seq = tr.AppendEventsSince(seq, buf[:0])
	if len(buf) != 1 || buf[0].Name != "c" || seq != 3 {
		t.Fatalf("second append: %+v seq %d, want just c at seq 3", buf, seq)
	}
	// Past-the-end seq returns nothing.
	if buf, _ = tr.AppendEventsSince(99, buf[:0]); len(buf) != 0 {
		t.Fatalf("future seq returned %d events", len(buf))
	}
}

func TestAppendEventsSinceAfterWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.SetIter(i)
		tr.Start("x").End()
	}
	buf, seq := tr.AppendEventsSince(0, nil)
	if len(buf) != 4 || seq != 10 {
		t.Fatalf("%d retained, seq %d, want 4, 10", len(buf), seq)
	}
	if buf[0].Iter != 6 || buf[3].Iter != 9 {
		t.Fatalf("retained window iters %d..%d, want 6..9", buf[0].Iter, buf[3].Iter)
	}
}

func TestAppendHelpersAllocFree(t *testing.T) {
	tr := NewTracer(64)
	names := [...]string{"mode0/mttkrp", "mode0/solve", "loss"}
	for _, n := range names {
		tr.Start(n).End()
	}
	evBuf := make([]SpanEvent, 0, 64)
	phBuf := make([]PhaseStat, 0, 8)
	var seq uint64
	pass := func() {
		for _, n := range names {
			tr.Start(n).End()
		}
		evBuf, seq = tr.AppendEventsSince(seq, evBuf[:0])
		phBuf = tr.AppendPhases(phBuf[:0])
	}
	pass()
	if allocs := testing.AllocsPerRun(50, pass); allocs != 0 {
		t.Errorf("append helpers allocate %v times, want 0", allocs)
	}
	if len(evBuf) != len(names) || len(phBuf) != len(names) {
		t.Fatalf("buffers = %d events, %d phases, want %d each", len(evBuf), len(phBuf), len(names))
	}
}
