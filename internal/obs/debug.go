package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns the debug mux for a live bundle, the backing for
// cmd/worker's -debug-addr listener:
//
//	/debug/pprof/...  net/http/pprof (profile, heap, goroutine, ...)
//	/debug/metrics    the registry snapshot as indented JSON
//	/debug/phases     per-phase timing aggregates as JSON
//	/debug/trace      the span ring as JSONL, oldest-first
//	/debug/vars       expvar (cmdline, memstats)
//
// The mux serves whatever the bundle has accumulated since creation —
// for a TCP worker that is the node's whole lifetime, across steps.
// Nothing here authenticates: bind loopback or firewall the port (see
// DESIGN.md, "Observability").
func Handler(o *Obs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.Reg.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/phases", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(o.Trace.Phases()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := o.Trace.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
