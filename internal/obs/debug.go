package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
)

// publishRuntimeVars adds the runtime figures expvar's built-in
// memstats export lacks (goroutine count) to /debug/vars. expvar's
// namespace is process-global and Publish panics on duplicates, so this
// runs once regardless of how many handlers are built.
var publishRuntimeVars = sync.OnceFunc(func() {
	expvar.Publish("goroutines", expvar.Func(func() any { return runtime.NumGoroutine() }))
})

// Handler returns the debug mux for a live bundle, the backing for
// cmd/worker's -debug-addr listener:
//
//	/metrics          the registry snapshot in Prometheus text format
//	/debug/pprof/...  net/http/pprof (profile, heap, goroutine, ...)
//	/debug/metrics    the registry snapshot as indented JSON
//	/debug/phases     per-phase timing aggregates as JSON
//	/debug/trace      the span ring as JSONL, oldest-first
//	/debug/vars       expvar (cmdline, memstats, goroutines)
//
// The mux serves whatever the bundle has accumulated since creation —
// for a TCP worker that is the node's whole lifetime, across steps.
// Nothing here authenticates: bind loopback or firewall the port (see
// DESIGN.md, "Observability").
func Handler(o *Obs) http.Handler {
	publishRuntimeVars()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := o.Reg.Snapshot().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := o.Reg.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/phases", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(o.Trace.Phases()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := o.Trace.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
