package obs

import "testing"

func TestRuntimeSamplerSetsGauges(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	s.Sample()
	snap := reg.Snapshot()
	if snap.Gauges["runtime.heap.bytes"] <= 0 {
		t.Fatalf("heap bytes gauge = %v, want > 0", snap.Gauges["runtime.heap.bytes"])
	}
	if snap.Gauges["runtime.goroutines"] < 1 {
		t.Fatalf("goroutines gauge = %v, want >= 1", snap.Gauges["runtime.goroutines"])
	}
}

func TestRuntimeSamplerNilSafe(t *testing.T) {
	var s *RuntimeSampler
	s.Sample() // must not panic
	if NewRuntimeSampler(nil) != nil {
		t.Fatal("NewRuntimeSampler(nil) should return nil")
	}
}

// TestRuntimeSamplerAllocFree: fence-time sampling must not feed the
// very allocator pressure it reports.
func TestRuntimeSamplerAllocFree(t *testing.T) {
	s := NewRuntimeSampler(NewRegistry())
	s.Sample()
	if allocs := testing.AllocsPerRun(10, s.Sample); allocs != 0 {
		t.Errorf("Sample allocates %v times, want 0", allocs)
	}
}
