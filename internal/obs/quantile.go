package obs

import "time"

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the snapshot's
// observations by linear interpolation within the bucket that contains
// the target rank — the same estimator Prometheus's histogram_quantile
// uses. The first bucket interpolates from zero (observations here are
// durations and byte counts, never negative). Ranks landing in the
// overflow bucket clamp to the highest finite bound, since the bucket
// is unbounded above. Returns 0 on an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	if len(s.Uppers) == 0 {
		// Only the overflow bucket exists: the mean is the best estimate.
		return s.Sum / float64(total)
	}
	target := q * float64(total)
	var cum int64
	lower := 0.0
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) >= target && c > 0 {
			if i >= len(s.Uppers) {
				return s.Uppers[len(s.Uppers)-1]
			}
			upper := s.Uppers[i]
			return lower + (upper-lower)*(target-prev)/float64(c)
		}
		if i < len(s.Uppers) {
			lower = s.Uppers[i]
		}
	}
	return s.Uppers[len(s.Uppers)-1]
}

// QuantileDurations returns the q-quantile of a sorted duration slice
// as the element at index ⌊q·n⌋ (clamped). q=0.5 reproduces the
// upper-median the bench reports have always published, so adding tail
// columns doesn't shift the existing p50 series. The input must be
// sorted ascending; the zero-length input yields 0.
func QuantileDurations(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(q * float64(n))
	if i < 0 {
		i = 0
	} else if i >= n {
		i = n - 1
	}
	return sorted[i]
}
