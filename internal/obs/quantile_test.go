package obs

import (
	"math"
	"testing"
	"time"
)

func TestHistogramQuantileInterpolates(t *testing.T) {
	h := newHistogram([]float64{10, 20, 40})
	// 10 observations uniform in (0,10], 10 in (10,20], none above.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	s := h.snapshot()
	// p50 rank = 10 of 20, the boundary of the first bucket.
	if got := s.Quantile(0.50); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p50 = %v, want 10", got)
	}
	// p75 rank = 15 of 20: halfway through the (10,20] bucket.
	if got := s.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Fatalf("p75 = %v, want 15", got)
	}
	if got := s.Quantile(1.0); math.Abs(got-20) > 1e-9 {
		t.Fatalf("p100 = %v, want 20 (upper bound of last occupied bucket)", got)
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	h := newHistogram([]float64{10})
	h.Observe(5)
	h.Observe(1e6) // overflow bucket
	s := h.snapshot()
	if got := s.Quantile(0.99); got != 10 {
		t.Fatalf("p99 with overflow mass = %v, want clamp to highest bound 10", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot quantile = %v, want 0", got)
	}
}

func TestQuantileDurationsMatchesLegacyMedian(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6}
	// The bench tables have always reported sorted[len/2]; p50 must not move.
	if got, want := QuantileDurations(ds, 0.5), ds[len(ds)/2]; got != want {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	if got := QuantileDurations(ds, 0.99); got != 6 {
		t.Fatalf("p99 = %v, want 6", got)
	}
	if got := QuantileDurations(nil, 0.5); got != 0 {
		t.Fatalf("empty p50 = %v, want 0", got)
	}
}
