package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestDebugHandlerEndpoints(t *testing.T) {
	o := New()
	o.Counter("transport.reconnects").Add(3)
	o.Trace.SetRank(1)
	o.Span("mode0/mttkrp").End()
	o.Span("loss").End()

	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	if body, ct := get(t, srv, "/debug/metrics"); !strings.Contains(body, `"transport.reconnects": 3`) || ct != "application/json" {
		t.Fatalf("/debug/metrics = %q (%s)", body, ct)
	}
	if body, _ := get(t, srv, "/debug/phases"); !strings.Contains(body, `"name": "loss"`) {
		t.Fatalf("/debug/phases = %q", body)
	}
	body, ct := get(t, srv, "/debug/trace")
	if ct != "application/x-ndjson" {
		t.Fatalf("/debug/trace content type %s", ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "mode0/mttkrp") {
		t.Fatalf("/debug/trace = %q", body)
	}
	if body, _ := get(t, srv, "/debug/vars"); !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %q", body)
	}
	// pprof index and a cheap profile endpoint; the CPU profile itself
	// is exercised against a live worker in cmd/worker's tests.
	if body, _ := get(t, srv, "/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %q", body)
	}
	if body, _ := get(t, srv, "/debug/pprof/heap?debug=1"); !strings.Contains(body, "heap profile") {
		t.Fatalf("/debug/pprof/heap = %q", body)
	}
}
