package obs

import (
	"context"
	"io"
	"log/slog"
)

// Structured logging helpers. The repo logs through *slog.Logger with
// rank/snapshot/iteration attributes attached once via With, replacing
// the old ad-hoc fmt.Fprintf lines in cmd/worker. Logging never sits on
// the per-sweep hot path — it happens at step and transport-event
// granularity — so handler allocation costs are irrelevant there.

// discardHandler drops every record. slog.DiscardHandler exists only
// from Go 1.24; this keeps the module buildable at its declared go 1.22.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var discardLogger = slog.New(discardHandler{})

// Discard returns a logger that drops everything — the default for
// library code until a binary installs a real one.
func Discard() *slog.Logger { return discardLogger }

// NewLogger returns a text logger writing records at or above level to
// w — the worker binary's stderr logger.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}
