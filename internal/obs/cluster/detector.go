package obscluster

import (
	"math"

	"dismastd/internal/partition"
)

// DetectorConfig tunes the fence-time imbalance detector.
type DetectorConfig struct {
	// Threshold is the coefficient-of-variation above which a rebalance
	// is suggested (default 0.3 — the same statistic
	// partition.ImbalanceStdDev reports for static plans).
	Threshold float64

	// Cooldown is the minimum number of fences between fires (default
	// 2). Suggestions keep streaming during the cooldown; only the fire
	// bit is suppressed.
	Cooldown int

	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.5).
	// Higher reacts faster, lower rides out one-step noise.
	Alpha float64

	// WeightSnap is the noise band for the derived rank weights: when
	// max/min cost stays within it, the weights snap to uniform and a
	// fired rebalance degrades to a plain re-partition (default 1.5).
	WeightSnap float64

	// WeightClamp bounds each weight to [1/WeightClamp, WeightClamp]
	// so one pathological measurement cannot starve a rank (default 4).
	WeightClamp float64

	// Arm allows the detector to fire. Disarmed (the default) it only
	// suggests: counters and gauges move, the elastic driver does not.
	Arm bool
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.WeightSnap < 1 {
		c.WeightSnap = 1.5
	}
	if c.WeightClamp < 1 {
		c.WeightClamp = 4
	}
	return c
}

// Detector turns the aggregator's fence table into rebalance decisions.
// It EWMAs two per-world-rank series — the planned nnz loads (exactly
// reproducible on every rank from the deterministic plan) and the
// measured compute-phase nanoseconds — and compares the larger of the
// two coefficients of variation against the threshold. Compute time is
// used instead of total step time because a straggler inflates every
// other rank's allreduce wait: totals converge exactly when the skew is
// worst. All state is guarded by the aggregator's mutex (evaluate and
// snapshot only run under it).
type Detector struct {
	cfg DetectorConfig

	seen   []bool    // per world rank: EWMA initialised
	loadEW []float64 // per world rank: EWMA of planned nnz load
	durEW  []float64 // per world rank: EWMA of compute ns

	// Scratch sized to the world so evaluate never allocates.
	loadVals []float64
	durVals  []float64
	weights  []float64

	fence        int64 // fences evaluated
	lastFire     int64 // fence index of the last fire, -1 before any
	lastFireStep int
	suggested    int64
	fired        int64
}

func newDetector(cfg DetectorConfig, worldSize int) *Detector {
	return &Detector{
		cfg:      cfg,
		seen:     make([]bool, worldSize),
		loadEW:   make([]float64, worldSize),
		durEW:    make([]float64, worldSize),
		loadVals: make([]float64, 0, worldSize),
		durVals:  make([]float64, 0, worldSize),
		weights:  make([]float64, 0, worldSize),
		lastFire: -1,
	}
}

// evaluate folds one fence into the EWMAs and decides. members is the
// view's world-rank list, loads the matching planned per-member nnz
// loads. Called with the aggregator locked; allocation-free.
func (d *Detector) evaluate(a *Aggregator, members []int, loads []float64, step int) Decision {
	alpha := d.cfg.Alpha
	d.fence++
	d.loadVals = d.loadVals[:0]
	d.durVals = d.durVals[:0]
	for i, world := range members {
		dur := float64(a.ranks[world].computeNs)
		if !d.seen[world] {
			d.seen[world] = true
			d.loadEW[world] = loads[i]
			d.durEW[world] = dur
		} else {
			d.loadEW[world] = alpha*loads[i] + (1-alpha)*d.loadEW[world]
			d.durEW[world] = alpha*dur + (1-alpha)*d.durEW[world]
		}
		d.loadVals = append(d.loadVals, d.loadEW[world])
		d.durVals = append(d.durVals, d.durEW[world])
	}

	dec := Decision{
		LoadCV: partition.ImbalanceCV(d.loadVals),
		DurCV:  partition.ImbalanceCV(d.durVals),
	}
	dec.CV = math.Max(dec.LoadCV, dec.DurCV)
	dec.Suggested = dec.CV > d.cfg.Threshold
	if dec.Suggested {
		d.suggested++
		if d.cfg.Arm && (d.lastFire < 0 || d.fence-d.lastFire > int64(d.cfg.Cooldown)) {
			dec.Fire = true
			d.fired++
			d.lastFire = d.fence
			d.lastFireStep = step
			dec.Weights = d.deriveWeights(members)
		}
	}
	return dec
}

// deriveWeights turns the EWMA series into partition.WeightedLPT cost
// weights: measured compute ns per planned nnz, normalised to mean 1,
// snapped to uniform inside the noise band, clamped. A rank with no
// usable signal (zero load or zero measured compute — e.g. an
// instrumentation-free run) gets weight 1. Returns detector scratch;
// callers must copy before the next evaluate.
func (d *Detector) deriveWeights(members []int) []float64 {
	w := d.weights[:0]
	sum, n := 0.0, 0
	for _, world := range members {
		c := 1.0
		if d.loadEW[world] > 0 && d.durEW[world] > 0 {
			c = d.durEW[world] / d.loadEW[world]
		}
		w = append(w, c)
		sum += c
		n++
	}
	mean := sum / float64(n)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range w {
		w[i] /= mean
		lo = math.Min(lo, w[i])
		hi = math.Max(hi, w[i])
	}
	if hi <= lo*d.cfg.WeightSnap {
		// Inside the noise band: a uniform-weight plan is a pure LPT
		// re-partition, which keeps the post-rebalance plan independent
		// of timing jitter.
		for i := range w {
			w[i] = 1
		}
	} else {
		clamp := d.cfg.WeightClamp
		for i := range w {
			w[i] = math.Min(clamp, math.Max(1/clamp, w[i]))
		}
	}
	d.weights = w
	return w
}

// snapshot exports the detector state plus the last decision's CVs.
// Called with the aggregator (at least read-)locked.
func (d *Detector) snapshot(last Decision) DetectorSnapshot {
	step := -1
	if d.lastFire >= 0 {
		step = d.lastFireStep
	}
	return DetectorSnapshot{
		Threshold:    d.cfg.Threshold,
		Cooldown:     d.cfg.Cooldown,
		Armed:        d.cfg.Arm,
		CV:           last.CV,
		LoadCV:       last.LoadCV,
		DurCV:        last.DurCV,
		Suggested:    d.suggested,
		Fired:        d.fired,
		LastFireStep: step,
	}
}
