package obscluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"dismastd/internal/obs"
)

// phaseAgg is one (rank, span-name) cell of the cluster table.
type phaseAgg struct {
	Name    string
	Count   int64
	TotalNs int64
	LastNs  int64   // the most recent fence's delta
	EWMANs  float64 // EWMA of the per-fence deltas
}

// rankAgg accumulates one world rank's fence records.
type rankAgg struct {
	seen      bool
	fences    int64
	lastEpoch int64
	lastStep  int

	heapBytes  float64
	gcPauseNs  float64
	goroutines float64

	phases map[string]*phaseAgg
	order  []*phaseAgg // creation order; snapshots sort by name

	// computeNs is the last fence's compute-phase (mttkrp + solve)
	// delta total — the duration signal the detector EWMAs. Comm-wait
	// phases are excluded on purpose: a straggler inflates everyone
	// else's allreduce/exchange wait, which would cancel the skew the
	// detector is looking for.
	computeNs int64
}

// Aggregator is the coordinator-side half of the fence: it absorbs
// per-rank records into the cluster table and the merged timeline.
// Guarded by a mutex so the HTTP handlers can read while a fence runs.
type Aggregator struct {
	mu    sync.RWMutex
	cfg   Config
	alpha float64

	names map[string]string // wire-name interning
	ranks []rankAgg         // indexed by world rank

	timeline []obs.SpanEvent // merged ring, overwritten in place
	tlTotal  uint64

	epoch  int64
	step   int
	fences int64
	last   Decision // weights cleared (alias-free copy of the scalars)
}

func newAggregator(cfg Config, worldSize int) *Aggregator {
	a := &Aggregator{
		cfg:      cfg,
		alpha:    cfg.Detector.Alpha,
		names:    make(map[string]string),
		ranks:    make([]rankAgg, worldSize),
		timeline: make([]obs.SpanEvent, cfg.TimelineCap),
	}
	for i := range a.ranks {
		a.ranks[i].phases = make(map[string]*phaseAgg)
	}
	return a
}

// intern canonicalises a wire name. The comma-ok map lookup keyed by
// string(b) does not allocate on the hit path, so the steady state
// (every phase/span name seen before) is allocation-free.
func (a *Aggregator) intern(b []byte) string {
	if s, ok := a.names[string(b)]; ok {
		return s
	}
	s := string(b)
	a.names[s] = s
	return s
}

func (a *Aggregator) beginRank(world int, epoch int64, step int, heap, gcPause, goroutines float64) (*rankAgg, error) {
	if world < 0 || world >= len(a.ranks) {
		return nil, fmt.Errorf("obscluster: fence record from world rank %d of %d", world, len(a.ranks))
	}
	ra := &a.ranks[world]
	ra.seen = true
	ra.fences++
	ra.lastEpoch = epoch
	ra.lastStep = step
	ra.heapBytes = heap
	ra.gcPauseNs = gcPause
	ra.goroutines = goroutines
	ra.computeNs = 0
	return ra, nil
}

func (a *Aggregator) addPhase(ra *rankAgg, name string, count, totalNs int64) {
	pa := ra.phases[name]
	if pa == nil {
		pa = &phaseAgg{Name: name}
		ra.phases[name] = pa
		ra.order = append(ra.order, pa)
	}
	pa.Count += count
	pa.TotalNs += totalNs
	pa.LastNs = totalNs
	if pa.EWMANs == 0 {
		pa.EWMANs = float64(totalNs)
	} else {
		pa.EWMANs = a.alpha*float64(totalNs) + (1-a.alpha)*pa.EWMANs
	}
	switch obs.PhaseOf(name) {
	case "mttkrp", "solve":
		ra.computeNs += totalNs
	}
}

func (a *Aggregator) addSpan(world int, name string, epoch int64, snapshot, iter int, start, dur time.Duration) {
	slot := &a.timeline[a.tlTotal%uint64(len(a.timeline))]
	slot.Name = name
	slot.Rank = world
	slot.Epoch = epoch
	slot.Snapshot = snapshot
	slot.Iter = iter
	slot.Start = start
	slot.Dur = dur
	a.tlTotal++
}

// absorb decodes one wire record into the table. Steady state (all
// names interned, ring warm) allocates nothing.
func (a *Aggregator) absorb(payload []byte) error {
	if len(payload) < recordHeaderSize {
		return fmt.Errorf("obscluster: fence record %d bytes, want >= %d", len(payload), recordHeaderSize)
	}
	le := binary.LittleEndian
	world := int(le.Uint32(payload[0:]))
	epoch := int64(le.Uint64(payload[4:]))
	step := int(le.Uint32(payload[12:]))
	heap := math.Float64frombits(le.Uint64(payload[16:]))
	gcPause := math.Float64frombits(le.Uint64(payload[24:]))
	goroutines := math.Float64frombits(le.Uint64(payload[32:]))
	nPhases := int(le.Uint32(payload[40:]))
	nSpans := int(le.Uint32(payload[44:]))

	a.mu.Lock()
	defer a.mu.Unlock()
	ra, err := a.beginRank(world, epoch, step, heap, gcPause, goroutines)
	if err != nil {
		return err
	}
	off := recordHeaderSize
	for i := 0; i < nPhases; i++ {
		if len(payload) < off+2 {
			return fmt.Errorf("obscluster: truncated phase header at %d", i)
		}
		l := int(le.Uint16(payload[off:]))
		off += 2
		if len(payload) < off+l+16 {
			return fmt.Errorf("obscluster: truncated phase entry at %d", i)
		}
		name := a.intern(payload[off : off+l])
		off += l
		count := int64(le.Uint64(payload[off:]))
		totalNs := int64(le.Uint64(payload[off+8:]))
		off += 16
		a.addPhase(ra, name, count, totalNs)
	}
	for i := 0; i < nSpans; i++ {
		if len(payload) < off+2 {
			return fmt.Errorf("obscluster: truncated span header at %d", i)
		}
		l := int(le.Uint16(payload[off:]))
		off += 2
		if len(payload) < off+l+30 {
			return fmt.Errorf("obscluster: truncated span entry at %d", i)
		}
		name := a.intern(payload[off : off+l])
		off += l
		spanEpoch := int64(le.Uint64(payload[off:]))
		snapshot := int(int32(le.Uint32(payload[off+8:])))
		iter := int(int32(le.Uint32(payload[off+12:])))
		start := time.Duration(le.Uint64(payload[off+16:]))
		dur := time.Duration(le.Uint64(payload[off+24:]))
		off += 32
		a.addSpan(world, name, spanEpoch, snapshot, iter, start, dur)
	}
	if off != len(payload) {
		return fmt.Errorf("obscluster: %d trailing bytes after fence record", len(payload)-off)
	}
	return nil
}

// absorbLocal feeds the coordinator's own scratch into the table
// without a wire round-trip — the root's record costs zero bytes, like
// GatherBytes' root contribution.
func (a *Aggregator) absorbLocal(world int, epoch int64, step int, r *reporter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ra, err := a.beginRank(world, epoch, step, r.heap.Value(), r.gcPause.Value(), r.goroutines.Value())
	if err != nil {
		// The coordinator's own world rank is validated at construction
		// time; reaching this means the plane was built with the wrong
		// world size.
		panic(err)
	}
	for _, ps := range r.deltas {
		a.addPhase(ra, a.intern([]byte(ps.Name)), ps.Count, int64(ps.Total))
	}
	for _, ev := range r.spans {
		a.addSpan(world, a.intern([]byte(ev.Name)), ev.Epoch, ev.Snapshot, ev.Iter, ev.Start, ev.Dur)
	}
}

// evaluate runs the detector over the freshly absorbed fence and stores
// the decision for the HTTP snapshot.
func (a *Aggregator) evaluate(det *Detector, members []int, loads []float64, epoch int64, step int) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.epoch = epoch
	a.step = step
	a.fences++
	dec := det.evaluate(a, members, loads, step)
	a.last = dec
	a.last.Weights = nil // the scratch alias must not leak to readers
	return dec
}

// PhaseAggSnapshot is one (rank, phase) cell of the exported table.
type PhaseAggSnapshot struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	LastNs  int64   `json:"last_ns"`
	EWMANs  float64 `json:"ewma_ns"`
}

// RankAggSnapshot is one rank's row of the exported table.
type RankAggSnapshot struct {
	World      int                `json:"world"`
	Fences     int64              `json:"fences"`
	Epoch      int64              `json:"epoch"`
	Step       int                `json:"step"`
	HeapBytes  float64            `json:"heap_bytes"`
	GCPauseNs  float64            `json:"gc_pause_ns"`
	Goroutines float64            `json:"goroutines"`
	ComputeNs  int64              `json:"compute_ns"`
	Phases     []PhaseAggSnapshot `json:"phases,omitempty"`
}

// DetectorSnapshot is the detector's exported state.
type DetectorSnapshot struct {
	Threshold    float64 `json:"threshold"`
	Cooldown     int     `json:"cooldown"`
	Armed        bool    `json:"armed"`
	CV           float64 `json:"cv"`
	LoadCV       float64 `json:"load_cv"`
	DurCV        float64 `json:"duration_cv"`
	Suggested    int64   `json:"suggested"`
	Fired        int64   `json:"fired"`
	LastFireStep int     `json:"last_fire_step"` // -1 before any fire
}

// Snapshot is the /debug/cluster document.
type Snapshot struct {
	Epoch         int64             `json:"epoch"`
	Step          int               `json:"step"`
	Fences        int64             `json:"fences"`
	TimelineSpans uint64            `json:"timeline_spans"`
	Detector      DetectorSnapshot  `json:"detector"`
	Ranks         []RankAggSnapshot `json:"ranks"`
}

// Snapshot copies the cluster table under the read lock. The copy is
// internally consistent — a concurrent fence either lands entirely
// before or entirely after it, never torn.
func (p *Plane) Snapshot() Snapshot {
	a := p.agg
	a.mu.RLock()
	defer a.mu.RUnlock()
	s := Snapshot{
		Epoch:         a.epoch,
		Step:          a.step,
		Fences:        a.fences,
		TimelineSpans: a.tlTotal,
		Detector:      p.det.snapshot(a.last),
	}
	for world := range a.ranks {
		ra := &a.ranks[world]
		if !ra.seen {
			continue
		}
		rs := RankAggSnapshot{
			World:      world,
			Fences:     ra.fences,
			Epoch:      ra.lastEpoch,
			Step:       ra.lastStep,
			HeapBytes:  ra.heapBytes,
			GCPauseNs:  ra.gcPauseNs,
			Goroutines: ra.goroutines,
			ComputeNs:  ra.computeNs,
		}
		for _, pa := range ra.order {
			rs.Phases = append(rs.Phases, PhaseAggSnapshot{
				Name:    pa.Name,
				Count:   pa.Count,
				TotalNs: pa.TotalNs,
				LastNs:  pa.LastNs,
				EWMANs:  pa.EWMANs,
			})
		}
		sort.Slice(rs.Phases, func(i, j int) bool { return rs.Phases[i].Name < rs.Phases[j].Name })
		s.Ranks = append(s.Ranks, rs)
	}
	return s
}

// WriteTimelineJSONL exports the merged cluster timeline — every rank's
// retained spans, world-rank stamped, ordered by span start — as one
// JSON object per line. Start times are relative to each process's
// tracer creation; on the in-process cluster they share one clock.
func (p *Plane) WriteTimelineJSONL(w io.Writer) error {
	a := p.agg
	a.mu.RLock()
	n := a.tlTotal
	ring := uint64(len(a.timeline))
	if n > ring {
		n = ring
	}
	events := make([]obs.SpanEvent, 0, n)
	start := a.tlTotal - n
	for seq := start; seq < a.tlTotal; seq++ {
		events = append(events, a.timeline[seq%ring])
	}
	a.mu.RUnlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
