package obscluster

import (
	"testing"
	"time"

	"dismastd/internal/cluster"
)

// TestFenceAllocFree pins the plane's steady-state allocation contract:
// once the scratch buffers, intern table, and buffer pool are warm, a
// full fence round — span collection, record encode, pooled gather,
// EWMA evaluation, decision broadcast and decode — performs zero heap
// allocations on every rank. Rank 0 measures with AllocsPerRun (which
// counts process-wide mallocs, so rank 1's fences are inside the
// measurement too); rank 1 runs the matching lockstep iterations.
func TestFenceAllocFree(t *testing.T) {
	const m, runs = 2, 100
	c := cluster.NewLocal(m)
	c.SetRecvTimeout(10 * time.Second)
	members := identityMembers(m)
	loads := []float64{60, 40}

	_, err := c.Run(func(w *cluster.Worker) error {
		p := NewPlane(Config{}, w.Obs(), w.Size())
		step := 0
		var ferr error
		pass := func() {
			span(w.Obs(), "mode0/mttkrp")
			if _, err := p.Fence(w, members, 0, step, loads); err != nil && ferr == nil {
				ferr = err
			}
			step++
		}
		for i := 0; i < 5; i++ { // warm pools, scratch, intern table
			pass()
		}
		if w.Rank() == 0 {
			// AllocsPerRun invokes pass 1 (warm-up) + runs times.
			if allocs := testing.AllocsPerRun(runs, pass); allocs != 0 {
				t.Errorf("steady-state fence allocates %v per round, want 0", allocs)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				pass()
			}
		}
		return ferr
	})
	if err != nil {
		t.Fatal(err)
	}
}
