// Package obscluster is the cluster-wide observability plane: the
// per-rank metrics and traces internal/obs records locally are gathered
// to the view coordinator at every step fence, merged into one cluster
// timeline and per-rank×phase table, and fed to an imbalance detector
// whose decision is broadcast back so all ranks act on identical
// information — the closed loop that lets the elastic driver
// re-partition a skewed stream without any membership change.
//
// The fence protocol mirrors the data-path collectives: each member
// encodes a FenceRecord (phase-delta table, runtime gauges, spans since
// the last fence) into a pooled transport buffer and sends it to view
// rank 0; the coordinator absorbs records in arrival order, runs the
// EWMA detector, and sends every member the Decision. All steady-state
// work — encoding, interned decoding, EWMA updates, the decision
// round-trip — performs zero heap allocations (alloc_test.go pins it),
// and the wire cost is exactly accountable from the record contents
// (plane_test.go checks sent == received == the formula, the same
// discipline dplan's migration path uses).
//
// Trace identity: every span already carries (rank, epoch, snapshot,
// iter) stamps from the obs tracer; the record header adds the world
// rank and fence step, so the merged timeline can distinguish
// post-transition spans from pre-transition ones.
package obscluster

import (
	"fmt"
	"time"

	"dismastd/internal/cluster"
	"dismastd/internal/obs"
)

// Defaults for Config's knobs.
const (
	DefaultSpanCap     = 1024 // spans shipped per rank per fence
	DefaultTimelineCap = 8192 // merged spans retained at the coordinator
)

// Config parameterises a Plane. The zero value is usable: detector
// defaults apply and the plane runs in suggest-only mode.
type Config struct {
	// Detector configures the imbalance detector the coordinator runs
	// at every fence.
	Detector DetectorConfig

	// SpanCap bounds the span events one rank ships per fence (default
	// DefaultSpanCap). When a fence window recorded more, the most
	// recent SpanCap are kept — the aggregates in the phase table are
	// never truncated, only the raw timeline.
	SpanCap int

	// TimelineCap bounds the merged span ring at the coordinator
	// (default DefaultTimelineCap).
	TimelineCap int
}

func (c Config) withDefaults() Config {
	if c.SpanCap <= 0 {
		c.SpanCap = DefaultSpanCap
	}
	if c.TimelineCap <= 0 {
		c.TimelineCap = DefaultTimelineCap
	}
	c.Detector = c.Detector.withDefaults()
	return c
}

// Plane is one rank's handle on the cluster observability plane. Every
// member constructs one (the aggregator and detector are only exercised
// on whichever rank is view rank 0, but membership can shift across
// epochs, so each rank keeps the full state ready). Not safe for
// concurrent Fence calls; Snapshot and WriteTimelineJSONL are safe to
// call from other goroutines (the HTTP handlers) while Fence runs.
type Plane struct {
	cfg Config
	o   *obs.Obs
	rep *reporter
	agg *Aggregator
	det *Detector

	fences     *obs.Counter
	suggested  *obs.Counter
	fired      *obs.Counter
	cvGauge    *obs.Gauge
	loadCV     *obs.Gauge
	durCV      *obs.Gauge
	gatherHist *obs.Histogram

	weights []float64 // non-root decision decode scratch
}

// fenceGatherBuckets spans 1µs to 1s in decades — fence aggregation is
// microseconds in-process and network-bound on TCP.
var fenceGatherBuckets = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// NewPlane builds a plane over one rank's obs bundle. worldSize is the
// fixed world (rank-slot count) the cluster was launched with; fence
// records are indexed by world rank so state survives view changes.
func NewPlane(cfg Config, o *obs.Obs, worldSize int) *Plane {
	cfg = cfg.withDefaults()
	p := &Plane{
		cfg:        cfg,
		o:          o,
		rep:        newReporter(o, cfg.SpanCap),
		agg:        newAggregator(cfg, worldSize),
		det:        newDetector(cfg.Detector, worldSize),
		fences:     o.Counter("plane.fences"),
		suggested:  o.Counter("elastic.rebalance.suggested"),
		fired:      o.Counter("elastic.rebalance.fired"),
		cvGauge:    o.Gauge("elastic.imbalance.cv"),
		loadCV:     o.Gauge("elastic.imbalance.load.cv"),
		durCV:      o.Gauge("elastic.imbalance.duration.cv"),
		gatherHist: o.Histogram("plane.fence.gather.ns", fenceGatherBuckets),
		weights:    make([]float64, 0, worldSize),
	}
	return p
}

// Aggregator exposes the coordinator-side state for the HTTP handlers.
func (p *Plane) Aggregator() *Aggregator { return p.agg }

// Fence runs one fence round of the plane. Every current member must
// call it in lockstep: members is the view's world-rank list (view-rank
// order, so members[w.Rank()] == w.WorldRank()), epoch the view epoch,
// step the stream step just completed, and loads the per-member planned
// nnz loads of that step (deterministically identical on every rank —
// dplan.Plan.RankLoads). The returned Decision is byte-identical on
// every member. Its Weights slice aliases plane scratch overwritten by
// the next Fence; callers acting on it must copy.
func (p *Plane) Fence(w *cluster.Worker, members []int, epoch int64, step int, loads []float64) (Decision, error) {
	sp := p.o.Span("plane/fence")
	defer sp.End()
	p.fences.Inc()
	if len(members) != w.Size() || len(loads) != w.Size() {
		return Decision{}, fmt.Errorf("obscluster: fence with %d members, %d loads for %d ranks",
			len(members), len(loads), w.Size())
	}
	tag := w.StreamTag("obsfence")
	dtag := w.StreamTag("obsfence/dec")
	p.rep.collect(p.o.Trace)

	if w.Rank() != 0 {
		buf := w.GetBuf(p.rep.encodedSize())
		p.rep.encodeInto(buf, w.WorldRank(), epoch, step)
		if err := w.SendPooled(0, tag, buf); err != nil {
			return Decision{}, err
		}
		payload, err := w.Recv(0, dtag)
		if err != nil {
			return Decision{}, err
		}
		dec, derr := decodeDecision(payload, &p.weights)
		w.PutBuf(payload)
		if derr != nil {
			return Decision{}, derr
		}
		p.noteDecision(dec)
		return dec, nil
	}

	// Coordinator: absorb own record without touching the wire, drain
	// the peers in arrival order, evaluate, broadcast the decision.
	start := time.Now()
	p.agg.absorbLocal(w.WorldRank(), epoch, step, p.rep)
	pending := p.rep.pending[:0]
	for r := 1; r < w.Size(); r++ {
		pending = append(pending, r)
	}
	p.rep.pending = pending
	for len(pending) > 0 {
		i, payload, err := w.RecvAny(tag, pending)
		if err != nil {
			return Decision{}, err
		}
		pending[i] = pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		aerr := p.agg.absorb(payload)
		w.PutBuf(payload)
		if aerr != nil {
			return Decision{}, aerr
		}
	}
	p.rep.pending = pending
	dec := p.agg.evaluate(p.det, members, loads, epoch, step)
	p.gatherHist.Observe(float64(time.Since(start).Nanoseconds()))
	for r := 1; r < w.Size(); r++ {
		buf := w.GetBuf(decisionSize(len(dec.Weights)))
		encodeDecision(buf, dec)
		if err := w.SendPooled(r, dtag, buf); err != nil {
			return Decision{}, err
		}
	}
	p.noteDecision(dec)
	return dec, nil
}

// noteDecision publishes the decision into this rank's registry —
// every member carries the same gauges and counters, so any worker's
// /metrics shows the cluster's imbalance state.
func (p *Plane) noteDecision(dec Decision) {
	p.cvGauge.Set(dec.CV)
	p.loadCV.Set(dec.LoadCV)
	p.durCV.Set(dec.DurCV)
	if dec.Suggested {
		p.suggested.Inc()
		p.o.Span("elastic/rebalance.suggested").End()
	}
	if dec.Fire {
		p.fired.Inc()
	}
}
