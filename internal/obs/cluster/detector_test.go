package obscluster

import (
	"math"
	"testing"
)

// harness builds an aggregator/detector pair and lets tests feed
// per-rank compute measurements directly, bypassing the wire.
type detHarness struct {
	a   *Aggregator
	d   *Detector
	mem []int
}

func newDetHarness(cfg DetectorConfig, m int) *detHarness {
	full := Config{Detector: cfg}.withDefaults()
	return &detHarness{
		a:   newAggregator(full, m),
		d:   newDetector(full.Detector, m),
		mem: identityMembers(m),
	}
}

func (h *detHarness) fence(step int, loads, computeNs []float64) Decision {
	for i, world := range h.mem {
		h.a.ranks[world].computeNs = int64(computeNs[i])
	}
	return h.d.evaluate(h.a, h.mem, loads, step)
}

func TestDetectorUniformIsQuiet(t *testing.T) {
	h := newDetHarness(DetectorConfig{Arm: true}, 3)
	for step := 0; step < 5; step++ {
		dec := h.fence(step, []float64{100, 100, 100}, []float64{1e6, 1e6, 1e6})
		if dec.Suggested || dec.Fire || dec.CV != 0 {
			t.Fatalf("step %d: uniform cluster produced %+v", step, dec)
		}
	}
}

func TestDetectorSuggestsWithoutArming(t *testing.T) {
	h := newDetHarness(DetectorConfig{Threshold: 0.3}, 3)
	dec := h.fence(0, []float64{300, 100, 50}, []float64{1e6, 1e6, 1e6})
	if !dec.Suggested {
		t.Fatalf("skewed loads (CV %v) not suggested", dec.LoadCV)
	}
	if dec.Fire {
		t.Fatal("disarmed detector fired")
	}
	if dec.CV != dec.LoadCV || dec.DurCV != 0 {
		t.Fatalf("CV=%v LoadCV=%v DurCV=%v — want CV from the load series", dec.CV, dec.LoadCV, dec.DurCV)
	}
}

func TestDetectorCooldown(t *testing.T) {
	h := newDetHarness(DetectorConfig{Threshold: 0.3, Cooldown: 3, Arm: true}, 3)
	loads := []float64{300, 100, 50}
	durs := []float64{1e6, 1e6, 1e6}
	fires := []int{}
	for step := 0; step < 10; step++ {
		dec := h.fence(step, loads, durs)
		if !dec.Suggested {
			t.Fatalf("step %d: persistent skew not suggested", step)
		}
		if dec.Fire {
			fires = append(fires, step)
		}
	}
	// Fires at the first crossing, then every Cooldown+1 fences.
	want := []int{0, 4, 8}
	if len(fires) != len(want) {
		t.Fatalf("fired at steps %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fired at steps %v, want %v", fires, want)
		}
	}
	snap := h.d.snapshot(Decision{})
	if snap.Suggested != 10 || snap.Fired != 3 || snap.LastFireStep != 8 {
		t.Fatalf("snapshot %+v, want suggested=10 fired=3 lastFire=8", snap)
	}
}

func TestDetectorWeightsSnapToUniform(t *testing.T) {
	h := newDetHarness(DetectorConfig{Threshold: 0.3, Arm: true}, 3)
	// Compute time tracks planned load exactly: per-nnz cost is uniform,
	// so the skew is a partitioning problem, not a heterogeneity problem
	// — weights snap to 1 and the fired rebalance is a pure LPT re-plan.
	dec := h.fence(0, []float64{300, 100, 50}, []float64{300e3, 100e3, 50e3})
	if !dec.Fire {
		t.Fatalf("no fire: %+v", dec)
	}
	for i, w := range dec.Weights {
		if w != 1 {
			t.Fatalf("weight[%d] = %v, want snap to uniform (all %v)", i, w, dec.Weights)
		}
	}
}

func TestDetectorWeightsClamped(t *testing.T) {
	h := newDetHarness(DetectorConfig{Threshold: 0.3, WeightClamp: 4, Arm: true}, 3)
	// Rank 2 is 100× slower per nnz: raw normalised weights would be
	// ~[0.03, 0.03, 2.9]; the floor clamps the fast ranks to 1/4.
	dec := h.fence(0, []float64{100, 100, 100}, []float64{1e4, 1e4, 1e6})
	if !dec.Fire {
		t.Fatalf("no fire: %+v", dec)
	}
	w := dec.Weights
	if w[0] != 0.25 || w[1] != 0.25 {
		t.Fatalf("fast-rank weights %v, want clamped to 0.25", w)
	}
	if w[2] <= 1 || w[2] > 4 {
		t.Fatalf("slow-rank weight %v, want in (1, 4]", w[2])
	}
}

func TestDetectorEWMASmoothing(t *testing.T) {
	h := newDetHarness(DetectorConfig{Threshold: 0.3, Alpha: 0.25, Arm: true}, 2)
	// Steady uniform fences, then one transient duration spike: with
	// alpha 0.25 a single spike moves the EWMA a quarter of the way, so
	// the CV stays under threshold and nothing fires.
	for step := 0; step < 4; step++ {
		h.fence(step, []float64{100, 100}, []float64{1e6, 1e6})
	}
	dec := h.fence(4, []float64{100, 100}, []float64{1e6, 2.2e6})
	if dec.Fire || dec.Suggested {
		t.Fatalf("one-fence spike fired: %+v", dec)
	}
	if dec.DurCV == 0 {
		t.Fatal("spike left no trace in the EWMA")
	}
	// The same skew sustained converges the EWMA onto it and fires.
	var last Decision
	for step := 5; step < 20 && !last.Fire; step++ {
		last = h.fence(step, []float64{100, 100}, []float64{1e6, 2.2e6})
	}
	if !last.Fire {
		t.Fatalf("sustained skew never fired: %+v", last)
	}
}

func TestDetectorZeroSignalWeight(t *testing.T) {
	h := newDetHarness(DetectorConfig{Threshold: 0.3, Arm: true}, 3)
	// No measured compute at all (e.g. spans disabled): load skew still
	// fires, and with no duration signal every weight defaults to 1.
	dec := h.fence(0, []float64{300, 100, 50}, []float64{0, 0, 0})
	if !dec.Fire {
		t.Fatalf("no fire on load skew alone: %+v", dec)
	}
	for i, w := range dec.Weights {
		if w != 1 {
			t.Fatalf("weight[%d] = %v with zero duration signal, want 1", i, w)
		}
	}
}

func TestDetectorEvaluateAllocFree(t *testing.T) {
	h := newDetHarness(DetectorConfig{Threshold: 0.3, Cooldown: 2, Arm: true}, 4)
	loads := []float64{400, 100, 80, 60}
	durs := []float64{4e6, 1e6, 0.8e6, 0.6e6}
	step := 0
	pass := func() {
		h.fence(step, loads, durs)
		step++
	}
	pass()
	if allocs := testing.AllocsPerRun(100, pass); allocs != 0 {
		t.Fatalf("detector evaluate allocates %v per fence (including fires), want 0", allocs)
	}
}

func TestDetectorConfigDefaults(t *testing.T) {
	c := DetectorConfig{}.withDefaults()
	if c.Threshold != 0.3 || c.Cooldown != 2 || c.Alpha != 0.5 || c.WeightSnap != 1.5 || c.WeightClamp != 4 || c.Arm {
		t.Fatalf("zero-value defaults = %+v", c)
	}
	keep := DetectorConfig{Threshold: 0.1, Cooldown: 9, Alpha: 1, WeightSnap: 2, WeightClamp: 8, Arm: true}
	if got := keep.withDefaults(); got != keep {
		t.Fatalf("explicit config rewritten: %+v", got)
	}
	if bad := (DetectorConfig{Alpha: 1.5}).withDefaults(); bad.Alpha != 0.5 {
		t.Fatalf("alpha > 1 kept: %v", bad.Alpha)
	}
	if math.IsNaN(keep.Threshold) {
		t.Fatal("unreachable")
	}
}
