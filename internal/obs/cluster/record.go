package obscluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"dismastd/internal/obs"
)

// Fence wire format (little-endian). One FenceRecord per member per
// fence:
//
//	header   u32 world · i64 epoch · u32 step · f64 heapBytes ·
//	         f64 gcPauseNs · f64 goroutines · u32 nPhases · u32 nSpans
//	phase    u16 nameLen · name · i64 count · i64 totalNs      (deltas)
//	span     u16 nameLen · name · i64 epoch · i32 snapshot ·
//	         i32 iter · i64 startNs · i64 durNs
//
// The decision reply is a fixed header plus the per-member weights:
//
//	u8 flags (bit0 suggested · bit1 fire) · f64 cv · f64 loadCV ·
//	f64 durCV · u32 nWeights · nWeights × f64
//
// Every size is exactly computable from the contents, which is what the
// byte-accounting test asserts against the transport counters.
const (
	recordHeaderSize  = 4 + 8 + 4 + 8*3 + 4 + 4
	phaseEntryFixed   = 2 + 8 + 8
	spanEntryFixed    = 2 + 8 + 4 + 4 + 8 + 8
	decisionFixedSize = 1 + 8*3 + 4
)

// phaseWireSize returns one phase delta's encoded size.
func phaseWireSize(name string) int { return phaseEntryFixed + len(name) }

// spanWireSize returns one span event's encoded size.
func spanWireSize(name string) int { return spanEntryFixed + len(name) }

// decisionSize returns the decision payload size for n weights.
func decisionSize(n int) int { return decisionFixedSize + 8*n }

// reporter is the rank-side half of the fence: it snapshots this rank's
// tracer deltas, runtime gauges, and fresh spans into reusable scratch,
// then encodes them into a pooled buffer. All fields are single-
// goroutine (the rank's worker loop).
type reporter struct {
	sampler    *obs.RuntimeSampler
	heap       *obs.Gauge
	gcPause    *obs.Gauge
	goroutines *obs.Gauge

	spanCap int
	prev    map[string]obs.PhaseStat
	cur     []obs.PhaseStat
	deltas  []obs.PhaseStat
	spans   []obs.SpanEvent
	spanSeq uint64
	pending []int
}

func newReporter(o *obs.Obs, spanCap int) *reporter {
	var reg *obs.Registry
	if o != nil {
		reg = o.Reg
	}
	return &reporter{
		sampler:    obs.NewRuntimeSampler(reg),
		heap:       o.Gauge("runtime.heap.bytes"),
		gcPause:    o.Gauge("runtime.gc.pause.ns"),
		goroutines: o.Gauge("runtime.goroutines"),
		spanCap:    spanCap,
		prev:       make(map[string]obs.PhaseStat),
	}
}

// collect samples the runtime gauges and refreshes the delta scratch
// from the tracer. Steady state allocates nothing: the scratch slices
// are reused and the prev map only grows on first sight of a phase.
func (r *reporter) collect(tr *obs.Tracer) {
	r.sampler.Sample()
	r.cur = tr.AppendPhases(r.cur[:0])
	r.deltas = r.deltas[:0]
	for _, ps := range r.cur {
		prev := r.prev[ps.Name]
		d := obs.PhaseStat{Name: ps.Name, Count: ps.Count - prev.Count, Total: ps.Total - prev.Total}
		if d.Count > 0 {
			r.deltas = append(r.deltas, d)
		}
		r.prev[ps.Name] = ps
	}
	r.spans, r.spanSeq = tr.AppendEventsSince(r.spanSeq, r.spans[:0])
	if len(r.spans) > r.spanCap {
		r.spans = r.spans[len(r.spans)-r.spanCap:]
	}
}

// encodedSize returns the exact record size for the current scratch.
func (r *reporter) encodedSize() int {
	n := recordHeaderSize
	for _, ps := range r.deltas {
		n += phaseWireSize(ps.Name)
	}
	for _, ev := range r.spans {
		n += spanWireSize(ev.Name)
	}
	return n
}

// encodeInto writes the record into buf, which must be exactly
// encodedSize() long.
func (r *reporter) encodeInto(buf []byte, world int, epoch int64, step int) {
	le := binary.LittleEndian
	le.PutUint32(buf[0:], uint32(world))
	le.PutUint64(buf[4:], uint64(epoch))
	le.PutUint32(buf[12:], uint32(step))
	le.PutUint64(buf[16:], math.Float64bits(r.heap.Value()))
	le.PutUint64(buf[24:], math.Float64bits(r.gcPause.Value()))
	le.PutUint64(buf[32:], math.Float64bits(r.goroutines.Value()))
	le.PutUint32(buf[40:], uint32(len(r.deltas)))
	le.PutUint32(buf[44:], uint32(len(r.spans)))
	off := recordHeaderSize
	for _, ps := range r.deltas {
		le.PutUint16(buf[off:], uint16(len(ps.Name)))
		off += 2
		off += copy(buf[off:], ps.Name)
		le.PutUint64(buf[off:], uint64(ps.Count))
		le.PutUint64(buf[off+8:], uint64(ps.Total))
		off += 16
	}
	for _, ev := range r.spans {
		le.PutUint16(buf[off:], uint16(len(ev.Name)))
		off += 2
		off += copy(buf[off:], ev.Name)
		le.PutUint64(buf[off:], uint64(ev.Epoch))
		le.PutUint32(buf[off+8:], uint32(ev.Snapshot))
		le.PutUint32(buf[off+12:], uint32(ev.Iter))
		le.PutUint64(buf[off+16:], uint64(ev.Start))
		le.PutUint64(buf[off+24:], uint64(ev.Dur))
		off += 32
	}
	if off != len(buf) {
		panic(fmt.Sprintf("obscluster: encoded %d bytes into a %d-byte record", off, len(buf)))
	}
}

// Decision is the coordinator's verdict for one fence, broadcast to
// every member so all ranks plan the next step identically.
type Decision struct {
	// Suggested reports the CV crossed the detector threshold this
	// fence (whatever the cooldown or arming state).
	Suggested bool
	// Fire asks the elastic driver to run a fence-time rebalance: bump
	// the view epoch and re-partition the next step with Weights.
	Fire bool
	// CV is max(LoadCV, DurCV) — the gauge the threshold compares.
	CV     float64
	LoadCV float64 // CV of the EWMA'd planned per-rank loads
	DurCV  float64 // CV of the EWMA'd measured per-rank compute time
	// Weights are the per-member (view-rank order) cost weights for
	// partition.WeightedLPT: measured ns per planned nnz, normalised,
	// snapped to uniform inside the noise band. Aliases detector (or
	// decode) scratch — copy before keeping past the next Fence.
	Weights []float64
}

func encodeDecision(buf []byte, d Decision) {
	le := binary.LittleEndian
	var flags byte
	if d.Suggested {
		flags |= 1
	}
	if d.Fire {
		flags |= 2
	}
	buf[0] = flags
	le.PutUint64(buf[1:], math.Float64bits(d.CV))
	le.PutUint64(buf[9:], math.Float64bits(d.LoadCV))
	le.PutUint64(buf[17:], math.Float64bits(d.DurCV))
	le.PutUint32(buf[25:], uint32(len(d.Weights)))
	off := decisionFixedSize
	for _, w := range d.Weights {
		le.PutUint64(buf[off:], math.Float64bits(w))
		off += 8
	}
	if off != len(buf) {
		panic(fmt.Sprintf("obscluster: encoded %d bytes into a %d-byte decision", off, len(buf)))
	}
}

// decodeDecision parses a decision payload, appending the weights into
// *scratch (reset first) so the steady state allocates nothing.
func decodeDecision(buf []byte, scratch *[]float64) (Decision, error) {
	if len(buf) < decisionFixedSize {
		return Decision{}, fmt.Errorf("obscluster: decision payload %d bytes, want >= %d", len(buf), decisionFixedSize)
	}
	le := binary.LittleEndian
	d := Decision{
		Suggested: buf[0]&1 != 0,
		Fire:      buf[0]&2 != 0,
		CV:        math.Float64frombits(le.Uint64(buf[1:])),
		LoadCV:    math.Float64frombits(le.Uint64(buf[9:])),
		DurCV:     math.Float64frombits(le.Uint64(buf[17:])),
	}
	n := int(le.Uint32(buf[25:]))
	if len(buf) != decisionSize(n) {
		return Decision{}, fmt.Errorf("obscluster: decision payload %d bytes for %d weights", len(buf), n)
	}
	ws := (*scratch)[:0]
	off := decisionFixedSize
	for i := 0; i < n; i++ {
		ws = append(ws, math.Float64frombits(le.Uint64(buf[off:])))
		off += 8
	}
	*scratch = ws
	d.Weights = ws
	return d, nil
}
