package obscluster

import (
	"encoding/json"
	"net/http"
)

// Handler serves the cluster-plane debug endpoints:
//
//	/debug/cluster          — the aggregated Snapshot as JSON
//	/debug/cluster/timeline — the merged cluster timeline as JSONL
//
// get is called per request so the plane can be constructed lazily
// (workers build it when the first stream starts); until it returns
// non-nil the endpoints answer 503. Reads take the aggregator's read
// lock, so scraping during a fence sees either the whole fence or none
// of it — never a torn table.
func Handler(get func() *Plane) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/cluster", func(w http.ResponseWriter, _ *http.Request) {
		p := get()
		if p == nil {
			http.Error(w, "cluster plane not running", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/cluster/timeline", func(w http.ResponseWriter, _ *http.Request) {
		p := get()
		if p == nil {
			http.Error(w, "cluster plane not running", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := p.WriteTimelineJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
