package obscluster

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dismastd/internal/cluster"
	"dismastd/internal/obs"
)

// span records one completed span on the rank's tracer.
func span(o *obs.Obs, name string) {
	sp := o.Span(name)
	sp.End()
}

func identityMembers(m int) []int {
	members := make([]int, m)
	for i := range members {
		members[i] = i
	}
	return members
}

// TestFenceGatherByteAccounting runs one fence on a 3-rank cluster with
// a known span pattern per rank and checks three contracts at once: the
// coordinator's table holds every rank's phases, all ranks receive the
// identical decision, and the transport counters equal the byte totals
// computed from the wire format — record sizes from the per-rank span
// pattern, decision sizes from the (empty) weight vector, each message
// charged len(payload)+len(tag)+8 on both sides.
func TestFenceGatherByteAccounting(t *testing.T) {
	const m = 3
	c := cluster.NewLocal(m)
	c.SetRecvTimeout(5 * time.Second)
	members := identityMembers(m)
	loads := []float64{100, 100, 100}

	var (
		mu       sync.Mutex
		decs     [m]Decision
		rootSnap Snapshot
		tagLen   int
		dtagLen  int
	)
	stats, err := c.Run(func(w *cluster.Worker) error {
		p := NewPlane(Config{}, w.Obs(), w.Size())
		// Rank r records r+1 mttkrp spans and one solve span before the
		// fence — distinguishable payload sizes per rank.
		for i := 0; i <= w.Rank(); i++ {
			span(w.Obs(), "mode0/mttkrp")
		}
		span(w.Obs(), "solve")
		dec, err := p.Fence(w, members, 0, 0, loads)
		if err != nil {
			return err
		}
		mu.Lock()
		decs[w.Rank()] = dec
		if w.Rank() == 0 {
			rootSnap = p.Snapshot()
		} else if tagLen == 0 {
			tagLen = len(w.StreamTag("obsfence"))
			dtagLen = len(w.StreamTag("obsfence/dec"))
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Decision is byte-identical everywhere; the weight alias is nil
	// because the (unarmed) detector never fires.
	for r := 1; r < m; r++ {
		d, d0 := decs[r], decs[0]
		if d.Suggested != d0.Suggested || d.Fire != d0.Fire ||
			d.CV != d0.CV || d.LoadCV != d0.LoadCV || d.DurCV != d0.DurCV ||
			len(d.Weights) != 0 {
			t.Errorf("rank %d decision %+v != rank 0 %+v", r, d, d0)
		}
	}
	if decs[0].LoadCV != 0 {
		t.Errorf("uniform loads gave LoadCV %v, want 0", decs[0].LoadCV)
	}

	// Coordinator table: every rank's phase deltas landed intact.
	if len(rootSnap.Ranks) != m {
		t.Fatalf("snapshot has %d rank rows, want %d", len(rootSnap.Ranks), m)
	}
	for r, row := range rootSnap.Ranks {
		counts := map[string]int64{}
		for _, ph := range row.Phases {
			counts[ph.Name] = ph.Count
		}
		if counts["mode0/mttkrp"] != int64(r+1) || counts["solve"] != 1 {
			t.Errorf("rank %d phases = %v, want mttkrp=%d solve=1", r, counts, r+1)
		}
		if row.HeapBytes <= 0 || row.Goroutines <= 0 {
			t.Errorf("rank %d runtime gauges not sampled: %+v", r, row)
		}
		if row.ComputeNs <= 0 {
			t.Errorf("rank %d computeNs = %d, want > 0", r, row.ComputeNs)
		}
	}

	// Exact byte accounting. Each non-root rank ships one record sized
	// by its span pattern; the coordinator replies with one 0-weight
	// decision per peer. Rank 0's own record never touches the wire.
	recordSize := func(r int) int64 {
		n := recordHeaderSize +
			phaseWireSize("mode0/mttkrp") + phaseWireSize("solve") +
			(r+1)*spanWireSize("mode0/mttkrp") + spanWireSize("solve")
		return int64(n)
	}
	var wantBytes int64
	for r := 1; r < m; r++ {
		wantBytes += recordSize(r) + int64(tagLen) + 8
		wantBytes += int64(decisionSize(0)) + int64(dtagLen) + 8
	}
	var sentB, recvB, sentM, recvM int64
	for _, rk := range stats.Ranks {
		sentB += rk.BytesSent
		recvB += rk.BytesRecv
		sentM += rk.MsgsSent
		recvM += rk.MsgsRecv
	}
	if sentB != wantBytes {
		t.Errorf("sent %d bytes, want %d from the wire-format formula", sentB, wantBytes)
	}
	if wantMsgs := int64(2 * (m - 1)); sentM != wantMsgs {
		t.Errorf("sent %d messages, want %d", sentM, wantMsgs)
	}
	if recvB != sentB || recvM != sentM {
		t.Errorf("recv counters (%d bytes, %d msgs) != send counters (%d, %d)", recvB, recvM, sentB, sentM)
	}
}

// TestFenceAccumulatesAcrossRounds checks the delta discipline: phase
// counts in the coordinator table accumulate across fences and each
// fence only ships what changed since the last one.
func TestFenceAccumulatesAcrossRounds(t *testing.T) {
	const m = 2
	c := cluster.NewLocal(m)
	c.SetRecvTimeout(5 * time.Second)
	members := identityMembers(m)
	loads := []float64{50, 50}

	var rootSnap Snapshot
	_, err := c.Run(func(w *cluster.Worker) error {
		p := NewPlane(Config{}, w.Obs(), w.Size())
		for step := 0; step < 3; step++ {
			span(w.Obs(), "mode0/mttkrp")
			span(w.Obs(), "mode0/mttkrp")
			if _, err := p.Fence(w, members, 0, step, loads); err != nil {
				return err
			}
		}
		if w.Rank() == 0 {
			rootSnap = p.Snapshot()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rootSnap.Fences != 3 || rootSnap.Step != 2 {
		t.Fatalf("snapshot fences=%d step=%d, want 3 and 2", rootSnap.Fences, rootSnap.Step)
	}
	for _, row := range rootSnap.Ranks {
		if row.Fences != 3 {
			t.Errorf("rank %d saw %d fences, want 3", row.World, row.Fences)
		}
		for _, ph := range row.Phases {
			switch ph.Name {
			case "mode0/mttkrp":
				if ph.Count != 6 {
					t.Errorf("rank %d mttkrp count %d, want 6 across 3 fences", row.World, ph.Count)
				}
			case "plane/fence":
				// The fence span ends after collect, so it ships one
				// fence late: 2 of the 3 are visible.
				if ph.Count != 2 {
					t.Errorf("rank %d plane/fence count %d, want 2", row.World, ph.Count)
				}
			}
		}
	}
}

// TestTimelineEpochStamped drives a fence at a non-zero view epoch and
// checks the merged JSONL timeline carries the epoch and world-rank
// stamps on every span — the identity that separates pre- from
// post-transition work in a trace.
func TestTimelineEpochStamped(t *testing.T) {
	const m, epoch = 3, 5
	c := cluster.NewLocal(m)
	c.SetRecvTimeout(5 * time.Second)
	members := identityMembers(m)
	loads := []float64{10, 10, 10}

	var buf bytes.Buffer
	_, err := c.Run(func(w *cluster.Worker) error {
		p := NewPlane(Config{}, w.Obs(), w.Size())
		w.Obs().SetEpoch(epoch)
		span(w.Obs(), "stream/mttkrp")
		if _, err := p.Fence(w, members, epoch, 0, loads); err != nil {
			return err
		}
		if w.Rank() == 0 {
			return p.WriteTimelineJSONL(&buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != m {
		t.Fatalf("timeline has %d spans, want %d", len(lines), m)
	}
	seen := map[int]bool{}
	var lastStart time.Duration = -1 << 62
	for _, line := range lines {
		var ev obs.SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("timeline line %q: %v", line, err)
		}
		if ev.Name != "stream/mttkrp" {
			t.Errorf("span name %q, want stream/mttkrp", ev.Name)
		}
		if ev.Epoch != epoch {
			t.Errorf("span epoch %d, want %d", ev.Epoch, epoch)
		}
		seen[ev.Rank] = true
		if ev.Start < lastStart {
			t.Errorf("timeline out of order: %d after %d", ev.Start, lastStart)
		}
		lastStart = ev.Start
	}
	if len(seen) != m {
		t.Errorf("timeline covers ranks %v, want all %d", seen, m)
	}
}

// TestConcurrentScrape hammers /debug/cluster, the timeline, and the
// Prometheus endpoint from a scraper goroutine while 3 ranks run fences
// — the race detector checks the locking, the assertions check no
// scrape observes a torn table (rank fence counts can differ by at most
// one mid-gather).
func TestConcurrentScrape(t *testing.T) {
	const m, rounds = 3, 40
	c := cluster.NewLocal(m)
	c.SetRecvTimeout(10 * time.Second)
	members := identityMembers(m)
	loads := []float64{30, 20, 10}

	var planeMu sync.Mutex
	var rootPlane *Plane
	getPlane := func() *Plane {
		planeMu.Lock()
		defer planeMu.Unlock()
		return rootPlane
	}
	var rootObs *obs.Obs
	done := make(chan struct{})
	scraped := 0
	var scrapeErr error
	go func() {
		defer close(done)
		h := Handler(getPlane)
		deadline := time.Now().Add(10 * time.Second)
		for scraped < 200 && time.Now().Before(deadline) {
			if getPlane() == nil {
				time.Sleep(time.Millisecond)
				continue
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/cluster", nil))
			var snap Snapshot
			if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
				scrapeErr = err
				return
			}
			lo, hi := int64(1<<62), int64(0)
			for _, row := range snap.Ranks {
				if row.Fences < lo {
					lo = row.Fences
				}
				if row.Fences > hi {
					hi = row.Fences
				}
			}
			if len(snap.Ranks) > 0 && hi-lo > 1 {
				scrapeErr = &tornSnapshotError{lo: lo, hi: hi}
				return
			}
			if snap.Detector.Fired > snap.Detector.Suggested {
				scrapeErr = &tornSnapshotError{lo: snap.Detector.Fired, hi: snap.Detector.Suggested}
				return
			}
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/cluster/timeline", nil))
			if rec.Code != 200 {
				scrapeErr = &tornSnapshotError{lo: int64(rec.Code)}
				return
			}
			var prom bytes.Buffer
			if err := rootObs.Reg.Snapshot().WritePrometheus(&prom); err != nil {
				scrapeErr = err
				return
			}
			if !strings.Contains(prom.String(), "plane_fences") {
				scrapeErr = &tornSnapshotError{}
				return
			}
			scraped++
		}
	}()

	_, err := c.Run(func(w *cluster.Worker) error {
		p := NewPlane(Config{}, w.Obs(), w.Size())
		if w.Rank() == 0 {
			planeMu.Lock()
			rootPlane = p
			rootObs = w.Obs()
			planeMu.Unlock()
		}
		for step := 0; step < rounds; step++ {
			span(w.Obs(), "mode0/mttkrp")
			if _, err := p.Fence(w, members, 0, step, loads); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if scrapeErr != nil {
		t.Fatalf("scraper: %v", scrapeErr)
	}
	if scraped == 0 {
		t.Fatal("scraper never completed a read")
	}
}

type tornSnapshotError struct{ lo, hi int64 }

func (e *tornSnapshotError) Error() string { return "torn snapshot" }

// TestHandlerBeforePlane pins the lazy-construction contract: the
// endpoints answer 503, not panic, until the plane exists.
func TestHandlerBeforePlane(t *testing.T) {
	h := Handler(func() *Plane { return nil })
	for _, path := range []string{"/debug/cluster", "/debug/cluster/timeline"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 503 {
			t.Errorf("%s before plane: status %d, want 503", path, rec.Code)
		}
	}
}
