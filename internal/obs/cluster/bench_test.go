package obscluster

import (
	"fmt"
	"testing"
	"time"

	"dismastd/internal/cluster"
)

// BenchmarkObsFence measures one fence round of the observability plane
// — the overhead added to every stream step when the cluster plane is
// on. `make bench-obs` runs BenchmarkObs* through cmd/benchjson into
// BENCH_obs.json. maxrank-B/op reports the coordinator-bound gather
// traffic per fence.
func BenchmarkObsFence(b *testing.B) {
	for _, m := range []int{2, 4, 8} {
		for _, spansPerStep := range []int{2, 16} {
			b.Run(fmt.Sprintf("M=%d/spans=%d", m, spansPerStep), func(b *testing.B) {
				c := cluster.NewLocal(m)
				c.SetRecvTimeout(time.Minute)
				members := identityMembers(m)
				loads := make([]float64, m)
				for i := range loads {
					loads[i] = 100
				}
				b.ResetTimer()
				stats, err := c.Run(func(w *cluster.Worker) error {
					p := NewPlane(Config{}, w.Obs(), w.Size())
					for i := 0; i < b.N; i++ {
						for s := 0; s < spansPerStep; s++ {
							span(w.Obs(), "mode0/mttkrp")
						}
						if _, err := p.Fence(w, members, 0, i, loads); err != nil {
							return err
						}
					}
					return nil
				})
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				var maxSent int64
				for _, rk := range stats.Ranks {
					if rk.BytesSent > maxSent {
						maxSent = rk.BytesSent
					}
				}
				b.ReportMetric(float64(maxSent)/float64(b.N), "maxrank-B/op")
			})
		}
	}
}
