package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mttkrp.rows")
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if r.Counter("mttkrp.rows") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("partition.mode0.cv")
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Fatalf("gauge = %v, want 0.25", got)
	}

	s := r.Snapshot()
	if s.Counters["mttkrp.rows"] != 6 || s.Gauges["partition.mode0.cv"] != 0.25 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	var o *Obs
	// None of these may panic; values must read as zero.
	r.Counter("x").Add(3)
	r.Gauge("y").Set(1)
	r.Histogram("z", []float64{1}).Observe(2)
	o.Counter("x").Inc()
	o.Gauge("y").Set(1)
	o.Span("s").End()
	o.SetIter(3)
	o.SetSnapshot(1)
	o.Logger().Info("dropped")
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil handles returned non-zero values")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
	if s := o.SnapshotSince(o.Baseline()); s.Phases != nil || s.Spans != nil {
		t.Fatalf("nil obs snapshot = %+v", s)
	}
}

// TestHistogramBucketEdges pins the boundary convention: bucket i
// counts observations <= uppers[i]; anything above the last bound lands
// in the overflow bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0, 1, 1.0001, 10, 10.5, 100, 101, 1e9} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	want := []int64{2, 2, 2, 2} // (<=1)x2, (<=10)x2, (<=100)x2, overflow x2
	if len(s.Counts) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("total = %d, want 8", s.Count())
	}
	wantSum := 0.0 + 1 + 1.0001 + 10 + 10.5 + 100 + 101 + 1e9
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	// Unsorted bounds are sorted at creation.
	h2 := r.Histogram("lat2", []float64{100, 1, 10})
	h2.Observe(5)
	if s2 := r.Snapshot().Histograms["lat2"]; s2.Counts[1] != 1 {
		t.Fatalf("unsorted-bounds histogram counts = %v, want observation in bucket 1", s2.Counts)
	}
}

// TestRegistryConcurrency hammers get-or-create and updates from many
// goroutines; run under -race (make race covers internal/obs) this
// proves the registry and instruments are data-race-free and that no
// increments are lost.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Inc()
				r.Gauge("gauge").Set(float64(i))
				r.Histogram("hist", []float64{100, 500}).Observe(float64(i))
				if i%100 == 0 {
					r.Snapshot() // concurrent reads must be safe too
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("lost increments: %d, want %d", got, goroutines*perG)
	}
	if got := r.Snapshot().Histograms["hist"].Count(); got != goroutines*perG {
		t.Fatalf("lost observations: %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", []float64{10})
	c.Add(3)
	h.Observe(5)
	base := r.Snapshot()
	c.Add(4)
	h.Observe(50)
	d := r.Snapshot().Sub(base)
	if d.Counters["n"] != 4 {
		t.Fatalf("counter delta = %d, want 4", d.Counters["n"])
	}
	hd := d.Histograms["h"]
	if hd.Counts[0] != 0 || hd.Counts[1] != 1 || hd.Sum != 50 {
		t.Fatalf("histogram delta = %+v", hd)
	}
}

func TestSnapshotWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("allreduce.bytes").Add(128)
	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"allreduce.bytes": 128`) {
		t.Fatalf("JSON missing counter: %s", b.String())
	}
}
