// Package obs is the repo's zero-dependency observability layer: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms), a lightweight span tracer with an in-memory ring buffer
// (trace.go), structured logging helpers over log/slog (log.go), and an
// HTTP debug handler exposing all of it plus net/http/pprof (debug.go).
//
// The design constraint is the same as the workspace arena's: the hot
// path must not allocate. Callers resolve named instruments once (at
// worker-state construction, matching PR 2's buffer-sizing discipline)
// and update them through the returned handles; Counter.Add, Gauge.Set,
// Histogram.Observe and Span.End are all allocation-free, which
// alloc_test.go pins with testing.AllocsPerRun.
//
// Every instrument handle is nil-safe: methods on a nil *Counter,
// *Gauge, *Histogram or the zero Span are no-ops, so instrumented code
// needs no "is observability on?" branches.
//
// Metric names are dot-separated paths, most-significant first:
// "mttkrp.rows", "allreduce.bytes", "transport.dial.retries". See
// DESIGN.md ("Observability") for the full naming scheme.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 instrument.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increases the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 instrument holding the last set value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last set value (zero on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts float64 observations into fixed buckets. Bucket i
// counts observations <= uppers[i]; one implicit overflow bucket counts
// the rest. Observation is lock-free.
type Histogram struct {
	uppers []float64 // sorted ascending, fixed at creation
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(uppers []float64) *Histogram {
	u := append([]float64(nil), uppers...)
	sort.Float64s(u)
	return &Histogram{uppers: u, counts: make([]atomic.Int64, len(u)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first upper bound >= v.
	lo, hi := 0, len(h.uppers)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.uppers[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a histogram's state at one instant.
type HistogramSnapshot struct {
	Uppers []float64 `json:"uppers"` // bucket upper bounds; one overflow bucket follows
	Counts []int64   `json:"counts"` // len(Uppers)+1 entries
	Sum    float64   `json:"sum"`
}

// Count returns the total number of observations in the snapshot.
func (s HistogramSnapshot) Count() int64 {
	var t int64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Uppers: append([]float64(nil), h.uppers...),
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry is a concurrency-safe name -> instrument table. Get-or-create
// lookups (Counter, Gauge, Histogram) take a lock and may allocate;
// callers on the hot path resolve handles once up front and use the
// handles, which never touch the registry again.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. Later calls return the existing
// histogram regardless of the bounds they pass. Returns nil (a no-op
// handle) on a nil registry.
func (r *Registry) Histogram(name string, uppers []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(uppers)
		r.histograms[name] = h
	}
	return h
}

// MetricsSnapshot is a registry's state at one instant, JSON-friendly.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument's current value. Safe to call while
// the instruments are being updated. Returns the zero snapshot on a nil
// registry.
func (r *Registry) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Sub returns the counter-wise difference s − base: counters subtract,
// gauges and histogram sums keep their current values with histogram
// bucket counts subtracted. Used to report per-Run deltas on long-lived
// registries (a TCPNode's registry outlives each Run).
func (s MetricsSnapshot) Sub(base MetricsSnapshot) MetricsSnapshot {
	out := MetricsSnapshot{Gauges: s.Gauges}
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]int64, len(s.Counters))
		for name, v := range s.Counters {
			out.Counters[name] = v - base.Counters[name]
		}
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			b, ok := base.Histograms[name]
			if !ok || len(b.Counts) != len(h.Counts) {
				out.Histograms[name] = h
				continue
			}
			d := HistogramSnapshot{
				Uppers: h.Uppers,
				Counts: make([]int64, len(h.Counts)),
				Sum:    h.Sum - b.Sum,
			}
			for i := range h.Counts {
				d.Counts[i] = h.Counts[i] - b.Counts[i]
			}
			out.Histograms[name] = d
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON (expvar-style).
func (s MetricsSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
