package obs

import "log/slog"

// Obs bundles one scope's instruments: a metrics registry, a span
// tracer, and a structured logger. The cluster transports own one per
// rank (or per node for TCP) and hand it to the algorithms through
// cluster.Worker.Obs; job-level planning code receives one through the
// algorithm Options. A nil *Obs is fully inert — every method returns a
// no-op handle — so instrumented code never branches on "observability
// enabled".
type Obs struct {
	Reg   *Registry
	Trace *Tracer
	Log   *slog.Logger
}

// New returns a live bundle: fresh registry, default-capacity tracer,
// and a discarding logger (replace Log to enable output).
func New() *Obs {
	return &Obs{Reg: NewRegistry(), Trace: NewTracer(0), Log: Discard()}
}

// Counter resolves a named counter handle. Nil-safe.
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.Counter(name)
}

// Gauge resolves a named gauge handle. Nil-safe.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Reg.Gauge(name)
}

// Histogram resolves a named histogram handle. Nil-safe.
func (o *Obs) Histogram(name string, uppers []float64) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.Histogram(name, uppers)
}

// Span opens a span on the bundle's tracer. Nil-safe.
func (o *Obs) Span(name string) Span {
	if o == nil {
		return Span{}
	}
	return o.Trace.Start(name)
}

// SetSnapshot stamps subsequent spans with the streaming-step index.
func (o *Obs) SetSnapshot(snap int) {
	if o != nil {
		o.Trace.SetSnapshot(snap)
	}
}

// SetEpoch stamps subsequent spans with the cluster view epoch.
func (o *Obs) SetEpoch(epoch int64) {
	if o != nil {
		o.Trace.SetEpoch(epoch)
	}
}

// SetIter stamps subsequent spans with the ALS sweep index.
func (o *Obs) SetIter(iter int) {
	if o != nil {
		o.Trace.SetIter(iter)
	}
}

// Logger returns the bundle's logger, or a discarding logger when the
// bundle or its Log field is nil.
func (o *Obs) Logger() *slog.Logger {
	if o == nil || o.Log == nil {
		return Discard()
	}
	return o.Log
}

// RankSnapshot is one rank's observability state at a point in time:
// the metric values, the per-phase timing aggregates, and the retained
// span events. cluster.RankStats carries one per rank after a run.
type RankSnapshot struct {
	Metrics MetricsSnapshot `json:"metrics"`
	Phases  []PhaseStat     `json:"phases,omitempty"`
	Spans   []SpanEvent     `json:"spans,omitempty"`
}

// Baseline marks a bundle's state so a later SnapshotSince can report
// only what happened after the mark — how a long-lived TCP node scopes
// its counters to one Run.
type Baseline struct {
	metrics MetricsSnapshot
	phases  []PhaseStat
	spanSeq uint64
}

// Baseline captures the bundle's current state. Nil-safe (the zero
// Baseline subtracts nothing).
func (o *Obs) Baseline() Baseline {
	if o == nil {
		return Baseline{}
	}
	return Baseline{
		metrics: o.Reg.Snapshot(),
		phases:  o.Trace.Phases(),
		spanSeq: o.Trace.Count(),
	}
}

// Snapshot captures the bundle's full state since creation.
func (o *Obs) Snapshot() RankSnapshot {
	return o.SnapshotSince(Baseline{})
}

// SnapshotSince captures the bundle's state relative to a baseline:
// counters and phase aggregates as deltas, spans recorded after the
// mark. Nil-safe (returns the zero snapshot).
func (o *Obs) SnapshotSince(b Baseline) RankSnapshot {
	if o == nil {
		return RankSnapshot{}
	}
	return RankSnapshot{
		Metrics: o.Reg.Snapshot().Sub(b.metrics),
		Phases:  SubPhases(o.Trace.Phases(), b.phases),
		Spans:   o.Trace.EventsSince(b.spanSeq),
	}
}
