package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// Prometheus text-exposition export (version 0.0.4), dependency-free.
// The registry's dot-separated metric names ("elastic.rebalance.fired")
// become underscore-separated series ("elastic_rebalance_fired");
// histograms export the standard cumulative le-bucket series plus
// derived p50/p95/p99 gauges so tail latencies are scrapeable without
// server-side histogram_quantile.

// promName rewrites a registry metric name into the Prometheus
// identifier charset [a-zA-Z0-9_:], mapping every other byte to '_' and
// prefixing names that would start with a digit.
func promName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		if !promNameByte(name[i]) {
			ok = false
			break
		}
	}
	if ok && len(name) > 0 && !(name[0] >= '0' && name[0] <= '9') {
		return name
	}
	b := make([]byte, 0, len(name)+1)
	if len(name) > 0 && name[0] >= '0' && name[0] <= '9' {
		b = append(b, '_')
	}
	for i := 0; i < len(name); i++ {
		if promNameByte(name[i]) {
			b = append(b, name[i])
		} else {
			b = append(b, '_')
		}
	}
	return string(b)
}

func promNameByte(c byte) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text-exposition
// format: counters and gauges one series each, histograms as cumulative
// le-buckets with _sum/_count plus _p50/_p95/_p99 quantile gauges.
// Series are emitted in sorted name order, so the output is
// deterministic for a given snapshot.
func (s MetricsSnapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		bw.WriteString("# TYPE " + n + " counter\n")
		bw.WriteString(n + " " + strconv.FormatInt(s.Counters[name], 10) + "\n")
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		bw.WriteString("# TYPE " + n + " gauge\n")
		bw.WriteString(n + " " + promFloat(s.Gauges[name]) + "\n")
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		n := promName(name)
		bw.WriteString("# TYPE " + n + " histogram\n")
		var cum int64
		for i, upper := range h.Uppers {
			cum += h.Counts[i]
			bw.WriteString(n + `_bucket{le="` + promFloat(upper) + `"} ` +
				strconv.FormatInt(cum, 10) + "\n")
		}
		total := h.Count()
		bw.WriteString(n + `_bucket{le="+Inf"} ` + strconv.FormatInt(total, 10) + "\n")
		bw.WriteString(n + "_sum " + promFloat(h.Sum) + "\n")
		bw.WriteString(n + "_count " + strconv.FormatInt(total, 10) + "\n")
		for _, pq := range [...]struct {
			suffix string
			q      float64
		}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
			bw.WriteString("# TYPE " + n + pq.suffix + " gauge\n")
			bw.WriteString(n + pq.suffix + " " + promFloat(h.Quantile(pq.q)) + "\n")
		}
	}
	return bw.Flush()
}
