package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerRecordsSpansWithContext(t *testing.T) {
	tr := NewTracer(16)
	tr.SetRank(2)
	tr.SetSnapshot(1)
	tr.SetIter(4)
	sp := tr.Start("mode0/mttkrp")
	sp.End()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Name != "mode0/mttkrp" || ev.Rank != 2 || ev.Snapshot != 1 || ev.Iter != 4 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Dur < 0 || ev.Start < 0 {
		t.Fatalf("negative timing: %+v", ev)
	}
	ps := tr.Phases()
	if len(ps) != 1 || ps[0].Count != 1 || ps[0].Total != ev.Dur {
		t.Fatalf("phases = %+v", ps)
	}
}

// TestTracerRingWraparound fills the ring past capacity and checks the
// retained window is the most recent spans, oldest-first, while the
// aggregates still count everything.
func TestTracerRingWraparound(t *testing.T) {
	const capacity = 8
	tr := NewTracer(capacity)
	names := []string{"a", "b", "c", "d"}
	const total = 3*capacity + 5
	for i := 0; i < total; i++ {
		tr.SetIter(i)
		tr.Start(names[i%len(names)]).End()
	}
	if tr.Count() != total {
		t.Fatalf("count = %d, want %d", tr.Count(), total)
	}
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("%d retained events, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		wantIter := total - capacity + i
		if ev.Iter != wantIter {
			t.Fatalf("event %d has iter %d, want %d (not oldest-first?)", i, ev.Iter, wantIter)
		}
	}
	var aggCount int64
	for _, ps := range tr.Phases() {
		aggCount += ps.Count
	}
	if aggCount != total {
		t.Fatalf("aggregate count = %d, want %d despite wraparound", aggCount, total)
	}

	// EventsSince: everything still retained from a recent mark, all
	// retained events from an overwritten mark, nothing from the end.
	if got := tr.EventsSince(total - 3); len(got) != 3 {
		t.Fatalf("EventsSince(recent) = %d events, want 3", len(got))
	}
	if got := tr.EventsSince(0); len(got) != capacity {
		t.Fatalf("EventsSince(0) = %d events, want %d", len(got), capacity)
	}
	if got := tr.EventsSince(total); len(got) != 0 {
		t.Fatalf("EventsSince(now) = %d events, want 0", len(got))
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(4)
	tr.Start("loss").End()
	tr.Start("mode1/solve").End()
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL lines, want 2: %q", len(lines), b.String())
	}
	if !strings.Contains(lines[0], `"name":"loss"`) || !strings.Contains(lines[1], `"name":"mode1/solve"`) {
		t.Fatalf("unexpected JSONL: %q", b.String())
	}
}

func TestPhaseOfAndAggregate(t *testing.T) {
	if PhaseOf("mode2/mttkrp") != "mttkrp" || PhaseOf("loss") != "loss" || PhaseOf("plan/partition") != "partition" {
		t.Fatal("PhaseOf misparsed a span name")
	}
	agg := AggregatePhases([]PhaseStat{
		{Name: "mode0/mttkrp", Count: 2, Total: 10 * time.Millisecond},
		{Name: "mode1/mttkrp", Count: 3, Total: 20 * time.Millisecond},
		{Name: "loss", Count: 1, Total: 5 * time.Millisecond},
	})
	if len(agg) != 2 {
		t.Fatalf("aggregated to %d phases, want 2: %+v", len(agg), agg)
	}
	if agg[0].Name != "loss" || agg[1].Name != "mttkrp" {
		t.Fatalf("order = %+v", agg)
	}
	if agg[1].Count != 5 || agg[1].Total != 30*time.Millisecond {
		t.Fatalf("mttkrp merge = %+v", agg[1])
	}
}

func TestSubPhases(t *testing.T) {
	base := []PhaseStat{{Name: "loss", Count: 2, Total: 10}}
	cur := []PhaseStat{{Name: "loss", Count: 5, Total: 35}, {Name: "mode0/mttkrp", Count: 1, Total: 7}, {Name: "idle", Count: 2, Total: 10}}
	// Pretend "idle" did not advance.
	d := SubPhases(cur, append(base, PhaseStat{Name: "idle", Count: 2, Total: 10}))
	if len(d) != 2 {
		t.Fatalf("delta = %+v, want 2 advanced phases", d)
	}
	if d[0].Name != "loss" || d[0].Count != 3 || d[0].Total != 25 {
		t.Fatalf("loss delta = %+v", d[0])
	}
}

// TestObsBaselineDelta pins the Run-scoped snapshot mechanism the TCP
// transport uses: counters, phases and spans recorded before the
// baseline are invisible to SnapshotSince.
func TestObsBaselineDelta(t *testing.T) {
	o := New()
	o.Counter("transport.reconnects").Inc()
	o.Span("loss").End()
	b := o.Baseline()
	o.Counter("transport.reconnects").Add(2)
	o.Span("loss").End()
	o.Span("mode0/mttkrp").End()
	s := o.SnapshotSince(b)
	if s.Metrics.Counters["transport.reconnects"] != 2 {
		t.Fatalf("counter delta = %d, want 2", s.Metrics.Counters["transport.reconnects"])
	}
	if len(s.Spans) != 2 {
		t.Fatalf("%d spans since baseline, want 2", len(s.Spans))
	}
	var loss PhaseStat
	for _, ps := range s.Phases {
		if ps.Name == "loss" {
			loss = ps
		}
	}
	if loss.Count != 1 {
		t.Fatalf("loss phase delta = %+v, want count 1", loss)
	}
}
