package obs

import "testing"

// TestHotPathAllocFree pins the package's core contract: once handles
// are resolved and span names interned, counter/gauge/histogram updates
// and span record cycles perform zero heap allocations — so threading
// them through the PR 2 allocation-free kernels cannot regress the
// dtd/core AllocsPerRun guards.
func TestHotPathAllocFree(t *testing.T) {
	o := New()
	c := o.Counter("mttkrp.rows")
	g := o.Gauge("partition.mode0.cv")
	h := o.Histogram("lat", []float64{1, 10, 100})
	const name = "mode0/mttkrp" // precomputed, as the worker states do
	warm := func() {
		c.Add(17)
		g.Set(0.5)
		h.Observe(42)
		sp := o.Span(name)
		sp.End()
	}
	warm() // intern the span name in the aggregate map
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Errorf("hot-path instrument updates allocate %v times, want 0", allocs)
	}
}

// TestNilObsAllocFree: the disabled path must be free too — nil handles
// and the zero Span cost nothing.
func TestNilObsAllocFree(t *testing.T) {
	var o *Obs
	c := o.Counter("x")
	pass := func() {
		c.Inc()
		sp := o.Span("anything")
		sp.End()
	}
	if allocs := testing.AllocsPerRun(100, pass); allocs != 0 {
		t.Errorf("nil-obs path allocates %v times, want 0", allocs)
	}
}
