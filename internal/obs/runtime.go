package obs

import "runtime"

// RuntimeSampler copies Go runtime health figures into registry gauges:
//
//	runtime.heap.bytes      live heap (MemStats.HeapAlloc)
//	runtime.heap.objects    live objects
//	runtime.gc.pause.ns     cumulative stop-the-world pause time
//	runtime.gc.count        completed GC cycles
//	runtime.goroutines      current goroutine count
//
// Sampling calls runtime.ReadMemStats, which stops the world briefly —
// callers invoke it at step fences (once per streaming step), not per
// sweep. The MemStats scratch is part of the sampler, so steady-state
// sampling allocates nothing.
type RuntimeSampler struct {
	heapBytes   *Gauge
	heapObjects *Gauge
	gcPause     *Gauge
	gcCount     *Gauge
	goroutines  *Gauge
	stats       runtime.MemStats
}

// NewRuntimeSampler resolves the runtime gauges on reg. Returns nil on
// a nil registry (Sample on a nil sampler is a no-op).
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	return &RuntimeSampler{
		heapBytes:   reg.Gauge("runtime.heap.bytes"),
		heapObjects: reg.Gauge("runtime.heap.objects"),
		gcPause:     reg.Gauge("runtime.gc.pause.ns"),
		gcCount:     reg.Gauge("runtime.gc.count"),
		goroutines:  reg.Gauge("runtime.goroutines"),
	}
}

// Sample reads the runtime state into the gauges. Nil-safe.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	runtime.ReadMemStats(&s.stats)
	s.heapBytes.Set(float64(s.stats.HeapAlloc))
	s.heapObjects.Set(float64(s.stats.HeapObjects))
	s.gcPause.Set(float64(s.stats.PauseTotalNs))
	s.gcCount.Set(float64(s.stats.NumGC))
	s.goroutines.Set(float64(runtime.NumGoroutine()))
}
