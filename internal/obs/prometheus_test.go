package obs

import (
	"strconv"
	"strings"
	"testing"
)

// parsePromText is a minimal text-format validator: every non-comment
// line must be `name[{labels}] value`, names must use the Prometheus
// charset, and each series must be preceded by a # TYPE comment. It
// returns the parsed samples keyed by the full series name (with label
// text included verbatim).
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	typed := map[string]bool{}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series, valText := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		name := series
		if j := strings.IndexByte(series, '{'); j >= 0 {
			name = series[:j]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("sample %q: unterminated label set", line)
			}
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suffix); ok && typed[cut] {
				base = cut
				break
			}
		}
		if !typed[base] {
			t.Fatalf("series %q has no preceding # TYPE", series)
		}
		for k := 0; k < len(name); k++ {
			if !promNameByte(name[k]) {
				t.Fatalf("series name %q has invalid byte %q", name, name[k])
			}
		}
		samples[series] = v
	}
	return samples
}

func TestWritePrometheusMatchesRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("elastic.rebalance.fired").Add(2)
	reg.Gauge("elastic.imbalance.cv").Set(0.375)
	h := reg.Histogram("plane.fence.gather.ns", []float64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)

	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples := parsePromText(t, b.String())

	if got := samples["elastic_rebalance_fired"]; got != 2 {
		t.Fatalf("counter = %v, want 2", got)
	}
	if got := samples["elastic_imbalance_cv"]; got != 0.375 {
		t.Fatalf("gauge = %v, want 0.375", got)
	}
	if got := samples[`plane_fence_gather_ns_bucket{le="100"}`]; got != 1 {
		t.Fatalf("bucket le=100 = %v, want 1", got)
	}
	if got := samples[`plane_fence_gather_ns_bucket{le="1000"}`]; got != 2 {
		t.Fatalf("bucket le=1000 = %v, want cumulative 2", got)
	}
	if got := samples[`plane_fence_gather_ns_bucket{le="+Inf"}`]; got != 3 {
		t.Fatalf("bucket +Inf = %v, want 3", got)
	}
	if got := samples["plane_fence_gather_ns_count"]; got != 3 {
		t.Fatalf("count = %v, want 3", got)
	}
	if got := samples["plane_fence_gather_ns_sum"]; got != 5550 {
		t.Fatalf("sum = %v, want 5550", got)
	}
	if _, ok := samples["plane_fence_gather_ns_p99"]; !ok {
		t.Fatalf("missing derived p99 gauge; samples = %v", samples)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"mttkrp.rows":      "mttkrp_rows",
		"already_fine":     "already_fine",
		"0starts.digit":    "_0starts_digit",
		"comm/ring-bytes":  "comm_ring_bytes",
		"transport.dial#1": "transport_dial_1",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
