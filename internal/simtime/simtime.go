// Package simtime converts the cluster runtime's *measured* per-rank
// work and traffic into an estimated wall-clock time on a real cluster.
//
// The reproduction host has a single CPU core, so goroutine workers
// cannot exhibit real multi-node speedup; the node-scaling experiment
// (Fig. 7) therefore runs the actual distributed algorithm at every
// cluster size — measuring the true per-worker flop counts, bytes, and
// message counts — and maps them to time with a Spark-like cost model:
//
//	T = Startup·iters                      (task scheduling overhead)
//	  + max_w work_w / ComputeRate         (the straggler's compute)
//	  + max_w bytes_w / Bandwidth          (the busiest link)
//	  + max_w msgs_w · Latency             (per-message overhead)
//
// Only the mapping from measured counts to seconds is modelled; the
// counts themselves come from executing the real algorithm. The default
// constants approximate the paper's testbed (Spark 2.2 on 2.2 GHz
// Xeons, Gigabit Ethernet); DESIGN.md documents this substitution.
package simtime

import (
	"time"

	"dismastd/internal/cluster"
)

// Model holds the cost constants.
type Model struct {
	ComputeRate float64       // work units (≈flops) per second per node
	Bandwidth   float64       // bytes per second per node link
	Latency     time.Duration // per-message overhead
	Startup     time.Duration // per-iteration task scheduling overhead
}

// Default approximates the paper's testbed: JVM-throughput sparse
// arithmetic (~2e8 useful flop/s per executor), Gigabit Ethernet
// (~117 MB/s), sub-millisecond in-rack latency, and Spark's task
// launch overhead of roughly 100 ms per scheduling wave.
func Default() Model {
	return Model{
		ComputeRate: 2e8,
		Bandwidth:   117e6,
		Latency:     500 * time.Microsecond,
		Startup:     100 * time.Millisecond,
	}
}

// Estimate maps a run's measured statistics to cluster seconds. iters
// is the number of ALS sweeps the run performed. waves is the number of
// scheduling waves per sweep: ceil(partitions/workers) — with more
// partitions than workers, Spark schedules the excess tasks in
// additional waves, each paying Startup again (the rising right side of
// the Fig. 6 U-curve).
func (m Model) Estimate(stats *cluster.RunStats, iters, waves int) time.Duration {
	if iters < 1 {
		iters = 1
	}
	if waves < 1 {
		waves = 1
	}
	var maxWork, maxBytes, maxMsgs float64
	for _, r := range stats.Ranks {
		if r.Work > maxWork {
			maxWork = r.Work
		}
		b := float64(r.BytesSent + r.BytesRecv)
		if b > maxBytes {
			maxBytes = b
		}
		msgs := float64(r.MsgsSent + r.MsgsRecv)
		if msgs > maxMsgs {
			maxMsgs = msgs
		}
	}
	compute := time.Duration(maxWork / m.ComputeRate * float64(time.Second))
	network := time.Duration(maxBytes / m.Bandwidth * float64(time.Second))
	latency := time.Duration(maxMsgs * float64(m.Latency))
	startup := time.Duration(iters*waves) * m.Startup
	return startup + compute + network + latency
}

// PerIteration returns Estimate divided by the iteration count — the
// "running time per iteration" every figure in Section V reports.
func (m Model) PerIteration(stats *cluster.RunStats, iters, waves int) time.Duration {
	if iters < 1 {
		iters = 1
	}
	return m.Estimate(stats, iters, waves) / time.Duration(iters)
}

// Waves returns ceil(parts/workers), the scheduling waves per sweep.
func Waves(parts, workers int) int {
	if workers <= 0 || parts <= workers {
		return 1
	}
	return (parts + workers - 1) / workers
}
