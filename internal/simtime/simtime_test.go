package simtime

import (
	"testing"
	"time"

	"dismastd/internal/cluster"
)

func statsFor(works []float64, bytes []int64) *cluster.RunStats {
	s := &cluster.RunStats{}
	for i := range works {
		rs := cluster.RankStats{Work: works[i]}
		rs.BytesSent = bytes[i]
		rs.MsgsSent = 1
		s.Ranks = append(s.Ranks, rs)
	}
	return s
}

func TestStragglerDominatesCompute(t *testing.T) {
	m := Model{ComputeRate: 100, Bandwidth: 1e12, Latency: 0, Startup: 0}
	// Work {100, 400}: the straggler takes 4s regardless of the total.
	got := m.Estimate(statsFor([]float64{100, 400}, []int64{0, 0}), 1, 1)
	if got != 4*time.Second {
		t.Fatalf("estimate %v, want 4s", got)
	}
}

func TestStartupChargedPerIteration(t *testing.T) {
	m := Model{ComputeRate: 1e12, Bandwidth: 1e12, Startup: 100 * time.Millisecond}
	one := m.Estimate(statsFor([]float64{1}, []int64{0}), 1, 1)
	ten := m.Estimate(statsFor([]float64{1}, []int64{0}), 10, 1)
	if ten-one < 890*time.Millisecond {
		t.Fatalf("10 iters %v vs 1 iter %v: startup not charged per sweep", ten, one)
	}
}

func TestNetworkTerm(t *testing.T) {
	m := Model{ComputeRate: 1e12, Bandwidth: 1000, Latency: 0, Startup: 0}
	got := m.Estimate(statsFor([]float64{0}, []int64{5000}), 1, 1)
	if got != 5*time.Second {
		t.Fatalf("network estimate %v, want 5s", got)
	}
}

func TestPerIteration(t *testing.T) {
	m := Model{ComputeRate: 100, Bandwidth: 1e12, Startup: 0}
	st := statsFor([]float64{1000}, []int64{0})
	if per := m.PerIteration(st, 10, 1); per != time.Second {
		t.Fatalf("per-iteration %v, want 1s", per)
	}
}

func TestMoreWorkersReduceEstimate(t *testing.T) {
	// Splitting the same total work across more ranks must reduce the
	// estimate until startup dominates — the Fig. 7 shape.
	m := Default()
	est := func(workers int) time.Duration {
		works := make([]float64, workers)
		bytes := make([]int64, workers)
		for i := range works {
			works[i] = 4e9 / float64(workers)
			bytes[i] = 1e6
		}
		return m.Estimate(statsFor(works, bytes), 10, 1)
	}
	t3, t15 := est(3), est(15)
	if t15 >= t3 {
		t.Fatalf("15 workers (%v) not faster than 3 (%v)", t15, t3)
	}
	// Diminishing returns: the speedup is bounded by the startup floor.
	if t15 < 10*Default().Startup {
		t.Fatalf("estimate %v below the startup floor", t15)
	}
}

func TestItersClamped(t *testing.T) {
	m := Default()
	st := statsFor([]float64{100}, []int64{100})
	if m.Estimate(st, 0, 1) != m.Estimate(st, 1, 1) {
		t.Fatal("iters=0 not clamped to 1")
	}
	if m.PerIteration(st, 0, 1) != m.Estimate(st, 1, 1) {
		t.Fatal("PerIteration iters=0 not clamped")
	}
}

func TestWaves(t *testing.T) {
	cases := []struct{ parts, workers, want int }{
		{8, 15, 1}, {15, 15, 1}, {16, 15, 2}, {30, 15, 2}, {38, 15, 3}, {5, 0, 1},
	}
	for _, c := range cases {
		if got := Waves(c.parts, c.workers); got != c.want {
			t.Fatalf("Waves(%d, %d) = %d, want %d", c.parts, c.workers, got, c.want)
		}
	}
}

func TestWavesIncreaseEstimate(t *testing.T) {
	m := Default()
	st := statsFor([]float64{100}, []int64{100})
	if m.Estimate(st, 10, 3) <= m.Estimate(st, 10, 1) {
		t.Fatal("extra scheduling waves must cost time")
	}
}
