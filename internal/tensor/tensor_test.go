package tensor

import (
	"testing"
	"testing/quick"

	"dismastd/internal/xrand"
)

// small3 builds a 3x4x2 tensor with a handful of entries.
func small3(t *testing.T) *Tensor {
	t.Helper()
	b := NewBuilder([]int{3, 4, 2})
	b.Append([]int{0, 0, 0}, 1)
	b.Append([]int{2, 3, 1}, 2)
	b.Append([]int{1, 2, 0}, 3)
	b.Append([]int{0, 3, 1}, 4)
	return b.Build()
}

// randomTensor builds a random sparse tensor with the given dims and
// approximately the given number of entries.
func randomTensor(dims []int, nnz int, seed uint64) *Tensor {
	src := xrand.New(seed)
	b := NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.Float64()+0.1)
	}
	return b.Build()
}

func TestBuilderSortsAndLooksUp(t *testing.T) {
	x := small3(t)
	if x.NNZ() != 4 {
		t.Fatalf("NNZ = %d", x.NNZ())
	}
	if got := x.At([]int{1, 2, 0}); got != 3 {
		t.Fatalf("At = %v", got)
	}
	if got := x.At([]int{1, 1, 1}); got != 0 {
		t.Fatalf("At of absent = %v", got)
	}
	// Coordinates must be sorted lexicographically.
	n := x.Order()
	for e := 1; e < x.NNZ(); e++ {
		prev := x.Coords[(e-1)*n : e*n]
		cur := x.Coords[e*n : (e+1)*n]
		less := false
		for m := 0; m < n; m++ {
			if prev[m] != cur[m] {
				less = prev[m] < cur[m]
				break
			}
		}
		if !less {
			t.Fatalf("entries %d,%d out of order: %v %v", e-1, e, prev, cur)
		}
	}
}

func TestBuilderDeduplicatesAndDropsZeros(t *testing.T) {
	b := NewBuilder([]int{2, 2})
	b.Append([]int{0, 1}, 1)
	b.Append([]int{0, 1}, 2)  // dup, summed -> 3
	b.Append([]int{1, 1}, 5)  //
	b.Append([]int{1, 1}, -5) // cancels to zero -> dropped
	b.Append([]int{1, 0}, 0)  // explicit zero -> dropped
	x := b.Build()
	if x.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", x.NNZ())
	}
	if x.At([]int{0, 1}) != 3 {
		t.Fatalf("dedup sum = %v", x.At([]int{0, 1}))
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	b := NewBuilder([]int{2, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Append did not panic")
		}
	}()
	b.Append([]int{2, 0}, 1)
}

func TestNorm(t *testing.T) {
	b := NewBuilder([]int{2, 2})
	b.Append([]int{0, 0}, 3)
	b.Append([]int{1, 1}, 4)
	x := b.Build()
	if x.Norm() != 5 {
		t.Fatalf("Norm = %v", x.Norm())
	}
	if x.NormSq() != 25 {
		t.Fatalf("NormSq = %v", x.NormSq())
	}
}

func TestSliceNNZ(t *testing.T) {
	x := small3(t)
	got := x.SliceNNZ(0)
	want := []int64{2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SliceNNZ(0) = %v", got)
		}
	}
	got = x.SliceNNZ(2)
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("SliceNNZ(2) = %v", got)
	}
	// Slice histograms must sum to nnz for every mode.
	for m := 0; m < x.Order(); m++ {
		var sum int64
		for _, c := range x.SliceNNZ(m) {
			sum += c
		}
		if sum != int64(x.NNZ()) {
			t.Fatalf("mode %d histogram sums to %d, nnz %d", m, sum, x.NNZ())
		}
	}
}

func TestPrefixAndComplementPartition(t *testing.T) {
	x := randomTensor([]int{10, 8, 6}, 200, 1)
	old := []int{7, 5, 4}
	pre := x.Prefix(old)
	comp := x.Complement(old)
	if pre.NNZ()+comp.NNZ() != x.NNZ() {
		t.Fatalf("prefix %d + complement %d != nnz %d", pre.NNZ(), comp.NNZ(), x.NNZ())
	}
	// Every prefix entry is inside old bounds; every complement entry
	// has at least one coordinate in the growth range.
	buf := make([]int, 3)
	for e := 0; e < pre.NNZ(); e++ {
		c := pre.Coord(e, buf)
		for m := range old {
			if c[m] >= old[m] {
				t.Fatalf("prefix entry %v beyond old dims %v", c, old)
			}
		}
	}
	for e := 0; e < comp.NNZ(); e++ {
		c := comp.Coord(e, buf)
		inside := true
		for m := range old {
			if c[m] >= old[m] {
				inside = false
			}
		}
		if inside {
			t.Fatalf("complement entry %v inside old dims %v", c, old)
		}
		if x.At(c) != comp.Val(e) {
			t.Fatalf("complement value mismatch at %v", c)
		}
	}
}

func TestRegionCodes(t *testing.T) {
	x := randomTensor([]int{6, 6, 6}, 150, 2)
	old := []int{4, 3, 5}
	hist := x.RegionNNZ(old)
	if len(hist) != 8 {
		t.Fatalf("region histogram has %d buckets", len(hist))
	}
	var total int64
	for _, h := range hist {
		total += h
	}
	if total != int64(x.NNZ()) {
		t.Fatalf("region histogram sums to %d", total)
	}
	// Region 0 must equal the prefix nnz.
	if hist[0] != int64(x.Prefix(old).NNZ()) {
		t.Fatalf("region 0 count %d != prefix nnz %d", hist[0], x.Prefix(old).NNZ())
	}
	// Spot-check codes against coordinates.
	buf := make([]int, 3)
	for e := 0; e < x.NNZ(); e++ {
		c := x.Coord(e, buf)
		want := 0
		for m := range old {
			if c[m] >= old[m] {
				want |= 1 << m
			}
		}
		if got := x.Region(e, old); got != want {
			t.Fatalf("Region(%v) = %b, want %b", c, got, want)
		}
	}
}

func TestToDenseRoundtrip(t *testing.T) {
	x := small3(t)
	d := x.ToDense()
	if len(d) != 3*4*2 {
		t.Fatalf("dense length %d", len(d))
	}
	// dense offset of [2,3,1] with strides (8, 2, 1)
	if d[2*8+3*2+1] != 2 {
		t.Fatalf("dense value mismatch: %v", d[2*8+3*2+1])
	}
	nonzeros := 0
	for _, v := range d {
		if v != 0 {
			nonzeros++
		}
	}
	if nonzeros != x.NNZ() {
		t.Fatalf("dense nonzeros %d != nnz %d", nonzeros, x.NNZ())
	}
}

func TestEqual(t *testing.T) {
	a := small3(t)
	b := small3(t)
	if !Equal(a, b) {
		t.Fatal("identical tensors not Equal")
	}
	c := randomTensor([]int{3, 4, 2}, 4, 9)
	if Equal(a, c) {
		t.Fatal("different tensors reported Equal")
	}
}

func TestPrefixIdempotent(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		x := randomTensor([]int{8, 8, 8}, 100, uint64(seed)+1)
		full := x.Prefix([]int{8, 8, 8})
		return Equal(x, full)
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceValidation(t *testing.T) {
	x := randomTensor([]int{6, 6, 6}, 80, 3)
	if _, err := NewSequence(x, nil); err == nil {
		t.Fatal("empty steps accepted")
	}
	if _, err := NewSequence(x, [][]int{{4, 4, 4}, {3, 4, 4}}); err == nil {
		t.Fatal("shrinking steps accepted")
	}
	if _, err := NewSequence(x, [][]int{{4, 4, 7}}); err == nil {
		t.Fatal("oversized step accepted")
	}
	if _, err := NewSequence(x, [][]int{{4, 4}}); err == nil {
		t.Fatal("wrong-order step accepted")
	}
	seq, err := NewSequence(x, [][]int{{3, 4, 5}, {6, 6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 2 {
		t.Fatalf("Len = %d", seq.Len())
	}
}

func TestSequenceSnapshotsNest(t *testing.T) {
	x := randomTensor([]int{10, 10, 10}, 300, 4)
	seq, err := NewSequence(x, [][]int{{5, 6, 7}, {8, 8, 9}, {10, 10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	prev := seq.Snapshot(0)
	for i := 1; i < seq.Len(); i++ {
		cur := seq.Snapshot(i)
		if prev.NNZ() > cur.NNZ() {
			t.Fatalf("snapshot %d lost entries", i)
		}
		// The previous snapshot is the prefix of the current one.
		if !Equal(prev, cur.Prefix(seq.Dims(i-1))) {
			t.Fatalf("snapshot %d is not a superset of snapshot %d", i, i-1)
		}
		// Delta + previous = current.
		delta := seq.Delta(i)
		if delta.NNZ()+prev.NNZ() != cur.NNZ() {
			t.Fatalf("delta nnz %d + prev %d != cur %d", delta.NNZ(), prev.NNZ(), cur.NNZ())
		}
		prev = cur
	}
	if seq.Delta(0).NNZ() != seq.Snapshot(0).NNZ() {
		t.Fatal("Delta(0) should be the whole first snapshot")
	}
}

func TestAtDimensionPanic(t *testing.T) {
	x := small3(t)
	defer func() {
		if recover() == nil {
			t.Fatal("At with wrong arity did not panic")
		}
	}()
	x.At([]int{1, 2})
}

func BenchmarkBuild(b *testing.B) {
	src := xrand.New(1)
	const nnz = 100000
	dims := []int{1000, 1000, 200}
	coords := make([][]int, nnz)
	for e := range coords {
		coords[e] = []int{src.Intn(dims[0]), src.Intn(dims[1]), src.Intn(dims[2])}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := NewBuilder(dims)
		for e := range coords {
			bu.Append(coords[e], 1)
		}
		_ = bu.Build()
	}
}

func BenchmarkComplement(b *testing.B) {
	x := randomTensor([]int{500, 500, 100}, 200000, 7)
	old := []int{400, 400, 80}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Complement(old)
	}
}

func TestRegionTensorsPartitionEverything(t *testing.T) {
	// The 2^N region sub-tensors of Fig. 2 partition the tensor: their
	// nnz sums to the whole, region 0 equals the prefix, and the union
	// of the non-zero codes equals the complement.
	x := randomTensor([]int{8, 7, 6}, 200, 21)
	old := []int{6, 5, 4}
	total := 0
	for code := 0; code < 8; code++ {
		r := x.RegionTensor(code, old)
		total += r.NNZ()
		buf := make([]int, 3)
		for e := 0; e < r.NNZ(); e++ {
			c := r.Coord(e, buf)
			want := 0
			for m := range old {
				if c[m] >= old[m] {
					want |= 1 << m
				}
			}
			if want != code {
				t.Fatalf("entry %v in region %b, want %b", c, code, want)
			}
		}
	}
	if total != x.NNZ() {
		t.Fatalf("regions cover %d of %d entries", total, x.NNZ())
	}
	if !Equal(x.RegionTensor(0, old), func() *Tensor {
		// Region 0 has the full dims; rebuild the prefix with them.
		b := NewBuilder(x.Dims)
		p := x.Prefix(old)
		buf := make([]int, 3)
		for e := 0; e < p.NNZ(); e++ {
			b.Append(p.Coord(e, buf), p.Val(e))
		}
		return b.Build()
	}()) {
		t.Fatal("region 0 differs from the prefix")
	}
}

func TestRegionTensorPanicsOnBadCode(t *testing.T) {
	x := randomTensor([]int{4, 4, 4}, 20, 23)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	x.RegionTensor(8, []int{2, 2, 2})
}
