package tensor

import (
	"bytes"
	"strings"
	"testing"
)

func TestBinaryRoundtrip(t *testing.T) {
	x := randomTensor([]int{20, 30, 10}, 500, 11)
	var buf bytes.Buffer
	if err := x.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(x, y) {
		t.Fatal("binary roundtrip changed tensor")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTextRoundtrip(t *testing.T) {
	x := randomTensor([]int{7, 9, 4}, 60, 13)
	var buf bytes.Buffer
	if err := x.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(x, y) {
		t.Fatal("text roundtrip changed tensor")
	}
}

func TestTextFormat(t *testing.T) {
	b := NewBuilder([]int{2, 3})
	b.Append([]int{1, 2}, 1.5)
	var buf bytes.Buffer
	if err := b.Build().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "dims\t2\t3\n1\t2\t1.5\n"
	if got != want {
		t.Fatalf("text output %q, want %q", got, want)
	}
}

func TestTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "shape\t2\t2\n",
		"bad dim":      "dims\t2\tx\n",
		"short line":   "dims\t2\t2\n1\t1\n",
		"bad index":    "dims\t2\t2\na\t1\t1\n",
		"bad value":    "dims\t2\t2\n1\t1\tz\n",
		"out of range": "dims\t2\t2\n5\t1\t1\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted %q", name, in)
		}
	}
}
