package tensor

import "fmt"

// Compile hooks: the primitives a kernel-representation layer needs to
// reorganise a region of this tensor without re-deriving COO internals.
// internal/mttkrp builds its row-grouped views on ModeSort, and
// internal/layout builds its compiled fiber-grouped layouts on ModeSort
// plus the gather helpers, so the two representations can never
// disagree about entry order.

// ModeSort stable-counting-sorts an entry subset by its mode-`mode`
// coordinate. entries lists tensor entry ids; nil means every entry.
// It returns the sorted entry ids and the cumulative group boundaries:
// counts has Dims[mode]+1 elements and the entries of coordinate i are
// order[counts[i]:counts[i+1]].
//
// The sort is stable — entries sharing a coordinate keep their order
// from the input list — which is what lets grouped kernels accumulate
// each output row in exactly the order a flat entry walk would visit
// it, bit for bit.
func (t *Tensor) ModeSort(mode int, entries []int32) (order, counts []int32) {
	if mode < 0 || mode >= t.Order() {
		panic(fmt.Sprintf("tensor: ModeSort mode %d on order-%d tensor", mode, t.Order()))
	}
	n := t.Order()
	nnz := len(entries)
	if entries == nil {
		nnz = t.NNZ()
	}
	coord := func(i int) int32 {
		e := int32(i)
		if entries != nil {
			e = entries[i]
		}
		return t.Coords[int(e)*n+mode]
	}
	counts = make([]int32, t.Dims[mode]+1)
	for i := 0; i < nnz; i++ {
		counts[coord(i)+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	offsets := append([]int32(nil), counts...)
	order = make([]int32, nnz)
	for i := 0; i < nnz; i++ {
		e := int32(i)
		if entries != nil {
			e = entries[i]
		}
		row := coord(i)
		order[offsets[row]] = e
		offsets[row]++
	}
	return order, counts
}

// GatherCoords fills dst (allocating when too short) with the mode
// coordinates of the listed entries, in list order: dst[p] =
// Coords[order[p]*N + mode].
func (t *Tensor) GatherCoords(dst []int32, mode int, order []int32) []int32 {
	if cap(dst) < len(order) {
		dst = make([]int32, len(order))
	}
	dst = dst[:len(order)]
	n := t.Order()
	for p, e := range order {
		dst[p] = t.Coords[int(e)*n+mode]
	}
	return dst
}

// GatherVals fills dst (allocating when too short) with the values of
// the listed entries, in list order.
func (t *Tensor) GatherVals(dst []float64, order []int32) []float64 {
	if cap(dst) < len(order) {
		dst = make([]float64, len(order))
	}
	dst = dst[:len(order)]
	for p, e := range order {
		dst[p] = t.Vals[e]
	}
	return dst
}
