package tensor

import "fmt"

// Sequence is a multi-aspect streaming tensor sequence (Definition 4):
// a full tensor plus a monotone list of per-step mode sizes. Snapshot i
// is the prefix sub-tensor bounded by Steps[i], so every snapshot is a
// sub-tensor of the next, growing in potentially every mode.
type Sequence struct {
	Full  *Tensor
	Steps [][]int // Steps[i][m] is the mode-m size of snapshot i
}

// NewSequence validates that steps are monotone non-decreasing per mode
// and bounded by the full tensor's dims, and returns the sequence.
func NewSequence(full *Tensor, steps [][]int) (*Sequence, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("tensor: sequence needs at least one step")
	}
	n := full.Order()
	prev := make([]int, n)
	for i, st := range steps {
		if len(st) != n {
			return nil, fmt.Errorf("tensor: step %d has %d dims, tensor has order %d", i, len(st), n)
		}
		for m, d := range st {
			if d < prev[m] {
				return nil, fmt.Errorf("tensor: step %d shrinks mode %d (%d < %d)", i, m, d, prev[m])
			}
			if d > full.Dims[m] {
				return nil, fmt.Errorf("tensor: step %d exceeds mode %d size (%d > %d)", i, m, d, full.Dims[m])
			}
		}
		prev = st
	}
	return &Sequence{Full: full, Steps: steps}, nil
}

// Len returns the number of snapshots.
func (s *Sequence) Len() int { return len(s.Steps) }

// Dims returns the mode sizes of snapshot i.
func (s *Sequence) Dims(i int) []int { return s.Steps[i] }

// Snapshot materialises snapshot i as its own tensor.
func (s *Sequence) Snapshot(i int) *Tensor { return s.Full.Prefix(s.Steps[i]) }

// Delta returns the relative complement of snapshot i-1 in snapshot i,
// i.e. the new data that arrived at step i. For i == 0 it is the whole
// first snapshot (previous dims are all zero). The returned tensor has
// snapshot i's dims.
func (s *Sequence) Delta(i int) *Tensor {
	snap := s.Snapshot(i)
	if i == 0 {
		return snap
	}
	return snap.Complement(s.Steps[i-1])
}
