package tensor

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteBinary encodes the tensor in a compact gob stream.
func (t *Tensor) WriteBinary(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t)
}

// ReadBinary decodes a tensor previously written by WriteBinary.
func ReadBinary(r io.Reader) (*Tensor, error) {
	var t Tensor
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("tensor: decode binary: %w", err)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

func (t *Tensor) validate() error {
	n := len(t.Dims)
	if n == 0 {
		return fmt.Errorf("tensor: decoded tensor has no modes")
	}
	if len(t.Coords) != len(t.Vals)*n {
		return fmt.Errorf("tensor: decoded tensor has %d coords for %d values of order %d", len(t.Coords), len(t.Vals), n)
	}
	for e := 0; e < len(t.Vals); e++ {
		for m := 0; m < n; m++ {
			c := int(t.Coords[e*n+m])
			if c < 0 || c >= t.Dims[m] {
				return fmt.Errorf("tensor: decoded coordinate %d out of range in mode %d", c, m)
			}
		}
	}
	return nil
}

// WriteText emits a human-readable TSV representation: a header line
// "dims\td1\t...\tdN" followed by one "i1\t...\tiN\tvalue" line per
// non-zero entry. The format round-trips through ReadText.
func (t *Tensor) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "dims")
	for _, d := range t.Dims {
		fmt.Fprintf(bw, "\t%d", d)
	}
	fmt.Fprintln(bw)
	n := t.Order()
	for e := 0; e < t.NNZ(); e++ {
		for m := 0; m < n; m++ {
			fmt.Fprintf(bw, "%d\t", t.Coords[e*n+m])
		}
		fmt.Fprintf(bw, "%g\n", t.Vals[e])
	}
	return bw.Flush()
}

// ReadText parses the TSV format written by WriteText.
func ReadText(r io.Reader) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("tensor: empty text input")
	}
	header := strings.Split(strings.TrimRight(sc.Text(), "\n"), "\t")
	if len(header) < 2 || header[0] != "dims" {
		return nil, fmt.Errorf("tensor: malformed header %q", sc.Text())
	}
	dims := make([]int, len(header)-1)
	for i, f := range header[1:] {
		d, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("tensor: bad dim %q: %w", f, err)
		}
		dims[i] = d
	}
	b := NewBuilder(dims)
	idx := make([]int, len(dims))
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != len(dims)+1 {
			return nil, fmt.Errorf("tensor: line %d has %d fields, want %d", line, len(fields), len(dims)+1)
		}
		for m := range dims {
			v, err := strconv.Atoi(fields[m])
			if err != nil {
				return nil, fmt.Errorf("tensor: line %d index %q: %w", line, fields[m], err)
			}
			if v < 0 || v >= dims[m] {
				return nil, fmt.Errorf("tensor: line %d coordinate %d out of range [0, %d) in mode %d", line, v, dims[m], m)
			}
			idx[m] = v
		}
		val, err := strconv.ParseFloat(fields[len(dims)], 64)
		if err != nil {
			return nil, fmt.Errorf("tensor: line %d value %q: %w", line, fields[len(dims)], err)
		}
		b.Append(idx, val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tensor: scan: %w", err)
	}
	return b.Build(), nil
}
