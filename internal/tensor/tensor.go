// Package tensor implements sparse tensors of arbitrary order in
// coordinate (COO) format, together with the operations the
// multi-aspect streaming setting needs: prefix sub-tensors, relative
// complements of consecutive snapshots, binary region classification
// (the 2^N sub-tensor tuples of the paper's Fig. 2), and per-mode slice
// histograms that drive the GTP/MTP partitioners.
//
// Coordinates are stored flat as int32 (mode sizes up to 2^31-1, far
// beyond the paper's 1.2e7) so a 3rd-order entry costs 20 bytes.
package tensor

import (
	"fmt"
	"math"
	"sort"
)

// Tensor is an immutable sparse tensor in sorted coordinate format.
// Entries are lexicographically sorted by coordinate and deduplicated.
// Build one with a Builder. Exported fields support encoding/gob.
type Tensor struct {
	Dims   []int     // size of each mode; len(Dims) is the order
	Coords []int32   // flat coordinates, entry e mode m at Coords[e*N+m]
	Vals   []float64 // entry values; len(Vals)*len(Dims) == len(Coords)
}

// Order returns the number of modes N.
func (t *Tensor) Order() int { return len(t.Dims) }

// NNZ returns the number of stored non-zero entries.
func (t *Tensor) NNZ() int { return len(t.Vals) }

// Coord writes entry e's coordinates into buf (allocating when buf is
// too short) and returns it.
func (t *Tensor) Coord(e int, buf []int) []int {
	n := t.Order()
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	base := e * n
	for m := 0; m < n; m++ {
		buf[m] = int(t.Coords[base+m])
	}
	return buf
}

// Val returns entry e's value.
func (t *Tensor) Val(e int) float64 { return t.Vals[e] }

// At returns the value at idx, or 0 when absent, by binary search over
// the sorted coordinates. Intended for tests and small tensors.
func (t *Tensor) At(idx []int) float64 {
	if len(idx) != t.Order() {
		panic(fmt.Sprintf("tensor: At with %d indices on order-%d tensor", len(idx), t.Order()))
	}
	n := t.Order()
	lo, hi := 0, t.NNZ()
	for lo < hi {
		mid := (lo + hi) / 2
		if compareCoords(t.Coords[mid*n:mid*n+n], idx) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < t.NNZ() && compareCoords(t.Coords[lo*n:lo*n+n], idx) == 0 {
		return t.Vals[lo]
	}
	return 0
}

func compareCoords(c []int32, idx []int) int {
	for m, v := range c {
		switch {
		case int(v) < idx[m]:
			return -1
		case int(v) > idx[m]:
			return 1
		}
	}
	return 0
}

// Norm returns the Frobenius norm sqrt(Σ x²) over the stored entries.
func (t *Tensor) Norm() float64 { return math.Sqrt(t.NormSq()) }

// NormSq returns the squared Frobenius norm Σ x².
func (t *Tensor) NormSq() float64 {
	s := 0.0
	for _, v := range t.Vals {
		s += v * v
	}
	return s
}

// SliceNNZ returns the number of non-zero entries in every slice of the
// given mode: out[i] = nnz(X[..., i, ...]). This is the a_i^(n)
// statistic both partitioning heuristics consume (Algorithms 2 and 3).
func (t *Tensor) SliceNNZ(mode int) []int64 {
	if mode < 0 || mode >= t.Order() {
		panic(fmt.Sprintf("tensor: SliceNNZ of mode %d on order-%d tensor", mode, t.Order()))
	}
	out := make([]int64, t.Dims[mode])
	n := t.Order()
	for e := 0; e < t.NNZ(); e++ {
		out[t.Coords[e*n+mode]]++
	}
	return out
}

// Prefix returns the sub-tensor with every coordinate below dims[m] in
// each mode m — the snapshot X^(T-1) as a prefix of X^(T) in the
// multi-aspect streaming model (Definition 4). dims must not exceed the
// tensor's own dims.
func (t *Tensor) Prefix(dims []int) *Tensor {
	t.checkPrefixDims(dims)
	n := t.Order()
	b := NewBuilder(dims)
	buf := make([]int, n)
	for e := 0; e < t.NNZ(); e++ {
		if t.inPrefix(e, dims) {
			b.Append(t.Coord(e, buf), t.Vals[e])
		}
	}
	return b.Build()
}

// Complement returns the relative complement X \ X~ with respect to the
// prefix snapshot of the given old dims: every entry having at least
// one coordinate at or beyond oldDims[m]. The result keeps the full
// tensor's dims; its region codes (see Region) are all non-zero.
func (t *Tensor) Complement(oldDims []int) *Tensor {
	t.checkPrefixDims(oldDims)
	n := t.Order()
	b := NewBuilder(t.Dims)
	buf := make([]int, n)
	for e := 0; e < t.NNZ(); e++ {
		if !t.inPrefix(e, oldDims) {
			b.Append(t.Coord(e, buf), t.Vals[e])
		}
	}
	return b.Build()
}

func (t *Tensor) checkPrefixDims(dims []int) {
	if len(dims) != t.Order() {
		panic(fmt.Sprintf("tensor: %d prefix dims on order-%d tensor", len(dims), t.Order()))
	}
	for m, d := range dims {
		if d < 0 || d > t.Dims[m] {
			panic(fmt.Sprintf("tensor: prefix dim %d out of range [0, %d] in mode %d", d, t.Dims[m], m))
		}
	}
}

func (t *Tensor) inPrefix(e int, dims []int) bool {
	base := e * t.Order()
	for m, d := range dims {
		if int(t.Coords[base+m]) >= d {
			return false
		}
	}
	return true
}

// Region returns the binary-tuple region code of entry e with respect
// to oldDims: bit m is set when the entry's mode-m coordinate falls in
// the growth range [oldDims[m], Dims[m]). Code 0 is the old snapshot
// region X^(0,...,0); the paper's Θ\{0} are the codes 1..2^N-1.
func (t *Tensor) Region(e int, oldDims []int) int {
	base := e * t.Order()
	code := 0
	for m, d := range oldDims {
		if int(t.Coords[base+m]) >= d {
			code |= 1 << m
		}
	}
	return code
}

// RegionTensor extracts the sub-tensor of one binary-tuple region
// (Fig. 2): all entries whose region code equals code. The result keeps
// the full tensor's dims. Code 0 is the old snapshot X^(0,…,0);
// non-zero codes partition the relative complement.
func (t *Tensor) RegionTensor(code int, oldDims []int) *Tensor {
	t.checkPrefixDims(oldDims)
	if code < 0 || code >= 1<<t.Order() {
		panic(fmt.Sprintf("tensor: region code %d for order %d", code, t.Order()))
	}
	b := NewBuilder(t.Dims)
	buf := make([]int, t.Order())
	for e := 0; e < t.NNZ(); e++ {
		if t.Region(e, oldDims) == code {
			b.Append(t.Coord(e, buf), t.Vals[e])
		}
	}
	return b.Build()
}

// RegionNNZ returns a histogram of entry counts per region code with
// respect to oldDims. The slice has 2^N entries.
func (t *Tensor) RegionNNZ(oldDims []int) []int64 {
	t.checkPrefixDims(oldDims)
	out := make([]int64, 1<<t.Order())
	for e := 0; e < t.NNZ(); e++ {
		out[t.Region(e, oldDims)]++
	}
	return out
}

// ToDense expands the tensor into a dense row-major array (last mode
// fastest). Intended for small test tensors only; it panics when the
// dense size would exceed 1<<26 elements.
func (t *Tensor) ToDense() []float64 {
	size := 1
	for _, d := range t.Dims {
		size *= d
	}
	if size > 1<<26 {
		panic("tensor: ToDense on a tensor too large to densify")
	}
	out := make([]float64, size)
	n := t.Order()
	for e := 0; e < t.NNZ(); e++ {
		off := 0
		for m := 0; m < n; m++ {
			off = off*t.Dims[m] + int(t.Coords[e*n+m])
		}
		out[off] = t.Vals[e]
	}
	return out
}

// Equal reports whether two tensors have identical dims, coordinates,
// and values (exact float comparison; both sides must be Built so the
// coordinate order is canonical).
func Equal(a, b *Tensor) bool {
	if a.Order() != b.Order() || a.NNZ() != b.NNZ() {
		return false
	}
	for m := range a.Dims {
		if a.Dims[m] != b.Dims[m] {
			return false
		}
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			return false
		}
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			return false
		}
	}
	return true
}

// Builder accumulates coordinate/value pairs and produces a canonical
// sorted, deduplicated Tensor. Duplicate coordinates are summed, and
// entries whose accumulated value is exactly zero are dropped.
type Builder struct {
	dims   []int
	coords []int32
	vals   []float64
}

// NewBuilder returns a Builder for a tensor with the given mode sizes.
func NewBuilder(dims []int) *Builder {
	if len(dims) == 0 {
		panic("tensor: NewBuilder with no modes")
	}
	for m, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dim %d in mode %d", d, m))
		}
	}
	return &Builder{dims: append([]int(nil), dims...)}
}

// Append records one entry. It panics on out-of-range coordinates.
func (b *Builder) Append(idx []int, v float64) {
	if len(idx) != len(b.dims) {
		panic(fmt.Sprintf("tensor: Append with %d indices on order-%d builder", len(idx), len(b.dims)))
	}
	for m, i := range idx {
		if i < 0 || i >= b.dims[m] {
			panic(fmt.Sprintf("tensor: coordinate %d out of range [0, %d) in mode %d", i, b.dims[m], m))
		}
		b.coords = append(b.coords, int32(i))
	}
	b.vals = append(b.vals, v)
}

// Len returns the number of entries appended so far (before dedup).
func (b *Builder) Len() int { return len(b.vals) }

// Build sorts, deduplicates (summing values), drops exact zeros, and
// returns the canonical Tensor. The Builder must not be reused.
func (b *Builder) Build() *Tensor {
	n := len(b.dims)
	nnz := len(b.vals)
	perm := make([]int, nnz)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(x, y int) bool {
		cx := b.coords[perm[x]*n : perm[x]*n+n]
		cy := b.coords[perm[y]*n : perm[y]*n+n]
		for m := 0; m < n; m++ {
			if cx[m] != cy[m] {
				return cx[m] < cy[m]
			}
		}
		return false
	})
	t := &Tensor{Dims: b.dims}
	for _, e := range perm {
		c := b.coords[e*n : e*n+n]
		if len(t.Vals) > 0 && sameCoords(t.Coords[len(t.Coords)-n:], c) {
			t.Vals[len(t.Vals)-1] += b.vals[e]
			continue
		}
		t.Coords = append(t.Coords, c...)
		t.Vals = append(t.Vals, b.vals[e])
	}
	// Drop entries that cancelled to exactly zero.
	w := 0
	for e := 0; e < len(t.Vals); e++ {
		if t.Vals[e] == 0 {
			continue
		}
		if w != e {
			copy(t.Coords[w*n:w*n+n], t.Coords[e*n:e*n+n])
			t.Vals[w] = t.Vals[e]
		}
		w++
	}
	t.Coords = t.Coords[:w*n]
	t.Vals = t.Vals[:w]
	return t
}

func sameCoords(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
