package completion

import (
	"fmt"
	"math"
	"sync"

	"dismastd/internal/cluster"
	"dismastd/internal/dplan"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/par"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Distributed completion: the same weighted ALS run on the cluster
// runtime, with the observations distributed per mode by GTP/MTP
// exactly like DisMASTD distributes the complement. Completion
// parallelises even more cleanly than decomposition — each factor row's
// R×R normal system is built solely from that row's own observations,
// which live with the row's owner by construction — so the only
// communication is the post-update factor-row exchange and the RMSE
// reduction; there is no Gram all-reduce at all.

// DistributedOptions extends Options with the cluster shape.
type DistributedOptions struct {
	Options
	Workers int              // cluster size (required, > 0)
	Parts   int              // partitions per mode; default Workers
	Method  partition.Method // GTP or MTP
}

// DistributedResult pairs the fit with the runtime's measurements.
type DistributedResult struct {
	Result
	Cluster *cluster.RunStats
}

// DecomposeDistributed fits x's observed entries on an in-process
// cluster. The result matches the centralized Decompose bit for bit
// (given the same options): no cross-row reductions enter the factor
// math, so distribution does not even reorder floating-point sums.
func DecomposeDistributed(x *tensor.Tensor, o DistributedOptions) (*DistributedResult, error) {
	opts, err := o.Options.withDefaults()
	if err != nil {
		return nil, err
	}
	if o.Workers <= 0 {
		return nil, fmt.Errorf("completion: workers must be positive, got %d", o.Workers)
	}
	if x.NNZ() == 0 {
		return nil, ErrNoObservations
	}
	src := xrand.New(opts.Seed)
	init := make([]*mat.Dense, x.Order())
	for m, d := range x.Dims {
		init[m] = mat.RandomUniform(d, opts.Rank, src)
	}
	plan := dplan.Build(x, o.Workers, o.Parts, o.Method)

	job := &distJob{opts: opts, plan: plan, init: init}
	cl := cluster.NewLocal(o.Workers)
	stats, err := cl.Run(job.runWorker)
	if err != nil {
		return nil, err
	}
	if job.result == nil {
		return nil, fmt.Errorf("completion: run completed without a result")
	}
	return &DistributedResult{
		Result:  Result{Factors: job.result, Iters: job.iters, RMSE: job.rmse, RMSETrace: job.trace},
		Cluster: stats,
	}, nil
}

type distJob struct {
	opts Options
	plan *dplan.Plan
	init []*mat.Dense

	mu     sync.Mutex
	result []*mat.Dense
	iters  int
	rmse   float64
	trace  []float64
}

func (j *distJob) runWorker(w *cluster.Worker) error {
	x := j.plan.Tensor
	n := x.Order()
	r := j.opts.Rank
	me := w.Rank()

	full := make([]*mat.Dense, n)
	for m := range full {
		full[m] = j.init[m].Clone()
	}

	// Group this worker's per-mode entries by row once; the pattern is
	// fixed across sweeps, so the kernel is compiled once and amortised
	// over them. Entry order inside a row stays ascending (the mode
	// sort is stable over the ascending entry list), so the
	// accumulation matches the centralized kernel exactly. Every entry
	// in a rank's mode-m list lies in a mode-m slice the rank owns, so
	// the kernel's groups are exactly the rank's observed owned rows.
	kernels := make([]mttkrp.Kernel, n)
	for m := 0; m < n; m++ {
		kernels[m] = mttkrp.NewKernelOf(x, m, j.plan.EntryLists[me][m], j.opts.Layout)
	}

	// Per-worker sweep scratch, allocated once. Each worker runs its
	// owned-row solves on its own pool; rows are fully independent (one
	// normal system each), so the intra-worker parallelism neither
	// reorders any floating-point sum nor shares a buffer across chunks.
	pool := par.New(j.opts.Threads)
	defer pool.Close()
	wss := mat.NewWorkspaceSet(pool.Threads())
	rt := &distRowsTask{j: j, full: full, wss: wss, rank: r}
	// Per-mode work is fixed across sweeps; tally it once so the
	// parallel chunks stay free of shared counters.
	workPerMode := make([]float64, n)
	for m := 0; m < n; m++ {
		for g := 0; g < kernels[m].NumRows(); g++ {
			p0, p1 := kernels[m].GroupRange(g)
			workPerMode[m] += float64(p1-p0)*float64(n+r)*float64(r) + float64(r*r*r)
		}
	}
	exch := dplan.NewExchanger(w, j.plan)
	tmp := make([]float64, r)
	prev := math.Inf(1)
	trace := make([]float64, 0, j.opts.MaxIters)
	iters := 0
	for sweep := 0; sweep < j.opts.MaxIters; sweep++ {
		for m := 0; m < n; m++ {
			rt.mode, rt.kernel = m, kernels[m]
			pool.ForChunks(kernels[m].ChunkStarts(pool.Threads()), rt)
			w.AddWork(workPerMode[m])
			if err := exch.Exchange(m, full[m], false); err != nil {
				return err
			}
		}
		// RMSE over all observations: each worker owns the mode-0
		// entries of its mode-0 slices, a disjoint cover.
		var local float64
		for _, e := range j.plan.EntryLists[me][0] {
			base := int(e) * n
			for c := range tmp {
				tmp[c] = 1
			}
			for k := 0; k < n; k++ {
				rowv := full[k].Row(int(x.Coords[base+k]))
				for c := range tmp {
					tmp[c] *= rowv[c]
				}
			}
			pred := 0.0
			for _, v := range tmp {
				pred += v
			}
			d := x.Vals[e] - pred
			local += d * d
		}
		total, err := w.ReduceScalarSum(local)
		if err != nil {
			return err
		}
		rmse := math.Sqrt(total / float64(x.NNZ()))
		iters = sweep + 1
		trace = append(trace, rmse)
		stop := relChange(prev, rmse) < j.opts.Tol
		prev = rmse
		if stop {
			break
		}
	}

	// Gather owned rows at rank 0.
	var result []*mat.Dense
	if me == 0 {
		result = make([]*mat.Dense, n)
	}
	maxOwned := 0
	for m := 0; m < n; m++ {
		if len(j.plan.OwnedSlices[m][me]) > maxOwned {
			maxOwned = len(j.plan.OwnedSlices[m][me])
		}
	}
	buf := make([]float64, 0, maxOwned*r)
	for m := 0; m < n; m++ {
		owned := j.plan.OwnedSlices[m][me]
		buf = buf[:0]
		for _, s := range owned {
			buf = append(buf, full[m].Row(int(s))...)
		}
		parts, err := w.GatherBytes(0, cluster.EncodeFloat64s(buf))
		if err != nil {
			return err
		}
		if me != 0 {
			continue
		}
		out := mat.New(full[m].Rows, r)
		for rank, payload := range parts {
			vals, err := cluster.DecodeFloat64s(payload)
			if err != nil {
				return err
			}
			rows := j.plan.OwnedSlices[m][rank]
			if len(vals) != len(rows)*r {
				return fmt.Errorf("completion: gather mode %d rank %d: %d values for %d rows", m, rank, len(vals), len(rows))
			}
			for i, s := range rows {
				copy(out.Row(int(s)), vals[i*r:(i+1)*r])
			}
		}
		result[m] = out
	}
	if me == 0 {
		j.mu.Lock()
		j.result = result
		j.iters = iters
		j.trace = trace
		j.rmse = trace[len(trace)-1]
		j.mu.Unlock()
	}
	return nil
}

// distRowsTask is the par.Body for a worker's owned-row sweep of one
// mode: kernel row groups [g0, g1), each solved with scratch from the
// running thread's workspace via the shared solveGroups solver.
type distRowsTask struct {
	j      *distJob
	full   []*mat.Dense
	kernel mttkrp.Kernel
	wss    *mat.WorkspaceSet
	rank   int
	mode   int
}

func (t *distRowsTask) RunChunk(g0, g1, tid int) {
	ws := t.wss.At(tid)
	mark := ws.Mark()
	h := ws.TakeVec(t.rank)
	sys := ws.Take(t.rank, t.rank)
	rhs := ws.Take(t.rank, 1)
	sol := ws.Take(t.rank, 1)
	solveGroups(t.kernel, t.full, t.mode, t.j.opts.Lambda, g0, g1, h, sys, rhs, sol, ws)
	ws.Release(mark)
}
