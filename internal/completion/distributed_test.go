package completion

import (
	"math"
	"testing"

	"dismastd/internal/mat"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
)

func TestDistributedMatchesCentralizedExactly(t *testing.T) {
	// Completion has no cross-row reductions, so the distributed run
	// must reproduce the centralized factors bit for bit.
	_, train, _ := observedSplit([]int{18, 15, 12}, 3, 900, 1, 31)
	opts := Options{Rank: 3, MaxIters: 6, Tol: 0, Lambda: 1e-4, Seed: 33}
	want, err := Decompose(train, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []partition.Method{partition.GTPMethod, partition.MTPMethod} {
		for _, workers := range []int{1, 4} {
			got, err := DecomposeDistributed(train, DistributedOptions{
				Options: opts, Workers: workers, Method: method,
			})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", method, workers, err)
			}
			for m := range want.Factors {
				if d := mat.MaxAbsDiff(got.Factors[m], want.Factors[m]); d != 0 {
					t.Fatalf("%v workers=%d mode %d: differs by %v (expected bitwise equality)", method, workers, m, d)
				}
			}
			if math.Abs(got.RMSE-want.RMSE) > 1e-12*(1+want.RMSE) {
				t.Fatalf("%v workers=%d: RMSE %v vs %v", method, workers, got.RMSE, want.RMSE)
			}
			if got.Iters != want.Iters {
				t.Fatalf("%v workers=%d: iters %d vs %d", method, workers, got.Iters, want.Iters)
			}
		}
	}
}

func TestDistributedNoGramTraffic(t *testing.T) {
	// The only traffic is row exchange + scalar RMSE reductions; the
	// per-step volume must not scale with nnz (Theorem-4-like property,
	// even stronger here since there is no MNR² term).
	dims := []int{40, 40, 40}
	_, small, _ := observedSplit(dims, 3, 2000, 1, 35)
	_, big, _ := observedSplit(dims, 3, 8000, 1, 35)
	traffic := func(x *tensor.Tensor) int64 {
		res, err := DecomposeDistributed(x, DistributedOptions{
			Options: Options{Rank: 3, MaxIters: 3, Tol: 0, Seed: 37},
			Workers: 4, Method: partition.MTPMethod,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cluster.TotalBytes()
	}
	ts, tb := traffic(small), traffic(big)
	if ratio := float64(tb) / float64(ts); ratio > 2.5 {
		t.Fatalf("4x observations grew traffic %.2fx", ratio)
	}
}

func TestDistributedRecovers(t *testing.T) {
	_, train, held := observedSplit([]int{14, 14, 14}, 2, 900, 150, 39)
	res, err := DecomposeDistributed(train, DistributedOptions{
		Options: Options{Rank: 2, MaxIters: 120, Lambda: 1e-6, Seed: 41},
		Workers: 3, Method: partition.GTPMethod,
	})
	if err != nil {
		t.Fatal(err)
	}
	scale := held.Norm() / math.Sqrt(float64(held.NNZ()))
	if got := RMSE(held, res.Factors); got > 0.1*scale {
		t.Fatalf("distributed completion held-out RMSE %v (scale %v)", got, scale)
	}
}

func TestDistributedValidation(t *testing.T) {
	_, train, _ := observedSplit([]int{6, 6, 6}, 2, 50, 1, 43)
	if _, err := DecomposeDistributed(train, DistributedOptions{Options: Options{Rank: 2}, Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := DecomposeDistributed(train, DistributedOptions{Options: Options{Rank: 0}, Workers: 2}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	empty := tensor.NewBuilder([]int{3, 3}).Build()
	if _, err := DecomposeDistributed(empty, DistributedOptions{Options: Options{Rank: 2}, Workers: 2}); err == nil {
		t.Fatal("empty tensor accepted")
	}
}
