// Package completion implements CP tensor *completion*: fitting the
// Kruskal model to the observed entries only, treating everything else
// as missing rather than zero. This is the setting of the paper's
// motivating recommendation example (Section I: predicted ratings are
// "missing entries of data tensors that could be complemented by the
// latent representations") and of MAST, the centralized multi-aspect
// streaming predecessor DisMASTD builds on.
//
// Plain CP-ALS (internal/cp) minimises the error over the *full* dense
// tensor, so unobserved cells act as hard zeros and drag predictions
// toward zero. Completion minimises
//
//	Σ_{c ∈ Ω} (X[c] − Y[c])² + λ Σ_k ‖A_k‖_F²
//
// over the observation set Ω, which requires a separate R×R normal
// system per factor row (the rows no longer share a denominator):
//
//	(Σ_{e ∈ Ω, c_n=i} h_e h_eᵀ + λI) · A_n[i,:]ᵀ = Σ_e X[e]·h_e,
//	h_e = ∗_{k≠n} A_k[c_k,:]
//
// solved with the same Cholesky machinery as the rest of the library.
// StreamStep extends the solver to multi-aspect streaming snapshots by
// warm-starting from the previous factors.
package completion

import (
	"errors"
	"fmt"
	"math"

	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/par"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Options controls a completion run.
type Options struct {
	Rank     int     // R (required, > 0)
	MaxIters int     // ALS sweeps; default 30
	Tol      float64 // stop when relative RMSE change falls below Tol; default 1e-6
	Lambda   float64 // ridge regulariser λ; default 1e-3
	Seed     uint64  // initialisation seed; default 1

	// Threads sizes the shared-memory pool the sweep runs on (see
	// internal/par). 0 or 1 means sequential. Each factor row's normal
	// system is built and solved by exactly one chunk, so results are
	// bitwise identical at every value.
	Threads int

	// Layout selects the kernel representation the row sweeps enumerate
	// (see internal/layout): COO (default) or Compiled. Each row's
	// observations are visited in the same order under either, so the
	// fit is bitwise identical.
	Layout layout.Kind
}

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if opts.Rank <= 0 {
		return opts, fmt.Errorf("completion: rank must be positive, got %d", opts.Rank)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 30
	}
	if opts.Tol < 0 {
		return opts, fmt.Errorf("completion: negative tolerance %v", opts.Tol)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-6
	}
	if opts.Lambda < 0 {
		return opts, fmt.Errorf("completion: negative lambda %v", opts.Lambda)
	}
	if opts.Lambda == 0 {
		opts.Lambda = 1e-3
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Threads < 0 {
		return opts, fmt.Errorf("completion: negative thread count %d", opts.Threads)
	}
	if opts.Threads == 0 {
		opts.Threads = 1
	}
	return opts, nil
}

// Result reports a completion run.
type Result struct {
	Factors   []*mat.Dense
	Iters     int
	RMSE      float64 // root mean squared error over the observed entries
	RMSETrace []float64
}

// ErrNoObservations reports completion of a tensor without entries.
var ErrNoObservations = errors.New("completion: tensor has no observed entries")

// Decompose fits the model to x's observed entries from a random start.
func Decompose(x *tensor.Tensor, o Options) (*Result, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	src := xrand.New(opts.Seed)
	factors := make([]*mat.Dense, x.Order())
	for m, d := range x.Dims {
		factors[m] = mat.RandomUniform(d, opts.Rank, src)
	}
	return DecomposeFrom(x, factors, opts)
}

// DecomposeFrom fits the model starting from the given factors (updated
// in place). Used for warm starts and by StreamStep.
func DecomposeFrom(x *tensor.Tensor, factors []*mat.Dense, o Options) (*Result, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if x.NNZ() == 0 {
		return nil, ErrNoObservations
	}
	if len(factors) != x.Order() {
		return nil, fmt.Errorf("completion: %d factors for order-%d tensor", len(factors), x.Order())
	}
	for m, f := range factors {
		if f.Rows != x.Dims[m] || f.Cols != opts.Rank {
			return nil, fmt.Errorf("completion: factor %d is %dx%d, want %dx%d", m, f.Rows, f.Cols, x.Dims[m], opts.Rank)
		}
	}

	n := x.Order()
	r := opts.Rank
	kernels := make([]mttkrp.Kernel, n)
	for m := 0; m < n; m++ {
		kernels[m] = mttkrp.NewKernel(x, m, opts.Layout)
	}

	// All sweep scratch lives in per-thread workspaces: each chunk of
	// row groups checks out its own normal system, solution, and
	// Khatri-Rao row, so steady-state iterations allocate nothing and
	// chunks never share a buffer. Groups are distributed nnz-balanced
	// across the pool; a row's system is built and solved entirely by
	// one chunk, so the fit is bitwise thread-count independent.
	pool := par.New(opts.Threads)
	defer pool.Close()
	wss := mat.NewWorkspaceSet(pool.Threads())
	task := &modeRowsTask{factors: factors, lambda: opts.Lambda, rank: r, wss: wss}
	res := &Result{Factors: factors, RMSETrace: make([]float64, 0, opts.MaxIters)}
	prev := math.Inf(1)
	tmp := make([]float64, r)
	for it := 0; it < opts.MaxIters; it++ {
		for m := 0; m < n; m++ {
			task.kernel, task.mode = kernels[m], m
			pool.ForChunks(kernels[m].ChunkStarts(pool.Threads()), task)
		}
		res.Iters = it + 1
		res.RMSE = rmseScratch(x, factors, tmp)
		res.RMSETrace = append(res.RMSETrace, res.RMSE)
		if relChange(prev, res.RMSE) < opts.Tol {
			break
		}
		prev = res.RMSE
	}
	return res, nil
}

// modeRowsTask is the par.Body for one mode's sweep: row groups
// [g0, g1) of the kernel, each solved with scratch checked out from
// the running thread's workspace.
type modeRowsTask struct {
	kernel  mttkrp.Kernel
	factors []*mat.Dense
	mode    int
	lambda  float64
	rank    int
	wss     *mat.WorkspaceSet
}

func (t *modeRowsTask) RunChunk(g0, g1, tid int) {
	ws := t.wss.At(tid)
	mark := ws.Mark()
	h := ws.TakeVec(t.rank)
	sys := ws.Take(t.rank, t.rank)
	rhs := ws.Take(t.rank, 1)
	sol := ws.Take(t.rank, 1)
	solveGroups(t.kernel, t.factors, t.mode, t.lambda, g0, g1, h, sys, rhs, sol, ws)
	ws.Release(mark)
}

// solveGroups solves the per-row regularised normal equations for the
// kernel's row groups [g0, g1), reading observations through the
// Kernel interface so both representations (and both the centralized
// and distributed drivers) share one solver. h, sys, rhs, sol are
// scratch buffers sized R, RxR, Rx1, Rx1; ws supplies the solver
// scratch. Each group's observations are visited in position order —
// the stable order both kernels preserve — so the fit is bitwise
// identical across representations and thread counts.
func solveGroups(kern mttkrp.Kernel, factors []*mat.Dense, mode int, lambda float64, g0, g1 int, h []float64, sys, rhs, sol *mat.Dense, ws *mat.Workspace) {
	n := len(factors)
	r := len(h)
	for g := g0; g < g1; g++ {
		sys.Zero()
		rhs.Zero()
		p0, p1 := kern.GroupRange(g)
		for p := p0; p < p1; p++ {
			for c := range h {
				h[c] = 1
			}
			for k := 0; k < n; k++ {
				if k == mode {
					continue
				}
				row := factors[k].Row(int(kern.EntryCoord(p, k)))
				for c := range h {
					h[c] *= row[c]
				}
			}
			v := kern.EntryVal(p)
			for i, hi := range h {
				if hi == 0 {
					continue
				}
				srow := sys.Row(i)
				for j, hj := range h {
					srow[j] += hi * hj
				}
				rhs.Data[i] += v * hi
			}
		}
		for i := 0; i < r; i++ {
			sys.Set(i, i, sys.At(i, i)+lambda)
		}
		if err := mat.SolveSPDInto(sol, sys, rhs, ws); err != nil {
			// Extremely ill-conditioned row (e.g. duplicate colinear
			// observations): fall back to a stronger ridge.
			for i := 0; i < r; i++ {
				sys.Set(i, i, sys.At(i, i)+1e-6+lambda*10)
			}
			mark := ws.Mark()
			rt := ws.Take(1, r)
			mat.TransposeInto(rt, rhs)
			mat.SolveRightRidgeInto(rt, rt, sys, ws)
			mat.TransposeInto(sol, rt)
			ws.Release(mark)
		}
		copy(factors[mode].Row(int(kern.GroupRow(g))), sol.Data)
	}
	// Rows with no observations have no group and keep their current
	// values, pinned only by the regulariser's pull in subsequent
	// predictions.
}

// RMSE returns the root mean squared prediction error over x's
// observed entries.
func RMSE(x *tensor.Tensor, factors []*mat.Dense) float64 {
	return rmseScratch(x, factors, make([]float64, factors[0].Cols))
}

func rmseScratch(x *tensor.Tensor, factors []*mat.Dense, tmp []float64) float64 {
	if x.NNZ() == 0 {
		return 0
	}
	n := x.Order()
	var sum float64
	for e := 0; e < x.NNZ(); e++ {
		base := e * n
		for c := range tmp {
			tmp[c] = 1
		}
		for k := 0; k < n; k++ {
			row := factors[k].Row(int(x.Coords[base+k]))
			for c := range tmp {
				tmp[c] *= row[c]
			}
		}
		pred := 0.0
		for _, v := range tmp {
			pred += v
		}
		d := x.Vals[e] - pred
		sum += d * d
	}
	return math.Sqrt(sum / float64(x.NNZ()))
}

// StreamStep advances a completion model along a multi-aspect stream:
// the previous factors are extended with seeded random rows for the
// growth ranges and refined over the new snapshot's observations by
// warm-started weighted ALS. prevFactors is not modified.
func StreamStep(prevFactors []*mat.Dense, snapshot *tensor.Tensor, o Options) (*Result, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(prevFactors) != snapshot.Order() {
		return nil, fmt.Errorf("completion: %d previous factors for order-%d snapshot", len(prevFactors), snapshot.Order())
	}
	src := xrand.New(opts.Seed)
	factors := make([]*mat.Dense, snapshot.Order())
	for m, f := range prevFactors {
		if f.Cols != opts.Rank {
			return nil, fmt.Errorf("completion: previous factor %d has rank %d, want %d", m, f.Cols, opts.Rank)
		}
		grow := snapshot.Dims[m] - f.Rows
		if grow < 0 {
			return nil, fmt.Errorf("completion: mode %d shrank %d -> %d", m, f.Rows, snapshot.Dims[m])
		}
		factors[m] = mat.StackRows(f, mat.RandomUniform(grow, opts.Rank, src))
	}
	return DecomposeFrom(snapshot, factors, opts)
}

func relChange(prev, cur float64) float64 {
	if math.IsInf(prev, 1) {
		return math.Inf(1)
	}
	return math.Abs(prev-cur) / math.Max(prev, 1e-12)
}
