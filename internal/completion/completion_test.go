package completion

import (
	"math"
	"testing"

	"dismastd/internal/cp"
	"dismastd/internal/mat"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// observedSplit samples a rank-r ground-truth model over dims and
// splits distinct cells into train and heldout observation tensors.
func observedSplit(dims []int, r, train, heldout int, seed uint64) (truth []*mat.Dense, trainT, heldT *tensor.Tensor) {
	src := xrand.New(seed)
	truth = make([]*mat.Dense, len(dims))
	for m, d := range dims {
		truth[m] = mat.RandomUniform(d, r, src)
	}
	seen := map[[3]int]bool{}
	draw := func(b *tensor.Builder, count int) {
		idx := make([]int, len(dims))
		for placed := 0; placed < count; {
			for m, d := range dims {
				idx[m] = src.Intn(d)
			}
			key := [3]int{idx[0], idx[1], idx[2]}
			if seen[key] {
				continue
			}
			seen[key] = true
			b.Append(idx, cp.Reconstruct(truth, idx))
			placed++
		}
	}
	tb := tensor.NewBuilder(dims)
	draw(tb, train)
	hb := tensor.NewBuilder(dims)
	draw(hb, heldout)
	return truth, tb.Build(), hb.Build()
}

func TestCompletionRecoversFromPartialObservations(t *testing.T) {
	// 1500 of 12x12x12=1728 cells observed, exactly rank 2: completion
	// must generalise to held-out cells that plain zero-imputed CP-ALS
	// cannot (it is pulled toward zero on the unobserved majority).
	dims := []int{12, 12, 12}
	_, train, held := observedSplit(dims, 2, 600, 150, 1)

	res, err := Decompose(train, Options{Rank: 2, MaxIters: 150, Tol: 1e-10, Lambda: 1e-6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	heldRMSE := RMSE(held, res.Factors)

	cpRes, err := cp.Decompose(train, cp.Options{Rank: 2, MaxIters: 150, Tol: 1e-10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cpHeldRMSE := RMSE(held, cpRes.Factors)

	scale := held.Norm() / math.Sqrt(float64(held.NNZ()))
	if heldRMSE > 0.1*scale {
		t.Fatalf("completion held-out RMSE %v too high (scale %v)", heldRMSE, scale)
	}
	if heldRMSE*2 >= cpHeldRMSE {
		t.Fatalf("completion (%v) should clearly beat zero-imputed CP (%v) on held-out cells", heldRMSE, cpHeldRMSE)
	}
}

func TestTrainRMSEDecreases(t *testing.T) {
	_, train, _ := observedSplit([]int{10, 10, 10}, 3, 400, 1, 5)
	res, err := Decompose(train, Options{Rank: 3, MaxIters: 25, Tol: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.RMSETrace); i++ {
		if res.RMSETrace[i] > res.RMSETrace[i-1]*(1+1e-6)+1e-9 {
			t.Fatalf("RMSE rose at sweep %d: %v -> %v", i, res.RMSETrace[i-1], res.RMSETrace[i])
		}
	}
}

func TestLambdaRegularises(t *testing.T) {
	// With very few observations per row, small lambda overfits wildly;
	// larger lambda must keep factor magnitudes bounded.
	_, train, _ := observedSplit([]int{20, 20, 20}, 2, 120, 1, 9)
	strong, err := Decompose(train, Options{Rank: 4, MaxIters: 30, Lambda: 1.0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for m, f := range strong.Factors {
		if norm := mat.FrobeniusNorm(f); math.IsNaN(norm) || norm > 1e3 {
			t.Fatalf("mode %d factor norm %v exploded under strong lambda", m, norm)
		}
	}
}

func TestWarmStartHelps(t *testing.T) {
	_, train, _ := observedSplit([]int{12, 10, 8}, 3, 500, 1, 13)
	cold, err := Decompose(train, Options{Rank: 3, MaxIters: 8, Tol: 0, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	warmInit := make([]*mat.Dense, len(cold.Factors))
	for m, f := range cold.Factors {
		warmInit[m] = f.Clone()
	}
	warm, err := DecomposeFrom(train, warmInit, Options{Rank: 3, MaxIters: 2, Tol: 0, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if warm.RMSE > cold.RMSE*(1+1e-9) {
		t.Fatalf("warm start worsened RMSE: %v -> %v", cold.RMSE, warm.RMSE)
	}
}

func TestStreamStepTracksGrowingTensor(t *testing.T) {
	// Multi-aspect streaming completion: snapshots grow in every mode;
	// each step warm-starts from the previous factors.
	dims := []int{14, 12, 10}
	_, full, held := observedSplit(dims, 2, 900, 120, 17)
	prefix := full.Prefix([]int{10, 9, 8})
	first, err := Decompose(prefix, Options{Rank: 2, MaxIters: 100, Lambda: 1e-6, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	second, err := StreamStep(first.Factors, full, Options{Rank: 2, MaxIters: 100, Lambda: 1e-6, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	scale := held.Norm() / math.Sqrt(float64(held.NNZ()))
	if got := RMSE(held, second.Factors); got > 0.15*scale {
		t.Fatalf("streaming completion held-out RMSE %v (scale %v)", got, scale)
	}
	for m, d := range dims {
		if second.Factors[m].Rows != d {
			t.Fatalf("mode %d not grown to %d rows", m, d)
		}
	}
}

func TestStreamStepValidation(t *testing.T) {
	dims := []int{6, 6, 6}
	_, full, _ := observedSplit(dims, 2, 60, 1, 23)
	good := []*mat.Dense{mat.New(6, 2), mat.New(6, 2), mat.New(6, 2)}
	if _, err := StreamStep(good[:2], full, Options{Rank: 2}); err == nil {
		t.Fatal("wrong factor count accepted")
	}
	if _, err := StreamStep([]*mat.Dense{mat.New(7, 2), good[1], good[2]}, full, Options{Rank: 2}); err == nil {
		t.Fatal("shrinking mode accepted")
	}
	if _, err := StreamStep([]*mat.Dense{mat.New(6, 3), good[1], good[2]}, full, Options{Rank: 2}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestOptionValidation(t *testing.T) {
	_, train, _ := observedSplit([]int{5, 5, 5}, 2, 30, 1, 25)
	for name, o := range map[string]Options{
		"rank 0":          {Rank: 0},
		"negative tol":    {Rank: 2, Tol: -1},
		"negative lambda": {Rank: 2, Lambda: -1},
	} {
		if _, err := Decompose(train, o); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	empty := tensor.NewBuilder([]int{3, 3}).Build()
	if _, err := Decompose(empty, Options{Rank: 2}); err != ErrNoObservations {
		t.Fatalf("empty tensor error = %v", err)
	}
	bad := []*mat.Dense{mat.New(4, 2), mat.New(5, 2), mat.New(5, 2)}
	if _, err := DecomposeFrom(train, bad, Options{Rank: 2}); err == nil {
		t.Fatal("mismatched factors accepted")
	}
}

func TestRMSEEmptyTensor(t *testing.T) {
	empty := tensor.NewBuilder([]int{3, 3}).Build()
	if RMSE(empty, []*mat.Dense{mat.New(3, 2), mat.New(3, 2)}) != 0 {
		t.Fatal("empty RMSE should be 0")
	}
}

func BenchmarkCompletionSweep(b *testing.B) {
	_, train, _ := observedSplit([]int{200, 200, 100}, 5, 40000, 1, 27)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(train, Options{Rank: 8, MaxIters: 1, Tol: 0}); err != nil {
			b.Fatal(err)
		}
	}
}
