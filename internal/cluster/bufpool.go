package cluster

import (
	"math/bits"
	"sync"
)

// bufPool recycles message payload buffers in power-of-two size
// classes, mirroring what mat.Workspace does for the numeric stack: the
// first sweep populates the pool, and from then on the collectives and
// the row exchange encode into recycled buffers with zero steady-state
// heap allocations. The pool is shared by every worker of a transport
// (the in-process transport hands buffers across rank goroutines, so
// the free lists must be common property), hence the mutex.
//
// Ownership follows the message: a buffer obtained with Worker.GetBuf
// belongs to the caller until it is sent with Worker.SendPooled, after
// which exactly one side returns it with Worker.PutBuf — see the
// "communication model" section of DESIGN.md for the per-transport
// rules.
type bufPool struct {
	mu      sync.Mutex
	classes [64][][]byte
	gets    int64
	misses  int64
}

// maxFree bounds each size class's free list; buffers released beyond
// it are left to the garbage collector. Steady state needs only a
// handful of buffers in flight per rank, so the bound exists purely to
// cap pathological retention after a burst.
const maxFree = 256

func newBufPool() *bufPool { return &bufPool{} }

// sizeClass returns the smallest c with 1<<c >= n (n > 0).
func sizeClass(n int) int { return bits.Len(uint(n - 1)) }

// get returns a buffer of length n (capacity rounded up to the size
// class) and whether it had to be freshly allocated.
func (p *bufPool) get(n int) ([]byte, bool) {
	if n == 0 {
		return nil, false
	}
	c := sizeClass(n)
	p.mu.Lock()
	p.gets++
	if s := p.classes[c]; len(s) > 0 {
		b := s[len(s)-1]
		s[len(s)-1] = nil
		p.classes[c] = s[:len(s)-1]
		p.mu.Unlock()
		return b[:n], false
	}
	p.misses++
	p.mu.Unlock()
	return make([]byte, n, 1<<c), true
}

// put returns a buffer to its size class. The class is derived from the
// capacity rounded down, so a recycled buffer always satisfies the
// lengths get hands out for that class. Buffers of foreign origin (for
// example TCP receive payloads decoded by gob) are adopted the same
// way.
func (p *bufPool) put(b []byte) {
	if cap(b) == 0 {
		return
	}
	c := bits.Len(uint(cap(b))) - 1
	p.mu.Lock()
	if len(p.classes[c]) < maxFree {
		p.classes[c] = append(p.classes[c], b[:0])
	}
	p.mu.Unlock()
}

// stats reports lifetime get and miss counts (tests assert steady-state
// misses stay flat).
func (p *bufPool) stats() (gets, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.misses
}
