package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP transport: the same Worker API running across OS processes. A
// rendezvous service assigns ranks and distributes the address table;
// each node then exchanges gob-encoded Messages over lazily dialed
// point-to-point connections. cmd/worker and examples/multiprocess use
// this to run DisMASTD as a real multi-process cluster.

type joinRequest struct {
	ListenAddr string
}

type joinReply struct {
	Rank  int
	Addrs []string
}

// Rendezvous is the rank-assignment service: it accepts exactly size
// joins, assigns ranks in join order, and sends every member the full
// address table.
type Rendezvous struct {
	ln   net.Listener
	size int
	done chan error
}

// NewRendezvous binds addr (e.g. "127.0.0.1:0") and starts accepting
// joins for a cluster of the given size.
func NewRendezvous(addr string, size int) (*Rendezvous, error) {
	if size <= 0 {
		return nil, fmt.Errorf("cluster: rendezvous size %d", size)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: rendezvous listen: %w", err)
	}
	r := &Rendezvous{ln: ln, size: size, done: make(chan error, 1)}
	go r.serve()
	return r, nil
}

// Addr returns the bound rendezvous address workers should dial.
func (r *Rendezvous) Addr() string { return r.ln.Addr().String() }

// Wait blocks until every worker has joined and received its rank, or
// an accept error occurred.
func (r *Rendezvous) Wait() error { return <-r.done }

// Close stops the rendezvous listener.
func (r *Rendezvous) Close() error { return r.ln.Close() }

func (r *Rendezvous) serve() {
	type member struct {
		conn net.Conn
		addr string
	}
	var members []member
	for len(members) < r.size {
		conn, err := r.ln.Accept()
		if err != nil {
			for _, m := range members {
				m.conn.Close()
			}
			r.done <- fmt.Errorf("cluster: rendezvous accept: %w", err)
			return
		}
		var req joinRequest
		if err := gob.NewDecoder(conn).Decode(&req); err != nil {
			conn.Close()
			continue // malformed joiner; keep waiting
		}
		members = append(members, member{conn: conn, addr: req.ListenAddr})
	}
	addrs := make([]string, len(members))
	for i, m := range members {
		addrs[i] = m.addr
	}
	var firstErr error
	for rank, m := range members {
		if err := gob.NewEncoder(m.conn).Encode(joinReply{Rank: rank, Addrs: addrs}); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: rendezvous reply to rank %d: %w", rank, err)
		}
		m.conn.Close()
	}
	r.done <- firstErr
}

// TCPNode is one rank of a TCP cluster.
type TCPNode struct {
	rank, size  int
	addrs       []string
	ln          net.Listener
	mbox        *mailbox
	metrics     *Metrics
	recvTimeout time.Duration

	mu    sync.Mutex
	conns map[int]*peerConn

	closeOnce sync.Once
	closed    chan struct{}
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// JoinTCP creates a node: it binds listenAddr (use "127.0.0.1:0" for an
// ephemeral port), registers with the rendezvous at coordAddr, and
// returns once the rank and address table arrive.
func JoinTCP(coordAddr, listenAddr string, timeout time.Duration) (*TCPNode, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: node listen: %w", err)
	}
	conn, err := net.DialTimeout("tcp", coordAddr, timeout)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("cluster: dial rendezvous %s: %w", coordAddr, err)
	}
	defer conn.Close()
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := gob.NewEncoder(conn).Encode(joinRequest{ListenAddr: ln.Addr().String()}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("cluster: send join: %w", err)
	}
	var reply joinReply
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		ln.Close()
		return nil, fmt.Errorf("cluster: read join reply: %w", err)
	}
	n := &TCPNode{
		rank:        reply.Rank,
		size:        len(reply.Addrs),
		addrs:       reply.Addrs,
		ln:          ln,
		mbox:        newMailbox(),
		metrics:     &Metrics{},
		recvTimeout: 60 * time.Second,
		conns:       make(map[int]*peerConn),
		closed:      make(chan struct{}),
	}
	go n.acceptLoop()
	return n, nil
}

// Rank returns this node's rank.
func (n *TCPNode) Rank() int { return n.rank }

// Size returns the cluster size.
func (n *TCPNode) Size() int { return n.size }

// SetRecvTimeout overrides the node's receive timeout (zero disables).
func (n *TCPNode) SetRecvTimeout(d time.Duration) { n.recvTimeout = d }

func (n *TCPNode) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
			default:
				n.mbox.fail(fmt.Errorf("%w: accept: %v", ErrClosed, err))
			}
			return
		}
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			conn.Close()
			return // peer closed; pending receives fail via timeout or node close
		}
		n.metrics.addRecvd(msg.wireSize())
		n.mbox.deliver(msg.From, msg.Tag, msg.Payload)
	}
}

func (n *TCPNode) peer(to int) (*peerConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if pc, ok := n.conns[to]; ok {
		return pc, nil
	}
	conn, err := net.DialTimeout("tcp", n.addrs[to], 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("dial rank %d at %s: %w", to, n.addrs[to], err)
	}
	pc := &peerConn{conn: conn, enc: gob.NewEncoder(conn)}
	n.conns[to] = pc
	return pc, nil
}

func (n *TCPNode) send(to int, msg Message) error {
	if to == n.rank {
		n.metrics.addRecvd(msg.wireSize())
		n.mbox.deliver(msg.From, msg.Tag, msg.Payload)
		return nil
	}
	pc, err := n.peer(to)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.enc.Encode(&msg)
}

// Run executes fn as this node's worker function and returns its stats.
// Unlike Local.Run it drives a single rank; the other ranks run in
// their own processes (or goroutines in tests).
func (n *TCPNode) Run(fn func(*Worker) error) (*RunStats, error) {
	w := &Worker{
		rank:        n.rank,
		size:        n.size,
		mbox:        n.mbox,
		metrics:     n.metrics,
		recvTimeout: n.recvTimeout,
		sendFn:      n.send,
	}
	start := time.Now()
	err := fn(w)
	stats := &RunStats{
		Wall:  time.Since(start),
		Ranks: []RankStats{{Metrics: n.metrics.snapshot(), Work: w.work}},
	}
	return stats, err
}

// Close shuts the node down: pending receives fail with ErrClosed.
func (n *TCPNode) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.closed)
		err = n.ln.Close()
		n.mu.Lock()
		for _, pc := range n.conns {
			pc.conn.Close()
		}
		n.mu.Unlock()
		n.mbox.fail(ErrClosed)
	})
	return err
}

// IsClosed reports whether err stems from a closed or failed cluster.
func IsClosed(err error) bool { return errors.Is(err, ErrClosed) }
