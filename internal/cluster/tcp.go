package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dismastd/internal/obs"
	"dismastd/internal/xrand"
)

// TCP transport: the same Worker API running across OS processes. A
// rendezvous service assigns ranks and distributes the address table;
// each node then exchanges gob-encoded Messages over lazily dialed
// point-to-point connections. cmd/worker and examples/multiprocess use
// this to run DisMASTD as a real multi-process cluster.
//
// The transport tolerates transient network faults: dials retry with
// exponential backoff and jitter under per-attempt deadlines, a broken
// connection is evicted and transparently redialed (the failed message
// is re-sent on the fresh connection), the rendezvous bounds every
// joiner's handshake so one malformed client cannot wedge cluster
// formation, and optional heartbeats (heartbeat.go) turn a dead peer
// into a typed ErrPeerDown within a bounded window. fault.go's
// FaultPlan drives all of these paths deterministically in tests.

type joinRequest struct {
	ListenAddr string
}

type joinReply struct {
	Rank  int
	Addrs []string
}

// RetryPolicy shapes the transport's fault handling: dial attempts with
// exponential backoff plus deterministic jitter, a per-attempt dial
// deadline, and the number of reconnect-and-resend cycles a send may
// consume before giving up. The zero value means defaults.
type RetryPolicy struct {
	Attempts    int           // dial attempts per connection (default 5)
	BaseDelay   time.Duration // backoff before the second attempt (default 50ms)
	MaxDelay    time.Duration // backoff cap (default 2s)
	DialTimeout time.Duration // per-attempt dial deadline (default 3s)
	Resends     int           // reconnect+resend cycles per send (default 2)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = 3 * time.Second
	}
	if p.Resends <= 0 {
		p.Resends = 2
	}
	return p
}

// jitterSource is a mutex-guarded deterministic generator for backoff
// jitter; seeding it per rank decorrelates simultaneous redials without
// sacrificing reproducibility.
type jitterSource struct {
	mu  sync.Mutex
	src *xrand.Source
}

// backoff returns the pause before retry attempt (0-based): half the
// exponential delay deterministic, half jittered.
func (j *jitterSource) backoff(p RetryPolicy, attempt int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.src == nil {
		j.src = xrand.New(1)
	}
	return half + time.Duration(j.src.Int63n(int64(half)+1))
}

func seedFromString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// RendezvousConfig hardens the rendezvous against misbehaving joiners.
type RendezvousConfig struct {
	// JoinIOTimeout bounds each joiner's handshake I/O (reading the join
	// request, writing the rank reply). Zero means 10s.
	JoinIOTimeout time.Duration
	// JoinWindow bounds the overall wait for the full cluster to form;
	// zero means wait indefinitely.
	JoinWindow time.Duration
	// Logf, when set, receives one line per rejected joiner.
	Logf func(format string, args ...any)
}

const defaultJoinIOTimeout = 10 * time.Second

// Rendezvous is the rank-assignment service: it accepts exactly size
// joins, assigns ranks in join order, and sends every member the full
// address table. Joiners that stall or send a malformed request are
// rejected (counted, optionally logged) instead of blocking formation.
type Rendezvous struct {
	ln       net.Listener
	size     int
	cfg      RendezvousConfig
	done     chan error
	rejected atomic.Int64
}

// NewRendezvous binds addr (e.g. "127.0.0.1:0") and starts accepting
// joins for a cluster of the given size, with default hardening.
func NewRendezvous(addr string, size int) (*Rendezvous, error) {
	return NewRendezvousConfigured(addr, size, RendezvousConfig{})
}

// NewRendezvousConfigured is NewRendezvous with explicit join deadlines
// and rejected-join logging.
func NewRendezvousConfigured(addr string, size int, cfg RendezvousConfig) (*Rendezvous, error) {
	if size <= 0 {
		return nil, fmt.Errorf("cluster: rendezvous size %d", size)
	}
	if cfg.JoinIOTimeout <= 0 {
		cfg.JoinIOTimeout = defaultJoinIOTimeout
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: rendezvous listen: %w", err)
	}
	r := &Rendezvous{ln: ln, size: size, cfg: cfg, done: make(chan error, 1)}
	go r.serve()
	return r, nil
}

// Addr returns the bound rendezvous address workers should dial.
func (r *Rendezvous) Addr() string { return r.ln.Addr().String() }

// Wait blocks until every worker has joined and received its rank, or
// an accept error occurred, or the join window expired.
func (r *Rendezvous) Wait() error { return <-r.done }

// Close stops the rendezvous listener.
func (r *Rendezvous) Close() error { return r.ln.Close() }

// Rejected returns how many joiners were turned away so far (malformed
// requests or stalled handshakes).
func (r *Rendezvous) Rejected() int64 { return r.rejected.Load() }

func (r *Rendezvous) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

func (r *Rendezvous) serve() {
	type member struct {
		conn net.Conn
		addr string
	}
	var members []member
	fail := func(err error) {
		for _, m := range members {
			m.conn.Close()
		}
		r.done <- err
	}
	var window time.Time
	if r.cfg.JoinWindow > 0 {
		window = time.Now().Add(r.cfg.JoinWindow)
	}
	for len(members) < r.size {
		if !window.IsZero() {
			if tl, ok := r.ln.(*net.TCPListener); ok {
				tl.SetDeadline(window)
			}
		}
		conn, err := r.ln.Accept()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				fail(fmt.Errorf("cluster: rendezvous join window %s expired with %d of %d joined (%d rejected)",
					r.cfg.JoinWindow, len(members), r.size, r.Rejected()))
				return
			}
			fail(fmt.Errorf("cluster: rendezvous accept: %w", err))
			return
		}
		// Per-join handshake deadline: a stalled or malformed joiner is
		// rejected instead of blocking cluster formation forever.
		conn.SetDeadline(time.Now().Add(r.cfg.JoinIOTimeout))
		var req joinRequest
		if err := gob.NewDecoder(conn).Decode(&req); err != nil {
			conn.Close()
			r.rejected.Add(1)
			r.logf("cluster: rendezvous rejected joiner %s: %v", conn.RemoteAddr(), err)
			continue
		}
		if req.ListenAddr == "" {
			conn.Close()
			r.rejected.Add(1)
			r.logf("cluster: rendezvous rejected joiner %s: empty listen address", conn.RemoteAddr())
			continue
		}
		members = append(members, member{conn: conn, addr: req.ListenAddr})
	}
	addrs := make([]string, len(members))
	for i, m := range members {
		addrs[i] = m.addr
	}
	var firstErr error
	for rank, m := range members {
		// Fresh write deadline: the accept-time deadline may have lapsed
		// while later joiners trickled in.
		m.conn.SetDeadline(time.Now().Add(r.cfg.JoinIOTimeout))
		if err := gob.NewEncoder(m.conn).Encode(joinReply{Rank: rank, Addrs: addrs}); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: rendezvous reply to rank %d: %w", rank, err)
		}
		m.conn.Close()
	}
	r.done <- firstErr
}

// TCPNode is one rank of a TCP cluster.
type TCPNode struct {
	rank, size  int
	addrs       []string
	ln          net.Listener
	mbox        *mailbox
	metrics     *Metrics
	obs         *obs.Obs          // node-lifetime instruments (debug endpoint reads these live)
	tc          transportCounters // pre-resolved handles for the send/dial/heartbeat paths
	recvTimeout time.Duration
	retry       RetryPolicy
	jitter      jitterSource
	runs        atomic.Int64
	hb          atomic.Pointer[heartbeat]
	pool        *bufPool
	ringThresh  int

	// sendHook and fault must be installed before any sends (Run,
	// StartHeartbeat); they are read without locks on the send path.
	sendHook SendHook
	fault    *FaultPlan

	mu    sync.Mutex
	conns map[int]*peerConn

	closeOnce sync.Once
	closed    chan struct{}
}

// peerConn is the outbound link to one rank: nil conn means
// disconnected (never dialed, or evicted after a write error). ever
// distinguishes a first connect from a reconnect for the transport
// counters.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	ever bool
}

// transportCounters are the fault-tolerance instruments PR 1's
// machinery reports through: every dial attempt and retry, every
// connection evicted after a write error and every successful redial,
// heartbeat probes and misses, and FaultPlan injections by kind.
type transportCounters struct {
	dialAttempts *obs.Counter // transport.dial.attempts
	dialRetries  *obs.Counter // transport.dial.retries
	evictions    *obs.Counter // transport.evictions
	reconnects   *obs.Counter // transport.reconnects
	hbProbes     *obs.Counter // transport.heartbeat.probes
	hbMisses     *obs.Counter // transport.heartbeat.misses
	faults       faultCounters
}

func newTransportCounters(o *obs.Obs) transportCounters {
	return transportCounters{
		dialAttempts: o.Counter("transport.dial.attempts"),
		dialRetries:  o.Counter("transport.dial.retries"),
		evictions:    o.Counter("transport.evictions"),
		reconnects:   o.Counter("transport.reconnects"),
		hbProbes:     o.Counter("transport.heartbeat.probes"),
		hbMisses:     o.Counter("transport.heartbeat.misses"),
		faults:       newFaultCounters(o),
	}
}

// JoinTCP creates a node: it binds listenAddr (use "127.0.0.1:0" for an
// ephemeral port), registers with the rendezvous at coordAddr, and
// returns once the rank and address table arrive. timeout bounds the
// whole join; within it, dial attempts retry with backoff and jitter,
// so workers may start before the rendezvous is listening.
func JoinTCP(coordAddr, listenAddr string, timeout time.Duration) (*TCPNode, error) {
	return JoinTCPRetry(coordAddr, listenAddr, timeout, RetryPolicy{})
}

// JoinTCPRetry is JoinTCP with an explicit retry policy, which the node
// also adopts for its peer connections.
func JoinTCPRetry(coordAddr, listenAddr string, timeout time.Duration, policy RetryPolicy) (*TCPNode, error) {
	policy = policy.withDefaults()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: node listen: %w", err)
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	jit := &jitterSource{src: xrand.New(seedFromString(ln.Addr().String()))}
	var conn net.Conn
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// With an overall budget the joiner keeps retrying until the
			// deadline (the rendezvous may simply not be up yet);
			// without one, the policy's attempt cap bounds the retry.
			if deadline.IsZero() && attempt >= policy.Attempts {
				ln.Close()
				return nil, fmt.Errorf("cluster: dial rendezvous %s: %d attempts: %w", coordAddr, policy.Attempts, lastErr)
			}
			time.Sleep(jit.backoff(policy, attempt-1))
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			ln.Close()
			if lastErr == nil {
				lastErr = errors.New("timed out")
			}
			return nil, fmt.Errorf("cluster: dial rendezvous %s: join timeout %s: %w", coordAddr, timeout, lastErr)
		}
		d := policy.DialTimeout
		if !deadline.IsZero() {
			if rem := time.Until(deadline); rem < d {
				d = rem
			}
		}
		c, err := net.DialTimeout("tcp", coordAddr, d)
		if err == nil {
			conn = c
			break
		}
		lastErr = err
	}
	defer conn.Close()
	if !deadline.IsZero() {
		conn.SetDeadline(deadline)
	}
	if err := gob.NewEncoder(conn).Encode(joinRequest{ListenAddr: ln.Addr().String()}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("cluster: send join: %w", err)
	}
	var reply joinReply
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		ln.Close()
		return nil, fmt.Errorf("cluster: read join reply: %w", err)
	}
	n := &TCPNode{
		rank:        reply.Rank,
		size:        len(reply.Addrs),
		addrs:       reply.Addrs,
		ln:          ln,
		mbox:        newMailbox(),
		metrics:     &Metrics{},
		obs:         obs.New(),
		recvTimeout: 60 * time.Second,
		retry:       policy,
		conns:       make(map[int]*peerConn),
		closed:      make(chan struct{}),
		pool:        newBufPool(),
		ringThresh:  DefaultRingThreshold,
	}
	n.obs.Trace.SetRank(reply.Rank)
	n.tc = newTransportCounters(n.obs)
	n.jitter.src = xrand.New(seedFromString(ln.Addr().String()) + uint64(reply.Rank))
	go n.acceptLoop()
	return n, nil
}

// Rank returns this node's rank.
func (n *TCPNode) Rank() int { return n.rank }

// Size returns the cluster size.
func (n *TCPNode) Size() int { return n.size }

// SetRecvTimeout overrides the node's receive timeout (zero disables).
func (n *TCPNode) SetRecvTimeout(d time.Duration) { n.recvTimeout = d }

// SetRingThreshold overrides the payload size, in bytes, at which the
// all-reduce and all-gather collectives leave the binomial tree for the
// bandwidth-optimal ring (values <= 0 disable the ring path). Every
// node of a cluster must use the same value — path selection must
// agree across ranks. Must be called before Run.
func (n *TCPNode) SetRingThreshold(bytes int) { n.ringThresh = bytes }

// SetRetryPolicy overrides the dial/reconnect policy. Must be called
// before Run or StartHeartbeat.
func (n *TCPNode) SetRetryPolicy(p RetryPolicy) { n.retry = p.withDefaults() }

// SetSendHook installs a fault-injection hook applied to every send,
// mirroring Local.SetSendHook. Must be called before Run.
func (n *TCPNode) SetSendHook(h SendHook) { n.sendHook = h }

// SetFaultPlan installs a deterministic fault schedule applied to every
// send. Must be called before Run.
func (n *TCPNode) SetFaultPlan(p *FaultPlan) { n.fault = p }

// Obs returns the node's observability bundle. It lives for the node's
// lifetime — cmd/worker's -debug-addr endpoint serves it live — while
// each Run reports its own delta in RankStats.Obs.
func (n *TCPNode) Obs() *obs.Obs { return n.obs }

// SetLogger installs the node's logger (rank attribute attached here)
// for transport events: evictions, redials, peers declared down.
func (n *TCPNode) SetLogger(l *slog.Logger) {
	if l != nil {
		n.obs.Log = l.With("rank", n.rank)
	}
}

func (n *TCPNode) acceptLoop() {
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
			default:
				n.mbox.fail(fmt.Errorf("%w: accept: %v", ErrClosed, err))
			}
			return
		}
		go n.readLoop(conn)
	}
}

func (n *TCPNode) readLoop(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			conn.Close()
			return // peer closed; pending receives fail via timeout, heartbeat, or node close
		}
		if msg.From < 0 || msg.From >= n.size {
			continue // malformed peer; never index by it
		}
		if hb := n.hb.Load(); hb != nil {
			if hb.observe(msg.From) {
				// Traffic from a rank previously declared down: a
				// restarted peer. Lift its down marks so elastic
				// re-admission can talk to it again.
				n.obs.Logger().Info("peer revived by inbound traffic", "peer", msg.From)
				n.mbox.revive(msg.From)
			}
		}
		if msg.Tag == heartbeatTag {
			continue // liveness probe, not payload
		}
		if msg.Tag == revokeTag {
			// Epoch revocation (view.go): poison once, mark the dead
			// rank down, and keep the probe out of the payload path.
			if dead, err := decodeRevoke(msg.Payload); err == nil {
				if hb := n.hb.Load(); hb != nil {
					hb.markDown(dead)
				}
				n.mbox.peerDown(dead, &ErrPeerDown{Rank: dead}, true)
			}
			continue
		}
		// Receive metrics are counted once, in Worker.Recv, exactly as
		// the in-process transport counts them.
		n.mbox.deliver(msg.From, msg.Tag, msg.Payload)
	}
}

// slot returns the (possibly disconnected) outbound link to rank to.
func (n *TCPNode) slot(to int) *peerConn {
	n.mu.Lock()
	defer n.mu.Unlock()
	pc, ok := n.conns[to]
	if !ok {
		pc = &peerConn{}
		n.conns[to] = pc
	}
	return pc
}

// dialPeer establishes a connection to rank to under the retry policy.
func (n *TCPNode) dialPeer(to int) (net.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < n.retry.Attempts; attempt++ {
		if attempt > 0 {
			n.tc.dialRetries.Inc()
			t := time.NewTimer(n.jitter.backoff(n.retry, attempt-1))
			select {
			case <-t.C:
			case <-n.closed:
				t.Stop()
				return nil, ErrClosed
			}
		}
		n.tc.dialAttempts.Inc()
		conn, err := net.DialTimeout("tcp", n.addrs[to], n.retry.DialTimeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dial rank %d at %s: %d attempts: %w", to, n.addrs[to], n.retry.Attempts, lastErr)
}

// encodeTo writes msg on the (dialing if needed) connection to rank to.
// A failed write tears the connection down so the next attempt redials.
func (n *TCPNode) encodeTo(to int, msg *Message) error {
	pc := n.slot(to)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		conn, err := n.dialPeer(to)
		if err != nil {
			return err
		}
		pc.conn, pc.enc = conn, gob.NewEncoder(conn)
		if pc.ever {
			n.tc.reconnects.Inc()
			n.obs.Logger().Info("reconnected to peer", "peer", to)
		}
		pc.ever = true
	}
	if err := pc.enc.Encode(msg); err != nil {
		pc.conn.Close()
		pc.conn, pc.enc = nil, nil
		n.tc.evictions.Inc()
		n.obs.Logger().Warn("peer connection broken, evicting", "peer", to, "err", err)
		return err
	}
	return nil
}

// cutConn force-closes the live connection to rank to (fault
// injection). The dead encoder is left in place so the next send
// observes the break and exercises the reconnect path.
func (n *TCPNode) cutConn(to int) {
	pc := n.slot(to)
	pc.mu.Lock()
	if pc.conn != nil {
		pc.conn.Close()
	}
	pc.mu.Unlock()
}

// sendProbe best-effort-delivers a heartbeat: one dial attempt, no
// reconnect cycles — detection is driven by inbound silence, not by
// probe send errors.
func (n *TCPNode) sendProbe(to int, msg *Message) {
	n.tc.hbProbes.Inc()
	pc := n.slot(to)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		conn, err := net.DialTimeout("tcp", n.addrs[to], n.retry.DialTimeout)
		if err != nil {
			return
		}
		pc.conn, pc.enc = conn, gob.NewEncoder(conn)
		if pc.ever {
			n.tc.reconnects.Inc()
		}
		pc.ever = true
	}
	if err := pc.enc.Encode(msg); err != nil {
		pc.conn.Close()
		pc.conn, pc.enc = nil, nil
		n.tc.evictions.Inc()
	}
}

// send is the Worker-level transport: fault injection, self-delivery,
// and reconnect-and-resend over broken connections.
func (n *TCPNode) send(to int, msg Message) error {
	if h := n.sendHook; h != nil {
		if err := h(msg.From, to, msg.Tag); err != nil {
			return err
		}
	}
	if n.fault != nil {
		if inj := n.fault.decide(msg.From, to, msg.Tag); inj != nil {
			n.tc.faults.note(inj.op)
			switch inj.op {
			case FaultError:
				return inj.err
			case FaultDrop:
				return nil
			case FaultDelay:
				time.Sleep(inj.delay)
			case FaultCut:
				if to != n.rank {
					n.cutConn(to) // the resend loop below must recover
				}
			}
		}
	}
	if to == n.rank {
		// Receive metrics are counted in Worker.Recv, like Local.
		n.mbox.deliver(msg.From, msg.Tag, msg.Payload)
		return nil
	}
	var lastErr error
	for attempt := 0; attempt <= n.retry.Resends; attempt++ {
		select {
		case <-n.closed:
			return ErrClosed
		default:
		}
		if hb := n.hb.Load(); hb != nil && hb.isDown(to) {
			return &ErrPeerDown{Rank: to}
		}
		if err := n.encodeTo(to, &msg); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return fmt.Errorf("send to rank %d failed after %d reconnect attempts: %w", to, n.retry.Resends, lastErr)
}

// Run executes fn as this node's worker function and returns its stats.
// Unlike Local.Run it drives a single rank; the other ranks run in
// their own processes (or goroutines in tests). Repeated Run calls on
// one node namespace their collective tags by invocation count, so
// back-to-back SPMD phases cannot cross-match — every rank must perform
// the same sequence of Run calls.
func (n *TCPNode) Run(fn func(*Worker) error) (*RunStats, error) {
	epoch := n.runs.Add(1) - 1
	// The node's counters span its lifetime; baselines taken here scope
	// the reported stats to this Run so back-to-back invocations do not
	// bleed into each other.
	base := n.metrics.snapshot()
	obsBase := n.obs.Baseline()
	cfg := workerConfig{
		rank:        n.rank,
		size:        n.size,
		mbox:        n.mbox,
		metrics:     n.metrics,
		base:        base,
		obs:         n.obs,
		recvTimeout: n.recvTimeout,
		sendFn:      n.send,
		bufs:        n.pool,
		poolShared:  false, // gob copies payloads at the wire; senders recycle
		ringThresh:  n.ringThresh,
	}
	if epoch > 0 {
		cfg.tagEpoch = fmt.Sprintf("e%d|", epoch)
	}
	w := newWorker(cfg)
	start := time.Now()
	err := fn(w)
	snap := n.obs.SnapshotSince(obsBase)
	stats := &RunStats{
		Wall:  time.Since(start),
		Ranks: []RankStats{{Metrics: n.metrics.snapshot().sub(base), Work: *w.work, Obs: &snap}},
	}
	return stats, err
}

// Close shuts the node down: pending receives fail with ErrClosed.
func (n *TCPNode) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.closed)
		err = n.ln.Close()
		n.mu.Lock()
		slots := make([]*peerConn, 0, len(n.conns))
		for _, pc := range n.conns {
			slots = append(slots, pc)
		}
		n.mu.Unlock()
		for _, pc := range slots {
			pc.mu.Lock()
			if pc.conn != nil {
				pc.conn.Close()
			}
			pc.mu.Unlock()
		}
		n.mbox.fail(ErrClosed)
	})
	return err
}

// IsClosed reports whether err stems from a closed or failed cluster.
func IsClosed(err error) bool { return errors.Is(err, ErrClosed) }
