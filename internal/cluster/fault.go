package cluster

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Fault injection. A FaultPlan is a deterministic schedule of message
// faults shared by both transports: every send is assigned a sequence
// number on its (from, to) pair, and the first rule matching
// (from, to, tag, seq) decides the message's fate. Chaos tests use it
// to reproduce exact failure interleavings — a dropped Gram reduction
// on sweep three, a cut connection on the fifth row exchange — without
// sleeps or real network flakiness.

// AnyRank in a FaultRule's From or To field matches every rank.
const AnyRank = -1

// FaultOp is the kind of fault a FaultRule injects.
type FaultOp int

const (
	// FaultError fails the send with the rule's Err (or a descriptive
	// default). The message is not delivered.
	FaultError FaultOp = iota
	// FaultDrop silently discards the message: the sender sees success,
	// the receiver sees nothing — a lost packet.
	FaultDrop
	// FaultDelay delays delivery by the rule's Delay, then delivers.
	FaultDelay
	// FaultCut breaks the live TCP connection to the destination before
	// the send, so the message's write fails and the transport's
	// reconnect-and-resend path must recover. The in-process transport
	// (and a TCP self-send, which has no connection) treats it as a
	// recovered transient: the message is delivered normally.
	FaultCut
)

// String names the op for logs and error messages.
func (op FaultOp) String() string {
	switch op {
	case FaultError:
		return "error"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultCut:
		return "cut"
	}
	return fmt.Sprintf("FaultOp(%d)", int(op))
}

// FaultRule matches a window of sends and injects one fault kind.
// From/To select the link (AnyRank wildcards), TagPrefix restricts the
// message stream ("" matches all tags), and [FirstSeq, LastSeq] bounds
// the per-(from, to) send ordinal (0-based, counting every send on the
// pair): LastSeq == 0 means exactly FirstSeq, LastSeq < 0 means every
// send from FirstSeq on.
type FaultRule struct {
	From, To  int
	TagPrefix string
	FirstSeq  int
	LastSeq   int
	Op        FaultOp
	Delay     time.Duration // FaultDelay only
	Err       error         // FaultError only; nil gets a default
}

func (r *FaultRule) matches(from, to int, tag string, seq int) bool {
	if r.From != AnyRank && r.From != from {
		return false
	}
	if r.To != AnyRank && r.To != to {
		return false
	}
	if r.TagPrefix != "" && !strings.HasPrefix(tag, r.TagPrefix) {
		return false
	}
	last := r.LastSeq
	if last == 0 {
		last = r.FirstSeq
	}
	return seq >= r.FirstSeq && (last < 0 || seq <= last)
}

// injection is a resolved fault decision for one send.
type injection struct {
	op    FaultOp
	delay time.Duration
	err   error
}

// FaultPlan holds an ordered rule list plus the per-pair sequence
// counters. Install one with Local.SetFaultPlan or TCPNode.SetFaultPlan
// before running; it is safe for concurrent use by all senders.
type FaultPlan struct {
	mu    sync.Mutex
	rules []FaultRule
	seq   map[[2]int]int
	fired map[FaultOp]int
}

// NewFaultPlan returns an empty plan (injects nothing until rules are
// added).
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{seq: make(map[[2]int]int), fired: make(map[FaultOp]int)}
}

// Add appends a rule and returns the plan for chaining.
func (p *FaultPlan) Add(rule FaultRule) *FaultPlan {
	p.mu.Lock()
	p.rules = append(p.rules, rule)
	p.mu.Unlock()
	return p
}

// Fired returns how many faults the plan has injected so far.
func (p *FaultPlan) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.fired {
		n += c
	}
	return n
}

// FiredOp returns how many faults of one kind have been injected.
func (p *FaultPlan) FiredOp(op FaultOp) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired[op]
}

// decide consumes one send slot on the (from, to) pair and returns the
// resolved fault, or nil for a clean send.
func (p *FaultPlan) decide(from, to int, tag string) *injection {
	p.mu.Lock()
	defer p.mu.Unlock()
	seq := p.seq[[2]int{from, to}]
	p.seq[[2]int{from, to}] = seq + 1
	for i := range p.rules {
		r := &p.rules[i]
		if !r.matches(from, to, tag, seq) {
			continue
		}
		p.fired[r.Op]++
		inj := &injection{op: r.Op, delay: r.Delay, err: r.Err}
		if inj.err == nil {
			inj.err = fmt.Errorf("cluster: injected %s fault from %d to %d tag %q seq %d", r.Op, from, to, tag, seq)
		}
		return inj
	}
	return nil
}
