package cluster

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTCPCluster spins up a rendezvous plus size nodes on loopback and
// returns the joined nodes.
func startTCPCluster(t *testing.T, size int) []*TCPNode {
	t.Helper()
	rv, err := NewRendezvous("127.0.0.1:0", size)
	if err != nil {
		t.Skipf("loopback networking unavailable: %v", err)
	}
	t.Cleanup(func() { rv.Close() })

	nodes := make([]*TCPNode, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = JoinTCP(rv.Addr(), "127.0.0.1:0", 5*time.Second)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	if err := rv.Wait(); err != nil {
		t.Fatalf("rendezvous: %v", err)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes
}

// runTCP executes fn on every node concurrently, like Local.Run does
// for goroutine workers.
func runTCP(t *testing.T, nodes []*TCPNode, fn func(*Worker) error) []*RunStats {
	t.Helper()
	stats := make([]*RunStats, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *TCPNode) {
			defer wg.Done()
			stats[i], errs[i] = n.Run(fn)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return stats
}

func TestTCPRanksAssigned(t *testing.T) {
	nodes := startTCPCluster(t, 3)
	seen := make(map[int]bool)
	for _, n := range nodes {
		if n.Size() != 3 {
			t.Fatalf("size %d", n.Size())
		}
		seen[n.Rank()] = true
	}
	if len(seen) != 3 {
		t.Fatalf("ranks not distinct: %v", seen)
	}
}

func TestTCPPointToPointAndCollectives(t *testing.T) {
	nodes := startTCPCluster(t, 3)
	runTCP(t, nodes, func(w *Worker) error {
		next := (w.Rank() + 1) % w.Size()
		prev := (w.Rank() - 1 + w.Size()) % w.Size()
		if err := w.Send(next, "ring", []byte{byte(w.Rank())}); err != nil {
			return err
		}
		got, err := w.Recv(prev, "ring")
		if err != nil {
			return err
		}
		if int(got[0]) != prev {
			return fmt.Errorf("token %d from %d", got[0], prev)
		}
		sum, err := w.ReduceScalarSum(float64(w.Rank()))
		if err != nil {
			return err
		}
		if sum != 3 { // 0+1+2
			return fmt.Errorf("reduce sum %v", sum)
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		all, err := w.AllGatherBytes([]byte{byte(w.Rank() + 1)})
		if err != nil {
			return err
		}
		for r, p := range all {
			if int(p[0]) != r+1 {
				return fmt.Errorf("allgather[%d] = %d", r, p[0])
			}
		}
		return nil
	})
}

func TestTCPMetrics(t *testing.T) {
	nodes := startTCPCluster(t, 2)
	stats := runTCP(t, nodes, func(w *Worker) error {
		if w.Rank() == 0 {
			return w.Send(1, "data", make([]byte, 1000))
		}
		_, err := w.Recv(0, "data")
		return err
	})
	var sent int64
	for _, s := range stats {
		sent += s.Ranks[0].BytesSent
	}
	if sent < 1000 {
		t.Fatalf("sent bytes %d", sent)
	}
}

func TestTCPNodeCloseFailsPendingRecv(t *testing.T) {
	nodes := startTCPCluster(t, 2)
	done := make(chan error, 1)
	go func() {
		_, err := nodes[0].Run(func(w *Worker) error {
			_, err := w.Recv(1, "never")
			return err
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	nodes[0].Close()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, ErrClosed) {
			t.Fatalf("error = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending recv not released by Close")
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	nodes := startTCPCluster(t, 2)
	nodes[0].SetRecvTimeout(50 * time.Millisecond)
	_, err := nodes[0].Run(func(w *Worker) error {
		_, err := w.Recv(1, "silence")
		return err
	})
	if err == nil || !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want timeout", err)
	}
}

func TestRendezvousRejectsBadSize(t *testing.T) {
	if _, err := NewRendezvous("127.0.0.1:0", 0); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestTCPReconnectAfterCut(t *testing.T) {
	// A transiently broken connection must be redialed transparently:
	// every message still arrives (tags demultiplex across the old and
	// new connection), with the cut recovered inside a single Send call.
	nodes := startTCPCluster(t, 2)
	plan := NewFaultPlan().Add(FaultRule{From: 0, To: 1, FirstSeq: 1, Op: FaultCut})
	for _, n := range nodes {
		if n.Rank() == 0 {
			n.SetFaultPlan(plan)
		}
	}
	const msgs = 4
	runTCP(t, nodes, func(w *Worker) error {
		if w.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := w.Send(1, fmt.Sprintf("m%d", i), []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			b, err := w.Recv(0, fmt.Sprintf("m%d", i))
			if err != nil {
				return err
			}
			if int(b[0]) != i {
				return fmt.Errorf("message %d carried payload %d", i, b[0])
			}
		}
		return nil
	})
	if plan.FiredOp(FaultCut) != 1 {
		t.Fatalf("cuts fired = %d", plan.FiredOp(FaultCut))
	}
	// The fault-tolerance machinery reports through the node's registry:
	// the cut write fails (one eviction), the redial succeeds inside the
	// same Send (one reconnect), and the injection itself is counted.
	var cutter *TCPNode
	for _, n := range nodes {
		if n.Rank() == 0 {
			cutter = n
		}
	}
	m := cutter.Obs().Reg.Snapshot().Counters
	if m["transport.evictions"] != 1 {
		t.Fatalf("evictions = %d, want 1", m["transport.evictions"])
	}
	if m["transport.reconnects"] != 1 {
		t.Fatalf("reconnects = %d, want 1", m["transport.reconnects"])
	}
	if m["transport.faults.cut"] != 1 || m["transport.faults.injected"] != 1 {
		t.Fatalf("fault counters = %v", m)
	}
	if m["transport.dial.attempts"] < 2 {
		t.Fatalf("dial attempts = %d, want >= 2 (initial dial + redial)", m["transport.dial.attempts"])
	}
}

func TestTCPRunMetricsAreDeltas(t *testing.T) {
	// Regression: RunStats from repeated TCPNode.Run invocations used to
	// report traffic since node creation. Two identical back-to-back
	// phases must each report the same (disjoint) counts.
	nodes := startTCPCluster(t, 2)
	phase := func(w *Worker) error {
		peer := 1 - w.Rank()
		if err := w.Send(peer, "blob", make([]byte, 500)); err != nil {
			return err
		}
		if _, err := w.Recv(peer, "blob"); err != nil {
			return err
		}
		_, err := w.ReduceScalarSum(1)
		return err
	}
	first := runTCP(t, nodes, phase)
	second := runTCP(t, nodes, phase)
	for i := range nodes {
		a, b := first[i].Ranks[0].Metrics, second[i].Ranks[0].Metrics
		if a.MsgsSent == 0 || a.BytesSent == 0 {
			t.Fatalf("node %d first run reported no traffic: %+v", i, a)
		}
		// Message counts must match exactly; byte counts differ by the
		// few bytes of the per-Run tag epoch, so allow that jitter while
		// rejecting anything close to cumulative (2x) totals.
		if a.MsgsSent != b.MsgsSent || a.MsgsRecv != b.MsgsRecv {
			t.Fatalf("node %d runs not disjoint: first %+v, second %+v", i, a, b)
		}
		if diff := b.BytesSent - a.BytesSent; diff < -16 || diff > 16 {
			t.Fatalf("node %d second run bytes cumulative: first %+v, second %+v", i, a, b)
		}
		// The Worker-level snapshot jobs use for algorithm-only traffic
		// must be Run-scoped on the same baseline.
		if o := second[i].Ranks[0].Obs; o == nil {
			t.Fatalf("node %d missing obs snapshot", i)
		}
	}
}

func TestTCPSendHook(t *testing.T) {
	// The fault-injection hook applies on the TCP path exactly as on the
	// in-process transport.
	nodes := startTCPCluster(t, 2)
	boom := errors.New("hooked")
	for _, n := range nodes {
		n.SetSendHook(func(from, to int, tag string) error {
			if tag == "poisoned" {
				return boom
			}
			return nil
		})
	}
	_, err := nodes[0].Run(func(w *Worker) error {
		if err := w.Send(1-w.Rank(), "clean", nil); err != nil {
			return err
		}
		return w.Send(1-w.Rank(), "poisoned", nil)
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error = %v, want hook error", err)
	}
}

// tcpPattern is a traffic mix (point-to-point, self-send, collective)
// run identically on both transports by the metrics parity test.
func tcpPattern(w *Worker) error {
	peer := 1 - w.Rank()
	if err := w.Send(peer, "ping", make([]byte, 64)); err != nil {
		return err
	}
	if _, err := w.Recv(peer, "ping"); err != nil {
		return err
	}
	if err := w.Send(w.Rank(), "self", make([]byte, 16)); err != nil {
		return err
	}
	if _, err := w.Recv(w.Rank(), "self"); err != nil {
		return err
	}
	_, err := w.ReduceScalarSum(1)
	return err
}

func TestTransportMetricsParity(t *testing.T) {
	// Both transports must count traffic identically: one receive
	// increment per consumed message (the TCP read loop and self-send
	// path used to double count).
	local := NewLocal(2)
	localStats, err := local.Run(tcpPattern)
	if err != nil {
		t.Fatal(err)
	}
	nodes := startTCPCluster(t, 2)
	tcpStats := runTCP(t, nodes, tcpPattern)
	for _, n := range nodes {
		rank := n.Rank()
		got := tcpStats[indexOfNode(nodes, n)].Ranks[0].Metrics
		want := localStats.Ranks[rank].Metrics
		if got.MsgsSent != want.MsgsSent || got.MsgsRecv != want.MsgsRecv ||
			got.BytesSent != want.BytesSent || got.BytesRecv != want.BytesRecv {
			t.Fatalf("rank %d metrics diverge: tcp %+v, local %+v", rank, got, want)
		}
	}
}

func indexOfNode(nodes []*TCPNode, n *TCPNode) int {
	for i := range nodes {
		if nodes[i] == n {
			return i
		}
	}
	return -1
}

func TestTCPMultipleRunsTagEpochs(t *testing.T) {
	// Back-to-back Run calls on the same nodes must not cross-match
	// collective tags even when one rank races ahead into the next
	// phase.
	nodes := startTCPCluster(t, 3)
	for phase := 0; phase < 4; phase++ {
		want := float64(3 * (phase + 1))
		runTCP(t, nodes, func(w *Worker) error {
			got, err := w.ReduceScalarSum(float64(phase + 1))
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("phase %d sum %v, want %v", phase, got, want)
			}
			return nil
		})
	}
}

func TestJoinRetriesUntilRendezvousUp(t *testing.T) {
	// Workers may start before the rendezvous: the join dial retries
	// with backoff until the coordinator is listening.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback networking unavailable: %v", err)
	}
	addr := probe.Addr().String()
	probe.Close()

	type result struct {
		node *TCPNode
		err  error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			n, err := JoinTCP(addr, "127.0.0.1:0", 10*time.Second)
			results <- result{n, err}
		}()
	}
	time.Sleep(200 * time.Millisecond) // joiners are already retrying
	rv, err := NewRendezvous(addr, 2)
	if err != nil {
		t.Skipf("rendezvous port reuse failed: %v", err)
	}
	defer rv.Close()
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("join: %v", r.err)
		}
		defer r.node.Close()
	}
	if err := rv.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousRejectsMalformedJoiner(t *testing.T) {
	var logged int
	rv, err := NewRendezvousConfigured("127.0.0.1:0", 1, RendezvousConfig{
		JoinIOTimeout: 200 * time.Millisecond,
		Logf:          func(string, ...any) { logged++ },
	})
	if err != nil {
		t.Skipf("loopback networking unavailable: %v", err)
	}
	defer rv.Close()

	// A garbage joiner and a stalled joiner must both be rejected
	// without blocking cluster formation.
	bad, err := net.Dial("tcp", rv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	bad.Write([]byte("this is not a gob stream"))
	stalled, err := net.Dial("tcp", rv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close() // sends nothing: handshake deadline rejects it
	bad.Close()

	node, err := JoinTCP(rv.Addr(), "127.0.0.1:0", 5*time.Second)
	if err != nil {
		t.Fatalf("legitimate join blocked by bad joiners: %v", err)
	}
	defer node.Close()
	if err := rv.Wait(); err != nil {
		t.Fatal(err)
	}
	if rv.Rejected() < 1 {
		t.Fatalf("rejected = %d, want >= 1", rv.Rejected())
	}
	if logged < 1 {
		t.Fatalf("logged = %d, want >= 1", logged)
	}
}

func TestRendezvousJoinWindowExpires(t *testing.T) {
	rv, err := NewRendezvousConfigured("127.0.0.1:0", 2, RendezvousConfig{
		JoinWindow: 150 * time.Millisecond,
	})
	if err != nil {
		t.Skipf("loopback networking unavailable: %v", err)
	}
	defer rv.Close()
	done := make(chan error, 1)
	go func() { done <- rv.Wait() }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "join window") {
			t.Fatalf("error = %v, want join window expiry", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("join window never expired")
	}
}
