package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// startTCPCluster spins up a rendezvous plus size nodes on loopback and
// returns the joined nodes.
func startTCPCluster(t *testing.T, size int) []*TCPNode {
	t.Helper()
	rv, err := NewRendezvous("127.0.0.1:0", size)
	if err != nil {
		t.Skipf("loopback networking unavailable: %v", err)
	}
	t.Cleanup(func() { rv.Close() })

	nodes := make([]*TCPNode, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = JoinTCP(rv.Addr(), "127.0.0.1:0", 5*time.Second)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	if err := rv.Wait(); err != nil {
		t.Fatalf("rendezvous: %v", err)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes
}

// runTCP executes fn on every node concurrently, like Local.Run does
// for goroutine workers.
func runTCP(t *testing.T, nodes []*TCPNode, fn func(*Worker) error) []*RunStats {
	t.Helper()
	stats := make([]*RunStats, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *TCPNode) {
			defer wg.Done()
			stats[i], errs[i] = n.Run(fn)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return stats
}

func TestTCPRanksAssigned(t *testing.T) {
	nodes := startTCPCluster(t, 3)
	seen := make(map[int]bool)
	for _, n := range nodes {
		if n.Size() != 3 {
			t.Fatalf("size %d", n.Size())
		}
		seen[n.Rank()] = true
	}
	if len(seen) != 3 {
		t.Fatalf("ranks not distinct: %v", seen)
	}
}

func TestTCPPointToPointAndCollectives(t *testing.T) {
	nodes := startTCPCluster(t, 3)
	runTCP(t, nodes, func(w *Worker) error {
		next := (w.Rank() + 1) % w.Size()
		prev := (w.Rank() - 1 + w.Size()) % w.Size()
		if err := w.Send(next, "ring", []byte{byte(w.Rank())}); err != nil {
			return err
		}
		got, err := w.Recv(prev, "ring")
		if err != nil {
			return err
		}
		if int(got[0]) != prev {
			return fmt.Errorf("token %d from %d", got[0], prev)
		}
		sum, err := w.ReduceScalarSum(float64(w.Rank()))
		if err != nil {
			return err
		}
		if sum != 3 { // 0+1+2
			return fmt.Errorf("reduce sum %v", sum)
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		all, err := w.AllGatherBytes([]byte{byte(w.Rank() + 1)})
		if err != nil {
			return err
		}
		for r, p := range all {
			if int(p[0]) != r+1 {
				return fmt.Errorf("allgather[%d] = %d", r, p[0])
			}
		}
		return nil
	})
}

func TestTCPMetrics(t *testing.T) {
	nodes := startTCPCluster(t, 2)
	stats := runTCP(t, nodes, func(w *Worker) error {
		if w.Rank() == 0 {
			return w.Send(1, "data", make([]byte, 1000))
		}
		_, err := w.Recv(0, "data")
		return err
	})
	var sent int64
	for _, s := range stats {
		sent += s.Ranks[0].BytesSent
	}
	if sent < 1000 {
		t.Fatalf("sent bytes %d", sent)
	}
}

func TestTCPNodeCloseFailsPendingRecv(t *testing.T) {
	nodes := startTCPCluster(t, 2)
	done := make(chan error, 1)
	go func() {
		_, err := nodes[0].Run(func(w *Worker) error {
			_, err := w.Recv(1, "never")
			return err
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	nodes[0].Close()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, ErrClosed) {
			t.Fatalf("error = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending recv not released by Close")
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	nodes := startTCPCluster(t, 2)
	nodes[0].SetRecvTimeout(50 * time.Millisecond)
	_, err := nodes[0].Run(func(w *Worker) error {
		_, err := w.Recv(1, "silence")
		return err
	})
	if err == nil || !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want timeout", err)
	}
}

func TestRendezvousRejectsBadSize(t *testing.T) {
	if _, err := NewRendezvous("127.0.0.1:0", 0); err == nil {
		t.Fatal("size 0 accepted")
	}
}
