package cluster

import (
	"fmt"
	"testing"
	"time"
)

// Collective microbenchmarks comparing the tree/funnel and ring paths.
// `make bench-comm` runs everything named BenchmarkComm* through
// cmd/benchjson into BENCH_comm.json. Beyond ns/op, each benchmark
// reports maxrank-B/op: the heaviest rank's sent bytes per operation —
// the bandwidth bottleneck the ring exists to flatten (Theorem 4's
// per-rank traffic bound). Trees concentrate O(n·log M) at the root;
// rings spread ~2·(M−1)/M·n evenly.

func benchComm(b *testing.B, m, thresh int, fn func(w *Worker) error) {
	c := NewLocal(m)
	c.SetRecvTimeout(time.Minute)
	c.SetRingThreshold(thresh)
	b.ResetTimer()
	stats, err := c.Run(func(w *Worker) error {
		for i := 0; i < b.N; i++ {
			if err := fn(w); err != nil {
				return err
			}
		}
		return nil
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	var maxSent int64
	for _, rk := range stats.Ranks {
		if rk.BytesSent > maxSent {
			maxSent = rk.BytesSent
		}
	}
	b.ReportMetric(float64(maxSent)/float64(b.N), "maxrank-B/op")
}

func BenchmarkCommAllReduce(b *testing.B) {
	for _, m := range []int{4, 8} {
		for _, kb := range []int{4, 64, 1024} {
			n := kb * 1024 / 8
			for _, path := range []struct {
				name   string
				thresh int
			}{{"tree", ringOff}, {"ring", ringOn}} {
				b.Run(fmt.Sprintf("path=%s/M=%d/KB=%d", path.name, m, kb), func(b *testing.B) {
					b.SetBytes(int64(8 * n))
					vecs := make([][]float64, m)
					for r := range vecs {
						vecs[r] = make([]float64, n)
					}
					benchComm(b, m, path.thresh, func(w *Worker) error {
						return w.AllReduceSumInPlace(vecs[w.Rank()])
					})
				})
			}
		}
	}
}

func BenchmarkCommAllGather(b *testing.B) {
	for _, m := range []int{4, 8} {
		for _, kb := range []int{4, 64, 1024} {
			size := kb * 1024
			for _, path := range []struct {
				name   string
				thresh int
			}{{"funnel", ringOff}, {"ring", ringOn}} {
				b.Run(fmt.Sprintf("path=%s/M=%d/KB=%d", path.name, m, kb), func(b *testing.B) {
					b.SetBytes(int64(size))
					blocks := make([][]byte, m)
					for r := range blocks {
						blocks[r] = make([]byte, size)
					}
					benchComm(b, m, path.thresh, func(w *Worker) error {
						_, err := w.AllGatherBytes(blocks[w.Rank()])
						return err
					})
				})
			}
		}
	}
}

func BenchmarkCommScalarReduce(b *testing.B) {
	for _, m := range []int{4, 8} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			benchComm(b, m, ringOff, func(w *Worker) error {
				_, err := w.ReduceScalarSum(float64(w.Rank()))
				return err
			})
		})
	}
}

func BenchmarkCommBarrier(b *testing.B) {
	for _, m := range []int{4, 8} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			benchComm(b, m, ringOff, func(w *Worker) error {
				return w.Barrier()
			})
		})
	}
}
