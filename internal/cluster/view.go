package cluster

// Elastic membership: views and epoch-fenced view workers.
//
// A cluster created by NewLocal or JoinTCP is the *world*: a fixed set
// of addressable rank slots (live members plus idle spares). Elastic
// operation runs on top of it through Views — epoch-numbered subsets
// of the world — and ViewWorkers, derived workers whose rank/size
// describe the view and whose message tags carry the view epoch. The
// epoch prefix is the collective fence: a straggler still finishing a
// ring collective of epoch e can never cross-match traffic of epoch
// e+1, because every tag (counter and stream alike) differs. This is
// the communicator-shrink-and-spawn model of MPI's ULFM, restricted to
// a fixed world so no transport-level address discovery is needed
// mid-run.
//
// Failure flows through three mechanisms that compose:
//
//   - per-sender down marks (mailbox.peerDown) with drain-then-fail
//     delivery, set by Local's elastic mode when a worker exits and by
//     the TCP heartbeat when a peer goes silent;
//   - epoch revocation (Worker.Revoke): the first rank to observe an
//     ErrPeerDown broadcasts a revoke, poisoning every survivor's
//     mailbox once so receives blocked on *live* peers of the doomed
//     epoch abort too instead of deadlocking;
//   - poison clearing (Worker.ClearFault): each survivor clears its
//     own poison before entering the membership protocol; duplicate
//     revokes for the same dead rank are no-ops, so a straggler's
//     revoke cannot poison a survivor already mid-protocol.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// ErrNotMember reports an operation that requires view membership by a
// world rank outside the view.
var ErrNotMember = errors.New("cluster: not a member of the view")

// View is one membership generation: an epoch number plus the sorted
// world ranks that are members. Epoch 0 with members 0..M−1 is the
// static cluster every non-elastic run implicitly uses.
type View struct {
	Epoch   int64
	Members []int
}

// NewView builds a view from an arbitrary member list (sorted and
// de-duplicated; membership is a set).
func NewView(epoch int64, members []int) View {
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	out := ms[:0]
	for i, m := range ms {
		if i == 0 || m != ms[i-1] {
			out = append(out, m)
		}
	}
	return View{Epoch: epoch, Members: out}
}

// InitialView is the epoch-0 view over world ranks 0..members−1.
func InitialView(members int) View {
	v := View{Members: make([]int, members)}
	for i := range v.Members {
		v.Members[i] = i
	}
	return v
}

// Size returns the number of members.
func (v View) Size() int { return len(v.Members) }

// Contains reports whether the world rank is a member.
func (v View) Contains(world int) bool { return v.RankOf(world) >= 0 }

// RankOf returns the view rank of a world rank, or −1 if it is not a
// member. View ranks are positions in the sorted member list, so
// surviving members keep their relative order across view changes.
func (v View) RankOf(world int) int {
	i := sort.SearchInts(v.Members, world)
	if i < len(v.Members) && v.Members[i] == world {
		return i
	}
	return -1
}

// WorldOf returns the world rank of a view rank.
func (v View) WorldOf(rank int) int { return v.Members[rank] }

// Clone returns a deep copy.
func (v View) Clone() View {
	return View{Epoch: v.Epoch, Members: append([]int(nil), v.Members...)}
}

// Equal reports whether two views have the same epoch and members.
func (v View) Equal(o View) bool {
	if v.Epoch != o.Epoch || len(v.Members) != len(o.Members) {
		return false
	}
	for i, m := range v.Members {
		if o.Members[i] != m {
			return false
		}
	}
	return true
}

func (v View) String() string {
	return fmt.Sprintf("view{epoch %d, members %v}", v.Epoch, v.Members)
}

// encodeView appends a view's wire form: epoch, member count, members
// (little-endian, fixed width — the membership codec is hand-rolled so
// the control plane has no gob dependency or allocation surprises).
func encodeView(b []byte, v View) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], uint64(v.Epoch))
	b = append(b, w[:]...)
	binary.LittleEndian.PutUint32(w[:4], uint32(len(v.Members)))
	b = append(b, w[:4]...)
	for _, m := range v.Members {
		binary.LittleEndian.PutUint32(w[:4], uint32(m))
		b = append(b, w[:4]...)
	}
	return b
}

// decodeView parses encodeView output, returning the remaining bytes.
func decodeView(b []byte) (View, []byte, error) {
	if len(b) < 12 {
		return View{}, nil, fmt.Errorf("cluster: view payload too short (%d bytes)", len(b))
	}
	v := View{Epoch: int64(binary.LittleEndian.Uint64(b))}
	n := int(binary.LittleEndian.Uint32(b[8:]))
	b = b[12:]
	if n < 0 || len(b) < 4*n {
		return View{}, nil, fmt.Errorf("cluster: truncated view member list (%d members, %d bytes)", n, len(b))
	}
	v.Members = make([]int, n)
	for i := range v.Members {
		v.Members[i] = int(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return v, b[4*n:], nil
}

// ViewWorker derives a worker scoped to the view: Rank/Size are the
// view's, sends and receives transparently map view ranks to world
// ranks, and every tag carries a "v<epoch>|" prefix fencing its
// collectives from every other epoch. The derived worker shares the
// root's mailbox, buffer pool, and work accumulator, but snapshots a
// fresh metrics baseline — MetricsSnapshot on a view worker counts
// this epoch's traffic only, the same baseline+delta scoping repeated
// TCPNode.Run invocations get.
//
// Derive from the root worker only (one derivation per epoch), and use
// at most one derived worker at a time: epochs are serial by
// construction. The root worker remains valid for world-addressed
// control traffic (the membership protocol).
func (w *Worker) ViewWorker(v View) (*Worker, error) {
	if w.world != nil {
		return nil, fmt.Errorf("cluster: ViewWorker must be derived from the root worker")
	}
	me := v.RankOf(w.rank)
	if me < 0 {
		return nil, fmt.Errorf("%w: world rank %d, epoch %d", ErrNotMember, w.rank, v.Epoch)
	}
	for _, m := range v.Members {
		if m < 0 || m >= w.size {
			return nil, fmt.Errorf("cluster: view member %d outside world of %d", m, w.size)
		}
	}
	tagEpoch := w.tagEpoch + "v" + strconv.FormatInt(v.Epoch, 10) + "|"
	// Stamp the shared tracer with the new epoch: spans recorded after a
	// view change carry it, so merged cluster timelines can separate
	// pre- from post-transition work. Epochs are serial per rank, so the
	// stamp and the derived worker change together.
	w.obs.SetEpoch(v.Epoch)
	return &Worker{
		rank:         me,
		size:         v.Size(),
		mbox:         w.mbox,
		sendFn:       w.sendFn,
		metrics:      w.metrics,
		base:         w.metrics.snapshot(),
		obs:          w.obs,
		recvTimeout:  w.recvTimeout,
		tagEpoch:     tagEpoch,
		streams:      make(map[streamKey]string),
		bufs:         w.bufs,
		poolShared:   w.poolShared,
		ringThresh:   w.ringThresh,
		cc:           w.cc,
		work:         w.work,
		world:        append([]int(nil), v.Members...),
		worldSelf:    w.rank,
		worldScratch: make([]int, 0, v.Size()),
	}, nil
}

// WorldRank returns the worker's rank in the world cluster — the
// stable identity that survives view changes and the one ErrPeerDown
// and the membership protocol speak.
func (w *Worker) WorldRank() int { return w.worldSelf }

// WorldSize returns the world cluster's size (== Size on a root
// worker).
func (w *Worker) WorldSize() int {
	if w.world == nil {
		return w.size
	}
	// The view was validated against the root's size at derivation; the
	// mailbox is world-keyed, so the root size is what Revoke needs.
	max := w.worldSelf
	for _, m := range w.world {
		if m > max {
			max = m
		}
	}
	return max + 1
}

// ClearFault clears a whole-mailbox poison left by failure detection or
// an epoch revocation, so the membership protocol can reuse the
// transport. Per-sender down marks persist: receives from dead ranks
// keep failing fast after the clear.
func (w *Worker) ClearFault() { w.mbox.clearPoison() }

// Revive clears a world rank's down mark after it demonstrably came
// back (a restarted peer re-admitted to a view).
func (w *Worker) Revive(world int) { w.mbox.revive(world) }

// revokeTag is the reserved control tag epoch revocations travel
// under; like heartbeats it starts with a NUL byte no user tag can.
const revokeTag = "\x00rv"

func decodeRevoke(b []byte) (int, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("cluster: revoke payload of %d bytes", len(b))
	}
	return int(binary.LittleEndian.Uint32(b)), nil
}

// Revoke declares a world rank dead to the whole world: it marks the
// rank down locally (poisoning this mailbox once), then broadcasts a
// revoke message every transport intercepts at delivery, poisoning
// each recipient's mailbox once. Survivors blocked in a collective on
// *live* peers of the doomed epoch — e.g. waiting on a ring neighbour
// that itself waits on the dead rank — abort with the rank-attributed
// ErrPeerDown instead of deadlocking, which is what makes recovery
// reachable from any interleaving. Idempotent per dead rank; call on
// the root worker before ClearFault.
func (w *Worker) Revoke(dead int) {
	w.mbox.peerDown(dead, &ErrPeerDown{Rank: dead}, true)
	var payload [4]byte
	binary.LittleEndian.PutUint32(payload[:], uint32(dead))
	for r := 0; r < w.WorldSize(); r++ {
		if r == w.worldSelf || r == dead {
			continue
		}
		// Best-effort: a rank that is itself down just fails the send.
		_ = w.sendFn(r, Message{From: w.worldSelf, Tag: revokeTag, Payload: payload[:]})
	}
}
