package cluster

import (
	"errors"
	"testing"
	"time"
)

func TestViewRankMapping(t *testing.T) {
	v := NewView(3, []int{4, 0, 2, 4}) // unsorted, duplicated
	if got := v.Members; len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("members = %v", got)
	}
	if v.RankOf(2) != 1 || v.RankOf(4) != 2 || v.RankOf(1) != -1 {
		t.Fatalf("RankOf wrong: %d %d %d", v.RankOf(2), v.RankOf(4), v.RankOf(1))
	}
	if v.WorldOf(0) != 0 || v.WorldOf(2) != 4 {
		t.Fatalf("WorldOf wrong")
	}
	if !v.Contains(4) || v.Contains(3) {
		t.Fatalf("Contains wrong")
	}
	enc := encodeView(nil, v)
	dec, rest, err := decodeView(enc)
	if err != nil || len(rest) != 0 || !dec.Equal(v) {
		t.Fatalf("codec roundtrip: %v %v %v", dec, rest, err)
	}
}

func TestViewChangeApply(t *testing.T) {
	cur := InitialView(4) // {0,1,2,3} epoch 0
	vc := ViewChange{Dead: []int{1}, Join: []int{5}}
	next := vc.Apply(cur)
	if next.Epoch != 1 {
		t.Fatalf("epoch = %d", next.Epoch)
	}
	want := []int{0, 2, 3, 5}
	for i, m := range want {
		if next.Members[i] != m {
			t.Fatalf("members = %v, want %v", next.Members, want)
		}
	}
	if c := Coordinator(cur, next); c != 0 {
		t.Fatalf("coordinator = %d", c)
	}
	// Coordinator must be a continuing member even when 0 dies.
	next2 := ViewChange{Dead: []int{0}}.Apply(cur)
	if c := Coordinator(cur, next2); c != 1 {
		t.Fatalf("coordinator after 0 died = %d", c)
	}
}

// TestViewWorkerRoutesThroughWorldRanks checks a view worker's sends
// and receives reach the right world slots under renumbered ranks.
func TestViewWorkerRoutesThroughWorldRanks(t *testing.T) {
	c := NewLocal(4)
	v := NewView(1, []int{0, 2, 3}) // world 1 excluded; view ranks 0,1,2
	_, err := c.Run(func(w *Worker) error {
		if w.Rank() == 1 {
			return nil // not a member; idles
		}
		vw, err := w.ViewWorker(v)
		if err != nil {
			return err
		}
		if vw.Size() != 3 || vw.WorldRank() != w.Rank() {
			t.Errorf("view worker shape: size %d world %d", vw.Size(), vw.WorldRank())
		}
		// Ring: each view rank sends its world rank to (rank+1)%3.
		me := vw.Rank()
		next := (me + 1) % 3
		prev := (me + 2) % 3
		if err := vw.Send(next, "ring", []byte{byte(vw.WorldRank())}); err != nil {
			return err
		}
		got, err := vw.Recv(prev, "ring")
		if err != nil {
			return err
		}
		if want := byte(v.WorldOf(prev)); got[0] != want {
			t.Errorf("view rank %d got %d from prev, want %d", me, got[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestViewWorkerCollectivesFenced checks epoch-prefixed tags: the same
// lockstep collective sequence in two different epochs cannot
// cross-match even when a straggler from the old epoch has traffic
// queued.
func TestViewWorkerCollectivesFenced(t *testing.T) {
	c := NewLocal(2)
	v1 := NewView(1, []int{0, 1})
	v2 := NewView(2, []int{0, 1})
	_, err := c.Run(func(w *Worker) error {
		w1, err := w.ViewWorker(v1)
		if err != nil {
			return err
		}
		w2, err := w.ViewWorker(v2)
		if err != nil {
			return err
		}
		if w1.StreamTag("reduce") == w2.StreamTag("reduce") {
			t.Errorf("stream tags not fenced: %q", w1.StreamTag("reduce"))
		}
		// Rank 1 sends an epoch-1 payload that rank 0 never reads in
		// epoch 1; rank 0's epoch-2 receive must not consume it.
		if w.Rank() == 1 {
			if err := w1.Send(0, w1.StreamTag("x"), []byte{1}); err != nil {
				return err
			}
			if err := w2.Send(0, w2.StreamTag("x"), []byte{2}); err != nil {
				return err
			}
			return nil
		}
		got, err := w2.Recv(1, w2.StreamTag("x"))
		if err != nil {
			return err
		}
		if got[0] != 2 {
			t.Errorf("epoch 2 receive got epoch-%d payload", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestViewWorkerStampsObsEpoch: deriving a view worker stamps the
// shared tracer with the view epoch, so spans ending after the
// derivation export that epoch — the identity merged cluster timelines
// use to separate pre- from post-transition work.
func TestViewWorkerStampsObsEpoch(t *testing.T) {
	c := NewLocal(2)
	_, err := c.Run(func(w *Worker) error {
		o := w.Obs()
		o.Span("before").End()
		if _, err := w.ViewWorker(NewView(7, []int{0, 1})); err != nil {
			return err
		}
		o.Span("after").End()
		want := map[string]int64{"before": 0, "after": 7}
		for _, ev := range o.Trace.Events() {
			wantEpoch, ok := want[ev.Name]
			if !ok {
				continue
			}
			if ev.Epoch != wantEpoch {
				t.Errorf("rank %d span %q exported epoch %d, want %d", w.Rank(), ev.Name, ev.Epoch, wantEpoch)
			}
			delete(want, ev.Name)
		}
		if len(want) != 0 {
			t.Errorf("rank %d missing spans %v", w.Rank(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestViewWorkerEpochMetricsNoBleed is the per-epoch transport metrics
// regression test: deriving a view worker snapshots a fresh baseline,
// so an epoch's MetricsSnapshot counts that epoch's traffic only — the
// same baseline+delta scoping repeated TCPNode.Run invocations get —
// while the root worker still sees the run-wide totals.
func TestViewWorkerEpochMetricsNoBleed(t *testing.T) {
	c := NewLocal(2)
	payload := make([]byte, 100)
	_, err := c.Run(func(w *Worker) error {
		w1, err := w.ViewWorker(NewView(1, []int{0, 1}))
		if err != nil {
			return err
		}
		// Epoch 1: one message each way.
		peer := 1 - w1.Rank()
		if err := w1.Send(peer, "a", payload); err != nil {
			return err
		}
		if _, err := w1.Recv(peer, "a"); err != nil {
			return err
		}
		e1 := w1.MetricsSnapshot()
		if e1.MsgsSent != 1 || e1.MsgsRecv != 1 {
			t.Errorf("epoch 1 snapshot: %+v", e1)
		}

		w2, err := w.ViewWorker(NewView(2, []int{0, 1}))
		if err != nil {
			return err
		}
		if s := w2.MetricsSnapshot(); s.MsgsSent != 0 || s.BytesSent != 0 || s.MsgsRecv != 0 || s.BytesRecv != 0 {
			t.Errorf("epoch 2 starts with bled counters: %+v", s)
		}
		if err := w2.Send(1-w2.Rank(), "b", payload[:10]); err != nil {
			return err
		}
		if _, err := w2.Recv(1-w2.Rank(), "b"); err != nil {
			return err
		}
		e2 := w2.MetricsSnapshot()
		if e2.MsgsSent != 1 || e2.BytesSent != int64(10+len("b")+8) {
			t.Errorf("epoch 2 snapshot: %+v", e2)
		}
		// Root worker still accumulates across epochs.
		if s := w.MetricsSnapshot(); s.MsgsSent != 2 {
			t.Errorf("root snapshot: %+v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestElasticExitMarksRankDown checks Local's elastic semantics: a
// returning worker reads as a rank-attributed ErrPeerDown at the
// survivors — after its queued messages drain.
func TestElasticExitMarksRankDown(t *testing.T) {
	c := NewLocal(3)
	c.SetElastic(true)
	_, err := c.Run(func(w *Worker) error {
		if w.Rank() == 2 {
			// Send one farewell, then die: drain-then-fail must hand
			// the farewell over before the death surfaces.
			return w.Send(0, "bye", []byte{42})
		}
		if w.Rank() == 0 {
			got, err := w.Recv(2, "bye")
			if err != nil || got[0] != 42 {
				t.Errorf("farewell: %v %v", got, err)
			}
			_, err = w.Recv(2, "never")
			pd, ok := AsPeerDown(err)
			if !ok || pd.Rank != 2 {
				t.Errorf("recv from dead rank: %v", err)
			}
			// Attributed error also from recv-any once all are down.
			_, _, err = w.RecvAny("never2", []int{2})
			if pd, ok := AsPeerDown(err); !ok || pd.Rank != 2 {
				t.Errorf("recv-any from dead rank: %v", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRevokeUnblocksThirdParty reproduces the transitive deadlock a
// revoke exists to break: rank 2 waits on live rank 0, which waits on
// dead rank 1. Rank 0's revoke must surface ErrPeerDown(1) at rank 2.
func TestRevokeUnblocksThirdParty(t *testing.T) {
	c := NewLocal(3)
	c.SetElastic(true)
	c.SetRecvTimeout(500 * time.Millisecond)
	_, err := c.Run(func(w *Worker) error {
		switch w.Rank() {
		case 1:
			return nil // dies immediately
		case 0:
			_, err := w.Recv(1, "contrib")
			pd, ok := AsPeerDown(err)
			if !ok {
				t.Errorf("rank 0 expected peer-down, got %v", err)
				return nil
			}
			w.Revoke(pd.Rank)
			w.ClearFault()
			return nil
		default: // rank 2 waits on rank 0, who will never send
			_, err := w.Recv(0, "bcast")
			pd, ok := AsPeerDown(err)
			if !ok || pd.Rank != 1 {
				t.Errorf("rank 2 expected revoked epoch's ErrPeerDown(1), got %v", err)
			}
			// Duplicate revoke for the same dead rank must not
			// re-poison after the clear: a receive from live-or-exited
			// rank 0 may time out or observe rank 0's own exit, but it
			// must not resurface rank 1's revocation.
			w.ClearFault()
			w.Revoke(1)
			_, err = w.Recv(0, "post")
			if pd, ok := AsPeerDown(err); ok && pd.Rank == 1 {
				t.Errorf("post-clear recv re-poisoned: %v", err)
			} else if !ok && !errors.Is(err, ErrTimeout) {
				t.Errorf("post-clear recv: %v", err)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
