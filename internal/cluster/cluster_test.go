package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCodecRoundtrips(t *testing.T) {
	f := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1)}
	got, err := DecodeFloat64s(EncodeFloat64s(f))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if got[i] != f[i] {
			t.Fatalf("float64 roundtrip[%d] = %v", i, got[i])
		}
	}
	if _, err := DecodeFloat64s(make([]byte, 7)); err == nil {
		t.Fatal("misaligned float payload accepted")
	}
	ints := []int32{0, -1, 1 << 30}
	gi, err := DecodeInt32s(EncodeInt32s(ints))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ints {
		if gi[i] != ints[i] {
			t.Fatalf("int32 roundtrip[%d] = %v", i, gi[i])
		}
	}
	if _, err := DecodeInt32s(make([]byte, 6)); err == nil {
		t.Fatal("misaligned int payload accepted")
	}
}

func TestFrames(t *testing.T) {
	parts := [][]byte{nil, []byte("a"), []byte("hello world")}
	got, err := decodeFrames(encodeFrames(parts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[2]) != "hello world" || len(got[0]) != 0 {
		t.Fatalf("frames roundtrip: %q", got)
	}
	for _, bad := range [][]byte{nil, {1, 0, 0, 0}, append(encodeFrames(parts), 0)} {
		if _, err := decodeFrames(bad); err == nil {
			t.Fatalf("bad frame payload %v accepted", bad)
		}
	}
}

func TestPointToPoint(t *testing.T) {
	c := NewLocal(4)
	_, err := c.Run(func(w *Worker) error {
		// Ring: send to the next rank, receive from the previous.
		next := (w.Rank() + 1) % w.Size()
		prev := (w.Rank() - 1 + w.Size()) % w.Size()
		if err := w.Send(next, "ring", []byte{byte(w.Rank())}); err != nil {
			return err
		}
		got, err := w.Recv(prev, "ring")
		if err != nil {
			return err
		}
		if int(got[0]) != prev {
			return fmt.Errorf("got token %d from %d", got[0], prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	c := NewLocal(2)
	_, err := c.Run(func(w *Worker) error {
		if err := w.Send(w.Rank(), "self", []byte("x")); err != nil {
			return err
		}
		b, err := w.Recv(w.Rank(), "self")
		if err != nil {
			return err
		}
		if string(b) != "x" {
			return fmt.Errorf("self loop returned %q", b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagDemultiplexing(t *testing.T) {
	// Messages with different tags from one sender must be matched by
	// tag, not arrival order.
	c := NewLocal(2)
	_, err := c.Run(func(w *Worker) error {
		if w.Rank() == 0 {
			if err := w.Send(1, "b", []byte("second")); err != nil {
				return err
			}
			return w.Send(1, "a", []byte("first"))
		}
		got, err := w.Recv(0, "a")
		if err != nil {
			return err
		}
		if string(got) != "first" {
			return fmt.Errorf("tag a returned %q", got)
		}
		got, err = w.Recv(0, "b")
		if err != nil {
			return err
		}
		if string(got) != "second" {
			return fmt.Errorf("tag b returned %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerTag(t *testing.T) {
	c := NewLocal(2)
	const n = 100
	_, err := c.Run(func(w *Worker) error {
		if w.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := w.Send(1, "seq", []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			b, err := w.Recv(0, "seq")
			if err != nil {
				return err
			}
			if int(b[0]) != i {
				return fmt.Errorf("message %d arrived at slot %d", b[0], i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	c := NewLocal(2)
	_, err := c.Run(func(w *Worker) error {
		if err := w.Send(5, "x", nil); err == nil {
			return errors.New("send to rank 5 accepted")
		}
		if _, err := w.Recv(-1, "x"); err == nil {
			return errors.New("recv from rank -1 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	c := NewLocal(5)
	var mu sync.Mutex
	phase := make(map[int]int)
	_, err := c.Run(func(w *Worker) error {
		for p := 0; p < 3; p++ {
			mu.Lock()
			phase[w.Rank()] = p
			// No rank may be more than one phase ahead of any other
			// while inside the barrier region.
			for r, rp := range phase {
				if rp < p-1 || rp > p+1 {
					mu.Unlock()
					return fmt.Errorf("rank %d at phase %d while rank %d at %d", w.Rank(), p, r, rp)
				}
			}
			mu.Unlock()
			if err := w.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	c := NewLocal(4)
	_, err := c.Run(func(w *Worker) error {
		var data []byte
		if w.Rank() == 2 {
			data = []byte("payload")
		}
		got, err := w.BroadcastBytes(2, data)
		if err != nil {
			return err
		}
		if string(got) != "payload" {
			return fmt.Errorf("rank %d got %q", w.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherAndAllGather(t *testing.T) {
	c := NewLocal(4)
	_, err := c.Run(func(w *Worker) error {
		mine := []byte{byte(w.Rank() * 10)}
		parts, err := w.GatherBytes(1, mine)
		if err != nil {
			return err
		}
		if w.Rank() == 1 {
			for r, p := range parts {
				if int(p[0]) != r*10 {
					return fmt.Errorf("gather[%d] = %d", r, p[0])
				}
			}
		} else if parts != nil {
			return errors.New("non-root received gather result")
		}
		all, err := w.AllGatherBytes(mine)
		if err != nil {
			return err
		}
		for r, p := range all {
			if int(p[0]) != r*10 {
				return fmt.Errorf("allgather[%d] = %d", r, p[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	const size = 6
	c := NewLocal(size)
	_, err := c.Run(func(w *Worker) error {
		vec := []float64{float64(w.Rank()), 1, float64(w.Rank() * w.Rank())}
		got, err := w.AllReduceSum(vec)
		if err != nil {
			return err
		}
		// Σr = 15, Σ1 = 6, Σr² = 55 for ranks 0..5.
		want := []float64{15, 6, 55}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("allreduce[%d] = %v, want %v", i, got[i], want[i])
			}
		}
		s, err := w.ReduceScalarSum(2.5)
		if err != nil {
			return err
		}
		if s != 2.5*size {
			return fmt.Errorf("scalar sum %v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceDeterministic(t *testing.T) {
	// Rank-ordered summation must give bitwise identical results run
	// to run, even with values that do not commute in floating point.
	run := func() []float64 {
		c := NewLocal(5)
		var out []float64
		var mu sync.Mutex
		_, err := c.Run(func(w *Worker) error {
			vec := []float64{1e16 * float64(w.Rank()%2), 1.0 / (float64(w.Rank()) + 3)}
			got, err := w.AllReduceSum(vec)
			if err != nil {
				return err
			}
			if w.Rank() == 0 {
				mu.Lock()
				out = got
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allreduce nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWorkerErrorPropagates(t *testing.T) {
	c := NewLocal(3)
	boom := errors.New("boom")
	_, err := c.Run(func(w *Worker) error {
		if w.Rank() == 1 {
			return boom
		}
		// Other ranks block on a message that never comes; they must be
		// released by the poisoned mailbox, not the timeout.
		_, err := w.Recv(1, "never")
		if err == nil {
			return errors.New("recv succeeded unexpectedly")
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want boom", err)
	}
}

func TestRecvTimeout(t *testing.T) {
	c := NewLocal(2)
	c.SetRecvTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err := c.Run(func(w *Worker) error {
		if w.Rank() == 0 {
			_, err := w.Recv(1, "silence")
			return err
		}
		return nil
	})
	if err == nil || !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want timeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestSendHookFaultInjection(t *testing.T) {
	c := NewLocal(3)
	c.SetRecvTimeout(2 * time.Second)
	var count int64
	var mu sync.Mutex
	c.SetSendHook(func(from, to int, tag string) error {
		mu.Lock()
		defer mu.Unlock()
		count++
		if from == 2 && count > 2 {
			return errors.New("injected network fault")
		}
		return nil
	})
	_, err := c.Run(func(w *Worker) error {
		for i := 0; i < 5; i++ {
			if err := w.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("injected fault did not surface")
	}
}

func TestMetricsAccounting(t *testing.T) {
	c := NewLocal(2)
	stats, err := c.Run(func(w *Worker) error {
		if w.Rank() == 0 {
			return w.Send(1, "m", make([]byte, 100))
		}
		_, err := w.Recv(0, "m")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ranks[0].MsgsSent != 1 || stats.Ranks[1].MsgsRecv != 1 {
		t.Fatalf("message counts: %+v", stats.Ranks)
	}
	if stats.Ranks[0].BytesSent < 100 {
		t.Fatalf("sender bytes %d", stats.Ranks[0].BytesSent)
	}
	if stats.TotalBytes() != stats.Ranks[0].BytesSent+stats.Ranks[1].BytesSent {
		t.Fatal("TotalBytes mismatch")
	}
	if stats.TotalMessages() != 1 {
		t.Fatalf("TotalMessages = %d", stats.TotalMessages())
	}
}

func TestWorkAccounting(t *testing.T) {
	c := NewLocal(3)
	stats, err := c.Run(func(w *Worker) error {
		w.AddWork(float64(w.Rank()) * 100)
		w.AddWork(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalWork() != 303 {
		t.Fatalf("TotalWork = %v", stats.TotalWork())
	}
	if stats.MaxWork() != 201 {
		t.Fatalf("MaxWork = %v", stats.MaxWork())
	}
}

func TestWallTimeRecorded(t *testing.T) {
	c := NewLocal(1)
	stats, err := c.Run(func(w *Worker) error {
		time.Sleep(10 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Wall < 10*time.Millisecond {
		t.Fatalf("wall %v", stats.Wall)
	}
}

func TestNewLocalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLocal(0) did not panic")
		}
	}()
	NewLocal(0)
}

func BenchmarkAllReduceSum(b *testing.B) {
	c := NewLocal(8)
	vec := make([]float64, 100) // R=10 Gram matrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(func(w *Worker) error {
			_, err := w.AllReduceSum(vec)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCollectivesStress(t *testing.T) {
	// Hundreds of back-to-back mixed collectives on a large cluster:
	// tags must never cross-match and every reduction must be exact.
	const size = 9
	c := NewLocal(size)
	c.SetRecvTimeout(20 * time.Second)
	_, err := c.Run(func(w *Worker) error {
		for round := 0; round < 150; round++ {
			switch round % 4 {
			case 0:
				got, err := w.AllReduceSum([]float64{float64(w.Rank() + round)})
				if err != nil {
					return err
				}
				want := float64(size*round) + float64(size*(size-1))/2
				if got[0] != want {
					return fmt.Errorf("round %d: sum %v, want %v", round, got[0], want)
				}
			case 1:
				if err := w.Barrier(); err != nil {
					return err
				}
			case 2:
				root := round % size
				var data []byte
				if w.Rank() == root {
					data = []byte{byte(round)}
				}
				got, err := w.BroadcastBytes(root, data)
				if err != nil {
					return err
				}
				if len(got) != 1 || got[0] != byte(round) {
					return fmt.Errorf("round %d: broadcast %v", round, got)
				}
			case 3:
				all, err := w.AllGatherBytes([]byte{byte(w.Rank())})
				if err != nil {
					return err
				}
				for r, p := range all {
					if int(p[0]) != r {
						return fmt.Errorf("round %d: allgather[%d] = %d", round, r, p[0])
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastTreeBoundsFanout(t *testing.T) {
	// The binomial tree must cap any single rank's messages per
	// broadcast at ⌈log₂ size⌉ instead of size−1.
	const size = 16
	c := NewLocal(size)
	stats, err := c.Run(func(w *Worker) error {
		var data []byte
		if w.Rank() == 0 {
			data = make([]byte, 1000)
		}
		_, err := w.BroadcastBytes(0, data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, rs := range stats.Ranks {
		if rs.MsgsSent > 4 { // log2(16) = 4
			t.Fatalf("rank %d sent %d messages in one broadcast", r, rs.MsgsSent)
		}
	}
}
