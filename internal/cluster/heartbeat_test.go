package cluster

import (
	"errors"
	"testing"
	"time"
)

func startHeartbeats(t *testing.T, nodes []*TCPNode, interval time.Duration, misses int) {
	t.Helper()
	for _, n := range nodes {
		if err := n.StartHeartbeat(interval, misses); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHeartbeatDetectsDeadPeer(t *testing.T) {
	nodes := startTCPCluster(t, 3)
	const interval = 25 * time.Millisecond
	startHeartbeats(t, nodes, interval, 3)

	// Find the survivors and the victim by rank so assertions are
	// rank-attributed regardless of join order.
	var victim *TCPNode
	var survivors []*TCPNode
	for _, n := range nodes {
		if n.Rank() == 2 {
			victim = n
		} else {
			survivors = append(survivors, n)
		}
	}
	victim.Close()

	start := time.Now()
	for _, n := range survivors {
		n.SetRecvTimeout(30 * time.Second)
		_, err := n.Run(func(w *Worker) error {
			_, err := w.Recv(2, "never")
			return err
		})
		pd, ok := AsPeerDown(err)
		if !ok {
			t.Fatalf("rank %d error = %v, want ErrPeerDown", n.Rank(), err)
		}
		if pd.Rank != 2 {
			t.Fatalf("peer-down rank = %d, want 2", pd.Rank)
		}
	}
	// Detection must be bounded by a few heartbeat intervals, far below
	// the 30s receive timeout.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("detection took %v", elapsed)
	}
}

func TestHeartbeatSendToDeadPeerFailsTyped(t *testing.T) {
	nodes := startTCPCluster(t, 2)
	const interval = 25 * time.Millisecond
	startHeartbeats(t, nodes, interval, 3)
	var alive, dead *TCPNode
	for _, n := range nodes {
		if n.Rank() == 0 {
			alive = n
		} else {
			dead = n
		}
	}
	dead.Close()
	// Wait for detection, then verify sends fail with the typed error
	// instead of burning dial retries.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := alive.Run(func(w *Worker) error {
			return w.Send(1, "late", []byte("x"))
		})
		if pd, ok := AsPeerDown(err); ok {
			if pd.Rank != 1 {
				t.Fatalf("peer-down rank = %d, want 1", pd.Rank)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("send error = %v, want ErrPeerDown", err)
		}
		time.Sleep(interval)
	}
}

func TestHeartbeatQuietClusterStaysUp(t *testing.T) {
	// Probes alone must keep an idle cluster alive: no false positives
	// while no payload traffic flows.
	nodes := startTCPCluster(t, 3)
	startHeartbeats(t, nodes, 20*time.Millisecond, 2)
	time.Sleep(400 * time.Millisecond) // many detection windows
	// All pairs still communicate after the idle period.
	runTCP(t, nodes, func(w *Worker) error {
		if err := w.Barrier(); err != nil {
			return err
		}
		_, err := w.ReduceScalarSum(1)
		return err
	})
}

func TestHeartbeatRejectsBadConfig(t *testing.T) {
	nodes := startTCPCluster(t, 2)
	if err := nodes[0].StartHeartbeat(0, 3); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := nodes[0].StartHeartbeat(10*time.Millisecond, 3); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].StartHeartbeat(10*time.Millisecond, 3); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestPeerDownErrorFormat(t *testing.T) {
	err := error(&ErrPeerDown{Rank: 7})
	if err.Error() == "" {
		t.Fatal("empty message")
	}
	var pd *ErrPeerDown
	if !errors.As(err, &pd) || pd.Rank != 7 {
		t.Fatalf("errors.As failed on %v", err)
	}
	if IsClosed(err) {
		t.Fatal("ErrPeerDown must not satisfy IsClosed")
	}
}
