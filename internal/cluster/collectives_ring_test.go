package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"dismastd/internal/xrand"
)

// ringOn forces every collective onto the ring path; ringOff pins the
// tree/funnel path regardless of payload size.
const (
	ringOn  = 1
	ringOff = -1
)

func runLocalAt(t *testing.T, size, ringThresh int, fn func(*Worker) error) *RunStats {
	t.Helper()
	c := NewLocal(size)
	c.SetRecvTimeout(5 * time.Second)
	c.SetRingThreshold(ringThresh)
	stats, err := c.Run(fn)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestAllReduceRingExactAtOddSizes checks the ring all-reduce computes
// the exact sum at non-power-of-two sizes, including vector lengths
// that do not divide evenly into segments. Integer-valued payloads make
// the expected sum exact in float64, so the comparison is bitwise.
func TestAllReduceRingExactAtOddSizes(t *testing.T) {
	for _, m := range []int{3, 5, 7} {
		for _, n := range []int{m, 101, 1024} {
			t.Run(fmt.Sprintf("M=%d/n=%d", m, n), func(t *testing.T) {
				want := make([]float64, n)
				for i := range want {
					for r := 0; r < m; r++ {
						want[i] += float64(r*1000 + i)
					}
				}
				for _, thresh := range []int{ringOn, ringOff} {
					runLocalAt(t, m, thresh, func(w *Worker) error {
						vec := make([]float64, n)
						for i := range vec {
							vec[i] = float64(w.Rank()*1000 + i)
						}
						if err := w.AllReduceSumInPlace(vec); err != nil {
							return err
						}
						for i := range vec {
							if vec[i] != want[i] {
								return fmt.Errorf("thresh %d rank %d elem %d: got %v want %v", thresh, w.Rank(), i, vec[i], want[i])
							}
						}
						return nil
					})
				}
			})
		}
	}
}

// TestAllReduceRingDeterministic pins the ring path's reproducibility
// contract: with irrational inputs whose summation order matters, every
// rank observes identical bits within a run, and repeated runs at the
// same cluster size reproduce them exactly.
func TestAllReduceRingDeterministic(t *testing.T) {
	const m, n = 5, 97
	run := func() [][]byte {
		results := make([][]byte, m)
		runLocalAt(t, m, ringOn, func(w *Worker) error {
			src := xrand.New(uint64(w.Rank()) + 7)
			vec := make([]float64, n)
			for i := range vec {
				vec[i] = src.Float64()*2 - 1
			}
			if err := w.AllReduceSumInPlace(vec); err != nil {
				return err
			}
			results[w.Rank()] = EncodeFloat64s(vec)
			return nil
		})
		return results
	}
	first := run()
	for r := 1; r < m; r++ {
		if !bytes.Equal(first[0], first[r]) {
			t.Fatalf("rank %d observed different bits than rank 0", r)
		}
	}
	second := run()
	for r := 0; r < m; r++ {
		if !bytes.Equal(first[r], second[r]) {
			t.Fatalf("rank %d: repeated run produced different bits", r)
		}
	}
}

// TestAllGatherRingMatchesFunnel checks both all-gather paths deliver
// identical content at odd sizes.
func TestAllGatherRingMatchesFunnel(t *testing.T) {
	for _, m := range []int{3, 5, 7} {
		t.Run(fmt.Sprintf("M=%d", m), func(t *testing.T) {
			gather := func(thresh int) [][][]byte {
				out := make([][][]byte, m)
				runLocalAt(t, m, thresh, func(w *Worker) error {
					data := bytes.Repeat([]byte{byte('A' + w.Rank())}, 64+w.Rank())
					parts, err := w.AllGatherBytes(data)
					if err != nil {
						return err
					}
					cp := make([][]byte, len(parts))
					for i, p := range parts {
						cp[i] = append([]byte(nil), p...)
					}
					out[w.Rank()] = cp
					return nil
				})
				return out
			}
			ring, funnel := gather(ringOn), gather(ringOff)
			for r := 0; r < m; r++ {
				if len(ring[r]) != m || len(funnel[r]) != m {
					t.Fatalf("rank %d: %d ring / %d funnel parts, want %d", r, len(ring[r]), len(funnel[r]), m)
				}
				for b := 0; b < m; b++ {
					if !bytes.Equal(ring[r][b], funnel[r][b]) {
						t.Errorf("rank %d block %d: ring %q != funnel %q", r, b, ring[r][b], funnel[r][b])
					}
				}
			}
		})
	}
}

// TestCollectivesMixedAtOddSizesTCP drives the tree and ring paths over
// the TCP transport at non-power-of-two sizes: an all-reduce, an
// all-gather, a scalar reduction, and a barrier per round.
func TestCollectivesMixedAtOddSizesTCP(t *testing.T) {
	for _, m := range []int{3, 5} {
		for _, thresh := range []int{ringOn, ringOff} {
			t.Run(fmt.Sprintf("M=%d/thresh=%d", m, thresh), func(t *testing.T) {
				nodes := startTCPCluster(t, m)
				for _, n := range nodes {
					n.SetRingThreshold(thresh)
				}
				const vecLen = 33
				runTCP(t, nodes, func(w *Worker) error {
					for round := 0; round < 3; round++ {
						vec := make([]float64, vecLen)
						for i := range vec {
							vec[i] = float64(w.Rank() + round + i)
						}
						if err := w.AllReduceSumInPlace(vec); err != nil {
							return err
						}
						for i := range vec {
							want := float64(m*(round+i)) + float64(m*(m-1)/2)
							if vec[i] != want {
								return fmt.Errorf("round %d elem %d: got %v want %v", round, i, vec[i], want)
							}
						}
						parts, err := w.AllGatherBytes([]byte{byte(w.Rank()), byte(round)})
						if err != nil {
							return err
						}
						for r, p := range parts {
							if len(p) != 2 || p[0] != byte(r) || p[1] != byte(round) {
								return fmt.Errorf("round %d: bad block %d: %v", round, r, p)
							}
						}
						total, err := w.ReduceScalarSum(float64(w.Rank() + 1))
						if err != nil {
							return err
						}
						if want := float64(m*(m+1) / 2); total != want {
							return fmt.Errorf("round %d: scalar sum %v, want %v", round, total, want)
						}
						if err := w.Barrier(); err != nil {
							return err
						}
					}
					return nil
				})
			})
		}
	}
}

// TestCollectivePathSelection pins the threshold logic: small payloads
// keep the tree/funnel (preserving the existing goldens), large ones
// take the ring, and the selection counters record which fired.
func TestCollectivePathSelection(t *testing.T) {
	const m = 4
	stats := runLocalAt(t, m, DefaultRingThreshold, func(w *Worker) error {
		small := make([]float64, 27)   // 216 B — a Gram batch at R=3
		large := make([]float64, 1024) // 8 KiB
		if err := w.AllReduceSumInPlace(small); err != nil {
			return err
		}
		if err := w.AllReduceSumInPlace(large); err != nil {
			return err
		}
		if _, err := w.AllGatherBytes(make([]byte, 16)); err != nil {
			return err
		}
		_, err := w.AllGatherBytes(make([]byte, 8192))
		return err
	})
	for r, rk := range stats.Ranks {
		c := rk.Obs.Metrics.Counters
		for name, want := range map[string]int64{
			"comm.allreduce.tree":   1,
			"comm.allreduce.ring":   1,
			"comm.allgather.funnel": 1,
			"comm.allgather.ring":   1,
		} {
			if c[name] != want {
				t.Errorf("rank %d: %s = %d, want %d", r, name, c[name], want)
			}
		}
	}
}

// TestCommBufferPoolSteadyState checks the comm-buffer arena reaches a
// steady state: across many all-reduce rounds the pool misses stay at
// the warm-up level instead of growing with traffic.
func TestCommBufferPoolSteadyState(t *testing.T) {
	const m, rounds = 4, 100
	c := NewLocal(m)
	c.SetRingThreshold(ringOn) // ring: the heaviest pooled-buffer traffic
	stats, err := c.Run(func(w *Worker) error {
		vec := make([]float64, 256)
		for i := 0; i < rounds; i++ {
			vec[0] = float64(i)
			if err := w.AllReduceSumInPlace(vec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gets, misses := c.pool.stats()
	if gets < int64(rounds) {
		t.Fatalf("pool saw only %d gets over %d rounds", gets, rounds)
	}
	// Each rank needs at most a few in-flight buffers; every miss past
	// the first rounds would mean the pool is leaking instead of
	// recycling.
	if limit := int64(8 * m); misses > limit {
		t.Errorf("pool missed %d of %d gets, want <= %d (buffers not recycling)", misses, gets, limit)
	}
	for r, rk := range stats.Ranks {
		cc := rk.Obs.Metrics.Counters
		if cc["comm.pool.gets"] == 0 {
			t.Errorf("rank %d recorded no pool gets", r)
		}
		if cc["comm.pool.misses"] > 8 {
			t.Errorf("rank %d: %d pool misses, want warm-up only", r, cc["comm.pool.misses"])
		}
	}
}

// TestRecvAnyArrivalOrder checks RecvAny consumes whichever pending
// peer delivers first (no head-of-line blocking on the slow one), and
// that only FIFO heads are eligible: a peer two operations ahead is
// consumed once per round, in order.
func TestRecvAnyArrivalOrder(t *testing.T) {
	c := NewLocal(3)
	c.SetRecvTimeout(5 * time.Second)
	if _, err := c.Run(func(w *Worker) error {
		const tag = "t"
		switch w.Rank() {
		case 1: // slow peer
			time.Sleep(150 * time.Millisecond)
			return w.Send(0, tag, []byte{1})
		case 2: // fast peer, already two messages ahead
			if err := w.Send(0, tag, []byte{2, 0}); err != nil {
				return err
			}
			return w.Send(0, tag, []byte{2, 1})
		}
		pending := []int{1, 2}
		i, payload, err := w.RecvAny(tag, pending)
		if err != nil {
			return err
		}
		if pending[i] != 2 || len(payload) != 2 || payload[1] != 0 {
			return fmt.Errorf("first receive got rank %d payload %v, want rank 2's first message", pending[i], payload)
		}
		// Rank 2's second message must not double-fill the round: after
		// removing rank 2, only rank 1 remains eligible.
		i, payload, err = w.RecvAny(tag, pending[:1])
		if err != nil {
			return err
		}
		if pending[i] != 1 || len(payload) != 1 {
			return fmt.Errorf("second receive got rank %d payload %v, want rank 1", pending[i], payload)
		}
		// And rank 2's queued second message is still there, in order.
		_, payload, err = w.RecvAny(tag, []int{2})
		if err != nil {
			return err
		}
		if len(payload) != 2 || payload[1] != 1 {
			return fmt.Errorf("third receive got %v, want rank 2's second message", payload)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamTagStability checks stream tags are cached (same string
// value per stream, epoch-prefixed on TCP reruns) and distinct across
// streams and indices.
func TestStreamTagStability(t *testing.T) {
	runLocalAt(t, 1, ringOff, func(w *Worker) error {
		a, b := w.StreamTag("reduce"), w.StreamTag("reduce")
		if a != b {
			return fmt.Errorf("stream tag changed between calls: %q vs %q", a, b)
		}
		if w.StreamTagIndexed("rows", 0) == w.StreamTagIndexed("rows", 1) {
			return fmt.Errorf("indexed streams collide")
		}
		if w.StreamTag("reduce") == w.StreamTag("reduce/rs") {
			return fmt.Errorf("streams collide")
		}
		return nil
	})
}

// TestReduceScalarSumScratch guards the persistent scalar scratch: the
// reduction must not retain state across calls.
func TestReduceScalarSumScratch(t *testing.T) {
	runLocalAt(t, 3, ringOff, func(w *Worker) error {
		for i := 0; i < 4; i++ {
			got, err := w.ReduceScalarSum(float64(i))
			if err != nil {
				return err
			}
			if want := float64(3 * i); got != want {
				return fmt.Errorf("round %d: got %v want %v", i, got, want)
			}
		}
		return nil
	})
}
