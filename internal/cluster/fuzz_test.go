package cluster

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// The two wire codecs — the frame container used by the funnel
// all-gather and the float64 payload codec used everywhere — must be
// total on arbitrary input: any byte string either decodes cleanly or
// returns an error, never panics or over-allocates, and every
// successful decode re-encodes to the identical bytes (the formats
// carry no redundancy, so decode is a bijection on valid input).

func FuzzDecodeFrames(f *testing.F) {
	// Valid encodings.
	f.Add(encodeFrames(nil))
	f.Add(encodeFrames([][]byte{nil}))                       // one zero-length frame
	f.Add(encodeFrames([][]byte{{}, {1}, {}, {2, 3}}))       // empty frames interleaved
	f.Add(encodeFrames([][]byte{{0xde, 0xad}, {0xbe, 0xef}}))
	// Corrupt encodings.
	f.Add([]byte{})                         // shorter than the count header
	f.Add([]byte{1, 0, 0})                  // truncated count header
	f.Add([]byte{1, 0, 0, 0})               // count 1, missing frame header
	f.Add([]byte{1, 0, 0, 0, 5, 0, 0, 0})   // frame claims 5 bytes, has 0
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})   // absurd count, no body
	f.Add(append(encodeFrames([][]byte{{1}}), 0)) // trailing byte
	f.Fuzz(func(t *testing.T, b []byte) {
		parts, err := decodeFrames(b)
		if err != nil {
			return
		}
		// Round-trip: a successful decode must re-encode to b exactly.
		if re := encodeFrames(parts); !bytes.Equal(re, b) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b, re)
		}
		// Every frame must alias the input without exceeding it.
		total := 4
		for _, p := range parts {
			total += 4 + len(p)
		}
		if total != len(b) {
			t.Fatalf("frames account for %d bytes, input has %d", total, len(b))
		}
	})
}

func FuzzDecodeFloat64s(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFloat64s([]float64{0, 1, -1, math.Pi}))
	f.Add(EncodeFloat64s([]float64{math.Inf(1), math.NaN()}))
	f.Add([]byte{1, 2, 3})       // not a multiple of 8
	f.Add(make([]byte, 15))      // one value plus a truncated tail
	f.Fuzz(func(t *testing.T, b []byte) {
		vals, err := DecodeFloat64s(b)
		if len(b)%8 != 0 {
			if err == nil {
				t.Fatalf("decoded %d bytes, want error", len(b))
			}
			return
		}
		if err != nil {
			t.Fatalf("valid length %d rejected: %v", len(b), err)
		}
		if len(vals) != len(b)/8 {
			t.Fatalf("got %d values from %d bytes", len(vals), len(b))
		}
		// Round-trip at the bit level (NaN payloads included).
		re := EncodeFloat64s(vals)
		if !bytes.Equal(re, b) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b, re)
		}
		// And the allocation-free pair agrees with the allocating one.
		dst := make([]float64, len(vals))
		CopyFloat64s(dst, b)
		for i := range dst {
			if math.Float64bits(dst[i]) != math.Float64bits(vals[i]) {
				t.Fatalf("CopyFloat64s[%d] = %x, DecodeFloat64s = %x", i, math.Float64bits(dst[i]), math.Float64bits(vals[i]))
			}
		}
	})
}

// TestDecodeFramesCorruptCountNoOverAlloc pins the capHint guard: a
// frame-count header far beyond what the body could hold must fail
// fast without attempting a giant preallocation.
func TestDecodeFramesCorruptCountNoOverAlloc(t *testing.T) {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b, math.MaxUint32)
	if _, err := decodeFrames(b); err == nil {
		t.Fatal("absurd frame count decoded without error")
	}
	allocs := testing.AllocsPerRun(10, func() {
		_, _ = decodeFrames(b)
	})
	// The only allocations permitted are the small slice header backing
	// array (bounded by the body size, not the claimed count) and the
	// error value.
	if allocs > 4 {
		t.Fatalf("corrupt header caused %v allocations per decode", allocs)
	}
}
