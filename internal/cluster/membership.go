package cluster

// The membership protocol: how a world of rank slots agrees on the
// next view after deaths, drains, and joins.
//
// The protocol is coordinator-led and runs on root (world-addressed)
// workers over reserved NUL-prefixed control tags, each suffixed with
// the epoch being agreed so concurrent or stale transitions can never
// cross-match:
//
//  1. every surviving member of the current view sends its proposed
//     ViewChange to the coordinator — the lowest world rank that is a
//     member of both the current and the next view;
//  2. the coordinator checks the proposals are identical (the failure
//     detector gave everyone the same evidence; see the limitation
//     below) and broadcasts the agreed view back;
//  3. joiners, who cannot know the current epoch, are informed
//     separately by SendAdopt/AwaitAdopt carrying the view plus an
//     application cookie (the elastic driver uses it for the snapshot
//     step the joiner must enter at).
//
// Join and drain are asynchronous requests: a spare broadcasts its
// join wish to every world slot (it cannot know who coordinates), a
// draining member likewise; only the actual coordinator reads them, at
// fence points between snapshot steps, via PollMembershipRequests.
// Requests queued at non-coordinators are bounded garbage — one tiny
// message per request per slot — and are simply never read.
//
// Limitation (documented, by design): proposal agreement substitutes
// for consensus. Survivors that disagree on the failure evidence —
// e.g. two concurrent deaths observed in different orders — fail the
// transition instead of resolving it; the driver surfaces the error.
// DisMASTD's recovery story needs view agreement only between snapshot
// steps and sweeps, where evidence has quiesced, so a full consensus
// round (Raft et al.) would buy nothing for this reproduction.

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Reserved control tags (NUL-prefixed like heartbeats, so no user tag
// can collide).
const (
	joinReqTag  = "\x00join"
	drainReqTag = "\x00drain"
	adoptTag    = "\x00adopt"
	proposeTag  = "\x00vc"   // + "|<epoch>"
	agreedTag   = "\x00view" // + "|<epoch>"
)

// ViewChange is the membership delta one transition applies: ranks
// that died (crashed — unreachable, excluded from the protocol), ranks
// that leave gracefully (drained — they participate in the transition,
// then exit), and ranks that join from the spare pool.
type ViewChange struct {
	Dead  []int
	Leave []int
	Join  []int
}

// Empty reports a no-op change.
func (vc ViewChange) Empty() bool {
	return len(vc.Dead) == 0 && len(vc.Leave) == 0 && len(vc.Join) == 0
}

// Apply returns the next view: cur minus Dead and Leave, plus Join,
// with the epoch bumped.
func (vc ViewChange) Apply(cur View) View {
	members := make([]int, 0, len(cur.Members)+len(vc.Join))
	for _, m := range cur.Members {
		if !containsRank(vc.Dead, m) && !containsRank(vc.Leave, m) {
			members = append(members, m)
		}
	}
	members = append(members, vc.Join...)
	return NewView(cur.Epoch+1, members)
}

func containsRank(list []int, r int) bool {
	for _, x := range list {
		if x == r {
			return true
		}
	}
	return false
}

func encodeRankList(b []byte, list []int) []byte {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], uint32(len(list)))
	b = append(b, w[:]...)
	for _, r := range list {
		binary.LittleEndian.PutUint32(w[:], uint32(r))
		b = append(b, w[:]...)
	}
	return b
}

func decodeRankList(b []byte) ([]int, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("cluster: truncated rank list")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < 4*n {
		return nil, nil, fmt.Errorf("cluster: rank list of %d entries in %d bytes", n, len(b))
	}
	list := make([]int, n)
	for i := range list {
		list[i] = int(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return list, b[4*n:], nil
}

func encodeViewChange(vc ViewChange) []byte {
	b := make([]byte, 0, 12+4*(len(vc.Dead)+len(vc.Leave)+len(vc.Join)))
	b = encodeRankList(b, vc.Dead)
	b = encodeRankList(b, vc.Leave)
	b = encodeRankList(b, vc.Join)
	return b
}

// Coordinator returns the world rank that coordinates the transition
// cur→next: the lowest continuing member, who by construction is alive
// on both sides. −1 when no member continues (a full replacement,
// which the protocol does not support).
func Coordinator(cur, next View) int {
	for _, m := range next.Members {
		if cur.Contains(m) {
			return m
		}
	}
	return -1
}

// AgreeView runs one view transition. Every member of cur except the
// dead ranks must call it with the same cur and vc (derived from the
// same failure evidence or the same fence broadcast); it returns the
// agreed next view. Joiners do not call AgreeView — the caller's
// coordinator informs them with SendAdopt. Call on the root worker,
// after Revoke/ClearFault when recovering from a failure.
func AgreeView(w *Worker, cur View, vc ViewChange) (View, error) {
	if w.world != nil {
		return View{}, fmt.Errorf("cluster: AgreeView needs the root worker")
	}
	me := w.WorldRank()
	if !cur.Contains(me) || containsRank(vc.Dead, me) {
		return View{}, fmt.Errorf("%w: world rank %d in %v", ErrNotMember, me, cur)
	}
	for _, d := range vc.Dead {
		if !cur.Contains(d) {
			return View{}, fmt.Errorf("cluster: dead rank %d not in %v", d, cur)
		}
	}
	for _, l := range vc.Leave {
		if !cur.Contains(l) {
			return View{}, fmt.Errorf("cluster: leaving rank %d not in %v", l, cur)
		}
	}
	for _, j := range vc.Join {
		if cur.Contains(j) {
			return View{}, fmt.Errorf("cluster: joining rank %d already in %v", j, cur)
		}
		if j < 0 || j >= w.Size() {
			return View{}, fmt.Errorf("cluster: joining rank %d outside world of %d", j, w.Size())
		}
	}
	next := vc.Apply(cur)
	if next.Size() == 0 {
		return View{}, fmt.Errorf("cluster: view change empties the cluster")
	}
	coord := Coordinator(cur, next)
	if coord < 0 {
		return View{}, fmt.Errorf("cluster: no continuing member to coordinate %v -> %v", cur, next)
	}
	propose := fmt.Sprintf("%s|%d", proposeTag, next.Epoch)
	agreed := fmt.Sprintf("%s|%d", agreedTag, next.Epoch)
	proposal := encodeViewChange(vc)

	if me != coord {
		if err := w.Send(coord, propose, proposal); err != nil {
			return View{}, err
		}
		payload, err := w.Recv(coord, agreed)
		if err != nil {
			return View{}, err
		}
		got, _, err := decodeView(payload)
		if err != nil {
			return View{}, err
		}
		if !got.Equal(next) {
			return View{}, fmt.Errorf("cluster: coordinator agreed on %v, expected %v", got, next)
		}
		return next, nil
	}

	// Coordinator: collect and validate every survivor's proposal, then
	// publish the agreed view.
	for _, m := range cur.Members {
		if m == me || containsRank(vc.Dead, m) {
			continue
		}
		payload, err := w.Recv(m, propose)
		if err != nil {
			return View{}, fmt.Errorf("cluster: collecting proposal from %d: %w", m, err)
		}
		if !bytes.Equal(payload, proposal) {
			return View{}, fmt.Errorf("cluster: rank %d proposed a different view change for epoch %d", m, next.Epoch)
		}
	}
	out := encodeView(nil, next)
	for _, m := range cur.Members {
		if m == me || containsRank(vc.Dead, m) {
			continue
		}
		if err := w.Send(m, agreed, out); err != nil {
			return View{}, err
		}
	}
	return next, nil
}

// SendAdopt informs a joiner of the view it was admitted to, plus an
// application cookie (the elastic driver sends the snapshot step the
// joiner enters at). Coordinator-side counterpart of AwaitAdopt.
func SendAdopt(w *Worker, to int, v View, cookie int64) error {
	payload := encodeView(nil, v)
	var c [8]byte
	binary.LittleEndian.PutUint64(c[:], uint64(cookie))
	payload = append(payload, c[:]...)
	return w.Send(to, adoptTag, payload)
}

// AwaitAdopt blocks until a coordinator admits this rank to a view,
// returning the view and the cookie. A spare cannot know which ranks
// have died while it idled, so down-marked senders are skipped rather
// than failed on, and a whole-mailbox poison (an epoch revocation
// rippling past) is cleared and retried — bounded by the world size,
// since each dead rank can poison at most once.
func AwaitAdopt(w *Worker) (View, int64, error) {
	others := make([]int, 0, w.Size()-1)
	for r := 0; r < w.Size(); r++ {
		if r != w.WorldRank() {
			others = append(others, r)
		}
	}
	for attempt := 0; ; attempt++ {
		_, payload, err := w.RecvAnyAlive(adoptTag, others)
		if err != nil {
			if _, down := AsPeerDown(err); down && attempt < w.Size() {
				w.ClearFault()
				continue
			}
			return View{}, 0, err
		}
		v, rest, err := decodeView(payload)
		if err != nil {
			return View{}, 0, err
		}
		if len(rest) != 8 {
			return View{}, 0, fmt.Errorf("cluster: adopt payload with %d trailing bytes", len(rest))
		}
		// A revocation may have poisoned the mailbox while the adopt sat
		// queued behind it (receives drain the queue before reporting
		// faults). Every survivor revokes before proposing and the
		// coordinator adopts only after collecting all proposals, so by
		// the time the adopt is readable the old epoch's revocations have
		// all landed — clear them rather than fail the first new-epoch
		// receive on stale poison.
		w.ClearFault()
		return v, int64(binary.LittleEndian.Uint64(rest)), nil
	}
}

// RequestJoin broadcasts this spare's wish to join to every world slot
// (best-effort; the spare cannot know the coordinator). The actual
// coordinator reads it at its next fence via PollMembershipRequests.
func RequestJoin(w *Worker) {
	broadcastRequest(w, joinReqTag)
}

// RequestDrain broadcasts this member's wish to leave gracefully. The
// coordinator excludes it at the next fence; the drainer participates
// in that transition and then exits.
func RequestDrain(w *Worker) {
	broadcastRequest(w, drainReqTag)
}

func broadcastRequest(w *Worker, tag string) {
	for r := 0; r < w.Size(); r++ {
		if r != w.WorldRank() {
			_ = w.Send(r, tag, nil) // best-effort; dead slots just fail
		}
	}
}

// PollMembershipRequests drains all queued join and drain requests
// without blocking. Coordinator-side, at fence points.
func PollMembershipRequests(w *Worker) (joins, drains []int) {
	others := make([]int, 0, w.Size()-1)
	for r := 0; r < w.Size(); r++ {
		if r != w.WorldRank() {
			others = append(others, r)
		}
	}
	for {
		i, _, ok := w.TryRecvAny(joinReqTag, others)
		if !ok {
			break
		}
		if !containsRank(joins, others[i]) {
			joins = append(joins, others[i])
		}
	}
	for {
		i, _, ok := w.TryRecvAny(drainReqTag, others)
		if !ok {
			break
		}
		if !containsRank(drains, others[i]) {
			drains = append(drains, others[i])
		}
	}
	return joins, drains
}
