package cluster

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"dismastd/internal/obs"
)

// Metrics counts one rank's traffic. Counters are atomic because a
// rank's receive counters are bumped by the sending side's goroutine in
// the in-process transport.
type Metrics struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
}

func (m *Metrics) addSent(n int64) { atomic.AddInt64(&m.BytesSent, n); atomic.AddInt64(&m.MsgsSent, 1) }
func (m *Metrics) addRecvd(n int64) {
	atomic.AddInt64(&m.BytesRecv, n)
	atomic.AddInt64(&m.MsgsRecv, 1)
}

// snapshot returns a plain copy safe to read after Run completes.
func (m *Metrics) snapshot() Metrics {
	return Metrics{
		BytesSent: atomic.LoadInt64(&m.BytesSent),
		BytesRecv: atomic.LoadInt64(&m.BytesRecv),
		MsgsSent:  atomic.LoadInt64(&m.MsgsSent),
		MsgsRecv:  atomic.LoadInt64(&m.MsgsRecv),
	}
}

// sub returns m − base, counter-wise. A long-lived TCPNode's counters
// span every Run; subtracting the Run-entry baseline scopes them to one
// invocation.
func (m Metrics) sub(base Metrics) Metrics {
	return Metrics{
		BytesSent: m.BytesSent - base.BytesSent,
		BytesRecv: m.BytesRecv - base.BytesRecv,
		MsgsSent:  m.MsgsSent - base.MsgsSent,
		MsgsRecv:  m.MsgsRecv - base.MsgsRecv,
	}
}

// RankStats is one rank's contribution to a run: traffic plus the work
// units the worker recorded with AddWork (the simtime cost model's
// compute input) and, when the transport carries instrumentation, the
// rank's observability snapshot for the run (metric deltas, per-phase
// timings, retained spans).
type RankStats struct {
	Metrics
	Work float64
	Obs  *obs.RankSnapshot
}

// RunStats aggregates a completed run.
type RunStats struct {
	Ranks []RankStats
	Wall  time.Duration
}

// TotalBytes returns the bytes sent across all ranks.
func (s *RunStats) TotalBytes() int64 {
	var t int64
	for _, r := range s.Ranks {
		t += r.BytesSent
	}
	return t
}

// TotalMessages returns the messages sent across all ranks.
func (s *RunStats) TotalMessages() int64 {
	var t int64
	for _, r := range s.Ranks {
		t += r.MsgsSent
	}
	return t
}

// MaxWork returns the heaviest rank's work units — the straggler that
// bounds parallel compute time.
func (s *RunStats) MaxWork() float64 {
	var max float64
	for _, r := range s.Ranks {
		if r.Work > max {
			max = r.Work
		}
	}
	return max
}

// TotalWork returns the work units summed over ranks.
func (s *RunStats) TotalWork() float64 {
	var t float64
	for _, r := range s.Ranks {
		t += r.Work
	}
	return t
}

// SendHook intercepts outgoing messages; returning an error makes the
// send fail. Used for fault injection in tests.
type SendHook func(from, to int, tag string) error

// DefaultRingThreshold is the payload size, in bytes, at which
// AllReduceSumInPlace and AllGatherBytes switch from the binomial tree
// to the bandwidth-optimal ring. The default keeps every R×R Gram batch
// up to R=13 on the tree path (3R²·8 bytes < 4096), preserving the
// bitwise goldens, while the large factor-row payloads of a real
// multi-node run take the ring.
const DefaultRingThreshold = 4096

// Worker is one rank's handle inside a running cluster: point-to-point
// messaging, collectives (collectives.go, ring.go), pooled payload
// buffers, and work accounting. A Worker is used only by the goroutine
// executing its worker function.
type Worker struct {
	rank, size  int
	mbox        *mailbox
	sendFn      func(to int, msg Message) error
	metrics     *Metrics
	base        Metrics  // metrics at Run entry; snapshots report the delta
	obs         *obs.Obs // per-rank (Local) or per-node (TCP) instruments; may be nil
	recvTimeout time.Duration
	coll        uint64 // collective sequence number; see collectives.go
	tagEpoch    string // namespaces tags across repeated TCPNode.Run calls
	tagBuf      []byte // reusable scratch for nextTag
	streams     map[streamKey]string
	bufs        *bufPool
	poolShared  bool // receiver returns pooled sends (Local); else sender recycles (TCP)
	ringThresh  int  // bytes; <= 0 disables the ring collectives
	scalar      [1]float64
	cc          commCounters
	work        *float64 // shared with derived view workers (view.go)

	// Elastic view mapping (view.go). world is nil on a root worker
	// (rank == world rank, the identity the static hot path takes with
	// zero overhead); on a view worker world[viewRank] is the underlying
	// world rank and worldSelf is this worker's own world rank, which is
	// what travels in Message.From so mailboxes and heartbeats stay
	// world-keyed across view changes.
	world        []int
	worldSelf    int
	worldScratch []int
}

// workerConfig collects what a transport must supply to assemble a
// Worker; both transports funnel through newWorker so the comm-layer
// state (buffer pool, stream-tag cache, instrument handles) stays in
// one place.
type workerConfig struct {
	rank, size  int
	mbox        *mailbox
	sendFn      func(to int, msg Message) error
	metrics     *Metrics
	base        Metrics
	obs         *obs.Obs
	recvTimeout time.Duration
	tagEpoch    string
	bufs        *bufPool
	poolShared  bool
	ringThresh  int
}

func newWorker(cfg workerConfig) *Worker {
	return &Worker{
		rank:        cfg.rank,
		size:        cfg.size,
		mbox:        cfg.mbox,
		sendFn:      cfg.sendFn,
		metrics:     cfg.metrics,
		base:        cfg.base,
		obs:         cfg.obs,
		recvTimeout: cfg.recvTimeout,
		tagEpoch:    cfg.tagEpoch,
		streams:     make(map[streamKey]string),
		bufs:        cfg.bufs,
		poolShared:  cfg.poolShared,
		ringThresh:  cfg.ringThresh,
		cc:          newCommCounters(cfg.obs),
		work:        new(float64),
		worldSelf:   cfg.rank,
	}
}

// commCounters are the pre-resolved comm-layer instruments every worker
// bumps on its hot path (resolving by name per call would cost a map
// lookup per collective).
type commCounters struct {
	treeReduce   *obs.Counter // comm.allreduce.tree — tree-path all-reduces
	ringReduce   *obs.Counter // comm.allreduce.ring — ring-path all-reduces
	funnelGather *obs.Counter // comm.allgather.funnel — funnel-path all-gathers
	ringGather   *obs.Counter // comm.allgather.ring — ring-path all-gathers
	poolGets     *obs.Counter // comm.pool.gets — pooled buffer requests
	poolMisses   *obs.Counter // comm.pool.misses — requests that had to allocate
}

func newCommCounters(o *obs.Obs) commCounters {
	return commCounters{
		treeReduce:   o.Counter("comm.allreduce.tree"),
		ringReduce:   o.Counter("comm.allreduce.ring"),
		funnelGather: o.Counter("comm.allgather.funnel"),
		ringGather:   o.Counter("comm.allgather.ring"),
		poolGets:     o.Counter("comm.pool.gets"),
		poolMisses:   o.Counter("comm.pool.misses"),
	}
}

// Rank returns this worker's rank in [0, Size()).
func (w *Worker) Rank() int { return w.rank }

// Size returns the number of workers in the cluster.
func (w *Worker) Size() int { return w.size }

// AddWork records abstract work units (the distributed algorithms count
// floating-point operations). Single-goroutine by construction; view
// workers share the root worker's accumulator so RunStats sees the
// whole run's work whatever the membership history.
func (w *Worker) AddWork(units float64) { *w.work += units }

// UniqueTag returns a tag namespaced by the worker's collective
// counter. Like the collectives, calls must happen in the same order on
// every worker so matching sides derive the same tag.
func (w *Worker) UniqueTag(prefix string) string { return w.nextTag(prefix) }

// MetricsSnapshot returns the worker's traffic counters accumulated
// since its Run began (a delta for long-lived TCP nodes). Jobs use it
// to separate algorithm traffic from one-time result collection.
func (w *Worker) MetricsSnapshot() Metrics { return w.metrics.snapshot().sub(w.base) }

// Obs returns the worker's observability bundle — the handle algorithm
// code resolves counters and spans through. May return nil (no
// instrumentation); all obs handles are nil-safe.
func (w *Worker) Obs() *obs.Obs { return w.obs }

// worldOf maps a view rank to the underlying world rank (identity on a
// root worker).
func (w *Worker) worldOf(rank int) int {
	if w.world == nil {
		return rank
	}
	return w.world[rank]
}

// Send delivers payload to rank `to` under the given tag. Sending to
// yourself is allowed and loops back through the mailbox.
func (w *Worker) Send(to int, tag string, payload []byte) error {
	if to < 0 || to >= w.size {
		return fmt.Errorf("cluster: send to invalid rank %d of %d", to, w.size)
	}
	msg := Message{From: w.worldSelf, Tag: tag, Payload: payload}
	if err := w.sendFn(w.worldOf(to), msg); err != nil {
		return fmt.Errorf("cluster: rank %d send to %d tag %q: %w", w.rank, to, tag, err)
	}
	w.metrics.addSent(msg.wireSize())
	return nil
}

// Recv blocks until a message from rank `from` with the given tag
// arrives, subject to the cluster's receive timeout.
func (w *Worker) Recv(from int, tag string) ([]byte, error) {
	if from < 0 || from >= w.size {
		return nil, fmt.Errorf("cluster: recv from invalid rank %d of %d", from, w.size)
	}
	payload, err := w.mbox.recv(w.worldOf(from), tag, w.recvTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: rank %d recv from %d tag %q: %w", w.rank, from, tag, err)
	}
	w.metrics.addRecvd(int64(len(payload)) + int64(len(tag)) + 8)
	return payload, nil
}

// RecvAny blocks until a message with the given tag arrives from any of
// the listed ranks and returns the index into `from` of the sender plus
// its payload. It is the arrival-order receive the gather and row
// exchange use to avoid head-of-line blocking on one slow peer: the
// caller holds the pending-sender set, removes the returned entry, and
// calls again — taking only the FIFO head per sender guarantees a peer
// running ahead into the next operation on the same stream is consumed
// at most once per round.
func (w *Worker) RecvAny(tag string, from []int) (int, []byte, error) {
	return w.recvAny(tag, from, true)
}

// RecvAnyAlive is RecvAny for control-plane receives that want *any
// live* sender: candidates marked down are skipped instead of failing
// the receive, which only errors once every candidate is down (or on a
// timeout / mailbox poison). Joiners awaiting adoption use it because
// they cannot know which world ranks have died while they idled.
func (w *Worker) RecvAnyAlive(tag string, from []int) (int, []byte, error) {
	return w.recvAny(tag, from, false)
}

func (w *Worker) recvAny(tag string, from []int, failDown bool) (int, []byte, error) {
	cand, err := w.worldCandidates(from)
	if err != nil {
		return -1, nil, err
	}
	i, payload, err := w.mbox.recvAny(tag, cand, w.recvTimeout, failDown)
	if err != nil {
		return -1, nil, fmt.Errorf("cluster: rank %d recv-any tag %q: %w", w.rank, tag, err)
	}
	w.metrics.addRecvd(int64(len(payload)) + int64(len(tag)) + 8)
	return i, payload, nil
}

// TryRecvAny polls for a queued message with the tag from any of the
// listed ranks without blocking; ok is false when none is queued.
// Control-plane only — membership fences drain join/drain requests with
// it between steps.
func (w *Worker) TryRecvAny(tag string, from []int) (int, []byte, bool) {
	cand, err := w.worldCandidates(from)
	if err != nil {
		return -1, nil, false
	}
	i, payload, ok := w.mbox.poll(tag, cand)
	if ok {
		w.metrics.addRecvd(int64(len(payload)) + int64(len(tag)) + 8)
	}
	return i, payload, ok
}

// worldCandidates validates a candidate rank list and maps it to world
// ranks, reusing the worker's scratch slice on the view path so the
// steady-state exchange stays allocation-free.
func (w *Worker) worldCandidates(from []int) ([]int, error) {
	if len(from) == 0 {
		return nil, fmt.Errorf("cluster: recv-any with no candidate ranks")
	}
	for _, f := range from {
		if f < 0 || f >= w.size {
			return nil, fmt.Errorf("cluster: recv-any from invalid rank %d of %d", f, w.size)
		}
	}
	if w.world == nil {
		return from, nil
	}
	w.worldScratch = w.worldScratch[:0]
	for _, f := range from {
		w.worldScratch = append(w.worldScratch, w.world[f])
	}
	return w.worldScratch, nil
}

// GetBuf returns a pooled payload buffer of length n. The buffer
// belongs to the caller until handed to SendPooled or returned with
// PutBuf.
func (w *Worker) GetBuf(n int) []byte {
	b, missed := w.bufs.get(n)
	w.cc.poolGets.Inc()
	if missed {
		w.cc.poolMisses.Inc()
	}
	return b
}

// PutBuf returns a payload buffer to the transport's pool. Receivers of
// pooled sends call it once they have decoded the payload; passing a
// buffer of foreign origin (e.g. a TCP receive) simply adopts it.
func (w *Worker) PutBuf(b []byte) { w.bufs.put(b) }

// SendPooled sends a buffer obtained from GetBuf and transfers its
// ownership to the message: on the in-process transport the payload is
// delivered by reference and the receiving rank recycles it (the pool
// is shared across ranks), while on TCP the wire encoder copies the
// bytes synchronously, so the buffer is recycled here at once.
// Self-sends loop through the local mailbox on both transports and are
// recycled by the receiving code path. Either way the caller must not
// touch buf after the call.
func (w *Worker) SendPooled(to int, tag string, buf []byte) error {
	err := w.Send(to, tag, buf)
	if !w.poolShared && to != w.rank {
		w.bufs.put(buf)
	}
	return err
}

// Local is an in-process cluster: M workers as goroutines delivering
// messages through shared-memory mailboxes, with the same accounting
// the TCP transport performs. It is the substrate for the experiment
// harness — see DESIGN.md for how simtime turns its measurements into
// cluster-scale time estimates.
type Local struct {
	size        int
	recvTimeout time.Duration
	sendHook    SendHook
	fault       *FaultPlan
	obs         *obs.Obs // cluster-level transport instruments (fault counters)
	fc          faultCounters
	logger      *slog.Logger
	pool        *bufPool
	ringThresh  int
	elastic     bool
}

// faultCounters are the pre-resolved injection counters both transports
// bump when a FaultPlan rule fires, indexed by op so chaos tests can
// assert exactly which faults the transport observed.
type faultCounters struct {
	injected *obs.Counter
	byOp     [4]*obs.Counter // FaultError, FaultDrop, FaultDelay, FaultCut
}

func newFaultCounters(o *obs.Obs) faultCounters {
	return faultCounters{
		injected: o.Counter("transport.faults.injected"),
		byOp: [4]*obs.Counter{
			o.Counter("transport.faults.error"),
			o.Counter("transport.faults.drop"),
			o.Counter("transport.faults.delay"),
			o.Counter("transport.faults.cut"),
		},
	}
}

func (f faultCounters) note(op FaultOp) {
	f.injected.Inc()
	if int(op) >= 0 && int(op) < len(f.byOp) {
		f.byOp[op].Inc()
	}
}

// NewLocal returns an in-process cluster of the given size with a
// 30-second receive timeout.
func NewLocal(size int) *Local {
	if size <= 0 {
		panic(fmt.Sprintf("cluster: NewLocal(%d)", size))
	}
	c := &Local{
		size:        size,
		recvTimeout: 30 * time.Second,
		obs:         obs.New(),
		pool:        newBufPool(),
		ringThresh:  DefaultRingThreshold,
	}
	c.fc = newFaultCounters(c.obs)
	return c
}

// SetRecvTimeout overrides the receive timeout (zero disables it).
func (c *Local) SetRecvTimeout(d time.Duration) { c.recvTimeout = d }

// SetRingThreshold overrides the payload size, in bytes, at which the
// all-reduce and all-gather collectives leave the binomial tree for the
// bandwidth-optimal ring. Values <= 0 disable the ring path entirely.
// Must be called before Run; every rank of a cluster shares one value,
// which keeps path selection identical across ranks.
func (c *Local) SetRingThreshold(bytes int) { c.ringThresh = bytes }

// SetSendHook installs a fault-injection hook applied to every send.
func (c *Local) SetSendHook(h SendHook) { c.sendHook = h }

// Obs returns the cluster-level observability bundle: transport events
// that belong to the cluster rather than one rank (fault injections).
// Per-rank instruments live on each run's Workers and surface through
// RankStats.Obs.
func (c *Local) Obs() *obs.Obs { return c.obs }

// SetLogger installs the base logger cloned (with a rank attribute)
// into every worker's bundle. Must be called before Run.
func (c *Local) SetLogger(l *slog.Logger) { c.logger = l }

// SetFaultPlan installs a deterministic fault schedule applied to every
// send (after the hook, if both are set). FaultCut has no connection to
// break in-process; like a recovered TCP cut, the message is delivered.
func (c *Local) SetFaultPlan(p *FaultPlan) { c.fault = p }

// SetElastic switches Run to elastic failure semantics, matching what a
// TCP deployment's heartbeats provide: a worker function returning —
// with or without an error — marks its rank down in every other
// mailbox (drain-then-fail), instead of an error poisoning the whole
// cluster. Survivors observe the exit as a rank-attributed ErrPeerDown
// on their next receive from it and can run the membership protocol;
// a returned error is still recorded and returned by Run. Chaos tests
// simulate a crash by returning nil mid-algorithm. Must be set before
// Run.
func (c *Local) SetElastic(on bool) { c.elastic = on }

// Size returns the number of workers the cluster runs.
func (c *Local) Size() int { return c.size }

// Run executes fn once per rank concurrently and waits for all ranks.
// The first error poisons every mailbox so blocked receives fail fast,
// and is returned after all goroutines exit. Statistics are valid even
// on error.
func (c *Local) Run(fn func(*Worker) error) (*RunStats, error) {
	mboxes := make([]*mailbox, c.size)
	metrics := make([]*Metrics, c.size)
	for i := range mboxes {
		mboxes[i] = newMailbox()
		metrics[i] = &Metrics{}
	}
	workers := make([]*Worker, c.size)
	for i := range workers {
		rank := i
		ro := obs.New()
		ro.Trace.SetRank(rank)
		if c.logger != nil {
			ro.Log = c.logger.With("rank", rank)
		}
		workers[i] = newWorker(workerConfig{
			rank:        rank,
			size:        c.size,
			mbox:        mboxes[rank],
			metrics:     metrics[rank],
			obs:         ro,
			recvTimeout: c.recvTimeout,
			bufs:        c.pool,
			poolShared:  true,
			ringThresh:  c.ringThresh,
			sendFn: func(to int, msg Message) error {
				if msg.Tag == revokeTag {
					// Epoch revocation is control-plane: it bypasses
					// fault injection and acts on the mailbox directly,
					// mirroring the TCP readLoop's interception.
					dead, err := decodeRevoke(msg.Payload)
					if err != nil {
						return err
					}
					mboxes[to].peerDown(dead, &ErrPeerDown{Rank: dead}, true)
					return nil
				}
				if c.sendHook != nil {
					if err := c.sendHook(msg.From, to, msg.Tag); err != nil {
						return err
					}
				}
				if c.fault != nil {
					if inj := c.fault.decide(msg.From, to, msg.Tag); inj != nil {
						c.fc.note(inj.op)
						switch inj.op {
						case FaultError:
							return inj.err
						case FaultDrop:
							return nil
						case FaultDelay:
							time.Sleep(inj.delay)
						}
					}
				}
				mboxes[to].deliver(msg.From, msg.Tag, msg.Payload)
				return nil
			},
		})
	}

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := range workers {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			err := fn(w)
			if c.elastic {
				// Elastic semantics: any exit — crash simulation, drain,
				// or normal completion — reads as this rank going dark.
				// Drain-then-fail delivery means finished peers' queued
				// messages still land, so normal completion is unharmed.
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("rank %d: %w", w.rank, err)
					}
					mu.Unlock()
				}
				for r, mb := range mboxes {
					if r != w.rank {
						mb.peerDown(w.rank, &ErrPeerDown{Rank: w.rank}, false)
					}
				}
				return
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("rank %d: %w", w.rank, err)
				}
				mu.Unlock()
				for _, mb := range mboxes {
					mb.fail(fmt.Errorf("%w: rank %d failed: %v", ErrClosed, w.rank, err))
				}
			}
		}(workers[i])
	}
	wg.Wait()

	stats := &RunStats{Wall: time.Since(start)}
	for i, w := range workers {
		snap := w.obs.Snapshot()
		stats.Ranks = append(stats.Ranks, RankStats{Metrics: metrics[i].snapshot(), Work: *w.work, Obs: &snap})
	}
	return stats, firstErr
}
