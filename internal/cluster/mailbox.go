package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrTimeout reports a receive that waited longer than the worker's
// receive timeout — usually a deadlocked or crashed peer.
var ErrTimeout = errors.New("cluster: receive timed out")

// ErrClosed reports an operation on a cluster that has been shut down
// or poisoned by another worker's failure.
var ErrClosed = errors.New("cluster: closed")

type mailKey struct {
	from int
	tag  string
}

// msgQueue is one (sender, tag) FIFO. Popped slots are nil'd out and
// the backing array is compacted and reused across drain cycles, so
// steady-state traffic never reallocates.
type msgQueue struct {
	buf  [][]byte
	head int
}

func (q *msgQueue) push(p []byte) {
	if q.head > 0 && len(q.buf) == cap(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, p)
}

func (q *msgQueue) pop() []byte {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	return p
}

func (q *msgQueue) empty() bool { return q.head == len(q.buf) }

// mailbox demultiplexes incoming messages into per-(sender, tag) FIFO
// queues so a worker can wait for exactly the message it needs
// regardless of arrival interleaving. Queues drained empty go back to a
// spare list (and lose their map entry), so one-shot counter tags do
// not leak memory while the recurring stream tags cycle through the
// same queue structs allocation-free.
//
// Receives are single-consumer by the Worker contract (one goroutine
// per rank); deliveries may come from any goroutine.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[mailKey]*msgQueue
	spare  []*msgQueue
	timer  *time.Timer // persistent wake-up timer for bounded receives
	err    error

	// down marks individual senders as dead with drain-then-fail
	// semantics: messages a sender queued before dying are still
	// delivered, and only once its queue is empty does a receive from it
	// fail with the recorded error. This is what lets an elastic view
	// change consume the tail of a dead rank's traffic instead of
	// discarding it.
	down map[int]error

	// revoked remembers which dead ranks have already poisoned this
	// mailbox once, making epoch revocation idempotent: after a survivor
	// clears the poison to run the membership protocol, a straggler's
	// duplicate revoke for the same dead rank must not poison it again.
	revoked map[int]bool
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[mailKey]*msgQueue)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deliver appends a message; it never blocks.
func (m *mailbox) deliver(from int, tag string, payload []byte) {
	m.mu.Lock()
	k := mailKey{from, tag}
	q := m.queues[k]
	if q == nil {
		if n := len(m.spare); n > 0 {
			q = m.spare[n-1]
			m.spare[n-1] = nil
			m.spare = m.spare[:n-1]
		} else {
			q = &msgQueue{}
		}
		m.queues[k] = q
	}
	q.push(payload)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// fail poisons the mailbox: every pending and future receive returns err.
func (m *mailbox) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// peerDown marks one sender dead. Receives from it drain its remaining
// queued messages, then fail with err. With poison set the whole
// mailbox is additionally poisoned — but at most once per dead rank
// (see revoked), so duplicate revocations arriving after clearPoison
// cannot re-poison a recovering worker mid-protocol.
func (m *mailbox) peerDown(rank int, err error, poison bool) {
	m.mu.Lock()
	if m.down == nil {
		m.down = make(map[int]error)
	}
	if _, dup := m.down[rank]; !dup {
		m.down[rank] = err
	}
	if poison {
		if m.revoked == nil {
			m.revoked = make(map[int]bool)
		}
		if !m.revoked[rank] {
			m.revoked[rank] = true
			if m.err == nil {
				m.err = err
			}
		}
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// revive clears a sender's down mark (and its revocation memory) after
// the rank demonstrably came back — a restarted TCP peer whose traffic
// is flowing again, or a world slot re-admitted to a view.
func (m *mailbox) revive(rank int) {
	m.mu.Lock()
	delete(m.down, rank)
	delete(m.revoked, rank)
	m.mu.Unlock()
}

// clearPoison removes a whole-mailbox poison so the elastic recovery
// protocol can reuse the transport. Per-sender down marks persist:
// receives from dead ranks keep failing fast after the clear.
func (m *mailbox) clearPoison() {
	m.mu.Lock()
	m.err = nil
	m.mu.Unlock()
}

// downErr reports the drain-then-fail error for a sender: non-nil only
// when the sender is marked down AND its (from, tag) queue is empty.
// Caller holds mu.
func (m *mailbox) downErr(from int, tag string) error {
	if m.down == nil {
		return nil
	}
	err := m.down[from]
	if err == nil {
		return nil
	}
	if q := m.queues[mailKey{from, tag}]; q != nil && !q.empty() {
		return nil
	}
	return err
}

// take pops the queue's head and recycles the queue once drained.
// Caller holds mu.
func (m *mailbox) take(k mailKey, q *msgQueue) []byte {
	p := q.pop()
	if q.empty() {
		delete(m.queues, k)
		q.buf = q.buf[:0]
		q.head = 0
		m.spare = append(m.spare, q)
	}
	return p
}

// wake is the timer callback; broadcasting without the lock is safe.
func (m *mailbox) wake() { m.cond.Broadcast() }

// arm starts (or restarts) the mailbox's shared timeout timer. One
// timer suffices because receives are single-consumer. Caller holds mu.
func (m *mailbox) arm(timeout time.Duration) {
	if m.timer == nil {
		m.timer = time.AfterFunc(timeout, m.wake)
	} else {
		m.timer.Reset(timeout)
	}
}

// recv waits for a message from the given sender and tag, up to the
// timeout (no timeout when zero). The shared timer wakes the condition
// variable so timeouts fire even with no traffic.
func (m *mailbox) recv(from int, tag string, timeout time.Duration) ([]byte, error) {
	k := mailKey{from, tag}
	m.mu.Lock()
	defer m.mu.Unlock()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		m.arm(timeout)
		defer m.timer.Stop()
	}
	for {
		if q := m.queues[k]; q != nil && !q.empty() {
			return m.take(k, q), nil
		}
		if m.err != nil {
			return nil, m.err
		}
		if err := m.downErr(from, tag); err != nil {
			return nil, err
		}
		if timeout > 0 && time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: from %d tag %q", ErrTimeout, from, tag)
		}
		m.cond.Wait()
	}
}

// recvAny waits for a message carrying the tag from any of the listed
// senders, returning the index into `from` of the sender whose message
// was taken. When several senders have queued messages the lowest index
// wins; only the head of each sender's FIFO is eligible, so a sender
// running ahead into the next operation on the same stream cannot be
// consumed twice in one round.
//
// failDown selects how per-sender down marks surface. When true (the
// collective/exchange contract, which needs *all* listed senders) any
// drained-and-down candidate fails the receive immediately with its
// rank-attributed error rather than letting the caller hang until
// timeout. When false (a control receive wanting *any live* sender,
// e.g. a joiner awaiting adoption) down candidates are skipped and the
// receive fails only once every candidate is down.
func (m *mailbox) recvAny(tag string, from []int, timeout time.Duration, failDown bool) (int, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		m.arm(timeout)
		defer m.timer.Stop()
	}
	for {
		for i, f := range from {
			k := mailKey{f, tag}
			if q := m.queues[k]; q != nil && !q.empty() {
				return i, m.take(k, q), nil
			}
		}
		if m.err != nil {
			return -1, nil, m.err
		}
		downCount := 0
		var firstDown error
		for _, f := range from {
			if err := m.downErr(f, tag); err != nil {
				downCount++
				if firstDown == nil {
					firstDown = err
				}
			}
		}
		if firstDown != nil && (failDown || downCount == len(from)) {
			return -1, nil, firstDown
		}
		if timeout > 0 && time.Now().After(deadline) {
			return -1, nil, fmt.Errorf("%w: any of %v tag %q", ErrTimeout, from, tag)
		}
		m.cond.Wait()
	}
}

// poll is the non-blocking form of recvAny with failDown=false: it
// returns the first queued message for the tag among the listed
// senders, or ok=false if none is queued right now. Control-plane only
// (membership fences); never errors and never blocks.
func (m *mailbox) poll(tag string, from []int) (int, []byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, f := range from {
		k := mailKey{f, tag}
		if q := m.queues[k]; q != nil && !q.empty() {
			return i, m.take(k, q), true
		}
	}
	return -1, nil, false
}
