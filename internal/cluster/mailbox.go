package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrTimeout reports a receive that waited longer than the worker's
// receive timeout — usually a deadlocked or crashed peer.
var ErrTimeout = errors.New("cluster: receive timed out")

// ErrClosed reports an operation on a cluster that has been shut down
// or poisoned by another worker's failure.
var ErrClosed = errors.New("cluster: closed")

type mailKey struct {
	from int
	tag  string
}

// msgQueue is one (sender, tag) FIFO. Popped slots are nil'd out and
// the backing array is compacted and reused across drain cycles, so
// steady-state traffic never reallocates.
type msgQueue struct {
	buf  [][]byte
	head int
}

func (q *msgQueue) push(p []byte) {
	if q.head > 0 && len(q.buf) == cap(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, p)
}

func (q *msgQueue) pop() []byte {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	return p
}

func (q *msgQueue) empty() bool { return q.head == len(q.buf) }

// mailbox demultiplexes incoming messages into per-(sender, tag) FIFO
// queues so a worker can wait for exactly the message it needs
// regardless of arrival interleaving. Queues drained empty go back to a
// spare list (and lose their map entry), so one-shot counter tags do
// not leak memory while the recurring stream tags cycle through the
// same queue structs allocation-free.
//
// Receives are single-consumer by the Worker contract (one goroutine
// per rank); deliveries may come from any goroutine.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[mailKey]*msgQueue
	spare  []*msgQueue
	timer  *time.Timer // persistent wake-up timer for bounded receives
	err    error
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[mailKey]*msgQueue)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deliver appends a message; it never blocks.
func (m *mailbox) deliver(from int, tag string, payload []byte) {
	m.mu.Lock()
	k := mailKey{from, tag}
	q := m.queues[k]
	if q == nil {
		if n := len(m.spare); n > 0 {
			q = m.spare[n-1]
			m.spare[n-1] = nil
			m.spare = m.spare[:n-1]
		} else {
			q = &msgQueue{}
		}
		m.queues[k] = q
	}
	q.push(payload)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// fail poisons the mailbox: every pending and future receive returns err.
func (m *mailbox) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take pops the queue's head and recycles the queue once drained.
// Caller holds mu.
func (m *mailbox) take(k mailKey, q *msgQueue) []byte {
	p := q.pop()
	if q.empty() {
		delete(m.queues, k)
		q.buf = q.buf[:0]
		q.head = 0
		m.spare = append(m.spare, q)
	}
	return p
}

// wake is the timer callback; broadcasting without the lock is safe.
func (m *mailbox) wake() { m.cond.Broadcast() }

// arm starts (or restarts) the mailbox's shared timeout timer. One
// timer suffices because receives are single-consumer. Caller holds mu.
func (m *mailbox) arm(timeout time.Duration) {
	if m.timer == nil {
		m.timer = time.AfterFunc(timeout, m.wake)
	} else {
		m.timer.Reset(timeout)
	}
}

// recv waits for a message from the given sender and tag, up to the
// timeout (no timeout when zero). The shared timer wakes the condition
// variable so timeouts fire even with no traffic.
func (m *mailbox) recv(from int, tag string, timeout time.Duration) ([]byte, error) {
	k := mailKey{from, tag}
	m.mu.Lock()
	defer m.mu.Unlock()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		m.arm(timeout)
		defer m.timer.Stop()
	}
	for {
		if q := m.queues[k]; q != nil && !q.empty() {
			return m.take(k, q), nil
		}
		if m.err != nil {
			return nil, m.err
		}
		if timeout > 0 && time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: from %d tag %q", ErrTimeout, from, tag)
		}
		m.cond.Wait()
	}
}

// recvAny waits for a message carrying the tag from any of the listed
// senders, returning the index into `from` of the sender whose message
// was taken. When several senders have queued messages the lowest index
// wins; only the head of each sender's FIFO is eligible, so a sender
// running ahead into the next operation on the same stream cannot be
// consumed twice in one round.
func (m *mailbox) recvAny(tag string, from []int, timeout time.Duration) (int, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		m.arm(timeout)
		defer m.timer.Stop()
	}
	for {
		for i, f := range from {
			k := mailKey{f, tag}
			if q := m.queues[k]; q != nil && !q.empty() {
				return i, m.take(k, q), nil
			}
		}
		if m.err != nil {
			return -1, nil, m.err
		}
		if timeout > 0 && time.Now().After(deadline) {
			return -1, nil, fmt.Errorf("%w: any of %v tag %q", ErrTimeout, from, tag)
		}
		m.cond.Wait()
	}
}
