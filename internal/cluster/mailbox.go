package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrTimeout reports a receive that waited longer than the worker's
// receive timeout — usually a deadlocked or crashed peer.
var ErrTimeout = errors.New("cluster: receive timed out")

// ErrClosed reports an operation on a cluster that has been shut down
// or poisoned by another worker's failure.
var ErrClosed = errors.New("cluster: closed")

type mailKey struct {
	from int
	tag  string
}

// mailbox demultiplexes incoming messages into per-(sender, tag) FIFO
// queues so a worker can wait for exactly the message it needs
// regardless of arrival interleaving.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[mailKey][][]byte
	err    error
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[mailKey][][]byte)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deliver appends a message; it never blocks.
func (m *mailbox) deliver(from int, tag string, payload []byte) {
	m.mu.Lock()
	k := mailKey{from, tag}
	m.queues[k] = append(m.queues[k], payload)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// fail poisons the mailbox: every pending and future receive returns err.
func (m *mailbox) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// recv waits for a message from the given sender and tag, up to the
// timeout (no timeout when zero). A background timer wakes the
// condition variable so timeouts fire even with no traffic.
func (m *mailbox) recv(from int, tag string, timeout time.Duration) ([]byte, error) {
	k := mailKey{from, tag}
	var deadline time.Time
	var timer *time.Timer
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		timer = time.AfterFunc(timeout, m.cond.Broadcast)
		defer timer.Stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if q := m.queues[k]; len(q) > 0 {
			payload := q[0]
			if len(q) == 1 {
				delete(m.queues, k)
			} else {
				m.queues[k] = q[1:]
			}
			return payload, nil
		}
		if m.err != nil {
			return nil, m.err
		}
		if timeout > 0 && time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: from %d tag %q", ErrTimeout, from, tag)
		}
		m.cond.Wait()
	}
}
