package cluster_test

// Chaos tests driving the full DisMASTD step over the TCP transport
// with deterministic fault injection: the acceptance bar for the
// fault-tolerance layer is that a transient connection drop mid-step is
// recovered transparently (bitwise-correct factors), while a
// permanently dead rank surfaces as a typed ErrPeerDown within the
// heartbeat window.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dismastd/internal/cluster"
	"dismastd/internal/core"
	"dismastd/internal/dtd"
	"dismastd/internal/mat"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

func chaosTensor(dims []int, nnz int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.Float64()+0.5)
	}
	return b.Build()
}

func startNodes(t *testing.T, size int) []*cluster.TCPNode {
	t.Helper()
	rv, err := cluster.NewRendezvous("127.0.0.1:0", size)
	if err != nil {
		t.Skipf("loopback networking unavailable: %v", err)
	}
	t.Cleanup(func() { rv.Close() })
	nodes := make([]*cluster.TCPNode, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = cluster.JoinTCP(rv.Addr(), "127.0.0.1:0", 5*time.Second)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	if err := rv.Wait(); err != nil {
		t.Fatalf("rendezvous: %v", err)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return nodes
}

func stepOpts(workers int) core.Options {
	return core.Options{Rank: 3, MaxIters: 4, Tol: 0, Mu: 0.8, Seed: 21, Workers: workers, Method: partition.MTPMethod}
}

func TestChaosTCPTransientCutRecoversExactFactors(t *testing.T) {
	const workers = 3
	snap := chaosTensor([]int{18, 15, 12}, 700, 11)
	prev := dtd.EmptyState(3, 3)

	// Reference: the same step on the in-process transport with no
	// faults. The distributed computation is deterministic, so the TCP
	// run must reproduce it bitwise.
	refJob, err := core.NewStepJob(prev, snap, stepOpts(workers))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.NewLocal(workers).Run(refJob.RunWorker); err != nil {
		t.Fatal(err)
	}
	refState, _, err := refJob.Result()
	if err != nil {
		t.Fatal(err)
	}

	nodes := startNodes(t, workers)
	// One transient connection drop mid-step on rank 1's outbound link
	// to rank 0: the send path must cut, redial, and resend without the
	// algorithm noticing.
	plan := cluster.NewFaultPlan().Add(cluster.FaultRule{From: 1, To: 0, FirstSeq: 3, Op: cluster.FaultCut})
	for _, n := range nodes {
		n.SetRecvTimeout(30 * time.Second)
		if n.Rank() == 1 {
			n.SetFaultPlan(plan)
		}
	}

	job, err := core.NewStepJob(prev, snap, stepOpts(workers))
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *cluster.TCPNode) {
			defer wg.Done()
			_, errs[i] = n.Run(job.RunWorker)
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	if plan.FiredOp(cluster.FaultCut) != 1 {
		t.Fatalf("cuts fired = %d, want 1", plan.FiredOp(cluster.FaultCut))
	}
	got, _, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	for m := range got.Factors {
		if d := mat.MaxAbsDiff(got.Factors[m], refState.Factors[m]); d != 0 {
			t.Fatalf("mode %d factors diverge by %g after reconnection", m, d)
		}
	}
	// The recovery is visible in the injecting node's registry: the cut
	// write evicted the connection, the redial was a reconnect, and the
	// injected fault was counted by kind.
	for _, n := range nodes {
		if n.Rank() != 1 {
			continue
		}
		m := n.Obs().Reg.Snapshot().Counters
		if m["transport.faults.cut"] != 1 {
			t.Fatalf("faults.cut = %d, want 1", m["transport.faults.cut"])
		}
		if m["transport.evictions"] != 1 || m["transport.reconnects"] != 1 {
			t.Fatalf("evictions = %d, reconnects = %d, want 1 each",
				m["transport.evictions"], m["transport.reconnects"])
		}
	}
}

// TestChaosTCPKillMidRingCollective kills a rank midway through a ring
// all-reduce whose payload is above DefaultRingThreshold: rank 2's
// second reduce-scatter send errors (fault injection), its node closes,
// and the survivors — one blocked on the dead rank, the other blocked
// head-of-line on a *live* neighbour that can make no progress — must
// both surface a rank-attributed ErrPeerDown well before the receive
// timeout instead of hanging in the ring.
func TestChaosTCPKillMidRingCollective(t *testing.T) {
	const workers = 3
	nodes := startNodes(t, workers)
	const interval = 25 * time.Millisecond
	crash := errors.New("injected crash mid ring")
	for _, n := range nodes {
		n.SetRecvTimeout(60 * time.Second)
		if err := n.StartHeartbeat(interval, 3); err != nil {
			t.Fatal(err)
		}
		if n.Rank() == 2 {
			// Seq 1 on the (2 -> 0) pair is rank 2's second ring block:
			// the kill lands strictly inside the reduce-scatter phase,
			// after the survivors have consumed its first block.
			n.SetFaultPlan(cluster.NewFaultPlan().Add(cluster.FaultRule{
				From: 2, To: 0, TagPrefix: "reduce/", FirstSeq: 1, Op: cluster.FaultError, Err: crash,
			}))
		}
	}
	start := time.Now()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *cluster.TCPNode) {
			defer wg.Done()
			_, errs[i] = n.Run(func(w *cluster.Worker) error {
				// 4096 floats = 32 KiB, far above the 4096-byte ring
				// threshold.
				vec := make([]float64, 4096)
				for j := range vec {
					vec[j] = float64(w.Rank())
				}
				return w.AllReduceSumInPlace(vec)
			})
			if n.Rank() == 2 {
				n.Close() // the injected error "crashes" the process
			}
		}(i, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, n := range nodes {
		if n.Rank() == 2 {
			if !errors.Is(errs[i], crash) {
				t.Fatalf("killed rank error = %v", errs[i])
			}
			continue
		}
		pd, ok := cluster.AsPeerDown(errs[i])
		if !ok {
			t.Fatalf("rank %d error = %v, want ErrPeerDown", n.Rank(), errs[i])
		}
		if pd.Rank != 2 {
			t.Fatalf("rank %d blamed peer %d, want 2", n.Rank(), pd.Rank)
		}
		// The collective that died really was the ring path.
		m := n.Obs().Reg.Snapshot().Counters
		if m["comm.allreduce.ring"] != 1 {
			t.Fatalf("rank %d allreduce.ring = %d, want 1", n.Rank(), m["comm.allreduce.ring"])
		}
	}
	if elapsed > 10*time.Second {
		t.Fatalf("ring kill detection took %v", elapsed)
	}
}

func TestChaosTCPKilledRankSurfacesPeerDown(t *testing.T) {
	const workers = 3
	snap := chaosTensor([]int{16, 14, 12}, 500, 31)
	prev := dtd.EmptyState(3, 3)
	nodes := startNodes(t, workers)
	const interval = 25 * time.Millisecond
	for _, n := range nodes {
		n.SetRecvTimeout(60 * time.Second)
		if err := n.StartHeartbeat(interval, 3); err != nil {
			t.Fatal(err)
		}
	}
	job, err := core.NewStepJob(prev, snap, stepOpts(workers))
	if err != nil {
		t.Fatal(err)
	}
	// The rank-2 node dies before doing any work; survivors must fail
	// with a rank-attributed ErrPeerDown well before the 60s receive
	// timeout instead of hanging in their collectives.
	start := time.Now()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *cluster.TCPNode) {
			defer wg.Done()
			if n.Rank() == 2 {
				n.Close()
				errs[i] = errors.New("killed")
				return
			}
			_, errs[i] = n.Run(job.RunWorker)
		}(i, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, n := range nodes {
		if n.Rank() == 2 {
			continue
		}
		pd, ok := cluster.AsPeerDown(errs[i])
		if !ok {
			t.Fatalf("rank %d error = %v, want ErrPeerDown", n.Rank(), errs[i])
		}
		if pd.Rank != 2 {
			t.Fatalf("rank %d blamed peer %d, want 2", n.Rank(), pd.Rank)
		}
	}
	if elapsed > 10*time.Second {
		t.Fatalf("detection took %v", elapsed)
	}
	// Every survivor's failure detector recorded the missed peer (one
	// heartbeat.misses increment per declared-down rank) and was probing.
	for _, n := range nodes {
		if n.Rank() == 2 {
			continue
		}
		m := n.Obs().Reg.Snapshot().Counters
		if m["transport.heartbeat.misses"] != 1 {
			t.Fatalf("rank %d heartbeat.misses = %d, want 1", n.Rank(), m["transport.heartbeat.misses"])
		}
		if m["transport.heartbeat.probes"] == 0 {
			t.Fatalf("rank %d sent no probes", n.Rank())
		}
	}
}
