package cluster

import (
	"fmt"
	"testing"
	"time"
)

// The transport metrics charge every message len(payload)+len(tag)+8
// on both the sending and receiving side. This file pins that contract
// per collective: for each operation the cluster-wide counters must
// equal the byte totals computed from the operation's exact message
// pattern — message counts from the tree/ring structure, payload sizes
// from the wire codec. Any double-count (the PR-1 recv bug), dropped
// message, or unaccounted self-send breaks the equality exactly.

// msgGroup describes one tag's traffic within a collective: how many
// messages flow cluster-wide and their summed payload bytes.
type msgGroup struct {
	tag     string
	msgs    int64
	payload int64
}

func expectedTraffic(groups []msgGroup) (bytes, msgs int64) {
	for _, g := range groups {
		bytes += g.payload + g.msgs*int64(len(g.tag)+8)
		msgs += g.msgs
	}
	return
}

func TestCollectiveByteAccounting(t *testing.T) {
	const (
		n = 25 // floats per all-reduce; odd and > M, so ring segments are uneven
		p = 40 // bytes per all-gather contribution
	)
	for _, m := range []int{3, 4} {
		m64 := int64(m)
		framed := int64(4 + m*(4+p)) // funnel rebroadcast: count header + per-rank frames
		cases := []struct {
			name   string
			thresh int
			groups []msgGroup
			run    func(w *Worker) error
		}{
			{
				name:   "allreduce/tree",
				thresh: ringOff,
				groups: []msgGroup{
					{"reduce", m64 - 1, (m64 - 1) * 8 * n},    // binomial up-phase: every non-root sends once
					{"reduce/bc", m64 - 1, (m64 - 1) * 8 * n}, // binomial down-phase: every non-root receives once
				},
				run: func(w *Worker) error {
					return w.AllReduceSumInPlace(make([]float64, n))
				},
			},
			{
				name:   "allreduce/ring",
				thresh: ringOn,
				groups: []msgGroup{
					// Each of the M−1 steps moves every segment exactly once,
					// so a phase's payload is (M−1)·8n spread over M(M−1)
					// messages.
					{"reduce/rs", m64 * (m64 - 1), (m64 - 1) * 8 * n},
					{"reduce/ag", m64 * (m64 - 1), (m64 - 1) * 8 * n},
				},
				run: func(w *Worker) error {
					return w.AllReduceSumInPlace(make([]float64, n))
				},
			},
			{
				name:   "allgather/funnel",
				thresh: ringOff,
				groups: []msgGroup{
					{"gather", m64 - 1, (m64 - 1) * p},
					{"bcast#0", m64 - 1, (m64 - 1) * framed},
				},
				run: func(w *Worker) error {
					_, err := w.AllGatherBytes(make([]byte, p))
					return err
				},
			},
			{
				name:   "allgather/ring",
				thresh: ringOn,
				groups: []msgGroup{
					{"gather/ring", m64 * (m64 - 1), m64 * (m64 - 1) * p},
				},
				run: func(w *Worker) error {
					_, err := w.AllGatherBytes(make([]byte, p))
					return err
				},
			},
			{
				name:   "scalar",
				thresh: ringOff,
				groups: []msgGroup{
					{"reduce", m64 - 1, (m64 - 1) * 8},
					{"reduce/bc", m64 - 1, (m64 - 1) * 8},
				},
				run: func(w *Worker) error {
					_, err := w.ReduceScalarSum(1)
					return err
				},
			},
			{
				name:   "barrier",
				thresh: ringOff,
				groups: []msgGroup{
					{"barrier#0", m64 - 1, 0},
					{"barrier#0/ack", m64 - 1, 0},
				},
				run: func(w *Worker) error {
					return w.Barrier()
				},
			},
		}
		for _, tc := range cases {
			t.Run(fmt.Sprintf("M=%d/%s", m, tc.name), func(t *testing.T) {
				c := NewLocal(m)
				c.SetRecvTimeout(5 * time.Second)
				c.SetRingThreshold(tc.thresh)
				stats, err := c.Run(tc.run)
				if err != nil {
					t.Fatal(err)
				}
				wantBytes, wantMsgs := expectedTraffic(tc.groups)
				var sentB, recvB, sentM, recvM int64
				for _, rk := range stats.Ranks {
					sentB += rk.BytesSent
					recvB += rk.BytesRecv
					sentM += rk.MsgsSent
					recvM += rk.MsgsRecv
				}
				if sentB != wantBytes || sentM != wantMsgs {
					t.Errorf("sent %d bytes in %d messages, want %d in %d", sentB, sentM, wantBytes, wantMsgs)
				}
				// Every byte charged to a sender must be charged to exactly
				// one receiver — a recv-side double count shows up here.
				if recvB != sentB || recvM != sentM {
					t.Errorf("recv counters (%d bytes, %d msgs) != send counters (%d bytes, %d msgs)", recvB, recvM, sentB, sentM)
				}
				if got := stats.TotalBytes(); got != wantBytes {
					t.Errorf("TotalBytes = %d, want %d", got, wantBytes)
				}
				if got := stats.TotalMessages(); got != wantMsgs {
					t.Errorf("TotalMessages = %d, want %d", got, wantMsgs)
				}
			})
		}
	}
}
