// Package cluster implements the distributed runtime DisMASTD runs on:
// a fixed-size group of workers exchanging tagged messages through a
// pluggable Transport, with the collectives the paper's computation
// needs (broadcast, gather, all-reduce) built on top, and per-rank
// metrics (bytes, messages, work units) that feed both the
// communication-complexity checks (Theorem 4) and the simtime cost
// model.
//
// Two transports are provided: an in-process transport that delivers
// through shared memory (used by the experiment harness — the paper's
// cluster is simulated as goroutine workers), and a TCP transport using
// net + encoding/gob that runs the same worker code across OS processes
// (cmd/worker, examples/multiprocess).
package cluster

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Message is one tagged point-to-point payload. Tags namespace the
// independent message streams of the algorithm (per-mode Grams, factor
// rows, loss terms) so receives match deterministically.
type Message struct {
	From    int
	Tag     string
	Payload []byte
}

// wireSize is the accounting size of a message: payload plus a fixed
// per-message envelope estimate (from/tag framing).
func (m *Message) wireSize() int64 { return int64(len(m.Payload)) + int64(len(m.Tag)) + 8 }

// EncodeFloat64s packs a float64 slice little-endian. It is the payload
// codec for Gram matrices, factor rows, and scalar reductions.
func EncodeFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// PutFloat64s encodes vals little-endian into dst, which must be
// exactly 8*len(vals) bytes (typically a pooled buffer from
// Worker.GetBuf). It is the allocation-free form of EncodeFloat64s.
func PutFloat64s(dst []byte, vals []float64) {
	_ = dst[:8*len(vals)]
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

// CopyFloat64s decodes a payload written by PutFloat64s/EncodeFloat64s
// into dst without allocating; the payload must hold at least len(dst)
// values.
func CopyFloat64s(dst []float64, b []byte) {
	_ = b[:8*len(dst)]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// AddFloat64s accumulates a float64 payload into dst elementwise — the
// in-place reduction step of the collectives; the payload must hold at
// least len(dst) values.
func AddFloat64s(dst []float64, b []byte) {
	_ = b[:8*len(dst)]
	for i := range dst {
		dst[i] += math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// DecodeFloat64s unpacks a payload written by EncodeFloat64s.
func DecodeFloat64s(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("cluster: float64 payload of %d bytes", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// EncodeInt32s packs an int32 slice little-endian (row-index lists).
func EncodeInt32s(vals []int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

// DecodeInt32s unpacks a payload written by EncodeInt32s.
func DecodeInt32s(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("cluster: int32 payload of %d bytes", len(b))
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}
