package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFaultPlanSchedule(t *testing.T) {
	boom := errors.New("boom")
	p := NewFaultPlan().
		Add(FaultRule{From: 0, To: 1, FirstSeq: 1, Op: FaultError, Err: boom}).
		Add(FaultRule{From: 2, To: AnyRank, TagPrefix: "gram", FirstSeq: 0, LastSeq: -1, Op: FaultDrop})

	// Seq 0 on (0,1) is clean; seq 1 fires the error rule exactly once.
	if inj := p.decide(0, 1, "x"); inj != nil {
		t.Fatalf("seq 0 injected %v", inj.op)
	}
	inj := p.decide(0, 1, "x")
	if inj == nil || inj.op != FaultError || !errors.Is(inj.err, boom) {
		t.Fatalf("seq 1 = %+v, want error rule", inj)
	}
	if inj := p.decide(0, 1, "x"); inj != nil {
		t.Fatalf("seq 2 injected %v", inj.op)
	}

	// Tag-restricted unbounded drop: fires on every matching tag, never
	// on others, from any destination.
	for i := 0; i < 3; i++ {
		if inj := p.decide(2, i, "gram#7"); inj == nil || inj.op != FaultDrop {
			t.Fatalf("gram send %d not dropped", i)
		}
		if inj := p.decide(2, i, "rows#7"); inj != nil {
			t.Fatalf("rows send %d injected %v", i, inj.op)
		}
	}
	if got := p.FiredOp(FaultDrop); got != 3 {
		t.Fatalf("FiredOp(drop) = %d", got)
	}
	if got := p.Fired(); got != 4 {
		t.Fatalf("Fired = %d", got)
	}
}

func TestFaultPlanDefaultError(t *testing.T) {
	p := NewFaultPlan().Add(FaultRule{From: AnyRank, To: AnyRank, Op: FaultError})
	inj := p.decide(3, 4, "tag")
	if inj == nil || inj.err == nil {
		t.Fatal("no default error materialized")
	}
	for _, want := range []string{"injected", "from 3", "to 4", `"tag"`} {
		if !strings.Contains(inj.err.Error(), want) {
			t.Fatalf("default error %q missing %q", inj.err, want)
		}
	}
}

func TestLocalFaultPlanError(t *testing.T) {
	// An injected send error must surface as a rank-attributed run error
	// and release every other rank via the poisoned mailboxes.
	boom := errors.New("injected link failure")
	c := NewLocal(3)
	c.SetRecvTimeout(10 * time.Second)
	c.SetFaultPlan(NewFaultPlan().Add(FaultRule{From: 1, To: 0, FirstSeq: 0, Op: FaultError, Err: boom}))
	start := time.Now()
	_, err := c.Run(func(w *Worker) error {
		return w.Barrier()
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error = %v, want injected failure", err)
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error %q not attributed to rank 1", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("fault did not fail fast")
	}
}

func TestLocalFaultPlanDrop(t *testing.T) {
	// A dropped message looks like success to the sender and silence to
	// the receiver: the receive must end in a timeout, not a hang.
	c := NewLocal(2)
	c.SetRecvTimeout(100 * time.Millisecond)
	plan := NewFaultPlan().Add(FaultRule{From: 0, To: 1, TagPrefix: "lost", Op: FaultDrop})
	c.SetFaultPlan(plan)
	_, err := c.Run(func(w *Worker) error {
		if w.Rank() == 0 {
			return w.Send(1, "lost", []byte("gone"))
		}
		_, err := w.Recv(0, "lost")
		return err
	})
	if err == nil || !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want timeout from dropped message", err)
	}
	if plan.FiredOp(FaultDrop) != 1 {
		t.Fatalf("drops fired = %d", plan.FiredOp(FaultDrop))
	}
}

func TestLocalFaultPlanDelay(t *testing.T) {
	const lag = 50 * time.Millisecond
	c := NewLocal(2)
	c.SetFaultPlan(NewFaultPlan().Add(FaultRule{From: 0, To: 1, Op: FaultDelay, Delay: lag}))
	var elapsed time.Duration
	var mu sync.Mutex
	start := time.Now()
	_, err := c.Run(func(w *Worker) error {
		if w.Rank() == 0 {
			return w.Send(1, "slow", nil)
		}
		_, err := w.Recv(0, "slow")
		mu.Lock()
		elapsed = time.Since(start)
		mu.Unlock()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < lag {
		t.Fatalf("delayed message arrived after %v, want >= %v", elapsed, lag)
	}
}

func TestLocalFaultPlanCutDelivers(t *testing.T) {
	// In-process there is no connection to cut: like a recovered TCP
	// cut, the message still arrives.
	c := NewLocal(2)
	plan := NewFaultPlan().Add(FaultRule{From: AnyRank, To: AnyRank, FirstSeq: 0, LastSeq: -1, Op: FaultCut})
	c.SetFaultPlan(plan)
	_, err := c.Run(func(w *Worker) error {
		if w.Rank() == 0 {
			return w.Send(1, "cut", []byte("x"))
		}
		b, err := w.Recv(0, "cut")
		if err != nil {
			return err
		}
		if string(b) != "x" {
			return fmt.Errorf("payload %q", b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.FiredOp(FaultCut) == 0 {
		t.Fatal("cut rule never fired")
	}
}
