package cluster

import "fmt"

// Ring collectives: the bandwidth-optimal path for large payloads.
//
// The binomial tree moves the whole vector through every level, so the
// root handles O(n·log M) bytes; the ring instead cuts the vector into
// M contiguous segments and pipelines them around the cycle, so every
// rank sends and receives exactly 2·(M−1)/M·n bytes — the classic
// Baidu/Horovod all-reduce structure, and the bound DisMASTD's
// communication argument (Theorem 4) wants per rank.
//
// Determinism: segment s starts at its home rank s and travels the ring
// in ascending rank order, each hop folding in that rank's local
// values. Every element of the result is therefore produced by exactly
// one addition sequence — (((x_s + x_{s+1}) + x_{s+2}) + …) in ring
// order — on exactly one rank, and the all-gather phase copies those
// bytes verbatim everywhere. All ranks observe identical bits and
// repeated runs reproduce them, at a fixed cluster size. The grouping
// differs from the tree path's, so the two paths are each reproducible
// but not bitwise interchangeable; the selection threshold keeps any
// given payload on one fixed path.

// segBounds returns the [lo, hi) range of segment s when a vector of
// length n is cut into m contiguous segments (sizes differ by at most
// one). The split is a pure function of n and m, so every rank derives
// identical bounds.
func segBounds(n, m, s int) (int, int) { return s * n / m, (s + 1) * n / m }

// ringAllReduceSum is AllReduceSumInPlace's ring path: a reduce-scatter
// (each segment accumulates around the ring, landing fully reduced one
// hop before its home) followed by an all-gather that circulates the
// reduced segments. Requires len(vec) >= size so no segment is empty.
func (w *Worker) ringAllReduceSum(vec []float64) error {
	m := w.size
	next := (w.rank + 1) % m
	prev := (w.rank - 1 + m) % m

	// Reduce-scatter: at step t this rank forwards its running partial
	// of segment (rank−t) mod m and folds the incoming partial of
	// segment (rank−t−1) mod m into its local values.
	rsTag := w.StreamTag("reduce/rs")
	for t := 0; t < m-1; t++ {
		sendSeg := ((w.rank-t)%m + m) % m
		lo, hi := segBounds(len(vec), m, sendSeg)
		buf := w.GetBuf(8 * (hi - lo))
		PutFloat64s(buf, vec[lo:hi])
		if err := w.SendPooled(next, rsTag, buf); err != nil {
			return err
		}
		payload, err := w.Recv(prev, rsTag)
		if err != nil {
			return err
		}
		recvSeg := ((w.rank-t-1)%m + m) % m
		lo, hi = segBounds(len(vec), m, recvSeg)
		if len(payload) != 8*(hi-lo) {
			return fmt.Errorf("cluster: ring reduce-scatter step %d: %d bytes for a segment of %d values", t, len(payload), hi-lo)
		}
		AddFloat64s(vec[lo:hi], payload)
		w.PutBuf(payload)
	}

	// All-gather: rank r now owns the fully reduced segment (r+1) mod m;
	// circulate the reduced segments the rest of the way around. Each
	// received buffer is forwarded as-is on the next step — zero-copy on
	// the in-process transport — and only the last one is returned to
	// the pool here.
	agTag := w.StreamTag("reduce/ag")
	var carry []byte
	for t := 0; t < m-1; t++ {
		if t == 0 {
			lo, hi := segBounds(len(vec), m, (w.rank+1)%m)
			carry = w.GetBuf(8 * (hi - lo))
			PutFloat64s(carry, vec[lo:hi])
		}
		if err := w.SendPooled(next, agTag, carry); err != nil {
			return err
		}
		payload, err := w.Recv(prev, agTag)
		if err != nil {
			return err
		}
		recvSeg := ((w.rank-t)%m + m) % m
		lo, hi := segBounds(len(vec), m, recvSeg)
		if len(payload) != 8*(hi-lo) {
			return fmt.Errorf("cluster: ring all-gather step %d: %d bytes for a segment of %d values", t, len(payload), hi-lo)
		}
		CopyFloat64s(vec[lo:hi], payload)
		carry = payload
	}
	if carry != nil {
		w.PutBuf(carry)
	}
	return nil
}

// ringAllGather is AllGatherBytes' ring path: every rank's block takes
// M−1 hops around the cycle, each rank forwarding the block it just
// received. On the in-process transport the blocks are passed by
// reference (no funnel re-framing, no copies), so the returned slices —
// like the funnel path's decoded frames — must be treated as read-only.
func (w *Worker) ringAllGather(data []byte) ([][]byte, error) {
	m := w.size
	out := make([][]byte, m)
	out[w.rank] = data
	next := (w.rank + 1) % m
	prev := (w.rank - 1 + m) % m
	tag := w.StreamTag("gather/ring")
	carry := data
	for t := 0; t < m-1; t++ {
		if err := w.Send(next, tag, carry); err != nil {
			return nil, err
		}
		payload, err := w.Recv(prev, tag)
		if err != nil {
			return nil, err
		}
		out[((w.rank-t-1)%m+m)%m] = payload
		carry = payload
	}
	return out, nil
}
