package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAgreeViewKillAndJoin walks the full elastic transition on the
// in-process transport: world of 4, view {0,1,2}, rank 1 dies, spare 3
// is admitted. Survivors detect the death, revoke the epoch, agree on
// the next view, adopt the joiner, and run a collective in the new
// epoch.
func TestAgreeViewKillAndJoin(t *testing.T) {
	c := NewLocal(4)
	c.SetElastic(true)
	cur := NewView(0, []int{0, 1, 2})
	vc := ViewChange{Dead: []int{1}, Join: []int{3}}
	var mu sync.Mutex
	sums := map[int]float64{}
	_, err := c.Run(func(w *Worker) error {
		if w.Rank() == 1 {
			return nil // dies before contributing anything
		}
		var next View
		if w.Rank() == 3 {
			var cookie int64
			var err error
			next, cookie, err = AwaitAdopt(w)
			if err != nil {
				return err
			}
			if cookie != 7 {
				t.Errorf("cookie = %d", cookie)
			}
		} else {
			// Survivors: block on the dead rank, detect, recover.
			_, err := w.Recv(1, "work")
			pd, ok := AsPeerDown(err)
			if !ok || pd.Rank != 1 {
				t.Errorf("rank %d detection: %v", w.Rank(), err)
				return err
			}
			w.Revoke(pd.Rank)
			w.ClearFault()
			next, err = AgreeView(w, cur, vc)
			if err != nil {
				return err
			}
			if w.Rank() == Coordinator(cur, next) {
				if err := SendAdopt(w, 3, next, 7); err != nil {
					return err
				}
			}
		}
		want := NewView(1, []int{0, 2, 3})
		if !next.Equal(want) {
			t.Errorf("rank %d agreed on %v, want %v", w.Rank(), next, want)
		}
		vw, err := w.ViewWorker(next)
		if err != nil {
			return err
		}
		got, err := vw.AllReduceSum([]float64{float64(w.Rank())})
		if err != nil {
			return err
		}
		mu.Lock()
		sums[w.Rank()] = got[0]
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, r := range []int{0, 2, 3} {
		if sums[r] != 5 { // 0 + 2 + 3
			t.Fatalf("rank %d post-transition allreduce = %v", r, sums[r])
		}
	}
}

// TestAgreeViewDrain checks a graceful leave: the drainer participates
// in the transition, learns the next view, and exits; the survivors
// carry on in the shrunken view.
func TestAgreeViewDrain(t *testing.T) {
	c := NewLocal(3)
	c.SetElastic(true)
	cur := NewView(0, []int{0, 1, 2})
	vc := ViewChange{Leave: []int{2}}
	_, err := c.Run(func(w *Worker) error {
		next, err := AgreeView(w, cur, vc)
		if err != nil {
			return err
		}
		want := NewView(1, []int{0, 1})
		if !next.Equal(want) {
			t.Errorf("rank %d agreed on %v", w.Rank(), next)
		}
		if !next.Contains(w.Rank()) {
			return nil // drained; exits cleanly
		}
		vw, err := w.ViewWorker(next)
		if err != nil {
			return err
		}
		got, err := vw.AllReduceSum([]float64{1})
		if err != nil {
			return err
		}
		if got[0] != 2 {
			t.Errorf("post-drain allreduce = %v", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestAgreeViewProposalMismatch checks the documented safety property:
// survivors with different failure evidence fail the transition
// loudly instead of splitting the view.
func TestAgreeViewProposalMismatch(t *testing.T) {
	c := NewLocal(3)
	c.SetElastic(true)
	c.SetRecvTimeout(2 * time.Second)
	cur := NewView(0, []int{0, 1, 2})
	var mu sync.Mutex
	var coordErr error
	_, err := c.Run(func(w *Worker) error {
		vc := ViewChange{Leave: []int{2}}
		if w.Rank() == 1 {
			vc = ViewChange{} // disagrees with the others
		}
		_, err := AgreeView(w, cur, vc)
		if w.Rank() == 0 {
			mu.Lock()
			coordErr = err
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if coordErr == nil || !strings.Contains(coordErr.Error(), "different view change") {
		t.Fatalf("coordinator error = %v", coordErr)
	}
}

// TestMembershipRequests checks the join/drain request plumbing: a
// request broadcast by one rank is drained exactly once by the
// coordinator's poll, deduplicated, and invisible to TryRecvAny once
// consumed.
func TestMembershipRequests(t *testing.T) {
	c := NewLocal(3)
	_, err := c.Run(func(w *Worker) error {
		switch w.Rank() {
		case 1:
			RequestJoin(w)
			RequestJoin(w) // duplicate request must dedupe
			return w.Send(0, "done", nil)
		case 2:
			RequestDrain(w)
			return w.Send(0, "done", nil)
		default:
			// In-process sends are delivered synchronously in program
			// order, so after both "done" markers the requests are
			// queued for sure.
			if _, err := w.Recv(1, "done"); err != nil {
				return err
			}
			if _, err := w.Recv(2, "done"); err != nil {
				return err
			}
			joins, drains := PollMembershipRequests(w)
			if len(joins) != 1 || joins[0] != 1 {
				t.Errorf("joins = %v", joins)
			}
			if len(drains) != 1 || drains[0] != 2 {
				t.Errorf("drains = %v", drains)
			}
			// A second poll finds nothing: requests are consumed.
			if j, d := PollMembershipRequests(w); len(j)+len(d) != 0 {
				t.Errorf("second poll: %v %v", j, d)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}
