package cluster

import (
	"encoding/binary"
	"fmt"
	"strconv"
)

// Collectives. Every worker in the cluster must invoke the same
// sequence of collective calls — the lockstep structure of the
// distributed decomposition (all workers sweep the same modes in the
// same order). Two tag schemes ride on that contract:
//
//   - Counter tags (nextTag): each call consumes one slot of the
//     per-worker collective counter, which namespaces its message tags
//     so consecutive collectives never cross-match. Used by the cold
//     operations (Barrier, BroadcastBytes, UniqueTag callers).
//
//   - Stream tags (StreamTag): one fixed tag per logical message
//     stream, reused across calls. Matching is still exact because the
//     mailbox preserves FIFO order per (sender, tag) and all workers
//     issue the stream's operations in the same order; reusing the tag
//     is what lets the hot collectives (all-reduce, gather, exchange)
//     run with zero steady-state allocations.
//
// On the TCP transport both schemes carry an additional per-Run epoch
// prefix, so a rank racing ahead into the next node.Run phase cannot
// cross-match a peer still finishing the last.

// nextTag returns the next counter-namespaced tag for op — the
// epoch-prefixed "<op>#<seq>" scheme — built with integer appends into
// a reusable scratch buffer rather than fmt machinery.
func (w *Worker) nextTag(op string) string {
	b := append(w.tagBuf[:0], w.tagEpoch...)
	b = append(b, op...)
	b = append(b, '#')
	b = strconv.AppendUint(b, w.coll, 10)
	w.tagBuf = b
	w.coll++
	return string(b)
}

// streamKey identifies one logical message stream of the algorithm.
type streamKey struct {
	name string
	idx  int
}

// StreamTag returns the worker's stable tag for a named logical message
// stream ("reduce", "gather", ...). Unlike UniqueTag the same string is
// returned on every call, so steady-state collectives generate no tag
// garbage; correctness relies on per-(sender, tag) FIFO delivery plus
// the collectives contract above. The TCP Run epoch prefix is included,
// like counter tags.
func (w *Worker) StreamTag(name string) string { return w.streamTagIdx(name, -1) }

// StreamTagIndexed is StreamTag for a numbered stream family, e.g. the
// per-mode row exchanges ("rows/<mode>").
func (w *Worker) StreamTagIndexed(name string, idx int) string { return w.streamTagIdx(name, idx) }

func (w *Worker) streamTagIdx(name string, idx int) string {
	k := streamKey{name, idx}
	if t, ok := w.streams[k]; ok {
		return t
	}
	b := make([]byte, 0, len(w.tagEpoch)+len(name)+12)
	b = append(b, w.tagEpoch...)
	b = append(b, name...)
	if idx >= 0 {
		b = append(b, '/')
		b = strconv.AppendInt(b, int64(idx), 10)
	}
	t := string(b)
	w.streams[k] = t
	return t
}

// useRing reports whether a collective over payloadBytes takes the ring
// path. The decision is a pure function of the payload size and cluster
// shape, so every rank selects the same path for the same lockstep
// call.
func (w *Worker) useRing(payloadBytes int) bool {
	return w.ringThresh > 0 && payloadBytes >= w.ringThresh && w.size > 1
}

// Barrier blocks until every worker has entered it: ranks report to
// rank 0, which releases them.
func (w *Worker) Barrier() error {
	tag := w.nextTag("barrier")
	if w.rank == 0 {
		for r := 1; r < w.size; r++ {
			if _, err := w.Recv(r, tag); err != nil {
				return err
			}
		}
		for r := 1; r < w.size; r++ {
			if err := w.Send(r, tag+"/ack", nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := w.Send(0, tag, nil); err != nil {
		return err
	}
	_, err := w.Recv(0, tag+"/ack")
	return err
}

// BroadcastBytes distributes root's data to every rank and returns it.
// Non-root callers' data argument is ignored. The data flows down a
// binomial tree rooted at root, so no rank sends or receives more than
// ⌈log₂ M⌉ messages — the same structure real MPI/Spark broadcasts use,
// and what keeps the per-rank traffic at the O(R²·log M) the runtime's
// byte counters feed into the cost model.
func (w *Worker) BroadcastBytes(root int, data []byte) ([]byte, error) {
	tag := w.nextTag("bcast")
	vr := (w.rank - root + w.size) % w.size // virtual rank with root at 0
	for bit := 1; bit < w.size; bit <<= 1 {
		if vr < bit {
			// This rank already holds the data: feed the subtree peer.
			peer := vr + bit
			if peer < w.size {
				if err := w.Send((peer+root)%w.size, tag, data); err != nil {
					return nil, err
				}
			}
		} else if vr < bit<<1 {
			got, err := w.Recv((vr-bit+root)%w.size, tag)
			if err != nil {
				return nil, err
			}
			data = got
		}
	}
	return data, nil
}

// bcastFloat64s overwrites vec on every rank with rank 0's values, down
// a binomial tree of pooled buffers: the allocation-free broadcast leg
// of the tree all-reduce.
func (w *Worker) bcastFloat64s(vec []float64, tag string) error {
	for bit := 1; bit < w.size; bit <<= 1 {
		if w.rank < bit {
			peer := w.rank + bit
			if peer >= w.size {
				continue
			}
			buf := w.GetBuf(8 * len(vec))
			PutFloat64s(buf, vec)
			if err := w.SendPooled(peer, tag, buf); err != nil {
				return err
			}
		} else if w.rank < bit<<1 {
			payload, err := w.Recv(w.rank-bit, tag)
			if err != nil {
				return err
			}
			if len(payload) != 8*len(vec) {
				return fmt.Errorf("cluster: broadcast of %d bytes, want %d", len(payload), 8*len(vec))
			}
			CopyFloat64s(vec, payload)
			w.PutBuf(payload)
		}
	}
	return nil
}

// GatherBytes collects every rank's data at root. At root the result
// has one element per rank (root's own included, in rank order); other
// ranks get nil. Contributions are consumed in arrival order — one slow
// peer no longer blocks the root from draining the fast ones.
func (w *Worker) GatherBytes(root int, data []byte) ([][]byte, error) {
	tag := w.StreamTag("gather")
	if w.rank != root {
		return nil, w.Send(root, tag, data)
	}
	out := make([][]byte, w.size)
	out[root] = data
	pending := make([]int, 0, w.size-1)
	for r := 0; r < w.size; r++ {
		if r != root {
			pending = append(pending, r)
		}
	}
	for len(pending) > 0 {
		i, b, err := w.RecvAny(tag, pending)
		if err != nil {
			return nil, err
		}
		out[pending[i]] = b
		pending[i] = pending[len(pending)-1]
		pending = pending[:len(pending)-1]
	}
	return out, nil
}

// AllGatherBytes collects every rank's data everywhere. Small payloads
// funnel through rank 0 (gather, frame, broadcast); payloads at or
// above the ring threshold circulate the ring instead, cutting the
// per-rank traffic from O(M·n·log M) at the root to ~2·(M−1)/M·M·n
// spread evenly. All ranks must present payloads on the same side of
// the threshold (the lockstep contract already requires matched calls;
// the decomposition's payloads are equal-sized by construction).
func (w *Worker) AllGatherBytes(data []byte) ([][]byte, error) {
	if w.useRing(len(data)) {
		w.cc.ringGather.Inc()
		return w.ringAllGather(data)
	}
	w.cc.funnelGather.Inc()
	parts, err := w.GatherBytes(0, data)
	if err != nil {
		return nil, err
	}
	var framed []byte
	if w.rank == 0 {
		framed = encodeFrames(parts)
	}
	framed, err = w.BroadcastBytes(0, framed)
	if err != nil {
		return nil, err
	}
	out, err := decodeFrames(framed)
	if err != nil {
		return nil, err
	}
	if len(out) != w.size {
		return nil, fmt.Errorf("cluster: allgather returned %d frames for %d ranks", len(out), w.size)
	}
	return out, nil
}

// AllReduceSum sums the per-rank vectors elementwise and returns the
// total to every rank, leaving vec untouched. Hot paths should prefer
// AllReduceSumInPlace, which this wraps.
func (w *Worker) AllReduceSum(vec []float64) ([]float64, error) {
	out := append([]float64(nil), vec...)
	if err := w.AllReduceSumInPlace(out); err != nil {
		return nil, err
	}
	return out, nil
}

// AllReduceSumInPlace overwrites vec on every rank with the elementwise
// sum across ranks. Small vectors take a binomial-tree reduction to
// rank 0 followed by a tree broadcast of the canonical sum; vectors at
// or above the ring threshold take a ring reduce-scatter plus ring
// all-gather (ring.go), which is bandwidth-optimal. Both paths are
// deterministic — a single summation order per element, identical bits
// on every rank — though the two paths group the additions differently,
// so results are reproducible per path, not across a threshold change.
// This is the all-to-all reduction of the paper's Section IV-B3, used
// to aggregate the partial Gram matrices ÃᵀA₀ and A₀ᵀA₀ across
// partitions.
func (w *Worker) AllReduceSumInPlace(vec []float64) error {
	if w.useRing(8*len(vec)) && len(vec) >= w.size {
		w.cc.ringReduce.Inc()
		return w.ringAllReduceSum(vec)
	}
	w.cc.treeReduce.Inc()
	return w.treeAllReduceSum(vec)
}

// treeAllReduceSum is the binomial-tree all-reduce: in round `bit`,
// ranks with that bit set push their accumulator one level up and drop
// out; rank 0 then broadcasts the canonical sum. Payloads ride pooled
// buffers, so the steady state allocates nothing.
func (w *Worker) treeAllReduceSum(vec []float64) error {
	tag := w.StreamTag("reduce")
	for bit := 1; bit < w.size; bit <<= 1 {
		if w.rank&bit != 0 {
			buf := w.GetBuf(8 * len(vec))
			PutFloat64s(buf, vec)
			if err := w.SendPooled(w.rank-bit, tag, buf); err != nil {
				return err
			}
			break // handed off; wait for the canonical sum below
		}
		peer := w.rank + bit
		if peer >= w.size {
			continue
		}
		payload, err := w.Recv(peer, tag)
		if err != nil {
			return err
		}
		if len(payload) != 8*len(vec) {
			return fmt.Errorf("cluster: allreduce rank %d contributed %d bytes, want %d", peer, len(payload), 8*len(vec))
		}
		AddFloat64s(vec, payload)
		w.PutBuf(payload)
	}
	return w.bcastFloat64s(vec, w.StreamTag("reduce/bc"))
}

// ReduceScalarSum is AllReduceSum for a single value, through the
// worker's persistent one-element scratch.
func (w *Worker) ReduceScalarSum(x float64) (float64, error) {
	w.scalar[0] = x
	if err := w.AllReduceSumInPlace(w.scalar[:]); err != nil {
		return 0, err
	}
	return w.scalar[0], nil
}

// encodeFrames packs a list of byte slices with uint32 length prefixes.
func encodeFrames(parts [][]byte) []byte {
	size := 4
	for _, p := range parts {
		size += 4 + len(p)
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	out = append(out, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

// decodeFrames unpacks encodeFrames output.
func decodeFrames(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("cluster: framed payload too short (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// Every frame costs at least a 4-byte header, which bounds any
	// honest count; a corrupt header cannot force a huge preallocation.
	capHint := n
	if max := uint32(len(b)/4) + 1; capHint > max {
		capHint = max
	}
	out := make([][]byte, 0, capHint)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("cluster: truncated frame header at %d", i)
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < l {
			return nil, fmt.Errorf("cluster: truncated frame %d (%d of %d bytes)", i, len(b), l)
		}
		out = append(out, b[:l:l])
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after frames", len(b))
	}
	return out, nil
}
