package cluster

import (
	"encoding/binary"
	"fmt"
)

// Collectives. Every worker in the cluster must invoke the same
// sequence of collective calls: each call consumes one slot of the
// per-worker collective counter, which namespaces its message tags so
// consecutive collectives never cross-match. This mirrors the lockstep
// structure of the distributed decomposition (all workers sweep the
// same modes in the same order). On the TCP transport tags carry an
// additional per-Run epoch prefix, so a rank racing ahead into the next
// node.Run phase cannot cross-match a peer still finishing the last.

func (w *Worker) nextTag(op string) string {
	t := fmt.Sprintf("%s%s#%d", w.tagEpoch, op, w.coll)
	w.coll++
	return t
}

// Barrier blocks until every worker has entered it: ranks report to
// rank 0, which releases them.
func (w *Worker) Barrier() error {
	tag := w.nextTag("barrier")
	if w.rank == 0 {
		for r := 1; r < w.size; r++ {
			if _, err := w.Recv(r, tag); err != nil {
				return err
			}
		}
		for r := 1; r < w.size; r++ {
			if err := w.Send(r, tag+"/ack", nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := w.Send(0, tag, nil); err != nil {
		return err
	}
	_, err := w.Recv(0, tag+"/ack")
	return err
}

// BroadcastBytes distributes root's data to every rank and returns it.
// Non-root callers' data argument is ignored. The data flows down a
// binomial tree rooted at root, so no rank sends or receives more than
// ⌈log₂ M⌉ messages — the same structure real MPI/Spark broadcasts use,
// and what keeps the per-rank traffic at the O(R²·log M) the runtime's
// byte counters feed into the cost model.
func (w *Worker) BroadcastBytes(root int, data []byte) ([]byte, error) {
	tag := w.nextTag("bcast")
	vr := (w.rank - root + w.size) % w.size // virtual rank with root at 0
	for bit := 1; bit < w.size; bit <<= 1 {
		if vr < bit {
			// This rank already holds the data: feed the subtree peer.
			peer := vr + bit
			if peer < w.size {
				if err := w.Send((peer+root)%w.size, tag, data); err != nil {
					return nil, err
				}
			}
		} else if vr < bit<<1 {
			got, err := w.Recv((vr-bit+root)%w.size, tag)
			if err != nil {
				return nil, err
			}
			data = got
		}
	}
	return data, nil
}

// GatherBytes collects every rank's data at root. At root the result
// has one element per rank (root's own included, in rank order); other
// ranks get nil.
func (w *Worker) GatherBytes(root int, data []byte) ([][]byte, error) {
	tag := w.nextTag("gather")
	if w.rank == root {
		out := make([][]byte, w.size)
		out[root] = data
		for r := 0; r < w.size; r++ {
			if r == root {
				continue
			}
			b, err := w.Recv(r, tag)
			if err != nil {
				return nil, err
			}
			out[r] = b
		}
		return out, nil
	}
	return nil, w.Send(root, tag, data)
}

// AllGatherBytes collects every rank's data everywhere: a gather to
// rank 0 followed by a broadcast of the framed list.
func (w *Worker) AllGatherBytes(data []byte) ([][]byte, error) {
	parts, err := w.GatherBytes(0, data)
	if err != nil {
		return nil, err
	}
	var framed []byte
	if w.rank == 0 {
		framed = encodeFrames(parts)
	}
	framed, err = w.BroadcastBytes(0, framed)
	if err != nil {
		return nil, err
	}
	out, err := decodeFrames(framed)
	if err != nil {
		return nil, err
	}
	if len(out) != w.size {
		return nil, fmt.Errorf("cluster: allgather returned %d frames for %d ranks", len(out), w.size)
	}
	return out, nil
}

// AllReduceSum sums the per-rank vectors elementwise and returns the
// total to every rank: a binomial-tree reduction to rank 0 followed by
// a binomial-tree broadcast of the canonical sum. Every rank observes
// the identical (bitwise) result because a single summation tree is
// used, and no rank handles more than ⌈log₂ M⌉ messages per phase.
// This is the all-to-all reduction of the paper's Section IV-B3, used
// to aggregate the partial Gram matrices ÃᵀA₀ and A₀ᵀA₀ across
// partitions.
func (w *Worker) AllReduceSum(vec []float64) ([]float64, error) {
	tag := w.nextTag("reduce")
	acc := append([]float64(nil), vec...)
	// Binomial-tree reduce: in round `bit`, ranks with that bit set
	// push their accumulator one level up and drop out.
	for bit := 1; bit < w.size; bit <<= 1 {
		if w.rank&bit != 0 {
			if err := w.Send(w.rank-bit, tag, EncodeFloat64s(acc)); err != nil {
				return nil, err
			}
			acc = nil // handed off; wait for the broadcast below
			break
		}
		peer := w.rank + bit
		if peer >= w.size {
			continue
		}
		payload, err := w.Recv(peer, tag)
		if err != nil {
			return nil, err
		}
		vals, err := DecodeFloat64s(payload)
		if err != nil {
			return nil, err
		}
		if len(vals) != len(acc) {
			return nil, fmt.Errorf("cluster: allreduce rank %d contributed %d values, want %d", peer, len(vals), len(acc))
		}
		for i, v := range vals {
			acc[i] += v
		}
	}
	var payload []byte
	if w.rank == 0 {
		payload = EncodeFloat64s(acc)
	}
	payload, err := w.BroadcastBytes(0, payload)
	if err != nil {
		return nil, err
	}
	return DecodeFloat64s(payload)
}

// ReduceScalarSum is AllReduceSum for a single value.
func (w *Worker) ReduceScalarSum(x float64) (float64, error) {
	out, err := w.AllReduceSum([]float64{x})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// encodeFrames packs a list of byte slices with uint32 length prefixes.
func encodeFrames(parts [][]byte) []byte {
	size := 4
	for _, p := range parts {
		size += 4 + len(p)
	}
	out := make([]byte, 0, size)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(parts)))
	out = append(out, hdr[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

// decodeFrames unpacks encodeFrames output.
func decodeFrames(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("cluster: framed payload too short (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	out := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("cluster: truncated frame header at %d", i)
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < l {
			return nil, fmt.Errorf("cluster: truncated frame %d (%d of %d bytes)", i, len(b), l)
		}
		out = append(out, b[:l:l])
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("cluster: %d trailing bytes after frames", len(b))
	}
	return out, nil
}
