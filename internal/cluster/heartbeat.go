package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Heartbeat-based failure detection for the TCP transport. Every node
// probes every peer each interval over the regular message connections;
// any inbound traffic (probe or payload) refreshes the sender's
// last-seen time. A peer silent for misses consecutive intervals is
// declared down: the node's mailbox is poisoned with ErrPeerDown so
// blocked receives fail within a bounded window instead of burning the
// full receive timeout, and subsequent sends to the dead rank fail
// immediately.

// heartbeatTag is the reserved tag probes travel under. User tags come
// from Worker.Send callers and collective names; none start with a NUL
// byte, so probes can never be mistaken for payload traffic.
const heartbeatTag = "\x00hb"

// ErrPeerDown reports a peer declared dead by failure detection: no
// traffic arrived from the rank within the detection window. It
// surfaces from both pending receives (via the poisoned mailbox) and
// later sends to the dead rank.
type ErrPeerDown struct {
	Rank int
}

func (e *ErrPeerDown) Error() string {
	return fmt.Sprintf("cluster: peer rank %d down (no heartbeat within detection window)", e.Rank)
}

// AsPeerDown extracts an ErrPeerDown from err's chain, if present.
func AsPeerDown(err error) (*ErrPeerDown, bool) {
	var pd *ErrPeerDown
	ok := errors.As(err, &pd)
	return pd, ok
}

// heartbeat is a node's failure-detector state.
type heartbeat struct {
	interval time.Duration
	window   time.Duration

	mu       sync.Mutex
	lastSeen []time.Time
	down     []bool
}

// observe refreshes a peer's liveness on any inbound message. It
// reports whether the peer had been declared down — inbound traffic
// from a "dead" rank means it restarted, so the declaration is lifted
// and the caller clears the transport-level down marks.
func (hb *heartbeat) observe(rank int) (revived bool) {
	hb.mu.Lock()
	if rank >= 0 && rank < len(hb.lastSeen) {
		hb.lastSeen[rank] = time.Now()
		if hb.down[rank] {
			hb.down[rank] = false
			revived = true
		}
	}
	hb.mu.Unlock()
	return revived
}

// markDown force-declares a rank dead (an epoch revocation relayed by
// a peer), so sends to it fail fast without waiting out the local
// detection window.
func (hb *heartbeat) markDown(rank int) {
	hb.mu.Lock()
	if rank >= 0 && rank < len(hb.down) {
		hb.down[rank] = true
	}
	hb.mu.Unlock()
}

// expire marks every newly silent peer down and returns their ranks.
func (hb *heartbeat) expire(self int) []int {
	now := time.Now()
	hb.mu.Lock()
	defer hb.mu.Unlock()
	var expired []int
	for r := range hb.lastSeen {
		if r == self || hb.down[r] {
			continue
		}
		if now.Sub(hb.lastSeen[r]) > hb.window {
			hb.down[r] = true
			expired = append(expired, r)
		}
	}
	return expired
}

// isDown reports whether the detector has declared rank dead.
func (hb *heartbeat) isDown(rank int) bool {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	return rank >= 0 && rank < len(hb.down) && hb.down[rank]
}

// StartHeartbeat turns on failure detection: the node probes every peer
// each interval and declares a peer down after misses intervals with no
// inbound traffic from it (misses <= 0 defaults to 3). Detection
// latency is therefore bounded by roughly (misses+1) x interval. All
// cluster members must run heartbeats for liveness to be observable
// everywhere. The detector stops when the node is closed.
func (n *TCPNode) StartHeartbeat(interval time.Duration, misses int) error {
	if interval <= 0 {
		return fmt.Errorf("cluster: heartbeat interval %v", interval)
	}
	if misses <= 0 {
		misses = 3
	}
	hb := &heartbeat{
		interval: interval,
		window:   time.Duration(misses) * interval,
		lastSeen: make([]time.Time, n.size),
		down:     make([]bool, n.size),
	}
	now := time.Now()
	for i := range hb.lastSeen {
		hb.lastSeen[i] = now
	}
	if !n.hb.CompareAndSwap(nil, hb) {
		return fmt.Errorf("cluster: heartbeat already running")
	}
	go n.heartbeatLoop(hb)
	return nil
}

func (n *TCPNode) heartbeatLoop(hb *heartbeat) {
	ticker := time.NewTicker(hb.interval)
	defer ticker.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-ticker.C:
		}
		// Check liveness before probing: a dead peer must not let slow
		// probe I/O (a hanging dial) push detection past the window.
		for _, r := range hb.expire(n.rank) {
			n.tc.hbMisses.Inc()
			n.obs.Logger().Warn("peer declared down", "peer", r, "window", hb.window)
			// Poison (the pre-elastic contract: blocked receives fail
			// fast) and mark the sender down so that, after an elastic
			// recovery clears the poison, receives from the dead rank
			// keep failing with the rank-attributed error.
			n.mbox.peerDown(r, &ErrPeerDown{Rank: r}, true)
		}
		probe := Message{From: n.rank, Tag: heartbeatTag}
		for r := 0; r < n.size; r++ {
			if r == n.rank || hb.isDown(r) {
				continue
			}
			n.sendProbe(r, &probe)
		}
	}
}
