package cp

import (
	"math"
	"testing"

	"dismastd/internal/mat"
	"dismastd/internal/xrand"
)

func TestNormalizePreservesModel(t *testing.T) {
	src := xrand.New(1)
	factors := []*mat.Dense{
		mat.RandomGaussian(6, 3, src),
		mat.RandomGaussian(5, 3, src),
		mat.RandomGaussian(4, 3, src),
	}
	// Record model values before.
	var before []float64
	for i := 0; i < 6; i++ {
		before = append(before, Reconstruct(factors, []int{i, i % 5, i % 4}))
	}
	lambda := Normalize(factors)
	// Unit columns.
	for m, f := range factors {
		for c := 0; c < 3; c++ {
			var ss float64
			for i := 0; i < f.Rows; i++ {
				ss += f.At(i, c) * f.At(i, c)
			}
			if math.Abs(math.Sqrt(ss)-1) > 1e-12 {
				t.Fatalf("mode %d column %d norm %v", m, c, math.Sqrt(ss))
			}
		}
	}
	// λ-weighted reconstruction matches the original model.
	for i, want := range before {
		got := 0.0
		for c := 0; c < 3; c++ {
			got += lambda[c] * factors[0].At(i, c) * factors[1].At(i%5, c) * factors[2].At(i%4, c)
		}
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("value %d changed: %v vs %v", i, got, want)
		}
	}
	// Denormalize restores plain Reconstruct equivalence.
	Denormalize(factors, lambda)
	for i, want := range before {
		got := Reconstruct(factors, []int{i, i % 5, i % 4})
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("denormalized value %d: %v vs %v", i, got, want)
		}
	}
}

// TestNormalizeIntoRoundTrip drives the workspace-backed form through a
// full normalize/denormalize round trip: Reconstruct is preserved, the
// caller's buffer is the one returned, and the steady-state call
// allocates nothing.
func TestNormalizeIntoRoundTrip(t *testing.T) {
	src := xrand.New(9)
	build := func() []*mat.Dense {
		return []*mat.Dense{
			mat.RandomGaussian(5, 3, src),
			mat.RandomGaussian(4, 3, src),
			mat.RandomGaussian(3, 3, src),
		}
	}
	factors := build()
	var before []float64
	for i := 0; i < 5; i++ {
		before = append(before, Reconstruct(factors, []int{i, i % 4, i % 3}))
	}

	ws := mat.NewWorkspace()
	lambda := NormalizeInto(ws.TakeVec(3), factors)
	if len(lambda) != 3 {
		t.Fatalf("NormalizeInto returned %d weights", len(lambda))
	}
	Denormalize(factors, lambda)
	for i, want := range before {
		got := Reconstruct(factors, []int{i, i % 4, i % 3})
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("round-trip value %d changed: %v vs %v", i, got, want)
		}
	}
	ws.Reset()

	// The streaming pattern — normalise a snapshot per step with a
	// recycled buffer — must be allocation-free at steady state.
	norm := func() {
		mark := ws.Mark()
		l := NormalizeInto(ws.TakeVec(3), factors)
		Denormalize(factors, l)
		ws.Release(mark)
	}
	norm()
	if allocs := testing.AllocsPerRun(50, norm); allocs != 0 {
		t.Fatalf("NormalizeInto round trip allocates %v times, want 0", allocs)
	}

	// Wrong-length buffers are rejected rather than mis-scaled.
	defer func() {
		if recover() == nil {
			t.Fatal("NormalizeInto with short lambda did not panic")
		}
	}()
	NormalizeInto(make([]float64, 2), factors)
}

func TestNormalizeZeroColumn(t *testing.T) {
	f0 := mat.NewFrom(2, 2, []float64{1, 0, 2, 0})
	f1 := mat.NewFrom(2, 2, []float64{3, 0, 4, 0})
	lambda := Normalize([]*mat.Dense{f0, f1})
	if lambda[1] != 0 {
		t.Fatalf("zero column weight %v", lambda[1])
	}
	if lambda[0] <= 0 {
		t.Fatalf("live column weight %v", lambda[0])
	}
}

func TestComponentOrder(t *testing.T) {
	order := ComponentOrder([]float64{1, 5, 3, 5})
	if order[0] != 1 && order[0] != 3 {
		t.Fatalf("order %v", order)
	}
	// Descending weights.
	l := []float64{1, 5, 3, 5}
	for i := 1; i < len(order); i++ {
		if l[order[i]] > l[order[i-1]] {
			t.Fatalf("order %v not descending", order)
		}
	}
}

func TestNormalizePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":  func() { Normalize(nil) },
		"ragged": func() { Normalize([]*mat.Dense{mat.New(2, 2), mat.New(2, 3)}) },
		"denorm": func() { Denormalize([]*mat.Dense{mat.New(2, 2)}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
