package cp

import (
	"fmt"
	"math"

	"dismastd/internal/mat"
)

// Normalize rescales each factor's columns to unit Euclidean norm and
// returns the per-component weights λ_r = ∏_k ‖A_k[:,r]‖, ordered as
// the columns are. After normalisation the model is
// Σ_r λ_r · a_1r ∘ … ∘ a_Nr, the standard interpretable form: λ ranks
// the components by energy, and the unit columns are comparable across
// modes (the trend-analysis example relies on this). Zero columns get
// weight 0 and are left untouched. Factors are modified in place.
func Normalize(factors []*mat.Dense) []float64 {
	if len(factors) == 0 {
		panic("cp: Normalize of no factors")
	}
	return NormalizeInto(make([]float64, factors[0].Cols), factors)
}

// NormalizeInto is Normalize with the weight vector provided by the
// caller — typically checked out of a mat.Workspace — so per-snapshot
// normalisation in a streaming loop allocates nothing. lambda must have
// length factors[0].Cols; it is fully overwritten and returned.
func NormalizeInto(lambda []float64, factors []*mat.Dense) []float64 {
	if len(factors) == 0 {
		panic("cp: Normalize of no factors")
	}
	r := factors[0].Cols
	if len(lambda) != r {
		panic(fmt.Sprintf("cp: NormalizeInto with %d weights for rank %d", len(lambda), r))
	}
	for i := range lambda {
		lambda[i] = 1
	}
	for _, f := range factors {
		if f.Cols != r {
			panic(fmt.Sprintf("cp: Normalize with ragged ranks %d vs %d", f.Cols, r))
		}
		for c := 0; c < r; c++ {
			var ss float64
			for i := 0; i < f.Rows; i++ {
				v := f.At(i, c)
				ss += v * v
			}
			norm := math.Sqrt(ss)
			if norm == 0 {
				lambda[c] = 0
				continue
			}
			lambda[c] *= norm
			inv := 1 / norm
			for i := 0; i < f.Rows; i++ {
				f.Set(i, c, f.At(i, c)*inv)
			}
		}
	}
	return lambda
}

// Denormalize folds the weights back into the first factor's columns,
// inverting Normalize (up to the usual scale-distribution ambiguity):
// Reconstruct over the result equals λ-weighted reconstruction over the
// normalised factors.
func Denormalize(factors []*mat.Dense, lambda []float64) {
	if len(factors) == 0 || len(lambda) != factors[0].Cols {
		panic("cp: Denormalize with mismatched lambda")
	}
	f := factors[0]
	for c, l := range lambda {
		for i := 0; i < f.Rows; i++ {
			f.Set(i, c, f.At(i, c)*l)
		}
	}
}

// ComponentOrder returns the component indices sorted by descending
// weight — the order in which to inspect or truncate components.
func ComponentOrder(lambda []float64) []int {
	order := make([]int, len(lambda))
	for i := range order {
		order[i] = i
	}
	// Insertion sort: R is small.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && lambda[order[j]] > lambda[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}
