package cp

import (
	"math"
	"testing"

	"dismastd/internal/mat"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// lowRankTensor synthesises a tensor that is exactly rank r by sampling
// factors and materialising a sparse subset of the Kruskal model's
// entries (every sampled cell keeps its exact low-rank value).
func lowRankTensor(dims []int, r, nnz int, seed uint64) (*tensor.Tensor, []*mat.Dense) {
	src := xrand.New(seed)
	factors := make([]*mat.Dense, len(dims))
	for m, d := range dims {
		factors[m] = mat.RandomUniform(d, r, src)
	}
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, Reconstruct(factors, idx))
	}
	return b.Build(), factors
}

func denseLowRank(dims []int, r int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	factors := make([]*mat.Dense, len(dims))
	for m, d := range dims {
		factors[m] = mat.RandomUniform(d, r, src)
	}
	b := tensor.NewBuilder(dims)
	var walk func(idx []int, m int)
	walk = func(idx []int, m int) {
		if m == len(dims) {
			b.Append(idx, Reconstruct(factors, idx))
			return
		}
		for i := 0; i < dims[m]; i++ {
			idx[m] = i
			walk(idx, m+1)
		}
	}
	walk(make([]int, len(dims)), 0)
	return b.Build()
}

func TestDecomposeRecoversDenseLowRank(t *testing.T) {
	// A fully observed rank-2 tensor must be fit almost perfectly.
	x := denseLowRank([]int{8, 7, 6}, 2, 1)
	res, err := Decompose(x, Options{Rank: 3, MaxIters: 200, Tol: 1e-10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.999 {
		t.Fatalf("fit %v after %d iters, want ≥ 0.999", res.Fit, res.Iters)
	}
}

func TestLossDecreasesMonotonically(t *testing.T) {
	x := denseLowRank([]int{6, 6, 6}, 3, 2)
	res, err := Decompose(x, Options{Rank: 3, MaxIters: 30, Tol: 0.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.LossTrace); i++ {
		if res.LossTrace[i] > res.LossTrace[i-1]+1e-8 {
			t.Fatalf("loss increased at sweep %d: %v -> %v", i, res.LossTrace[i-1], res.LossTrace[i])
		}
	}
}

func TestReportedLossMatchesDefinition(t *testing.T) {
	x, _ := lowRankTensor([]int{10, 9, 8}, 3, 200, 3)
	res, err := Decompose(x, Options{Rank: 3, MaxIters: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	direct := LossAgainst(x, res.Factors)
	if math.Abs(direct-res.Loss) > 1e-6*(1+direct) {
		t.Fatalf("reuse loss %v != definitional loss %v", res.Loss, direct)
	}
}

func TestFourthOrderDecomposition(t *testing.T) {
	x := denseLowRank([]int{5, 4, 4, 3}, 2, 4)
	res, err := Decompose(x, Options{Rank: 2, MaxIters: 300, Tol: 1e-12, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.99 {
		t.Fatalf("4th-order fit %v, want ≥ 0.99", res.Fit)
	}
}

func TestDecomposeFromWarmStart(t *testing.T) {
	x := denseLowRank([]int{7, 7, 7}, 2, 6)
	cold, err := Decompose(x, Options{Rank: 2, MaxIters: 40, Tol: 1e-12, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	warm := make([]*mat.Dense, len(cold.Factors))
	for i, f := range cold.Factors {
		warm[i] = f.Clone()
	}
	res, err := DecomposeFrom(x, warm, Options{Rank: 2, MaxIters: 5, Tol: 1e-12, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss > cold.Loss+1e-6 {
		t.Fatalf("warm start worsened loss: %v -> %v", cold.Loss, res.Loss)
	}
}

func TestOptionValidation(t *testing.T) {
	x, _ := lowRankTensor([]int{4, 4, 4}, 2, 20, 15)
	if _, err := Decompose(x, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := Decompose(x, Options{Rank: 2, Tol: -1}); err == nil {
		t.Fatal("negative tolerance accepted")
	}
	empty := tensor.NewBuilder([]int{3, 3}).Build()
	if _, err := Decompose(empty, Options{Rank: 2}); err != ErrEmptyTensor {
		t.Fatalf("empty tensor error = %v", err)
	}
	bad := []*mat.Dense{mat.New(4, 2), mat.New(4, 2)}
	if _, err := DecomposeFrom(x, bad, Options{Rank: 2}); err == nil {
		t.Fatal("wrong factor count accepted")
	}
	bad3 := []*mat.Dense{mat.New(4, 2), mat.New(4, 2), mat.New(5, 2)}
	if _, err := DecomposeFrom(x, bad3, Options{Rank: 2}); err == nil {
		t.Fatal("wrong factor shape accepted")
	}
}

func TestReconstruct(t *testing.T) {
	a := mat.NewFrom(2, 2, []float64{1, 2, 3, 4})
	b := mat.NewFrom(2, 2, []float64{5, 6, 7, 8})
	// [[A,B]][1,0] = 3*5 + 4*6 = 39
	if got := Reconstruct([]*mat.Dense{a, b}, []int{1, 0}); got != 39 {
		t.Fatalf("Reconstruct = %v", got)
	}
}

func TestReconstructPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Reconstruct([]*mat.Dense{mat.New(2, 2)}, []int{0, 0})
}

func TestDeterministicAcrossRuns(t *testing.T) {
	x, _ := lowRankTensor([]int{9, 8, 7}, 3, 150, 17)
	a, err := Decompose(x, Options{Rank: 3, MaxIters: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(x, Options{Rank: 3, MaxIters: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for m := range a.Factors {
		if mat.MaxAbsDiff(a.Factors[m], b.Factors[m]) != 0 {
			t.Fatalf("mode %d factors differ across identical runs", m)
		}
	}
}

func BenchmarkDecomposeSweep(b *testing.B) {
	x, _ := lowRankTensor([]int{500, 500, 100}, 5, 50000, 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(x, Options{Rank: 10, MaxIters: 1, Tol: 1e-12}); err != nil {
			b.Fatal(err)
		}
	}
}
