// Package cp implements static CP decomposition by alternating least
// squares (ALS) for sparse tensors of arbitrary order. It is the
// centralized reference the DMS-MG baseline distributes, and it seeds
// the first snapshot of a streaming sequence before DTD/DisMASTD take
// over.
//
// One ALS sweep updates each factor in turn:
//
//	A_n ← MTTKRP_n(X, A) · (∗_{k≠n} A_kᵀA_k)⁻¹
//
// with the loss evaluated from reused intermediates:
//
//	‖X − [[A]]‖² = ‖X‖² − 2·Σ_i M_N[i,:]·A_N[i,:] + Σ_{r,s} (∗_k A_kᵀA_k)[r,s]
package cp

import (
	"errors"
	"fmt"
	"math"

	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/obs"
	"dismastd/internal/par"
	"dismastd/internal/sample"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Options controls a CP-ALS run.
type Options struct {
	Rank     int     // R, the number of components (required, > 0)
	MaxIters int     // maximum ALS sweeps; default 50
	Tol      float64 // stop when the relative fit change falls below Tol; default 1e-6
	Seed     uint64  // factor initialisation seed; default 1

	// Threads sizes the shared-memory pool the sweep kernels run on.
	// 0 or 1 means sequential. Results are bitwise identical at every
	// value (see internal/par).
	Threads int

	// Layout selects the kernel representation the sweeps run on:
	// layout.COO (default) walks the coordinate arrays, layout.Compiled
	// compiles the tensor once per run into fiber-grouped layouts.
	// Factors are bitwise identical under either.
	Layout layout.Kind

	// Solver selects the per-mode least-squares strategy: sample.Exact
	// (default) runs the full MTTKRP and the exact Gram Hadamard
	// product; sample.Sampled replaces both with the leverage-score
	// sketch of internal/sample — sublinear-in-nnz rounds at a
	// configurable fit tolerance, bitwise reproducible per seed at
	// every thread count.
	Solver sample.Kind
	// Samples is the sketch size S per mode under the sampled solver;
	// 0 selects sample.DefaultSamples.
	Samples int

	// Obs receives the run's phase spans (modeN/mttkrp, modeN/solve,
	// modeN/gram, loss, plan/sample-index under the sampled solver, and
	// per-chunk modeN/mttkrp.chunk spans when Threads > 1). May be nil.
	Obs *obs.Obs
}

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if opts.Rank <= 0 {
		return opts, fmt.Errorf("cp: rank must be positive, got %d", opts.Rank)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 50
	}
	if opts.Tol < 0 {
		return opts, fmt.Errorf("cp: negative tolerance %v", opts.Tol)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-6
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Threads < 0 {
		return opts, fmt.Errorf("cp: negative thread count %d", opts.Threads)
	}
	if opts.Threads == 0 {
		opts.Threads = 1
	}
	if opts.Solver != sample.Exact && opts.Solver != sample.Sampled {
		return opts, fmt.Errorf("cp: unknown solver %v", opts.Solver)
	}
	if opts.Samples < 0 {
		return opts, fmt.Errorf("cp: negative sample count %d", opts.Samples)
	}
	if opts.Samples == 0 {
		opts.Samples = sample.DefaultSamples
	}
	return opts, nil
}

// Result holds the factor matrices and convergence diagnostics of a
// CP-ALS run.
type Result struct {
	Factors   []*mat.Dense    // one I_n x R factor per mode
	Iters     int             // ALS sweeps performed
	Loss      float64         // final ‖X − [[A]]‖_F
	Fit       float64         // 1 − Loss/‖X‖_F
	LossTrace []float64       // loss after each sweep
	Phases    []obs.PhaseStat // per-phase wall time, when Options.Obs is set
}

// ErrEmptyTensor reports decomposition of a tensor without entries.
var ErrEmptyTensor = errors.New("cp: tensor has no non-zero entries")

// Decompose runs CP-ALS on x and returns the factors.
func Decompose(x *tensor.Tensor, o Options) (*Result, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if x.NNZ() == 0 {
		return nil, ErrEmptyTensor
	}
	src := xrand.New(opts.Seed)
	factors := make([]*mat.Dense, x.Order())
	for m, d := range x.Dims {
		factors[m] = mat.RandomUniform(d, opts.Rank, src)
	}
	return DecomposeFrom(x, factors, opts)
}

// DecomposeFrom runs CP-ALS starting from the given factors, which are
// updated in place and returned in the result. It is used by warm-start
// baselines and by tests that need controlled initialisation.
func DecomposeFrom(x *tensor.Tensor, factors []*mat.Dense, o Options) (*Result, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if x.NNZ() == 0 {
		return nil, ErrEmptyTensor
	}
	if len(factors) != x.Order() {
		return nil, fmt.Errorf("cp: %d factors for order-%d tensor", len(factors), x.Order())
	}
	for m, f := range factors {
		if f.Rows != x.Dims[m] || f.Cols != opts.Rank {
			return nil, fmt.Errorf("cp: factor %d is %dx%d, want %dx%d", m, f.Rows, f.Cols, x.Dims[m], opts.Rank)
		}
	}

	n := x.Order()
	normSq := x.NormSq()
	norm := math.Sqrt(normSq)

	// Everything the sweep loop needs is allocated here, once: factor
	// updates, Gram refreshes and the loss all run in place, so the
	// steady-state iteration performs zero heap allocations. The pool
	// and its per-thread workspaces live for the whole run; with
	// Threads <= 1 the pool is nil and every kernel runs inline.
	pool := par.New(opts.Threads)
	defer pool.Close()
	wss := mat.NewWorkspaceSet(pool.Threads())
	pk := mat.NewParKernels(pool, wss)
	pacc := mttkrp.NewParAccumulator(pool, wss, opts.Obs)
	grams := make([]*mat.Dense, n)
	for m := range factors {
		grams[m] = mat.Gram(factors[m])
	}
	kernels := make([]mttkrp.Kernel, n)
	mbuf := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		kernels[m] = mttkrp.NewKernel(x, m, opts.Layout)
		mbuf[m] = mat.New(x.Dims[m], opts.Rank)
	}
	denom := mat.New(opts.Rank, opts.Rank)
	hall := mat.New(opts.Rank, opts.Rank)

	// Under the sampled solver, the per-mode system (MTTKRP + Gram
	// Hadamard product) is replaced by the leverage-score sketch: build
	// the per-mode fiber indices once, then refresh each mode's draw
	// distribution whenever its Gram refreshes.
	var smp *sample.Sampler
	if opts.Solver == sample.Sampled {
		sp := opts.Obs.Span("plan/sample-index")
		smp, err = sample.New(x, nil, opts.Rank, opts.Samples, opts.Seed, 0)
		sp.End()
		if err != nil {
			return nil, err
		}
		for m := range factors {
			smp.Refresh(m, factors[m], grams[m])
		}
	}

	// Per-mode span names, formatted once so the sweep loop never builds
	// strings; every handle is nil-safe when opts.Obs is unset.
	names := make([]struct{ mttkrp, chunk, solve, gram string }, n)
	for m := 0; m < n; m++ {
		names[m].mttkrp = fmt.Sprintf("mode%d/mttkrp", m)
		names[m].chunk = fmt.Sprintf("mode%d/mttkrp.chunk", m)
		names[m].solve = fmt.Sprintf("mode%d/solve", m)
		names[m].gram = fmt.Sprintf("mode%d/gram", m)
	}
	cRows := opts.Obs.Counter("mttkrp.rows")

	res := &Result{Factors: factors, LossTrace: make([]float64, 0, opts.MaxIters)}
	prevFit := math.Inf(-1)
	for it := 0; it < opts.MaxIters; it++ {
		opts.Obs.SetIter(it)
		var lastM *mat.Dense
		for m := 0; m < n; m++ {
			sp := opts.Obs.Span(names[m].mttkrp)
			M := mbuf[m]
			if smp != nil {
				// Sketched system: M̂ into M, Ĝ into denom.
				matched := smp.Sample(m, factors, pacc, pk, M, denom, names[m].chunk)
				cRows.Add(int64(matched))
			} else {
				M.Zero()
				pacc.Accumulate(M, kernels[m], factors, names[m].chunk)
				cRows.Add(int64(x.NNZ()))
			}
			sp.End()
			sp = opts.Obs.Span(names[m].solve)
			if smp == nil {
				hadamardExceptInto(denom, grams, m)
			}
			pk.SolveRightRidgeInto(factors[m], M, denom)
			sp.End()
			sp = opts.Obs.Span(names[m].gram)
			pk.GramInto(grams[m], factors[m])
			if smp != nil {
				smp.Refresh(m, factors[m], grams[m])
			}
			sp.End()
			lastM = M
		}
		res.Factors = factors
		res.Iters = it + 1

		// Under the sampled solver lastM is the sketched MTTKRP, so the
		// inner-product term — and with it the loss trace and the Tol
		// stop — is an unbiased estimate rather than exact; callers
		// needing the true final loss evaluate LossAgainst once.
		lsp := opts.Obs.Span("loss")
		inner := mat.Dot(lastM, factors[n-1])
		mat.HadamardAllInto(hall, grams...)
		modelSq := mat.SumAll(hall)
		lossSq := normSq - 2*inner + modelSq
		if lossSq < 0 {
			lossSq = 0 // guard tiny negative round-off
		}
		lsp.End()
		res.Loss = math.Sqrt(lossSq)
		res.Fit = 1 - res.Loss/norm
		res.LossTrace = append(res.LossTrace, res.Loss)
		if math.Abs(res.Fit-prevFit) < opts.Tol {
			break
		}
		prevFit = res.Fit
	}
	if opts.Obs != nil && opts.Obs.Trace != nil {
		res.Phases = obs.AggregatePhases(opts.Obs.Trace.Phases())
	}
	return res, nil
}

// hadamardExceptInto stores ∗_{k≠mode} grams[k] into dst, or the
// identity when the tensor is first-order (no other modes). dst must
// not be one of the grams.
func hadamardExceptInto(dst *mat.Dense, grams []*mat.Dense, mode int) {
	first := true
	for k, g := range grams {
		if k == mode {
			continue
		}
		if first {
			dst.CopyFrom(g)
			first = false
		} else {
			dst.Hadamard(dst, g)
		}
	}
	if first {
		dst.SetIdentity()
	}
}

// Reconstruct evaluates the Kruskal model at one coordinate:
// Σ_r ∏_k A_k[idx_k, r]. It is the prediction primitive the
// recommendation example uses for missing entries.
func Reconstruct(factors []*mat.Dense, idx []int) float64 {
	if len(idx) != len(factors) {
		panic(fmt.Sprintf("cp: Reconstruct with %d indices for %d factors", len(idx), len(factors)))
	}
	r := factors[0].Cols
	total := 0.0
	for c := 0; c < r; c++ {
		p := 1.0
		for k, f := range factors {
			p *= f.At(idx[k], c)
		}
		total += p
	}
	return total
}

// LossAgainst returns ‖X − [[factors]]‖_F computed from scratch — the
// slow definitional form used to validate the reuse-based loss.
func LossAgainst(x *tensor.Tensor, factors []*mat.Dense) float64 {
	grams := make([]*mat.Dense, len(factors))
	for m, f := range factors {
		grams[m] = mat.Gram(f)
	}
	modelSq := mat.SumAll(mat.HadamardAll(grams...))
	inner := mttkrp.InnerProduct(x, factors)
	lossSq := x.NormSq() - 2*inner + modelSq
	if lossSq < 0 {
		lossSq = 0
	}
	return math.Sqrt(lossSq)
}
