// Package onlinecp implements OnlineCP (Zhou et al., SIGKDD 2016), the
// traditional *one-mode* streaming CP baseline of the paper's Table I.
// It exists to make the paper's motivating contrast executable: OnlineCP
// incrementally absorbs new slices of a single growing mode (time) in
// O(nnz(ΔX)·R) per batch, but structurally cannot handle multi-aspect
// growth — when any non-time mode grows it must fall back to a full
// recomputation, which is exactly the gap DTD/DisMASTD close.
//
// For each non-streaming mode n the tracker maintains the *paired*
// accumulators of the normal equations,
//
//	P_n = Σ_batches ΔX_(n) · KR(factors at absorb time, k≠n)
//	Q_n = Σ_batches (c_newᵀc_new) ∗ ∗_{k≠n,s}(A_kᵀA_k at absorb time)
//
// and refreshes A_n = P_n · Q_n⁻¹. P and Q must age together — pairing
// a stale P with fresh Grams destroys the normal equations — which is
// the heart of the OnlineCP trick. A new batch costs O(nnz(ΔX)·R) for
// the fold-in plus O(ΣI_n·R²) for the refreshes.
package onlinecp

import (
	"errors"
	"fmt"

	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/par"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Options configures an OnlineCP tracker.
type Options struct {
	Rank       int    // R (required, > 0)
	StreamMode int    // index of the growing mode (usually the last)
	InitIters  int    // ALS sweeps on the initial batch; default 30
	Seed       uint64 // initialisation seed; default 1

	// Threads sizes the tracker's shared-memory pool (see internal/par).
	// 0 or 1 means sequential; results are bitwise identical at every
	// value. Call Close when done with a tracker to stop the pool.
	Threads int

	// Layout selects the kernel representation of the initial ALS (see
	// internal/layout): COO (default) or Compiled. Absorb's P fold-in
	// always stays on the flat kernel — it accumulates onto live
	// non-zero state, where regrouping would change rounding — so
	// results are bitwise identical under either.
	Layout layout.Kind
}

func (o *Options) withDefaults(order int) (Options, error) {
	opts := *o
	if opts.Rank <= 0 {
		return opts, fmt.Errorf("onlinecp: rank must be positive, got %d", opts.Rank)
	}
	if opts.StreamMode < 0 || opts.StreamMode >= order {
		return opts, fmt.Errorf("onlinecp: stream mode %d out of range for order %d", opts.StreamMode, order)
	}
	if opts.InitIters <= 0 {
		opts.InitIters = 30
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Threads < 0 {
		return opts, fmt.Errorf("onlinecp: negative thread count %d", opts.Threads)
	}
	if opts.Threads == 0 {
		opts.Threads = 1
	}
	return opts, nil
}

// Tracker carries the OnlineCP state between batches, plus the
// persistent scratch every Absorb reuses (the workspace, the current
// Gram set, and the R×R fold-in buffers), so absorbing a batch
// allocates only for the genuinely growing state.
type Tracker struct {
	opts    Options
	dims    []int        // current mode sizes
	factors []*mat.Dense // current factors; factors[StreamMode] grows
	p       []*mat.Dense // accumulated P_n, n ≠ StreamMode
	q       []*mat.Dense // accumulated Q_n, n ≠ StreamMode

	ws   *mat.Workspace
	pool *par.Pool
	wss  *mat.WorkspaceSet
	pk   *mat.ParKernels

	factorsG []*mat.Dense // per-batch factor view with the grown mode
	curGrams []*mat.Dense // A_nᵀA_n at batch-absorb time
	gramNew  *mat.Dense   // c_newᵀ c_new
	dq       *mat.Dense   // per-mode Q_n increment
	gk       *mat.Dense   // Gram scratch for the dq Hadamard chain
	denom    *mat.Dense   // Hadamard-chain denominator scratch
}

// ErrMultiAspect reports a batch that grows a non-streaming mode — the
// case OnlineCP cannot absorb incrementally (use DTD/DisMASTD).
var ErrMultiAspect = errors.New("onlinecp: batch grows a non-streaming mode")

// Init decomposes the initial tensor with plain ALS and prepares the
// running accumulators.
func Init(x *tensor.Tensor, o Options) (*Tracker, error) {
	opts, err := o.withDefaults(x.Order())
	if err != nil {
		return nil, err
	}
	if x.NNZ() == 0 {
		return nil, fmt.Errorf("onlinecp: empty initial tensor")
	}
	n := x.Order()
	r := opts.Rank
	src := xrand.New(opts.Seed)
	factors := make([]*mat.Dense, n)
	for m, d := range x.Dims {
		factors[m] = mat.RandomUniform(d, opts.Rank, src)
	}
	grams := make([]*mat.Dense, n)
	for m := range factors {
		grams[m] = mat.Gram(factors[m])
	}
	// The initial ALS runs entirely in place: persistent MTTKRP buffers,
	// a shared denominator, and workspace-backed solves. The pool lives
	// for the tracker's lifetime (Close stops it); each sweep zeroes its
	// MTTKRP buffer, so the row-grouped parallel kernel reproduces the
	// flat scatter bit for bit.
	ws := mat.NewWorkspace()
	pool := par.New(opts.Threads)
	wss := mat.NewWorkspaceSet(pool.Threads())
	pk := mat.NewParKernels(pool, wss)
	pacc := mttkrp.NewParAccumulator(pool, wss, nil)
	kernels := make([]mttkrp.Kernel, n)
	mbuf := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		kernels[m] = mttkrp.NewKernel(x, m, opts.Layout)
		mbuf[m] = mat.New(x.Dims[m], r)
	}
	denom := mat.New(r, r)
	for it := 0; it < opts.InitIters; it++ {
		for m := 0; m < n; m++ {
			M := mbuf[m]
			M.Zero()
			pacc.Accumulate(M, kernels[m], factors, "")
			hadamardExceptInto(denom, grams, m)
			pk.SolveRightRidgeInto(factors[m], M, denom)
			pk.GramInto(grams[m], factors[m])
		}
	}
	tr := &Tracker{
		opts:     opts,
		dims:     append([]int(nil), x.Dims...),
		factors:  factors,
		p:        make([]*mat.Dense, n),
		q:        make([]*mat.Dense, n),
		ws:       ws,
		pool:     pool,
		wss:      wss,
		pk:       pk,
		factorsG: make([]*mat.Dense, n),
		curGrams: make([]*mat.Dense, n),
		gramNew:  mat.New(r, r),
		dq:       mat.New(r, r),
		gk:       mat.New(r, r),
		denom:    denom,
	}
	for m := 0; m < n; m++ {
		tr.curGrams[m] = mat.New(r, r)
		if m == opts.StreamMode {
			continue
		}
		tr.p[m] = mttkrp.Compute(x, factors, m)
		q := mat.New(r, r)
		hadamardExceptInto(q, grams, m)
		tr.q[m] = q
	}
	return tr, nil
}

// Close stops the tracker's thread pool. The tracker must not be used
// after Close. Safe on a sequential (Threads <= 1) tracker.
func (t *Tracker) Close() { t.pool.Close() }

// Dims returns the current mode sizes.
func (t *Tracker) Dims() []int { return t.dims }

// Factors returns the current factor matrices.
func (t *Tracker) Factors() []*mat.Dense { return t.factors }

// Absorb ingests one batch: a sparse tensor whose streaming-mode
// coordinates are *global* (at or beyond the previous size) and whose
// other dims equal the tracker's.
func (t *Tracker) Absorb(batch *tensor.Tensor) error {
	n := len(t.dims)
	if batch.Order() != n {
		return fmt.Errorf("onlinecp: batch order %d, tracker order %d", batch.Order(), n)
	}
	s := t.opts.StreamMode
	for m, d := range batch.Dims {
		if m == s {
			if d < t.dims[m] {
				return fmt.Errorf("onlinecp: streaming mode shrank %d -> %d", t.dims[m], d)
			}
			continue
		}
		if d != t.dims[m] {
			return fmt.Errorf("%w: mode %d is %d, tracker has %d", ErrMultiAspect, m, d, t.dims[m])
		}
	}
	newRows := batch.Dims[s] - t.dims[s]
	if newRows == 0 && batch.NNZ() == 0 {
		return nil
	}
	for e := 0; e < batch.NNZ(); e++ {
		if int(batch.Coords[e*n+s]) < t.dims[s] {
			return fmt.Errorf("onlinecp: batch writes into already-absorbed streaming index %d", batch.Coords[e*n+s])
		}
	}

	factorsG := t.solveStreamRows(batch, newRows)
	for m := 0; m < n; m++ {
		if m == s {
			continue
		}
		t.foldIn(batch, factorsG, m)
	}
	t.dims[s] = batch.Dims[s]
	return nil
}

// solveStreamRows is Absorb's first kernel: solve the new streaming-
// mode rows against the current non-streaming factors — their normal
// equations involve only ΔX — and adopt the grown factor. It returns
// the per-batch factor view (the grown streaming factor plus aliases
// of the live factors) that the fold-in kernel consumes. Only the
// grown factor itself is a fresh allocation; the MTTKRP and solver
// scratch come from the tracker's workspace. Extracted from the
// whole-batch driver so a micro-batch path can absorb a handful of
// rows without restating the driver's bookkeeping.
func (t *Tracker) solveStreamRows(batch *tensor.Tensor, newRows int) []*mat.Dense {
	n := len(t.dims)
	s := t.opts.StreamMode
	r := t.opts.Rank
	grown := mat.StackRows(t.factors[s], mat.New(newRows, r))
	factorsG := t.factorsG
	copy(factorsG, t.factors)
	factorsG[s] = grown
	for m := 0; m < n; m++ {
		t.pk.GramInto(t.curGrams[m], t.factors[m])
	}
	mark := t.ws.Mark()
	Ms := t.ws.Take(batch.Dims[s], r)
	mttkrp.AccumulateIntoWS(Ms, batch, factorsG, s, t.ws)
	hadamardExceptInto(t.denom, t.curGrams, s)
	newBlock := grown.SliceRows(t.dims[s], batch.Dims[s])
	t.pk.SolveRightRidgeInto(newBlock, Ms.SliceRows(t.dims[s], batch.Dims[s]), t.denom)
	t.ws.Release(mark)
	t.factors[s] = grown
	t.pk.GramInto(t.gramNew, newBlock) // c_newᵀ c_new
	return factorsG
}

// foldIn is Absorb's second kernel, for one non-streaming mode: fold
// the batch into the mode's P_n/Q_n pair, then refresh A_n. KR uses
// the just-solved streaming rows plus the factors as they were when
// this batch's contribution is computed (modes refreshed earlier in
// the driver's loop contribute their new values, as in the published
// algorithm's sequential update). The P fold-in stays on the flat
// kernel: it accumulates onto the *live* P_n carried from previous
// batches, where regrouping entries would change the floating-point
// accumulation order.
func (t *Tracker) foldIn(batch *tensor.Tensor, factorsG []*mat.Dense, m int) {
	n := len(t.dims)
	s := t.opts.StreamMode
	mttkrp.AccumulateIntoWS(t.p[m], batch, factorsG, m, t.ws)
	t.dq.CopyFrom(t.gramNew)
	for k := 0; k < n; k++ {
		if k == m || k == s {
			continue
		}
		t.pk.GramInto(t.gk, factorsG[k])
		t.dq.Hadamard(t.dq, t.gk)
	}
	t.q[m].Add(t.q[m], t.dq)
	// In-place refresh: the solve reads only P_n and Q_n, and
	// factorsG[m] already aliases t.factors[m], so later modes see
	// the new values exactly as the sequential algorithm requires.
	t.pk.SolveRightRidgeInto(t.factors[m], t.p[m], t.q[m])
}

// hadamardExceptInto stores ∗_{k≠mode} grams[k] into dst, or the
// identity when there are no other modes. dst must not be one of the
// grams.
func hadamardExceptInto(dst *mat.Dense, grams []*mat.Dense, mode int) {
	first := true
	for k, g := range grams {
		if k == mode {
			continue
		}
		if first {
			dst.CopyFrom(g)
			first = false
		} else {
			dst.Hadamard(dst, g)
		}
	}
	if first {
		dst.SetIdentity()
	}
}
