// Package onlinecp implements OnlineCP (Zhou et al., SIGKDD 2016), the
// traditional *one-mode* streaming CP baseline of the paper's Table I.
// It exists to make the paper's motivating contrast executable: OnlineCP
// incrementally absorbs new slices of a single growing mode (time) in
// O(nnz(ΔX)·R) per batch, but structurally cannot handle multi-aspect
// growth — when any non-time mode grows it must fall back to a full
// recomputation, which is exactly the gap DTD/DisMASTD close.
//
// For each non-streaming mode n the tracker maintains the *paired*
// accumulators of the normal equations,
//
//	P_n = Σ_batches ΔX_(n) · KR(factors at absorb time, k≠n)
//	Q_n = Σ_batches (c_newᵀc_new) ∗ ∗_{k≠n,s}(A_kᵀA_k at absorb time)
//
// and refreshes A_n = P_n · Q_n⁻¹. P and Q must age together — pairing
// a stale P with fresh Grams destroys the normal equations — which is
// the heart of the OnlineCP trick. A new batch costs O(nnz(ΔX)·R) for
// the fold-in plus O(ΣI_n·R²) for the refreshes.
package onlinecp

import (
	"errors"
	"fmt"

	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Options configures an OnlineCP tracker.
type Options struct {
	Rank       int    // R (required, > 0)
	StreamMode int    // index of the growing mode (usually the last)
	InitIters  int    // ALS sweeps on the initial batch; default 30
	Seed       uint64 // initialisation seed; default 1
}

func (o *Options) withDefaults(order int) (Options, error) {
	opts := *o
	if opts.Rank <= 0 {
		return opts, fmt.Errorf("onlinecp: rank must be positive, got %d", opts.Rank)
	}
	if opts.StreamMode < 0 || opts.StreamMode >= order {
		return opts, fmt.Errorf("onlinecp: stream mode %d out of range for order %d", opts.StreamMode, order)
	}
	if opts.InitIters <= 0 {
		opts.InitIters = 30
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return opts, nil
}

// Tracker carries the OnlineCP state between batches.
type Tracker struct {
	opts    Options
	dims    []int        // current mode sizes
	factors []*mat.Dense // current factors; factors[StreamMode] grows
	p       []*mat.Dense // accumulated P_n, n ≠ StreamMode
	q       []*mat.Dense // accumulated Q_n, n ≠ StreamMode
}

// ErrMultiAspect reports a batch that grows a non-streaming mode — the
// case OnlineCP cannot absorb incrementally (use DTD/DisMASTD).
var ErrMultiAspect = errors.New("onlinecp: batch grows a non-streaming mode")

// Init decomposes the initial tensor with plain ALS and prepares the
// running accumulators.
func Init(x *tensor.Tensor, o Options) (*Tracker, error) {
	opts, err := o.withDefaults(x.Order())
	if err != nil {
		return nil, err
	}
	if x.NNZ() == 0 {
		return nil, fmt.Errorf("onlinecp: empty initial tensor")
	}
	n := x.Order()
	src := xrand.New(opts.Seed)
	factors := make([]*mat.Dense, n)
	for m, d := range x.Dims {
		factors[m] = mat.RandomUniform(d, opts.Rank, src)
	}
	grams := make([]*mat.Dense, n)
	for m := range factors {
		grams[m] = mat.Gram(factors[m])
	}
	for it := 0; it < opts.InitIters; it++ {
		for m := 0; m < n; m++ {
			M := mttkrp.Compute(x, factors, m)
			factors[m] = mat.SolveRightRidge(M, hadamardExcept(grams, m, opts.Rank))
			grams[m] = mat.Gram(factors[m])
		}
	}
	tr := &Tracker{
		opts:    opts,
		dims:    append([]int(nil), x.Dims...),
		factors: factors,
		p:       make([]*mat.Dense, n),
		q:       make([]*mat.Dense, n),
	}
	for m := 0; m < n; m++ {
		if m == opts.StreamMode {
			continue
		}
		tr.p[m] = mttkrp.Compute(x, factors, m)
		tr.q[m] = hadamardExcept(grams, m, opts.Rank)
	}
	return tr, nil
}

// Dims returns the current mode sizes.
func (t *Tracker) Dims() []int { return t.dims }

// Factors returns the current factor matrices.
func (t *Tracker) Factors() []*mat.Dense { return t.factors }

// Absorb ingests one batch: a sparse tensor whose streaming-mode
// coordinates are *global* (at or beyond the previous size) and whose
// other dims equal the tracker's.
func (t *Tracker) Absorb(batch *tensor.Tensor) error {
	n := len(t.dims)
	if batch.Order() != n {
		return fmt.Errorf("onlinecp: batch order %d, tracker order %d", batch.Order(), n)
	}
	s := t.opts.StreamMode
	for m, d := range batch.Dims {
		if m == s {
			if d < t.dims[m] {
				return fmt.Errorf("onlinecp: streaming mode shrank %d -> %d", t.dims[m], d)
			}
			continue
		}
		if d != t.dims[m] {
			return fmt.Errorf("%w: mode %d is %d, tracker has %d", ErrMultiAspect, m, d, t.dims[m])
		}
	}
	newRows := batch.Dims[s] - t.dims[s]
	if newRows == 0 && batch.NNZ() == 0 {
		return nil
	}
	for e := 0; e < batch.NNZ(); e++ {
		if int(batch.Coords[e*n+s]) < t.dims[s] {
			return fmt.Errorf("onlinecp: batch writes into already-absorbed streaming index %d", batch.Coords[e*n+s])
		}
	}

	r := t.opts.Rank
	// 1. Solve the new streaming-mode rows against the current
	// non-streaming factors: their normal equations involve only ΔX.
	grown := mat.StackRows(t.factors[s], mat.New(newRows, r))
	factorsG := make([]*mat.Dense, n)
	copy(factorsG, t.factors)
	factorsG[s] = grown
	curGrams := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		curGrams[m] = mat.Gram(t.factors[m])
	}
	Ms := mttkrp.Compute(batch, factorsG, s)
	newBlock := mat.SolveRightRidge(Ms.SliceRows(t.dims[s], batch.Dims[s]), hadamardExcept(curGrams, s, r))
	for i := 0; i < newRows; i++ {
		copy(grown.Row(t.dims[s]+i), newBlock.Row(i))
	}
	t.factors[s] = grown
	gramNew := mat.Gram(newBlock) // c_newᵀ c_new

	// 2. Fold the batch into each P_n/Q_n pair, then refresh A_n.
	// KR uses the just-solved streaming rows plus the factors as they
	// were when this batch's contribution is computed (modes refreshed
	// earlier in this loop contribute their new values, as in the
	// published algorithm's sequential update).
	for m := 0; m < n; m++ {
		if m == s {
			continue
		}
		mttkrp.AccumulateInto(t.p[m], batch, factorsG, m)
		dq := mat.New(r, r)
		dq.CopyFrom(gramNew)
		for k := 0; k < n; k++ {
			if k == m || k == s {
				continue
			}
			dq.Hadamard(dq, mat.Gram(factorsG[k]))
		}
		t.q[m].Add(t.q[m], dq)
		newFactor := mat.SolveRightRidge(t.p[m], t.q[m])
		t.factors[m] = newFactor
		factorsG[m] = newFactor
	}
	t.dims[s] = batch.Dims[s]
	return nil
}

func hadamardExcept(grams []*mat.Dense, mode, r int) *mat.Dense {
	var out *mat.Dense
	for k, g := range grams {
		if k == mode {
			continue
		}
		if out == nil {
			out = g.Clone()
		} else {
			out.Hadamard(out, g)
		}
	}
	if out == nil {
		out = mat.Eye(r)
	}
	return out
}
