package onlinecp

import (
	"testing"

	"dismastd/internal/cp"
	"dismastd/internal/dtd"
	"dismastd/internal/mat"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// timeStream builds a dense low-rank tensor growing only in the last
// mode, returning the full tensor and the initial time size.
func timeStream(dims []int, r int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	factors := make([]*mat.Dense, len(dims))
	for m, d := range dims {
		factors[m] = mat.RandomUniform(d, r, src)
	}
	b := tensor.NewBuilder(dims)
	var walk func(idx []int, m int)
	walk = func(idx []int, m int) {
		if m == len(dims) {
			b.Append(idx, cp.Reconstruct(factors, idx))
			return
		}
		for i := 0; i < dims[m]; i++ {
			idx[m] = i
			walk(idx, m+1)
		}
	}
	walk(make([]int, len(dims)), 0)
	return b.Build()
}

// sliceBatch extracts the entries with streaming coordinate in
// [from, to) as a batch tensor with the grown dims.
func sliceBatch(t *testing.T, full *tensor.Tensor, mode, from, to int) *tensor.Tensor {
	t.Helper()
	dims := append([]int(nil), full.Dims...)
	dims[mode] = to
	b := tensor.NewBuilder(dims)
	buf := make([]int, full.Order())
	for e := 0; e < full.NNZ(); e++ {
		c := full.Coord(e, buf)
		if c[mode] >= from && c[mode] < to {
			b.Append(c, full.Val(e))
		}
	}
	return b.Build()
}

func TestTracksOneModeStream(t *testing.T) {
	dims := []int{10, 9, 12}
	full := timeStream(dims, 2, 1)
	init := full.Prefix([]int{10, 9, 6})
	tr, err := Init(init, Options{Rank: 2, StreamMode: 2, InitIters: 120, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for step := 6; step < 12; step += 2 {
		batch := sliceBatch(t, full, 2, step, step+2)
		if err := tr.Absorb(batch); err != nil {
			t.Fatalf("absorb at %d: %v", step, err)
		}
	}
	if tr.Dims()[2] != 12 {
		t.Fatalf("streaming dim %d", tr.Dims()[2])
	}
	loss := cp.LossAgainst(full, tr.Factors())
	if fit := 1 - loss/full.Norm(); fit < 0.95 {
		t.Fatalf("final fit %v after streaming", fit)
	}
}

func TestRejectsMultiAspectGrowth(t *testing.T) {
	full := timeStream([]int{8, 8, 8}, 2, 5)
	tr, err := Init(full.Prefix([]int{8, 8, 5}), Options{Rank: 2, StreamMode: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A batch that also grows mode 0 must be refused — the structural
	// limitation DisMASTD removes.
	wide := tensor.NewBuilder([]int{9, 8, 8})
	wide.Append([]int{8, 0, 6}, 1)
	if err := tr.Absorb(wide.Build()); err == nil {
		t.Fatal("multi-aspect batch accepted")
	}
	// A batch rewriting absorbed history is refused too.
	stale := tensor.NewBuilder([]int{8, 8, 8})
	stale.Append([]int{0, 0, 0}, 1)
	if err := tr.Absorb(stale.Build()); err == nil {
		t.Fatal("stale batch accepted")
	}
}

func TestEmptyBatchNoOp(t *testing.T) {
	full := timeStream([]int{6, 6, 6}, 2, 9)
	tr, err := Init(full.Prefix([]int{6, 6, 4}), Options{Rank: 2, StreamMode: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	empty := tensor.NewBuilder([]int{6, 6, 4}).Build()
	if err := tr.Absorb(empty); err != nil {
		t.Fatal(err)
	}
	if tr.Dims()[2] != 4 {
		t.Fatal("no-op batch changed dims")
	}
}

func TestValidation(t *testing.T) {
	full := timeStream([]int{5, 5, 5}, 2, 13)
	if _, err := Init(full, Options{Rank: 0, StreamMode: 2}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := Init(full, Options{Rank: 2, StreamMode: 5}); err == nil {
		t.Fatal("bad stream mode accepted")
	}
	empty := tensor.NewBuilder([]int{3, 3, 3}).Build()
	if _, err := Init(empty, Options{Rank: 2, StreamMode: 2}); err == nil {
		t.Fatal("empty init accepted")
	}
	tr, err := Init(full.Prefix([]int{5, 5, 3}), Options{Rank: 2, StreamMode: 2, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	wrongOrder := tensor.NewBuilder([]int{5, 5}).Build()
	if err := tr.Absorb(wrongOrder); err == nil {
		t.Fatal("wrong order accepted")
	}
	shrink := tensor.NewBuilder([]int{5, 5, 2}).Build()
	if err := tr.Absorb(shrink); err == nil {
		t.Fatal("shrinking stream accepted")
	}
}

func TestIncrementalMatchesRefreshSemantics(t *testing.T) {
	// After absorbing everything, the maintained P_n must equal a fresh
	// MTTKRP over the full data with the final factors' predecessors —
	// spot-check instead via reconstruction quality on a longer stream.
	dims := []int{7, 6, 20}
	full := timeStream(dims, 3, 17)
	tr, err := Init(full.Prefix([]int{7, 6, 8}), Options{Rank: 3, StreamMode: 2, InitIters: 150, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	for step := 8; step < 20; step++ {
		if err := tr.Absorb(sliceBatch(t, full, 2, step, step+1)); err != nil {
			t.Fatal(err)
		}
	}
	loss := cp.LossAgainst(full, tr.Factors())
	if fit := 1 - loss/full.Norm(); fit < 0.90 {
		t.Fatalf("12 single-slice batches degraded fit to %v", fit)
	}
}

func TestDTDHandlesWhatOnlineCPCannot(t *testing.T) {
	// Head-to-head on a one-mode stream both can absorb, then a
	// multi-aspect step only DTD can.
	dims := []int{9, 8, 12}
	full := timeStream(dims, 2, 21)

	// Phase 1: one-mode growth 8 -> 12 time slices.
	tr, err := Init(full.Prefix([]int{9, 8, 8}), Options{Rank: 2, StreamMode: 2, InitIters: 120, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Absorb(sliceBatch(t, full, 2, 8, 12)); err != nil {
		t.Fatal(err)
	}
	ocpLoss := cp.LossAgainst(full, tr.Factors())

	st, _, err := dtd.Init(full.Prefix([]int{9, 8, 8}), dtd.Options{Rank: 2, MaxIters: 120, Tol: 1e-12, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err = dtd.Step(st, full, dtd.Options{Rank: 2, MaxIters: 120, Tol: 1e-12, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	dtdLoss := cp.LossAgainst(full, st.Factors)

	// Both track the one-mode stream respectably (OnlineCP's single
	// fold-in pass is cheaper but less refined than DTD's sweeps).
	norm := full.Norm()
	if fit := 1 - ocpLoss/norm; fit < 0.9 {
		t.Fatalf("OnlineCP one-mode fit %v", fit)
	}
	if fit := 1 - dtdLoss/norm; fit < 0.95 {
		t.Fatalf("DTD one-mode fit %v", fit)
	}

	// Phase 2: multi-aspect growth. OnlineCP must refuse; DTD absorbs.
	multiBatch := tensor.NewBuilder([]int{10, 8, 12})
	multiBatch.Append([]int{9, 0, 11}, 1)
	if err := tr.Absorb(multiBatch.Build()); err == nil {
		t.Fatal("OnlineCP absorbed a multi-aspect batch")
	}
	grown := timeStreamGrown(t, full, []int{11, 9, 13}, 27)
	if _, _, err := dtd.Step(st, grown, dtd.Options{Rank: 2, MaxIters: 30, Seed: 29}); err != nil {
		t.Fatalf("DTD failed on multi-aspect growth: %v", err)
	}
}

// timeStreamGrown embeds full into larger dims and adds low-rank data
// in the growth region so every mode grows.
func timeStreamGrown(t *testing.T, full *tensor.Tensor, dims []int, seed uint64) *tensor.Tensor {
	t.Helper()
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	buf := make([]int, full.Order())
	for e := 0; e < full.NNZ(); e++ {
		b.Append(full.Coord(e, buf), full.Val(e))
	}
	idx := make([]int, len(dims))
	for e := 0; e < 60; e++ {
		outside := false
		for m, d := range dims {
			idx[m] = src.Intn(d)
			if idx[m] >= full.Dims[m] {
				outside = true
			}
		}
		if !outside {
			idx[0] = full.Dims[0] + src.Intn(dims[0]-full.Dims[0])
		}
		b.Append(idx, src.Float64())
	}
	return b.Build()
}
