package dataset

import (
	"math"
	"sort"
	"testing"

	"dismastd/internal/partition"
)

func TestPresetPreservesProportions(t *testing.T) {
	for _, k := range Kinds {
		spec := Preset(k, 50000, 1)
		paperDims, _ := PaperRow(k)
		// Mode ratios follow Table III (up to the mode floor of 8 and
		// integer rounding), and the tensor has room to stay sparse.
		cells := 1.0
		for m := 0; m < 3; m++ {
			if spec.Dims[m] < 128 {
				t.Fatalf("%v mode %d: dim %d below floor", k, m, spec.Dims[m])
			}
			cells *= float64(spec.Dims[m])
		}
		if cells < 8*50000 {
			t.Fatalf("%v: only %v cells for 50000 entries", k, cells)
		}
		// The I/J ratio follows Table III whenever neither mode was
		// clamped by the floor (capacity inflation scales both alike).
		if spec.Dims[0] > 600 && spec.Dims[1] > 600 {
			wantRatio := paperDims[0] / paperDims[1]
			gotRatio := float64(spec.Dims[0]) / float64(spec.Dims[1])
			if math.Abs(gotRatio-wantRatio)/wantRatio > 0.05 {
				t.Fatalf("%v: I/J ratio %v, paper %v", k, gotRatio, wantRatio)
			}
		}
	}
}

func TestGenerateNNZCloseToTarget(t *testing.T) {
	for _, k := range Kinds {
		x := Preset(k, 20000, 2).Generate()
		if x.NNZ() < 17000 || x.NNZ() > 20000 {
			t.Fatalf("%v: nnz %d for target 20000", k, x.NNZ())
		}
		if x.Order() != 3 {
			t.Fatalf("%v: order %d", k, x.Order())
		}
	}
}

func TestRatingValues(t *testing.T) {
	x := Preset(Netflix, 5000, 3).Generate()
	for e := 0; e < x.NNZ(); e++ {
		v := x.Val(e)
		// Merged duplicates may exceed 5, but the bulk must be 1..5.
		if v < 1 {
			t.Fatalf("rating %v below 1", v)
		}
	}
	y := Preset(Synthetic, 5000, 3).Generate()
	for e := 0; e < y.NNZ(); e++ {
		if v := y.Val(e); v < 0 || v > 2 {
			t.Fatalf("synthetic value %v outside U(0,1] (plus rare merges)", v)
		}
	}
}

func TestSkewedVersusUniformSliceHistograms(t *testing.T) {
	// The real-data presets must produce skewed per-slice histograms
	// (Table IV's premise) while Synthetic stays near-uniform. Compare
	// the share of nnz captured by the busiest 1% of mode-0 slices.
	topShare := func(k Kind) float64 {
		x := Preset(k, 40000, 5).Generate()
		hist := x.SliceNNZ(0)
		sorted := append([]int64(nil), hist...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		top := len(sorted) / 100
		if top < 1 {
			top = 1
		}
		var sum, total int64
		for i, v := range sorted {
			total += v
			if i < top {
				sum += v
			}
		}
		return float64(sum) / float64(total)
	}
	clothing := topShare(Clothing)
	synthetic := topShare(Synthetic)
	if clothing < 3*synthetic {
		t.Fatalf("Clothing top-1%% share %.3f not clearly above Synthetic %.3f", clothing, synthetic)
	}
}

func TestSkewDrivesPartitionerGap(t *testing.T) {
	// End-to-end Table IV premise: on a skewed preset MTP balances
	// better than GTP; on Synthetic they are comparable.
	x := Preset(Book, 40000, 7).Generate()
	hist := x.SliceNNZ(0)
	g := partition.GTP(hist, 15).ImbalanceStdDev()
	m := partition.MTP(hist, 15).ImbalanceStdDev()
	if m >= g {
		t.Fatalf("Book: MTP imbalance %v not below GTP %v", m, g)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Preset(Clothing, 10000, 11).Generate()
	b := Preset(Clothing, 10000, 11).Generate()
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed produced different tensors")
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] || a.Coords[i*3] != b.Coords[i*3] {
			t.Fatal("same seed produced different entries")
		}
	}
	c := Preset(Clothing, 10000, 12).Generate()
	if a.NNZ() == c.NNZ() && a.Vals[0] == c.Vals[0] && a.Coords[0] == c.Coords[0] {
		t.Fatal("different seeds produced identical head")
	}
}

func TestDescribe(t *testing.T) {
	x := Preset(Synthetic, 3000, 13).Generate()
	st := Describe("Synthetic", x)
	if st.NNZ != x.NNZ() || len(st.Dims) != 3 || st.Name != "Synthetic" {
		t.Fatalf("stats %+v", st)
	}
}

func TestStreamSchedule(t *testing.T) {
	x := Preset(Netflix, 20000, 15).Generate()
	seq, err := Stream(x, PaperFractions)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 6 {
		t.Fatalf("stream has %d steps", seq.Len())
	}
	// Final snapshot is the whole tensor.
	last := seq.Snapshot(seq.Len() - 1)
	if last.NNZ() != x.NNZ() {
		t.Fatalf("final snapshot nnz %d != %d", last.NNZ(), x.NNZ())
	}
	// Snapshots grow monotonically and each step adds data.
	prev := seq.Snapshot(0)
	if prev.NNZ() == 0 {
		t.Fatal("first snapshot empty")
	}
	for i := 1; i < seq.Len(); i++ {
		cur := seq.Snapshot(i)
		if cur.NNZ() < prev.NNZ() {
			t.Fatalf("snapshot %d shrank", i)
		}
		prev = cur
	}
}

func TestStreamValidation(t *testing.T) {
	x := Preset(Synthetic, 2000, 17).Generate()
	for name, fracs := range map[string][]float64{
		"empty":           {},
		"zero":            {0, 1},
		"above one":       {0.5, 1.5},
		"decreasing":      {0.9, 0.8, 1},
		"not ending at 1": {0.5, 0.9},
	} {
		if _, err := Stream(x, fracs); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestPresetPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad kind": func() { Preset(Kind(99), 100, 1) },
		"bad nnz":  func() { Preset(Clothing, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkGenerateClothing(b *testing.B) {
	spec := Preset(Clothing, 100000, 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = spec.Generate()
	}
}

func TestCustomFourthOrderSpec(t *testing.T) {
	// Spec is order-generic even though the paper presets are 3rd order:
	// e.g. a ⟨user, product, location, time⟩ tensor.
	spec := Spec{
		Name: "custom4", Dims: []int{30, 25, 10, 12},
		Skew: []float64{1.0, 0.8, 0, 0.5},
		Seed: 7, NNZ: 3000, Rating: true,
	}
	x := spec.Generate()
	if x.Order() != 4 {
		t.Fatalf("order %d", x.Order())
	}
	if x.NNZ() < 2500 {
		t.Fatalf("nnz %d", x.NNZ())
	}
	// Skewed mode 0 concentrates more than uniform mode 2.
	share := func(mode int) float64 {
		hist := x.SliceNNZ(mode)
		sorted := append([]int64(nil), hist...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		var top, total int64
		for i, v := range sorted {
			total += v
			if i < len(sorted)/10+1 {
				top += v
			}
		}
		return float64(top) / float64(total)
	}
	if share(0) <= share(2) {
		t.Fatalf("mode 0 (skewed) share %.3f not above mode 2 (uniform) %.3f", share(0), share(2))
	}
}

func TestSpecValidation(t *testing.T) {
	bad := Spec{Name: "bad", Dims: []int{4, 4}, Skew: []float64{1}, NNZ: 10, Seed: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched skew accepted")
		}
	}()
	bad.Generate()
}
