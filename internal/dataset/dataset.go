// Package dataset synthesises the four evaluation workloads of
// Section V-A (Table III). The paper's real datasets (Amazon Clothing
// and Book reviews, the Netflix Prize ratings) are not redistributable,
// so this package generates tensors with the same *shape*: third-order
// reviewer-product-time ratings with the paper's mode-size ratios and
// the heavy Zipf skew of real review data, plus the uniformly random
// Synthetic tensor. Every property the experiments depend on — the
// skewed (or uniform) distribution of non-zeros across slices, the
// dims/nnz ratios, the streaming growth pattern — is preserved; see
// DESIGN.md ("Substitutions").
//
// Sizes are scaled by a target nnz: a preset keeps the paper's
// dims:nnz proportions, so e.g. a 200k-entry Clothing-like tensor has
// the same ~2.7 ratings per reviewer as the 3.2e7-entry original.
package dataset

import (
	"fmt"
	"math"

	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Kind identifies one of the paper's four evaluation datasets.
type Kind int

const (
	Clothing  Kind = iota // Amazon clothing reviews: reviewer x product x time
	Book                  // Amazon book reviews
	Netflix               // Netflix Prize: customer x movie x date
	Synthetic             // uniform random third-order tensor
)

// Kinds lists the four datasets in the paper's order.
var Kinds = []Kind{Clothing, Book, Netflix, Synthetic}

func (k Kind) String() string {
	switch k {
	case Clothing:
		return "Clothing"
	case Book:
		return "Book"
	case Netflix:
		return "Netflix"
	case Synthetic:
		return "Synthetic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// paperShape holds Table III's published statistics.
type paperShape struct {
	dims [3]float64
	nnz  float64
	// skew: per-mode Zipf exponents; 0 means uniform. Review data has
	// strongly skewed reviewers/customers and products, milder time
	// skew (activity bursts).
	skew   [3]float64
	rating bool // values are 1..5 star ratings rather than U(0,1]
}

var shapes = map[Kind]paperShape{
	Clothing:  {dims: [3]float64{1.2e7, 2.7e6, 7.0e3}, nnz: 3.2e7, skew: [3]float64{1.1, 1.0, 0.6}, rating: true},
	Book:      {dims: [3]float64{1.5e7, 2.9e6, 8.2e3}, nnz: 5.1e7, skew: [3]float64{1.1, 1.05, 0.6}, rating: true},
	Netflix:   {dims: [3]float64{4.8e5, 1.8e4, 2.2e3}, nnz: 1.0e8, skew: [3]float64{0.9, 0.9, 0.5}, rating: true},
	Synthetic: {dims: [3]float64{5.0e4, 5.0e4, 5.0e4}, nnz: 5.0e8, skew: [3]float64{0, 0, 0}, rating: false},
}

// Spec is a fully resolved generator configuration.
type Spec struct {
	Name   string
	Dims   []int
	NNZ    int       // target entry draws (merged duplicates may shrink it slightly)
	Skew   []float64 // per-mode Zipf exponent, 0 = uniform
	Rating bool      // 1..5 star values instead of U(0,1]
	Seed   uint64
}

// Preset scales one of the paper's datasets to approximately targetNNZ
// entries, preserving its dims:nnz proportions and skew profile.
func Preset(k Kind, targetNNZ int, seed uint64) Spec {
	s, ok := shapes[k]
	if !ok {
		panic(fmt.Sprintf("dataset: unknown kind %d", int(k)))
	}
	if targetNNZ <= 0 {
		panic(fmt.Sprintf("dataset: target nnz %d", targetNNZ))
	}
	f := float64(targetNNZ) / s.nnz
	// Mode floors keep reduced-scale tensors partitionable: every mode
	// must have clearly more slices than the partition counts the
	// experiments sweep (up to 38). The uniform Synthetic tensor gets a
	// higher floor (456 = 12×38 slices) so that partition-count
	// granularity does not masquerade as load imbalance — the paper's
	// Synthetic has 5e4 slices per mode, where that effect vanishes.
	floor := 128
	if s.skew == [3]float64{} {
		floor = 456
	}
	dims := make([]int, 3)
	cells := 1.0
	for m := range dims {
		d := int(math.Ceil(s.dims[m] * f))
		if d < floor {
			d = floor
		}
		dims[m] = d
		cells *= float64(d)
	}
	// At tiny scales the proportional dims can hold fewer cells than
	// the target nnz; inflate all modes uniformly so the tensor stays
	// sparse (≥ 8 cells per entry), preserving the mode ratios.
	if minCells := 8 * float64(targetNNZ); cells < minCells {
		c := math.Pow(minCells/cells, 1.0/3.0)
		for m := range dims {
			dims[m] = int(math.Ceil(float64(dims[m]) * c))
		}
	}
	return Spec{
		Name:   k.String(),
		Dims:   dims,
		NNZ:    targetNNZ,
		Skew:   []float64{s.skew[0], s.skew[1], s.skew[2]},
		Rating: s.rating,
		Seed:   seed,
	}
}

// Generate draws the tensor: each entry's mode coordinates come from
// independent Zipf (or uniform) samplers, routed through a per-mode
// permutation so popular indices are scattered across the index range
// as in real data rather than clustered at zero.
func (s Spec) Generate() *tensor.Tensor {
	if len(s.Dims) == 0 || len(s.Skew) != len(s.Dims) {
		panic(fmt.Sprintf("dataset: spec %q has %d dims, %d skews", s.Name, len(s.Dims), len(s.Skew)))
	}
	src := xrand.New(s.Seed)
	n := len(s.Dims)
	samplers := make([]func() int, n)
	for m, d := range s.Dims {
		if s.Skew[m] <= 0 {
			d := d
			samplers[m] = func() int { return src.Intn(d) }
			continue
		}
		z := xrand.NewZipf(src.Split(), s.Skew[m], d)
		perm := src.Perm(d)
		samplers[m] = func() int { return perm[z.Draw()] }
	}
	b := tensor.NewBuilder(s.Dims)
	idx := make([]int, n)
	seen := make(map[string]struct{}, s.NNZ)
	key := make([]byte, 4*n)
	for e := 0; e < s.NNZ; e++ {
		// Redraw duplicate coordinates (bounded) so values stay in
		// their nominal range instead of merging; real review data has
		// one rating per (reviewer, product, time) cell.
		placed := false
		for try := 0; try < 64; try++ {
			for m := range idx {
				idx[m] = samplers[m]()
			}
			for m, v := range idx {
				key[4*m] = byte(v)
				key[4*m+1] = byte(v >> 8)
				key[4*m+2] = byte(v >> 16)
				key[4*m+3] = byte(v >> 24)
			}
			if _, dup := seen[string(key)]; dup {
				continue
			}
			seen[string(key)] = struct{}{}
			placed = true
			break
		}
		if !placed {
			continue // Zipf head saturated; accept slightly fewer entries
		}
		v := src.Float64()
		if s.Rating {
			v = float64(1 + src.Intn(5))
		}
		b.Append(idx, v)
	}
	return b.Build()
}

// Stats reports the Table III statistics of a generated tensor.
type Stats struct {
	Name string
	Dims []int
	NNZ  int
}

// Describe returns the Table III row for t.
func Describe(name string, t *tensor.Tensor) Stats {
	return Stats{Name: name, Dims: append([]int(nil), t.Dims...), NNZ: t.NNZ()}
}

// PaperRow returns the original Table III statistics for comparison in
// EXPERIMENTS.md: dims I, J, K and nnz.
func PaperRow(k Kind) (dims [3]float64, nnz float64) {
	s := shapes[k]
	return s.dims, s.nnz
}

// Stream builds the paper's Fig. 5 growth pattern: snapshots whose mode
// sizes are the given fractions of the full dims (75%..100% by 5% in
// the paper). Fractions must be in (0, 1], non-decreasing, ending at 1.
func Stream(t *tensor.Tensor, fracs []float64) (*tensor.Sequence, error) {
	if len(fracs) == 0 {
		return nil, fmt.Errorf("dataset: no stream fractions")
	}
	steps := make([][]int, len(fracs))
	prev := 0.0
	for i, f := range fracs {
		if f <= 0 || f > 1 {
			return nil, fmt.Errorf("dataset: fraction %v out of (0, 1]", f)
		}
		if f < prev {
			return nil, fmt.Errorf("dataset: fractions must be non-decreasing, got %v after %v", f, prev)
		}
		prev = f
		dims := make([]int, t.Order())
		for m, d := range t.Dims {
			dims[m] = int(math.Ceil(float64(d) * f))
			if dims[m] > d {
				dims[m] = d
			}
		}
		steps[i] = dims
	}
	if fracs[len(fracs)-1] != 1 {
		return nil, fmt.Errorf("dataset: final fraction must be 1, got %v", fracs[len(fracs)-1])
	}
	return tensor.NewSequence(t, steps)
}

// PaperFractions is the Fig. 5 growth schedule: 75% to 100% by 5%.
var PaperFractions = []float64{0.75, 0.80, 0.85, 0.90, 0.95, 1.00}
