// Package par is the shared-memory parallel runtime the numeric stack
// runs on: a persistent goroutine pool sized by a Threads config, a
// ParallelFor over statically chunked index ranges, and an ordered
// fixed-grid reduction whose floating-point combine order is
// deterministic and independent of scheduling.
//
// Design rules (see DESIGN.md "Concurrency model"):
//
//   - Chunking is static. A region is split into at most Threads()
//     contiguous chunks decided before any work starts; chunk i always
//     runs as thread id i. Nothing about the split depends on timing,
//     so the set of (chunk, tid) pairs — and therefore every
//     per-thread scratch buffer and every floating-point operation
//     order — is a pure function of (n, threads).
//   - Deterministic reduction. Kernels that must reproduce the
//     sequential seed bit-for-bit partition their OUTPUT elements
//     (rows, matrix entries) across chunks and keep the per-element
//     accumulation order unchanged; they never split one accumulator
//     into per-chunk partials. Scalar reductions that are free to
//     define their own bit pattern use ReduceFloat64, which evaluates
//     a fixed chunk grid and combines the partials in ascending chunk
//     order — the result is identical for every thread count.
//   - The steady state allocates nothing. Work is described by the
//     Body interface rather than closures, dispatch passes value
//     structs over pre-allocated 1-buffered channels, and the pool
//     owns no per-call state. Callers keep their Body implementations
//     alive across calls (e.g. as fields of an iteration struct).
//
// A nil *Pool is valid and means "sequential": every method runs the
// whole range inline on the caller with tid 0. New(threads<=1) returns
// nil, so single-threaded configurations pay no dispatch cost and
// execute exactly the pre-refactor code path.
//
// A Pool is owned by one driving goroutine: For/ForChunks/ReduceFloat64
// must not be called concurrently with each other. (Distinct pools are
// independent; each cluster worker owns its own.)
package par

import (
	"sync"
	"sync/atomic"
)

// Body is one parallel region's work. RunChunk processes indices
// [lo, hi) as thread tid; tid is in [0, Threads()) and is stable for
// the chunk, so it can index per-thread scratch (one workspace per
// thread). Implementations must only touch output elements owned by
// their chunk.
type Body interface {
	RunChunk(lo, hi, tid int)
}

// Func adapts an ordinary function to Body. The conversion allocates,
// so hot paths that must stay allocation-free implement Body on a
// persistent struct instead.
type Func func(lo, hi, tid int)

// RunChunk implements Body.
func (f Func) RunChunk(lo, hi, tid int) { f(lo, hi, tid) }

// call is one dispatched chunk. It is sent by value, so dispatch does
// not allocate.
type call struct {
	body   Body
	lo, hi int
	tid    int
}

// Pool is a persistent pool of threads-1 worker goroutines plus the
// calling goroutine, which always executes chunk 0. Workers live until
// Close; each owns a 1-buffered lane channel so dispatching a region
// never blocks on scheduling.
type Pool struct {
	threads    int
	lanes      []chan call
	wg         sync.WaitGroup
	dispatched atomic.Int64

	// reduce scratch (see ReduceFloat64).
	slots   []float64
	redBody ReduceBody
	redN    int
	redC    int
}

// New returns a pool that runs regions on `threads` OS-scheduled
// goroutines (the caller plus threads-1 persistent workers). threads
// <= 1 returns nil, the valid sequential pool.
func New(threads int) *Pool {
	if threads <= 1 {
		return nil
	}
	p := &Pool{threads: threads, lanes: make([]chan call, threads-1)}
	for i := range p.lanes {
		ch := make(chan call, 1)
		p.lanes[i] = ch
		go p.work(ch)
	}
	return p
}

func (p *Pool) work(ch <-chan call) {
	for c := range ch {
		c.body.RunChunk(c.lo, c.hi, c.tid)
		p.wg.Done()
	}
}

// Threads reports the number of concurrent chunks a region is split
// into. It is 1 for a nil (sequential) pool.
func (p *Pool) Threads() int {
	if p == nil {
		return 1
	}
	return p.threads
}

// Dispatched reports the cumulative number of chunks handed to pool
// workers (chunk 0, run by the caller, is not counted). It is safe to
// read concurrently and feeds the pool queue-depth metrics.
func (p *Pool) Dispatched() int64 {
	if p == nil {
		return 0
	}
	return p.dispatched.Load()
}

// Close shuts the worker goroutines down. The pool must be idle; a nil
// pool is a no-op. Close must be called exactly once on a non-nil pool.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	for _, ch := range p.lanes {
		close(ch)
	}
}

// For runs body over [0, n) split into Threads() contiguous chunks of
// near-equal length (chunk i is [i*n/t, (i+1)*n/t)). Chunk i runs as
// tid i; the caller executes chunk 0 and For returns when every chunk
// has finished. A nil pool, t==1, or n<=1 runs the whole range inline.
func (p *Pool) For(n int, body Body) {
	if n <= 0 {
		return
	}
	t := p.Threads()
	if t == 1 || n == 1 {
		body.RunChunk(0, n, 0)
		return
	}
	sent := int64(0)
	for i := t - 1; i >= 1; i-- {
		lo, hi := i*n/t, (i+1)*n/t
		if lo == hi {
			continue
		}
		p.wg.Add(1)
		sent++
		p.lanes[i-1] <- call{body: body, lo: lo, hi: hi, tid: i}
	}
	if hi := n / t; hi > 0 {
		body.RunChunk(0, hi, 0)
	}
	p.dispatched.Add(sent)
	p.wg.Wait()
}

// ForChunks runs body over a pre-computed chunk grid: starts holds
// len(starts)-1 contiguous chunk boundaries (chunk i is
// [starts[i], starts[i+1])), as produced by nnz-balanced chunking of
// row-grouped views. Chunk i runs as tid i, so len(starts)-1 must not
// exceed Threads(); the caller executes chunk 0. Empty chunks are
// skipped. A nil pool runs [starts[0], starts[last]) inline as one
// chunk, which for contiguous grids is the sequential kernel.
func (p *Pool) ForChunks(starts []int32, body Body) {
	c := len(starts) - 1
	if c <= 0 || int(starts[c]) == int(starts[0]) {
		return
	}
	t := p.Threads()
	if t == 1 || c == 1 {
		body.RunChunk(int(starts[0]), int(starts[c]), 0)
		return
	}
	if c > t {
		panic("par: more chunks than pool threads")
	}
	sent := int64(0)
	for i := c - 1; i >= 1; i-- {
		lo, hi := int(starts[i]), int(starts[i+1])
		if lo == hi {
			continue
		}
		p.wg.Add(1)
		sent++
		p.lanes[i-1] <- call{body: body, lo: lo, hi: hi, tid: i}
	}
	if lo, hi := int(starts[0]), int(starts[1]); lo < hi {
		body.RunChunk(lo, hi, 0)
	}
	p.dispatched.Add(sent)
	p.wg.Wait()
}

// ReduceBody is the per-chunk evaluator of an ordered reduction.
type ReduceBody interface {
	// ReduceChunk returns the partial sum over indices [lo, hi); tid
	// may index per-thread scratch.
	ReduceChunk(lo, hi, tid int) float64
}

// reduceGrid is the fixed chunk count of ReduceFloat64. The grid —
// and therefore which indices each partial covers — depends only on
// n, never on the pool's thread count, so the combined result is
// bitwise identical for every Threads() value.
const reduceGrid = 64

// ReduceFloat64 sums body's partials over [0, n) with a deterministic
// reduction: the range is split into a fixed grid of min(reduceGrid, n)
// chunks, each partial is written to its grid slot, and the slots are
// combined sequentially in ascending order. Scheduling decides only
// *when* a slot is computed, never what it contains or when it is
// added, so the result is independent of the thread count.
func (p *Pool) ReduceFloat64(n int, body ReduceBody) float64 {
	if n <= 0 {
		return 0
	}
	c := reduceGrid
	if c > n {
		c = n
	}
	var slots []float64
	if p == nil {
		slots = make([]float64, c)
		for i := 0; i < c; i++ {
			slots[i] = body.ReduceChunk(i*n/c, (i+1)*n/c, 0)
		}
	} else {
		if cap(p.slots) < c {
			p.slots = make([]float64, c)
		}
		slots = p.slots[:c]
		p.redBody, p.redN, p.redC = body, n, c
		p.For(c, (*reduceRunner)(p))
		p.redBody = nil
	}
	sum := 0.0
	for _, s := range slots {
		sum += s
	}
	return sum
}

// reduceRunner adapts the reduce grid to For: each For-chunk evaluates
// a contiguous run of grid slots with its own tid.
type reduceRunner Pool

// RunChunk implements Body over grid-slot indices.
func (r *reduceRunner) RunChunk(lo, hi, tid int) {
	p := (*Pool)(r)
	for i := lo; i < hi; i++ {
		p.slots[i] = p.redBody.ReduceChunk(i*p.redN/p.redC, (i+1)*p.redN/p.redC, tid)
	}
}
