package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// markBody records which index ran in which chunk/tid; writes are
// racy-free because chunks are disjoint.
type markBody struct {
	tids  []int32
	count atomic.Int64
}

func (b *markBody) RunChunk(lo, hi, tid int) {
	for i := lo; i < hi; i++ {
		b.tids[i] = int32(tid + 1)
	}
	b.count.Add(1)
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 3, 8} {
		p := New(threads)
		for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 100, 1001} {
			b := &markBody{tids: make([]int32, n)}
			p.For(n, b)
			for i, tid := range b.tids {
				if tid == 0 {
					t.Fatalf("threads=%d n=%d: index %d never ran", threads, n, i)
				}
			}
			if int(b.count.Load()) > threads {
				t.Fatalf("threads=%d n=%d: %d chunks ran, want <= %d", threads, n, b.count.Load(), threads)
			}
			// Chunks are contiguous and tid-ordered: tids must be
			// non-decreasing across the range.
			for i := 1; i < n; i++ {
				if b.tids[i] < b.tids[i-1] {
					t.Fatalf("threads=%d n=%d: tid order broken at %d: %v", threads, n, i, b.tids[:i+1])
				}
			}
		}
		p.Close()
	}
}

func TestForChunksRespectsGrid(t *testing.T) {
	p := New(4)
	defer p.Close()
	b := &markBody{tids: make([]int32, 10)}
	// Unbalanced grid: chunk sizes 1, 0, 6, 3.
	p.ForChunks([]int32{0, 1, 1, 7, 10}, b)
	want := []int32{1, 3, 3, 3, 3, 3, 3, 4, 4, 4}
	for i := range want {
		if b.tids[i] != want[i] {
			t.Fatalf("index %d ran as tid %d, want %d (%v)", i, b.tids[i]-1, want[i]-1, b.tids)
		}
	}
	if got := p.Dispatched(); got != 2 {
		t.Fatalf("Dispatched = %d, want 2 (chunks 2 and 3)", got)
	}
}

func TestNilPoolIsSequential(t *testing.T) {
	var p *Pool
	if p.Threads() != 1 {
		t.Fatalf("nil pool Threads = %d", p.Threads())
	}
	b := &markBody{tids: make([]int32, 5)}
	p.For(5, b)
	for i, tid := range b.tids {
		if tid != 1 {
			t.Fatalf("index %d ran as tid %d, want 0", i, tid-1)
		}
	}
	if b.count.Load() != 1 {
		t.Fatalf("nil pool split the range into %d chunks", b.count.Load())
	}
	p.Close() // no-op
}

// sumBody sums a slice range; used to check the ordered reduction.
type sumBody struct{ xs []float64 }

func (b *sumBody) ReduceChunk(lo, hi, tid int) float64 {
	s := 0.0
	for _, v := range b.xs[lo:hi] {
		s += v
	}
	return s
}

func TestReduceFloat64DeterministicAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 63, 64, 65, 1000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * float64(1+i%13)
		}
		b := &sumBody{xs: xs}
		var want float64
		for ti, threads := range []int{1, 2, 3, 8} {
			p := New(threads)
			got := p.ReduceFloat64(n, b)
			p.Close()
			if ti == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("n=%d threads=%d: sum %x differs from threads=1 sum %x", n, threads, got, want)
			}
		}
	}
}

// TestForSteadyStateAllocFree pins the runtime's zero-alloc dispatch:
// once the pool and the Body are warm, a parallel region allocates
// nothing — chunks travel as value structs over pre-allocated lanes.
func TestForSteadyStateAllocFree(t *testing.T) {
	p := New(4)
	defer p.Close()
	b := &markBody{tids: make([]int32, 4096)}
	red := &sumBody{xs: make([]float64, 4096)}
	p.For(len(b.tids), b)
	p.ReduceFloat64(len(red.xs), red)
	if allocs := testing.AllocsPerRun(20, func() {
		p.For(len(b.tids), b)
	}); allocs != 0 {
		t.Fatalf("steady-state For allocates %v times, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		p.ReduceFloat64(len(red.xs), red)
	}); allocs != 0 {
		t.Fatalf("steady-state ReduceFloat64 allocates %v times, want 0", allocs)
	}
}

// TestForManyRegions stresses dispatch/join across many back-to-back
// regions so `make race` exercises the lane handoff protocol.
func TestForManyRegions(t *testing.T) {
	p := New(8)
	defer p.Close()
	xs := make([]float64, 10000)
	b := Func(func(lo, hi, tid int) {
		for i := lo; i < hi; i++ {
			xs[i]++
		}
	})
	const rounds = 500
	for r := 0; r < rounds; r++ {
		p.For(len(xs), b)
	}
	for i, v := range xs {
		if v != rounds {
			t.Fatalf("xs[%d] = %v after %d rounds", i, v, rounds)
		}
	}
}
