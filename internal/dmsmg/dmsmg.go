// Package dmsmg implements the experimental baseline of Section V: the
// medium-grained distributed static tensor decomposition of Smith &
// Karypis (DMS-MG), extended to the paper's framework with GTP or MTP
// partitioning (the paper's DMS-MG-GTP and DMS-MG-MTP variants).
//
// Being a static method, it decomposes every streaming snapshot from
// scratch: each step costs Θ(nnz(X)·R) per iteration, against
// DisMASTD's Θ(nnz(X \ X̃)·R) — the gap Fig. 5 measures. The
// distributed machinery (per-mode 1-D entry distribution, Gram
// all-reduce, factor-row exchange) is shared with internal/core via
// internal/dplan, so the two methods differ only in the algorithm, not
// the runtime.
package dmsmg

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"dismastd/internal/cluster"
	"dismastd/internal/dplan"
	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/par"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Options configures a distributed static decomposition.
type Options struct {
	Rank     int     // R (required, > 0)
	MaxIters int     // ALS sweeps; default 10
	Tol      float64 // relative fit-change stop threshold; default 1e-6
	Seed     uint64  // factor initialisation seed; default 1

	Workers int              // cluster size M (required, > 0)
	Parts   int              // partitions per mode; default Workers
	Method  partition.Method // GTP or MTP

	// Threads sizes each worker's shared-memory pool (see internal/par).
	// 0 or 1 means sequential; results are bitwise identical at every
	// value.
	Threads int

	// Layout selects the kernel representation (see internal/layout):
	// COO (default) or Compiled. Factors are bitwise identical under
	// either.
	Layout layout.Kind
}

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if opts.Rank <= 0 {
		return opts, fmt.Errorf("dmsmg: rank must be positive, got %d", opts.Rank)
	}
	if opts.Workers <= 0 {
		return opts, fmt.Errorf("dmsmg: workers must be positive, got %d", opts.Workers)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 10
	}
	if opts.Tol < 0 {
		return opts, fmt.Errorf("dmsmg: negative tolerance %v", opts.Tol)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-6
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Parts <= 0 {
		opts.Parts = opts.Workers
	}
	if opts.Threads < 0 {
		return opts, fmt.Errorf("dmsmg: negative thread count %d", opts.Threads)
	}
	if opts.Threads == 0 {
		opts.Threads = 1
	}
	return opts, nil
}

// Stats reports one distributed static decomposition.
type Stats struct {
	Iters      int
	Loss       float64 // final ‖X − [[A]]‖_F
	Fit        float64 // 1 − Loss/‖X‖_F
	LossTrace  []float64
	NNZ        int // entries processed per iteration — the whole tensor
	Imbalance  []float64
	Cluster    *cluster.RunStats
	SetupBytes int64
}

// ErrEmptyTensor reports decomposition of a tensor without entries.
var ErrEmptyTensor = errors.New("dmsmg: tensor has no non-zero entries")

// ErrNoResult is returned when a run completes without rank 0
// assembling factors (defensive).
var ErrNoResult = errors.New("dmsmg: run completed without a result")

// Decompose runs the distributed static CP-ALS over x from scratch and
// returns the factors.
func Decompose(x *tensor.Tensor, o Options) ([]*mat.Dense, *Stats, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if x.NNZ() == 0 {
		return nil, nil, ErrEmptyTensor
	}
	plan := dplan.Build(x, opts.Workers, opts.Parts, opts.Method)
	src := xrand.New(opts.Seed)
	init := make([]*mat.Dense, x.Order())
	for m, d := range x.Dims {
		init[m] = mat.RandomUniform(d, opts.Rank, src)
	}
	job := &job{opts: opts, plan: plan, init: init, normSq: x.NormSq(), algo: make([]cluster.Metrics, opts.Workers)}

	cl := cluster.NewLocal(opts.Workers)
	runStats, err := cl.Run(job.runWorker)
	if err != nil {
		return nil, nil, err
	}
	if job.result == nil {
		return nil, nil, ErrNoResult
	}
	job.mu.Lock()
	for i := range runStats.Ranks {
		if i < len(job.algo) {
			runStats.Ranks[i].Metrics = job.algo[i]
		}
	}
	job.mu.Unlock()
	stats := &Stats{
		Iters:      job.iters,
		Loss:       job.finalLoss,
		Fit:        1 - job.finalLoss/math.Sqrt(job.normSq),
		LossTrace:  job.lossTrace,
		NNZ:        x.NNZ(),
		Imbalance:  plan.Imbalance(),
		Cluster:    runStats,
		SetupBytes: plan.SetupBytes(opts.Rank),
	}
	return job.result, stats, nil
}

type job struct {
	opts   Options
	plan   *dplan.Plan
	init   []*mat.Dense
	normSq float64

	mu        sync.Mutex
	result    []*mat.Dense
	iters     int
	finalLoss float64
	lossTrace []float64
	algo      []cluster.Metrics // per-rank traffic before result collection
}

func (j *job) runWorker(w *cluster.Worker) error {
	x := j.plan.Tensor
	n := x.Order()
	r := j.opts.Rank

	// Everything the sweep loop needs is allocated here, once; the
	// steady-state iteration allocates only inside the transport
	// collectives. The pool and its per-thread workspaces live for the
	// whole run; with Threads <= 1 the pool is nil and every kernel
	// runs inline.
	pool := par.New(j.opts.Threads)
	defer pool.Close()
	wss := mat.NewWorkspaceSet(pool.Threads())
	pk := mat.NewParKernels(pool, wss)
	pacc := mttkrp.NewParAccumulator(pool, wss, nil)
	kernels := make([]mttkrp.Kernel, n)
	for m := 0; m < n; m++ {
		kernels[m] = mttkrp.NewKernelOf(x, m, j.plan.EntryLists[w.Rank()][m], j.opts.Layout)
	}
	gt := &gramRowsTask{j: j, w: w}
	ws := mat.NewWorkspace()
	full := make([]*mat.Dense, n)
	for m := range full {
		full[m] = j.init[m].Clone()
	}
	grams := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		grams[m] = mat.New(r, r)
	}
	gp := mat.New(r, r) // local Gram partial
	for m := 0; m < n; m++ {
		if err := j.reduceGram(w, pool, gt, m, full[m], grams[m], gp); err != nil {
			return err
		}
	}

	norm := math.Sqrt(j.normSq)
	mbuf := make([]*mat.Dense, n)
	for m := range mbuf {
		mbuf[m] = mat.New(x.Dims[m], r)
	}
	denom := mat.New(r, r)
	hall := mat.New(r, r)
	exch := dplan.NewExchanger(w, j.plan)
	var lastM *mat.Dense
	prevFit := math.Inf(-1)
	trace := make([]float64, 0, j.opts.MaxIters)
	iters := 0
	for sweep := 0; sweep < j.opts.MaxIters; sweep++ {
		for m := 0; m < n; m++ {
			M := mbuf[m]
			M.Zero()
			j.localMTTKRP(w, pacc, kernels[m], M, full)

			hadamardExceptInto(denom, grams, m)
			j.updateOwnedRows(w, pk, m, full[m], M, denom, ws)

			if err := j.reduceGram(w, pool, gt, m, full[m], grams[m], gp); err != nil {
				return err
			}
			if err := exch.Exchange(m, full[m], false); err != nil {
				return err
			}
			lastM = M
		}

		var localInner float64
		for _, s := range j.plan.OwnedSlices[n-1][w.Rank()] {
			mrow := lastM.Row(int(s))
			arow := full[n-1].Row(int(s))
			for c := range mrow {
				localInner += mrow[c] * arow[c]
			}
		}
		inner, err := w.ReduceScalarSum(localInner)
		if err != nil {
			return err
		}
		mat.HadamardAllInto(hall, grams...)
		modelSq := mat.SumAll(hall)
		lossSq := j.normSq - 2*inner + modelSq
		if lossSq < 0 {
			lossSq = 0
		}
		loss := math.Sqrt(lossSq)
		fit := 1 - loss/norm
		iters = sweep + 1
		trace = append(trace, loss)
		stop := math.Abs(fit-prevFit) < j.opts.Tol
		prevFit = fit
		if stop {
			break
		}
	}

	// Exclude the one-time result gather from per-iteration traffic
	// (covered by the Theorem 4 setup/teardown term).
	j.mu.Lock()
	j.algo[w.Rank()] = w.MetricsSnapshot()
	j.mu.Unlock()

	if err := j.gatherResult(w, full); err != nil {
		return err
	}
	if w.Rank() == 0 {
		j.mu.Lock()
		j.iters = iters
		j.lossTrace = trace
		j.finalLoss = trace[len(trace)-1]
		j.mu.Unlock()
	}
	return nil
}

// localMTTKRP accumulates this worker's entry subset into M via the
// row-grouped parallel kernel. The kernel groups the rank's entry list
// by output row, so chunks never share a destination row and the
// result is bitwise identical to the flat scatter at every thread
// count.
func (j *job) localMTTKRP(w *cluster.Worker, pacc *mttkrp.ParAccumulator, k mttkrp.Kernel, M *mat.Dense, full []*mat.Dense) {
	x := j.plan.Tensor
	pacc.Accumulate(M, k, full, "")
	w.AddWork(float64(k.NNZ()) * float64(x.Order()) * float64(M.Cols))
}

func (j *job) updateOwnedRows(w *cluster.Worker, pk *mat.ParKernels, mode int, factor, M, denom *mat.Dense, ws *mat.Workspace) {
	r := factor.Cols
	owned := j.plan.OwnedSlices[mode][w.Rank()]
	if len(owned) == 0 {
		return
	}
	mark := ws.Mark()
	num := ws.Take(len(owned), r)
	for i, s := range owned {
		copy(num.Row(i), M.Row(int(s)))
	}
	pk.SolveRightRidgeInto(num, num, denom)
	for i, s := range owned {
		copy(factor.Row(int(s)), num.Row(i))
	}
	ws.Release(mark)
	// One R² solve per row plus the replicated R³ factorisation.
	w.AddWork(float64(len(owned))*float64(r)*float64(r) + float64(r*r*r))
}

// reduceGram accumulates this worker's Gram partial over its owned rows
// into the scratch matrix g, all-reduces it, and refreshes gram in
// place with the cluster-wide sum. The accumulation is partitioned over
// the partial's output rows; every chunk scans the owned rows in the
// same order, so each output entry sees the sequential accumulation
// order and the partial is bitwise thread-count independent.
func (j *job) reduceGram(w *cluster.Worker, pool *par.Pool, gt *gramRowsTask, mode int, factor, gram, g *mat.Dense) error {
	r := factor.Cols
	gt.mode, gt.factor, gt.g = mode, factor, g
	pool.For(r, gt)
	gt.factor, gt.g = nil, nil
	owned := j.plan.OwnedSlices[mode][w.Rank()]
	w.AddWork(float64(len(owned)) * float64(r) * float64(r))
	copy(gram.Data, g.Data)
	return w.AllReduceSumInPlace(gram.Data)
}

// gramRowsTask is the par.Body for reduceGram: rows [lo, hi) of the
// local Gram partial, zeroed then accumulated over the rank's owned
// factor rows in plan order.
type gramRowsTask struct {
	j      *job
	w      *cluster.Worker
	mode   int
	factor *mat.Dense
	g      *mat.Dense
}

func (t *gramRowsTask) RunChunk(lo, hi, tid int) {
	owned := t.j.plan.OwnedSlices[t.mode][t.w.Rank()]
	for i := lo; i < hi; i++ {
		row := t.g.Row(i)
		for c := range row {
			row[c] = 0
		}
	}
	for _, s := range owned {
		row := t.factor.Row(int(s))
		for i := lo; i < hi; i++ {
			av := row[i]
			if av == 0 {
				continue
			}
			dst := t.g.Row(i)
			for c, bv := range row {
				dst[c] += av * bv
			}
		}
	}
}

func (j *job) gatherResult(w *cluster.Worker, full []*mat.Dense) error {
	n := len(full)
	r := j.opts.Rank
	var result []*mat.Dense
	if w.Rank() == 0 {
		result = make([]*mat.Dense, n)
	}
	maxOwned := 0
	for m := 0; m < n; m++ {
		if len(j.plan.OwnedSlices[m][w.Rank()]) > maxOwned {
			maxOwned = len(j.plan.OwnedSlices[m][w.Rank()])
		}
	}
	buf := make([]float64, 0, maxOwned*r)
	for m := 0; m < n; m++ {
		owned := j.plan.OwnedSlices[m][w.Rank()]
		buf = buf[:0]
		for _, s := range owned {
			buf = append(buf, full[m].Row(int(s))...)
		}
		parts, err := w.GatherBytes(0, cluster.EncodeFloat64s(buf))
		if err != nil {
			return err
		}
		if w.Rank() != 0 {
			continue
		}
		out := mat.New(full[m].Rows, r)
		for rank, payload := range parts {
			vals, err := cluster.DecodeFloat64s(payload)
			if err != nil {
				return err
			}
			rows := j.plan.OwnedSlices[m][rank]
			if len(vals) != len(rows)*r {
				return fmt.Errorf("dmsmg: gather mode %d rank %d: %d values for %d rows", m, rank, len(vals), len(rows))
			}
			for i, s := range rows {
				copy(out.Row(int(s)), vals[i*r:(i+1)*r])
			}
		}
		result[m] = out
	}
	if w.Rank() == 0 {
		j.mu.Lock()
		j.result = result
		j.mu.Unlock()
	}
	return nil
}

// hadamardExceptInto stores ∗_{k≠mode} grams[k] into dst, or the
// identity when there are no other modes. dst must not be one of the
// grams.
func hadamardExceptInto(dst *mat.Dense, grams []*mat.Dense, mode int) {
	first := true
	for k, g := range grams {
		if k == mode {
			continue
		}
		if first {
			dst.CopyFrom(g)
			first = false
		} else {
			dst.Hadamard(dst, g)
		}
	}
	if first {
		dst.SetIdentity()
	}
}
