package dmsmg

import (
	"math"
	"testing"

	"dismastd/internal/cp"
	"dismastd/internal/mat"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

func sparseRandom(dims []int, nnz int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.Float64()+0.5)
	}
	return b.Build()
}

func relDiff(a, b []*mat.Dense) float64 {
	var maxDiff, maxMag float64
	for m := range a {
		if d := mat.MaxAbsDiff(a[m], b[m]); d > maxDiff {
			maxDiff = d
		}
		for _, v := range a[m].Data {
			if av := math.Abs(v); av > maxMag {
				maxMag = av
			}
		}
	}
	return maxDiff / math.Max(maxMag, 1e-12)
}

func TestMatchesCentralizedCP(t *testing.T) {
	x := sparseRandom([]int{20, 18, 15}, 1000, 1)
	// Same init as Decompose builds internally: uniform factors drawn
	// mode by mode from the seed.
	src := xrand.New(7)
	init := make([]*mat.Dense, 3)
	for m, d := range x.Dims {
		init[m] = mat.RandomUniform(d, 4, src)
	}
	want, err := cp.DecomposeFrom(x, init, cp.Options{Rank: 4, MaxIters: 6, Tol: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []partition.Method{partition.GTPMethod, partition.MTPMethod} {
		for _, workers := range []int{1, 3} {
			got, stats, err := Decompose(x, Options{Rank: 4, MaxIters: 6, Tol: 0, Seed: 7, Workers: workers, Method: method})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", method, workers, err)
			}
			if d := relDiff(got, want.Factors); d > 1e-8 {
				t.Fatalf("%v workers=%d: factors differ from CP by %v", method, workers, d)
			}
			if math.Abs(stats.Loss-want.Loss) > 1e-8*(1+want.Loss) {
				t.Fatalf("%v workers=%d: loss %v vs CP %v", method, workers, stats.Loss, want.Loss)
			}
			if stats.Iters != want.Iters {
				t.Fatalf("%v workers=%d: %d iters vs CP %d", method, workers, stats.Iters, want.Iters)
			}
		}
	}
}

func TestFitImprovesOnLowRankData(t *testing.T) {
	// Build a fully observed rank-2 tensor: every cell holds the
	// Kruskal model value, so a rank-3 fit should be near-perfect.
	src := xrand.New(3)
	dims := []int{15, 12, 10}
	factors := []*mat.Dense{
		mat.RandomUniform(dims[0], 2, src),
		mat.RandomUniform(dims[1], 2, src),
		mat.RandomUniform(dims[2], 2, src),
	}
	b := tensor.NewBuilder(dims)
	idx := make([]int, 3)
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			for k := 0; k < dims[2]; k++ {
				idx[0], idx[1], idx[2] = i, j, k
				b.Append(idx, cp.Reconstruct(factors, idx))
			}
		}
	}
	x := b.Build()
	_, stats, err := Decompose(x, Options{Rank: 3, MaxIters: 60, Tol: 1e-10, Workers: 3, Method: partition.MTPMethod, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fit < 0.95 {
		t.Fatalf("fit %v on rank-2 data", stats.Fit)
	}
}

func TestWorkScalesWithNNZ(t *testing.T) {
	// The baseline's per-iteration work tracks the full tensor size —
	// the property that makes it lose to DisMASTD in Fig. 5.
	dims := []int{40, 40, 40}
	small := sparseRandom(dims, 2000, 9)
	big := sparseRandom(dims, 8000, 11)
	work := func(x *tensor.Tensor) float64 {
		_, stats, err := Decompose(x, Options{Rank: 4, MaxIters: 3, Tol: 0, Workers: 4, Method: partition.MTPMethod, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Cluster.TotalWork()
	}
	ws, wb := work(small), work(big)
	if wb < 2.5*ws {
		t.Fatalf("4x nnz grew work only %.2fx; static baseline must scale with nnz", wb/ws)
	}
}

func TestValidation(t *testing.T) {
	x := sparseRandom([]int{5, 5, 5}, 30, 15)
	for name, opts := range map[string]Options{
		"rank 0":     {Rank: 0, Workers: 2},
		"no workers": {Rank: 2, Workers: 0},
		"bad tol":    {Rank: 2, Workers: 2, Tol: -1},
	} {
		if _, _, err := Decompose(x, opts); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	empty := tensor.NewBuilder([]int{3, 3}).Build()
	if _, _, err := Decompose(empty, Options{Rank: 2, Workers: 2}); err != ErrEmptyTensor {
		t.Fatalf("empty tensor error = %v", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	x := sparseRandom([]int{25, 20, 15}, 900, 17)
	_, stats, err := Decompose(x, Options{Rank: 3, MaxIters: 2, Workers: 3, Method: partition.GTPMethod, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NNZ != x.NNZ() {
		t.Fatalf("NNZ = %d", stats.NNZ)
	}
	if len(stats.Imbalance) != 3 || stats.SetupBytes <= 0 || stats.Cluster == nil {
		t.Fatalf("stats incomplete: %+v", stats)
	}
	if len(stats.LossTrace) != stats.Iters {
		t.Fatalf("%d trace entries for %d iters", len(stats.LossTrace), stats.Iters)
	}
}
