// Package partition implements the tensor partitioning half of
// DisMASTD (Section IV-A): the two load-balancing heuristics GTP
// (Algorithm 2) and MTP (Algorithm 3), balance statistics matching the
// paper's Table IV, and exact optimal partitioners for small inputs
// that demonstrate the NP-hard optimum the heuristics approximate
// (Theorem 1 reduces it to the Partition problem).
//
// Both heuristics operate on a per-mode slice histogram: a_i is the
// number of non-zero complement entries in slice i of the mode
// (tensor.SliceNNZ). A partitioning of one mode assigns each slice to
// one of p partitions; the workload of a partition is the sum of its
// slices' nnz.
package partition

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"dismastd/internal/obs"
)

// Method selects a partitioning heuristic.
type Method int

const (
	// GTPMethod is Greedy Tensor Partitioning: contiguous slice runs,
	// boundaries placed when the running nnz reaches the target size.
	GTPMethod Method = iota
	// MTPMethod is Max-min Fit Tensor Partitioning: slices sorted by
	// descending nnz, each assigned to the currently lightest partition.
	MTPMethod
)

func (m Method) String() string {
	switch m {
	case GTPMethod:
		return "GTP"
	case MTPMethod:
		return "MTP"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ModePlan is the partitioning of one tensor mode.
type ModePlan struct {
	Mode   int
	Parts  int
	Assign []int32 // Assign[i] is the partition owning slice i
	Loads  []int64 // Loads[p] is the total nnz assigned to partition p
}

// loadsFromAssign recomputes the per-partition loads of an assignment.
func loadsFromAssign(slices []int64, assign []int32, p int) []int64 {
	loads := make([]int64, p)
	for i, part := range assign {
		loads[part] += slices[i]
	}
	return loads
}

// GTP implements Algorithm 2 on one mode's slice histogram. It walks
// the slices in index order, accumulating until the running sum reaches
// the target nnz/p; at the boundary it keeps the slice in the current
// partition or pushes it to the next, whichever lands closer to the
// target (lines 10–12). Once p−1 partitions are closed, every remaining
// slice goes to the last partition (lines 16–17).
func GTP(slices []int64, p int) *ModePlan {
	checkParts(len(slices), p)
	var total int64
	for _, a := range slices {
		total += a
	}
	target := float64(total) / float64(p)
	assign := make([]int32, len(slices))
	part := 0
	sum := int64(0)
	for i := 0; i < len(slices); {
		if part == p-1 {
			assign[i] = int32(part)
			i++
			continue
		}
		a := slices[i]
		if float64(sum+a) < target {
			assign[i] = int32(part)
			sum += a
			i++
			continue
		}
		over := float64(sum+a) - target
		under := target - float64(sum)
		if over <= under || sum == 0 {
			// Including slice i balances better — or the partition is
			// empty, in which case excluding can never balance better
			// (an empty partition is maximally unbalanced) and would
			// push an oversized slice forward indefinitely.
			assign[i] = int32(part)
			part++
			sum = 0
			i++
		} else {
			// Close without slice i; it is re-evaluated against the
			// next (empty) partition.
			part++
			sum = 0
		}
	}
	return &ModePlan{Parts: p, Assign: assign, Loads: loadsFromAssign(slices, assign, p)}
}

// GTPNoBackoff is GTP without the better-balance boundary choice of
// Algorithm 2 lines 10–12: a boundary slice is always kept in the
// current partition once the running sum reaches the target. It exists
// as the ablation baseline for that design choice (see DESIGN.md); on
// skewed data the back-off measurably tightens the balance.
func GTPNoBackoff(slices []int64, p int) *ModePlan {
	checkParts(len(slices), p)
	var total int64
	for _, a := range slices {
		total += a
	}
	target := float64(total) / float64(p)
	assign := make([]int32, len(slices))
	part := 0
	sum := int64(0)
	for i, a := range slices {
		if part == p-1 {
			assign[i] = int32(part)
			continue
		}
		assign[i] = int32(part)
		sum += a
		if float64(sum) >= target {
			part++
			sum = 0
		}
	}
	return &ModePlan{Parts: p, Assign: assign, Loads: loadsFromAssign(slices, assign, p)}
}

// MTP implements Algorithm 3: sort the slices by descending nnz, then
// repeatedly give the heaviest unassigned slice to the partition with
// the smallest current load (a max-min / LPT greedy). Unlike GTP the
// resulting partitions are generally non-contiguous.
func MTP(slices []int64, p int) *ModePlan {
	checkParts(len(slices), p)
	order := make([]int, len(slices))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		if slices[order[x]] != slices[order[y]] {
			return slices[order[x]] > slices[order[y]]
		}
		return order[x] < order[y] // deterministic tie-break
	})
	h := make(loadHeap, p)
	for i := range h {
		h[i] = partLoad{part: i}
	}
	heap.Init(&h)
	assign := make([]int32, len(slices))
	zeroFrom := len(order)
	for pos, i := range order {
		if slices[i] == 0 {
			// order is descending, so the zero-nnz tail starts here.
			zeroFrom = pos
			break
		}
		min := &h[0]
		assign[i] = int32(min.part)
		min.load += slices[i]
		min.count++
		heap.Fix(&h, 0)
	}
	// Empty slices carry no MTTKRP load, so any assignment satisfies
	// Algorithm 3's max-min objective; spread them round-robin by slice
	// count. Sending them all to the single lightest partition (what a
	// literal "assign to min load" does) would concentrate the
	// factor-row update work — proportional to row count, invisible to
	// the nnz statistic — on one worker.
	counts := make([]int, p)
	for _, pl := range h {
		counts[pl.part] = pl.count
	}
	for _, i := range order[zeroFrom:] {
		min := 0
		for q := 1; q < p; q++ {
			if counts[q] < counts[min] {
				min = q
			}
		}
		assign[i] = int32(min)
		counts[min]++
	}
	return &ModePlan{Parts: p, Assign: assign, Loads: loadsFromAssign(slices, assign, p)}
}

// Partition dispatches to the heuristic selected by method.
func Partition(slices []int64, p int, method Method) *ModePlan {
	switch method {
	case GTPMethod:
		return GTP(slices, p)
	case MTPMethod:
		return MTP(slices, p)
	default:
		panic(fmt.Sprintf("partition: unknown method %d", int(method)))
	}
}

func checkParts(slices, p int) {
	if p <= 0 {
		panic(fmt.Sprintf("partition: %d partitions", p))
	}
	if slices == 0 {
		panic("partition: empty slice histogram")
	}
}

type partLoad struct {
	part  int
	load  int64
	count int // slices assigned so far
}

// loadHeap is a min-heap by load, then by slice count, then by part
// index. The count tie-break matters on sparse modes: zero-nnz slices
// leave the load unchanged, and without it every empty slice would pile
// onto one partition — whose factor-row update work is proportional to
// its *row count*, not its nnz — creating a straggler the nnz statistic
// never sees.
type loadHeap []partLoad

func (h loadHeap) Len() int { return len(h) }
func (h loadHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].part < h[j].part
}
func (h loadHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x any)   { *h = append(*h, x.(partLoad)) }
func (h *loadHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// MaxLoad returns the heaviest partition's nnz — the makespan the
// optimal partitioning problem minimises.
func (p *ModePlan) MaxLoad() int64 {
	var max int64
	for _, l := range p.Loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Observe publishes the plan's balance statistics as gauges
// (partition.mode<M>.cv, .max_load, .parts) so a live registry shows
// how well the current snapshot's slices spread. Planning-time only —
// not on any hot path. No-op on a nil registry.
func (p *ModePlan) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	prefix := fmt.Sprintf("partition.mode%d.", p.Mode)
	reg.Gauge(prefix + "cv").Set(p.ImbalanceStdDev())
	reg.Gauge(prefix + "max_load").Set(float64(p.MaxLoad()))
	reg.Gauge(prefix + "parts").Set(float64(p.Parts))
}

// ImbalanceStdDev returns the standard deviation of the per-partition
// nnz normalised by the mean load (the coefficient of variation) —
// the load-balance statistic reported in Table IV. Zero means perfectly
// balanced. It returns 0 for an empty tensor.
func (p *ModePlan) ImbalanceStdDev() float64 {
	return ImbalanceStdDev(p.Loads)
}

// ImbalanceStdDev computes stddev(loads)/mean(loads).
func ImbalanceStdDev(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum float64
	for _, l := range loads {
		sum += float64(l)
	}
	mean := sum / float64(len(loads))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, l := range loads {
		d := float64(l) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(loads))) / mean
}

// ImbalanceCV is ImbalanceStdDev over float64 loads — the same
// coefficient-of-variation statistic, arithmetic step for step, so the
// imbalance detector's fence-time reading of measured per-rank costs is
// directly comparable to the planning-time partition.modeN.cv gauges.
// Allocation-free, as the detector runs it every step fence.
func ImbalanceCV(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum float64
	for _, l := range loads {
		sum += l
	}
	mean := sum / float64(len(loads))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, l := range loads {
		d := l - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(loads))) / mean
}

// WeightedLPT partitions one mode's slice histogram onto p partitions
// whose unit costs differ: partition q processes one nnz in weights[q]
// time, so its completion time for load L is weights[q]·L. The greedy
// walks slices by descending nnz and gives each to the partition with
// the smallest resulting weighted completion — plain LPT (≈ MTP) when
// the weights are uniform, and a speed-aware plan when they are the
// measured per-rank costs the imbalance detector broadcasts. Zero-nnz
// slices spread round-robin by slice count, exactly as in MTP and for
// the same reason. Weights must be positive and one per partition.
func WeightedLPT(slices []int64, weights []float64, p int) *ModePlan {
	checkParts(len(slices), p)
	if len(weights) != p {
		panic(fmt.Sprintf("partition: %d weights for %d partitions", len(weights), p))
	}
	for q, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			panic(fmt.Sprintf("partition: weight[%d] = %v, want positive finite", q, w))
		}
	}
	order := make([]int, len(slices))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		if slices[order[x]] != slices[order[y]] {
			return slices[order[x]] > slices[order[y]]
		}
		return order[x] < order[y] // deterministic tie-break
	})
	assign := make([]int32, len(slices))
	loads := make([]int64, p)
	counts := make([]int, p)
	zeroFrom := len(order)
	for pos, i := range order {
		a := slices[i]
		if a == 0 {
			zeroFrom = pos
			break
		}
		best := 0
		bestCost := weights[0] * float64(loads[0]+a)
		for q := 1; q < p; q++ {
			cost := weights[q] * float64(loads[q]+a)
			if cost < bestCost || (cost == bestCost && counts[q] < counts[best]) {
				best, bestCost = q, cost
			}
		}
		assign[i] = int32(best)
		loads[best] += a
		counts[best]++
	}
	for _, i := range order[zeroFrom:] {
		min := 0
		for q := 1; q < p; q++ {
			if counts[q] < counts[min] {
				min = q
			}
		}
		assign[i] = int32(min)
		counts[min]++
	}
	return &ModePlan{Parts: p, Assign: assign, Loads: loads}
}
