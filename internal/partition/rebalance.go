package partition

import (
	"fmt"
	"sort"
)

// Rebalance adapts an existing mode plan to a changed partition set
// with minimal slice movement — the elastic counterpart of running GTP
// or MTP from scratch, which would reshuffle nearly every slice and
// turn a one-rank membership change into a full data redistribution.
//
// remap says where each old partition's slices land: remap[p] is the
// new partition inheriting old partition p, or −1 if p departed (its
// worker died or drained). Slices of remapped partitions stay put;
// orphaned slices are redistributed LPT-style (heaviest first onto the
// lightest partition — the same max-min greedy as MTP); and a bounded
// local search then moves single slices from the heaviest partition to
// the lightest while that strictly improves balance, which is what
// feeds freshly joined (initially empty) partitions when nobody died.
//
// Every step is deterministic, so all survivors of a view change
// compute bitwise-identical plans independently.
func Rebalance(slices []int64, old *ModePlan, remap []int32, newParts int) *ModePlan {
	if len(old.Assign) != len(slices) {
		panic(fmt.Sprintf("partition: rebalance of %d slices with %d assignments", len(slices), len(old.Assign)))
	}
	if len(remap) != old.Parts {
		panic(fmt.Sprintf("partition: remap of %d entries for %d partitions", len(remap), old.Parts))
	}
	checkParts(len(slices), newParts)
	assign := make([]int32, len(slices))
	loads := make([]int64, newParts)
	counts := make([]int, newParts)
	var orphans []int
	for i, p := range old.Assign {
		np := remap[p]
		if np >= int32(newParts) {
			panic(fmt.Sprintf("partition: remap[%d] = %d of %d", p, np, newParts))
		}
		if np >= 0 {
			assign[i] = np
			loads[np] += slices[i]
			counts[np]++
		} else {
			assign[i] = -1
			orphans = append(orphans, i)
		}
	}

	// LPT over the orphans: heaviest slice first, onto the lightest
	// partition. Zero-nnz orphans go by slice count, like MTP's
	// zero-slice round-robin, so row-update work stays spread.
	sort.Slice(orphans, func(a, b int) bool {
		if slices[orphans[a]] != slices[orphans[b]] {
			return slices[orphans[a]] > slices[orphans[b]]
		}
		return orphans[a] < orphans[b]
	})
	for _, i := range orphans {
		min := 0
		for q := 1; q < newParts; q++ {
			if loads[q] < loads[min] || (loads[q] == loads[min] && counts[q] < counts[min]) {
				min = q
			}
		}
		assign[i] = int32(min)
		loads[min] += slices[i]
		counts[min]++
	}

	// Local search, only when no partition departed: repeatedly move
	// one slice from the heaviest to the lightest partition, which is
	// what feeds a freshly joined empty partition. A shrink already
	// moved exactly the orphans — the minimum possible — and LPT placed
	// them against the surviving loads, so churning survivor slices on
	// top would break the only-moved-slices migration contract for no
	// balance the orphan placement didn't get. A move of nnz a across a
	// load gap g changes the sum of squared loads by 2a(a−g) < 0
	// whenever 0 < a < g, so the search monotonically descends and must
	// terminate; the slice count bound is a hard backstop. Preferring
	// the largest a ≤ g/2 converges in few moves; when only larger
	// slices exist, the smallest mover below g still descends.
	for iter := 0; len(orphans) == 0 && iter < len(slices); iter++ {
		h, l := 0, 0
		for q := 1; q < newParts; q++ {
			if loads[q] > loads[h] {
				h = q
			}
			if loads[q] < loads[l] {
				l = q
			}
		}
		gap := loads[h] - loads[l]
		if gap <= 0 {
			break
		}
		bestHalf, bestSmall := -1, -1
		for i, p := range assign {
			a := slices[i]
			if int(p) != h || a <= 0 || a >= gap {
				continue
			}
			if 2*a <= gap {
				if bestHalf < 0 || a > slices[bestHalf] || (a == slices[bestHalf] && i < bestHalf) {
					bestHalf = i
				}
			} else if bestSmall < 0 || a < slices[bestSmall] || (a == slices[bestSmall] && i < bestSmall) {
				bestSmall = i
			}
		}
		move := bestHalf
		if move < 0 {
			move = bestSmall
		}
		if move < 0 {
			break
		}
		assign[move] = int32(l)
		loads[h] -= slices[move]
		loads[l] += slices[move]
		counts[h]--
		counts[l]++
	}

	// Empty partitions with zero-nnz slices available elsewhere: give a
	// joiner at least its share of row-update work even on modes whose
	// load the nnz statistic cannot see.
	for q := 0; q < newParts; q++ {
		if counts[q] > 0 {
			continue
		}
		for {
			donor, slice := -1, -1
			for i, p := range assign {
				if slices[i] == 0 && counts[p] > counts[q]+1 && (donor < 0 || counts[p] > counts[donor]) {
					donor, slice = int(p), i
				}
			}
			if slice < 0 {
				break
			}
			assign[slice] = int32(q)
			counts[donor]--
			counts[q]++
		}
	}

	return &ModePlan{Mode: old.Mode, Parts: newParts, Assign: assign, Loads: loadsFromAssign(slices, assign, newParts)}
}

// Moved counts the slices whose partition changed between two
// assignments over the same slice set, given a remap aligning old
// partition ids to new ones — the movement statistic Rebalance
// minimises and migration tests assert on.
func Moved(before, after *ModePlan, remap []int32) int {
	moved := 0
	for i, p := range before.Assign {
		if after.Assign[i] != remap[p] { // remap[p] < 0 never equals a real partition
			moved++
		}
	}
	return moved
}
