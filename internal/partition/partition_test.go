package partition

import (
	"math"
	"testing"
	"testing/quick"

	"dismastd/internal/xrand"
)

func randomSlices(n int, seed uint64) []int64 {
	src := xrand.New(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(src.Intn(100))
	}
	return out
}

// zipfSlices emulates the skewed slice histograms of the real datasets.
func zipfSlices(n int, seed uint64) []int64 {
	src := xrand.New(seed)
	z := xrand.NewZipf(src, 1.2, n)
	out := make([]int64, n)
	for i := 0; i < n*30; i++ {
		out[z.Draw()]++
	}
	return out
}

func checkCover(t *testing.T, plan *ModePlan, slices []int64) {
	t.Helper()
	if len(plan.Assign) != len(slices) {
		t.Fatalf("assignment covers %d of %d slices", len(plan.Assign), len(slices))
	}
	var total, planTotal int64
	for _, a := range slices {
		total += a
	}
	for _, l := range plan.Loads {
		planTotal += l
	}
	if total != planTotal {
		t.Fatalf("loads sum to %d, slices sum to %d", planTotal, total)
	}
	for i, part := range plan.Assign {
		if part < 0 || int(part) >= plan.Parts {
			t.Fatalf("slice %d assigned to invalid partition %d", i, part)
		}
	}
}

func TestGTPContiguity(t *testing.T) {
	slices := zipfSlices(200, 1)
	plan := GTP(slices, 8)
	checkCover(t, plan, slices)
	// GTP assignments must be non-decreasing in slice order.
	for i := 1; i < len(plan.Assign); i++ {
		if plan.Assign[i] < plan.Assign[i-1] {
			t.Fatalf("GTP produced non-contiguous assignment at slice %d", i)
		}
	}
}

func TestGTPUniformNearTarget(t *testing.T) {
	// Equal slices divide evenly: every partition within one slice of
	// the target.
	slices := make([]int64, 100)
	for i := range slices {
		slices[i] = 10
	}
	plan := GTP(slices, 10)
	for p, l := range plan.Loads {
		if l < 90 || l > 110 {
			t.Fatalf("partition %d load %d, want ~100", p, l)
		}
	}
}

func TestGTPBoundaryChoice(t *testing.T) {
	// Target 50. After slice of 40, adding 30 overshoots to 70
	// (distance 20) vs stopping at 40 (distance 10): GTP must close
	// without the big slice.
	slices := []int64{40, 30, 30}
	plan := GTP(slices, 2)
	if plan.Assign[0] != 0 || plan.Assign[1] != 1 || plan.Assign[2] != 1 {
		t.Fatalf("assignment %v, want [0 1 1]", plan.Assign)
	}
	// Target 50. After slice of 45, adding 10 overshoots to 55
	// (distance 5) vs stopping at 45 (distance 5): tie keeps the slice.
	slices = []int64{45, 10, 45}
	plan = GTP(slices, 2)
	if plan.Assign[0] != 0 || plan.Assign[1] != 0 || plan.Assign[2] != 1 {
		t.Fatalf("assignment %v, want [0 0 1]", plan.Assign)
	}
}

func TestGTPLastPartitionTakesRemainder(t *testing.T) {
	// One giant head slice exhausts partitions early; the tail must all
	// land in the final partition, never panic or spill.
	slices := []int64{1000, 1000, 1, 1, 1, 1}
	plan := GTP(slices, 3)
	checkCover(t, plan, slices)
	for i := 2; i < 6; i++ {
		if plan.Assign[i] != 2 {
			t.Fatalf("tail slice %d in partition %d, want 2", i, plan.Assign[i])
		}
	}
}

func TestMTPIsLPT(t *testing.T) {
	// Max-min fit must place each heavy slice on the lightest
	// partition: with loads {9,7,6,5,4} into 2 parts, LPT gives
	// {9,5,4}=18 vs {7,6}=13... checking the known LPT trace:
	// 9->P0, 7->P1, 6->P1(13)? No: after 9->P0(9), 7->P1(7), next 6 to
	// P1 (7<9) ->13, next 5 to P0 (9<13) ->14, next 4 to P1 ->17? P1=13
	// vs P0=14: 4 goes to P1 -> 17. Loads {14, 17}.
	plan := MTP([]int64{9, 7, 6, 5, 4}, 2)
	if plan.Loads[0]+plan.Loads[1] != 31 {
		t.Fatalf("loads %v", plan.Loads)
	}
	max := plan.MaxLoad()
	if max != 17 && max != 16 {
		// 16 is the optimum {9,7}/{6,5,4}; LPT yields 17 here.
		t.Fatalf("MTP max load %d", max)
	}
}

func TestMTPCover(t *testing.T) {
	slices := zipfSlices(300, 3)
	plan := MTP(slices, 15)
	checkCover(t, plan, slices)
}

func TestMTPBeatsGTPOnSkewedData(t *testing.T) {
	// The paper's Table IV observation: on skewed histograms MTP's
	// imbalance is far below GTP's; on uniform data they are close.
	for _, p := range []int{8, 15, 23, 30, 38} {
		slices := zipfSlices(2000, 5)
		g := GTP(slices, p).ImbalanceStdDev()
		m := MTP(slices, p).ImbalanceStdDev()
		if m > g {
			t.Fatalf("p=%d: MTP imbalance %v worse than GTP %v on skewed data", p, m, g)
		}
	}
}

func TestUniformDataBothBalanced(t *testing.T) {
	src := xrand.New(7)
	slices := make([]int64, 2000)
	for i := range slices {
		slices[i] = int64(90 + src.Intn(20))
	}
	g := GTP(slices, 16).ImbalanceStdDev()
	m := MTP(slices, 16).ImbalanceStdDev()
	if g > 0.05 || m > 0.05 {
		t.Fatalf("uniform data should balance well: GTP %v MTP %v", g, m)
	}
}

func TestPartitionDispatch(t *testing.T) {
	slices := randomSlices(50, 9)
	if got := Partition(slices, 4, GTPMethod); got.MaxLoad() != GTP(slices, 4).MaxLoad() {
		t.Fatal("GTP dispatch mismatch")
	}
	if got := Partition(slices, 4, MTPMethod); got.MaxLoad() != MTP(slices, 4).MaxLoad() {
		t.Fatal("MTP dispatch mismatch")
	}
	if GTPMethod.String() != "GTP" || MTPMethod.String() != "MTP" {
		t.Fatal("method names wrong")
	}
}

func TestImbalanceStdDev(t *testing.T) {
	if ImbalanceStdDev([]int64{10, 10, 10}) != 0 {
		t.Fatal("balanced loads should have zero imbalance")
	}
	if ImbalanceStdDev(nil) != 0 || ImbalanceStdDev([]int64{0, 0}) != 0 {
		t.Fatal("degenerate inputs should be zero")
	}
	// loads {0, 20}: mean 10, stddev 10, CV 1.
	if got := ImbalanceStdDev([]int64{0, 20}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CV = %v, want 1", got)
	}
}

func TestCKKKnownCases(t *testing.T) {
	cases := []struct {
		vals []int64
		want int64
	}{
		{nil, 0},
		{[]int64{7}, 7},
		{[]int64{1, 1}, 0},
		{[]int64{3, 1, 1, 2, 2, 1}, 0}, // 3+2 vs 1+1+2+1
		{[]int64{8, 7, 6, 5, 4}, 0},    // 8+7 vs 6+5+4
		{[]int64{100, 1, 1}, 98},       // dominated
		{[]int64{5, 5, 5}, 5},
	}
	for _, c := range cases {
		if got := CKK(c.vals); got != c.want {
			t.Fatalf("CKK(%v) = %d, want %d", c.vals, got, c.want)
		}
	}
}

func TestCKKMatchesBruteForce(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		src := xrand.New(uint64(seed) + 1)
		n := 1 + src.Intn(12)
		vals := make([]int64, n)
		var total int64
		for i := range vals {
			vals[i] = int64(src.Intn(50))
			total += vals[i]
		}
		// Brute force over all subsets.
		best := total
		for mask := 0; mask < 1<<n; mask++ {
			var s int64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					s += vals[i]
				}
			}
			d := 2*s - total
			if d < 0 {
				d = -d
			}
			if d < best {
				best = d
			}
		}
		return CKK(vals) == best
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalMaxLoadMatchesBruteForce(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		src := xrand.New(uint64(seed) + 100)
		n := 1 + src.Intn(8)
		p := 1 + src.Intn(3)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(src.Intn(40))
		}
		// Brute force over all p^n assignments.
		best := int64(math.MaxInt64)
		assign := make([]int, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				loads := make([]int64, p)
				for j, a := range assign {
					loads[a] += vals[j]
				}
				var max int64
				for _, l := range loads {
					if l > max {
						max = l
					}
				}
				if max < best {
					best = max
				}
				return
			}
			for a := 0; a < p; a++ {
				assign[i] = a
				rec(i + 1)
			}
		}
		rec(0)
		return OptimalMaxLoad(vals, p) == best
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicsVersusOptimum(t *testing.T) {
	// LPT (MTP) is a (4/3 − 1/(3p))-approximation of the optimal
	// makespan; GTP explores only contiguous splits so compare it to
	// the contiguous optimum, which it should approach within 2x.
	src := xrand.New(11)
	for trial := 0; trial < 25; trial++ {
		n := 5 + src.Intn(10)
		p := 2 + src.Intn(3)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(1 + src.Intn(60))
		}
		opt := OptimalMaxLoad(vals, p)
		mtp := MTP(vals, p).MaxLoad()
		bound := float64(opt) * (4.0/3.0 - 1.0/(3.0*float64(p)))
		if float64(mtp) > bound+1e-9 {
			t.Fatalf("MTP %d exceeds LPT bound %.2f (opt %d, vals %v, p %d)", mtp, bound, opt, vals, p)
		}
		contOpt := OptimalContiguousMaxLoad(vals, p)
		gtp := GTP(vals, p).MaxLoad()
		if gtp > 2*contOpt {
			t.Fatalf("GTP %d more than 2x contiguous optimum %d (vals %v, p %d)", gtp, contOpt, vals, p)
		}
		if contOpt < opt {
			t.Fatalf("contiguous optimum %d beats unrestricted optimum %d", contOpt, opt)
		}
	}
}

func TestOptimalContiguousKnown(t *testing.T) {
	// {7,2,3,8,4} into 2 parts: best split is {7,2,3}|{8,4} = 12.
	if got := OptimalContiguousMaxLoad([]int64{7, 2, 3, 8, 4}, 2); got != 12 {
		t.Fatalf("contiguous optimum = %d, want 12", got)
	}
	// p >= n: every slice alone; answer is the max slice.
	if got := OptimalContiguousMaxLoad([]int64{5, 9, 1}, 10); got != 9 {
		t.Fatalf("contiguous optimum = %d, want 9", got)
	}
}

func TestNPHardnessReductionShape(t *testing.T) {
	// Theorem 1's reduction: a perfect 2-way partition of the slice
	// histogram exists iff the optimal makespan equals total/2. CKK
	// decides the Partition instance; OptimalMaxLoad must agree.
	vals := []int64{3, 1, 1, 2, 2, 1} // total 10, perfectly splittable
	if CKK(vals) != 0 {
		t.Fatal("expected a perfect partition")
	}
	if OptimalMaxLoad(vals, 2) != 5 {
		t.Fatal("perfect partition must give makespan total/2")
	}
	vals = []int64{5, 5, 5} // total 15, odd split
	if CKK(vals) != 5 {
		t.Fatal("expected difference 5")
	}
	if OptimalMaxLoad(vals, 2) != 10 {
		t.Fatal("makespan must be (total+diff)/2 = 10")
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero parts":   func() { GTP([]int64{1}, 0) },
		"empty slices": func() { MTP(nil, 2) },
		"bad method":   func() { Partition([]int64{1}, 1, Method(99)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkGTP(b *testing.B) {
	slices := zipfSlices(100000, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GTP(slices, 16)
	}
}

func BenchmarkMTP(b *testing.B) {
	slices := zipfSlices(100000, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MTP(slices, 16)
	}
}

func TestMTPSpreadsEmptySlices(t *testing.T) {
	// A mostly-empty histogram (the shape of a complement tensor's old
	// region): zero-nnz slices must spread across partitions instead of
	// piling onto the lightest one, because the factor-row update cost
	// is proportional to row count regardless of nnz.
	slices := make([]int64, 10000)
	src := xrand.New(31)
	for i := 0; i < 500; i++ {
		slices[src.Intn(len(slices))] += int64(1 + src.Intn(20))
	}
	plan := MTP(slices, 8)
	counts := make([]int, 8)
	for _, p := range plan.Assign {
		counts[p]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max > min+min/4+8 {
		t.Fatalf("row counts unbalanced: %v", counts)
	}
	// And the nnz balance is still what MTP promises.
	if plan.ImbalanceStdDev() > 0.1 {
		t.Fatalf("nnz imbalance %v", plan.ImbalanceStdDev())
	}
}

func TestGTPNoBackoffWorseOnSkew(t *testing.T) {
	slices := zipfSlices(2000, 33)
	with := GTP(slices, 15).ImbalanceStdDev()
	without := GTPNoBackoff(slices, 15).ImbalanceStdDev()
	if with > without {
		t.Fatalf("back-off (%v) did not help vs greedy-only (%v)", with, without)
	}
	// Both must still cover everything.
	checkCover(t, GTPNoBackoff(slices, 15), slices)
}
