package partition

import "sort"

// This file provides exact solvers for the optimal tensor partitioning
// problem on small inputs. Theorem 1 proves the problem NP-hard by
// reduction from the Partition problem, so these are exponential; they
// exist to quantify how close GTP and MTP get to the true optimum and
// to exercise the reduction in tests. CKK is the complete
// Karmarkar-Karp algorithm of Korf [47], the paper's citation for the
// Partition problem.

// CKK returns the minimum achievable |sum(S1) − sum(S2)| over all
// two-way partitions of values, using complete Karmarkar-Karp search:
// branch on either differencing the two largest values (placing them in
// opposite sets) or summing them (same set), best-first with pruning.
func CKK(values []int64) int64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var total int64
	for _, v := range sorted {
		total += v
	}
	best := total // worst case: everything on one side
	var rec func(vals []int64, sum int64)
	rec = func(vals []int64, sum int64) {
		if best == 0 {
			return
		}
		if len(vals) == 1 {
			d := vals[0]
			if d < 0 {
				d = -d
			}
			if d < best {
				best = d
			}
			return
		}
		// If the largest value dominates the rest, the difference is
		// forced and the search below cannot improve on it.
		if vals[0] >= sum-vals[0] {
			d := vals[0] - (sum - vals[0])
			if d < best {
				best = d
			}
			return
		}
		a, b := vals[0], vals[1]
		rest := vals[2:]
		// Branch 1 (KK move): a and b on opposite sides -> |a−b| joins.
		d1 := insertSorted(rest, a-b)
		rec(d1, sum-2*b)
		// Branch 2: a and b on the same side -> a+b joins.
		d2 := insertSorted(rest, a+b)
		rec(d2, sum)
	}
	rec(sorted, total)
	return best
}

// insertSorted returns a fresh descending-sorted slice equal to vals
// with v inserted.
func insertSorted(vals []int64, v int64) []int64 {
	out := make([]int64, 0, len(vals)+1)
	inserted := false
	for _, x := range vals {
		if !inserted && v >= x {
			out = append(out, v)
			inserted = true
		}
		out = append(out, x)
	}
	if !inserted {
		out = append(out, v)
	}
	return out
}

// OptimalMaxLoad returns the minimum achievable makespan (heaviest
// partition) over every assignment of the slices into p partitions, by
// branch-and-bound over slices sorted descending. Exponential — only
// for small len(slices) in tests and ablations.
func OptimalMaxLoad(slices []int64, p int) int64 {
	checkParts(len(slices), p)
	sorted := append([]int64(nil), slices...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var total int64
	for _, v := range sorted {
		total += v
	}
	// Start from the LPT greedy as an upper bound.
	best := MTP(slices, p).MaxLoad()
	// Lower bound: ceil(total/p) and the largest single slice.
	lower := (total + int64(p) - 1) / int64(p)
	if len(sorted) > 0 && sorted[0] > lower {
		lower = sorted[0]
	}
	loads := make([]int64, p)
	var rec func(i int)
	rec = func(i int) {
		if best == lower {
			return
		}
		if i == len(sorted) {
			max := int64(0)
			for _, l := range loads {
				if l > max {
					max = l
				}
			}
			if max < best {
				best = max
			}
			return
		}
		usedEmpty := false
		for j := 0; j < p; j++ {
			if loads[j] == 0 {
				// All empty partitions are symmetric; try only one.
				if usedEmpty {
					continue
				}
				usedEmpty = true
			}
			if loads[j]+sorted[i] >= best {
				continue // cannot improve
			}
			loads[j] += sorted[i]
			rec(i + 1)
			loads[j] -= sorted[i]
		}
	}
	rec(0)
	return best
}

// OptimalContiguousMaxLoad returns the minimum achievable makespan over
// contiguous partitionings only — the restricted space GTP searches.
// It binary-searches the answer and checks feasibility greedily, which
// is exact for the contiguous problem and runs in O(I log Σ).
func OptimalContiguousMaxLoad(slices []int64, p int) int64 {
	checkParts(len(slices), p)
	var total, maxSlice int64
	for _, v := range slices {
		total += v
		if v > maxSlice {
			maxSlice = v
		}
	}
	lo, hi := maxSlice, total
	feasible := func(cap int64) bool {
		parts := 1
		var sum int64
		for _, v := range slices {
			if sum+v > cap {
				parts++
				sum = v
				if parts > p {
					return false
				}
			} else {
				sum += v
			}
		}
		return true
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
