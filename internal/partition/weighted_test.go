package partition

import (
	"math"
	"testing"
)

func TestWeightedLPTUniformMatchesLPTBalance(t *testing.T) {
	slices := []int64{512, 256, 128, 64, 32, 16, 8, 4, 2, 1}
	uniform := []float64{1, 1, 1}
	wp := WeightedLPT(slices, uniform, 3)
	mp := MTP(slices, 3)
	if wp.MaxLoad() != mp.MaxLoad() {
		t.Fatalf("uniform WeightedLPT makespan %d != MTP makespan %d", wp.MaxLoad(), mp.MaxLoad())
	}
	var total int64
	for _, l := range wp.Loads {
		total += l
	}
	if want := int64(1023); total != want {
		t.Fatalf("loads sum %d, want %d", total, want)
	}
}

// TestWeightedLPTRespectsSpeeds: a partition twice as expensive per nnz
// should end with roughly half the load of the cheap ones.
func TestWeightedLPTRespectsSpeeds(t *testing.T) {
	slices := make([]int64, 64)
	for i := range slices {
		slices[i] = 10
	}
	weights := []float64{1, 1, 2} // partition 2 is half speed
	p := WeightedLPT(slices, weights, 3)
	if p.Loads[2] >= p.Loads[0] || p.Loads[2] >= p.Loads[1] {
		t.Fatalf("slow partition got loads %v, want the smallest share", p.Loads)
	}
	// Weighted completion times should be close to balanced.
	var costs []float64
	for q, l := range p.Loads {
		costs = append(costs, weights[q]*float64(l))
	}
	if cv := ImbalanceCV(costs); cv > 0.1 {
		t.Fatalf("weighted completion CV = %v, want < 0.1 (costs %v)", cv, costs)
	}
}

func TestWeightedLPTDeterministic(t *testing.T) {
	slices := []int64{7, 7, 7, 3, 3, 0, 0, 5}
	w := []float64{1.5, 1, 1.25}
	a := WeightedLPT(slices, w, 3)
	b := WeightedLPT(slices, w, 3)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("nondeterministic assignment at slice %d: %d vs %d", i, a.Assign[i], b.Assign[i])
		}
	}
}

func TestWeightedLPTSpreadsEmptySlices(t *testing.T) {
	slices := []int64{100, 0, 0, 0, 0, 0, 0}
	p := WeightedLPT(slices, []float64{1, 1, 1}, 3)
	counts := make([]int, 3)
	for _, q := range p.Assign {
		counts[q]++
	}
	for q, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d got no slices: counts %v", q, counts)
		}
	}
}

func TestWeightedLPTValidatesWeights(t *testing.T) {
	for _, bad := range [][]float64{{1, 1}, {1, 0, 1}, {1, -2, 1}, {1, math.Inf(1), 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v did not panic", bad)
				}
			}()
			WeightedLPT([]int64{1, 2, 3}, bad, 3)
		}()
	}
}

// TestImbalanceCVMatchesIntStatistic: the float and int64 entry points
// must agree bit for bit on the same loads — the detector's fence-time
// CV is meant to be directly comparable to the planning-time gauges.
func TestImbalanceCVMatchesIntStatistic(t *testing.T) {
	loads := []int64{512, 384, 127}
	f := make([]float64, len(loads))
	for i, l := range loads {
		f[i] = float64(l)
	}
	if got, want := ImbalanceCV(f), ImbalanceStdDev(loads); got != want {
		t.Fatalf("ImbalanceCV = %v, ImbalanceStdDev = %v", got, want)
	}
	if ImbalanceCV(nil) != 0 || ImbalanceCV([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs should read 0")
	}
}

func TestImbalanceCVAllocFree(t *testing.T) {
	loads := []float64{512, 384, 127, 300}
	if allocs := testing.AllocsPerRun(100, func() { ImbalanceCV(loads) }); allocs != 0 {
		t.Errorf("ImbalanceCV allocates %v times, want 0", allocs)
	}
}
