package partition

import (
	"testing"
)

func checkAssignment(t *testing.T, mp *ModePlan, slices []int64, parts int) {
	t.Helper()
	if mp.Parts != parts || len(mp.Assign) != len(slices) {
		t.Fatalf("plan shape: parts %d assign %d", mp.Parts, len(mp.Assign))
	}
	for i, p := range mp.Assign {
		if p < 0 || int(p) >= parts {
			t.Fatalf("slice %d assigned to %d of %d", i, p, parts)
		}
	}
	want := loadsFromAssign(slices, mp.Assign, parts)
	for p, l := range mp.Loads {
		if l != want[p] {
			t.Fatalf("loads[%d] = %d, recomputed %d", p, l, want[p])
		}
	}
}

// TestRebalanceShrinkMovesOnlyOrphans checks the core movement-
// minimisation property: when a partition departs, exactly its slices
// move and every surviving partition keeps its assignment.
func TestRebalanceShrinkMovesOnlyOrphans(t *testing.T) {
	slices := randomSlices(60, 7)
	old := MTP(slices, 4)
	// Partition 2 departs; 0,1,3 renumber to 0,1,2.
	remap := []int32{0, 1, -1, 2}
	next := Rebalance(slices, old, remap, 3)
	checkAssignment(t, next, slices, 3)
	for i, p := range old.Assign {
		if remap[p] < 0 {
			continue // orphan: may land anywhere
		}
		if next.Assign[i] != remap[p] {
			t.Fatalf("slice %d moved from surviving partition %d to %d", i, p, next.Assign[i])
		}
	}
	orphanCount := 0
	for _, p := range old.Assign {
		if remap[p] < 0 {
			orphanCount++
		}
	}
	if got := Moved(old, next, remap); got > orphanCount {
		t.Fatalf("moved %d slices, only %d orphaned", got, orphanCount)
	}
	// The result must stay reasonably balanced — no worse than twice
	// the from-scratch heuristic's makespan on this data.
	if scratch := MTP(slices, 3); next.MaxLoad() > 2*scratch.MaxLoad() {
		t.Fatalf("rebalanced makespan %d vs scratch %d", next.MaxLoad(), scratch.MaxLoad())
	}
}

// TestRebalanceGrowFeedsJoiner checks the local search: a freshly
// joined (empty) partition must end up with a meaningful share of the
// load, while the total movement stays far below a full reshuffle.
func TestRebalanceGrowFeedsJoiner(t *testing.T) {
	slices := randomSlices(80, 13)
	var total int64
	for _, a := range slices {
		total += a
	}
	old := MTP(slices, 3)
	remap := []int32{0, 1, 2} // everyone stays; partition 3 joins empty
	next := Rebalance(slices, old, remap, 4)
	checkAssignment(t, next, slices, 4)
	target := total / 4
	if got := next.Loads[3]; got < target/2 {
		t.Fatalf("joiner got %d nnz, target %d", got, target)
	}
	// Movement bounded: feeding one joiner must cost a modest number of
	// moves, nothing like the near-total reshuffle a from-scratch MTP
	// would imply (its descending-nnz greedy scatters every slice).
	if moved := Moved(old, next, remap); moved > len(slices)/3 {
		t.Fatalf("moved %d of %d slices to feed one joiner", moved, len(slices))
	}
}

// TestRebalanceDeterministic: survivors rebuild plans independently, so
// two identical calls must agree bitwise.
func TestRebalanceDeterministic(t *testing.T) {
	slices := randomSlices(64, 21)
	old := GTP(slices, 4)
	remap := []int32{0, -1, 1, 2}
	a := Rebalance(slices, old, remap, 3)
	b := Rebalance(slices, old, remap, 3)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("nondeterministic at slice %d", i)
		}
	}
}

// TestRebalanceEmptyModeSpreadsRows: a mode with no nnz at all (fully
// zero histogram) still spreads slices by count so the joiner shares
// the row-update work.
func TestRebalanceEmptyModeSpreadsRows(t *testing.T) {
	slices := make([]int64, 30)
	old := MTP(slices, 3)
	next := Rebalance(slices, old, []int32{0, 1, 2}, 4)
	checkAssignment(t, next, slices, 4)
	counts := make([]int, 4)
	for _, p := range next.Assign {
		counts[p]++
	}
	for q, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d owns no slices: %v", q, counts)
		}
	}
}
