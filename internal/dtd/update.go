package dtd

import (
	"fmt"

	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/xrand"
)

// Updater maintains the decomposition between full sweeps with bounded
// work per event, SliceNStitch-style: incoming entries accumulate into
// an append-only pending region (layout.Delta) and each micro-batch
// re-solves only the factor rows the batch touched, using the same
// Eq. (5) row update the whole-sweep driver applies — numerator from an
// exact per-row MTTKRP over the pending region, denominators from
// incrementally maintained Gram blocks. Everything else is left alone,
// so the cost of a batch is O(batch · order · pending-row-nnz · R²)
// plus one R³ Cholesky per mode, independent of the tensor size.
//
// The updater is anchored at the state of the last full sweep: tilde
// holds the anchor factors, anchorDims the anchor region, and the
// update rules treat rows inside the anchor as the old block A^(0)
// (solved against D_0 with the μ-weighted history numerator) and rows
// gained since as the growth block A^(1) (solved against D_1). The
// periodic full sweep is the drift backstop: it re-runs Step from the
// anchor over the accumulated pending entries, which both restores the
// bulk path's bitwise-exact result and re-anchors the updater (Reset).
//
// All scratch is allocated in NewUpdater and retained across calls, so
// a warmed Apply performs zero heap allocations (Grow allocates — mode
// growth is not steady state). The row loop is deliberately sequential:
// rows are solved in ascending order and Gram maintenance folds each
// row in as it lands, which keeps the result bitwise deterministic for
// a given event sequence at any thread count upstream.
type Updater struct {
	opts       Options
	live       *State
	anchorDims []int
	tilde      []*mat.Dense // anchor factors Ã_n (cloned at Reset)
	gram0      []*mat.Dense // A_n^(0)ᵀ A_n^(0), maintained per row
	gram1      []*mat.Dense // A_n^(1)ᵀ A_n^(1), maintained per row
	cross      []*mat.Dense // Ã_nᵀ A_n^(0), maintained per row
	delta      *layout.Delta
	src        *xrand.Source

	ws                 *mat.Workspace
	d0, d1             *mat.Dense // Eq. (5) denominators
	g0prod, hprod, sum *mat.Dense
	l0, l1             *mat.Dense // Cholesky factors of d0, d1
	numBuf             *mat.Dense // 1×R numerator / in-place solution
	tmp, oldRow        []float64
	touched            []int32

	events      int64
	rowsTouched int64
}

// NewUpdater returns an updater anchored at st. st's factors are
// updated in place by Apply; the caller keeps ownership and must
// re-anchor with Reset after replacing them (e.g. after a full sweep).
func NewUpdater(st *State, o Options) (*Updater, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	r := opts.Rank
	n := len(st.Dims)
	u := &Updater{
		opts:   opts,
		tilde:  make([]*mat.Dense, n),
		gram0:  make([]*mat.Dense, n),
		gram1:  make([]*mat.Dense, n),
		cross:  make([]*mat.Dense, n),
		src:    xrand.New(opts.Seed),
		ws:     mat.NewWorkspace(),
		d0:     mat.New(r, r),
		d1:     mat.New(r, r),
		g0prod: mat.New(r, r),
		hprod:  mat.New(r, r),
		sum:    mat.New(r, r),
		l0:     mat.New(r, r),
		l1:     mat.New(r, r),
		numBuf: mat.New(1, r),
		tmp:    make([]float64, r),
		oldRow: make([]float64, r),
		delta:  layout.NewDelta(st.Dims),
	}
	for m := 0; m < n; m++ {
		u.gram0[m] = mat.New(r, r)
		u.gram1[m] = mat.New(r, r)
		u.cross[m] = mat.New(r, r)
	}
	u.Reset(st)
	return u, nil
}

// Reset re-anchors the updater at st — the state a full sweep just
// produced — and drops the pending region. At the anchor the growth
// block is empty: gram1 is zero, and cross equals gram0 because the
// old block coincides with the anchor factors.
func (u *Updater) Reset(st *State) {
	if len(st.Dims) != len(u.tilde) {
		panic(fmt.Sprintf("dtd: Reset with order-%d state on order-%d updater", len(st.Dims), len(u.tilde)))
	}
	u.live = st
	u.anchorDims = append(u.anchorDims[:0], st.Dims...)
	for m, f := range st.Factors {
		if u.tilde[m] != nil && u.tilde[m].Rows == f.Rows {
			u.tilde[m].CopyFrom(f)
		} else {
			u.tilde[m] = f.Clone()
		}
		mat.GramInto(u.gram0[m], f)
		u.gram1[m].Zero()
		u.cross[m].CopyFrom(u.gram0[m])
	}
	u.delta.Reset()
	grown := false
	for m, d := range st.Dims {
		if u.delta.Dims()[m] != d {
			grown = true
		}
	}
	if grown {
		u.delta.Grow(st.Dims)
	}
	u.events = 0
	u.rowsTouched = 0
}

// Grow extends the live mode sizes for out-of-range events — the
// multi-aspect case. New rows join the growth block: they are
// initialised like a sweep's growth rows (uniform random) and folded
// into gram1 so the next Apply's denominators see them.
func (u *Updater) Grow(dims []int) error {
	if len(dims) != len(u.live.Dims) {
		return fmt.Errorf("%w: order %d vs %d", ErrDimsMismatch, len(dims), len(u.live.Dims))
	}
	for m, d := range dims {
		if d < u.live.Dims[m] {
			return fmt.Errorf("%w: mode %d shrank %d -> %d", ErrDimsMismatch, m, u.live.Dims[m], d)
		}
	}
	for m, d := range dims {
		old := u.live.Dims[m]
		if d == old {
			continue
		}
		growth := mat.RandomUniform(d-old, u.opts.Rank, u.src)
		u.live.Factors[m] = mat.StackRows(u.live.Factors[m], growth)
		for i := 0; i < growth.Rows; i++ {
			row := growth.Row(i)
			addOuter(u.gram1[m], row, row, 1)
		}
		u.live.Dims[m] = d
	}
	u.delta.Grow(dims)
	return nil
}

// Pending returns the number of entries accumulated since the last
// Reset — the region the next full sweep will consume.
func (u *Updater) Pending() int { return u.delta.NNZ() }

// Anchor returns the state of the last full sweep — the prev argument
// the drift-backstop sweep steps from. The factors are the updater's
// own anchor copies; treat the result as read-only.
func (u *Updater) Anchor() *State {
	return &State{Dims: append([]int(nil), u.anchorDims...), Factors: u.tilde}
}

// Events returns the number of events applied since the last Reset.
func (u *Updater) Events() int64 { return u.events }

// RowsTouched returns the number of row solves performed since the
// last Reset — the bounded work the event path actually did.
func (u *Updater) RowsTouched() int64 { return u.rowsTouched }

// Delta exposes the pending region (read-only) so the flush path can
// rebuild the sweep snapshot without a second copy of the entries.
func (u *Updater) Delta() *layout.Delta { return u.delta }

// Apply admits one micro-batch — coords flat entry-major, vals the
// matching values, all coordinates inside the live dims (Grow first) —
// and refreshes every factor row the batch touched. Modes are visited
// in ascending order and each mode's Gram blocks are folded forward
// before the next mode solves, mirroring the sweep's Gauss–Seidel
// structure.
func (u *Updater) Apply(coords []int32, vals []float64) {
	n := len(u.live.Dims)
	if len(coords) != n*len(vals) {
		panic(fmt.Sprintf("dtd: Apply with %d coords for %d values of order %d", len(coords), len(vals), n))
	}
	u.delta.Append(coords, vals)
	u.events += int64(len(vals))
	for m := 0; m < n; m++ {
		u.touched = u.touched[:0]
		for e := range vals {
			u.touched = append(u.touched, coords[e*n+m])
		}
		u.touched = sortDedup(u.touched)
		u.updateMode(m)
	}
}

// updateMode re-solves the touched rows of one mode with the Eq. (5)
// row update, then folds each new row into the mode's Gram blocks.
func (u *Updater) updateMode(m int) {
	eqDenominators(u.d1, u.g0prod, u.hprod, u.sum, u.gram0, u.gram1, u.cross, m)
	u.d0.Scale(-(1 - u.opts.Mu), u.g0prod)
	u.d0.Add(u.d0, u.d1)
	mat.RidgeCholeskyInto(u.l0, u.d0, u.ws)
	mat.RidgeCholeskyInto(u.l1, u.d1, u.ws)

	num := u.numBuf.Row(0)
	for _, i := range u.touched {
		u.rowsTouched++
		for c := range num {
			num[c] = 0
		}
		u.delta.AccumulateRow(num, u.live.Factors, m, i, u.tmp)
		live := u.live.Factors[m].Row(int(i))
		copy(u.oldRow, live)
		l := u.l1
		inAnchor := int(i) < u.anchorDims[m]
		if inAnchor {
			// num += μ · ã_i · hprod (the history term of A^(0)'s rule).
			trow := u.tilde[m].Row(int(i))
			for s, ts := range trow {
				hrow := u.hprod.Row(s)
				w := u.opts.Mu * ts
				for c := range num {
					num[c] += w * hrow[c]
				}
			}
			l = u.l0
		}
		mat.SolveRightFactoredRange(u.numBuf, u.numBuf, l, 0, 1, u.ws)
		copy(live, num)
		if inAnchor {
			addOuter(u.gram0[m], live, live, 1)
			addOuter(u.gram0[m], u.oldRow, u.oldRow, -1)
			// cross += ã_iᵀ (new − old).
			trow := u.tilde[m].Row(int(i))
			for s, ts := range trow {
				crow := u.cross[m].Row(s)
				for c := range live {
					crow[c] += ts * (live[c] - u.oldRow[c])
				}
			}
		} else {
			addOuter(u.gram1[m], live, live, 1)
			addOuter(u.gram1[m], u.oldRow, u.oldRow, -1)
		}
	}
}

// addOuter adds w·(aᵀb) into g for row vectors a, b.
func addOuter(g *mat.Dense, a, b []float64, w float64) {
	for i, ai := range a {
		gi := g.Row(i)
		wa := w * ai
		for j, bj := range b {
			gi[j] += wa * bj
		}
	}
}

// sortDedup sorts s ascending and removes duplicates in place. It is a
// plain insertion sort: micro-batches are small, and avoiding the sort
// package keeps the warmed Apply path allocation-free.
func sortDedup(s []int32) []int32 {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
