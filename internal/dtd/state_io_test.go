package dtd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"dismastd/internal/mat"
)

func testState(t *testing.T) *State {
	t.Helper()
	st := &State{Dims: []int{4, 3}}
	for _, d := range st.Dims {
		f := mat.New(d, 2)
		for i := range f.Data {
			f.Data[i] = float64(i) + 0.5
		}
		st.Factors = append(st.Factors, f)
	}
	return st
}

func encodeState(t *testing.T, st *State) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStateRoundTrip(t *testing.T) {
	st := testState(t)
	got, err := ReadState(bytes.NewReader(encodeState(t, st)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Dims) != 2 || got.Dims[0] != 4 || got.Dims[1] != 3 {
		t.Fatalf("round-tripped dims %v", got.Dims)
	}
	for m := range st.Factors {
		if d := mat.MaxAbsDiff(got.Factors[m], st.Factors[m]); d != 0 {
			t.Fatalf("mode %d differs by %g after round trip", m, d)
		}
	}
}

// TestStateCorruptionDetected: every way a checkpoint file can be
// damaged — truncated header, truncated payload, flipped payload bit,
// wrong magic — must surface as the typed ErrCorruptState, never as a
// successfully decoded wrong state or a generic decode error.
func TestStateCorruptionDetected(t *testing.T) {
	good := encodeState(t, testState(t))
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x01
	badMagic := append([]byte(nil), good...)
	copy(badMagic, "NOPE")
	for name, data := range map[string][]byte{
		"empty":             nil,
		"truncated header":  good[:stateHdrLen-3],
		"truncated payload": good[:len(good)-5],
		"flipped bit":       flipped,
		"bad magic":         badMagic,
		"missing envelope":  good[stateHdrLen:],
	} {
		_, err := ReadState(bytes.NewReader(data))
		if !errors.Is(err, ErrCorruptState) {
			t.Fatalf("%s: error = %v, want ErrCorruptState", name, err)
		}
	}
}

// TestStateFutureVersionRejected: a higher format version is refused
// with a message naming both versions, but NOT as corruption — the file
// may be intact and readable by a newer build.
func TestStateFutureVersionRejected(t *testing.T) {
	data := encodeState(t, testState(t))
	binary.LittleEndian.PutUint32(data[4:], stateVersionSteps+1)
	_, err := ReadState(bytes.NewReader(data))
	if err == nil || errors.Is(err, ErrCorruptState) {
		t.Fatalf("future version: error = %v, want a non-corrupt version error", err)
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("version error does not say so: %v", err)
	}
}

// TestStateStepsRoundTrip: the version-2 envelope carries the stream
// step counter through a round trip, and ReadState reads it too
// (discarding the counter).
func TestStateStepsRoundTrip(t *testing.T) {
	st := testState(t)
	var buf bytes.Buffer
	if err := WriteStateSteps(&buf, st, 42); err != nil {
		t.Fatal(err)
	}
	got, steps, err := ReadStateSteps(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if steps != 42 {
		t.Fatalf("steps = %d, want 42", steps)
	}
	for m := range st.Factors {
		if d := mat.MaxAbsDiff(got.Factors[m], st.Factors[m]); d != 0 {
			t.Fatalf("mode %d differs by %g after round trip", m, d)
		}
	}
	if alt, err := ReadState(bytes.NewReader(buf.Bytes())); err != nil || alt.Dims[0] != st.Dims[0] {
		t.Fatalf("ReadState on a v2 envelope: %v %v", alt, err)
	}
}

// TestStateStepsReadsV1: a version-1 checkpoint — written before the
// counter existed — reads back through ReadStateSteps with step count
// zero, so old checkpoint files stay loadable.
func TestStateStepsReadsV1(t *testing.T) {
	st := testState(t)
	got, steps, err := ReadStateSteps(bytes.NewReader(encodeState(t, st)))
	if err != nil {
		t.Fatal(err)
	}
	if steps != 0 {
		t.Fatalf("v1 envelope reports %d steps, want 0", steps)
	}
	for m := range st.Factors {
		if d := mat.MaxAbsDiff(got.Factors[m], st.Factors[m]); d != 0 {
			t.Fatalf("mode %d differs by %g reading v1", m, d)
		}
	}
}

// TestStateV1BytesUnchanged: WriteState must keep emitting version-1
// bytes — equal states produce equal files regardless of the writer's
// streaming position, which checkpoint byte comparisons rely on.
func TestStateV1BytesUnchanged(t *testing.T) {
	data := encodeState(t, testState(t))
	if v := binary.LittleEndian.Uint32(data[4:]); v != stateVersion {
		t.Fatalf("WriteState emits version %d, want %d", v, stateVersion)
	}
}
