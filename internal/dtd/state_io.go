package dtd

import (
	"encoding/gob"
	"fmt"
	"io"

	"dismastd/internal/mat"
)

// EmptyState returns the degenerate previous state of an order-N
// stream before any data: zero-size modes and empty factors. A DTD (or
// DisMASTD) step from the empty state reduces exactly to static CP-ALS
// of the snapshot — the complement is the whole tensor and the
// old-region terms vanish — which is how cmd/worker bootstraps a
// distributed decomposition with no prior factors.
func EmptyState(order, rank int) *State {
	if order <= 0 || rank <= 0 {
		panic(fmt.Sprintf("dtd: EmptyState(%d, %d)", order, rank))
	}
	st := &State{Dims: make([]int, order)}
	for i := 0; i < order; i++ {
		st.Factors = append(st.Factors, mat.New(0, rank))
	}
	return st
}

// WriteState gob-encodes a state (factors are gob-friendly).
func WriteState(w io.Writer, s *State) error {
	return gob.NewEncoder(w).Encode(s)
}

// ReadState decodes a state written by WriteState and validates its
// shape.
func ReadState(r io.Reader) (*State, error) {
	var s State
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("dtd: decode state: %w", err)
	}
	if len(s.Dims) == 0 || len(s.Factors) != len(s.Dims) {
		return nil, fmt.Errorf("dtd: decoded state has %d dims, %d factors", len(s.Dims), len(s.Factors))
	}
	for m, f := range s.Factors {
		if f == nil || f.Rows != s.Dims[m] {
			return nil, fmt.Errorf("dtd: decoded factor %d inconsistent with dims", m)
		}
	}
	return &s, nil
}
