package dtd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"dismastd/internal/mat"
)

// ErrCorruptState marks a state file (or byte stream) that is damaged:
// truncated, bit-flipped, or not a state envelope at all. Callers with
// older copies — checkpoint chains most of all — can match it with
// errors.Is and fall back instead of aborting the run.
var ErrCorruptState = errors.New("dtd: corrupt state")

// State files carry a fixed envelope ahead of a canonical payload so a
// damaged checkpoint is detected as such rather than decoding into
// nonsense:
//
//	4 bytes  magic "DMST"
//	4 bytes  format version, little-endian (1 or 2)
//	8 bytes  payload length, little-endian
//	4 bytes  CRC-32 (IEEE) of the payload, little-endian
//	N bytes  payload: u32 order, then per mode u32 rows, u32 cols,
//	         rows*cols float64 bit patterns — all little-endian
//
// Version 2 prefixes the version-1 payload with one u64: the stream's
// step counter, so a resumed stream keeps reporting snapshot indices
// where it left off (WriteStateSteps/ReadStateSteps). Both readers
// accept both versions — a version-1 file reads back with step count
// zero — but WriteState keeps emitting version-1 bytes: equal states
// must keep producing equal files regardless of how far the writer had
// streamed, which is what the crash-recovery byte comparisons check.
//
// The payload layout is deliberately not gob: gob numbers type
// descriptors from a process-global counter, so two processes with
// different encode histories (a worker that has pushed messages
// through its gob-based transport versus one that has not) serialize
// the same state to different bytes. The fixed layout is canonical —
// equal states always produce equal files — which is what lets the
// crash-recovery tests compare resumed and uninterrupted runs with a
// plain byte comparison, and float64 bit patterns round-trip exactly.
const (
	stateMagic        = "DMST"
	stateVersion      = 1
	stateVersionSteps = 2
	stateHdrLen       = 20
)

// EmptyState returns the degenerate previous state of an order-N
// stream before any data: zero-size modes and empty factors. A DTD (or
// DisMASTD) step from the empty state reduces exactly to static CP-ALS
// of the snapshot — the complement is the whole tensor and the
// old-region terms vanish — which is how cmd/worker bootstraps a
// distributed decomposition with no prior factors.
func EmptyState(order, rank int) *State {
	if order <= 0 || rank <= 0 {
		panic(fmt.Sprintf("dtd: EmptyState(%d, %d)", order, rank))
	}
	st := &State{Dims: make([]int, order)}
	for i := 0; i < order; i++ {
		st.Factors = append(st.Factors, mat.New(0, rank))
	}
	return st
}

// WriteState encodes a state as a checksummed, versioned envelope
// around the canonical payload (format version 1 — no step counter).
func WriteState(w io.Writer, s *State) error {
	payload, err := encodeStatePayload(nil, s)
	if err != nil {
		return err
	}
	return writeStateEnvelope(w, stateVersion, payload)
}

// WriteStateSteps encodes a state together with the stream's step
// counter as a version-2 envelope.
func WriteStateSteps(w io.Writer, s *State, steps uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], steps)
	payload, err := encodeStatePayload(b[:], s)
	if err != nil {
		return err
	}
	return writeStateEnvelope(w, stateVersionSteps, payload)
}

// encodeStatePayload appends the canonical factor payload to prefix.
func encodeStatePayload(prefix []byte, s *State) ([]byte, error) {
	if len(s.Factors) != len(s.Dims) {
		return nil, fmt.Errorf("dtd: state has %d dims, %d factors", len(s.Dims), len(s.Factors))
	}
	n := len(prefix) + 4
	for _, f := range s.Factors {
		n += 8 + 8*len(f.Data)
	}
	payload := make([]byte, 0, n)
	payload = append(payload, prefix...)
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(len(s.Factors)))
	payload = append(payload, b[:4]...)
	for m, f := range s.Factors {
		if f == nil || f.Rows != s.Dims[m] || len(f.Data) != f.Rows*f.Cols {
			return nil, fmt.Errorf("dtd: factor %d inconsistent with dims %v", m, s.Dims)
		}
		binary.LittleEndian.PutUint32(b[:4], uint32(f.Rows))
		binary.LittleEndian.PutUint32(b[4:8], uint32(f.Cols))
		payload = append(payload, b[:8]...)
		for _, v := range f.Data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			payload = append(payload, b[:]...)
		}
	}
	return payload, nil
}

func writeStateEnvelope(w io.Writer, version uint32, payload []byte) error {
	hdr := make([]byte, stateHdrLen)
	copy(hdr, stateMagic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadState decodes a state written by WriteState (or
// WriteStateSteps, discarding the step counter), verifying the
// envelope — magic, version, length, checksum — before trusting the
// payload. Damage of any kind comes back wrapping ErrCorruptState; a
// version from a future format is its own error, since the file may be
// perfectly intact.
func ReadState(r io.Reader) (*State, error) {
	s, _, err := ReadStateSteps(r)
	return s, err
}

// ReadStateSteps decodes a state envelope of either version and
// returns the stream step counter it carries — zero for a version-1
// file, which predates the counter.
func ReadStateSteps(r io.Reader) (*State, uint64, error) {
	hdr := make([]byte, stateHdrLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated header: %v", ErrCorruptState, err)
	}
	if string(hdr[:4]) != stateMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrCorruptState, hdr[:4])
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if version != stateVersion && version != stateVersionSteps {
		return nil, 0, fmt.Errorf("dtd: state format version %d, this build reads %d and %d", version, stateVersion, stateVersionSteps)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	want := binary.LittleEndian.Uint32(hdr[16:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated payload: %v", ErrCorruptState, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, fmt.Errorf("%w: checksum %08x, header says %08x", ErrCorruptState, got, want)
	}
	var steps uint64
	if version == stateVersionSteps {
		if len(payload) < 8 {
			return nil, 0, fmt.Errorf("%w: step counter missing from %d-byte payload", ErrCorruptState, len(payload))
		}
		steps = binary.LittleEndian.Uint64(payload)
		payload = payload[8:]
	}
	s, err := decodeStatePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return s, steps, nil
}

// decodeStatePayload decodes the canonical factor payload. The
// envelope checksum already passed, so structural damage here means
// the writer was broken, not the storage — still corrupt from the
// caller's view.
func decodeStatePayload(payload []byte) (*State, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: payload of %d bytes", ErrCorruptState, len(payload))
	}
	order := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if order <= 0 {
		return nil, fmt.Errorf("%w: state of order %d", ErrCorruptState, order)
	}
	s := &State{Dims: make([]int, order)}
	for m := 0; m < order; m++ {
		if len(payload) < 8 {
			return nil, fmt.Errorf("%w: factor %d header missing", ErrCorruptState, m)
		}
		rows := int(binary.LittleEndian.Uint32(payload))
		cols := int(binary.LittleEndian.Uint32(payload[4:]))
		payload = payload[8:]
		if rows < 0 || cols <= 0 || len(payload) < 8*rows*cols {
			return nil, fmt.Errorf("%w: factor %d of %dx%d in %d bytes", ErrCorruptState, m, rows, cols, len(payload))
		}
		f := mat.New(rows, cols)
		for i := range f.Data {
			f.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		payload = payload[8*rows*cols:]
		s.Dims[m] = rows
		s.Factors = append(s.Factors, f)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorruptState, len(payload))
	}
	return s, nil
}
