package dtd

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dismastd/internal/cp"
	"dismastd/internal/mat"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// denseLowRank materialises every cell of a rank-r Kruskal model over
// dims, so prefixes of it are exactly low-rank streaming snapshots.
func denseLowRank(dims []int, r int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	factors := make([]*mat.Dense, len(dims))
	for m, d := range dims {
		factors[m] = mat.RandomUniform(d, r, src)
	}
	b := tensor.NewBuilder(dims)
	var walk func(idx []int, m int)
	walk = func(idx []int, m int) {
		if m == len(dims) {
			b.Append(idx, cp.Reconstruct(factors, idx))
			return
		}
		for i := 0; i < dims[m]; i++ {
			idx[m] = i
			walk(idx, m+1)
		}
	}
	walk(make([]int, len(dims)), 0)
	return b.Build()
}

func sparseRandom(dims []int, nnz int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.Float64()+0.5)
	}
	return b.Build()
}

func TestInitMatchesCP(t *testing.T) {
	x := denseLowRank([]int{6, 6, 6}, 2, 1)
	st, stats, err := Init(x, Options{Rank: 2, MaxIters: 100, Tol: 1e-10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fit := 1 - stats.Loss/x.Norm(); fit < 0.995 {
		t.Fatalf("init fit %v too low (loss %v)", fit, stats.Loss)
	}
	for m, d := range x.Dims {
		if st.Factors[m].Rows != d {
			t.Fatalf("factor %d has %d rows, want %d", m, st.Factors[m].Rows, d)
		}
	}
}

func TestStepTracksGrowingLowRankTensor(t *testing.T) {
	full := denseLowRank([]int{10, 9, 8}, 2, 2)
	seq, err := tensor.NewSequence(full, [][]int{{7, 6, 6}, {8, 8, 7}, {10, 9, 8}})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rank: 2, MaxIters: 120, Tol: 1e-12, Mu: 0.8, Seed: 5}
	st, _, err := Init(seq.Snapshot(0), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < seq.Len(); i++ {
		snap := seq.Snapshot(i)
		var stats *Stats
		st, stats, err = Step(st, snap, opts)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ComplementNNZ != snap.NNZ()-seq.Snapshot(i-1).NNZ() {
			t.Fatalf("step %d complement nnz %d", i, stats.ComplementNNZ)
		}
		// The actual reconstruction of the snapshot must be good: the
		// data is exactly rank 2, so the fit should be near-perfect.
		loss := cp.LossAgainst(snap, st.Factors)
		if fit := 1 - loss/snap.Norm(); fit < 0.98 {
			t.Fatalf("step %d fit %v too low", i, fit)
		}
	}
}

func TestLossMatchesDefinitionalForm(t *testing.T) {
	full := sparseRandom([]int{12, 11, 10}, 600, 7)
	prevDims := []int{9, 8, 8}
	prevSnap := full.Prefix(prevDims)
	opts := Options{Rank: 3, MaxIters: 8, Mu: 0.7, Seed: 9}
	prev, _, err := Init(prevSnap, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, stats, err := Step(prev, full, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct := LossAgainst(prev, full, cur, 0.7)
	if math.Abs(direct-stats.Loss) > 1e-6*(1+direct) {
		t.Fatalf("reuse loss %v != definitional loss %v", stats.Loss, direct)
	}
}

func TestLossMonotoneNonIncreasing(t *testing.T) {
	full := sparseRandom([]int{15, 12, 10}, 800, 11)
	prev, _, err := Init(full.Prefix([]int{11, 9, 8}), Options{Rank: 4, MaxIters: 20, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Step(prev, full, Options{Rank: 4, MaxIters: 15, Tol: 0, Mu: 0.8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(stats.LossTrace); i++ {
		if stats.LossTrace[i] > stats.LossTrace[i-1]*(1+1e-9)+1e-9 {
			t.Fatalf("loss increased at sweep %d: %v -> %v", i, stats.LossTrace[i-1], stats.LossTrace[i])
		}
	}
}

func TestStepWithNoGrowthIsStable(t *testing.T) {
	// Same dims, no new data: the complement is empty, and with the
	// previous factors as the optimum of the old-region term the state
	// should barely move.
	x := denseLowRank([]int{7, 7, 7}, 2, 15)
	opts := Options{Rank: 2, MaxIters: 200, Tol: 1e-13, Seed: 17}
	prev, _, err := Init(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, stats, err := Step(prev, x, Options{Rank: 2, MaxIters: 5, Mu: 0.8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ComplementNNZ != 0 {
		t.Fatalf("complement nnz %d, want 0", stats.ComplementNNZ)
	}
	loss := cp.LossAgainst(x, cur.Factors)
	if fit := 1 - loss/x.Norm(); fit < 0.99 {
		t.Fatalf("no-growth step degraded fit to %v", fit)
	}
}

func TestStepGrowthInSingleMode(t *testing.T) {
	// Traditional one-mode streaming is a special case of multi-aspect.
	full := denseLowRank([]int{8, 6, 6}, 2, 19)
	opts := Options{Rank: 2, MaxIters: 150, Tol: 1e-12, Seed: 21}
	prev, _, err := Init(full.Prefix([]int{5, 6, 6}), opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := Step(prev, full, opts)
	if err != nil {
		t.Fatal(err)
	}
	loss := cp.LossAgainst(full, cur.Factors)
	if fit := 1 - loss/full.Norm(); fit < 0.98 {
		t.Fatalf("single-mode growth fit %v", fit)
	}
}

func TestStepValidation(t *testing.T) {
	x := sparseRandom([]int{5, 5, 5}, 40, 23)
	prev, _, err := Init(x, Options{Rank: 2, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Shrinking mode.
	smaller := sparseRandom([]int{4, 5, 5}, 30, 25)
	if _, _, err := Step(prev, smaller, Options{Rank: 2}); err == nil {
		t.Fatal("shrinking snapshot accepted")
	}
	// Wrong order.
	wrongOrder := sparseRandom([]int{5, 5}, 20, 27)
	if _, _, err := Step(prev, wrongOrder, Options{Rank: 2}); err == nil {
		t.Fatal("wrong-order snapshot accepted")
	}
	// Bad options.
	if _, _, err := Step(prev, x, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, _, err := Step(prev, x, Options{Rank: 2, Mu: 1.5}); err == nil {
		t.Fatal("mu > 1 accepted")
	}
	if _, _, err := Step(prev, x, Options{Rank: 2, Mu: -0.1}); err == nil {
		t.Fatal("mu < 0 accepted")
	}
	// Rank mismatch with previous factors.
	if _, _, err := Step(prev, x, Options{Rank: 3}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestStateCloneIsDeep(t *testing.T) {
	x := sparseRandom([]int{4, 4, 4}, 20, 29)
	st, _, err := Init(x, Options{Rank: 2, MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := st.Clone()
	c.Factors[0].Set(0, 0, 999)
	if st.Factors[0].At(0, 0) == 999 {
		t.Fatal("Clone shares factor storage")
	}
	c.Dims[0] = 999
	if st.Dims[0] == 999 {
		t.Fatal("Clone shares dims")
	}
}

func TestDeterministic(t *testing.T) {
	full := sparseRandom([]int{10, 10, 10}, 300, 31)
	opts := Options{Rank: 3, MaxIters: 6, Seed: 33}
	run := func() *State {
		prev, _, err := Init(full.Prefix([]int{7, 7, 7}), opts)
		if err != nil {
			t.Fatal(err)
		}
		cur, _, err := Step(prev, full, opts)
		if err != nil {
			t.Fatal(err)
		}
		return cur
	}
	a, b := run(), run()
	for m := range a.Factors {
		if mat.MaxAbsDiff(a.Factors[m], b.Factors[m]) != 0 {
			t.Fatalf("mode %d differs across identical runs", m)
		}
	}
}

func TestFourthOrderStep(t *testing.T) {
	full := denseLowRank([]int{6, 5, 4, 4}, 2, 35)
	opts := Options{Rank: 2, MaxIters: 150, Tol: 1e-12, Seed: 37}
	prev, _, err := Init(full.Prefix([]int{4, 4, 3, 3}), opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := Step(prev, full, opts)
	if err != nil {
		t.Fatal(err)
	}
	loss := cp.LossAgainst(full, cur.Factors)
	if fit := 1 - loss/full.Norm(); fit < 0.97 {
		t.Fatalf("4th-order streaming fit %v", fit)
	}
}

func BenchmarkStep(b *testing.B) {
	full := sparseRandom([]int{2000, 2000, 400}, 200000, 41)
	prevDims := []int{1800, 1800, 360}
	opts := Options{Rank: 10, MaxIters: 1, Seed: 43}
	prev, _, err := Init(full.Prefix(prevDims), Options{Rank: 10, MaxIters: 2, Seed: 43})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Step(prev, full, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEmptyStateStepEqualsStaticALS(t *testing.T) {
	// A step from the empty state must reduce to plain CP-ALS: same
	// factors as cp.DecomposeFrom with the same initial matrices.
	x := sparseRandom([]int{10, 9, 8}, 300, 101)
	opts := Options{Rank: 3, MaxIters: 5, Tol: 0, Mu: 0.8, Seed: 103}
	st, stats, err := Step(EmptyState(3, 3), x, opts)
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(103)
	init := make([]*mat.Dense, 3)
	for m, d := range x.Dims {
		init[m] = mat.RandomUniform(d, 3, src)
	}
	want, err := cp.DecomposeFrom(x, init, cp.Options{Rank: 3, MaxIters: 5, Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	for m := range st.Factors {
		if d := mat.MaxAbsDiff(st.Factors[m], want.Factors[m]); d > 1e-9 {
			t.Fatalf("mode %d differs from static ALS by %v", m, d)
		}
	}
	if math.Abs(stats.Loss-want.Loss) > 1e-8*(1+want.Loss) {
		t.Fatalf("loss %v vs static %v", stats.Loss, want.Loss)
	}
}

func TestStateIORoundtrip(t *testing.T) {
	x := sparseRandom([]int{6, 5, 4}, 60, 105)
	st, _, err := Init(x, Options{Rank: 2, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for m := range st.Factors {
		if mat.MaxAbsDiff(st.Factors[m], got.Factors[m]) != 0 {
			t.Fatalf("mode %d changed in roundtrip", m)
		}
	}
	if _, err := ReadState(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage state accepted")
	}
}

func TestEmptyStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	EmptyState(0, 2)
}

func TestSecondOrderStream(t *testing.T) {
	// Order 2 is the matrix special case: the machinery must handle it.
	full := denseLowRank([]int{12, 10}, 2, 107)
	opts := Options{Rank: 2, MaxIters: 150, Tol: 1e-12, Seed: 109}
	prev, _, err := Init(full.Prefix([]int{9, 8}), opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := Step(prev, full, opts)
	if err != nil {
		t.Fatal(err)
	}
	loss := cp.LossAgainst(full, cur.Factors)
	if fit := 1 - loss/full.Norm(); fit < 0.98 {
		t.Fatalf("order-2 streaming fit %v", fit)
	}
}

func TestFifthOrderStep(t *testing.T) {
	full := denseLowRank([]int{5, 4, 4, 3, 3}, 2, 111)
	opts := Options{Rank: 2, MaxIters: 100, Tol: 1e-12, Seed: 113}
	prev, _, err := Init(full.Prefix([]int{4, 3, 3, 3, 2}), opts)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := Step(prev, full, opts)
	if err != nil {
		t.Fatal(err)
	}
	loss := cp.LossAgainst(full, cur.Factors)
	if fit := 1 - loss/full.Norm(); fit < 0.95 {
		t.Fatalf("5th-order streaming fit %v", fit)
	}
}
