package dtd

import (
	"fmt"
	"testing"

	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/obs"
	"dismastd/internal/par"
	"dismastd/internal/xrand"
)

// TestIterationAllocFree pins the tentpole property of the workspace
// refactor: once the iteration's buffers are warm, a full DTD sweep —
// the Eq. (5) updates over every mode plus the Eq. (4) loss — performs
// zero heap allocations. The iteration runs with a live observability
// bundle so the span and counter instrumentation is inside the
// measured region, and the property must hold both sequentially and
// with a live pool (threads > 1), where chunks draw scratch from
// per-thread workspaces.
func TestIterationAllocFree(t *testing.T) {
	for _, kind := range []layout.Kind{layout.COO, layout.Compiled} {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("layout=%s/threads=%d", kind, threads), func(t *testing.T) {
				full := sparseRandom([]int{12, 10, 8}, 600, 5)
				prevSnap := full.Prefix([]int{9, 8, 6})
				opts := Options{Rank: 3, MaxIters: 5, Mu: 0.7, Seed: 11, Threads: threads, Layout: kind, Obs: obs.New()}
				prev, _, err := Init(prevSnap, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts, err = opts.withDefaults()
				if err != nil {
					t.Fatal(err)
				}

				comp := full.Complement(prev.Dims)
				src := xrand.New(opts.Seed)
				stacked := make([]*mat.Dense, full.Order())
				for m := 0; m < full.Order(); m++ {
					growth := mat.RandomUniform(full.Dims[m]-prev.Dims[m], opts.Rank, src)
					stacked[m] = mat.StackRows(prev.Factors[m], growth)
				}
				pool := par.New(opts.Threads)
				defer pool.Close()
				it := newIteration(prev, comp, stacked, prev.Dims, opts, pool)

				pass := func() {
					it.sweep()
					if it.loss() < 0 {
						t.Fatal("negative loss")
					}
				}
				pass() // warm-up: workspace slabs grow to their running maximum
				if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
					t.Fatalf("steady-state DTD iteration allocates %v times per sweep, want 0", allocs)
				}
			})
		}
	}
}
