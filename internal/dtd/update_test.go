package dtd

import (
	"math"
	"testing"

	"dismastd/internal/mat"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// eventStream draws nnz random events inside dims as flat entry-major
// coords plus values, the Updater's input convention.
func eventStream(dims []int, nnz int, seed uint64) ([]int32, []float64) {
	src := xrand.New(seed)
	n := len(dims)
	coords := make([]int32, 0, nnz*n)
	vals := make([]float64, 0, nnz)
	for e := 0; e < nnz; e++ {
		for _, d := range dims {
			coords = append(coords, int32(src.Intn(d)))
		}
		vals = append(vals, src.Float64()+0.5)
	}
	return coords, vals
}

func anchoredUpdater(t *testing.T, dims []int, o Options) (*Updater, *State) {
	t.Helper()
	st, _, err := Init(sparseRandom(dims, 60, 11), o)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(st, o)
	if err != nil {
		t.Fatal(err)
	}
	return u, st
}

// TestUpdaterMaintainsGrams drives batches (including a growth step)
// through Apply and checks the incrementally maintained Gram blocks
// against definitional recomputation from the live factors — the
// invariant every Eq. (5) denominator rests on.
func TestUpdaterMaintainsGrams(t *testing.T) {
	opts := Options{Rank: 3, MaxIters: 20, Seed: 7}
	u, st := anchoredUpdater(t, []int{6, 5, 4}, opts)
	anchor := append([]int(nil), st.Dims...)

	coords, vals := eventStream(st.Dims, 12, 3)
	u.Apply(coords[:4*3], vals[:4])
	if err := u.Grow([]int{8, 5, 5}); err != nil {
		t.Fatal(err)
	}
	grown, gvals := eventStream([]int{8, 5, 5}, 6, 4)
	u.Apply(grown, gvals)
	u.Apply(coords[4*3:], vals[4:])

	if u.Events() != 18 || u.Pending() != 18 {
		t.Fatalf("events/pending = %d/%d, want 18/18", u.Events(), u.Pending())
	}
	for m, f := range st.Factors {
		a0 := f.SliceRows(0, anchor[m])
		a1 := f.SliceRows(anchor[m], f.Rows)
		if diff := mat.MaxAbsDiff(mat.Gram(a0), u.gram0[m]); diff > 1e-9 {
			t.Fatalf("mode %d: maintained gram0 off by %g", m, diff)
		}
		if diff := mat.MaxAbsDiff(mat.Gram(a1), u.gram1[m]); diff > 1e-9 {
			t.Fatalf("mode %d: maintained gram1 off by %g", m, diff)
		}
		if diff := mat.MaxAbsDiff(mat.CrossGram(u.tilde[m], a0), u.cross[m]); diff > 1e-9 {
			t.Fatalf("mode %d: maintained cross off by %g", m, diff)
		}
	}
}

// TestUpdaterRowMatchesEq5 checks one touched anchor row against the
// update rule computed definitionally: the per-row MTTKRP numerator
// plus the μ-weighted history term, solved against D_0 built from the
// pre-update Gram blocks.
func TestUpdaterRowMatchesEq5(t *testing.T) {
	opts := Options{Rank: 2, MaxIters: 20, Seed: 9}
	u, st := anchoredUpdater(t, []int{5, 4, 3}, opts)
	r := opts.Rank

	// Snapshot the mode-0 denominators before the batch lands.
	eqDenominators(u.d1, u.g0prod, u.hprod, u.sum, u.gram0, u.gram1, u.cross, 0)
	d1 := u.d1.Clone()
	hprod := u.hprod.Clone()
	d0 := mat.New(r, r)
	d0.Scale(-(1 - u.opts.Mu), u.g0prod)
	d0.Add(d0, d1)
	tilde := u.tilde[0].Clone()

	coords := []int32{2, 1, 0, 2, 3, 2}
	vals := []float64{1.25, -0.5}
	factors := make([]*mat.Dense, len(st.Factors))
	for m, f := range st.Factors {
		factors[m] = f.Clone()
	}
	u.Apply(coords, vals)

	// num = Σ_e v_e · ∏_{k≠0} A_k[c_k] + μ · ã_2 · hprod, against the
	// pre-update factors (mode 0 is solved before modes 1 and 2 move).
	num := mat.New(1, r)
	for e := 0; e < 2; e++ {
		for c := 0; c < r; c++ {
			p := vals[e]
			for k := 1; k < 3; k++ {
				p *= factors[k].At(int(coords[e*3+k]), c)
			}
			num.Data[c] += p
		}
	}
	for s := 0; s < r; s++ {
		for c := 0; c < r; c++ {
			num.Data[c] += u.opts.Mu * tilde.At(2, s) * hprod.At(s, c)
		}
	}
	want := mat.New(1, r)
	mat.SolveRightRidgeInto(want, num, d0, mat.NewWorkspace())
	got := st.Factors[0].SliceRows(2, 3)
	if diff := mat.MaxAbsDiff(want, got); diff > 1e-10 {
		t.Fatalf("row update differs from definitional Eq. (5) solve by %g", diff)
	}
}

// TestUpdaterImprovesFit feeds a low-rank tensor's new slices as
// events and checks the bounded-work updates actually move the factors
// toward the data: the reconstruction error over the pending entries
// must drop well below leaving the anchor factors untouched.
func TestUpdaterImprovesFit(t *testing.T) {
	full := denseLowRank([]int{8, 7, 6}, 2, 21)
	seq, err := tensor.NewSequence(full, [][]int{{6, 5, 5}, {8, 7, 6}})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rank: 2, MaxIters: 80, Tol: 1e-10, Seed: 5}
	st, _, err := Init(seq.Snapshot(0), opts)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Grow([]int{8, 7, 6}); err != nil {
		t.Fatal(err)
	}
	frozen := st.Clone()
	comp := seq.Snapshot(1).Complement([]int{6, 5, 5})
	idx := make([]int, 3)
	coords := make([]int32, 3)
	before, after := 0.0, 0.0
	for e := 0; e < comp.NNZ(); e++ {
		idx = comp.Coord(e, idx)
		for m, c := range idx {
			coords[m] = int32(c)
		}
		u.Apply(coords, []float64{comp.Val(e)})
	}
	for e := 0; e < comp.NNZ(); e++ {
		idx = comp.Coord(e, idx)
		v := comp.Val(e)
		before += sq(v - reconstructAt(frozen.Factors, idx))
		after += sq(v - reconstructAt(st.Factors, idx))
	}
	if u.RowsTouched() == 0 {
		t.Fatal("no rows touched")
	}
	if after > before*0.25 {
		t.Fatalf("event updates left pending-region error at %g (untouched %g)", math.Sqrt(after), math.Sqrt(before))
	}
}

func sq(v float64) float64 { return v * v }

func reconstructAt(factors []*mat.Dense, idx []int) float64 {
	out := 0.0
	for c := 0; c < factors[0].Cols; c++ {
		p := 1.0
		for m, f := range factors {
			p *= f.At(idx[m], c)
		}
		out += p
	}
	return out
}

// TestUpdaterResetReanchors checks Reset against a freshly built
// updater: same anchor, empty pending region, zeroed growth grams.
func TestUpdaterResetReanchors(t *testing.T) {
	opts := Options{Rank: 2, MaxIters: 10, Seed: 3}
	u, st := anchoredUpdater(t, []int{5, 4, 3}, opts)
	coords, vals := eventStream(st.Dims, 8, 6)
	u.Apply(coords, vals)

	u.Reset(st)
	fresh, err := NewUpdater(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if u.Pending() != 0 || u.Events() != 0 || u.RowsTouched() != 0 {
		t.Fatal("Reset kept pending state")
	}
	for m := range st.Factors {
		if mat.MaxAbsDiff(u.gram0[m], fresh.gram0[m]) != 0 ||
			mat.MaxAbsDiff(u.gram1[m], fresh.gram1[m]) != 0 ||
			mat.MaxAbsDiff(u.cross[m], fresh.cross[m]) != 0 ||
			mat.MaxAbsDiff(u.tilde[m], fresh.tilde[m]) != 0 {
			t.Fatalf("mode %d: Reset state differs from a fresh updater", m)
		}
	}
}

func TestUpdaterGrowRejectsShrink(t *testing.T) {
	u, _ := anchoredUpdater(t, []int{5, 4, 3}, Options{Rank: 2, MaxIters: 5})
	if err := u.Grow([]int{4, 4, 3}); err == nil {
		t.Fatal("shrinking Grow did not error")
	}
	if err := u.Grow([]int{5, 4}); err == nil {
		t.Fatal("order-changing Grow did not error")
	}
}

// TestUpdaterApplyNoAllocWarm pins the acceptance criterion: a warmed
// steady-state micro-batch update performs zero heap allocations.
func TestUpdaterApplyNoAllocWarm(t *testing.T) {
	opts := Options{Rank: 4, MaxIters: 10, Seed: 2}
	u, st := anchoredUpdater(t, []int{8, 8, 8}, opts)
	coords, vals := eventStream(st.Dims, 6, 13)
	for i := 0; i < 4; i++ { // warm delta capacity and workspace slots
		u.Apply(coords, vals)
	}
	u.Reset(st)
	allocs := testing.AllocsPerRun(50, func() {
		u.Reset(st)
		for i := 0; i < 3; i++ {
			u.Apply(coords, vals)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed Apply allocates %v per run", allocs)
	}
}
