// Package dtd implements the Dynamic Tensor Decomposition of
// Algorithm 1 for multi-aspect streaming tensors of arbitrary order —
// the centralized algorithm DisMASTD distributes.
//
// Given the previous snapshot's CP factors {Ã_n} and the new snapshot
// X, DTD splits each factor into an old-region block A_n^(0) (rows
// 0..I_n) initialised from Ã_n and a growth block A_n^(1) (rows
// I_n..I_n+d_n) initialised randomly, then alternates the update rules
// of Eq. (5):
//
//	A_n^(0) ← [ μ·Ã_n·(∗_{k≠n} Ã_kᵀA_k^(0)) + M_n^(0) ] · D_0⁻¹
//	A_n^(1) ←                               M_n^(1)   · D_1⁻¹
//	D_1 = ∗_{k≠n}(A_kᵀA_k),  D_0 = D_1 − (1−μ)·∗_{k≠n}(A_k^(0)ᵀA_k^(0))
//
// where M_n is the MTTKRP of the relative complement X \ X̃ with the
// full stacked factors — the only place the tensor data appears, which
// is why the old snapshot's entries never need to be touched again.
package dtd

import (
	"errors"
	"fmt"
	"math"

	"dismastd/internal/cp"
	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/obs"
	"dismastd/internal/par"
	"dismastd/internal/sample"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Options controls a DTD streaming step.
type Options struct {
	Rank     int     // R (required, > 0)
	MaxIters int     // maximum ALS sweeps per step; default 10 (the paper's setting)
	Tol      float64 // stop when the relative loss change falls below Tol; default 1e-6
	Mu       float64 // forgetting factor μ in (0, 1]; default 0.8 (the paper's setting)
	Seed     uint64  // growth-block initialisation seed; default 1

	// Threads sizes the shared-memory pool the sweep kernels run on.
	// 0 or 1 means sequential. Results are bitwise identical at every
	// value (see internal/par).
	Threads int

	// Layout selects the kernel representation (see internal/layout):
	// COO (default) or Compiled, which compiles each step's complement
	// once and amortises it over the step's sweeps. Factors are bitwise
	// identical under either.
	Layout layout.Kind

	// Solver selects the per-mode least-squares strategy: sample.Exact
	// (default) runs the full complement MTTKRP and the exact Gram
	// chains; sample.Sampled replaces the MTTKRP and the D₁ denominator
	// with the leverage-score sketch of internal/sample (the exact
	// R×R chains still supply the μ-weighted history terms). Bitwise
	// reproducible per seed at every thread count.
	Solver sample.Kind
	// Samples is the sketch size S per mode under the sampled solver;
	// 0 selects sample.DefaultSamples.
	Samples int

	// Obs receives the step's phase spans and counters. May be nil; all
	// handles are nil-safe, so instrumentation costs nothing when unset.
	Obs *obs.Obs
}

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if opts.Rank <= 0 {
		return opts, fmt.Errorf("dtd: rank must be positive, got %d", opts.Rank)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 10
	}
	if opts.Tol < 0 {
		return opts, fmt.Errorf("dtd: negative tolerance %v", opts.Tol)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-6
	}
	if opts.Mu == 0 {
		opts.Mu = 0.8
	}
	if opts.Mu < 0 || opts.Mu > 1 {
		return opts, fmt.Errorf("dtd: forgetting factor %v outside (0, 1]", opts.Mu)
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Threads < 0 {
		return opts, fmt.Errorf("dtd: negative thread count %d", opts.Threads)
	}
	if opts.Threads == 0 {
		opts.Threads = 1
	}
	if opts.Solver != sample.Exact && opts.Solver != sample.Sampled {
		return opts, fmt.Errorf("dtd: unknown solver %v", opts.Solver)
	}
	if opts.Samples < 0 {
		return opts, fmt.Errorf("dtd: negative sample count %d", opts.Samples)
	}
	if opts.Samples == 0 {
		opts.Samples = sample.DefaultSamples
	}
	return opts, nil
}

// State is the decomposition carried between streaming steps: the
// snapshot's mode sizes and one full factor matrix per mode.
type State struct {
	Dims    []int
	Factors []*mat.Dense
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	out := &State{Dims: append([]int(nil), s.Dims...)}
	for _, f := range s.Factors {
		out.Factors = append(out.Factors, f.Clone())
	}
	return out
}

// Stats reports what one streaming step did.
type Stats struct {
	Iters         int
	Loss          float64         // final √L of Eq. (4)
	LossTrace     []float64       // loss after each sweep
	ComplementNNZ int             // nnz(X \ X̃) — the data the step touched
	Phases        []obs.PhaseStat // per-phase wall time, when Options.Obs is set
}

// ErrDimsMismatch reports a snapshot incompatible with the previous
// state (wrong order, or a mode that shrank).
var ErrDimsMismatch = errors.New("dtd: snapshot dims incompatible with previous state")

// Init decomposes the first snapshot with static CP-ALS and returns the
// initial streaming state.
func Init(x *tensor.Tensor, o Options) (*State, *Stats, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	res, err := cp.Decompose(x, cp.Options{Rank: opts.Rank, MaxIters: opts.MaxIters, Tol: opts.Tol, Seed: opts.Seed, Threads: opts.Threads, Layout: opts.Layout, Solver: opts.Solver, Samples: opts.Samples, Obs: opts.Obs})
	if err != nil {
		return nil, nil, err
	}
	st := &State{Dims: append([]int(nil), x.Dims...), Factors: res.Factors}
	stats := &Stats{Iters: res.Iters, Loss: res.Loss, LossTrace: res.LossTrace, ComplementNNZ: x.NNZ()}
	return st, stats, nil
}

// Step advances the decomposition from prev to the new snapshot,
// touching only the relative complement of the two snapshots
// (Algorithm 1). prev is not modified.
func Step(prev *State, snapshot *tensor.Tensor, o Options) (*State, *Stats, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := checkGrowth(prev, snapshot, opts.Rank); err != nil {
		return nil, nil, err
	}

	n := snapshot.Order()
	oldDims := prev.Dims
	sp := opts.Obs.Span("plan/complement")
	comp := snapshot.Complement(oldDims)
	sp.End()

	// Stack old factors over randomly initialised growth blocks.
	src := xrand.New(opts.Seed)
	full := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		growth := mat.RandomUniform(snapshot.Dims[m]-oldDims[m], opts.Rank, src)
		full[m] = mat.StackRows(prev.Factors[m], growth)
	}

	pool := par.New(opts.Threads)
	defer pool.Close()
	it := newIteration(prev, comp, full, oldDims, opts, pool)
	if opts.Solver == sample.Sampled {
		ssp := opts.Obs.Span("plan/sample-index")
		smp, err := sample.New(comp, nil, opts.Rank, opts.Samples, opts.Seed, 0)
		ssp.End()
		if err != nil {
			return nil, nil, err
		}
		it.bindSampler(smp)
	}
	stats := &Stats{ComplementNNZ: comp.NNZ(), LossTrace: make([]float64, 0, opts.MaxIters)}
	prevLoss := math.Inf(1)
	for sweep := 0; sweep < opts.MaxIters; sweep++ {
		opts.Obs.SetIter(sweep)
		it.sweep()
		stats.Iters = sweep + 1
		lsp := opts.Obs.Span("loss")
		stats.Loss = it.loss()
		lsp.End()
		stats.LossTrace = append(stats.LossTrace, stats.Loss)
		if relChange(prevLoss, stats.Loss) < opts.Tol {
			break
		}
		prevLoss = stats.Loss
	}
	if opts.Obs != nil && opts.Obs.Trace != nil {
		stats.Phases = obs.AggregatePhases(opts.Obs.Trace.Phases())
	}
	return &State{Dims: append([]int(nil), snapshot.Dims...), Factors: full}, stats, nil
}

func checkGrowth(prev *State, snapshot *tensor.Tensor, rank int) error {
	if snapshot.Order() != len(prev.Dims) {
		return fmt.Errorf("%w: order %d vs %d", ErrDimsMismatch, snapshot.Order(), len(prev.Dims))
	}
	for m, d := range snapshot.Dims {
		if d < prev.Dims[m] {
			return fmt.Errorf("%w: mode %d shrank %d -> %d", ErrDimsMismatch, m, prev.Dims[m], d)
		}
	}
	for m, f := range prev.Factors {
		if f.Rows != prev.Dims[m] || f.Cols != rank {
			return fmt.Errorf("dtd: previous factor %d is %dx%d, want %dx%d", m, f.Rows, f.Cols, prev.Dims[m], rank)
		}
	}
	return nil
}

func relChange(prev, cur float64) float64 {
	if math.IsInf(prev, 1) {
		return math.Inf(1)
	}
	return math.Abs(prev-cur) / math.Max(prev, 1e-12)
}

// iteration holds the per-step working set: the complement tensor and
// its compiled-once mode kernels, the stacked factors, the cached Gram blocks the
// update rules and the loss both reuse (the paper's "maintain and reuse
// the intermediate results"), and every scratch buffer the sweep needs.
// All buffers are sized once in newIteration, so a steady-state sweep —
// sweep() plus loss() — performs zero heap allocations.
type iteration struct {
	opts    Options
	oldDims []int
	tilde   []*mat.Dense // previous snapshot factors Ã_n (read-only)
	full    []*mat.Dense // current stacked factors, updated in place
	comp    *tensor.Tensor
	kernels []mttkrp.Kernel

	gram0 []*mat.Dense // A_n^(0)ᵀ A_n^(0), refreshed in place
	gram1 []*mat.Dense // A_n^(1)ᵀ A_n^(1), refreshed in place
	cross []*mat.Dense // Ã_nᵀ A_n^(0), refreshed in place

	cTilde     float64 // Σ_{r,s} ∗_k (Ã_kᵀÃ_k) — precomputed constant
	compNormSq float64 // ‖X\X̃‖² — precomputed constant
	lastM      *mat.Dense

	ws       *mat.Workspace
	mbuf     []*mat.Dense // per-mode MTTKRP buffers, zeroed each sweep
	a0v, a1v []*mat.Dense // old/growth block views into full[m] (stable)
	m0v, m1v []*mat.Dense // old/growth block views into mbuf[m] (stable)
	d0, d1   *mat.Dense   // Eq. (5) denominators
	g0prod   *mat.Dense   // ∗_{k≠n} gram0[k]
	hprod    *mat.Dense   // ∗_{k≠n} cross[k]
	sum      *mat.Dense   // gram0[k]+gram1[k] scratch
	fullG    []*mat.Dense // per-mode gram0+gram1, rebuilt by loss()

	// Sampled-solver state (nil/unused under the exact solver): the
	// sketch Ĝ of the Khatri-Rao Gram overwrites d1 after the exact
	// R×R chains compute g0prod and hprod.
	smp *sample.Sampler
	gs  *mat.Dense

	// Parallel runtime: the step's pool, one workspace per pool
	// thread, and the pooled kernel/accumulator front-ends. With
	// Threads <= 1 the pool is nil and everything runs inline.
	pool *par.Pool
	wss  *mat.WorkspaceSet
	pk   *mat.ParKernels
	pacc *mttkrp.ParAccumulator

	// Instrumentation, pre-resolved so sweeps stay allocation-free: one
	// span-name set per mode plus the MTTKRP row counter. May be nil.
	obs     *obs.Obs
	names   []sweepNames
	cMttkrp *obs.Counter
}

// sweepNames are one mode's span names, formatted once at construction.
type sweepNames struct {
	mttkrp, chunk, solve, gram string
}

func newIteration(prev *State, comp *tensor.Tensor, full []*mat.Dense, oldDims []int, opts Options, pool *par.Pool) *iteration {
	n := len(full)
	r := opts.Rank
	it := &iteration{
		opts:       opts,
		oldDims:    oldDims,
		tilde:      prev.Factors,
		full:       full,
		comp:       comp,
		compNormSq: comp.NormSq(),
		ws:         mat.NewWorkspace(),
		pool:       pool,
	}
	it.wss = mat.NewWorkspaceSet(pool.Threads())
	it.pk = mat.NewParKernels(pool, it.wss)
	it.pacc = mttkrp.NewParAccumulator(pool, it.wss, opts.Obs)
	gramsTilde := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		gramsTilde[m] = mat.Gram(prev.Factors[m])
		it.kernels = append(it.kernels, mttkrp.NewKernel(comp, m, opts.Layout))
	}
	it.cTilde = mat.SumAll(mat.HadamardAll(gramsTilde...))
	it.gram0 = make([]*mat.Dense, n)
	it.gram1 = make([]*mat.Dense, n)
	it.cross = make([]*mat.Dense, n)
	it.mbuf = make([]*mat.Dense, n)
	it.a0v = make([]*mat.Dense, n)
	it.a1v = make([]*mat.Dense, n)
	it.m0v = make([]*mat.Dense, n)
	it.m1v = make([]*mat.Dense, n)
	it.fullG = make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		old := oldDims[m]
		it.gram0[m] = mat.New(r, r)
		it.gram1[m] = mat.New(r, r)
		it.cross[m] = mat.New(r, r)
		it.fullG[m] = mat.New(r, r)
		it.mbuf[m] = mat.New(full[m].Rows, r)
		it.a0v[m] = full[m].SliceRows(0, old)
		it.a1v[m] = full[m].SliceRows(old, full[m].Rows)
		it.m0v[m] = it.mbuf[m].SliceRows(0, old)
		it.m1v[m] = it.mbuf[m].SliceRows(old, it.mbuf[m].Rows)
	}
	it.d0 = mat.New(r, r)
	it.d1 = mat.New(r, r)
	it.g0prod = mat.New(r, r)
	it.hprod = mat.New(r, r)
	it.sum = mat.New(r, r)
	it.obs = opts.Obs
	it.names = make([]sweepNames, n)
	for m := 0; m < n; m++ {
		it.names[m] = sweepNames{
			mttkrp: fmt.Sprintf("mode%d/mttkrp", m),
			chunk:  fmt.Sprintf("mode%d/mttkrp.chunk", m),
			solve:  fmt.Sprintf("mode%d/solve", m),
			gram:   fmt.Sprintf("mode%d/gram", m),
		}
	}
	it.cMttkrp = it.obs.Counter("mttkrp.rows")
	for m := 0; m < n; m++ {
		it.refreshGrams(m)
	}
	return it
}

// bindSampler installs the leverage-score sampler and seeds its draw
// distributions from the freshly established Grams.
func (it *iteration) bindSampler(smp *sample.Sampler) {
	it.smp = smp
	it.gs = mat.New(it.opts.Rank, it.opts.Rank)
	for m := range it.full {
		it.refreshDist(m)
	}
}

// refreshDist rebuilds mode m's draw distribution from the current
// stacked factor and its full Gram (old block + growth block).
func (it *iteration) refreshDist(m int) {
	it.sum.Add(it.gram0[m], it.gram1[m])
	it.smp.Refresh(m, it.full[m], it.sum)
}

func (it *iteration) refreshGrams(m int) {
	it.pk.GramInto(it.gram0[m], it.a0v[m])
	it.pk.GramInto(it.gram1[m], it.a1v[m])
	it.pk.CrossGramInto(it.cross[m], it.tilde[m], it.a0v[m])
}

// denominators fills d1 = ∗_{k≠mode}(gram0+gram1), g0prod =
// ∗_{k≠mode} gram0 and hprod = ∗_{k≠mode} cross — the three Hadamard
// chains of Eq. (5).
func (it *iteration) denominators(mode int) {
	eqDenominators(it.d1, it.g0prod, it.hprod, it.sum, it.gram0, it.gram1, it.cross, mode)
}

// eqDenominators is the per-mode denominator kernel of the Eq. (5)
// update rules, shared by the whole-sweep driver (iteration) and the
// event-granularity row updater (Updater): it fills
// d1 = ∗_{k≠mode}(gram0+gram1), g0prod = ∗_{k≠mode} gram0 and
// hprod = ∗_{k≠mode} cross from the cached per-mode Gram blocks,
// falling back to the identity for first-order tensors (no other
// modes). sum is R×R scratch.
func eqDenominators(d1, g0prod, hprod, sum *mat.Dense, gram0, gram1, cross []*mat.Dense, mode int) {
	first := true
	for k := range gram0 {
		if k == mode {
			continue
		}
		sum.Add(gram0[k], gram1[k])
		if first {
			d1.CopyFrom(sum)
			g0prod.CopyFrom(gram0[k])
			hprod.CopyFrom(cross[k])
			first = false
		} else {
			d1.Hadamard(d1, sum)
			g0prod.Hadamard(g0prod, gram0[k])
			hprod.Hadamard(hprod, cross[k])
		}
	}
	if first {
		d1.SetIdentity()
		g0prod.SetIdentity()
		hprod.SetIdentity()
	}
}

// sweep performs one pass of the Eq. (5) updates over every mode.
func (it *iteration) sweep() {
	r := it.opts.Rank
	for m := range it.full {
		sp := it.obs.Span(it.names[m].mttkrp)
		M := it.mbuf[m]
		if it.smp != nil {
			matched := it.smp.Sample(m, it.full, it.pacc, it.pk, M, it.gs, it.names[m].chunk)
			it.cMttkrp.Add(int64(matched))
		} else {
			M.Zero()
			it.pacc.Accumulate(M, it.kernels[m], it.full, it.names[m].chunk)
			it.cMttkrp.Add(int64(it.comp.NNZ()))
		}
		sp.End()

		sp = it.obs.Span(it.names[m].solve)
		it.denominators(m)
		if it.smp != nil {
			// The sketched Ĝ estimates the same ∗_{k≠m}(A_kᵀA_k) the exact
			// chain just produced; the exact g0prod/hprod chains stay — they
			// are O(R²) per mode, not data-dependent.
			it.d1.CopyFrom(it.gs)
		}
		it.d0.Scale(-(1 - it.opts.Mu), it.g0prod)
		it.d0.Add(it.d0, it.d1)

		mark := it.ws.Mark()
		num0 := it.ws.Take(it.oldDims[m], r)
		it.pk.MulInto(num0, it.tilde[m], it.hprod)
		num0.Scale(it.opts.Mu, num0)
		num0.AddScaled(1, it.m0v[m])

		it.pk.SolveRightRidgeInto(it.a0v[m], num0, it.d0)
		it.pk.SolveRightRidgeInto(it.a1v[m], it.m1v[m], it.d1)
		it.ws.Release(mark)
		sp.End()

		sp = it.obs.Span(it.names[m].gram)
		it.refreshGrams(m)
		if it.smp != nil {
			it.refreshDist(m)
		}
		sp.End()
		it.lastM = M
	}
}

// loss evaluates √L of Eq. (4) from the cached intermediates: the
// old-region term from the Gram/cross products, the new-data term from
// the complement norm, the reused MTTKRP (cross term), and the
// difference of full and old-block model norms.
func (it *iteration) loss() float64 {
	n := len(it.full)
	for m := 0; m < n; m++ {
		it.fullG[m].Add(it.gram0[m], it.gram1[m])
	}
	mark := it.ws.Mark()
	h := it.ws.Take(it.opts.Rank, it.opts.Rank)
	mat.HadamardAllInto(h, it.gram0...)
	model0Sq := mat.SumAll(h)
	mat.HadamardAllInto(h, it.fullG...)
	modelFullSq := mat.SumAll(h)
	mat.HadamardAllInto(h, it.cross...)
	crossOld := mat.SumAll(h)
	it.ws.Release(mark)

	oldTerm := it.opts.Mu * (it.cTilde + model0Sq - 2*crossOld)
	// Under the sampled solver lastM is the sketched M̂, so the cross term
	// — and with it the loss trace and the Tol stop — is an unbiased
	// estimate; callers wanting the exact loss use LossAgainst.
	inner := mat.Dot(it.lastM, it.full[n-1])
	newTerm := it.compNormSq - 2*inner + (modelFullSq - model0Sq)

	l := oldTerm + newTerm
	if l < 0 {
		l = 0 // round-off guard
	}
	return math.Sqrt(l)
}

// LossAgainst evaluates Eq. (4) definitionally — recomputing every term
// from the raw tensors and factors with no reuse. Used to validate the
// reuse-based loss and by the loss-reuse ablation bench.
func LossAgainst(prev *State, snapshot *tensor.Tensor, cur *State, mu float64) float64 {
	comp := snapshot.Complement(prev.Dims)
	n := snapshot.Order()
	// μ‖[[Ã]] − [[A^(0)]]‖².
	gramsT := make([]*mat.Dense, n)
	grams0 := make([]*mat.Dense, n)
	cross := make([]*mat.Dense, n)
	a0s := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		a0 := cur.Factors[m].SliceRows(0, prev.Dims[m])
		a0s[m] = a0
		gramsT[m] = mat.Gram(prev.Factors[m])
		grams0[m] = mat.Gram(a0)
		cross[m] = mat.CrossGram(prev.Factors[m], a0)
	}
	oldTerm := mu * (mat.SumAll(mat.HadamardAll(gramsT...)) +
		mat.SumAll(mat.HadamardAll(grams0...)) -
		2*mat.SumAll(mat.HadamardAll(cross...)))

	// Σ_{i≠0} ‖X^i − [[A…]]‖² = ‖X\X̃‖² − 2<X\X̃, Y> + (‖Y‖² − ‖Y^(0)‖²).
	gramsF := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		gramsF[m] = mat.Gram(cur.Factors[m])
	}
	inner := mttkrp.InnerProduct(comp, cur.Factors)
	newTerm := comp.NormSq() - 2*inner +
		mat.SumAll(mat.HadamardAll(gramsF...)) - mat.SumAll(mat.HadamardAll(grams0...))

	l := oldTerm + newTerm
	if l < 0 {
		l = 0
	}
	return math.Sqrt(l)
}
