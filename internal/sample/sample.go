// Package sample implements randomized leverage-score sampled ALS
// (CP-ARLS-LEV style) for the streaming engines: instead of the exact
// MTTKRP over every non-zero — the per-round cost that scales with nnz
// — each mode's least-squares system is replaced by a downsampled
// sketch of the Khatri-Rao product.
//
// Per mode k, rows of the factor A_k are scored by their statistical
// leverage ℓ_k(i) = a_k(i)ᵀ(A_kᵀA_k)⁻¹a_k(i), computed from the factor
// Grams the sweeps already maintain (one triangular solve per row
// against the Gram's Cholesky factor). A sample for target mode n is a
// joint index tuple (i_k)_{k≠n} drawn independently per mode with
// probability proportional to ℓ_k(i) (plus a small uniform mixing term
// so every row stays reachable); S such draws with importance weights
// w_s = 1/(S·p_s) form the sketched system
//
//	Ĝ = Σ_s w_s·z_s z_sᵀ ≈ ∗_{k≠n} A_kᵀA_k,   M̂ = sketched MTTKRP,
//
// where z_s is the Khatri-Rao row at the drawn tuple. Ĝ is the Gram of
// the S×R matrix whose rows are √w_s·z_s; M̂ accumulates, for every
// drawn tuple that matches a non-empty tensor fiber, the fiber's
// entries scaled by the tuple's aggregated weight — a weighted
// mttkrp.Kernel view over the matched entries, so the existing
// deterministic parallel accumulator runs unchanged. Both estimators
// are unbiased, rounds cost O(S·R² + matched) instead of O(nnz·R), and
// every draw comes from a deterministic sub-stream keyed by
// (seed, mode, worker rank) so runs are bitwise reproducible at every
// thread count and, for the distributed driver, at a fixed world size.
package sample

import (
	"fmt"
	"math/bits"
)

// Kind selects the per-mode least-squares strategy of an ALS sweep.
type Kind int

const (
	// Exact solves each mode with the full MTTKRP and the exact Gram
	// Hadamard product — the default, and the verification oracle the
	// sampled path is measured against.
	Exact Kind = iota
	// Sampled solves each mode against the leverage-score sampled
	// sketch built by Sampler.
	Sampled
)

// String returns the flag spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Exact:
		return "exact"
	case Sampled:
		return "sampled"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a -solver flag value. The empty string selects
// Exact, matching the zero value of Options fields.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "exact":
		return Exact, nil
	case "sampled":
		return Sampled, nil
	default:
		return Exact, fmt.Errorf("sample: unknown solver %q (want exact or sampled)", s)
	}
}

// DefaultSamples is the per-mode sample count S used when an engine's
// Options.Samples is zero. At paper-scale tensors (nnz ≥ 10⁶) it keeps
// a sampled round several times cheaper than the exact MTTKRP while
// holding the final fit within ~1e-2 of exact on the fit-gap harness.
const DefaultSamples = 8192

// CheckDims reports whether every target mode's joint sample space —
// the product of the other modes' sizes — fits a packed uint64 fiber
// key. Engines validate this before constructing a Sampler; tensors
// beyond the bound (unreachable for the paper datasets by many orders
// of magnitude) must use the exact solver.
func CheckDims(dims []int) error {
	for m := range dims {
		span := uint64(1)
		for k, d := range dims {
			if k == m {
				continue
			}
			hi, lo := bits.Mul64(span, uint64(d))
			if hi != 0 {
				return fmt.Errorf("sample: joint index space of mode %d exceeds 2^64; use the exact solver (-solver exact)", m)
			}
			span = lo
		}
	}
	return nil
}
