package sample

import (
	"math"
	"testing"

	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/par"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

func TestKindRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{{"", Exact}, {"exact", Exact}, {"sampled", Sampled}} {
		k, err := ParseKind(tc.in)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", tc.in, err)
		}
		if k != tc.want {
			t.Fatalf("ParseKind(%q) = %v, want %v", tc.in, k, tc.want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind(bogus) succeeded")
	}
	if Exact.String() != "exact" || Sampled.String() != "sampled" {
		t.Fatalf("String round-trip broken: %q %q", Exact, Sampled)
	}
}

func TestCheckDims(t *testing.T) {
	if err := CheckDims([]int{1000, 1000, 1000}); err != nil {
		t.Fatalf("paper-scale dims rejected: %v", err)
	}
	// Per target mode the joint space is the product of the OTHER modes;
	// three modes of 2^32 give 2^64 per target, which must overflow.
	big := 1 << 32
	if err := CheckDims([]int{big, big, big}); err == nil {
		t.Fatal("2^64 joint space accepted")
	}
}

// randomTensor draws nnz entries with random coordinates (duplicate
// joint coordinates are likely at these dims, exercising multi-entry
// fibers) and random values.
func randomTensor(dims []int, nnz int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.NormFloat64())
	}
	return b.Build()
}

// TestFiberIndexInvariants checks the radix-sorted index against its
// contract for every target mode: keys strictly ascending, every entry
// present exactly once in the fiber that matches its joint coordinate,
// entries within a fiber in entry-list (stable) order, and find()
// resolving present keys and rejecting absent ones.
func TestFiberIndexInvariants(t *testing.T) {
	x := randomTensor([]int{13, 7, 5, 3}, 600, 11)
	n := x.Order()
	for m := 0; m < n; m++ {
		ix, err := newFiberIndex(x, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ix.nnz() != x.NNZ() {
			t.Fatalf("mode %d: index covers %d of %d entries", m, ix.nnz(), x.NNZ())
		}
		seen := make([]bool, x.NNZ())
		for f := range ix.keys {
			if f > 0 && ix.keys[f] <= ix.keys[f-1] {
				t.Fatalf("mode %d: keys not strictly ascending at fiber %d", m, f)
			}
			if got := ix.find(ix.keys[f]); got != f {
				t.Fatalf("mode %d: find(keys[%d]) = %d", m, f, got)
			}
			for p := ix.starts[f]; p < ix.starts[f+1]; p++ {
				e := ix.order[p]
				if seen[e] {
					t.Fatalf("mode %d: entry %d appears twice", m, e)
				}
				seen[e] = true
				if k := ix.key(x, e); k != ix.keys[f] {
					t.Fatalf("mode %d: entry %d in fiber %d has key %d, want %d", m, e, f, k, ix.keys[f])
				}
				if p > ix.starts[f] && ix.order[p-1] >= e {
					t.Fatalf("mode %d fiber %d: entries out of stable order", m, f)
				}
			}
		}
		for e := range seen {
			if !seen[e] {
				t.Fatalf("mode %d: entry %d missing from index", m, e)
			}
		}
		// A key off the end of the occupied range must miss.
		if got := ix.find(ix.keys[len(ix.keys)-1] + 1); got != -1 {
			t.Fatalf("mode %d: find(absent) = %d", m, got)
		}
	}
}

// TestDrawCDFInRange is the draw-support property test: for arbitrary
// cumulative distributions and arbitrary uniforms — including ones
// outside [0, 1) that a correct caller never produces — the drawn
// index stays inside the support, and the per-index probabilities sum
// to one.
func TestDrawCDFInRange(t *testing.T) {
	src := xrand.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 1 + src.Intn(40)
		cdf := make([]float64, n)
		cum := 0.0
		for i := range cdf {
			cum += 1e-9 + src.Float64()
			cdf[i] = cum
		}
		psum := 0.0
		for i := range cdf {
			p := probCDF(cdf, cum, i)
			if p <= 0 {
				t.Fatalf("probCDF(%d) = %g, want positive", i, p)
			}
			psum += p
		}
		if math.Abs(psum-1) > 1e-12 {
			t.Fatalf("probabilities sum to %g", psum)
		}
		for _, u := range []float64{0, 0.5, 0.999999, 1, 1.5, -0.5, math.NaN()} {
			if i := drawCDF(cdf, cum, u); i < 0 || i >= n {
				t.Fatalf("drawCDF(u=%g) = %d out of [0, %d)", u, i, n)
			}
		}
		for d := 0; d < 200; d++ {
			if i := drawCDF(cdf, cum, src.Float64()); i < 0 || i >= n {
				t.Fatalf("drawCDF out of range: %d", i)
			}
		}
	}
}

// TestLeverageDistributionChiSquared draws 100k indices from a
// Refresh-built distribution and checks the empirical counts against
// the probCDF expectations with a chi-squared statistic. df = 29; the
// 99.9th percentile of χ²₂₉ is ≈ 58, so a sound sampler passes with
// wide margin (the draws are deterministic at this seed — the test
// guards the estimator, not the RNG).
func TestLeverageDistributionChiSquared(t *testing.T) {
	const dim, rank = 30, 4
	x := randomTensor([]int{dim, dim, dim}, 500, 3)
	s, err := New(x, nil, rank, 1024, 77, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(5)
	factor := mat.RandomUniform(dim, rank, src)
	gram := mat.New(rank, rank)
	mat.GramInto(gram, factor)
	s.Refresh(0, factor, gram)

	const draws = 100000
	counts := make([]float64, dim)
	for d := 0; d < draws; d++ {
		counts[drawCDF(s.cdf[0], s.tot[0], src.Float64())]++
	}
	chi2 := 0.0
	for i := range counts {
		exp := probCDF(s.cdf[0], s.tot[0], i) * draws
		chi2 += (counts[i] - exp) * (counts[i] - exp) / exp
	}
	if chi2 > 58 {
		t.Fatalf("chi-squared %.1f exceeds the χ²₂₉ 99.9th percentile", chi2)
	}
}

// TestSampleMatchesKernelContract recomputes a sketch's MTTKRP through
// the generic Kernel contract (EntryCoord/EntryVal, per-entry factor
// products) and checks the precomputed-KRP-row fast path agrees. The
// two orderings of the same products may differ in the last bits, so
// the comparison is to relative precision, not bitwise.
func TestSampleMatchesKernelContract(t *testing.T) {
	dims := []int{12, 9, 7}
	const rank = 5
	x := randomTensor(dims, 400, 21)
	s, err := New(x, nil, rank, 2048, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(6)
	factors := make([]*mat.Dense, len(dims))
	gram := mat.New(rank, rank)
	for m, d := range dims {
		factors[m] = mat.RandomUniform(d, rank, src)
	}
	for m := range dims {
		mat.GramInto(gram, factors[m])
		s.Refresh(m, factors[m], gram)
	}
	pool := par.New(2)
	defer pool.Close()
	wss := mat.NewWorkspaceSet(pool.Threads())
	pk := mat.NewParKernels(pool, wss)
	pacc := mttkrp.NewParAccumulator(pool, wss, nil)

	for m := range dims {
		dst := mat.New(dims[m], rank)
		gs := mat.New(rank, rank)
		matched := s.Sample(m, factors, pacc, pk, dst, gs, "")
		if matched != s.kern.NNZ() {
			t.Fatalf("mode %d: Sample reported %d matched, kernel holds %d", m, matched, s.kern.NNZ())
		}
		want := mat.New(dims[m], rank)
		k := &s.kern
		tmp := make([]float64, rank)
		for g := 0; g < k.NumRows(); g++ {
			row := want.Row(int(k.GroupRow(g)))
			p0, p1 := k.GroupRange(g)
			for p := p0; p < p1; p++ {
				v := k.EntryVal(p)
				for c := range tmp {
					tmp[c] = v
				}
				for kk := range dims {
					if kk == m {
						continue
					}
					fr := factors[kk].Row(int(k.EntryCoord(p, kk)))
					for c := range tmp {
						tmp[c] *= fr[c]
					}
				}
				for c := range tmp {
					row[c] += tmp[c]
				}
			}
		}
		for i := range dst.Data {
			diff := math.Abs(dst.Data[i] - want.Data[i])
			scale := math.Max(1, math.Abs(want.Data[i]))
			if diff > 1e-9*scale {
				t.Fatalf("mode %d: fast path diverges from contract at %d: %g vs %g", m, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

// TestZeroAllocWarmRound asserts the steady-state contract: after a
// warm-up round, a full Refresh+Sample round over every mode performs
// zero heap allocations.
func TestZeroAllocWarmRound(t *testing.T) {
	dims := []int{20, 16, 12}
	const rank = 4
	x := randomTensor(dims, 1500, 8)
	s, err := New(x, nil, rank, 1024, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(14)
	factors := make([]*mat.Dense, len(dims))
	for m, d := range dims {
		factors[m] = mat.RandomUniform(d, rank, src)
	}
	pool := par.New(4)
	defer pool.Close()
	wss := mat.NewWorkspaceSet(pool.Threads())
	pk := mat.NewParKernels(pool, wss)
	pacc := mttkrp.NewParAccumulator(pool, wss, nil)
	gram := mat.New(rank, rank)
	dst := make([]*mat.Dense, len(dims))
	gs := mat.New(rank, rank)
	for m := range dims {
		dst[m] = mat.New(dims[m], rank)
	}
	round := func() {
		for m := range dims {
			mat.GramInto(gram, factors[m])
			s.Refresh(m, factors[m], gram)
			s.Sample(m, factors, pacc, pk, dst[m], gs, "")
		}
	}
	round()
	round()
	if allocs := testing.AllocsPerRun(5, round); allocs != 0 {
		t.Fatalf("warm Refresh+Sample round allocates %.1f times", allocs)
	}
}

func FuzzParseKind(f *testing.F) {
	for _, s := range []string{"", "exact", "sampled", "EXACT", "2", "exact "} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseKind(s)
		if err == nil && k != Exact && k != Sampled {
			t.Fatalf("ParseKind(%q) = unknown kind %d", s, k)
		}
	})
}
