package sample

import (
	"fmt"
	"math"
	"sort"

	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// drawTag keys the sampler's xrand sub-streams so they can never
// collide with an engine's factor-initialisation stream, which derives
// from the same per-step seed.
const drawTag uint64 = 0x6c65766572616765 // "leverage"

// mixUniform is the uniform mixing fraction of the draw distributions:
// each row's mass is its leverage score plus mixUniform·Σℓ/I, so every
// row — and therefore every non-empty fiber — keeps strictly positive
// probability and the importance weights stay finite.
const mixUniform = 0.1

// Sampler draws the leverage-score sketches for one region (a full
// tensor for CP-ALS, a step's complement for DTD, one rank's partition
// for the distributed driver). Construct once per step with New; all
// sweep-time state lives in buffers pre-sized there, so a warmed
// Sample/Refresh round performs zero heap allocations.
//
// The draw streams are seeded per (seed, mode, worker) and consumed
// sequentially on the driving goroutine across the step's sweeps:
// results do not depend on the thread count, and a distributed rank
// reproduces its draws exactly on a re-run at the same world size.
type Sampler struct {
	t       *tensor.Tensor
	n, r    int
	samples int

	idx []*fiberIndex   // per target mode
	src []*xrand.Source // per target mode draw stream

	// Leverage state, rebuilt by Refresh: cdf[k][i] is the cumulative
	// (leverage + mixing) mass of rows 0..i of mode k, tot[k] its total.
	cdf  [][]float64
	tot  []float64
	lfac *mat.Dense // Gram Cholesky factor scratch
	lrow []float64  // triangular-solve scratch
	lws  *mat.Workspace

	// Per-draw buffers, len == samples.
	keys  []uint64
	wts   []float64
	order []int32
	srt   drawSorter
	z     *mat.Dense // √w-scaled Khatri-Rao rows; Ĝ = zᵀz

	// Matched-entry staging and the kernel the accumulator runs. Each
	// matched fiber gets one precomputed weighted Khatri-Rao row (krp)
	// and one aggregated weight (fwts); entries reference their fiber
	// slot through mFid.
	mEnts  []int32
	mFid   []int32
	fwts   []float64
	krp    *mat.Dense
	counts []int32 // counting-sort scratch, len maxDim+1
	kern   sampledKernel
}

// New builds the sampler for region t. entries optionally restricts
// each target mode to an explicit entry list (index = mode; nil slice
// or nil element means every entry) — the distributed driver passes
// its rank's per-mode partition. samples <= 0 selects DefaultSamples.
// worker is the distributed rank (0 for centralized engines); it keys
// the draw streams so each rank sketches independently.
func New(t *tensor.Tensor, entries [][]int32, rank, samples int, seed uint64, worker int) (*Sampler, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("sample: rank must be positive, got %d", rank)
	}
	if samples <= 0 {
		samples = DefaultSamples
	}
	n := t.Order()
	s := &Sampler{
		t:       t,
		n:       n,
		r:       rank,
		samples: samples,
		idx:     make([]*fiberIndex, n),
		src:     make([]*xrand.Source, n),
		cdf:     make([][]float64, n),
		tot:     make([]float64, n),
		lfac:    mat.New(rank, rank),
		lrow:    make([]float64, rank),
		lws:     mat.NewWorkspace(),
		keys:    make([]uint64, samples),
		wts:     make([]float64, samples),
		order:   make([]int32, samples),
		z:       mat.New(samples, rank),
	}
	maxRegion, maxDim := 0, 0
	for m := 0; m < n; m++ {
		var list []int32
		if entries != nil {
			list = entries[m]
		}
		ix, err := newFiberIndex(t, m, list)
		if err != nil {
			return nil, err
		}
		s.idx[m] = ix
		if ix.nnz() > maxRegion {
			maxRegion = ix.nnz()
		}
		if t.Dims[m] > maxDim {
			maxDim = t.Dims[m]
		}
		s.src[m] = xrand.Sub(seed, drawTag, uint64(m), uint64(worker))
		s.cdf[m] = make([]float64, t.Dims[m])
	}
	s.mEnts = make([]int32, 0, maxRegion)
	s.mFid = make([]int32, 0, maxRegion)
	s.fwts = make([]float64, 0, samples)
	s.krp = mat.New(samples, rank)
	s.counts = make([]int32, maxDim+1)
	s.kern.ents = make([]int32, 0, maxRegion)
	s.kern.fid = make([]int32, 0, maxRegion)
	s.kern.rows = make([]int32, 0, maxDim)
	s.kern.starts = make([]int32, 0, maxDim+1)
	return s, nil
}

// Samples returns the per-mode sample count S.
func (s *Sampler) Samples() int { return s.samples }

// Refresh recomputes mode m's draw distribution from its current
// factor and Gram — O(I_m·R²), the same class as the Gram refresh the
// sweep just performed. factor must hold every row of the mode (the
// distributed driver broadcasts rows under the sampled solver so
// replicas stay globally fresh); gram is A_mᵀA_m — for the streaming
// engines the sum of the old-block and growth-block Grams.
func (s *Sampler) Refresh(m int, factor, gram *mat.Dense) {
	cdf := s.cdf[m]
	if factor.Rows != len(cdf) || factor.Cols != s.r {
		panic(fmt.Sprintf("sample: Refresh mode %d with %dx%d factor, want %dx%d", m, factor.Rows, factor.Cols, len(cdf), s.r))
	}
	mat.RidgeCholeskyInto(s.lfac, gram, s.lws)
	l := s.lfac
	y := s.lrow
	total := 0.0
	for i := 0; i < factor.Rows; i++ {
		row := factor.Row(i)
		// ℓ(i) = ‖L⁻¹a_i‖² by forward substitution against the
		// (ridge-)Cholesky factor of the Gram.
		for j := 0; j < s.r; j++ {
			v := row[j]
			lj := l.Row(j)
			for k := 0; k < j; k++ {
				v -= lj[k] * y[k]
			}
			y[j] = v / lj[j]
		}
		lev := 0.0
		for _, v := range y {
			lev += v * v
		}
		cdf[i] = lev
		total += lev
	}
	delta := 1.0
	if total > 0 {
		delta = mixUniform * total / float64(len(cdf))
	}
	cum := 0.0
	for i, lev := range cdf {
		cum += lev + delta
		cdf[i] = cum
	}
	s.tot[m] = cum
}

// Sample draws target mode m's next sketch and fills dst with the
// sketched MTTKRP M̂ (dst is zeroed first) and gram with the sketched
// Khatri-Rao Gram Ĝ. factors are the full current factors; pacc and pk
// are the caller's pooled kernels, so the sketch is chunked across the
// caller's threads with the usual bitwise-deterministic partitioning.
// chunkSpan names the accumulator's per-chunk spans (empty for none).
// It returns the number of matched entries the sketch accumulated.
func (s *Sampler) Sample(m int, factors []*mat.Dense, pacc *mttkrp.ParAccumulator, pk *mat.ParKernels, dst, gram *mat.Dense, chunkSpan string) int {
	src := s.src[m]
	strides := s.idx[m].strides
	invS := 1.0 / float64(s.samples)
	for d := 0; d < s.samples; d++ {
		zrow := s.z.Row(d)
		for c := range zrow {
			zrow[c] = 1
		}
		key := uint64(0)
		p := 1.0
		for k := 0; k < s.n; k++ {
			if k == m {
				continue
			}
			cdf := s.cdf[k]
			i := drawCDF(cdf, s.tot[k], src.Float64())
			p *= probCDF(cdf, s.tot[k], i)
			key += strides[k] * uint64(i)
			row := factors[k].Row(i)
			for c := range zrow {
				zrow[c] *= row[c]
			}
		}
		w := invS / p
		s.keys[d] = key
		s.wts[d] = w
		s.order[d] = int32(d)
		sw := math.Sqrt(w)
		for c := range zrow {
			zrow[c] *= sw
		}
	}
	pk.GramInto(gram, s.z)

	// Aggregate duplicate draws per distinct key — sorted by (key, draw
	// index), a strict total order, so the weight sums accumulate in a
	// deterministic sequence — and gather the matching fibers' entries.
	// Every entry of a fiber shares the joint coordinate the key packs,
	// so each matched fiber gets one weight·∘_{k≠m} factor row computed
	// here (from its first entry's coordinates) that the kernel reuses
	// for all of the fiber's entries: R flops per entry in the
	// accumulation instead of the full N·R factor-row product.
	s.srt.keys, s.srt.order = s.keys, s.order
	sort.Sort(&s.srt)
	s.mEnts = s.mEnts[:0]
	s.mFid = s.mFid[:0]
	s.fwts = s.fwts[:0]
	ix := s.idx[m]
	nf := 0
	for a := 0; a < s.samples; {
		key := s.keys[s.order[a]]
		wsum := s.wts[s.order[a]]
		b := a + 1
		for b < s.samples && s.keys[s.order[b]] == key {
			wsum += s.wts[s.order[b]]
			b++
		}
		if f := ix.find(key); f >= 0 {
			row := s.krp.Row(nf)
			for c := range row {
				row[c] = wsum
			}
			base := int(ix.order[ix.starts[f]]) * s.n
			for k := 0; k < s.n; k++ {
				if k == m {
					continue
				}
				fr := factors[k].Row(int(s.t.Coords[base+k]))
				for c := range row {
					row[c] *= fr[c]
				}
			}
			s.fwts = append(s.fwts, wsum)
			for p := ix.starts[f]; p < ix.starts[f+1]; p++ {
				s.mEnts = append(s.mEnts, ix.order[p])
				s.mFid = append(s.mFid, int32(nf))
			}
			nf++
		}
		a = b
	}
	s.kern.build(s.t, m, s.r, s.mEnts, s.mFid, s.krp, s.fwts, s.counts)
	dst.Zero()
	pacc.Accumulate(dst, &s.kern, factors, chunkSpan)
	return len(s.mEnts)
}

// drawCDF returns the first index whose cumulative mass exceeds u·tot.
// Every index carries mass at least the mixing term, so the drawn
// index always has strictly positive probability.
func drawCDF(cdf []float64, tot, u float64) int {
	x := u * tot
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cdf[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// probCDF returns index i's draw probability under the distribution.
func probCDF(cdf []float64, tot float64, i int) float64 {
	if i == 0 {
		return cdf[0] / tot
	}
	return (cdf[i] - cdf[i-1]) / tot
}

// drawSorter sorts the draw permutation by (key, draw index) — a
// strict total order, so the aggregation walk is deterministic. It is
// a persistent struct (not a closure sort) to keep the sweep
// allocation-free.
type drawSorter struct {
	keys  []uint64
	order []int32
}

func (d *drawSorter) Len() int { return len(d.order) }

func (d *drawSorter) Less(i, j int) bool {
	a, b := d.order[i], d.order[j]
	ka, kb := d.keys[a], d.keys[b]
	if ka != kb {
		return ka < kb
	}
	return a < b
}

func (d *drawSorter) Swap(i, j int) { d.order[i], d.order[j] = d.order[j], d.order[i] }
