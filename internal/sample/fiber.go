package sample

import (
	"fmt"
	"math/bits"

	"dismastd/internal/tensor"
)

// fiberIndex groups a region's entries by their joint coordinate over
// every mode except the target: one fiber per distinct (i_k)_{k≠mode}
// tuple, identified by a packed mixed-radix uint64 key, with the fiber
// list sorted by key so a drawn tuple resolves to its matching entries
// (if any) in one binary search. Built once per (step, target mode)
// from the region's entry list; the sparsity pattern is fixed within a
// step, so draws across all of the step's sweeps reuse it.
type fiberIndex struct {
	strides []uint64 // per source mode; strides[mode] == 0
	keys    []uint64 // one packed key per fiber, strictly ascending
	starts  []int32  // fiber f spans order[starts[f]:starts[f+1]]
	order   []int32  // entry ids grouped by fiber, stable within a fiber
}

// newFiberIndex builds the index of target mode `mode` over the given
// entry ids (nil means every entry of t). It fails when the joint key
// space overflows uint64 — see CheckDims.
func newFiberIndex(t *tensor.Tensor, mode int, entries []int32) (*fiberIndex, error) {
	n := t.Order()
	ix := &fiberIndex{strides: make([]uint64, n)}
	span := uint64(1)
	for k := 0; k < n; k++ {
		if k == mode {
			continue
		}
		ix.strides[k] = span
		hi, lo := bits.Mul64(span, uint64(t.Dims[k]))
		if hi != 0 {
			return nil, fmt.Errorf("sample: joint index space of mode %d exceeds 2^64; use the exact solver (-solver exact)", mode)
		}
		span = lo
	}
	if entries == nil {
		entries = make([]int32, t.NNZ())
		for e := range entries {
			entries[e] = int32(e)
		}
	}
	ix.order = append([]int32(nil), entries...)
	keys := make([]uint64, len(entries))
	maxKey := uint64(0)
	for i, e := range ix.order {
		k := ix.key(t, e)
		keys[i] = k
		if k > maxKey {
			maxKey = k
		}
	}
	// LSD radix sort on the (key, entry id) pairs, one byte per pass,
	// skipping bytes past the largest key. Each pass is a stable
	// counting sort, so equal-key entries keep entry-list order — the
	// same result, bit for bit, as the comparison sort it replaces, at a
	// fraction of the cost (no reflection-based swaps, no merges).
	ids := ix.order
	tmpK := make([]uint64, len(keys))
	tmpI := make([]int32, len(ids))
	for shift := uint(0); maxKey>>shift != 0; shift += 8 {
		var cnt [256]int
		for _, k := range keys {
			cnt[(k>>shift)&0xff]++
		}
		pos := 0
		for b := range cnt {
			c := cnt[b]
			cnt[b] = pos
			pos += c
		}
		for i, k := range keys {
			b := (k >> shift) & 0xff
			p := cnt[b]
			cnt[b] = p + 1
			tmpK[p] = k
			tmpI[p] = ids[i]
		}
		keys, tmpK = tmpK, keys
		ids, tmpI = tmpI, ids
	}
	ix.order = ids
	for i, k := range keys {
		if i == 0 || k != ix.keys[len(ix.keys)-1] {
			ix.keys = append(ix.keys, k)
			ix.starts = append(ix.starts, int32(i))
		}
	}
	ix.starts = append(ix.starts, int32(len(entries)))
	return ix, nil
}

// key packs entry e's joint coordinate. The target mode's stride is
// zero, so its coordinate drops out without a branch.
func (ix *fiberIndex) key(t *tensor.Tensor, e int32) uint64 {
	base := int(e) * len(ix.strides)
	key := uint64(0)
	for k, s := range ix.strides {
		key += s * uint64(t.Coords[base+k])
	}
	return key
}

// find returns the fiber holding key, or -1 when no entry of the
// region lies on that joint coordinate.
func (ix *fiberIndex) find(key uint64) int {
	lo, hi := 0, len(ix.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ix.keys) && ix.keys[lo] == key {
		return lo
	}
	return -1
}

// nnz reports the number of entries the index covers.
func (ix *fiberIndex) nnz() int { return len(ix.order) }
