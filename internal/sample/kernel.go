package sample

import (
	"fmt"

	"dismastd/internal/mat"
	"dismastd/internal/tensor"
)

// sampledKernel is the mttkrp.Kernel over one sketch: the entries of
// every matched fiber, counting-sorted by target-mode coordinate into
// row groups. Every entry of a fiber shares one joint coordinate over
// the non-target modes — that is what the fiber key packs — so the
// Sampler precomputes a single weighted Khatri-Rao row per matched
// fiber (krp) and each entry points at its fiber's row (fid). The
// accumulation is then R flops per entry instead of a full
// N·R-factor-row product, and the per-fiber weight lives once in fwts
// rather than duplicated per entry. Disjoint group ranges still write
// disjoint rows, and a group's bits depend only on its own entries and
// the driver-computed krp rows, so the result is bitwise identical at
// every thread count.
//
// Unlike the persistent kernels, a sketch changes every sweep: build
// rewrites the group arrays in place (buffers are pre-sized by the
// Sampler to the region's worst case), and the chunk grid is
// recomputed per call instead of memoised.
type sampledKernel struct {
	t    *tensor.Tensor
	mode int
	r    int

	ents   []int32    // matched entry ids, grouped by target coordinate
	fid    []int32    // fiber slot per position, indexing krp rows / fwts
	krp    *mat.Dense // weight·∘_{k≠mode} factor row, one row per matched fiber
	fwts   []float64  // aggregated draw weight per matched fiber
	rows   []int32    // distinct target coordinates, ascending
	starts []int32    // group g spans [starts[g], starts[g+1])
	grid   []int32    // chunk-grid scratch, rebuilt per ChunkStarts call
}

// build regroups the matched (entry, fiber slot) list by target-mode
// coordinate. counts is Dims[mode]+1 scratch owned by the Sampler. The
// counting sort is stable, so entries keep the deterministic
// ascending-key, ascending-draw order the aggregation produced.
func (k *sampledKernel) build(t *tensor.Tensor, mode, r int, ents, fid []int32, krp *mat.Dense, fwts []float64, counts []int32) {
	k.t, k.mode, k.r = t, mode, r
	k.krp, k.fwts = krp, fwts
	n := t.Order()
	dim := t.Dims[mode]
	counts = counts[:dim+1]
	for i := range counts {
		counts[i] = 0
	}
	for _, e := range ents {
		counts[int(t.Coords[int(e)*n+mode])+1]++
	}
	for i := 0; i < dim; i++ {
		counts[i+1] += counts[i]
	}
	k.rows = k.rows[:0]
	k.starts = k.starts[:0]
	for i := 0; i < dim; i++ {
		if counts[i+1] > counts[i] {
			k.rows = append(k.rows, int32(i))
			k.starts = append(k.starts, counts[i])
		}
	}
	k.starts = append(k.starts, int32(len(ents)))
	k.ents = k.ents[:len(ents)]
	k.fid = k.fid[:len(fid)]
	// counts[0:dim] now holds each coordinate's group start; reuse it as
	// the placement cursor (the boundaries live on in rows/starts).
	for j, e := range ents {
		c := int(t.Coords[int(e)*n+mode])
		p := counts[c]
		k.ents[p] = e
		k.fid[p] = fid[j]
		counts[c] = p + 1
	}
}

// NNZ reports the number of matched entries the sketch covers.
func (k *sampledKernel) NNZ() int { return len(k.ents) }

// NumRows returns the number of non-empty row groups.
func (k *sampledKernel) NumRows() int { return len(k.rows) }

// ModeSize returns the target mode's size — the output row count.
func (k *sampledKernel) ModeSize() int { return k.t.Dims[k.mode] }

// GroupRow returns the output row of group g.
func (k *sampledKernel) GroupRow(g int) int32 { return k.rows[g] }

// GroupRange returns the position range [p0, p1) of group g.
func (k *sampledKernel) GroupRange(g int) (p0, p1 int32) {
	return k.starts[g], k.starts[g+1]
}

// EntryCoord returns the mode-kk coordinate of the entry at position p.
func (k *sampledKernel) EntryCoord(p int32, kk int) int32 {
	return k.t.Coords[int(k.ents[p])*k.t.Order()+kk]
}

// EntryVal returns the importance-reweighted value at position p.
func (k *sampledKernel) EntryVal(p int32) float64 {
	return k.t.Vals[k.ents[p]] * k.fwts[k.fid[p]]
}

// Validate panics unless dst and factors match the sketched tensor.
func (k *sampledKernel) Validate(dst *mat.Dense, factors []*mat.Dense) {
	t := k.t
	if len(factors) != t.Order() {
		panic(fmt.Sprintf("sample: %d factors for order-%d tensor", len(factors), t.Order()))
	}
	for m, f := range factors {
		if f.Rows != t.Dims[m] || f.Cols != k.r {
			panic(fmt.Sprintf("sample: factor %d is %dx%d, want %dx%d", m, f.Rows, f.Cols, t.Dims[m], k.r))
		}
	}
	if dst.Rows != t.Dims[k.mode] || dst.Cols != k.r {
		panic(fmt.Sprintf("sample: destination %dx%d, want %dx%d", dst.Rows, dst.Cols, t.Dims[k.mode], k.r))
	}
}

// ChunkStarts returns an entry-balanced grid of at most c contiguous
// group ranges (the layout.Chunker rule), recomputed into a persistent
// buffer on every call — the group list changes with each sketch, so
// the memoising Chunker would serve stale grids.
func (k *sampledKernel) ChunkStarts(c int) []int32 {
	g := len(k.rows)
	if c > g {
		c = g
	}
	if c < 1 {
		c = 1
	}
	k.grid = k.grid[:0]
	k.grid = append(k.grid, 0)
	total := int64(k.starts[g])
	gi := 0
	for i := 1; i < c; i++ {
		target := int32(total * int64(i) / int64(c))
		for gi < g && k.starts[gi] < target {
			gi++
		}
		k.grid = append(k.grid, int32(gi))
	}
	k.grid = append(k.grid, int32(g))
	return k.grid
}

// AccumulateGroups adds the sketched MTTKRP of groups [g0, g1) into
// dst: each matched entry contributes value·krp[fiber] — the fiber's
// precomputed weight·∘_{k≠mode} A_k[c_k] row — to its group's
// accumulator, written back once per row. factors and tmp go unused:
// the factor products were folded into the krp rows when the sketch
// was drawn.
func (k *sampledKernel) AccumulateGroups(dst *mat.Dense, factors []*mat.Dense, g0, g1 int, tmp, acc []float64) {
	t := k.t
	for g := g0; g < g1; g++ {
		for c := range acc {
			acc[c] = 0
		}
		for p := k.starts[g]; p < k.starts[g+1]; p++ {
			v := t.Vals[k.ents[p]]
			row := k.krp.Row(int(k.fid[p]))
			for c := range acc {
				acc[c] += v * row[c]
			}
		}
		out := dst.Row(int(k.rows[g]))
		for c := range out {
			out[c] += acc[c]
		}
	}
}
