package sample_test

import (
	"testing"

	"dismastd"
	"dismastd/internal/cp"
	"dismastd/internal/mat"
	"dismastd/internal/sample"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// denseCube enumerates every cell of a d×d×d random rank-rk CP model
// plus noise — dense fibers, the sketch's favourable regime, so exact
// and sampled ALS both reach fit ≈ 1.
func denseCube(d, rk int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	factors := make([][]float64, 3)
	for m := range factors {
		factors[m] = make([]float64, d*rk)
		for i := range factors[m] {
			factors[m][i] = src.Float64()
		}
	}
	b := tensor.NewBuilder([]int{d, d, d})
	idx := make([]int, 3)
	for i := 0; i < d; i++ {
		idx[0] = i
		for j := 0; j < d; j++ {
			idx[1] = j
			for k := 0; k < d; k++ {
				idx[2] = k
				v := 0.0
				for r := 0; r < rk; r++ {
					v += factors[0][i*rk+r] * factors[1][j*rk+r] * factors[2][k*rk+r]
				}
				b.Append(idx, v+0.01*src.NormFloat64())
			}
		}
	}
	return b.Build()
}

func sampledOpts(threads int) cp.Options {
	return cp.Options{
		Rank: 4, MaxIters: 8, Tol: 1e-12, Seed: 7, Threads: threads,
		Solver: sample.Sampled, Samples: 2048,
	}
}

func factorsEqual(t *testing.T, a, b []*mat.Dense, what string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d factors", what, len(a), len(b))
	}
	for m := range a {
		if a[m].Rows != b[m].Rows || a[m].Cols != b[m].Cols {
			t.Fatalf("%s: factor %d shape mismatch", what, m)
		}
		for i, v := range a[m].Data {
			if v != b[m].Data[i] {
				t.Fatalf("%s: factor %d differs at %d: %x vs %x", what, m, i, v, b[m].Data[i])
			}
		}
	}
}

// TestSampledBitwiseAcrossThreads runs sampled CP-ALS at 1 and 4
// compute threads and demands bitwise-identical factors: draws come
// from the driving goroutine's sub-streams and the sketched MTTKRP
// partitions rows into disjoint chunks, so the thread count must not
// leak into the result.
func TestSampledBitwiseAcrossThreads(t *testing.T) {
	x := denseCube(24, 4, 42)
	var base []*mat.Dense
	for _, threads := range []int{1, 2, 4} {
		res, err := cp.Decompose(x, sampledOpts(threads))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res.Factors
			continue
		}
		factorsEqual(t, base, res.Factors, "threads")
	}
}

// TestSampledRepeatableRuns demands two identical invocations produce
// bitwise-identical factors — the sketch is pseudo-random, never
// nondeterministic.
func TestSampledRepeatableRuns(t *testing.T) {
	x := denseCube(20, 4, 9)
	a, err := cp.Decompose(x, sampledOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cp.Decompose(x, sampledOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	factorsEqual(t, a.Factors, b.Factors, "runs")
}

// TestSampledFitNearExact is the quality gate at test scale: on a
// dense planted low-rank cube both solvers must reach a high fit, with
// the sampled fit within 5e-2 of exact (the acceptance benchmark
// enforces 1e-2 at nnz ≥ 10^6 — see BenchmarkSampledALS).
func TestSampledFitNearExact(t *testing.T) {
	x := denseCube(30, 4, 4)
	norm := x.Norm()
	opts := sampledOpts(2)
	opts.Solver = sample.Exact
	exact, err := cp.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Solver = sample.Sampled
	smp, err := cp.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	fitE := 1 - cp.LossAgainst(x, exact.Factors)/norm
	fitS := 1 - cp.LossAgainst(x, smp.Factors)/norm
	if fitE < 0.95 {
		t.Fatalf("exact fit %.4f too low for a planted model", fitE)
	}
	if gap := fitE - fitS; gap > 5e-2 {
		t.Fatalf("sampled fit %.4f trails exact %.4f by %.4f", fitS, fitE, gap)
	}
}

// TestSampledStreamDeterministicWorldSize drives the full public
// stream — static CP on the first snapshot, an incremental DTD step on
// the second — under the sampled solver with a 3-worker in-process
// cluster, twice, and demands bitwise-identical factors: at a fixed
// world size every rank replays its own draw streams exactly.
func TestSampledStreamDeterministicWorldSize(t *testing.T) {
	first := denseCube(18, 4, 11)
	grown := denseCube(22, 4, 11)
	run := func() []*dismastd.Dense {
		s := dismastd.NewStream(dismastd.Options{
			Rank: 4, MaxIters: 4, Seed: 3, Workers: 3, Threads: 2,
			Solver: "sampled", Samples: 1024,
		})
		for _, x := range []*tensor.Tensor{first, grown} {
			if _, err := s.Ingest(x); err != nil {
				t.Fatal(err)
			}
		}
		return s.Factors()
	}
	factorsEqual(t, run(), run(), "world-size replay")
}
