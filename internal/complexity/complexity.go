// Package complexity encodes the paper's analytical results —
// Theorem 2 (time), Theorem 3 (memory), and Theorem 4 (network
// communication) — as executable formulas, so the test suite can check
// that the implementation's *measured* counters (work units from the
// cluster runtime, bytes from the transport, allocated state from the
// plan) scale the way Section IV-C predicts.
//
// The formulas follow the paper's simplified setting: an N-th order
// stream where every old mode has size I and grows by d, rank R, M
// workers, and nnz = nnz(X \ X̃) complement entries. They are stated up
// to constant factors, as the theorems are; the tests assert *ratios*
// across parameter sweeps, never absolute values.
package complexity

// Params is the paper's parameter set for one streaming step.
type Params struct {
	N   int  // tensor order
	I   int  // per-mode old size
	D   int  // per-mode growth
	R   int  // CP rank
	M   int  // worker count
	NNZ int  // nnz(X \ X̃)
	MTP bool // partitioner: MTP sorts (I log I), GTP scans (I)
}

// TimeOps evaluates Theorem 2:
//
//	O(N(nnz·R + R³ + IR² + dR² + IR + dR + R² + I))          with GTP
//	O(N(nnz·R + R³ + IR² + dR² + IR + dR + R² + I·log I))    with MTP
func TimeOps(p Params) float64 {
	n := float64(p.N)
	i := float64(p.I)
	d := float64(p.D)
	r := float64(p.R)
	nnz := float64(p.NNZ)
	partition := i
	if p.MTP {
		partition = i * log2(i)
	}
	return n * (nnz*r + r*r*r + i*r*r + d*r*r + i*r + d*r + r*r + partition)
}

// MemoryFloats evaluates Theorem 3, in float64-equivalents:
//
//	O(nnz + MNR² + NIR + NdR)
//
// — the complement entries, the replicated R×R products on M workers,
// and the factor matrices plus their MTTKRP buffers.
func MemoryFloats(p Params) float64 {
	n := float64(p.N)
	i := float64(p.I)
	d := float64(p.D)
	r := float64(p.R)
	m := float64(p.M)
	return float64(p.NNZ) + m*n*r*r + n*i*r + n*d*r
}

// ImplMemoryFloats evaluates the memory of THIS implementation, which
// deviates from Theorem 3 in one documented way: each worker holds a
// full replica of every factor matrix (M·N·(I+d)·R instead of the
// paper's collectively-owned N·(I+d)·R), trading memory for the simpler
// subscription-based row exchange. The complement is additionally
// indexed once per mode (N·nnz entry ids).
func ImplMemoryFloats(p Params) float64 {
	n := float64(p.N)
	i := float64(p.I)
	d := float64(p.D)
	r := float64(p.R)
	m := float64(p.M)
	return float64(p.NNZ)*(1+n/2) + m*n*r*r + m*n*(i+d)*r
}

// CommBytes evaluates Theorem 4, in float64-equivalents transferred per
// step:
//
//	O(nnz + MNR² + NIR + NdR)
//
// — shipping every complement entry to its mode partitions, the
// all-to-all Gram reductions, and the factor rows exchanged among
// partitions.
func CommBytes(p Params) float64 {
	n := float64(p.N)
	i := float64(p.I)
	d := float64(p.D)
	r := float64(p.R)
	m := float64(p.M)
	return float64(p.NNZ) + m*n*r*r + n*i*r + n*d*r
}

func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	l := 0.0
	for x >= 2 {
		x /= 2
		l++
	}
	return l
}
