package complexity

import (
	"testing"

	"dismastd/internal/core"
	"dismastd/internal/dtd"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

func base() Params {
	return Params{N: 3, I: 40, D: 10, R: 8, M: 4, NNZ: 5000}
}

func TestFormulasMonotone(t *testing.T) {
	p := base()
	grow := func(name string, f func(Params) Params, eval func(Params) float64) {
		if eval(f(p)) <= eval(p) {
			t.Fatalf("%s: formula not increasing", name)
		}
	}
	for name, eval := range map[string]func(Params) float64{
		"time": TimeOps, "memory": MemoryFloats, "comm": CommBytes, "implMemory": ImplMemoryFloats,
	} {
		grow(name+"/nnz", func(q Params) Params { q.NNZ *= 2; return q }, eval)
		grow(name+"/R", func(q Params) Params { q.R *= 2; return q }, eval)
		grow(name+"/I", func(q Params) Params { q.I *= 2; return q }, eval)
	}
	// M enters memory and communication but not the time formula.
	q := p
	q.M *= 4
	if CommBytes(q) <= CommBytes(p) || MemoryFloats(q) <= MemoryFloats(p) {
		t.Fatal("M should increase memory and communication")
	}
	if TimeOps(q) != TimeOps(p) {
		t.Fatal("Theorem 2 has no M term")
	}
	// MTP pays I log I instead of I.
	mtp := p
	mtp.MTP = true
	if TimeOps(mtp) <= TimeOps(p) {
		t.Fatal("MTP partitioning term should exceed GTP's")
	}
}

// measure runs one distributed step and returns (total work units,
// total bytes sent).
func measure(t *testing.T, dims, oldDims []int, nnz, rank, workers int, seed uint64) (float64, int64) {
	t.Helper()
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.Float64()+0.5)
	}
	full := b.Build()
	prev, _, err := dtd.Init(full.Prefix(oldDims), dtd.Options{Rank: rank, MaxIters: 5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := core.Step(prev, full, core.Options{
		Rank: rank, MaxIters: 3, Tol: 0, Workers: workers, Method: partition.MTPMethod, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats.Cluster.TotalWork(), stats.Cluster.TotalBytes()
}

func TestTheorem2WorkScalesWithNNZ(t *testing.T) {
	// Quadrupling the complement nnz with dims fixed must grow the
	// measured work by clearly more than 1x but at most ~4x plus the
	// nnz-independent row-update floor.
	dims := []int{50, 50, 50}
	old := []int{40, 40, 40}
	w1, _ := measure(t, dims, old, 3000, 8, 4, 1)
	w4, _ := measure(t, dims, old, 12000, 8, 4, 1)
	ratio := w4 / w1
	if ratio < 1.5 || ratio > 4.5 {
		t.Fatalf("4x nnz changed work by %.2fx; Theorem 2 predicts between the IR² floor and linear", ratio)
	}
}

func TestTheorem2WorkScalesWithR(t *testing.T) {
	// The R² and R³ terms must make work grow superlinearly in R.
	dims := []int{50, 50, 50}
	old := []int{40, 40, 40}
	w1, _ := measure(t, dims, old, 4000, 4, 4, 3)
	w2, _ := measure(t, dims, old, 4000, 8, 4, 3)
	if ratio := w2 / w1; ratio < 2 {
		t.Fatalf("doubling R grew work only %.2fx; expected ≥ 2x from the R² terms", ratio)
	}
}

func TestTheorem4TrafficIndependentOfNNZ(t *testing.T) {
	// Per Theorem 4 the per-iteration traffic has no nnz·R term: with
	// fixed dims and R, quadrupling nnz must grow traffic sublinearly
	// (only through denser row subscriptions, bounded by the dims).
	dims := []int{50, 50, 50}
	old := []int{40, 40, 40}
	_, b1 := measure(t, dims, old, 3000, 8, 4, 5)
	_, b4 := measure(t, dims, old, 12000, 8, 4, 5)
	if ratio := float64(b4) / float64(b1); ratio > 2.0 {
		t.Fatalf("4x nnz grew traffic %.2fx; Theorem 4 predicts dims-bounded growth", ratio)
	}
}

func TestTheorem4TrafficGrowsWithWorkersAndR(t *testing.T) {
	dims := []int{60, 60, 60}
	old := []int{48, 48, 48}
	_, b4 := measure(t, dims, old, 5000, 8, 4, 7)
	_, b8 := measure(t, dims, old, 5000, 8, 8, 7)
	if b8 <= b4 {
		t.Fatalf("more workers should increase total traffic (MNR² and row fan-out): %d vs %d", b8, b4)
	}
	_, r8 := measure(t, dims, old, 5000, 8, 4, 9)
	_, r16 := measure(t, dims, old, 5000, 16, 4, 9)
	if r16 <= r8 {
		t.Fatalf("doubling R should increase traffic: %d vs %d", r16, r8)
	}
}

func TestMemoryEstimateOrdering(t *testing.T) {
	// The implementation's replica memory must dominate the paper's
	// collectively-owned bound whenever M > 1.
	p := base()
	if ImplMemoryFloats(p) <= MemoryFloats(p) {
		t.Fatal("replicated factors must cost more than the Theorem 3 bound")
	}
	p.M = 1
	if ImplMemoryFloats(p) < MemoryFloats(p)*0.5 {
		t.Fatal("single-worker memory should be comparable to the bound")
	}
}
