package mttkrp

import (
	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/tensor"
)

// Kernel is a pluggable representation of one mode of a tensor region,
// grouped by output row: the contract every sweep in the repository —
// MTTKRP accumulation and completion's per-row normal equations — runs
// against. Two implementations exist: *ModeView (the COO walk, the
// default) and *layout.ModeLayout (the compiled fiber-grouped layout).
// Both group entries in the same stable order, so a given engine
// produces bitwise-identical factors under either.
//
// Groups are indexed 0..NumRows()-1; group g owns output row
// GroupRow(g) and the positions GroupRange(g). Positions address
// entries in group order; EntryCoord/EntryVal read one entry's
// coordinates and value without exposing how the representation stores
// them.
type Kernel interface {
	// NNZ reports the number of entries the kernel covers.
	NNZ() int
	// NumRows returns the number of non-empty row groups.
	NumRows() int
	// ModeSize returns the target mode's size — the output row count.
	ModeSize() int
	// GroupRow returns the output row of group g.
	GroupRow(g int) int32
	// GroupRange returns the position range [p0, p1) of group g.
	GroupRange(g int) (p0, p1 int32)
	// EntryCoord returns the mode-k coordinate of the entry at position p.
	EntryCoord(p int32, k int) int32
	// EntryVal returns the value of the entry at position p.
	EntryVal(p int32) float64
	// Validate panics unless dst and factors match the kernel's source
	// tensor (one factor per mode, rows equal to mode sizes, a common
	// column count shared with dst).
	Validate(dst *mat.Dense, factors []*mat.Dense)
	// ChunkStarts returns a work-balanced grid of at most c contiguous
	// group ranges, cached per c. Chunks own whole groups, so the grid
	// feeds scheduling only, never floating-point order.
	ChunkStarts(c int) []int32
	// AccumulateGroups adds the mode MTTKRP of groups [g0, g1) into
	// dst. tmp and acc are R-sized scratch. Disjoint group ranges write
	// disjoint rows — the unit of parallel work — and the bits a group
	// produces depend only on its own entries, never on the split.
	AccumulateGroups(dst *mat.Dense, factors []*mat.Dense, g0, g1 int, tmp, acc []float64)
}

// NewKernel builds the selected representation over every entry of t.
func NewKernel(t *tensor.Tensor, mode int, kind layout.Kind) Kernel {
	if kind == layout.Compiled {
		return layout.Compile(t, mode, nil)
	}
	return NewModeView(t, mode)
}

// NewKernelOf builds the selected representation over an explicit
// entry subset. Like NewModeViewOf, a nil or empty list is an empty
// kernel — what an idle distributed rank holds.
func NewKernelOf(t *tensor.Tensor, mode int, entries []int32, kind layout.Kind) Kernel {
	if entries == nil {
		entries = []int32{}
	}
	if kind == layout.Compiled {
		return layout.Compile(t, mode, entries)
	}
	return NewModeViewOf(t, mode, entries)
}

// CachedKernelOf is NewKernelOf backed by a layout cache: compiled
// layouts are memoised per (tensor, mode, entry-list identity) and
// recompiled only when the region changes — stream growth replaces the
// tensor, elastic migration replaces the entry lists. COO views are
// cheap enough to rebuild and bypass the cache; a nil cache compiles
// directly.
func CachedKernelOf(c *layout.Cache, t *tensor.Tensor, mode int, entries []int32, kind layout.Kind) Kernel {
	if kind == layout.Compiled && c != nil {
		if entries == nil {
			entries = []int32{}
		}
		return c.Get(t, mode, entries)
	}
	return NewKernelOf(t, mode, entries, kind)
}
