package mttkrp

import (
	"math"
	"testing"

	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/obs"
	"dismastd/internal/par"
)

func bitsEqual(t *testing.T, name string, got, want *mat.Dense) {
	t.Helper()
	for i, v := range got.Data {
		if math.Float64bits(v) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %x, want %x", name, i, v, want.Data[i])
		}
	}
}

// TestSubsetViewMatchesFlat pins the view generalisation the
// distributed workers rely on: grouping an arbitrary entry subset and
// accumulating into a zeroed destination must reproduce the flat
// kernel run over the same subset, bit for bit.
func TestSubsetViewMatchesFlat(t *testing.T) {
	x := randomTensor([]int{13, 9, 7}, 400, 3)
	factors := randomFactors(x.Dims, 5, 4)
	// An adversarial subset: strided, unsorted within strides.
	var entries []int32
	for e := x.NNZ() - 1; e >= 0; e -= 3 {
		entries = append(entries, int32(e))
	}
	want := mat.New(x.Dims[1], 5)
	tmp := make([]float64, 5)
	for _, e := range entries {
		entryProductInto(tmp, x, factors, 1, int(e))
		out := want.Row(int(x.Coords[int(e)*x.Order()+1]))
		for c := range tmp {
			out[c] += tmp[c]
		}
	}
	view := NewModeViewOf(x, 1, entries)
	if view.NNZ() != len(entries) {
		t.Fatalf("view covers %d entries, want %d", view.NNZ(), len(entries))
	}
	got := mat.New(x.Dims[1], 5)
	view.AccumulateInto(got, factors)
	bitsEqual(t, "subset view", got, want)
}

// TestParAccumulateBitwiseAcrossThreads pins the tentpole determinism
// property at the kernel level: the chunked MTTKRP reproduces the
// sequential grouped kernel exactly for every thread count.
func TestParAccumulateBitwiseAcrossThreads(t *testing.T) {
	x := randomTensor([]int{50, 31, 8}, 3000, 9)
	factors := randomFactors(x.Dims, 6, 10)
	for mode := 0; mode < x.Order(); mode++ {
		view := NewModeView(x, mode)
		want := mat.New(x.Dims[mode], 6)
		view.AccumulateInto(want, factors)
		for _, threads := range []int{1, 2, 3, 8} {
			pool := par.New(threads)
			wss := mat.NewWorkspaceSet(pool.Threads())
			acc := NewParAccumulator(pool, wss, obs.New())
			got := mat.New(x.Dims[mode], 6)
			acc.Accumulate(got, view, factors, "mttkrp.chunk")
			bitsEqual(t, "parallel accumulate", got, want)
			pool.Close()
		}
	}
}

func TestChunkStartsBalanced(t *testing.T) {
	x := randomTensor([]int{40, 12, 6}, 5000, 21)
	view := NewModeView(x, 0)
	for _, c := range []int{1, 2, 3, 8, 100} {
		starts := view.ChunkStarts(c)
		if int(starts[0]) != 0 || int(starts[len(starts)-1]) != view.NumRows() {
			t.Fatalf("c=%d: grid %v does not span all %d groups", c, starts, view.NumRows())
		}
		if len(starts)-1 > c {
			t.Fatalf("c=%d: %d chunks", c, len(starts)-1)
		}
		for i := 1; i < len(starts); i++ {
			if starts[i] < starts[i-1] {
				t.Fatalf("c=%d: non-monotone grid %v", c, starts)
			}
		}
		// Each chunk's entry load stays within 2x of the ideal share
		// (+ one group of slack for the boundary snap).
		if c > 1 && c <= view.NumRows() {
			ideal := view.NNZ() / c
			maxGroup := 0
			for g := 0; g < view.NumRows(); g++ {
				if sz := int(view.Starts[g+1] - view.Starts[g]); sz > maxGroup {
					maxGroup = sz
				}
			}
			for i := 0; i+1 < len(starts); i++ {
				load := int(view.Starts[starts[i+1]] - view.Starts[starts[i]])
				if load > 2*ideal+maxGroup {
					t.Fatalf("c=%d chunk %d carries %d entries, ideal %d (max group %d)", c, i, load, ideal, maxGroup)
				}
			}
		}
	}
}

// TestParAccumulateSteadyStateAllocFree: a warm accumulator dispatches
// with zero heap allocations, preserving the PR 2 invariant with the
// pool live.
func TestParAccumulateSteadyStateAllocFree(t *testing.T) {
	x := randomTensor([]int{64, 32, 16}, 4000, 5)
	factors := randomFactors(x.Dims, 8, 6)
	view := NewModeView(x, 0)
	pool := par.New(4)
	defer pool.Close()
	wss := mat.NewWorkspaceSet(pool.Threads())
	acc := NewParAccumulator(pool, wss, obs.New())
	dst := mat.New(x.Dims[0], 8)
	pass := func() {
		dst.Zero()
		acc.Accumulate(dst, view, factors, "mode0/mttkrp.chunk")
	}
	pass()
	if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
		t.Fatalf("steady-state parallel MTTKRP allocates %v times, want 0", allocs)
	}
}

// TestParAccumulateCompiledSteadyStateAllocFree: the compiled layout's
// post-compile steady state — a warm accumulator dispatching a
// compiled kernel across the pool — allocates nothing, same contract
// as the COO view.
func TestParAccumulateCompiledSteadyStateAllocFree(t *testing.T) {
	x := randomTensor([]int{64, 32, 16}, 4000, 5)
	factors := randomFactors(x.Dims, 8, 6)
	kernel := NewKernel(x, 0, layout.Compiled)
	pool := par.New(4)
	defer pool.Close()
	wss := mat.NewWorkspaceSet(pool.Threads())
	acc := NewParAccumulator(pool, wss, obs.New())
	dst := mat.New(x.Dims[0], 8)
	pass := func() {
		dst.Zero()
		acc.Accumulate(dst, kernel, factors, "mode0/mttkrp.chunk")
	}
	pass()
	if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
		t.Fatalf("steady-state compiled parallel MTTKRP allocates %v times, want 0", allocs)
	}
}

// TestParAccumulateCompiledMatchesCOOAllThreadCounts: the parallel
// compiled kernel reproduces the sequential COO result bitwise at
// every pool size.
func TestParAccumulateCompiledMatchesCOOAllThreadCounts(t *testing.T) {
	x := randomTensor([]int{40, 24, 12}, 3000, 7)
	factors := randomFactors(x.Dims, 6, 8)
	for mode := 0; mode < x.Order(); mode++ {
		want := mat.New(x.Dims[mode], 6)
		AccumulateInto(want, x, factors, mode)
		kernel := NewKernel(x, mode, layout.Compiled)
		for _, threads := range []int{1, 2, 3, 8} {
			pool := par.New(threads)
			wss := mat.NewWorkspaceSet(pool.Threads())
			acc := NewParAccumulator(pool, wss, obs.New())
			dst := mat.New(x.Dims[mode], 6)
			acc.Accumulate(dst, kernel, factors, "")
			pool.Close()
			for i, v := range dst.Data {
				if math.Float64bits(v) != math.Float64bits(want.Data[i]) {
					t.Fatalf("mode %d threads %d: parallel compiled differs from flat COO at %d", mode, threads, i)
				}
			}
		}
	}
}
