package mttkrp

// Row-block-parallel MTTKRP over any Kernel. The grouped
// representations already isolate each output row in its own group, so
// parallelism is a partition of the group list: a work-balanced grid
// of contiguous group ranges (nnz-balanced for the COO view,
// fiber-balanced for the compiled layout), one chunk per pool thread,
// each chunk accumulating with scratch from its thread's workspace. No
// floating-point accumulator crosses a chunk boundary, so the result
// is bitwise identical at every thread count (and to the sequential
// grouped kernel, which is the 1-chunk case).

import (
	"fmt"

	"dismastd/internal/mat"
	"dismastd/internal/obs"
	"dismastd/internal/par"
)

// ParAccumulator runs row-grouped MTTKRPs on a pool. It is owned by
// one driving goroutine; the per-call fields below make dispatch
// allocation-free, so a warm accumulator adds nothing to the steady
// state. Construct once per driver next to the pool and its
// WorkspaceSet.
type ParAccumulator struct {
	pool *par.Pool
	wss  *mat.WorkspaceSet
	o    *obs.Obs

	cChunks *obs.Counter
	gDepth  *obs.Gauge

	// Per-call state, set by Accumulate and read by RunChunk.
	kernel  Kernel
	dst     *mat.Dense
	factors []*mat.Dense
	span    string
}

// NewParAccumulator binds an accumulator to a pool and its per-thread
// workspaces. o may be nil; when live, every call records the chunk
// count on the "par.chunks" counter and the dispatch fan-out (chunks
// handed to pool workers) on the "par.queue.depth" gauge, and each
// chunk opens a span named by the call's chunkSpan argument.
func NewParAccumulator(pool *par.Pool, wss *mat.WorkspaceSet, o *obs.Obs) *ParAccumulator {
	if wss.Len() < pool.Threads() {
		panic(fmt.Sprintf("mttkrp: ParAccumulator with %d workspaces for %d threads", wss.Len(), pool.Threads()))
	}
	return &ParAccumulator{
		pool:    pool,
		wss:     wss,
		o:       o,
		cChunks: o.Counter("par.chunks"),
		gDepth:  o.Gauge("par.queue.depth"),
	}
}

// Accumulate adds the kernel's MTTKRP into dst, chunked across the
// pool. chunkSpan names the per-chunk spans (e.g.
// "mode0/mttkrp.chunk"); empty means no spans.
func (p *ParAccumulator) Accumulate(dst *mat.Dense, k Kernel, factors []*mat.Dense, chunkSpan string) {
	k.Validate(dst, factors)
	starts := k.ChunkStarts(p.pool.Threads())
	p.kernel, p.dst, p.factors, p.span = k, dst, factors, chunkSpan
	p.pool.ForChunks(starts, p)
	p.kernel, p.dst, p.factors = nil, nil, nil
	chunks := int64(len(starts) - 1)
	p.cChunks.Add(chunks)
	p.gDepth.Set(float64(chunks - 1))
}

// RunChunk implements par.Body over a group range of the current
// kernel.
func (p *ParAccumulator) RunChunk(g0, g1, tid int) {
	var sp obs.Span
	if p.span != "" {
		sp = p.o.Span(p.span)
	}
	ws := p.wss.At(tid)
	mark := ws.Mark()
	r := p.dst.Cols
	p.kernel.AccumulateGroups(p.dst, p.factors, g0, g1, ws.TakeVec(r), ws.TakeVec(r))
	ws.Release(mark)
	if p.span != "" {
		sp.End()
	}
}
