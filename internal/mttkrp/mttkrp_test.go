package mttkrp

import (
	"fmt"
	"testing"
	"testing/quick"

	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

func randomTensor(dims []int, nnz int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.NormFloat64())
	}
	return b.Build()
}

func randomFactors(dims []int, r int, seed uint64) []*mat.Dense {
	src := xrand.New(seed)
	out := make([]*mat.Dense, len(dims))
	for m, d := range dims {
		out[m] = mat.RandomGaussian(d, r, src)
	}
	return out
}

// naiveMTTKRP computes X_(n) · KR(A_k, k≠n) through an explicit dense
// unfolding and materialised Khatri-Rao product — the definitional form
// against which both sparse kernels are checked.
func naiveMTTKRP(t *tensor.Tensor, factors []*mat.Dense, mode int) *mat.Dense {
	n := t.Order()
	// Dense unfolding X_(mode): rows indexed by mode coordinate, columns
	// by the remaining coordinates with the *later-mode-first* Khatri-Rao
	// convention (A_N ⊙ ... ⊙ A_{n+1} ⊙ A_{n-1} ⊙ ... ⊙ A_1): the column
	// offset of coordinate c is Σ_{k≠mode} c_k · Π_{l<k, l≠mode} I_l.
	cols := 1
	for m, d := range t.Dims {
		if m != mode {
			cols *= d
		}
	}
	unf := mat.New(t.Dims[mode], cols)
	buf := make([]int, n)
	for e := 0; e < t.NNZ(); e++ {
		c := t.Coord(e, buf)
		off := 0
		stride := 1
		for k := 0; k < n; k++ {
			if k == mode {
				continue
			}
			off += c[k] * stride
			stride *= t.Dims[k]
		}
		unf.Set(c[mode], off, t.Val(e))
	}
	// KR(A_k, k≠mode) with the same convention: row index of coordinate
	// tuple is Σ c_k·Π_{l<k} I_l, i.e. KhatriRao(later, earlier) nested.
	var kr *mat.Dense
	for k := 0; k < n; k++ {
		if k == mode {
			continue
		}
		if kr == nil {
			kr = factors[k].Clone()
		} else {
			kr = mat.KhatriRao(factors[k], kr)
		}
	}
	return mat.Mul(unf, kr)
}

func TestFlatKernelMatchesNaive(t *testing.T) {
	dims := []int{5, 6, 4}
	x := randomTensor(dims, 40, 1)
	factors := randomFactors(dims, 3, 2)
	for mode := 0; mode < 3; mode++ {
		got := Compute(x, factors, mode)
		want := naiveMTTKRP(x, factors, mode)
		if d := mat.MaxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("mode %d: flat kernel differs from naive by %v", mode, d)
		}
	}
}

func TestFourthOrderMatchesNaive(t *testing.T) {
	dims := []int{4, 3, 5, 2}
	x := randomTensor(dims, 30, 3)
	factors := randomFactors(dims, 2, 4)
	for mode := 0; mode < 4; mode++ {
		got := Compute(x, factors, mode)
		want := naiveMTTKRP(x, factors, mode)
		if d := mat.MaxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("mode %d: differs from naive by %v", mode, d)
		}
	}
}

func TestRowGroupedMatchesFlat(t *testing.T) {
	dims := []int{30, 20, 10}
	x := randomTensor(dims, 500, 5)
	factors := randomFactors(dims, 4, 6)
	for mode := 0; mode < 3; mode++ {
		flat := Compute(x, factors, mode)
		grouped := mat.New(dims[mode], 4)
		NewModeView(x, mode).AccumulateInto(grouped, factors)
		if d := mat.MaxAbsDiff(flat, grouped); d > 1e-10 {
			t.Fatalf("mode %d: grouped kernel differs by %v", mode, d)
		}
	}
}

func TestAccumulateSumsPartitions(t *testing.T) {
	// MTTKRP over partitions of the entries must sum to the whole —
	// the property the distributed computation relies on.
	dims := []int{12, 10, 8}
	x := randomTensor(dims, 300, 7)
	factors := randomFactors(dims, 3, 8)
	whole := Compute(x, factors, 0)

	// Split by first-mode slice parity into two sub-tensors.
	even := tensor.NewBuilder(dims)
	odd := tensor.NewBuilder(dims)
	buf := make([]int, 3)
	for e := 0; e < x.NNZ(); e++ {
		c := x.Coord(e, buf)
		if c[0]%2 == 0 {
			even.Append(c, x.Val(e))
		} else {
			odd.Append(c, x.Val(e))
		}
	}
	sum := mat.New(dims[0], 3)
	AccumulateInto(sum, even.Build(), factors, 0)
	AccumulateInto(sum, odd.Build(), factors, 0)
	if d := mat.MaxAbsDiff(whole, sum); d > 1e-10 {
		t.Fatalf("partition sum differs by %v", d)
	}
}

func TestModeViewStructure(t *testing.T) {
	dims := []int{6, 5, 4}
	x := randomTensor(dims, 50, 9)
	for mode := 0; mode < 3; mode++ {
		v := NewModeView(x, mode)
		if len(v.Starts) != len(v.Rows)+1 {
			t.Fatalf("mode %d: %d starts for %d rows", mode, len(v.Starts), len(v.Rows))
		}
		total := 0
		n := x.Order()
		for g := 0; g < len(v.Rows); g++ {
			for p := v.Starts[g]; p < v.Starts[g+1]; p++ {
				e := int(v.EntryOrder[p])
				if x.Coords[e*n+mode] != v.Rows[g] {
					t.Fatalf("mode %d: entry %d grouped under wrong row", mode, e)
				}
				total++
			}
		}
		if total != x.NNZ() {
			t.Fatalf("mode %d: view covers %d of %d entries", mode, total, x.NNZ())
		}
		// Rows ascending, matching the slice histogram's support.
		hist := x.SliceNNZ(mode)
		idx := 0
		for i, h := range hist {
			if h == 0 {
				continue
			}
			if idx >= len(v.Rows) || int(v.Rows[idx]) != i {
				t.Fatalf("mode %d: row %d missing from view", mode, i)
			}
			if int(v.Starts[idx+1]-v.Starts[idx]) != int(h) {
				t.Fatalf("mode %d: row %d group size %d, histogram %d", mode, i, v.Starts[idx+1]-v.Starts[idx], h)
			}
			idx++
		}
	}
}

func TestInnerProductMatchesMTTKRPReuse(t *testing.T) {
	// <X, Y> must equal Σ_i M[i,:]·A_n[i,:] for every mode n — the
	// reuse identity of Section IV-B4.
	dims := []int{8, 7, 6}
	x := randomTensor(dims, 120, 11)
	factors := randomFactors(dims, 3, 12)
	direct := InnerProduct(x, factors)
	for mode := 0; mode < 3; mode++ {
		m := Compute(x, factors, mode)
		viaReuse := mat.Dot(m, factors[mode])
		if diff := direct - viaReuse; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("mode %d: reuse inner product differs by %v", mode, diff)
		}
	}
}

func TestInnerProductAgainstDense(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		dims := []int{4, 3, 3}
		x := randomTensor(dims, 15, uint64(seed)+1)
		factors := randomFactors(dims, 2, uint64(seed)+100)
		// Dense: Σ over all cells of X[c]·Y[c].
		dense := x.ToDense()
		want := 0.0
		idx := 0
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				for k := 0; k < dims[2]; k++ {
					y := 0.0
					for r := 0; r < 2; r++ {
						y += factors[0].At(i, r) * factors[1].At(j, r) * factors[2].At(k, r)
					}
					want += dense[idx] * y
					idx++
				}
			}
		}
		got := InnerProduct(x, factors)
		diff := got - want
		return diff < 1e-9 && diff > -1e-9
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksPanic(t *testing.T) {
	dims := []int{3, 3, 3}
	x := randomTensor(dims, 10, 13)
	good := randomFactors(dims, 2, 14)
	for name, fn := range map[string]func(){
		"wrong factor count": func() { Compute(x, good[:2], 0) },
		"wrong factor rows":  func() { Compute(x, []*mat.Dense{good[0], mat.New(5, 2), good[2]}, 0) },
		"ragged cols":        func() { Compute(x, []*mat.Dense{good[0], good[1], mat.New(3, 4)}, 0) },
		"bad mode":           func() { Compute(x, good, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func benchTensor() (*tensor.Tensor, []*mat.Dense) {
	dims := []int{2000, 2000, 500}
	x := randomTensor(dims, 200000, 21)
	return x, randomFactors(dims, 10, 22)
}

func BenchmarkFlatKernel(b *testing.B) {
	x, factors := benchTensor()
	dst := mat.New(x.Dims[0], 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		AccumulateInto(dst, x, factors, 0)
	}
}

func BenchmarkRowGroupedKernel(b *testing.B) {
	x, factors := benchTensor()
	v := NewModeView(x, 0)
	dst := mat.New(x.Dims[0], 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		v.AccumulateInto(dst, factors)
	}
}

func BenchmarkFlatKernelWS(b *testing.B) {
	x, factors := benchTensor()
	dst := mat.New(x.Dims[0], 10)
	ws := mat.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		AccumulateIntoWS(dst, x, factors, 0, ws)
	}
}

func BenchmarkRowGroupedKernelWS(b *testing.B) {
	x, factors := benchTensor()
	v := NewModeView(x, 0)
	dst := mat.New(x.Dims[0], 10)
	ws := mat.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		v.AccumulateIntoWS(dst, factors, ws)
	}
}

// BenchmarkMTTKRP is the layout comparison grid for BENCH_kernels.json:
// one sequential MTTKRP per (layout, mode) on the same tensor, so
// benchjson can derive each mode's speedup_vs_coo column. Compile time
// is excluded — the compiled rows measure the steady state a snapshot's
// sweeps run in.
func BenchmarkMTTKRP(b *testing.B) {
	x, factors := benchTensor()
	for _, kind := range []layout.Kind{layout.COO, layout.Compiled} {
		for mode := 0; mode < x.Order(); mode++ {
			k := NewKernel(x, mode, kind)
			dst := mat.New(x.Dims[mode], 10)
			tmp := make([]float64, 10)
			acc := make([]float64, 10)
			b.Run(fmt.Sprintf("layout=%s/mode=%d", kind, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					dst.Zero()
					k.AccumulateGroups(dst, factors, 0, k.NumRows(), tmp, acc)
				}
			})
		}
	}
}

// BenchmarkCompile prices the one-off cost the compiled rows of
// BenchmarkMTTKRP exclude: building a mode layout from the tensor.
func BenchmarkCompile(b *testing.B) {
	x, _ := benchTensor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layout.Compile(x, 0, nil)
	}
}

// BenchmarkChunkStarts is the regression guard for the per-(view,
// thread-count) grid cache: a warm view serving two alternating chunk
// counts must never rebuild a grid (0 B/op in BENCH_kernels.json).
func BenchmarkChunkStarts(b *testing.B) {
	x, _ := benchTensor()
	for _, tc := range []struct {
		name string
		k    Kernel
	}{
		{"layout=coo", NewKernel(x, 0, layout.COO)},
		{"layout=compiled", NewKernel(x, 0, layout.Compiled)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			tc.k.ChunkStarts(4)
			tc.k.ChunkStarts(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.k.ChunkStarts(4)
				tc.k.ChunkStarts(8)
			}
		})
	}
}
