// Package mttkrp implements the Matricized Tensor Times Khatri-Rao
// Product, the bottleneck operator of CP-ALS and of DisMASTD
// (Section IV-B1, Eq. 6):
//
//	M[i, :] = Σ_{entries with mode-n index i} X[c] · ∏_{k≠n} A_k[c_k, :]
//
// Only non-zero tensor entries contribute, and each entry touches one
// row per factor — the two properties the paper's partitioning exploits.
//
// The sweep engines run against the Kernel interface (kernel.go), a
// pluggable representation of one mode of a region with two
// implementations: ModeView, the row-grouped COO walk that orders
// entries by their mode-n index so each output row is accumulated
// locally before a single write-back, and internal/layout.ModeLayout,
// a compiled fiber-grouped copy of the region with unit-stride loads.
// A flat kernel that scatters each entry straight into the output also
// remains (AccumulateInto), both as the reference the grouped kernels
// must reproduce bit for bit and for fold-ins that accumulate onto
// live non-zero state, where regrouping would change rounding. The
// ablation bench in the repository root compares them.
package mttkrp

import (
	"fmt"

	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/tensor"
)

// checkFactors panics unless factors match the tensor: one factor per
// mode, row counts equal to mode sizes, and a common column count R,
// which it returns.
func checkFactors(t *tensor.Tensor, factors []*mat.Dense) int {
	if len(factors) != t.Order() {
		panic(fmt.Sprintf("mttkrp: %d factors for order-%d tensor", len(factors), t.Order()))
	}
	r := factors[0].Cols
	for m, f := range factors {
		if f.Rows != t.Dims[m] {
			panic(fmt.Sprintf("mttkrp: factor %d has %d rows, mode size %d", m, f.Rows, t.Dims[m]))
		}
		if f.Cols != r {
			panic(fmt.Sprintf("mttkrp: factor %d has %d cols, factor 0 has %d", m, f.Cols, r))
		}
	}
	return r
}

// Compute returns the mode-n MTTKRP of t with the given factors as a
// fresh Dims[mode] x R matrix, using the flat kernel.
func Compute(t *tensor.Tensor, factors []*mat.Dense, mode int) *mat.Dense {
	r := checkFactors(t, factors)
	dst := mat.New(t.Dims[mode], r)
	AccumulateInto(dst, t, factors, mode)
	return dst
}

// AccumulateInto adds the mode-n MTTKRP of t into dst, which must be
// Dims[mode] x R. Accumulation (rather than overwrite) lets callers sum
// contributions from several tensor partitions, as the distributed
// runtime does.
func AccumulateInto(dst *mat.Dense, t *tensor.Tensor, factors []*mat.Dense, mode int) {
	r := checkFactors(t, factors)
	accumulateScratch(dst, t, factors, mode, make([]float64, r))
}

// AccumulateIntoWS is AccumulateInto with the per-entry product buffer
// checked out of ws instead of allocated, for allocation-free steady
// state. ws is released to its entry mark before returning.
func AccumulateIntoWS(dst *mat.Dense, t *tensor.Tensor, factors []*mat.Dense, mode int, ws *mat.Workspace) {
	r := checkFactors(t, factors)
	mark := ws.Mark()
	accumulateScratch(dst, t, factors, mode, ws.TakeVec(r))
	ws.Release(mark)
}

// entryProductInto fills tmp with entry e's contribution to the mode-n
// MTTKRP: X[e] · ∏_{k≠mode} A_k[coords_k, :]. It is the one inner
// kernel both the flat and the row-grouped paths run, so the two can
// never drift apart numerically.
func entryProductInto(tmp []float64, t *tensor.Tensor, factors []*mat.Dense, mode, e int) {
	n := t.Order()
	base := e * n
	v := t.Vals[e]
	for c := range tmp {
		tmp[c] = v
	}
	for k := 0; k < n; k++ {
		if k == mode {
			continue
		}
		row := factors[k].Row(int(t.Coords[base+k]))
		for c := range tmp {
			tmp[c] *= row[c]
		}
	}
}

func accumulateScratch(dst *mat.Dense, t *tensor.Tensor, factors []*mat.Dense, mode int, tmp []float64) {
	r := len(tmp)
	if mode < 0 || mode >= t.Order() {
		panic(fmt.Sprintf("mttkrp: mode %d on order-%d tensor", mode, t.Order()))
	}
	if dst.Rows != t.Dims[mode] || dst.Cols != r {
		panic(fmt.Sprintf("mttkrp: destination %dx%d, want %dx%d", dst.Rows, dst.Cols, t.Dims[mode], r))
	}
	n := t.Order()
	for e := 0; e < t.NNZ(); e++ {
		entryProductInto(tmp, t, factors, mode, e)
		out := dst.Row(int(t.Coords[e*n+mode]))
		for c := range tmp {
			out[c] += tmp[c]
		}
	}
}

// InnerProduct returns the inner product <X, [[A_1 ... A_N]]> =
// Σ_entries X[c] · Σ_r ∏_k A_k[c_k, r]. The distributed loss reuses the
// MTTKRP result instead (Section IV-B4); this direct form exists for
// verification and centralized baselines.
func InnerProduct(t *tensor.Tensor, factors []*mat.Dense) float64 {
	return innerProductScratch(t, factors, make([]float64, checkFactors(t, factors)))
}

// InnerProductWS is InnerProduct with the per-entry product buffer
// checked out of ws. ws is released to its entry mark before returning.
func InnerProductWS(t *tensor.Tensor, factors []*mat.Dense, ws *mat.Workspace) float64 {
	r := checkFactors(t, factors)
	mark := ws.Mark()
	total := innerProductScratch(t, factors, ws.TakeVec(r))
	ws.Release(mark)
	return total
}

func innerProductScratch(t *tensor.Tensor, factors []*mat.Dense, tmp []float64) float64 {
	n := t.Order()
	total := 0.0
	for e := 0; e < t.NNZ(); e++ {
		base := e * n
		for c := range tmp {
			tmp[c] = 1
		}
		for k := 0; k < n; k++ {
			row := factors[k].Row(int(t.Coords[base+k]))
			for c := range tmp {
				tmp[c] *= row[c]
			}
		}
		s := 0.0
		for _, v := range tmp {
			s += v
		}
		total += t.Vals[e] * s
	}
	return total
}

// ModeView is the COO Kernel: a counting-sort arrangement of tensor
// entries by one mode's coordinate, grouping together all entries of
// each slice, walked through the source tensor's coordinate arrays via
// an entry-order indirection. It is built once per (tensor, mode) and
// reused across ALS iterations — the sparsity pattern is fixed within
// a snapshot. A view may cover the whole tensor (NewModeView) or an
// explicit entry subset (NewModeViewOf), which is how the distributed
// workers group the entries their partition assigned them.
type ModeView struct {
	Mode       int
	EntryOrder []int32 // entry ids ordered by mode coordinate
	Rows       []int32 // distinct mode coordinates, ascending
	Starts     []int32 // group i spans EntryOrder[Starts[i]:Starts[i+1]]

	t       *tensor.Tensor // the viewed tensor, bound at construction
	chunker layout.Chunker // per-c chunk grids (see ChunkStarts)
}

// NewModeView builds the view of every entry in O(nnz + I_n).
func NewModeView(t *tensor.Tensor, mode int) *ModeView {
	return newModeView(t, mode, nil)
}

// NewModeViewOf builds the view of an explicit entry subset. entries
// lists tensor entry ids (a nil or empty list is an empty view — what
// an idle distributed rank holds). The counting sort is stable —
// entries of one slice keep their order from the input list — so the
// grouped kernel accumulates each output row in exactly the order the
// flat kernel would visit it.
func NewModeViewOf(t *tensor.Tensor, mode int, entries []int32) *ModeView {
	if entries == nil {
		entries = []int32{}
	}
	return newModeView(t, mode, entries)
}

func newModeView(t *tensor.Tensor, mode int, entries []int32) *ModeView {
	if mode < 0 || mode >= t.Order() {
		panic(fmt.Sprintf("mttkrp: NewModeView mode %d on order-%d tensor", mode, t.Order()))
	}
	order, counts := t.ModeSort(mode, entries)
	v := &ModeView{Mode: mode, EntryOrder: order, t: t}
	for i := 0; i < t.Dims[mode]; i++ {
		if counts[i+1] > counts[i] {
			v.Rows = append(v.Rows, int32(i))
			v.Starts = append(v.Starts, counts[i])
		}
	}
	v.Starts = append(v.Starts, int32(len(order)))
	return v
}

// NumRows returns the number of non-empty slices in the viewed mode.
func (v *ModeView) NumRows() int { return len(v.Rows) }

// ModeSize returns the viewed mode's size — the output row count.
func (v *ModeView) ModeSize() int { return v.t.Dims[v.Mode] }

// GroupRow returns the output row of group g.
func (v *ModeView) GroupRow(g int) int32 { return v.Rows[g] }

// GroupRange returns the position range [p0, p1) of group g.
func (v *ModeView) GroupRange(g int) (p0, p1 int32) {
	return v.Starts[g], v.Starts[g+1]
}

// EntryCoord returns the mode-k coordinate of the entry at position p.
func (v *ModeView) EntryCoord(p int32, k int) int32 {
	return v.t.Coords[int(v.EntryOrder[p])*v.t.Order()+k]
}

// EntryVal returns the value of the entry at position p.
func (v *ModeView) EntryVal(p int32) float64 { return v.t.Vals[v.EntryOrder[p]] }

// Validate panics unless dst and factors match the viewed tensor.
func (v *ModeView) Validate(dst *mat.Dense, factors []*mat.Dense) {
	r := checkFactors(v.t, factors)
	if dst.Rows != v.t.Dims[v.Mode] || dst.Cols != r {
		panic(fmt.Sprintf("mttkrp: destination %dx%d, want %dx%d", dst.Rows, dst.Cols, v.t.Dims[v.Mode], r))
	}
}

// AccumulateInto adds the mode MTTKRP into dst using the row-grouped
// kernel: each slice's contributions accumulate in a local buffer and
// are written back once.
func (v *ModeView) AccumulateInto(dst *mat.Dense, factors []*mat.Dense) {
	v.Validate(dst, factors)
	r := dst.Cols
	v.AccumulateGroups(dst, factors, 0, len(v.Rows), make([]float64, r), make([]float64, r))
}

// AccumulateIntoWS is AccumulateInto with the tmp/acc buffers checked
// out of ws instead of allocated. ws is released to its entry mark
// before returning.
func (v *ModeView) AccumulateIntoWS(dst *mat.Dense, factors []*mat.Dense, ws *mat.Workspace) {
	v.Validate(dst, factors)
	r := dst.Cols
	mark := ws.Mark()
	v.AccumulateGroups(dst, factors, 0, len(v.Rows), ws.TakeVec(r), ws.TakeVec(r))
	ws.Release(mark)
}

// AccumulateGroups runs the grouped kernel over groups [g0, g1). Each
// group owns one output row, so disjoint group ranges write disjoint
// rows — the unit of parallel work. The bits a group produces depend
// only on its own entries, never on the range split.
func (v *ModeView) AccumulateGroups(dst *mat.Dense, factors []*mat.Dense, g0, g1 int, tmp, acc []float64) {
	t := v.t
	for g := g0; g < g1; g++ {
		for c := range acc {
			acc[c] = 0
		}
		for p := v.Starts[g]; p < v.Starts[g+1]; p++ {
			entryProductInto(tmp, t, factors, v.Mode, int(v.EntryOrder[p]))
			for c := range acc {
				acc[c] += tmp[c]
			}
		}
		out := dst.Row(int(v.Rows[g]))
		for c := range out {
			out[c] += acc[c]
		}
	}
}

// NNZ reports the number of entries the view covers.
func (v *ModeView) NNZ() int { return int(v.Starts[len(v.Starts)-1]) }

// ChunkStarts returns an nnz-balanced grid of at most c contiguous
// group ranges: boundary i is the first group at or past i/c of the
// view's entries, so chunks carry near-equal work even when slice
// populations are skewed. The grid is a pure function of (view, c) —
// nothing about scheduling feeds it — and is cached per c, so a view
// driven at several thread counts recomputes nothing in steady state.
func (v *ModeView) ChunkStarts(c int) []int32 {
	return v.chunker.Grid(c, v.Starts)
}
