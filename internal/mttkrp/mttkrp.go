// Package mttkrp implements the Matricized Tensor Times Khatri-Rao
// Product, the bottleneck operator of CP-ALS and of DisMASTD
// (Section IV-B1, Eq. 6):
//
//	M[i, :] = Σ_{entries with mode-n index i} X[c] · ∏_{k≠n} A_k[c_k, :]
//
// Only non-zero tensor entries contribute, and each entry touches one
// row per factor — the two properties the paper's partitioning exploits.
//
// Two kernels are provided: a flat kernel that scatters each entry's
// contribution straight into the output, and a row-grouped kernel that
// first orders entries by their mode-n index (a ModeView) so each
// output row is accumulated locally before a single write-back. The
// ablation bench in the repository root compares them.
package mttkrp

import (
	"fmt"

	"dismastd/internal/mat"
	"dismastd/internal/tensor"
)

// checkFactors panics unless factors match the tensor: one factor per
// mode, row counts equal to mode sizes, and a common column count R,
// which it returns.
func checkFactors(t *tensor.Tensor, factors []*mat.Dense) int {
	if len(factors) != t.Order() {
		panic(fmt.Sprintf("mttkrp: %d factors for order-%d tensor", len(factors), t.Order()))
	}
	r := factors[0].Cols
	for m, f := range factors {
		if f.Rows != t.Dims[m] {
			panic(fmt.Sprintf("mttkrp: factor %d has %d rows, mode size %d", m, f.Rows, t.Dims[m]))
		}
		if f.Cols != r {
			panic(fmt.Sprintf("mttkrp: factor %d has %d cols, factor 0 has %d", m, f.Cols, r))
		}
	}
	return r
}

// Compute returns the mode-n MTTKRP of t with the given factors as a
// fresh Dims[mode] x R matrix, using the flat kernel.
func Compute(t *tensor.Tensor, factors []*mat.Dense, mode int) *mat.Dense {
	r := checkFactors(t, factors)
	dst := mat.New(t.Dims[mode], r)
	AccumulateInto(dst, t, factors, mode)
	return dst
}

// AccumulateInto adds the mode-n MTTKRP of t into dst, which must be
// Dims[mode] x R. Accumulation (rather than overwrite) lets callers sum
// contributions from several tensor partitions, as the distributed
// runtime does.
func AccumulateInto(dst *mat.Dense, t *tensor.Tensor, factors []*mat.Dense, mode int) {
	r := checkFactors(t, factors)
	accumulateScratch(dst, t, factors, mode, make([]float64, r))
}

// AccumulateIntoWS is AccumulateInto with the per-entry product buffer
// checked out of ws instead of allocated, for allocation-free steady
// state. ws is released to its entry mark before returning.
func AccumulateIntoWS(dst *mat.Dense, t *tensor.Tensor, factors []*mat.Dense, mode int, ws *mat.Workspace) {
	r := checkFactors(t, factors)
	mark := ws.Mark()
	accumulateScratch(dst, t, factors, mode, ws.TakeVec(r))
	ws.Release(mark)
}

// entryProductInto fills tmp with entry e's contribution to the mode-n
// MTTKRP: X[e] · ∏_{k≠mode} A_k[coords_k, :]. It is the one inner
// kernel both the flat and the row-grouped paths run, so the two can
// never drift apart numerically.
func entryProductInto(tmp []float64, t *tensor.Tensor, factors []*mat.Dense, mode, e int) {
	n := t.Order()
	base := e * n
	v := t.Vals[e]
	for c := range tmp {
		tmp[c] = v
	}
	for k := 0; k < n; k++ {
		if k == mode {
			continue
		}
		row := factors[k].Row(int(t.Coords[base+k]))
		for c := range tmp {
			tmp[c] *= row[c]
		}
	}
}

func accumulateScratch(dst *mat.Dense, t *tensor.Tensor, factors []*mat.Dense, mode int, tmp []float64) {
	r := len(tmp)
	if mode < 0 || mode >= t.Order() {
		panic(fmt.Sprintf("mttkrp: mode %d on order-%d tensor", mode, t.Order()))
	}
	if dst.Rows != t.Dims[mode] || dst.Cols != r {
		panic(fmt.Sprintf("mttkrp: destination %dx%d, want %dx%d", dst.Rows, dst.Cols, t.Dims[mode], r))
	}
	n := t.Order()
	for e := 0; e < t.NNZ(); e++ {
		entryProductInto(tmp, t, factors, mode, e)
		out := dst.Row(int(t.Coords[e*n+mode]))
		for c := range tmp {
			out[c] += tmp[c]
		}
	}
}

// InnerProduct returns the inner product <X, [[A_1 ... A_N]]> =
// Σ_entries X[c] · Σ_r ∏_k A_k[c_k, r]. The distributed loss reuses the
// MTTKRP result instead (Section IV-B4); this direct form exists for
// verification and centralized baselines.
func InnerProduct(t *tensor.Tensor, factors []*mat.Dense) float64 {
	return innerProductScratch(t, factors, make([]float64, checkFactors(t, factors)))
}

// InnerProductWS is InnerProduct with the per-entry product buffer
// checked out of ws. ws is released to its entry mark before returning.
func InnerProductWS(t *tensor.Tensor, factors []*mat.Dense, ws *mat.Workspace) float64 {
	r := checkFactors(t, factors)
	mark := ws.Mark()
	total := innerProductScratch(t, factors, ws.TakeVec(r))
	ws.Release(mark)
	return total
}

func innerProductScratch(t *tensor.Tensor, factors []*mat.Dense, tmp []float64) float64 {
	n := t.Order()
	total := 0.0
	for e := 0; e < t.NNZ(); e++ {
		base := e * n
		for c := range tmp {
			tmp[c] = 1
		}
		for k := 0; k < n; k++ {
			row := factors[k].Row(int(t.Coords[base+k]))
			for c := range tmp {
				tmp[c] *= row[c]
			}
		}
		s := 0.0
		for _, v := range tmp {
			s += v
		}
		total += t.Vals[e] * s
	}
	return total
}

// ModeView is a counting-sort arrangement of tensor entries by one
// mode's coordinate, grouping together all entries of each slice. It is
// built once per (tensor, mode) and reused across ALS iterations — the
// sparsity pattern is fixed within a snapshot. A view may cover the
// whole tensor (NewModeView) or an explicit entry subset
// (NewModeViewOf), which is how the distributed workers group the
// entries their partition assigned them.
type ModeView struct {
	Mode       int
	EntryOrder []int32 // entry ids ordered by mode coordinate
	Rows       []int32 // distinct mode coordinates, ascending
	Starts     []int32 // group i spans EntryOrder[Starts[i]:Starts[i+1]]

	// chunks caches the last nnz-balanced chunk grid (see ChunkStarts)
	// so steady-state parallel sweeps rebuild nothing.
	chunks []int32
	chunkC int
}

// NewModeView builds the view of every entry in O(nnz + I_n).
func NewModeView(t *tensor.Tensor, mode int) *ModeView {
	return newModeView(t, mode, nil, true)
}

// NewModeViewOf builds the view of an explicit entry subset. entries
// lists tensor entry ids (a nil or empty list is an empty view — what
// an idle distributed rank holds). The counting sort is stable —
// entries of one slice keep their order from the input list — so the
// grouped kernel accumulates each output row in exactly the order the
// flat kernel would visit it.
func NewModeViewOf(t *tensor.Tensor, mode int, entries []int32) *ModeView {
	return newModeView(t, mode, entries, false)
}

func newModeView(t *tensor.Tensor, mode int, entries []int32, all bool) *ModeView {
	if mode < 0 || mode >= t.Order() {
		panic(fmt.Sprintf("mttkrp: NewModeView mode %d on order-%d tensor", mode, t.Order()))
	}
	n := t.Order()
	nnz := len(entries)
	if all {
		entries = nil
		nnz = t.NNZ()
	}
	coord := func(i int) int32 {
		e := int32(i)
		if entries != nil {
			e = entries[i]
		}
		return t.Coords[int(e)*n+mode]
	}
	counts := make([]int32, t.Dims[mode]+1)
	for i := 0; i < nnz; i++ {
		counts[coord(i)+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	offsets := append([]int32(nil), counts...)
	order := make([]int32, nnz)
	for i := 0; i < nnz; i++ {
		e := int32(i)
		if entries != nil {
			e = entries[i]
		}
		row := coord(i)
		order[offsets[row]] = e
		offsets[row]++
	}
	v := &ModeView{Mode: mode, EntryOrder: order}
	for i := 0; i < t.Dims[mode]; i++ {
		if counts[i+1] > counts[i] {
			v.Rows = append(v.Rows, int32(i))
			v.Starts = append(v.Starts, counts[i])
		}
	}
	v.Starts = append(v.Starts, int32(nnz))
	return v
}

// NumRows returns the number of non-empty slices in the viewed mode.
func (v *ModeView) NumRows() int { return len(v.Rows) }

// AccumulateInto adds the mode MTTKRP into dst using the row-grouped
// kernel: each slice's contributions accumulate in a local buffer and
// are written back once.
func (v *ModeView) AccumulateInto(dst *mat.Dense, t *tensor.Tensor, factors []*mat.Dense) {
	r := checkFactors(t, factors)
	v.accumulateScratch(dst, t, factors, make([]float64, r), make([]float64, r))
}

// AccumulateIntoWS is AccumulateInto with the tmp/acc buffers checked
// out of ws instead of allocated. ws is released to its entry mark
// before returning.
func (v *ModeView) AccumulateIntoWS(dst *mat.Dense, t *tensor.Tensor, factors []*mat.Dense, ws *mat.Workspace) {
	r := checkFactors(t, factors)
	mark := ws.Mark()
	v.accumulateScratch(dst, t, factors, ws.TakeVec(r), ws.TakeVec(r))
	ws.Release(mark)
}

func (v *ModeView) accumulateScratch(dst *mat.Dense, t *tensor.Tensor, factors []*mat.Dense, tmp, acc []float64) {
	r := len(tmp)
	if dst.Rows != t.Dims[v.Mode] || dst.Cols != r {
		panic(fmt.Sprintf("mttkrp: destination %dx%d, want %dx%d", dst.Rows, dst.Cols, t.Dims[v.Mode], r))
	}
	v.accumulateGroups(dst, t, factors, 0, len(v.Rows), tmp, acc)
}

// accumulateGroups runs the grouped kernel over groups [g0, g1). Each
// group owns one output row, so disjoint group ranges write disjoint
// rows — the unit of parallel work. The bits a group produces depend
// only on its own entries, never on the range split.
func (v *ModeView) accumulateGroups(dst *mat.Dense, t *tensor.Tensor, factors []*mat.Dense, g0, g1 int, tmp, acc []float64) {
	for g := g0; g < g1; g++ {
		for c := range acc {
			acc[c] = 0
		}
		for p := v.Starts[g]; p < v.Starts[g+1]; p++ {
			entryProductInto(tmp, t, factors, v.Mode, int(v.EntryOrder[p]))
			for c := range acc {
				acc[c] += tmp[c]
			}
		}
		out := dst.Row(int(v.Rows[g]))
		for c := range out {
			out[c] += acc[c]
		}
	}
}

// NNZ reports the number of entries the view covers.
func (v *ModeView) NNZ() int { return int(v.Starts[len(v.Starts)-1]) }

// ChunkStarts returns an nnz-balanced grid of at most c contiguous
// group ranges: boundary i is the first group at or past i/c of the
// view's entries, so chunks carry near-equal work even when slice
// populations are skewed. The grid is a pure function of (view, c) —
// nothing about scheduling feeds it — and is cached for reuse across
// sweeps.
func (v *ModeView) ChunkStarts(c int) []int32 {
	g := len(v.Rows)
	if c > g {
		c = g
	}
	if c < 1 {
		c = 1
	}
	if v.chunkC == c && v.chunks != nil {
		return v.chunks
	}
	starts := v.chunks[:0]
	if cap(starts) < c+1 {
		starts = make([]int32, 0, c+1)
	}
	starts = append(starts, 0)
	total := int64(v.NNZ())
	gi := 0
	for i := 1; i < c; i++ {
		target := int32(total * int64(i) / int64(c))
		for gi < g && v.Starts[gi] < target {
			gi++
		}
		starts = append(starts, int32(gi))
	}
	starts = append(starts, int32(g))
	v.chunks, v.chunkC = starts, c
	return starts
}
