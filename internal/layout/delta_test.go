package layout_test

import (
	"testing"

	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// deltaFixture appends a small order-3 region in two batches and
// returns the delta plus the equivalent tensor entries.
func deltaFixture(t *testing.T) (*layout.Delta, *tensor.Tensor) {
	t.Helper()
	d := layout.NewDelta([]int{4, 3, 2})
	b := tensor.NewBuilder([]int{4, 3, 2})
	batches := [][]struct {
		i, j, k int
		v       float64
	}{
		{{0, 0, 0, 1.5}, {2, 1, 1, -2}, {0, 2, 1, 3}},
		{{3, 0, 0, 0.5}, {0, 1, 1, 4}, {2, 1, 0, 1}},
	}
	for _, batch := range batches {
		var coords []int32
		var vals []float64
		for _, e := range batch {
			coords = append(coords, int32(e.i), int32(e.j), int32(e.k))
			vals = append(vals, e.v)
			b.Append([]int{e.i, e.j, e.k}, e.v)
		}
		d.Append(coords, vals)
	}
	return d, b.Build()
}

// TestDeltaRowAccumulateMatchesMTTKRP checks every row of every mode
// against the full MTTKRP of the equivalent tensor: summing the
// per-row contributions must reproduce the whole-region kernel's
// values (same products, possibly different entry order, so compare
// within floating-point slack).
func TestDeltaRowAccumulateMatchesMTTKRP(t *testing.T) {
	d, x := deltaFixture(t)
	src := xrand.New(7)
	const r = 3
	factors := make([]*mat.Dense, x.Order())
	for m, size := range x.Dims {
		factors[m] = mat.RandomUniform(size, r, src)
	}
	tmp := make([]float64, r)
	for m := 0; m < x.Order(); m++ {
		want := mttkrp.Compute(x, factors, m)
		got := mat.New(x.Dims[m], r)
		for i := 0; i < x.Dims[m]; i++ {
			d.AccumulateRow(got.Row(i), factors, m, int32(i), tmp)
		}
		if diff := mat.MaxAbsDiff(want, got); diff > 1e-12 {
			t.Fatalf("mode %d: delta row accumulation differs from MTTKRP by %g", m, diff)
		}
	}
}

func TestDeltaRowNNZAndEntries(t *testing.T) {
	d, x := deltaFixture(t)
	if d.NNZ() != x.NNZ() {
		t.Fatalf("NNZ = %d, want %d", d.NNZ(), x.NNZ())
	}
	for m := 0; m < d.Order(); m++ {
		hist := x.SliceNNZ(m)
		for i := range hist {
			if got := d.RowNNZ(m, int32(i)); int64(got) != hist[i] {
				t.Fatalf("mode %d row %d: RowNNZ = %d, want %d", m, i, got, hist[i])
			}
		}
	}
	// The entry multiset survives a rebuild through a Builder.
	b := tensor.NewBuilder(d.Dims())
	var buf []int
	for e := 0; e < d.NNZ(); e++ {
		var v float64
		buf, v = d.Entry(e, buf)
		b.Append(buf, v)
	}
	if !tensor.Equal(b.Build(), x) {
		t.Fatal("rebuilt tensor differs from source entries")
	}
}

func TestDeltaGrowAndReset(t *testing.T) {
	d, _ := deltaFixture(t)
	d.Grow([]int{6, 3, 2})
	d.Append([]int32{5, 0, 1}, []float64{9})
	if d.RowNNZ(0, 5) != 1 {
		t.Fatal("grown row did not receive its entry")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shrinking Grow did not panic")
		}
	}()
	defer func() {
		d.Reset()
		if d.NNZ() != 0 || d.RowNNZ(0, 5) != 0 {
			t.Fatal("Reset left entries behind")
		}
		if d.Dims()[0] != 6 {
			t.Fatal("Reset changed dims")
		}
		d.Append([]int32{5, 2, 1}, []float64{1}) // still valid after reset
		d.Grow([]int{5, 3, 2})
	}()
}

// TestDeltaAppendNoAllocWarm pins the warmed append/accumulate path at
// zero allocations: after Reset, re-appending within the retained
// capacity must not touch the heap.
func TestDeltaAppendNoAllocWarm(t *testing.T) {
	d := layout.NewDelta([]int{8, 8, 8})
	coords := []int32{1, 2, 3, 4, 5, 6}
	vals := []float64{1, 2}
	factors := []*mat.Dense{mat.New(8, 2), mat.New(8, 2)}
	factors = append(factors, mat.New(8, 2))
	acc := make([]float64, 2)
	tmp := make([]float64, 2)
	for i := 0; i < 4; i++ { // warm capacity
		d.Append(coords, vals)
	}
	d.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		d.Reset()
		for i := 0; i < 4; i++ {
			d.Append(coords, vals)
		}
		d.AccumulateRow(acc, factors, 0, 1, tmp)
	})
	if allocs != 0 {
		t.Fatalf("warmed append/accumulate allocates %v per run", allocs)
	}
}
