// Package layout is the kernel-representation layer between
// internal/tensor (COO) and internal/mttkrp: it compiles a snapshot
// region once into a mode-sorted, fiber-grouped structure a sweep
// kernel can walk with unit-stride loads, instead of chasing the COO
// arrays through an entry-order indirection every iteration.
//
// A compiled ModeLayout holds, per mode, the region's values and all
// coordinate arrays permuted into mode-sorted order (the value
// permutation), the non-empty output rows with their position ranges,
// and fiber pointers — maximal runs of entries that share both the
// output row and the lead (smallest non-target) mode's coordinate — so
// the kernel hoists one factor-row pointer per fiber. Compilation is
// paid once per region and amortised over every sweep of a snapshot;
// the structure never feeds floating-point order, so the compiled
// kernel reproduces the COO walk bit for bit (see the determinism note
// on ModeLayout.AccumulateGroups).
package layout

import "fmt"

// Kind selects a kernel representation for MTTKRP and row-wise sweeps.
type Kind int

const (
	// COO walks the tensor's coordinate arrays through a row-grouped
	// entry-order indirection (the default, internal/mttkrp.ModeView).
	COO Kind = iota
	// Compiled walks a ModeLayout: permuted, fiber-grouped copies of
	// the region compiled once per snapshot.
	Compiled
)

// String returns the flag spelling of the kind.
func (k Kind) String() string {
	switch k {
	case COO:
		return "coo"
	case Compiled:
		return "compiled"
	}
	return fmt.Sprintf("layout.Kind(%d)", int(k))
}

// ParseKind parses a -layout flag value. The empty string is the
// default COO representation.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "coo":
		return COO, nil
	case "compiled":
		return Compiled, nil
	}
	return COO, fmt.Errorf("layout: unknown layout %q (want coo or compiled)", s)
}
