package layout

import (
	"fmt"

	"dismastd/internal/mat"
)

// Delta is the incremental counterpart of Compile: an append-only
// layout of a *growing* region. Where Compile pays one mode-sorted
// rebuild per snapshot region — the right trade for a region that is
// then swept many times — Delta admits entries one micro-batch at a
// time in O(batch·N), threading each entry into a per-mode row list as
// it arrives instead of recompiling the whole region on every small
// delta. The event-granularity ingestion path appends every incoming
// event here and asks for exact per-row MTTKRP contributions over the
// pending region (AccumulateRow); the periodic full sweep still goes
// through Compile, which remains the representation of record for
// whole-region kernels.
//
// Entries are stored SoA (one value array, one coordinate array per
// mode) and each mode additionally carries an intrusive linked list:
// head[m][i] is the most recently appended entry of row i and
// next[m][e] the entry appended before e in the same row, so walking a
// row visits its entries newest-first. The walk order is fixed by
// arrival order alone, which keeps the accumulation deterministic for
// a given event sequence. Reset keeps every backing array, so a warmed
// Delta appends and accumulates without allocating.
type Delta struct {
	dims   []int
	vals   []float64
	coords [][]int32 // coords[m][e]: entry e's mode-m coordinate
	next   [][]int32 // next[m][e]: previous entry in e's mode-m row, or -1
	head   [][]int32 // head[m][i]: latest entry of row i, or -1
}

// NewDelta returns an empty incremental layout for a region with the
// given mode sizes.
func NewDelta(dims []int) *Delta {
	if len(dims) == 0 {
		panic("layout: NewDelta with no modes")
	}
	d := &Delta{
		dims:   append([]int(nil), dims...),
		coords: make([][]int32, len(dims)),
		next:   make([][]int32, len(dims)),
		head:   make([][]int32, len(dims)),
	}
	for m, size := range dims {
		if size < 0 {
			panic(fmt.Sprintf("layout: negative dim %d in mode %d", size, m))
		}
		d.head[m] = emptyHeads(nil, size)
	}
	return d
}

func emptyHeads(buf []int32, n int) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = -1
	}
	return buf
}

// Order returns the number of modes.
func (d *Delta) Order() int { return len(d.dims) }

// NNZ returns the number of appended entries.
func (d *Delta) NNZ() int { return len(d.vals) }

// Dims returns the current mode sizes (not a copy; do not mutate).
func (d *Delta) Dims() []int { return d.dims }

// Grow extends the mode sizes. Rows gained by a mode start empty;
// existing entries and row threads are untouched. Dims must not
// shrink.
func (d *Delta) Grow(dims []int) {
	if len(dims) != len(d.dims) {
		panic(fmt.Sprintf("layout: Grow with %d dims on order-%d delta", len(dims), len(d.dims)))
	}
	for m, size := range dims {
		if size < d.dims[m] {
			panic(fmt.Sprintf("layout: Grow shrinks mode %d (%d < %d)", m, size, d.dims[m]))
		}
		for i := d.dims[m]; i < size; i++ {
			d.head[m] = append(d.head[m], -1)
		}
		d.dims[m] = size
	}
}

// Append admits one micro-batch: coords is the flat entry-major
// coordinate array (entry e's mode-m coordinate at coords[e*N+m],
// the tensor package's convention) and vals the matching values.
// Coordinates must already be inside the delta's dims — grow first.
func (d *Delta) Append(coords []int32, vals []float64) {
	n := len(d.dims)
	if len(coords) != n*len(vals) {
		panic(fmt.Sprintf("layout: Append with %d coords for %d values of order %d", len(coords), len(vals), n))
	}
	for e := range vals {
		id := int32(len(d.vals))
		d.vals = append(d.vals, vals[e])
		for m := 0; m < n; m++ {
			c := coords[e*n+m]
			if c < 0 || int(c) >= d.dims[m] {
				panic(fmt.Sprintf("layout: coordinate %d out of range [0, %d) in mode %d", c, d.dims[m], m))
			}
			d.coords[m] = append(d.coords[m], c)
			d.next[m] = append(d.next[m], d.head[m][c])
			d.head[m][c] = id
		}
	}
}

// Reset drops every entry but keeps the backing arrays (and the
// current dims), so the next window appends without reallocating.
func (d *Delta) Reset() {
	d.vals = d.vals[:0]
	for m := range d.coords {
		d.coords[m] = d.coords[m][:0]
		d.next[m] = d.next[m][:0]
		d.head[m] = emptyHeads(d.head[m], d.dims[m])
	}
}

// RowNNZ returns the number of pending entries in one row of a mode —
// the bounded work an event-path row refresh performs.
func (d *Delta) RowNNZ(mode int, row int32) int {
	c := 0
	for e := d.head[mode][row]; e >= 0; e = d.next[mode][e] {
		c++
	}
	return c
}

// Entry writes entry e's coordinates into buf (allocating when too
// short) and returns them with the value.
func (d *Delta) Entry(e int, buf []int) ([]int, float64) {
	n := len(d.dims)
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for m := 0; m < n; m++ {
		buf[m] = int(d.coords[m][e])
	}
	return buf, d.vals[e]
}

// AccumulateRow adds the mode-MTTKRP contribution of every pending
// entry in the given row into acc (length R): for each entry,
// acc[c] += v · ∏_{k≠mode} factors[k][coord_k][c], the same
// left-associated ascending-mode product chain as the whole-region
// kernels. tmp is R-sized scratch. Entries are visited newest-first
// (the row thread's order), which is fixed for a given event sequence.
func (d *Delta) AccumulateRow(acc []float64, factors []*mat.Dense, mode int, row int32, tmp []float64) {
	n := len(d.dims)
	for e := d.head[mode][row]; e >= 0; e = d.next[mode][e] {
		v := d.vals[e]
		for c := range tmp {
			tmp[c] = v
		}
		for k := 0; k < n; k++ {
			if k == mode {
				continue
			}
			frow := factors[k].Row(int(d.coords[k][e]))
			for c := range tmp {
				tmp[c] *= frow[c]
			}
		}
		for c := range acc {
			acc[c] += tmp[c]
		}
	}
}
