package layout

import "dismastd/internal/tensor"

// Cache memoises compiled layouts for one snapshot region. The key is
// the identity of the region — the tensor pointer plus the identity of
// the per-mode entry list — so invalidation needs no bookkeeping from
// callers: a stream advance replaces the complement tensor and an
// elastic migration replaces a rank's entry lists, and either key
// change makes the next Get recompile. Entry lists are compared by
// slice identity (base pointer and length), not contents; callers must
// hand the same slice for the same region, which the planners do.
//
// A Cache is owned by one driving goroutine (one rank, one stream) and
// is not safe for concurrent use.
type Cache struct {
	t        *tensor.Tensor
	keys     []cacheKey
	layouts  []*ModeLayout
	compiles int
}

type cacheKey struct {
	mode    int
	entries []int32
}

func sameEntries(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// Get returns the compiled layout for (t, mode, entries), compiling on
// the first request and after any invalidation. A t different from the
// cache's current tensor drops every cached layout first — the region
// itself changed.
func (c *Cache) Get(t *tensor.Tensor, mode int, entries []int32) *ModeLayout {
	if c.t != t {
		c.Invalidate()
		c.t = t
	}
	for i, k := range c.keys {
		if k.mode == mode && sameEntries(k.entries, entries) {
			return c.layouts[i]
		}
	}
	l := Compile(t, mode, entries)
	c.keys = append(c.keys, cacheKey{mode: mode, entries: entries})
	c.layouts = append(c.layouts, l)
	c.compiles++
	return l
}

// Invalidate drops every cached layout. The next Get recompiles.
func (c *Cache) Invalidate() {
	c.t = nil
	c.keys = c.keys[:0]
	c.layouts = c.layouts[:0]
}

// Compiles reports how many layouts the cache has compiled over its
// lifetime (cache misses), for tests and instrumentation.
func (c *Cache) Compiles() int { return c.compiles }
