package layout

import (
	"fmt"

	"dismastd/internal/mat"
	"dismastd/internal/tensor"
)

// ModeLayout is one mode's compiled representation of a tensor region:
// every per-entry array the sweep kernels touch, permuted into
// mode-sorted order so the inner loops run over contiguous memory.
// Build one with Compile (or through a Cache) once per snapshot region
// and reuse it across every sweep; the source tensor is only read at
// compile time.
type ModeLayout struct {
	Mode int   // the target mode
	Dims []int // mode sizes of the source tensor (copied)
	Lead int   // lead mode fibers group on: smallest mode != Mode, or -1 for order-1

	Rows      []int32 // distinct mode coordinates with entries, ascending
	RowStarts []int32 // row g owns positions [RowStarts[g], RowStarts[g+1])

	// Fibers are maximal runs of positions within one row that share
	// the lead mode's coordinate; the kernel hoists one factor-row
	// pointer per fiber. FiberStarts holds position boundaries
	// (FiberStarts[len-1] == nnz) and row g owns fibers
	// [RowFibers[g], RowFibers[g+1]).
	FiberStarts []int32
	RowFibers   []int32

	Vals   []float64 // region values, permuted
	Coords [][]int32 // Coords[k][p]: mode-k coordinate at position p, permuted
	Perm   []int32   // Perm[p]: source entry id at position p

	chunker Chunker
}

// Compile builds the mode layout of an entry subset in O(nnz·N + I_n).
// entries lists tensor entry ids (nil means every entry; an empty list
// is an empty layout — what an idle distributed rank holds). The
// underlying sort is stable, so positions within a row keep the input
// list's order — the exact order a flat COO walk visits them.
func Compile(t *tensor.Tensor, mode int, entries []int32) *ModeLayout {
	if mode < 0 || mode >= t.Order() {
		panic(fmt.Sprintf("layout: Compile mode %d on order-%d tensor", mode, t.Order()))
	}
	n := t.Order()
	order, counts := t.ModeSort(mode, entries)
	nnz := len(order)

	l := &ModeLayout{
		Mode: mode,
		Dims: append([]int(nil), t.Dims...),
		Lead: -1,
		Perm: order,
	}
	for k := 0; k < n; k++ {
		if k != mode {
			l.Lead = k
			break
		}
	}
	l.Vals = t.GatherVals(nil, order)
	l.Coords = make([][]int32, n)
	for k := 0; k < n; k++ {
		l.Coords[k] = t.GatherCoords(nil, k, order)
	}
	for i := 0; i < t.Dims[mode]; i++ {
		if counts[i+1] > counts[i] {
			l.Rows = append(l.Rows, int32(i))
			l.RowStarts = append(l.RowStarts, counts[i])
		}
	}
	l.RowStarts = append(l.RowStarts, int32(nnz))

	// Fiber pointers: split each row's position range where the lead
	// coordinate changes (order-1 tensors have no lead; each row is one
	// fiber).
	l.RowFibers = make([]int32, 0, len(l.Rows)+1)
	for g := 0; g < len(l.Rows); g++ {
		l.RowFibers = append(l.RowFibers, int32(len(l.FiberStarts)))
		p0, p1 := l.RowStarts[g], l.RowStarts[g+1]
		if l.Lead < 0 {
			l.FiberStarts = append(l.FiberStarts, p0)
			continue
		}
		lead := l.Coords[l.Lead]
		for p := p0; p < p1; p++ {
			if p == p0 || lead[p] != lead[p-1] {
				l.FiberStarts = append(l.FiberStarts, p)
			}
		}
	}
	l.RowFibers = append(l.RowFibers, int32(len(l.FiberStarts)))
	l.FiberStarts = append(l.FiberStarts, int32(nnz))
	return l
}

// NNZ reports the number of entries the layout covers.
func (l *ModeLayout) NNZ() int { return len(l.Vals) }

// NumRows returns the number of non-empty rows (groups) in the mode.
func (l *ModeLayout) NumRows() int { return len(l.Rows) }

// NumFibers returns the number of fibers across all rows.
func (l *ModeLayout) NumFibers() int { return len(l.FiberStarts) - 1 }

// ModeSize returns the mode's size — the row count of the sweep's
// output matrix.
func (l *ModeLayout) ModeSize() int { return l.Dims[l.Mode] }

// GroupRow returns the output row of group g.
func (l *ModeLayout) GroupRow(g int) int32 { return l.Rows[g] }

// GroupRange returns the position range [p0, p1) of group g.
func (l *ModeLayout) GroupRange(g int) (p0, p1 int32) {
	return l.RowStarts[g], l.RowStarts[g+1]
}

// EntryCoord returns the mode-k coordinate of the entry at position p.
func (l *ModeLayout) EntryCoord(p int32, k int) int32 { return l.Coords[k][p] }

// EntryVal returns the value of the entry at position p.
func (l *ModeLayout) EntryVal(p int32) float64 { return l.Vals[p] }

// Validate panics unless dst and factors match the layout's source
// tensor: one factor per mode, row counts equal to mode sizes, a
// common column count R shared with dst, and dst rows equal to the
// target mode's size.
func (l *ModeLayout) Validate(dst *mat.Dense, factors []*mat.Dense) {
	if len(factors) != len(l.Dims) {
		panic(fmt.Sprintf("layout: %d factors for order-%d layout", len(factors), len(l.Dims)))
	}
	r := factors[0].Cols
	for m, f := range factors {
		if f.Rows != l.Dims[m] {
			panic(fmt.Sprintf("layout: factor %d has %d rows, mode size %d", m, f.Rows, l.Dims[m]))
		}
		if f.Cols != r {
			panic(fmt.Sprintf("layout: factor %d has %d cols, factor 0 has %d", m, f.Cols, r))
		}
	}
	if dst.Rows != l.Dims[l.Mode] || dst.Cols != r {
		panic(fmt.Sprintf("layout: destination %dx%d, want %dx%d", dst.Rows, dst.Cols, l.Dims[l.Mode], r))
	}
}

// ChunkStarts returns a fiber-balanced grid of at most c contiguous
// group ranges: boundary i is the first group at or past i/c of the
// layout's fibers. Chunk boundaries stay at row granularity — a row's
// accumulator never crosses a chunk — so the grid feeds scheduling
// only, never floating-point order. Grids are cached per c.
func (l *ModeLayout) ChunkStarts(c int) []int32 {
	return l.chunker.Grid(c, l.RowFibers)
}

// AccumulateGroups adds the mode MTTKRP contribution of groups
// [g0, g1) into dst. tmp and acc are R-sized scratch (tmp is unused by
// the order-3 fast path but must still be sized R).
//
// Determinism: the compiled kernel performs, entry by entry in
// position order, exactly the operation sequence of the COO walk —
// tmp = v, then tmp *= A_k[c_k] for k ascending, then acc += tmp, one
// write-back per row — so its results are bitwise identical to the
// row-grouped COO kernel and (because each accumulator starts at +0)
// to the flat scatter. Fibers only hoist a factor-row *pointer*; they
// never factor a multiplication out of the per-entry sequence.
func (l *ModeLayout) AccumulateGroups(dst *mat.Dense, factors []*mat.Dense, g0, g1 int, tmp, acc []float64) {
	if len(l.Dims) == 3 {
		l.accumulateGroups3(dst, factors, g0, g1, acc)
		return
	}
	n := len(l.Dims)
	for g := g0; g < g1; g++ {
		for c := range acc {
			acc[c] = 0
		}
		for fb := l.RowFibers[g]; fb < l.RowFibers[g+1]; fb++ {
			p0, p1 := l.FiberStarts[fb], l.FiberStarts[fb+1]
			var lead []float64
			if l.Lead >= 0 {
				lead = factors[l.Lead].Row(int(l.Coords[l.Lead][p0]))
			}
			for p := p0; p < p1; p++ {
				v := l.Vals[p]
				if lead == nil {
					for c := range tmp {
						tmp[c] = v
					}
				} else {
					for c := range tmp {
						tmp[c] = v * lead[c]
					}
				}
				for k := l.Lead + 1; k < n; k++ {
					if k == l.Mode {
						continue
					}
					row := factors[k].Row(int(l.Coords[k][p]))
					for c := range tmp {
						tmp[c] *= row[c]
					}
				}
				for c := range acc {
					acc[c] += tmp[c]
				}
			}
		}
		out := dst.Row(int(l.Rows[g]))
		for c := range out {
			out[c] += acc[c]
		}
	}
}

// accumulateGroups3 is the order-3 fast path: with exactly two
// non-target modes a < b (a is the lead), each entry contributes
// acc[c] += (v·A_a[c_a][c])·A_b[c_b][c] — the same left-associated
// product chain as the generic path, fused into the accumulate.
func (l *ModeLayout) accumulateGroups3(dst *mat.Dense, factors []*mat.Dense, g0, g1 int, acc []float64) {
	a := l.Lead
	b := 3 - l.Mode - a
	fa, fb := factors[a], factors[b]
	cb := l.Coords[b]
	for g := g0; g < g1; g++ {
		for c := range acc {
			acc[c] = 0
		}
		for f := l.RowFibers[g]; f < l.RowFibers[g+1]; f++ {
			p0, p1 := l.FiberStarts[f], l.FiberStarts[f+1]
			ra := fa.Row(int(l.Coords[a][p0]))
			for p := p0; p < p1; p++ {
				rb := fb.Row(int(cb[p]))
				v := l.Vals[p]
				for c := range acc {
					acc[c] += v * ra[c] * rb[c]
				}
			}
		}
		out := dst.Row(int(l.Rows[g]))
		for c := range out {
			out[c] += acc[c]
		}
	}
}
