package layout_test

import (
	"testing"

	"dismastd/internal/layout"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// FuzzCompileLayout checks, for arbitrary shapes, occupancies, and
// entry subsets, that a compiled layout is a faithful reorganisation of
// the region: enumerating its positions reproduces the COO entry
// multiset exactly (every listed entry once, coordinates and value
// intact), positions are mode-sorted, the sort is stable within a row,
// and the fiber structure tiles the positions.
func FuzzCompileLayout(f *testing.F) {
	f.Add(uint8(3), uint8(6), uint16(100), uint64(1), uint8(0), uint8(0))
	f.Add(uint8(1), uint8(9), uint16(30), uint64(2), uint8(1), uint8(3))
	f.Add(uint8(4), uint8(3), uint16(200), uint64(3), uint8(2), uint8(1))
	f.Add(uint8(2), uint8(1), uint16(5), uint64(4), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, order, dimSpread uint8, nnz uint16, seed uint64, mode, subset uint8) {
		n := int(order)%4 + 1
		src := xrand.New(seed)
		dims := make([]int, n)
		for m := range dims {
			dims[m] = 1 + (int(dimSpread)+m*3)%16
		}
		b := tensor.NewBuilder(dims)
		idx := make([]int, n)
		for e := 0; e < int(nnz)%512; e++ {
			for m, d := range dims {
				idx[m] = src.Intn(d)
			}
			b.Append(idx, src.NormFloat64())
		}
		x := b.Build()
		target := int(mode) % n

		// Subset selection: 0 = all entries (nil), otherwise keep
		// entries pseudo-randomly with density subset/4.
		var entries []int32
		if subset%4 != 0 {
			entries = []int32{}
			for e := 0; e < x.NNZ(); e++ {
				if src.Intn(4) < int(subset)%4 {
					entries = append(entries, int32(e))
				}
			}
		}
		l := layout.Compile(x, target, entries)

		want := entries
		if want == nil {
			want = make([]int32, x.NNZ())
			for e := range want {
				want[e] = int32(e)
			}
		}
		if l.NNZ() != len(want) {
			t.Fatalf("layout covers %d entries, region has %d", l.NNZ(), len(want))
		}

		// The multiset contract: Perm must be a permutation of the input
		// list, and each position must carry that entry's exact
		// coordinates and value.
		listPos := map[int32]int{} // entry id -> index in the input list
		for i, e := range want {
			listPos[e] = i
		}
		seen := map[int32]bool{}
		pos := int32(0)
		for g := 0; g < l.NumRows(); g++ {
			row := l.GroupRow(g)
			if g > 0 && row <= l.GroupRow(g-1) {
				t.Fatalf("rows not strictly ascending at group %d", g)
			}
			p0, p1 := l.GroupRange(g)
			if p0 != pos {
				t.Fatalf("group %d starts at %d, want %d", g, p0, pos)
			}
			prevList := -1
			for p := p0; p < p1; p++ {
				e := l.Perm[p]
				if seen[e] {
					t.Fatalf("entry %d enumerated twice", e)
				}
				li, ok := listPos[e]
				if !ok {
					t.Fatalf("entry %d not in the region's list", e)
				}
				seen[e] = true
				if li <= prevList {
					t.Fatalf("row %d not stable: list index %d after %d", row, li, prevList)
				}
				prevList = li
				for k := 0; k < n; k++ {
					if l.EntryCoord(p, k) != x.Coords[int(e)*n+k] {
						t.Fatalf("entry %d coord %d mismatch", e, k)
					}
				}
				if l.EntryCoord(p, target) != row {
					t.Fatalf("entry %d in group of row %d has mode coord %d", e, row, l.EntryCoord(p, target))
				}
				if l.EntryVal(p) != x.Vals[e] {
					t.Fatalf("entry %d value mismatch", e)
				}
			}
			// Fibers tile the group's range.
			f0, f1 := l.RowFibers[g], l.RowFibers[g+1]
			if l.FiberStarts[f0] != p0 || l.FiberStarts[f1] != p1 {
				t.Fatalf("group %d fibers do not tile [%d, %d)", g, p0, p1)
			}
			pos = p1
		}
		if int(pos) != len(want) {
			t.Fatalf("groups cover %d positions, want %d", pos, len(want))
		}
	})
}
