package layout_test

import (
	"math"
	"testing"

	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

func randomTensor(dims []int, nnz int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.NormFloat64())
	}
	return b.Build()
}

func randomFactors(dims []int, r int, seed uint64) []*mat.Dense {
	src := xrand.New(seed)
	out := make([]*mat.Dense, len(dims))
	for m, d := range dims {
		out[m] = mat.RandomGaussian(d, r, src)
	}
	return out
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want layout.Kind
		ok   bool
	}{
		{"", layout.COO, true},
		{"coo", layout.COO, true},
		{"compiled", layout.Compiled, true},
		{"csf", 0, false},
		{"COO", 0, false},
	} {
		got, err := layout.ParseKind(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseKind(%q) accepted, want error", tc.in)
		}
	}
	if layout.COO.String() != "coo" || layout.Compiled.String() != "compiled" {
		t.Errorf("Kind strings %q, %q", layout.COO, layout.Compiled)
	}
}

// TestCompileStructure checks every invariant of a compiled layout:
// rows ascending and non-empty, position ranges tiling [0, nnz), fibers
// maximal constant-lead runs nested in rows, and Perm a permutation of
// the compiled entry subset in mode-sorted stable order.
func TestCompileStructure(t *testing.T) {
	x := randomTensor([]int{9, 7, 5, 4}, 600, 3)
	for mode := 0; mode < x.Order(); mode++ {
		l := layout.Compile(x, mode, nil)
		if l.NNZ() != x.NNZ() {
			t.Fatalf("mode %d: NNZ %d, want %d", mode, l.NNZ(), x.NNZ())
		}
		if l.ModeSize() != x.Dims[mode] {
			t.Fatalf("mode %d: ModeSize %d, want %d", mode, l.ModeSize(), x.Dims[mode])
		}
		wantLead := 0
		if mode == 0 {
			wantLead = 1
		}
		if l.Lead != wantLead {
			t.Fatalf("mode %d: lead %d, want %d", mode, l.Lead, wantLead)
		}
		seen := make([]bool, x.NNZ())
		prevRow := int32(-1)
		for g := 0; g < l.NumRows(); g++ {
			row := l.GroupRow(g)
			if row <= prevRow {
				t.Fatalf("mode %d: rows not ascending at group %d", mode, g)
			}
			prevRow = row
			p0, p1 := l.GroupRange(g)
			if p1 <= p0 {
				t.Fatalf("mode %d: empty group %d", mode, g)
			}
			for p := p0; p < p1; p++ {
				e := l.Perm[p]
				if seen[e] {
					t.Fatalf("mode %d: entry %d appears twice in Perm", mode, e)
				}
				seen[e] = true
				if l.EntryCoord(p, mode) != row {
					t.Fatalf("mode %d: position %d has coord %d, row %d", mode, p, l.EntryCoord(p, mode), row)
				}
				// Stable sort: within a row, source ids ascend (the
				// all-entries input list is 0..nnz-1).
				if p > p0 && l.Perm[p] <= l.Perm[p-1] {
					t.Fatalf("mode %d: Perm not stable within row %d", mode, row)
				}
				// The permuted SoA must mirror the source entry exactly.
				for k := 0; k < x.Order(); k++ {
					if l.EntryCoord(p, k) != x.Coords[int(e)*x.Order()+k] {
						t.Fatalf("mode %d: coords mismatch at position %d mode %d", mode, p, k)
					}
				}
				if l.EntryVal(p) != x.Vals[e] {
					t.Fatalf("mode %d: value mismatch at position %d", mode, p)
				}
			}
			// Fibers: maximal constant-lead runs covering [p0, p1).
			f0, f1 := l.RowFibers[g], l.RowFibers[g+1]
			if l.FiberStarts[f0] != p0 || l.FiberStarts[f1] != p1 {
				t.Fatalf("mode %d: fibers of group %d do not tile its range", mode, g)
			}
			for f := f0; f < f1; f++ {
				q0, q1 := l.FiberStarts[f], l.FiberStarts[f+1]
				if q1 <= q0 {
					t.Fatalf("mode %d: empty fiber %d", mode, f)
				}
				lead := l.EntryCoord(q0, l.Lead)
				for p := q0; p < q1; p++ {
					if l.EntryCoord(p, l.Lead) != lead {
						t.Fatalf("mode %d: fiber %d mixes lead coords", mode, f)
					}
				}
				// Maximality: the next fiber starts with a different lead.
				if q1 < p1 && l.EntryCoord(q1, l.Lead) == lead {
					t.Fatalf("mode %d: fiber %d not maximal", mode, f)
				}
			}
		}
		for e, ok := range seen {
			if !ok {
				t.Fatalf("mode %d: entry %d missing from Perm", mode, e)
			}
		}
	}
}

func TestCompileEmptySubset(t *testing.T) {
	x := randomTensor([]int{6, 5}, 40, 1)
	l := layout.Compile(x, 0, []int32{})
	if l.NNZ() != 0 || l.NumRows() != 0 || l.NumFibers() != 0 {
		t.Fatalf("empty subset: nnz=%d rows=%d fibers=%d, want all 0", l.NNZ(), l.NumRows(), l.NumFibers())
	}
	starts := l.ChunkStarts(4)
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 0 {
		t.Fatalf("empty subset ChunkStarts = %v", starts)
	}
}

// accumulate runs a kernel over all of its groups sequentially.
func accumulate(k mttkrp.Kernel, dst *mat.Dense, factors []*mat.Dense, r int) {
	tmp, acc := make([]float64, r), make([]float64, r)
	k.AccumulateGroups(dst, factors, 0, k.NumRows(), tmp, acc)
}

func sameBits(a, b *mat.Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Float64bits(v) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestCompiledMatchesCOOBitwise is the core determinism contract: the
// compiled kernel must reproduce the COO row-grouped kernel (and the
// flat scatter) bit for bit, for every order, every mode, and both the
// order-3 fast path and the generic path.
func TestCompiledMatchesCOOBitwise(t *testing.T) {
	const r = 5
	for _, dims := range [][]int{{17}, {11, 7}, {12, 10, 8}, {7, 6, 5, 4}} {
		x := randomTensor(dims, 30*len(dims)*len(dims), uint64(len(dims)))
		factors := randomFactors(dims, r, 99)
		for mode := range dims {
			coo := mat.New(dims[mode], r)
			accumulate(mttkrp.NewKernel(x, mode, layout.COO), coo, factors, r)
			compiled := mat.New(dims[mode], r)
			accumulate(mttkrp.NewKernel(x, mode, layout.Compiled), compiled, factors, r)
			if !sameBits(coo, compiled) {
				t.Fatalf("order %d mode %d: compiled result differs from COO bitwise", len(dims), mode)
			}
			flat := mat.New(dims[mode], r)
			mttkrp.AccumulateInto(flat, x, factors, mode)
			if !sameBits(coo, flat) {
				t.Fatalf("order %d mode %d: grouped COO differs from flat scatter bitwise", len(dims), mode)
			}
		}
	}
}

// TestCompiledSubsetMatchesCOOBitwise checks the same contract on
// arbitrary entry subsets — the shape distributed ranks hold.
func TestCompiledSubsetMatchesCOOBitwise(t *testing.T) {
	const r = 4
	dims := []int{12, 9, 7}
	x := randomTensor(dims, 500, 8)
	factors := randomFactors(dims, r, 21)
	src := xrand.New(77)
	var entries []int32
	for e := 0; e < x.NNZ(); e++ {
		if src.Intn(3) != 0 {
			entries = append(entries, int32(e))
		}
	}
	for mode := range dims {
		coo := mat.New(dims[mode], r)
		accumulate(mttkrp.NewKernelOf(x, mode, entries, layout.COO), coo, factors, r)
		compiled := mat.New(dims[mode], r)
		accumulate(mttkrp.NewKernelOf(x, mode, entries, layout.Compiled), compiled, factors, r)
		if !sameBits(coo, compiled) {
			t.Fatalf("mode %d: compiled subset result differs from COO bitwise", mode)
		}
	}
}

// TestChunkStartsRowGranularity: chunk boundaries always fall between
// groups, every group is covered exactly once, and boundaries are
// non-decreasing — the properties that keep the grid a pure scheduling
// artifact.
func TestChunkStartsRowGranularity(t *testing.T) {
	x := randomTensor([]int{40, 20, 10}, 3000, 5)
	l := layout.Compile(x, 0, nil)
	for c := 1; c <= 12; c++ {
		starts := l.ChunkStarts(c)
		if starts[0] != 0 || starts[len(starts)-1] != int32(l.NumRows()) {
			t.Fatalf("c=%d: grid %v does not cover [0, %d]", c, starts, l.NumRows())
		}
		if len(starts)-1 > c {
			t.Fatalf("c=%d: %d chunks", c, len(starts)-1)
		}
		for i := 1; i < len(starts); i++ {
			if starts[i] < starts[i-1] {
				t.Fatalf("c=%d: decreasing grid %v", c, starts)
			}
		}
	}
}

func TestChunkerCachesPerCount(t *testing.T) {
	x := randomTensor([]int{40, 20, 10}, 3000, 5)
	l := layout.Compile(x, 0, nil)
	a := l.ChunkStarts(4)
	b := l.ChunkStarts(4)
	if &a[0] != &b[0] {
		t.Fatal("repeated ChunkStarts(4) rebuilt the grid")
	}
	l.ChunkStarts(8)
	l.ChunkStarts(4)
	l.ChunkStarts(8)
	if allocs := testing.AllocsPerRun(10, func() { l.ChunkStarts(4); l.ChunkStarts(8) }); allocs != 0 {
		t.Fatalf("cached ChunkStarts allocates %v times, want 0", allocs)
	}
}

func TestCacheIdentityKeying(t *testing.T) {
	x := randomTensor([]int{10, 8, 6}, 300, 2)
	entries := []int32{0, 5, 9, 11, 40}
	var c layout.Cache

	l1 := c.Get(x, 0, entries)
	if c.Get(x, 0, entries) != l1 {
		t.Fatal("same (tensor, mode, entries) recompiled")
	}
	c.Get(x, 1, entries)
	if c.Get(x, 0, entries) != l1 {
		t.Fatal("adding a second mode evicted the first")
	}
	if got := c.Compiles(); got != 2 {
		t.Fatalf("compiles = %d, want 2", got)
	}

	// Same contents, different slice identity: the planners hand fresh
	// lists only when the region changed, so this must recompile.
	clone := append([]int32(nil), entries...)
	if c.Get(x, 0, clone) == l1 {
		t.Fatal("identity keying matched a cloned entry list")
	}
	if got := c.Compiles(); got != 3 {
		t.Fatalf("compiles = %d, want 3", got)
	}

	// A different tensor drops everything.
	y := randomTensor([]int{10, 8, 6}, 300, 3)
	c.Get(y, 0, entries)
	if got := c.Compiles(); got != 4 {
		t.Fatalf("compiles = %d, want 4", got)
	}
	if c.Get(y, 0, entries) == l1 {
		t.Fatal("tensor change kept a stale layout")
	}
	if got := c.Compiles(); got != 4 {
		t.Fatalf("compiles after re-Get = %d, want 4", got)
	}

	c.Invalidate()
	c.Get(y, 0, entries)
	if got := c.Compiles(); got != 5 {
		t.Fatalf("compiles after Invalidate = %d, want 5", got)
	}
}

// TestAccumulateGroupsAllocFree: the compiled kernel's inner sweep is
// allocation-free once compiled — the 0-alloc steady-state contract.
func TestAccumulateGroupsAllocFree(t *testing.T) {
	const r = 8
	dims := []int{32, 24, 16}
	x := randomTensor(dims, 4000, 9)
	factors := randomFactors(dims, r, 10)
	l := layout.Compile(x, 0, nil)
	dst := mat.New(dims[0], r)
	tmp, acc := make([]float64, r), make([]float64, r)
	pass := func() {
		dst.Zero()
		l.AccumulateGroups(dst, factors, 0, l.NumRows(), tmp, acc)
	}
	pass()
	if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
		t.Fatalf("compiled AccumulateGroups allocates %v times, want 0", allocs)
	}
}
