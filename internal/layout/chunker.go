package layout

// Chunker memoises work-balanced chunk grids per chunk count, so a
// steady-state parallel sweep recomputes nothing no matter how many
// distinct thread counts drive the same kernel. Grids are pure
// functions of (cumulative weights, c) — nothing about scheduling
// feeds them — so caching cannot change results.
type Chunker struct {
	cs    []int
	grids [][]int32
}

// Grid returns a weight-balanced grid of at most c contiguous group
// ranges over groups 0..len(cum)-1, where cum[g] is the cumulative
// weight before group g (len(cum) = groups+1, cum[0] == 0): boundary i
// is the first group at or past i/c of the total weight. The returned
// slice has one more element than the number of chunks and must not be
// mutated. Grids are cached per c for the Chunker's lifetime.
func (ch *Chunker) Grid(c int, cum []int32) []int32 {
	g := len(cum) - 1
	if c > g {
		c = g
	}
	if c < 1 {
		c = 1
	}
	for i, cc := range ch.cs {
		if cc == c {
			return ch.grids[i]
		}
	}
	starts := make([]int32, 0, c+1)
	starts = append(starts, 0)
	total := int64(cum[g])
	gi := 0
	for i := 1; i < c; i++ {
		target := int32(total * int64(i) / int64(c))
		for gi < g && cum[gi] < target {
			gi++
		}
		starts = append(starts, int32(gi))
	}
	starts = append(starts, int32(g))
	ch.cs = append(ch.cs, c)
	ch.grids = append(ch.grids, starts)
	return starts
}

// Cached reports how many distinct chunk counts have a memoised grid.
func (ch *Chunker) Cached() int { return len(ch.cs) }
