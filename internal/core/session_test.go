package core

import (
	"sync"
	"testing"

	"dismastd/internal/cluster"
	"dismastd/internal/obs"
	obscluster "dismastd/internal/obs/cluster"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
)

// TestSessionMatchesStepBitwise drives a snapshot sequence through one
// persistent Session and through per-snapshot Step calls: the factors
// must agree bitwise at every step — the invariant that lets the
// event path reuse a session at micro-batch granularity without
// perturbing the bulk path's goldens.
func TestSessionMatchesStepBitwise(t *testing.T) {
	full := sparseRandom([]int{24, 20, 16}, 1200, 3)
	seq, err := tensor.NewSequence(full, [][]int{{18, 15, 12}, {21, 18, 14}, {24, 20, 16}})
	if err != nil {
		t.Fatal(err)
	}
	prev := initState(t, seq.Snapshot(0), 3, 5)
	sess := NewSession(3)
	sessState, stepState := prev, prev
	for i := 1; i < seq.Len(); i++ {
		opts := Options{Rank: 3, MaxIters: 4, Tol: 0, Workers: 3, Method: partition.MTPMethod, Seed: uint64(7 + i)}
		got, _, err := sess.Step(sessState, seq.Snapshot(i), opts)
		if err != nil {
			t.Fatalf("session step %d: %v", i, err)
		}
		want, _, err := Step(stepState, seq.Snapshot(i), opts)
		if err != nil {
			t.Fatalf("one-shot step %d: %v", i, err)
		}
		if d := relDiff(got.Factors, want.Factors); d != 0 {
			t.Fatalf("step %d: session factors differ from one-shot Step by %v", i, d)
		}
		sessState, stepState = got, want
	}
	if sess.Steps() != seq.Len()-1 {
		t.Fatalf("session counted %d steps, want %d", sess.Steps(), seq.Len()-1)
	}
}

// TestSessionFenceRunsPerStep checks the fence hook fires once per
// rank per step, sees the session's step index, and can run a
// collective — the shape the observability plane's fence needs.
func TestSessionFenceRunsPerStep(t *testing.T) {
	full := sparseRandom([]int{15, 12, 10}, 500, 9)
	seq, err := tensor.NewSequence(full, [][]int{{12, 10, 8}, {15, 12, 10}})
	if err != nil {
		t.Fatal(err)
	}
	prev := initState(t, seq.Snapshot(0), 2, 1)
	sess := NewSession(2)
	var mu sync.Mutex
	calls := map[int]int{}
	sess.Fence = func(w *cluster.Worker, step int, job *StepJob) error {
		if len(job.PlannedLoads()) != 2 {
			t.Errorf("fence sees %d planned loads", len(job.PlannedLoads()))
		}
		buf := []float64{1}
		if err := w.AllReduceSumInPlace(buf); err != nil {
			return err
		}
		if buf[0] != 2 {
			t.Errorf("fence collective summed to %v", buf[0])
		}
		mu.Lock()
		calls[step]++
		mu.Unlock()
		return nil
	}
	st := prev
	for i := 0; i < 2; i++ {
		st, _, err = sess.Step(st, seq.Snapshot(1), Options{Rank: 2, MaxIters: 2, Tol: 0, Workers: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(calls) != 2 || calls[0] != 2 || calls[1] != 2 {
		t.Fatalf("fence calls per step = %v, want 2 ranks at steps 0 and 1", calls)
	}
}

// TestSessionFenceDrivesPlane runs the cluster observability plane's
// fence from the session hook — the integration the micro-batch path
// relies on: plane epochs advance with session steps, unchanged.
func TestSessionFenceDrivesPlane(t *testing.T) {
	full := sparseRandom([]int{15, 12, 10}, 500, 21)
	seq, err := tensor.NewSequence(full, [][]int{{12, 10, 8}, {15, 12, 10}})
	if err != nil {
		t.Fatal(err)
	}
	prev := initState(t, seq.Snapshot(0), 2, 1)
	sess := NewSession(2)
	planes := make([]*obscluster.Plane, 2)
	for i := range planes {
		planes[i] = obscluster.NewPlane(obscluster.Config{}, obs.New(), 2)
	}
	members := []int{0, 1}
	sess.Fence = func(w *cluster.Worker, step int, job *StepJob) error {
		_, ferr := planes[w.Rank()].Fence(w, members, 0, step, job.PlannedLoads())
		return ferr
	}
	if _, _, err := sess.Step(prev, seq.Snapshot(1), Options{Rank: 2, MaxIters: 2, Tol: 0, Workers: 2, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if agg := planes[0].Aggregator(); agg == nil {
		t.Fatal("rank-0 plane has no aggregator after a fence")
	}
}

// TestSessionRejectsWorkerMismatch: a session is sized once; asking it
// to run a differently sized step is an error, not a silent resize.
func TestSessionRejectsWorkerMismatch(t *testing.T) {
	full := sparseRandom([]int{10, 8, 6}, 200, 2)
	prev := initState(t, full.Prefix([]int{8, 6, 5}), 2, 1)
	sess := NewSession(2)
	if _, _, err := sess.Step(prev, full, Options{Rank: 2, MaxIters: 2, Workers: 3}); err == nil {
		t.Fatal("mismatched worker count did not error")
	}
}
